// Verification-as-a-service benchmarks: a warm what-if query against a
// running hoyand instance (base state converged once, queries are
// incremental forks) versus the cold CLI path (re-parse the configuration,
// rebuild the engine, simulate from scratch) for the same scenario. `make
// bench-serve` runs these and writes the measured latencies to
// BENCH_serve.json; TestServeWarmSpeedup pins the acceptance floor (warm
// >=3x faster than cold).
package hoyan

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"testing"
	"time"

	"hoyan/internal/config"
	"hoyan/internal/core"
	"hoyan/internal/gen"
	"hoyan/internal/netmodel"
	"hoyan/internal/serve"
)

// serveFixture is one warm hoyand over gen.WAN(1) plus everything the cold
// path needs to re-run the same scenario the way `hoyan` does: the raw
// config texts (the CLI starts from files) and the input routes and flows.
type serveFixture struct {
	g     *gen.Output
	texts map[string]string
	ts    *httptest.Server
	fail  *netmodel.Link
}

func serveFixtures(tb testing.TB) *serveFixture {
	g := gen.Generate(gen.WAN(1))
	srv, err := serve.NewServer(serve.Config{
		Tenants: []serve.TenantConfig{{Name: "bench", APIKey: "key-bench"}},
		Workers: 1,
		Sim:     core.Options{Parallelism: 1},
	})
	if err != nil {
		tb.Fatal(err)
	}
	if _, err := srv.LoadNetwork("bench", g.Net, g.Inputs, g.Flows, true); err != nil {
		tb.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	tb.Cleanup(ts.Close)
	return &serveFixture{
		g:     g,
		texts: g.ConfigTexts(),
		ts:    ts,
		fail:  g.Net.Topo.Links()[0],
	}
}

// warmQuery runs one what-if query synchronously (?wait=1): a single HTTP
// round trip whose response is the terminal status with the result — the
// full client-visible latency of the service.
func (f *serveFixture) warmQuery(tb testing.TB) {
	body, _ := json.Marshal(serve.QueryRequest{
		Kind:      "whatif",
		FailLinks: []serve.LinkRef{{A: f.fail.A, B: f.fail.B}},
	})
	req, _ := http.NewRequest("POST", f.ts.URL+"/v1/queries?wait=1", bytes.NewReader(body))
	req.Header.Set("X-API-Key", "key-bench")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		tb.Fatal(err)
	}
	var st struct {
		State  string `json:"state"`
		Result *struct {
			RIBDigest string `json:"rib_digest"`
		} `json:"result"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		tb.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		tb.Fatalf("submit: status %d", resp.StatusCode)
	}
	if st.State != "done" || st.Result == nil || st.Result.RIBDigest == "" {
		tb.Fatalf("synchronous query ended %q without a RIB digest", st.State)
	}
}

// coldQuery runs the same scenario the way a one-shot CLI invocation does:
// parse every device configuration, build the model, converge routing and
// forwarding from nothing.
func (f *serveFixture) coldQuery(tb testing.TB) {
	net, err := config.BuildNetworkOpts(f.texts, nil, config.BuildOptions{Parallelism: 1})
	if err != nil {
		tb.Fatal(err)
	}
	// The CLI pairs parsed configs with the monitored topology (§2.2).
	net.Topo = f.g.Net.Topo.Clone()
	if dl := net.Topo.FindLink(f.fail.A, f.fail.B); dl != nil {
		net.Topo.SetLinkUp(dl.ID(), false)
	}
	eng := core.NewEngine(net, core.Options{Parallelism: 1})
	res := eng.Run(f.g.Inputs, f.g.Flows)
	if res.Routes.GlobalRIB().Len() == 0 {
		tb.Fatal("cold run produced an empty RIB")
	}
}

type serveBenchReport struct {
	Devices     int     `json:"devices"`
	InputRoutes int     `json:"input_routes"`
	Flows       int     `json:"flows"`
	WarmNs      int64   `json:"warm_query_ns"`
	ColdNs      int64   `json:"cold_query_ns"`
	Speedup     float64 `json:"warm_speedup"`
}

// TestServeWarmSpeedup pins the service's reason to exist: a what-if query
// against the warm daemon — including HTTP, admission, queueing, and SSE
// delivery — must beat a cold CLI invocation of the same scenario by >=3x at
// gen.WAN(1). With SERVE_BENCH_JSON set it also writes the measured numbers
// to that path (used by `make bench-serve` to produce BENCH_serve.json).
func TestServeWarmSpeedup(t *testing.T) {
	f := serveFixtures(t)
	const trials, iters = 4, 4
	warmNs, coldNs := measurePair(trials, iters,
		func() { f.warmQuery(t) },
		func() { f.coldQuery(t) })

	rep := serveBenchReport{
		Devices:     len(f.g.Net.Devices),
		InputRoutes: len(f.g.Inputs),
		Flows:       len(f.g.Flows),
		WarmNs:      warmNs,
		ColdNs:      coldNs,
		Speedup:     float64(coldNs) / float64(warmNs),
	}
	t.Logf("warm query %s vs cold CLI %s: %.1fx",
		time.Duration(warmNs), time.Duration(coldNs), rep.Speedup)
	// Like TestCoreSpeedup: the race detector instruments the two paths
	// unevenly (the cold path's parse/build stage is far more pointer-dense
	// than the warm fork), so the floor is only meaningful uninstrumented;
	// `make bench-serve` and the plain `go test` tier enforce it.
	if rep.Speedup < 3 && !raceEnabled {
		t.Errorf("warm query speedup %.2fx < 3x floor (warm %s, cold %s)",
			rep.Speedup, time.Duration(warmNs), time.Duration(coldNs))
	}
	if path := os.Getenv("SERVE_BENCH_JSON"); path != "" {
		blob, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", path)
	}
}

// BenchmarkServeWarmQuery times one warm query end to end (HTTP submit +
// SSE wait) against the running daemon.
func BenchmarkServeWarmQuery(b *testing.B) {
	f := serveFixtures(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.warmQuery(b)
	}
}

// BenchmarkServeColdCLI times the from-scratch reference path for the same
// scenario.
func BenchmarkServeColdCLI(b *testing.B) {
	f := serveFixtures(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.coldQuery(b)
	}
}
