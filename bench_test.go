// Package hoyan's benchmark harness: one benchmark per paper table/figure
// hot path (see DESIGN.md's per-experiment index). cmd/hoyan-exp prints the
// full row/series reproductions; these benches time the underlying
// operations for regression tracking.
//
//	go test -bench=. -benchmem
package hoyan

import (
	"fmt"
	"runtime"
	"strconv"
	"sync"
	"testing"
	"time"

	"hoyan/internal/change"
	"hoyan/internal/config"
	"hoyan/internal/core"
	"hoyan/internal/diagnosis"
	"hoyan/internal/dsim"
	"hoyan/internal/ec"
	"hoyan/internal/experiments"
	"hoyan/internal/gen"
	"hoyan/internal/intent"
	"hoyan/internal/kfail"
	"hoyan/internal/pipeline"
	"hoyan/internal/rcl"
	"hoyan/internal/scenario"
	"hoyan/internal/traffic"
)

// Shared fixtures, built once.
var (
	fixOnce sync.Once
	fixWAN  *gen.Output
	fixDCN  *gen.Output
	fixRIBs *core.RouteResult
	fixEng  *core.Engine
)

func fixtures() (*gen.Output, *gen.Output, *core.Engine, *core.RouteResult) {
	fixOnce.Do(func() {
		fixWAN = gen.Generate(gen.WAN(2))
		fixDCN = gen.Generate(gen.WANDCN(2))
		fixEng = core.NewEngine(fixWAN.Net, core.Options{})
		fixRIBs = fixEng.RouteSimulation(fixWAN.Inputs)
	})
	return fixWAN, fixDCN, fixEng, fixRIBs
}

// Figure 1 / Table 1: centralized route simulation.
func BenchmarkCentralizedRouteSim(b *testing.B) {
	wan, _, _, _ := fixtures()
	b.ReportMetric(float64(len(wan.Inputs)), "inputs")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.NewEngine(wan.Net, core.Options{}).RouteSimulation(wan.Inputs)
	}
}

// Figure 1 (red series): the WAN+DCN profile the original Hoyan could not
// complete.
func BenchmarkCentralizedRouteSimWANDCN(b *testing.B) {
	_, dcn, _, _ := fixtures()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.NewEngine(dcn.Net, core.Options{}).RouteSimulation(dcn.Inputs)
	}
}

// §3.1 ablation: centralized route simulation without the EC technique.
func BenchmarkCentralizedRouteSimNoECs(b *testing.B) {
	wan, _, _, _ := fixtures()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.NewEngine(wan.Net, core.Options{DisableRouteECs: true}).RouteSimulation(wan.Inputs)
	}
}

// Figure 5(a): the full distributed route-simulation pass (split, upload,
// queue, execute, collect) on an in-process cluster.
func BenchmarkDistributedRouteSim(b *testing.B) {
	wan, _, _, _ := fixtures()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := dsim.StartLocal(2)
		snapKey, err := c.Master.UploadSnapshot("bench", wan.Net)
		if err != nil {
			b.Fatal(err)
		}
		task, err := c.Master.StartRouteSimulation("bench", snapKey, wan.Inputs, 16, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if err := c.Master.Wait("bench", "route", task.Subtasks); err != nil {
			b.Fatal(err)
		}
		if _, err := c.Master.CollectRouteResults(task); err != nil {
			b.Fatal(err)
		}
		c.Stop()
	}
}

// Figure 5(b): distributed traffic simulation under the ordering heuristic
// and the baseline strategy.
func benchDistributedTraffic(b *testing.B, strategy dsim.Strategy) {
	wan, _, _, _ := fixtures()
	c := dsim.StartLocal(2)
	defer c.Stop()
	snapKey, err := c.Master.UploadSnapshot("bench-t", wan.Net)
	if err != nil {
		b.Fatal(err)
	}
	rt, err := c.Master.StartRouteSimulation("bench-t", snapKey, wan.Inputs, 16, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	if err := c.Master.Wait("bench-t", "route", rt.Subtasks); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		taskID := "bench-t" + string(strategy) + strconv.Itoa(i)
		tt, err := c.Master.StartTrafficSimulation(taskID, rt, wan.Flows, 16, strategy, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if err := c.Master.Wait(taskID, "traffic", tt.Subtasks); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDistributedTrafficSimOrdered(b *testing.B) {
	benchDistributedTraffic(b, dsim.StrategyOrdered)
}

func BenchmarkDistributedTrafficSimBaseline(b *testing.B) {
	benchDistributedTraffic(b, dsim.StrategyBaseline)
}

// §3.1: route equivalence-class computation (~4x reduction claim).
func BenchmarkRouteECs(b *testing.B) {
	wan, _, _, _ := fixtures()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ecs := ec.ComputeRouteECs(wan.Net, nil, wan.Inputs, 1)
		if ecs.Reduction() < 1 {
			b.Fatal("no reduction")
		}
	}
}

// §3.1: flow equivalence-class computation (~100x reduction claim).
func BenchmarkFlowECs(b *testing.B) {
	wan, _, _, ribs := fixtures()
	prefixes := ec.RIBPrefixes(ribs.GlobalRIB().Rows())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ec.ComputeFlowECs(wan.Net, prefixes, wan.Flows, 1)
	}
}

// Traffic simulation over precomputed RIBs (the per-subtask hot path).
func BenchmarkTrafficSimulation(b *testing.B) {
	wan, _, eng, ribs := fixtures()
	fw := traffic.NewForwarder(wan.Net, eng.IGP(), ribs, traffic.Options{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fw.Simulate(wan.Flows)
	}
}

// Figure 8 (left): RCL parsing over the 50-spec corpus.
func BenchmarkRCLParse(b *testing.B) {
	specs := rcl.Corpus(
		[]string{"rr-0-0", "border-0-0"},
		[]string{"10.0.0.0/24", "20.0.0.0/24"},
		[]string{"65000:0", "65000:999"},
		[]string{"100.64.3.1", "100.65.3.1"},
	)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, s := range specs {
			if _, err := rcl.Parse(s); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// Figure 8 (right): RCL verification of the corpus against real RIBs.
func BenchmarkRCLVerify(b *testing.B) {
	wan, _, _, ribs := fixtures()
	base := ribs.GlobalRIB()
	specs := rcl.Corpus(
		[]string{"rr-0-0", "border-0-0"},
		[]string{"10.0.0.0/24", "20.0.0.0/24"},
		[]string{"65000:0", "65000:999"},
		[]string{wan.Net.Devices["border-0-0"].Loopback.String(), wan.Net.Devices["dc-0-0"].Loopback.String()},
	)
	parsed := make([]rcl.Intent, len(specs))
	for i, s := range specs {
		parsed[i] = rcl.MustParse(s)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, g := range parsed {
			if _, err := rcl.Check(g, base, base); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// §2.2 pre-processing: parsing every device configuration into the model.
func BenchmarkConfigParse(b *testing.B) {
	wan, _, _, _ := fixtures()
	texts := wan.ConfigTexts()
	lines := 0
	for _, t := range texts {
		for _, c := range t {
			if c == '\n' {
				lines++
			}
		}
	}
	b.ReportMetric(float64(lines), "config-lines")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := config.BuildNetwork(texts, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// Table 5: the full VSB differential-testing campaign.
func BenchmarkVSBCampaign(b *testing.B) {
	probe := diagnosis.BuildProbe()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		diagnosis.VSBCampaign(probe)
	}
}

// Tables 2/6: one end-to-end change verification request (the O(100)/week
// workload unit).
func BenchmarkChangeVerification(b *testing.B) {
	sc := scenario.Fig10a()
	sys := pipeline.New(sc.Net, sc.Inputs, sc.Flows, core.Options{})
	sys.BaseSnapshot() // pre-processing outside the timed loop
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Verify(sc.Plan, sc.Intents); err != nil {
			b.Fatal(err)
		}
	}
}

// §6.2: k-failure verification over a candidate set.
func BenchmarkKFailureCheck(b *testing.B) {
	wan, _, _, _ := fixtures()
	var elems []kfail.Element
	for _, l := range wan.Net.Topo.LinksOf("dc-0-0") {
		elems = append(elems, kfail.Element{Link: l.ID()})
	}
	reach := intent.ReachIntent{Prefix: wan.Inputs[0].Prefix, Devices: []string{"rr-1-0"}, Want: true}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := kfail.Check(wan.Net, wan.Inputs, nil, []intent.Intent{reach}, kfail.Options{K: 1, Elements: elems}); err != nil {
			b.Fatal(err)
		}
	}
}

// Change-plan application (incremental model update, §2.2).
func BenchmarkChangePlanApply(b *testing.B) {
	wan, _, _, _ := fixtures()
	rrLoopback := wan.Net.Devices["rr-0-0"].Loopback
	plan := &change.Plan{
		ID: "bench", Type: change.RouteAttrModify,
		Commands: map[string]string{"dc-0-1": `
route-map RM_B permit 10
 set local-preference 333
!
router bgp
 neighbor ` + rrLoopback.String() + ` route-map RM_B out
!
`},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := plan.Apply(wan.Net); err != nil {
			b.Fatal(err)
		}
	}
}

// parallelismSweep runs fn once per Parallelism setting in {1, 2, 4, NumCPU}
// as sub-benchmarks — the Figure 5-style intra-engine scaling curve.
func parallelismSweep(b *testing.B, fn func(b *testing.B, parallelism int)) {
	levels := []int{1, 2, 4, runtime.NumCPU()}
	seen := map[int]bool{}
	for _, p := range levels {
		if seen[p] {
			continue
		}
		seen[p] = true
		b.Run(fmt.Sprintf("p%d", p), func(b *testing.B) {
			b.ReportAllocs()
			fn(b, p)
		})
	}
}

// Intra-engine scaling of the per-source SPF + BGP route-simulation pass.
func BenchmarkParallelRouteSim(b *testing.B) {
	wan, _, _, _ := fixtures()
	parallelismSweep(b, func(b *testing.B, p int) {
		for i := 0; i < b.N; i++ {
			core.NewEngine(wan.Net, core.Options{Parallelism: p}).RouteSimulation(wan.Inputs)
		}
	})
}

// Intra-engine scaling of BenchmarkTrafficSimulation (per-flow forwarding
// over precomputed RIBs — the per-subtask hot path).
func BenchmarkParallelTrafficSimulation(b *testing.B) {
	wan, _, eng, ribs := fixtures()
	parallelismSweep(b, func(b *testing.B, p int) {
		fw := traffic.NewForwarder(wan.Net, eng.IGP(), ribs, traffic.Options{Parallelism: p})
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			fw.Simulate(wan.Flows)
		}
	})
}

// Intra-engine scaling of route-EC classification.
func BenchmarkParallelRouteECs(b *testing.B) {
	wan, _, _, _ := fixtures()
	parallelismSweep(b, func(b *testing.B, p int) {
		for i := 0; i < b.N; i++ {
			ec.ComputeRouteECs(wan.Net, nil, wan.Inputs, p)
		}
	})
}

// Intra-engine scaling of flow-EC classification.
func BenchmarkParallelFlowECs(b *testing.B) {
	wan, _, _, ribs := fixtures()
	prefixes := ec.RIBPrefixes(ribs.GlobalRIB().Rows())
	parallelismSweep(b, func(b *testing.B, p int) {
		for i := 0; i < b.N; i++ {
			ec.ComputeFlowECs(wan.Net, prefixes, wan.Flows, p)
		}
	})
}

// Intra-engine scaling of per-device configuration parsing.
func BenchmarkParallelConfigParse(b *testing.B) {
	wan, _, _, _ := fixtures()
	texts := wan.ConfigTexts()
	parallelismSweep(b, func(b *testing.B, p int) {
		for i := 0; i < b.N; i++ {
			if _, err := config.BuildNetworkOpts(texts, nil, config.BuildOptions{Parallelism: p}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// The makespan schedule model used for the Figure 5 sweeps.
func BenchmarkMakespanModel(b *testing.B) {
	durs := make([]time.Duration, 100)
	for i := range durs {
		durs[i] = time.Duration(1+i%17) * time.Millisecond
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for w := 1; w <= 10; w++ {
			experiments.Makespan(durs, w)
		}
	}
}
