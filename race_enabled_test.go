//go:build race

package hoyan

// raceEnabled reports whether the race detector is instrumenting this build.
// Performance-floor assertions are skipped under it: instrumentation skews
// the two sides of a ratio differently, so the measured speedup says nothing
// about the real one.
const raceEnabled = true
