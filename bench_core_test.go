// Index-based core benchmarks: the dense-ID engine (interned devices, links,
// and prefixes; CSR topology; struct-of-array SPF/RIB hot paths) versus the
// original string-keyed implementation preserved behind
// core.Options.DisableIndex. `make bench-core` runs these and writes the
// measured ratio plus allocation counts to BENCH_core.json; TestCoreSpeedup
// pins the acceptance floor (>=3x on the centralized route-sim benchmark at
// gen.WAN(1)).
package hoyan

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"

	"hoyan/internal/core"
	"hoyan/internal/gen"
)

// coreFixture is the run under measurement on the gen.WAN(1) fixture.
// Parallelism is pinned to 1 on both sides so the ratio isolates the indexing
// effect rather than scheduler noise.
type coreFixture struct {
	g *gen.Output
}

func coreFixtures(tb testing.TB) *coreFixture {
	g := gen.Generate(gen.WAN(1))
	if len(g.Inputs) == 0 || len(g.Flows) == 0 {
		tb.Fatal("fixture produced no inputs or flows")
	}
	return &coreFixture{g: g}
}

// run executes one cold engine run (IGP + route + traffic simulation), the
// per-subtask unit of work the distributed fleet repeats.
func (f *coreFixture) run(legacy bool) *core.Result {
	opts := core.Options{Parallelism: 1, DisableIndex: legacy}
	return core.NewEngine(f.g.Net, opts).Run(f.g.Inputs, f.g.Flows)
}

// routeSim executes the centralized route simulation only (IGP + BGP fixpoint
// + RIB expansion, no traffic sweep). This is the unit TestCoreSpeedup pins:
// route simulation is where the interned IDs replace string-keyed maps.
func (f *coreFixture) routeSim(legacy bool) {
	opts := core.Options{Parallelism: 1, DisableIndex: legacy}
	core.NewEngine(f.g.Net, opts).RouteSimulation(f.g.Inputs)
}

// BenchmarkCoreIndexed times the dense-ID engine end to end.
func BenchmarkCoreIndexed(b *testing.B) {
	f := coreFixtures(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.run(false)
	}
}

// BenchmarkCoreLegacy times the preserved string-keyed reference path.
func BenchmarkCoreLegacy(b *testing.B) {
	f := coreFixtures(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.run(true)
	}
}

// BenchmarkRouteSimIndexed times the dense-ID route simulation alone.
func BenchmarkRouteSimIndexed(b *testing.B) {
	f := coreFixtures(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.routeSim(false)
	}
}

// BenchmarkRouteSimLegacy times the string-keyed route simulation alone.
func BenchmarkRouteSimLegacy(b *testing.B) {
	f := coreFixtures(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.routeSim(true)
	}
}

// coreBenchReport is the BENCH_core.json schema (`make bench-core`).
type coreBenchReport struct {
	Devices int `json:"devices"`
	Inputs  int `json:"inputs"`
	Flows   int `json:"flows"`

	// Route-simulation-only timings: the pinned ratio.
	IndexedNs int64   `json:"indexed_ns"`
	LegacyNs  int64   `json:"legacy_ns"`
	Speedup   float64 `json:"speedup"`

	// Per-run allocation profile of the route simulation.
	IndexedAllocs     uint64 `json:"indexed_allocs"`
	LegacyAllocs      uint64 `json:"legacy_allocs"`
	IndexedAllocBytes uint64 `json:"indexed_alloc_bytes"`
	LegacyAllocBytes  uint64 `json:"legacy_alloc_bytes"`

	InternDevices    int   `json:"intern_devices"`
	InternLinks      int   `json:"intern_links"`
	InternPrefixes   int   `json:"intern_prefixes"`
	InternTableBytes int64 `json:"intern_table_bytes"`
}

// allocsDuring runs f once and returns the heap allocation count and bytes it
// performed (single-goroutine measurement; the fixture pins Parallelism 1).
func allocsDuring(f func()) (allocs, bytes uint64) {
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	f()
	runtime.ReadMemStats(&after)
	return after.Mallocs - before.Mallocs, after.TotalAlloc - before.TotalAlloc
}

// TestCoreSpeedup pins the indexed core's acceptance floor: the dense-ID
// engine must run the gen.WAN(1) centralized route simulation at least 3x
// faster than the preserved string-keyed implementation
// (core.Options.DisableIndex). Measurements are paired per trial (like
// TestWireCompactness) so a background spike on a loaded host lands on both
// sides of a trial instead of biasing the ratio. With CORE_BENCH_JSON set it
// also writes the measured numbers to that path (used by `make bench-core` to
// produce BENCH_core.json).
func TestCoreSpeedup(t *testing.T) {
	f := coreFixtures(t)

	// Warm both paths once (page cache, lazily built indices) and collect the
	// per-run allocation profile outside the timed trials.
	idxAllocs, idxBytes := allocsDuring(func() { f.routeSim(false) })
	legAllocs, legBytes := allocsDuring(func() { f.routeSim(true) })

	const trials, iters = 5, 1
	idxNs, legNs := measurePair(trials, iters,
		func() { f.routeSim(false) },
		func() { f.routeSim(true) })

	eng := core.NewEngine(f.g.Net, core.Options{Parallelism: 1})
	eng.RouteSimulation(f.g.Inputs)
	st := eng.InternStats()
	if st == nil {
		t.Fatal("indexed engine reported no intern stats")
	}

	rep := coreBenchReport{
		Devices:           len(f.g.Net.Devices),
		Inputs:            len(f.g.Inputs),
		Flows:             len(f.g.Flows),
		IndexedNs:         idxNs,
		LegacyNs:          legNs,
		Speedup:           float64(legNs) / float64(idxNs),
		IndexedAllocs:     idxAllocs,
		LegacyAllocs:      legAllocs,
		IndexedAllocBytes: idxBytes,
		LegacyAllocBytes:  legBytes,
		InternDevices:     st.Devices,
		InternLinks:       st.Links,
		InternPrefixes:    st.Prefixes,
		InternTableBytes:  st.TableBytes,
	}

	t.Logf("%d devices / %d inputs: route sim indexed %.2fms vs legacy %.2fms (%.2fx)",
		rep.Devices, rep.Inputs, float64(rep.IndexedNs)/1e6, float64(rep.LegacyNs)/1e6, rep.Speedup)
	t.Logf("allocs per run: indexed %d (%d B) vs legacy %d (%d B); interned %d devices, %d links, %d prefixes (%d B tables)",
		rep.IndexedAllocs, rep.IndexedAllocBytes, rep.LegacyAllocs, rep.LegacyAllocBytes,
		rep.InternDevices, rep.InternLinks, rep.InternPrefixes, rep.InternTableBytes)

	// The race detector instruments the two paths unevenly (the indexed
	// arenas are pointer-dense), so the ratio is only meaningful uninstrumented;
	// `make bench-core` and the plain `go test` tier enforce the floor.
	if rep.Speedup < 3 && !raceEnabled {
		t.Errorf("indexed route sim only %.2fx faster than string-keyed reference, want >=3x", rep.Speedup)
	}

	if path := os.Getenv("CORE_BENCH_JSON"); path != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		fmt.Printf("wrote %s\n", path)
	}
}
