package netmodel

import (
	"fmt"
	"net/netip"
)

// IPProto is an IP protocol number (6 = TCP, 17 = UDP, ...).
type IPProto uint8

// Common IP protocol numbers.
const (
	ProtoTCP IPProto = 6
	ProtoUDP IPProto = 17
)

// Flow is a 5-tuple with the traffic volume reported by the traffic
// monitoring system between two reports, plus the ingress device where the
// flow enters the network.
type Flow struct {
	Src     netip.Addr
	Dst     netip.Addr
	SrcPort uint16
	DstPort uint16
	Proto   IPProto

	Ingress string  // device where the flow is injected
	Volume  float64 // bits per second
}

// Key identifies a flow independent of its volume.
type FlowKey struct {
	Src, Dst         netip.Addr
	SrcPort, DstPort uint16
	Proto            IPProto
	Ingress          string
}

// Key returns the identity of the flow.
func (f Flow) Key() FlowKey {
	return FlowKey{Src: f.Src, Dst: f.Dst, SrcPort: f.SrcPort, DstPort: f.DstPort, Proto: f.Proto, Ingress: f.Ingress}
}

func (f Flow) String() string {
	return fmt.Sprintf("%s:%d->%s:%d/%d @%s %.0fbps", f.Src, f.SrcPort, f.Dst, f.DstPort, f.Proto, f.Ingress, f.Volume)
}

// CompareFlows orders flows by destination address first (the §3.2 ordering
// heuristic for traffic subtask splitting), then by the remaining tuple for
// determinism.
func CompareFlows(a, b Flow) int {
	if c := a.Dst.Compare(b.Dst); c != 0 {
		return c
	}
	if c := a.Src.Compare(b.Src); c != 0 {
		return c
	}
	switch {
	case a.DstPort != b.DstPort:
		if a.DstPort < b.DstPort {
			return -1
		}
		return 1
	case a.SrcPort != b.SrcPort:
		if a.SrcPort < b.SrcPort {
			return -1
		}
		return 1
	case a.Proto != b.Proto:
		if a.Proto < b.Proto {
			return -1
		}
		return 1
	}
	switch {
	case a.Ingress < b.Ingress:
		return -1
	case a.Ingress > b.Ingress:
		return 1
	}
	return 0
}

// Hop is one step of a forwarding path.
type Hop struct {
	Device string
	Link   LinkID // link taken to reach the next hop; zero for the final hop
}

// Path is a forwarding path through the network. The final hop has a zero
// LinkID; Exit describes why forwarding stopped there.
type Path struct {
	Hops []Hop
	Exit ExitReason
}

// ExitReason explains how a simulated flow left the network (or why it was
// dropped).
type ExitReason uint8

// Exit reasons.
const (
	ExitDelivered ExitReason = iota // destination prefix is local to the last device
	ExitToPeer                      // handed to an external (eBGP) peer
	ExitNoRoute                     // no matching route: dropped
	ExitACLDenied                   // an ACL blocked the flow
	ExitLoop                        // forwarding loop detected
	ExitLinkDown                    // chosen link was down
)

func (e ExitReason) String() string {
	switch e {
	case ExitDelivered:
		return "delivered"
	case ExitToPeer:
		return "to-peer"
	case ExitNoRoute:
		return "no-route"
	case ExitACLDenied:
		return "acl-denied"
	case ExitLoop:
		return "loop"
	case ExitLinkDown:
		return "link-down"
	}
	return fmt.Sprintf("exit(%d)", uint8(e))
}

// Devices returns the sequence of device names along the path.
func (p Path) Devices() []string {
	out := make([]string, len(p.Hops))
	for i, h := range p.Hops {
		out[i] = h.Device
	}
	return out
}

// Traverses reports whether the path crosses the given link (in either
// direction).
func (p Path) Traverses(id LinkID) bool {
	for _, h := range p.Hops {
		if h.Link == id {
			return true
		}
	}
	return false
}

func (p Path) String() string {
	s := ""
	for i, h := range p.Hops {
		if i > 0 {
			s += "-"
		}
		s += h.Device
	}
	return s + " (" + p.Exit.String() + ")"
}

// LinkLoad is the simulated traffic volume on each link, in bits per second,
// summed over both directions per directed edge.
type LinkLoad map[LinkID]float64

// Add accumulates another load map into l.
func (l LinkLoad) Add(o LinkLoad) {
	for id, v := range o {
		l[id] += v
	}
}
