package netmodel

import (
	"net/netip"
	"testing"
	"testing/quick"
)

func TestParseCommunity(t *testing.T) {
	tests := []struct {
		in      string
		want    Community
		wantErr bool
	}{
		{"100:1", NewCommunity(100, 1), false},
		{"0:0", NewCommunity(0, 0), false},
		{"65535:65535", NewCommunity(65535, 65535), false},
		{"100", 0, true},
		{"100:65536", 0, true},
		{"-1:1", 0, true},
		{"a:b", 0, true},
	}
	for _, tt := range tests {
		got, err := ParseCommunity(tt.in)
		if (err != nil) != tt.wantErr {
			t.Errorf("ParseCommunity(%q) error = %v, wantErr %v", tt.in, err, tt.wantErr)
			continue
		}
		if err == nil && got != tt.want {
			t.Errorf("ParseCommunity(%q) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestCommunityStringRoundTrip(t *testing.T) {
	f := func(hi, lo uint16) bool {
		c := NewCommunity(hi, lo)
		back, err := ParseCommunity(c.String())
		return err == nil && back == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCommunitySetOperations(t *testing.T) {
	s := NewCommunitySet(MustCommunity("200:1"), MustCommunity("100:1"), MustCommunity("200:1"))
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2 (dedup)", s.Len())
	}
	if got := s.String(); got != "100:1,200:1" {
		t.Errorf("String = %q, want sorted %q", got, "100:1,200:1")
	}
	if !s.Contains(MustCommunity("100:1")) || s.Contains(MustCommunity("300:1")) {
		t.Error("Contains wrong")
	}
	s2 := s.Remove(MustCommunity("100:1"))
	if s2.Contains(MustCommunity("100:1")) || s2.Len() != 1 {
		t.Error("Remove failed")
	}
	if !s.Contains(MustCommunity("100:1")) {
		t.Error("Remove mutated the original set")
	}
	s3 := s.Add(MustCommunity("150:5"))
	if got := s3.String(); got != "100:1,150:5,200:1" {
		t.Errorf("Add mid: %q", got)
	}
}

func TestCommunitySetImmutableAdd(t *testing.T) {
	f := func(vals []uint32) bool {
		var s CommunitySet
		for _, v := range vals {
			prev := s
			prevLen := prev.Len()
			s = s.Add(Community(v))
			if prev.Len() != prevLen {
				return false
			}
		}
		// Sorted and deduplicated invariants.
		all := s.All()
		for i := 1; i < len(all); i++ {
			if all[i-1] >= all[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParseCommunitySet(t *testing.T) {
	s, err := ParseCommunitySet(" 200:1, 100:1 ")
	if err != nil {
		t.Fatal(err)
	}
	if s.String() != "100:1,200:1" {
		t.Errorf("got %q", s.String())
	}
	if s, err := ParseCommunitySet(""); err != nil || s.Len() != 0 {
		t.Errorf("empty parse: %v %v", s, err)
	}
	if _, err := ParseCommunitySet("1:2,bogus"); err == nil {
		t.Error("want error for bogus member")
	}
}

func TestASPath(t *testing.T) {
	p := ASPath{}.Prepend(65002).Prepend(65001)
	if got := p.String(); got != "65001 65002" {
		t.Errorf("String = %q", got)
	}
	if p.Len() != 2 {
		t.Errorf("Len = %d", p.Len())
	}
	if !p.Contains(65002) || p.Contains(65999) {
		t.Error("Contains wrong")
	}
	withSet := ASPath{Seq: []ASN{1}, Set: []ASN{3, 2}}
	if withSet.Len() != 2 {
		t.Errorf("set counts 1: Len = %d", withSet.Len())
	}
	if got := withSet.String(); got != "1 {2,3}" {
		t.Errorf("set String = %q", got)
	}
	if !withSet.Contains(3) {
		t.Error("Contains should search AS_SET")
	}
}

func TestASPathParseRoundTrip(t *testing.T) {
	for _, s := range []string{"", "65001", "65001 65002 65003", "1 {2,3}", "{7}"} {
		p, err := ParseASPath(s)
		if err != nil {
			t.Fatalf("ParseASPath(%q): %v", s, err)
		}
		if got := p.String(); got != s {
			t.Errorf("round trip %q -> %q", s, got)
		}
	}
	if _, err := ParseASPath("1 x"); err == nil {
		t.Error("want error")
	}
}

func TestASPathEqual(t *testing.T) {
	a := ASPath{Seq: []ASN{1, 2}, Set: []ASN{4, 3}}
	b := ASPath{Seq: []ASN{1, 2}, Set: []ASN{3, 4}}
	if !a.Equal(b) {
		t.Error("AS_SET should compare as a set")
	}
	c := ASPath{Seq: []ASN{2, 1}, Set: []ASN{3, 4}}
	if a.Equal(c) {
		t.Error("sequence order matters")
	}
}

func TestPrependDoesNotAlias(t *testing.T) {
	base := ASPath{Seq: []ASN{5}}
	p1 := base.Prepend(1)
	p2 := base.Prepend(2)
	if p1.Seq[0] != 1 || p2.Seq[0] != 2 || base.Seq[0] != 5 {
		t.Errorf("aliasing: %v %v %v", base, p1, p2)
	}
}

func TestLastAddr(t *testing.T) {
	tests := []struct {
		prefix, want string
	}{
		{"10.0.0.0/24", "10.0.0.255"},
		{"10.0.0.0/8", "10.255.255.255"},
		{"10.1.2.3/32", "10.1.2.3"},
		{"0.0.0.0/0", "255.255.255.255"},
		{"2001:db8::/64", "2001:db8::ffff:ffff:ffff:ffff"},
	}
	for _, tt := range tests {
		got := LastAddr(netip.MustParsePrefix(tt.prefix))
		if got != netip.MustParseAddr(tt.want) {
			t.Errorf("LastAddr(%s) = %s, want %s", tt.prefix, got, tt.want)
		}
	}
}

func TestRouteField(t *testing.T) {
	r := Route{
		Device: "A", VRF: "global",
		Prefix:      netip.MustParsePrefix("10.0.0.0/24"),
		Protocol:    ProtoBGP,
		NextHop:     netip.MustParseAddr("2.0.0.1"),
		Communities: NewCommunitySet(MustCommunity("100:1")),
		LocalPref:   100,
		ASPath:      ASPath{Seq: []ASN{65001, 65002}},
		RouteType:   RouteBest,
	}
	cases := map[string]any{
		FieldDevice:      "A",
		FieldPrefix:      "10.0.0.0/24",
		FieldNextHop:     "2.0.0.1",
		FieldLocalPref:   int64(100),
		FieldASPath:      "65001 65002",
		FieldRouteType:   "BEST",
		FieldProtocol:    "bgp",
		FieldOrigin:      "igp",
		FieldCommunities: []string{"100:1"},
	}
	for name, want := range cases {
		got, ok := r.Field(name)
		if !ok {
			t.Errorf("Field(%q) missing", name)
			continue
		}
		switch w := want.(type) {
		case []string:
			g, ok := got.([]string)
			if !ok || len(g) != len(w) || g[0] != w[0] {
				t.Errorf("Field(%q) = %v, want %v", name, got, want)
			}
		default:
			if got != want {
				t.Errorf("Field(%q) = %v (%T), want %v (%T)", name, got, got, want, want)
			}
		}
	}
	if _, ok := r.Field("nosuch"); ok {
		t.Error("unknown field should report !ok")
	}
	// Every declared field name must be resolvable.
	for _, name := range FieldNames {
		if _, ok := r.Field(name); !ok {
			t.Errorf("declared field %q not resolvable", name)
		}
	}
}
