package netmodel

import (
	"fmt"
	"math/rand"
	"net/netip"
	"slices"
	"testing"
)

// TestInternerRoundTrip pins the basic interner contract: every interned
// value round-trips through its dense ID, re-interning is idempotent, and
// IDs are assigned densely in first-sight order.
func TestInternerRoundTrip(t *testing.T) {
	in := NewInterner()

	devs := []string{"border-0-0", "rr-1-0", "dc-0-1", "isp-0"}
	for i, d := range devs {
		id := in.InternDevice(d)
		if id != DevID(i) {
			t.Errorf("InternDevice(%q) = %d, want dense %d", d, id, i)
		}
		if again := in.InternDevice(d); again != id {
			t.Errorf("re-interning %q gave %d, want %d", d, again, id)
		}
		name, ok := in.DeviceName(id)
		if !ok || name != d {
			t.Errorf("DeviceName(%d) = %q,%v, want %q", id, name, ok, d)
		}
	}

	links := []LinkID{
		{A: "a", B: "b", AIface: "eth0", BIface: "eth1"},
		{A: "a", B: "b", AIface: "eth2", BIface: "eth3"}, // parallel link
		{A: "b", B: "c", AIface: "eth0", BIface: "eth0"},
	}
	for i, l := range links {
		idx := in.InternLink(l)
		if idx != LinkIdx(i) {
			t.Errorf("InternLink(%v) = %d, want dense %d", l, idx, i)
		}
		if again := in.InternLink(l); again != idx {
			t.Errorf("re-interning %v gave %d, want %d", l, again, idx)
		}
		got, ok := in.Link(idx)
		if !ok || got != l {
			t.Errorf("Link(%d) = %v,%v, want %v", idx, got, ok, l)
		}
	}

	prefixes := []netip.Prefix{
		netip.MustParsePrefix("10.0.0.0/24"),
		netip.MustParsePrefix("10.0.0.0/16"), // same addr, different length
		netip.MustParsePrefix("2001:db8::/32"),
		netip.MustParsePrefix("0.0.0.0/0"),
	}
	for i, p := range prefixes {
		id := in.InternPrefix(p)
		if id != PrefixID(i) {
			t.Errorf("InternPrefix(%v) = %d, want dense %d", p, id, i)
		}
		if again := in.InternPrefix(p); again != id {
			t.Errorf("re-interning %v gave %d, want %d", p, again, id)
		}
		got, ok := in.Prefix(id)
		if !ok || got != p {
			t.Errorf("Prefix(%d) = %v,%v, want %v", id, got, ok, p)
		}
	}
	if in.NumPrefixes() != len(prefixes) {
		t.Errorf("NumPrefixes = %d, want %d", in.NumPrefixes(), len(prefixes))
	}

	// Out-of-range and sentinel IDs must report !ok, not panic.
	if _, ok := in.DeviceName(NoDev); ok {
		t.Error("DeviceName(NoDev) reported ok")
	}
	if _, ok := in.DeviceName(DevID(len(devs))); ok {
		t.Error("DeviceName past end reported ok")
	}
	if _, ok := in.Link(NoLink); ok {
		t.Error("Link(NoLink) reported ok")
	}
	if _, ok := in.Prefix(NoPrefix); ok {
		t.Error("Prefix(NoPrefix) reported ok")
	}

	st := in.Stats()
	if st.Devices != len(devs) || st.Links != len(links) || st.Prefixes != len(prefixes) {
		t.Errorf("Stats = %+v, want %d/%d/%d", st, len(devs), len(links), len(prefixes))
	}
	if st.TableBytes <= 0 {
		t.Errorf("Stats.TableBytes = %d, want > 0", st.TableBytes)
	}
}

// internRandomTopo builds a seeded random connected topology with parallel
// links, loopbacks, and a minority of down nodes/links.
func internRandomTopo(rng *rand.Rand, n int) *Topology {
	topo := NewTopology()
	for i := 0; i < n; i++ {
		topo.AddNode(Node{
			Name:     fmt.Sprintf("r%02d", i),
			Loopback: netip.AddrFrom4([4]byte{10, 254, byte(i), 1}),
			Up:       rng.Intn(8) != 0,
		})
	}
	link := 0
	addLink := func(a, b int) {
		topo.AddLink(Link{
			A: fmt.Sprintf("r%02d", a), B: fmt.Sprintf("r%02d", b),
			AIface: fmt.Sprintf("eth%d", link), BIface: fmt.Sprintf("eth%d", link),
			CostAB: uint32(1 + rng.Intn(9)), CostBA: uint32(1 + rng.Intn(9)),
			Up: rng.Intn(8) != 0,
		})
		link++
	}
	for i := 0; i < n; i++ {
		addLink(i, (i+1)%n)
	}
	for i := 0; i < n; i++ {
		a, b := rng.Intn(n), rng.Intn(n)
		if a != b {
			addLink(a, b)
		}
	}
	return topo
}

// TestTopoIndexMatchesTopology is the CSR equivalence property: on seeded
// random topologies, the index's dense view must agree with the string-keyed
// Topology API — device table, link table, per-device adjacency (neighbors,
// costs, up state), and address ownership.
func TestTopoIndexMatchesTopology(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		topo := internRandomTopo(rng, 4+rng.Intn(20))
		ix := topo.Index()

		names := topo.NodeNames()
		if !slices.IsSorted(names) {
			t.Fatalf("seed %d: NodeNames not sorted", seed)
		}
		if ix.NumDevices() != len(names) {
			t.Fatalf("seed %d: NumDevices = %d, want %d", seed, ix.NumDevices(), len(names))
		}
		for i, name := range names {
			id, ok := ix.DevID(name)
			if !ok || id != DevID(i) {
				t.Fatalf("seed %d: DevID(%q) = %d,%v, want %d", seed, name, id, ok, i)
			}
			if ix.DevName(id) != name {
				t.Fatalf("seed %d: DevName(%d) = %q, want %q", seed, id, ix.DevName(id), name)
			}
			if ix.Node(id).Name != name {
				t.Fatalf("seed %d: Node(%d) is %q, want %q", seed, id, ix.Node(id).Name, name)
			}
		}

		if ix.NumLinks() != len(topo.Links()) {
			t.Fatalf("seed %d: NumLinks = %d, want %d", seed, ix.NumLinks(), len(topo.Links()))
		}
		for _, l := range topo.Links() {
			li, ok := ix.LinkIdxOf(l.ID())
			if !ok {
				t.Fatalf("seed %d: link %v not indexed", seed, l.ID())
			}
			if ix.LinkAt(li) != l {
				t.Fatalf("seed %d: LinkAt(%d) is not the live link for %v", seed, li, l.ID())
			}
			if ix.LinkIDAt(li) != l.ID() {
				t.Fatalf("seed %d: LinkIDAt(%d) = %v, want %v", seed, li, ix.LinkIDAt(li), l.ID())
			}
		}
		// LinkIdx order is LinkID.String() order.
		for i := 1; i < ix.NumLinks(); i++ {
			if ix.LinkIDAt(LinkIdx(i-1)).String() > ix.LinkIDAt(LinkIdx(i)).String() {
				t.Fatalf("seed %d: link order broken at %d", seed, i)
			}
		}

		// Per-device CSR adjacency vs Topology.Neighbors. Neighbors filters
		// down neighbor nodes and skips dead links only in its callers, so
		// compare against the up-edge subset of the CSR row.
		for _, name := range names {
			id, _ := ix.DevID(name)
			want := topo.Neighbors(name)
			var got []Neighbor
			lo, hi := ix.EdgeRange(id)
			for pos := lo; pos < hi; pos++ {
				nb := ix.Node(ix.EdgeDev(pos))
				if !nb.Up {
					continue
				}
				got = append(got, Neighbor{
					Device: nb.Name,
					Link:   ix.EdgeLink(pos),
					Cost:   ix.EdgeCost(pos, false),
				})
				if up := ix.EdgeUp(pos); up != (ix.EdgeLink(pos).Up && nb.Up) {
					t.Fatalf("seed %d: EdgeUp(%d) = %v inconsistent", seed, pos, up)
				}
			}
			if len(got) != len(want) {
				t.Fatalf("seed %d dev %s: %d CSR neighbors, want %d", seed, name, len(got), len(want))
			}
			for i := range want {
				if got[i].Device != want[i].Device || got[i].Link != want[i].Link || got[i].Cost != want[i].Cost {
					t.Fatalf("seed %d dev %s edge %d: got %+v, want %+v", seed, name, i, got[i], want[i])
				}
			}
		}

		// Address ownership: loopbacks and every link interface address.
		check := func(addr netip.Addr) {
			if !addr.IsValid() {
				return
			}
			wantOwner := topo.AddrOwner(addr)
			gotID := ix.AddrOwnerID(addr)
			if wantOwner == "" {
				if gotID != NoDev {
					t.Fatalf("seed %d: AddrOwnerID(%v) = %d, want NoDev", seed, addr, gotID)
				}
				return
			}
			if gotID == NoDev || ix.DevName(gotID) != wantOwner {
				t.Fatalf("seed %d: AddrOwnerID(%v) = %d, want owner %q", seed, addr, gotID, wantOwner)
			}
		}
		for _, n := range topo.Nodes() {
			check(n.Loopback)
		}
		for _, l := range topo.Links() {
			check(l.AAddr)
			check(l.BAddr)
		}
		check(netip.MustParseAddr("192.0.2.254")) // unowned

		if ix.TableBytes() <= 0 {
			t.Fatalf("seed %d: TableBytes = %d", seed, ix.TableBytes())
		}
	}
}

// TestInternTopology pins that InternTopology assigns the same dense IDs the
// TopoIndex uses, so interner IDs and index IDs are interchangeable.
func TestInternTopology(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	topo := internRandomTopo(rng, 12)
	in := NewInterner()
	ix := in.InternTopology(topo)

	for i := 0; i < ix.NumDevices(); i++ {
		name, ok := in.DeviceName(DevID(i))
		if !ok || name != ix.DevName(DevID(i)) {
			t.Fatalf("device %d: interner %q,%v vs index %q", i, name, ok, ix.DevName(DevID(i)))
		}
	}
	for i := 0; i < ix.NumLinks(); i++ {
		id, ok := in.Link(LinkIdx(i))
		if !ok || id != ix.LinkIDAt(LinkIdx(i)) {
			t.Fatalf("link %d: interner %v,%v vs index %v", i, id, ok, ix.LinkIDAt(LinkIdx(i)))
		}
	}
}

// FuzzInternPrefix fuzzes the prefix interning round trip: any valid prefix
// must intern to a stable dense ID that maps back to the identical prefix,
// and distinct prefixes must never share an ID.
func FuzzInternPrefix(f *testing.F) {
	f.Add([]byte{10, 0, 0, 0}, uint8(24), false)
	f.Add([]byte{0, 0, 0, 0}, uint8(0), false)
	f.Add([]byte{0x20, 0x01, 0x0d, 0xb8, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}, uint8(32), true)
	f.Add([]byte{255, 255, 255, 255}, uint8(32), false)

	in := NewInterner()
	seen := map[PrefixID]netip.Prefix{}
	f.Fuzz(func(t *testing.T, addrBytes []byte, bits uint8, v6 bool) {
		var addr netip.Addr
		if v6 {
			var b [16]byte
			copy(b[:], addrBytes)
			addr = netip.AddrFrom16(b)
		} else {
			var b [4]byte
			copy(b[:], addrBytes)
			addr = netip.AddrFrom4(b)
		}
		p := netip.PrefixFrom(addr, int(bits))
		if !p.IsValid() {
			t.Skip()
		}
		id := in.InternPrefix(p)
		if id < 0 || int(id) >= in.NumPrefixes() {
			t.Fatalf("InternPrefix(%v) = %d out of range [0,%d)", p, id, in.NumPrefixes())
		}
		if again := in.InternPrefix(p); again != id {
			t.Fatalf("re-interning %v gave %d, want %d", p, again, id)
		}
		got, ok := in.Prefix(id)
		if !ok || got != p {
			t.Fatalf("Prefix(%d) = %v,%v, want %v", id, got, ok, p)
		}
		if prev, dup := seen[id]; dup && prev != p {
			t.Fatalf("ID %d shared by %v and %v", id, prev, p)
		}
		seen[id] = p
	})
}
