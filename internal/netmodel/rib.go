package netmodel

import (
	"encoding/binary"
	"net/netip"
	"slices"
	"strings"
	"sync/atomic"
)

// RIB is the routing table of a single (device, vrf) pair: all candidate and
// best routes keyed by prefix.
type RIB struct {
	Device string
	VRF    string
	// byPrefix holds route rows per prefix in deterministic order.
	byPrefix map[netip.Prefix][]Route
	// lpm is the lazily built longest-prefix-match index. Any mutation clears
	// it; LongestMatch rebuilds on first use. Safe for concurrent readers
	// (traffic simulation looks up flows in parallel against converged RIBs).
	lpm atomic.Pointer[lpmIndex]
}

// NewRIB creates an empty RIB for device/vrf.
func NewRIB(device, vrf string) *RIB {
	return &RIB{Device: device, VRF: vrf, byPrefix: make(map[netip.Prefix][]Route)}
}

// NewRIBSized is NewRIB with a capacity hint for the expected number of
// prefixes, avoiding incremental map growth when the caller already knows
// roughly how many prefixes the table will hold (the indexed BGP decision
// loop passes its prefix-interner size).
func NewRIBSized(device, vrf string, hint int) *RIB {
	return &RIB{Device: device, VRF: vrf, byPrefix: make(map[netip.Prefix][]Route, hint)}
}

// Add installs a route row. The row's Device/VRF are forced to the RIB's.
func (t *RIB) Add(r Route) {
	r.Device, r.VRF = t.Device, t.VRF
	t.byPrefix[r.Prefix] = append(t.byPrefix[r.Prefix], r)
	t.invalidateLPM()
}

// Replace substitutes all rows for prefix with rs.
func (t *RIB) Replace(prefix netip.Prefix, rs []Route) {
	if len(rs) == 0 {
		delete(t.byPrefix, prefix)
		t.invalidateLPM()
		return
	}
	rows := make([]Route, len(rs))
	for i, r := range rs {
		r.Device, r.VRF = t.Device, t.VRF
		rows[i] = r
	}
	t.byPrefix[prefix] = rows
	t.invalidateLPM()
}

// ReplaceOwned is Replace for callers that hand over ownership of rs: the
// slice is installed as-is (Device/VRF forced in place) instead of being
// copied. The caller must not retain or modify rs afterwards. This is the
// allocation-free install path of the indexed BGP decision loop.
func (t *RIB) ReplaceOwned(prefix netip.Prefix, rs []Route) {
	if len(rs) == 0 {
		delete(t.byPrefix, prefix)
		t.invalidateLPM()
		return
	}
	for i := range rs {
		rs[i].Device, rs[i].VRF = t.Device, t.VRF
	}
	t.byPrefix[prefix] = rs
	t.invalidateLPM()
}

// ShallowClone returns a RIB with a fresh prefix map sharing the row slices.
// Safe as long as every writer installs fresh slices (Replace does); used by
// warm-started re-simulation to branch a converged table cheaply.
// EqualContent reports whether two tables hold exactly the same rows
// (Route.Identical, per prefix, in order).
func (t *RIB) EqualContent(o *RIB) bool {
	if t == o {
		return true
	}
	if len(t.byPrefix) != len(o.byPrefix) {
		return false
	}
	for p, rows := range t.byPrefix {
		if !rowsIdentical(rows, o.byPrefix[p]) {
			return false
		}
	}
	return true
}

// DiffPrefixes returns every prefix whose row set differs between t and o
// (diff: present in only one of them, or in both with different rows), plus
// the subsets present only in t (onlyT) and only in o (onlyO).
func (t *RIB) DiffPrefixes(o *RIB) (diff, onlyT, onlyO []netip.Prefix) {
	if t == o {
		return nil, nil, nil
	}
	for p, rows := range t.byPrefix {
		orows, ok := o.byPrefix[p]
		if !ok {
			diff = append(diff, p)
			onlyT = append(onlyT, p)
		} else if !rowsIdentical(rows, orows) {
			diff = append(diff, p)
		}
	}
	for p := range o.byPrefix {
		if _, ok := t.byPrefix[p]; !ok {
			diff = append(diff, p)
			onlyO = append(onlyO, p)
		}
	}
	return diff, onlyT, onlyO
}

func rowsIdentical(a, b []Route) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].Identical(b[i]) {
			return false
		}
	}
	return true
}

func (t *RIB) ShallowClone() *RIB {
	cp := &RIB{Device: t.Device, VRF: t.VRF, byPrefix: make(map[netip.Prefix][]Route, len(t.byPrefix))}
	for p, rows := range t.byPrefix {
		cp.byPrefix[p] = rows
	}
	return cp
}

// Routes returns the rows for prefix (shared slice; callers must not modify).
func (t *RIB) Routes(prefix netip.Prefix) []Route {
	return t.byPrefix[prefix]
}

// Best returns the best (selected) routes for prefix; multiple rows when
// ECMP applies.
func (t *RIB) Best(prefix netip.Prefix) []Route {
	var out []Route
	for _, r := range t.byPrefix[prefix] {
		if r.RouteType == RouteBest {
			out = append(out, r)
		}
	}
	return out
}

// Prefixes returns all prefixes in deterministic order.
func (t *RIB) Prefixes() []netip.Prefix {
	out := make([]netip.Prefix, 0, len(t.byPrefix))
	for p := range t.byPrefix {
		out = append(out, p)
	}
	slices.SortFunc(out, comparePrefix)
	return out
}

// Len returns the total number of route rows.
func (t *RIB) Len() int {
	n := 0
	for _, rs := range t.byPrefix {
		n += len(rs)
	}
	return n
}

// All returns every row in deterministic order.
func (t *RIB) All() []Route {
	out := make([]Route, 0, t.Len())
	for _, p := range t.Prefixes() {
		rows := append([]Route(nil), t.byPrefix[p]...)
		slices.SortFunc(rows, CompareRoutes)
		out = append(out, rows...)
	}
	return out
}

// lpmIndex is the longest-prefix-match index over a RIB's best routes:
// prefixes with at least one RouteBest row, bucketed by (address family,
// prefix length) with lengths kept in descending order, mapping the masked
// network address to the presorted best rows. A lookup probes each length of
// the address's family from longest to shortest and returns the first hit —
// identical semantics to the original full-table scan, since two distinct
// prefixes of the same length cannot both cover one address.
type lpmIndex struct {
	v4bits []int
	v6bits []int
	v4     map[int]map[netip.Addr]lpmEntry
	v6     map[int]map[netip.Addr]lpmEntry
}

type lpmEntry struct {
	prefix netip.Prefix
	best   []Route
}

// invalidateLPM drops the memoized longest-prefix-match index after a write.
// The nil check matters: during route simulation every decision writes the
// RIB and nothing queries LPM, so skipping the atomic store (and its write
// barrier) on an already-nil index keeps the hot install path cheap.
func (t *RIB) invalidateLPM() {
	if t.lpm.Load() != nil {
		t.lpm.Store(nil)
	}
}

func (t *RIB) buildLPM() *lpmIndex {
	ix := &lpmIndex{
		v4: make(map[int]map[netip.Addr]lpmEntry),
		v6: make(map[int]map[netip.Addr]lpmEntry),
	}
	for p, rows := range t.byPrefix {
		if !p.IsValid() {
			continue
		}
		var sel []Route
		for _, r := range rows {
			if r.RouteType == RouteBest {
				sel = append(sel, r)
			}
		}
		if len(sel) == 0 {
			continue
		}
		slices.SortFunc(sel, CompareRoutes)
		m := ix.v6
		if p.Addr().Is4() {
			m = ix.v4
		}
		bm := m[p.Bits()]
		if bm == nil {
			bm = make(map[netip.Addr]lpmEntry)
			m[p.Bits()] = bm
		}
		key := p.Masked().Addr()
		// Distinct unmasked keys can collapse onto one network; keep the
		// lexically smaller prefix deterministically.
		if prev, dup := bm[key]; dup && comparePrefix(prev.prefix, p) <= 0 {
			continue
		}
		bm[key] = lpmEntry{prefix: p, best: sel}
	}
	for bits := range ix.v4 {
		ix.v4bits = append(ix.v4bits, bits)
	}
	for bits := range ix.v6 {
		ix.v6bits = append(ix.v6bits, bits)
	}
	slices.SortFunc(ix.v4bits, func(a, b int) int { return b - a })
	slices.SortFunc(ix.v6bits, func(a, b int) int { return b - a })
	return ix
}

// LongestMatch returns the best routes of the longest prefix covering addr,
// together with the matched prefix. ok is false if no prefix covers addr.
// Lookups go through a lazily built per-length index; the returned slice is
// shared and must not be modified by the caller.
func (t *RIB) LongestMatch(addr netip.Addr) (prefix netip.Prefix, best []Route, ok bool) {
	ix := t.lpm.Load()
	if ix == nil {
		ix = t.buildLPM()
		t.lpm.Store(ix)
	}
	bits, m := ix.v6bits, ix.v6
	if addr.Is4() {
		bits, m = ix.v4bits, ix.v4
	}
	for _, b := range bits {
		key := netip.PrefixFrom(addr, b).Masked().Addr()
		if e, hit := m[b][key]; hit {
			return e.prefix, e.best, true
		}
	}
	return netip.Prefix{}, nil, false
}

// LongestMatchScan is the original index-free longest-prefix match: a full
// scan over every prefix. Kept as the reference implementation for the
// legacy (string-keyed) engine path and for equivalence tests.
func (t *RIB) LongestMatchScan(addr netip.Addr) (prefix netip.Prefix, best []Route, ok bool) {
	bestBits := -1
	for p, rows := range t.byPrefix {
		if !p.Contains(addr) || p.Bits() <= bestBits {
			continue
		}
		var sel []Route
		for _, r := range rows {
			if r.RouteType == RouteBest {
				sel = append(sel, r)
			}
		}
		if len(sel) == 0 {
			continue
		}
		bestBits = p.Bits()
		prefix, best = p, sel
	}
	if bestBits < 0 {
		return netip.Prefix{}, nil, false
	}
	slices.SortFunc(best, CompareRoutes)
	return prefix, best, true
}

// GlobalRIB is the paper's global RIB abstraction: all routes from all
// routers collected into a single table with device and vrf columns.
type GlobalRIB struct {
	rows []Route
}

// NewGlobalRIB builds a global RIB from the given rows. Rows are copied and
// kept in deterministic order.
func NewGlobalRIB(rows []Route) *GlobalRIB {
	out := append([]Route(nil), rows...)
	slices.SortFunc(out, CompareRoutes)
	return &GlobalRIB{rows: out}
}

// NewGlobalRIBFromSorted wraps rows already in CompareRoutes order, without
// copying or re-sorting. Callers must not modify rows afterwards.
func NewGlobalRIBFromSorted(rows []Route) *GlobalRIB {
	return &GlobalRIB{rows: rows}
}

// MergeSortedRoutes merges route slices — each already in CompareRoutes
// order — into one sorted slice. Sharded verification stitches per-shard
// segments with it instead of re-sorting the concatenation: shards hold
// disjoint device sets, so the merge reproduces exactly the order
// NewGlobalRIB would produce, at a fraction of the comparisons.
func MergeSortedRoutes(segs [][]Route) []Route {
	n, live := 0, 0
	for _, s := range segs {
		n += len(s)
		if len(s) > 0 {
			live++
		}
	}
	out := make([]Route, 0, n)
	if live <= 1 {
		for _, s := range segs {
			out = append(out, s...)
		}
		return out
	}
	idx := make([]int, len(segs))
	for len(out) < n {
		// Pick the segment with the smallest head, remembering the runner-up
		// head as the bound up to which the winner's run can be copied whole
		// (runs are long: each shard holds contiguous device blocks).
		best, second := -1, -1
		for i, s := range segs {
			if idx[i] >= len(s) {
				continue
			}
			switch {
			case best < 0:
				best = i
			case CompareRoutes(s[idx[i]], segs[best][idx[best]]) < 0:
				best, second = i, best
			case second < 0 || CompareRoutes(s[idx[i]], segs[second][idx[second]]) < 0:
				second = i
			}
		}
		s := segs[best]
		j := idx[best] + 1
		if second >= 0 {
			bound := segs[second][idx[second]]
			for j < len(s) && CompareRoutes(s[j], bound) < 0 {
				j++
			}
		} else {
			j = len(s)
		}
		out = append(out, s[idx[best]:j]...)
		idx[best] = j
	}
	return out
}

// Merge combines per-device RIBs into one global RIB.
func Merge(ribs ...*RIB) *GlobalRIB {
	var rows []Route
	for _, t := range ribs {
		if t != nil {
			rows = append(rows, t.All()...)
		}
	}
	return NewGlobalRIB(rows)
}

// Rows returns all rows in deterministic order. Callers must not modify the
// returned slice.
func (g *GlobalRIB) Rows() []Route { return g.rows }

// Len returns the number of rows.
func (g *GlobalRIB) Len() int { return len(g.rows) }

// Filter returns a new global RIB with only the rows where keep returns true.
func (g *GlobalRIB) Filter(keep func(Route) bool) *GlobalRIB {
	var rows []Route
	for _, r := range g.rows {
		if keep(r) {
			rows = append(rows, r)
		}
	}
	return &GlobalRIB{rows: rows}
}

// Equal reports whether two global RIBs contain exactly the same rows with
// identical attributes. Both are already in deterministic order.
func (g *GlobalRIB) Equal(o *GlobalRIB) bool {
	if len(g.rows) != len(o.rows) {
		return false
	}
	for i := range g.rows {
		if !g.rows[i].AttrsEqual(o.rows[i]) {
			return false
		}
	}
	return true
}

// Diff returns rows present in g but not o, and rows present in o but not g,
// comparing full attributes. Used for counterexamples and diagnosis. The
// comparison deliberately excludes provenance fields (Peer, Source, IGPCost,
// ViaSR): a simulated route and a monitored route that agree on the
// key and BGP attributes must not diff.
func (g *GlobalRIB) Diff(o *GlobalRIB) (onlyG, onlyO []Route) {
	// One binary signature per row, computed once; the multiset subtraction
	// below is then pure map traffic. This sits on the what-if serving hot
	// path, where every query diffs the forked RIB against the base.
	sigsOf := func(rows []Route) []string {
		out := make([]string, len(rows))
		buf := GetSigBuf()
		defer PutSigBuf(buf)
		for i := range rows {
			*buf = appendAttrDiffSig((*buf)[:0], &rows[i])
			out[i] = string(*buf)
		}
		return out
	}
	gSigs, oSigs := sigsOf(g.rows), sigsOf(o.rows)
	inO := make(map[string]int, len(o.rows))
	for _, s := range oSigs {
		inO[s]++
	}
	for i, s := range gSigs {
		if inO[s] > 0 {
			inO[s]--
		} else {
			onlyG = append(onlyG, g.rows[i])
		}
	}
	inG := make(map[string]int, len(g.rows))
	for _, s := range gSigs {
		inG[s]++
	}
	for i, s := range oSigs {
		if inG[s] > 0 {
			inG[s]--
		} else {
			onlyO = append(onlyO, o.rows[i])
		}
	}
	return onlyG, onlyO
}

// appendAttrDiffSig encodes the fields Diff compares — the route key plus the
// full attribute set — into a compact binary signature.
func appendAttrDiffSig(dst []byte, r *Route) []byte {
	dst = sigStr(dst, r.Device)
	dst = sigStr(dst, r.VRF)
	dst = sigPrefix(dst, r.Prefix)
	dst = append(dst, byte(r.Protocol))
	dst = sigAddr(dst, r.NextHop)
	cs := r.Communities.All()
	dst = binary.AppendUvarint(dst, uint64(len(cs)))
	for _, c := range cs {
		dst = binary.AppendUvarint(dst, uint64(c))
	}
	dst = binary.AppendUvarint(dst, uint64(len(r.ASPath.Seq)))
	for _, asn := range r.ASPath.Seq {
		dst = binary.AppendUvarint(dst, uint64(asn))
	}
	dst = binary.AppendUvarint(dst, uint64(len(r.ASPath.Set)))
	for _, asn := range r.ASPath.Set {
		dst = binary.AppendUvarint(dst, uint64(asn))
	}
	dst = append(dst, byte(r.Origin), byte(r.RouteType))
	dst = binary.AppendUvarint(dst, uint64(r.LocalPref))
	dst = binary.AppendUvarint(dst, uint64(r.MED))
	dst = binary.AppendUvarint(dst, uint64(r.Weight))
	dst = binary.AppendUvarint(dst, uint64(r.Preference))
	return dst
}

// RIBSet groups route rows into per-(device, vrf) RIBs; the form traffic
// simulation consumes when RIBs are loaded from distributed result files.
type RIBSet struct {
	m map[[2]string]*RIB
}

// NewRIBSet builds a RIB set from flat route rows.
func NewRIBSet(rows []Route) *RIBSet {
	s := &RIBSet{m: make(map[[2]string]*RIB)}
	s.AddRows(rows)
	return s
}

// AddRows merges additional rows into the set.
func (s *RIBSet) AddRows(rows []Route) {
	for _, r := range rows {
		k := [2]string{r.Device, r.VRF}
		t, ok := s.m[k]
		if !ok {
			t = NewRIB(r.Device, r.VRF)
			s.m[k] = t
		}
		t.Add(r)
	}
}

// RIB returns the table for (device, vrf), or an empty RIB.
func (s *RIBSet) RIB(device, vrf string) *RIB {
	if t, ok := s.m[[2]string{device, vrf}]; ok {
		return t
	}
	return NewRIB(device, vrf)
}

// Rows returns every row in deterministic order.
func (s *RIBSet) Rows() []Route {
	keys := make([][2]string, 0, len(s.m))
	for k := range s.m {
		keys = append(keys, k)
	}
	slices.SortFunc(keys, func(a, b [2]string) int {
		if a[0] != b[0] {
			return strings.Compare(a[0], b[0])
		}
		return strings.Compare(a[1], b[1])
	})
	var out []Route
	for _, k := range keys {
		out = append(out, s.m[k].All()...)
	}
	return out
}
