package netmodel

import "sync"

// sigBufPool recycles the scratch buffers behind the signature encoders
// (Route.AppendSignature, BoundaryAdv.AppendSignature, appendAttrDiffSig).
// Their call sites — RIB digesting, global-RIB diffing, boundary
// canonicalization — sit on the serve hot path where every query re-encodes
// thousands of rows; without the pool each call chain allocates (and often
// regrows) its own buffer. Buffers are pointers-to-slice to keep the pool
// allocation-free, and hand back whatever capacity they grew to.
var sigBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 512)
		return &b
	},
}

// GetSigBuf returns an empty signature scratch buffer from the pool. Use it
// as `buf := GetSigBuf(); defer PutSigBuf(buf)` and encode via
// `*buf = row.AppendSignature((*buf)[:0])`; the contents must not be
// retained past PutSigBuf (copy with string(...) or append first).
func GetSigBuf() *[]byte {
	return sigBufPool.Get().(*[]byte)
}

// PutSigBuf returns a buffer obtained from GetSigBuf to the pool.
func PutSigBuf(b *[]byte) {
	*b = (*b)[:0]
	sigBufPool.Put(b)
}
