package netmodel

import (
	"fmt"
	"net/netip"
	"strings"
)

// DefaultVRF is the name of the global routing table.
const DefaultVRF = "global"

// Route is one row of a (global) RIB. ECMP routes for a prefix appear as
// multiple rows sharing the prefix, matching the paper's global RIB
// abstraction (Figure 6).
type Route struct {
	// Location.
	Device string // router hosting the route
	VRF    string // VRF name; DefaultVRF for the global table

	// Identity.
	Prefix   netip.Prefix
	Protocol Protocol
	NextHop  netip.Addr

	// BGP attributes.
	Communities CommunitySet
	LocalPref   uint32
	MED         uint32
	Weight      uint32
	Preference  uint32 // administrative preference (vendor "route preference")
	ASPath      ASPath
	Origin      Origin

	// Selection state.
	IGPCost   uint32 // IGP metric to NextHop at selection time
	RouteType RouteType
	ViaSR     bool // next hop is reached through an SR tunnel

	// Provenance for propagation graphs and diagnosis.
	Peer   string // neighbor device the route was learned from ("" if local)
	Source string // device where the input route was injected
}

// Key uniquely identifies a route row within a RIB for comparison purposes.
type RouteKey struct {
	Device   string
	VRF      string
	Prefix   netip.Prefix
	Protocol Protocol
	NextHop  netip.Addr
}

// Key returns the identity key of the route.
func (r Route) Key() RouteKey {
	return RouteKey{Device: r.Device, VRF: r.VRF, Prefix: r.Prefix, Protocol: r.Protocol, NextHop: r.NextHop}
}

// AttrsEqual reports whether all non-provenance attributes of the two routes
// are identical. Used by RCL's PRE = POST comparison and by the accuracy
// diagnosis framework.
func (r Route) AttrsEqual(o Route) bool {
	return r.Device == o.Device &&
		r.VRF == o.VRF &&
		r.Prefix == o.Prefix &&
		r.Protocol == o.Protocol &&
		r.NextHop == o.NextHop &&
		r.Communities.Equal(o.Communities) &&
		r.LocalPref == o.LocalPref &&
		r.MED == o.MED &&
		r.Weight == o.Weight &&
		r.Preference == o.Preference &&
		r.ASPath.Equal(o.ASPath) &&
		r.Origin == o.Origin &&
		r.RouteType == o.RouteType
}

// Identical reports full structural equality: AttrsEqual plus the selection
// state and provenance fields. Two identical rows are interchangeable for
// every downstream consumer (forwarding, intents, diagnosis).
func (r Route) Identical(o Route) bool {
	return r.AttrsEqual(o) &&
		r.IGPCost == o.IGPCost &&
		r.ViaSR == o.ViaSR &&
		r.Peer == o.Peer &&
		r.Source == o.Source
}

func (r Route) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s/%s %s via %s proto=%s lp=%d med=%d comm=[%s] aspath=[%s] %s",
		r.Device, r.VRF, r.Prefix, r.NextHop, r.Protocol, r.LocalPref, r.MED,
		r.Communities, r.ASPath, r.RouteType)
	return b.String()
}

// Fields usable in RCL route predicates and aggregations, mirroring the
// columns of the paper's global RIB (Figure 6 plus selection metadata).
const (
	FieldDevice      = "device"
	FieldVRF         = "vrf"
	FieldPrefix      = "prefix"
	FieldProtocol    = "protocol"
	FieldNextHop     = "nexthop"
	FieldCommunities = "communities"
	FieldLocalPref   = "localPref"
	FieldMED         = "med"
	FieldWeight      = "weight"
	FieldPreference  = "preference"
	FieldASPath      = "aspath"
	FieldOrigin      = "origin"
	FieldIGPCost     = "igpCost"
	FieldRouteType   = "routeType"
	FieldPeer        = "peer"
	FieldSource      = "source"
)

// FieldNames lists all route fields accessible from RCL.
var FieldNames = []string{
	FieldDevice, FieldVRF, FieldPrefix, FieldProtocol, FieldNextHop,
	FieldCommunities, FieldLocalPref, FieldMED, FieldWeight, FieldPreference,
	FieldASPath, FieldOrigin, FieldIGPCost, FieldRouteType, FieldPeer, FieldSource,
}

// Field returns the value of the named RCL-visible column. Scalar columns
// are returned as string or int64; set-valued columns (communities) as
// []string. ok is false for unknown field names.
func (r Route) Field(name string) (v any, ok bool) {
	switch name {
	case FieldDevice:
		return r.Device, true
	case FieldVRF:
		return r.VRF, true
	case FieldPrefix:
		return r.Prefix.String(), true
	case FieldProtocol:
		return r.Protocol.String(), true
	case FieldNextHop:
		return r.NextHop.String(), true
	case FieldCommunities:
		return r.Communities.Strings(), true
	case FieldLocalPref:
		return int64(r.LocalPref), true
	case FieldMED:
		return int64(r.MED), true
	case FieldWeight:
		return int64(r.Weight), true
	case FieldPreference:
		return int64(r.Preference), true
	case FieldASPath:
		return r.ASPath.String(), true
	case FieldOrigin:
		return r.Origin.String(), true
	case FieldIGPCost:
		return int64(r.IGPCost), true
	case FieldRouteType:
		return r.RouteType.String(), true
	case FieldPeer:
		return r.Peer, true
	case FieldSource:
		return r.Source, true
	}
	return nil, false
}

// LastAddr returns the last IP address covered by p. The §3.2 ordering
// heuristic sorts input routes by this address.
func LastAddr(p netip.Prefix) netip.Addr {
	a := p.Addr()
	bits := p.Bits()
	bytes := a.AsSlice()
	for i := bits; i < len(bytes)*8; i++ {
		bytes[i/8] |= 1 << (7 - i%8)
	}
	out, _ := netip.AddrFromSlice(bytes)
	return out
}

// CompareRoutes provides a deterministic total ordering over route rows so
// RIB files, global RIBs, and counterexamples are stable across runs.
func CompareRoutes(a, b Route) int {
	if c := strings.Compare(a.Device, b.Device); c != 0 {
		return c
	}
	if c := strings.Compare(a.VRF, b.VRF); c != 0 {
		return c
	}
	if c := comparePrefix(a.Prefix, b.Prefix); c != 0 {
		return c
	}
	if a.Protocol != b.Protocol {
		if a.Protocol < b.Protocol {
			return -1
		}
		return 1
	}
	if c := a.NextHop.Compare(b.NextHop); c != 0 {
		return c
	}
	if a.RouteType != b.RouteType {
		if a.RouteType < b.RouteType {
			return -1
		}
		return 1
	}
	return strings.Compare(a.Peer, b.Peer)
}

func comparePrefix(a, b netip.Prefix) int {
	if c := a.Addr().Compare(b.Addr()); c != 0 {
		return c
	}
	switch {
	case a.Bits() < b.Bits():
		return -1
	case a.Bits() > b.Bits():
		return 1
	}
	return 0
}
