package netmodel

import (
	"fmt"
	"math/rand"
	"net/netip"
	"slices"
	"testing"
)

func mkRoute(dev, vrf, prefix, nh string, rt RouteType) Route {
	return Route{
		Device: dev, VRF: vrf,
		Prefix:    netip.MustParsePrefix(prefix),
		Protocol:  ProtoBGP,
		NextHop:   netip.MustParseAddr(nh),
		RouteType: rt,
	}
}

func TestRIBAddAndBest(t *testing.T) {
	rib := NewRIB("A", DefaultVRF)
	p := netip.MustParsePrefix("10.0.0.0/24")
	rib.Add(mkRoute("X", "ignored", "10.0.0.0/24", "1.1.1.1", RouteBest))
	rib.Add(mkRoute("X", "ignored", "10.0.0.0/24", "2.2.2.2", RouteCandidate))
	if rib.Len() != 2 {
		t.Fatalf("Len = %d", rib.Len())
	}
	for _, r := range rib.Routes(p) {
		if r.Device != "A" || r.VRF != DefaultVRF {
			t.Errorf("Add must force device/vrf, got %s/%s", r.Device, r.VRF)
		}
	}
	best := rib.Best(p)
	if len(best) != 1 || best[0].NextHop != netip.MustParseAddr("1.1.1.1") {
		t.Errorf("Best = %v", best)
	}
}

func TestRIBReplace(t *testing.T) {
	rib := NewRIB("A", DefaultVRF)
	p := netip.MustParsePrefix("10.0.0.0/24")
	rib.Add(mkRoute("A", DefaultVRF, "10.0.0.0/24", "1.1.1.1", RouteBest))
	rib.Replace(p, []Route{mkRoute("A", DefaultVRF, "10.0.0.0/24", "3.3.3.3", RouteBest)})
	if got := rib.Best(p); len(got) != 1 || got[0].NextHop != netip.MustParseAddr("3.3.3.3") {
		t.Errorf("Replace: %v", got)
	}
	rib.Replace(p, nil)
	if rib.Len() != 0 {
		t.Error("Replace(nil) should delete the prefix")
	}
}

func TestRIBLongestMatch(t *testing.T) {
	rib := NewRIB("A", DefaultVRF)
	rib.Add(mkRoute("A", DefaultVRF, "10.0.0.0/8", "1.0.0.1", RouteBest))
	rib.Add(mkRoute("A", DefaultVRF, "10.1.0.0/16", "2.0.0.1", RouteBest))
	rib.Add(mkRoute("A", DefaultVRF, "10.1.2.0/24", "3.0.0.1", RouteCandidate)) // no best rows

	prefix, best, ok := rib.LongestMatch(netip.MustParseAddr("10.1.2.3"))
	if !ok {
		t.Fatal("no match")
	}
	// /24 has no best route, so LPM must fall back to /16.
	if prefix != netip.MustParsePrefix("10.1.0.0/16") {
		t.Errorf("matched %s, want 10.1.0.0/16", prefix)
	}
	if len(best) != 1 || best[0].NextHop != netip.MustParseAddr("2.0.0.1") {
		t.Errorf("best = %v", best)
	}
	if _, _, ok := rib.LongestMatch(netip.MustParseAddr("192.168.0.1")); ok {
		t.Error("want no match for uncovered address")
	}
}

func TestGlobalRIBDeterministicOrder(t *testing.T) {
	r1 := mkRoute("B", DefaultVRF, "10.0.0.0/24", "1.1.1.1", RouteBest)
	r2 := mkRoute("A", DefaultVRF, "10.0.0.0/24", "1.1.1.1", RouteBest)
	g1 := NewGlobalRIB([]Route{r1, r2})
	g2 := NewGlobalRIB([]Route{r2, r1})
	if !g1.Equal(g2) {
		t.Error("insertion order must not matter")
	}
	if g1.Rows()[0].Device != "A" {
		t.Error("rows not sorted by device")
	}
}

func TestGlobalRIBEqualAndDiff(t *testing.T) {
	base := []Route{
		mkRoute("A", DefaultVRF, "10.0.0.0/24", "2.0.0.1", RouteBest),
		mkRoute("B", DefaultVRF, "10.0.0.0/24", "4.0.0.1", RouteBest),
	}
	g := NewGlobalRIB(base)
	same := NewGlobalRIB(base)
	if !g.Equal(same) {
		t.Fatal("identical RIBs must be Equal")
	}

	changed := base[0]
	changed.LocalPref = 300
	h := NewGlobalRIB([]Route{changed, base[1]})
	if g.Equal(h) {
		t.Fatal("attribute change must break equality")
	}
	onlyG, onlyH := g.Diff(h)
	if len(onlyG) != 1 || len(onlyH) != 1 {
		t.Fatalf("Diff = %d/%d rows, want 1/1", len(onlyG), len(onlyH))
	}
	if onlyG[0].LocalPref == onlyH[0].LocalPref {
		t.Error("diff rows should differ in LocalPref")
	}
}

func TestMerge(t *testing.T) {
	ra := NewRIB("A", DefaultVRF)
	ra.Add(mkRoute("A", DefaultVRF, "10.0.0.0/24", "2.0.0.1", RouteBest))
	rb := NewRIB("B", "vrf1")
	rb.Add(mkRoute("B", "vrf1", "20.0.0.0/24", "3.0.0.1", RouteBest))
	g := Merge(ra, rb, nil)
	if g.Len() != 2 {
		t.Fatalf("Len = %d", g.Len())
	}
	if g.Rows()[0].Device != "A" || g.Rows()[1].VRF != "vrf1" {
		t.Errorf("rows = %v", g.Rows())
	}
}

func TestGlobalRIBFilter(t *testing.T) {
	g := NewGlobalRIB([]Route{
		mkRoute("A", DefaultVRF, "10.0.0.0/24", "2.0.0.1", RouteBest),
		mkRoute("B", DefaultVRF, "10.0.0.0/24", "4.0.0.1", RouteBest),
	})
	f := g.Filter(func(r Route) bool { return r.Device == "A" })
	if f.Len() != 1 || f.Rows()[0].Device != "A" {
		t.Errorf("Filter: %v", f.Rows())
	}
	if g.Len() != 2 {
		t.Error("Filter must not mutate the source")
	}
}

func TestTopologyBasics(t *testing.T) {
	topo := NewTopology()
	topo.AddNode(Node{Name: "A", Loopback: netip.MustParseAddr("1.1.1.1")})
	topo.AddNode(Node{Name: "B", Loopback: netip.MustParseAddr("2.2.2.2")})
	topo.AddNode(Node{Name: "C", Loopback: netip.MustParseAddr("3.3.3.3")})
	l := topo.AddLink(Link{
		A: "B", B: "A", AIface: "eth0", BIface: "eth1",
		AAddr: netip.MustParseAddr("10.0.0.2"), BAddr: netip.MustParseAddr("10.0.0.1"),
		CostAB: 10, CostBA: 20, Bandwidth: 1e9,
	})
	// Endpoints are normalized: A < B lexically.
	if l.A != "A" || l.B != "B" || l.AIface != "eth1" || l.CostAB != 20 {
		t.Errorf("normalization: %+v", l)
	}
	topo.AddLink(Link{A: "A", B: "C", AIface: "e2", BIface: "e0", CostAB: 5, CostBA: 5})

	nbrs := topo.Neighbors("A")
	if len(nbrs) != 2 || nbrs[0].Device != "B" || nbrs[1].Device != "C" {
		t.Fatalf("Neighbors(A) = %v", nbrs)
	}
	if nbrs[0].Cost != 20 {
		t.Errorf("A->B cost = %d, want 20", nbrs[0].Cost)
	}

	if owner := topo.AddrOwner(netip.MustParseAddr("10.0.0.2")); owner != "B" {
		t.Errorf("AddrOwner = %q", owner)
	}
	if owner := topo.AddrOwner(netip.MustParseAddr("3.3.3.3")); owner != "C" {
		t.Errorf("loopback AddrOwner = %q", owner)
	}
}

func TestTopologyFailuresAndClone(t *testing.T) {
	topo := NewTopology()
	for _, n := range []string{"A", "B", "C"} {
		topo.AddNode(Node{Name: n})
	}
	topo.AddLink(Link{A: "A", B: "B", AIface: "e0", BIface: "e0", CostAB: 1, CostBA: 1})
	topo.AddLink(Link{A: "A", B: "C", AIface: "e1", BIface: "e0", CostAB: 1, CostBA: 1})

	clone := topo.Clone()

	topo.SetNodeUp("B", false)
	if got := topo.Neighbors("A"); len(got) != 1 || got[0].Device != "C" {
		t.Errorf("down node still a neighbor: %v", got)
	}
	if got := clone.Neighbors("A"); len(got) != 2 {
		t.Errorf("clone affected by original mutation: %v", got)
	}

	id := LinkID{A: "A", B: "C", AIface: "e1", BIface: "e0"}
	if !topo.SetLinkUp(id, false) {
		t.Fatal("SetLinkUp failed")
	}
	if got := topo.Neighbors("A"); len(got) != 0 {
		t.Errorf("down link still a neighbor: %v", got)
	}
	if !topo.RemoveLink(id) {
		t.Error("RemoveLink failed")
	}
	if topo.Link(id) != nil {
		t.Error("link still present after removal")
	}
	topo.RemoveNode("B")
	if topo.Node("B") != nil || len(topo.Links()) != 0 {
		t.Error("RemoveNode should drop node and its links")
	}
}

func TestPathHelpers(t *testing.T) {
	id := LinkID{A: "A", B: "B", AIface: "e0", BIface: "e0"}
	p := Path{Hops: []Hop{{Device: "A", Link: id}, {Device: "B"}}, Exit: ExitDelivered}
	if got := p.Devices(); len(got) != 2 || got[0] != "A" || got[1] != "B" {
		t.Errorf("Devices = %v", got)
	}
	if !p.Traverses(id) {
		t.Error("Traverses should find the link")
	}
	if p.Traverses(LinkID{A: "X", B: "Y"}) {
		t.Error("Traverses false positive")
	}
}

func TestLinkLoadAdd(t *testing.T) {
	a := LinkLoad{{A: "A", B: "B"}: 5}
	b := LinkLoad{{A: "A", B: "B"}: 7, {A: "B", B: "C"}: 1}
	a.Add(b)
	if a[LinkID{A: "A", B: "B"}] != 12 || a[LinkID{A: "B", B: "C"}] != 1 {
		t.Errorf("Add: %v", a)
	}
}

// TestMergeSortedRoutes checks the stitch merge against NewGlobalRIB on
// randomized disjoint-device segments: merging per-segment sorted runs must
// reproduce the full sort exactly.
func TestMergeSortedRoutes(t *testing.T) {
	rnd := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		nseg := 1 + rnd.Intn(5)
		segs := make([][]Route, nseg)
		var all []Route
		for i := range segs {
			for j, n := 0, rnd.Intn(6); j < n; j++ {
				// Unique (device, prefix) per row: CompareRoutes is a total
				// order over the set, so sorted order is unambiguous and the
				// MED payload checks rows, not just keys.
				r := Route{
					Device: fmt.Sprintf("d%d-%d", i, rnd.Intn(3)), // devices disjoint across segments
					VRF:    "global",
					Prefix: netip.PrefixFrom(netip.AddrFrom4([4]byte{10, byte(i), byte(j), 0}), 24),
					MED:    uint32(rnd.Intn(100)),
				}
				segs[i] = append(segs[i], r)
				all = append(all, r)
			}
			slices.SortFunc(segs[i], CompareRoutes)
		}
		got := MergeSortedRoutes(segs)
		want := NewGlobalRIB(all).Rows()
		if len(got) != len(want) {
			t.Fatalf("trial %d: merged %d rows, want %d", trial, len(got), len(want))
		}
		for k := range got {
			if CompareRoutes(got[k], want[k]) != 0 || got[k].MED != want[k].MED {
				t.Fatalf("trial %d row %d: merge order diverged from full sort", trial, k)
			}
		}
	}
}
