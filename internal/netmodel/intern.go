package netmodel

import (
	"net/netip"
	"slices"
	"strings"
	"sync"
)

// Dense integer identifiers for the index-based core. IDs are assigned at
// index/intern build time and are valid only against the structure that
// assigned them (a TopoIndex or an Interner); they never appear in engine
// results, wire blobs, or intent evaluation, which stay string-keyed.
//
// The assignment order is part of the engine's determinism contract:
//
//   - DevID ascends in lexical device-name order, so comparing two DevIDs
//     numerically is exactly comparing the device names.
//   - LinkIdx ascends in lexical LinkID.String() order, so comparing two
//     LinkIdx values is exactly comparing the canonical link identifiers.
//   - CSR adjacency rows are sorted by (neighbor DevID, LinkIdx), which is
//     exactly Topology.Neighbors' (neighbor name, link string) order.
//
// Every hot path that used to sort strings can therefore sort the integer
// IDs instead and produce byte-identical output.
type (
	// DevID densely identifies a device.
	DevID int32
	// LinkIdx densely identifies a link.
	LinkIdx int32
	// PrefixID densely identifies an interned prefix.
	PrefixID int32
)

// NoDev is the invalid device ID (address not owned, name unknown).
const NoDev DevID = -1

// NoLink is the invalid link index.
const NoLink LinkIdx = -1

// NoPrefix is the invalid prefix ID.
const NoPrefix PrefixID = -1

// TopoIndex is the CSR (compressed sparse row) view of a Topology: dense
// device/link IDs with two-way name tables, a flat adjacency array, and the
// address-ownership table. It is built lazily by Topology.Index, cached, and
// invalidated by structural mutations (add/remove of nodes or links).
// Up/down toggles do NOT invalidate it: the index stores live *Node / *Link
// pointers, so traversals read the current Up state through them.
type TopoIndex struct {
	devNames []string // DevID -> name, ascending
	devIDs   map[string]DevID
	nodes    []*Node // DevID -> live node
	links    []*Link // LinkIdx -> live link, in LinkID.String() order
	linkIDs  []LinkID
	linkIdx  map[LinkID]LinkIdx
	// insOrder maps a LinkIdx back to the link's position in the topology's
	// insertion-order slice, for the few callers that must replicate
	// first-match-in-insertion-order semantics.
	insOrder []int32

	// CSR adjacency: the edges leaving device d occupy positions
	// off[d]..off[d+1] in the adj* arrays, sorted by (neighbor, link).
	// Every link is present regardless of Up state; traversals skip dead
	// edges via the live pointers.
	off      []int32
	adjDev   []DevID
	adjLink  []LinkIdx
	adjFromA []bool // row device is the link's A side

	// owner replicates Topology.AddrOwner as IDs: interface addresses in link
	// insertion order (first writer wins), then loopbacks (sorted names,
	// first owner wins) overriding.
	owner map[netip.Addr]DevID
}

// NumDevices returns the number of interned devices.
func (ix *TopoIndex) NumDevices() int { return len(ix.devNames) }

// NumLinks returns the number of interned links.
func (ix *TopoIndex) NumLinks() int { return len(ix.links) }

// DevID returns the dense ID of a device name.
func (ix *TopoIndex) DevID(name string) (DevID, bool) {
	id, ok := ix.devIDs[name]
	return id, ok
}

// DevName returns the device name for an ID (IDs come from this index, so
// the bounds always hold for well-formed callers).
func (ix *TopoIndex) DevName(id DevID) string { return ix.devNames[id] }

// Node returns the live node for an ID.
func (ix *TopoIndex) Node(id DevID) *Node { return ix.nodes[id] }

// LinkIdxOf returns the dense index of a canonical link ID.
func (ix *TopoIndex) LinkIdxOf(id LinkID) (LinkIdx, bool) {
	i, ok := ix.linkIdx[id]
	return i, ok
}

// LinkAt returns the live link at a dense index.
func (ix *TopoIndex) LinkAt(i LinkIdx) *Link { return ix.links[i] }

// LinkIDAt returns the canonical LinkID at a dense index without
// re-materializing it.
func (ix *TopoIndex) LinkIDAt(i LinkIdx) LinkID { return ix.linkIDs[i] }

// InsertionOrder returns the link's position in Topology.Links order.
func (ix *TopoIndex) InsertionOrder(i LinkIdx) int32 { return ix.insOrder[i] }

// EdgeRange returns the CSR positions of the edges leaving device d.
func (ix *TopoIndex) EdgeRange(d DevID) (lo, hi int32) { return ix.off[d], ix.off[d+1] }

// EdgeDev returns the neighbor device of the edge at CSR position pos.
func (ix *TopoIndex) EdgeDev(pos int32) DevID { return ix.adjDev[pos] }

// EdgeLinkIdx returns the link index of the edge at CSR position pos.
func (ix *TopoIndex) EdgeLinkIdx(pos int32) LinkIdx { return ix.adjLink[pos] }

// EdgeLink returns the live link of the edge at CSR position pos.
func (ix *TopoIndex) EdgeLink(pos int32) *Link { return ix.links[ix.adjLink[pos]] }

// EdgeFromA reports whether the row device is the A side of the edge's link.
func (ix *TopoIndex) EdgeFromA(pos int32) bool { return ix.adjFromA[pos] }

// EdgeCost returns the directed metric of the edge at pos (same semantics as
// Link.DirCost, read through the live link).
func (ix *TopoIndex) EdgeCost(pos int32, useTE bool) uint32 {
	l := ix.links[ix.adjLink[pos]]
	cost, te := l.CostBA, l.TEBA
	if ix.adjFromA[pos] {
		cost, te = l.CostAB, l.TEAB
	}
	if useTE && te != 0 {
		return te
	}
	return cost
}

// EdgeUp reports whether the edge at pos is traversable: its link is up and
// the neighbor node is up. (The row device's own Up state is the caller's
// concern, mirroring Topology.Neighbors.)
func (ix *TopoIndex) EdgeUp(pos int32) bool {
	return ix.links[ix.adjLink[pos]].Up && ix.nodes[ix.adjDev[pos]].Up
}

// AddrOwnerID returns the DevID owning addr (loopback or link interface), or
// NoDev. Same ownership rules as Topology.AddrOwner.
func (ix *TopoIndex) AddrOwnerID(addr netip.Addr) DevID {
	if id, ok := ix.owner[addr]; ok {
		return id
	}
	return NoDev
}

// TableBytes approximates the memory the ID tables occupy, for telemetry.
func (ix *TopoIndex) TableBytes() int64 {
	b := int64(0)
	for _, n := range ix.devNames {
		b += int64(len(n)) + 16
	}
	b += int64(len(ix.nodes)+len(ix.links))*8 + int64(len(ix.linkIDs))*64
	b += int64(len(ix.off)+len(ix.adjDev)+len(ix.adjLink)+len(ix.insOrder))*4 + int64(len(ix.adjFromA))
	b += int64(len(ix.owner)) * 24
	return b
}

// Index returns the topology's CSR index, building it on first use. The
// index is safe for concurrent readers; structural mutations invalidate it
// (and Up/down toggles deliberately do not — see TopoIndex).
func (t *Topology) Index() *TopoIndex {
	t.addrMu.RLock()
	ix := t.topoIdx
	t.addrMu.RUnlock()
	if ix == nil {
		ix = t.buildIndex()
	}
	return ix
}

func (t *Topology) buildIndex() *TopoIndex {
	t.addrMu.Lock()
	defer t.addrMu.Unlock()
	if t.topoIdx != nil {
		return t.topoIdx
	}
	ix := &TopoIndex{
		devIDs:  make(map[string]DevID, len(t.nodes)),
		linkIdx: make(map[LinkID]LinkIdx, len(t.links)),
		owner:   make(map[netip.Addr]DevID, len(t.nodes)+2*len(t.links)),
	}

	// Devices in sorted-name order: DevID order == name order.
	ix.devNames = make([]string, 0, len(t.nodes))
	for name := range t.nodes {
		ix.devNames = append(ix.devNames, name)
	}
	slices.Sort(ix.devNames)
	ix.nodes = make([]*Node, len(ix.devNames))
	for i, name := range ix.devNames {
		ix.devIDs[name] = DevID(i)
		ix.nodes[i] = t.nodes[name]
	}

	// Links in canonical-string order: LinkIdx order == LinkID.String() order.
	type linkEnt struct {
		l   *Link
		key string
		ins int32
	}
	ents := make([]linkEnt, len(t.links))
	for i, l := range t.links {
		ents[i] = linkEnt{l: l, key: l.ID().String(), ins: int32(i)}
	}
	slices.SortStableFunc(ents, func(a, b linkEnt) int { return strings.Compare(a.key, b.key) })
	ix.links = make([]*Link, len(ents))
	ix.linkIDs = make([]LinkID, len(ents))
	ix.insOrder = make([]int32, len(ents))
	for i, e := range ents {
		ix.links[i] = e.l
		ix.linkIDs[i] = e.l.ID()
		ix.insOrder[i] = e.ins
		ix.linkIdx[e.l.ID()] = LinkIdx(i)
	}

	// CSR adjacency. Each link contributes one directed edge per endpoint
	// that exists in the node table. Building per-device rows then sorting by
	// (neighbor, link) reproduces Topology.Neighbors' ordering numerically.
	type edge struct {
		dev   DevID
		nb    DevID
		link  LinkIdx
		fromA bool
	}
	var edges []edge
	for li, l := range ix.links {
		a, aok := ix.devIDs[l.A]
		b, bok := ix.devIDs[l.B]
		if !aok || !bok {
			continue
		}
		edges = append(edges, edge{dev: a, nb: b, link: LinkIdx(li), fromA: true})
		edges = append(edges, edge{dev: b, nb: a, link: LinkIdx(li), fromA: false})
	}
	slices.SortFunc(edges, func(x, y edge) int {
		if x.dev != y.dev {
			return int(x.dev) - int(y.dev)
		}
		if x.nb != y.nb {
			return int(x.nb) - int(y.nb)
		}
		return int(x.link) - int(y.link)
	})
	n := len(ix.devNames)
	ix.off = make([]int32, n+1)
	ix.adjDev = make([]DevID, len(edges))
	ix.adjLink = make([]LinkIdx, len(edges))
	ix.adjFromA = make([]bool, len(edges))
	for i, e := range edges {
		ix.adjDev[i] = e.nb
		ix.adjLink[i] = e.link
		ix.adjFromA[i] = e.fromA
		ix.off[e.dev+1]++
	}
	for d := 0; d < n; d++ {
		ix.off[d+1] += ix.off[d]
	}

	// Address ownership, replicating buildAddrIdx exactly: link addresses in
	// insertion order with first-writer-wins, then loopbacks (sorted names,
	// first seen wins) overriding link addresses.
	for _, l := range t.links {
		if l.AAddr.IsValid() {
			if a, ok := ix.devIDs[l.A]; ok {
				if _, seen := ix.owner[l.AAddr]; !seen {
					ix.owner[l.AAddr] = a
				}
			}
		}
		if l.BAddr.IsValid() {
			if b, ok := ix.devIDs[l.B]; ok {
				if _, seen := ix.owner[l.BAddr]; !seen {
					ix.owner[l.BAddr] = b
				}
			}
		}
	}
	loSeen := make(map[netip.Addr]bool, n)
	for i, name := range ix.devNames {
		if lo := t.nodes[name].Loopback; lo.IsValid() && !loSeen[lo] {
			loSeen[lo] = true
			ix.owner[lo] = DevID(i)
		}
	}

	t.topoIdx = ix
	return ix
}

// Interner assigns dense IDs to device names, link IDs, and prefixes with
// two-way lookup tables. A TopoIndex is the topology-shaped specialization;
// the Interner is the free-standing form the engine uses for input prefixes
// (route-EC signatures memoize per PrefixID) and for telemetry. Identical
// build inputs in identical order always produce identical IDs.
type Interner struct {
	mu sync.RWMutex

	devs  []string
	devID map[string]DevID

	links  []LinkID
	linkID map[LinkID]LinkIdx

	prefixes []netip.Prefix
	prefixID map[netip.Prefix]PrefixID
}

// NewInterner returns an empty interner.
func NewInterner() *Interner {
	return &Interner{
		devID:    make(map[string]DevID),
		linkID:   make(map[LinkID]LinkIdx),
		prefixID: make(map[netip.Prefix]PrefixID),
	}
}

// InternDevice returns the dense ID for name, assigning the next ID on first
// sight.
func (in *Interner) InternDevice(name string) DevID {
	in.mu.Lock()
	defer in.mu.Unlock()
	if id, ok := in.devID[name]; ok {
		return id
	}
	id := DevID(len(in.devs))
	in.devs = append(in.devs, name)
	in.devID[name] = id
	return id
}

// DeviceName returns the name for a device ID.
func (in *Interner) DeviceName(id DevID) (string, bool) {
	in.mu.RLock()
	defer in.mu.RUnlock()
	if id < 0 || int(id) >= len(in.devs) {
		return "", false
	}
	return in.devs[id], true
}

// InternLink returns the dense index for a canonical link ID.
func (in *Interner) InternLink(id LinkID) LinkIdx {
	in.mu.Lock()
	defer in.mu.Unlock()
	if i, ok := in.linkID[id]; ok {
		return i
	}
	i := LinkIdx(len(in.links))
	in.links = append(in.links, id)
	in.linkID[id] = i
	return i
}

// Link returns the canonical link ID for a dense index.
func (in *Interner) Link(i LinkIdx) (LinkID, bool) {
	in.mu.RLock()
	defer in.mu.RUnlock()
	if i < 0 || int(i) >= len(in.links) {
		return LinkID{}, false
	}
	return in.links[i], true
}

// InternPrefix returns the dense ID for a prefix.
func (in *Interner) InternPrefix(p netip.Prefix) PrefixID {
	in.mu.Lock()
	defer in.mu.Unlock()
	if id, ok := in.prefixID[p]; ok {
		return id
	}
	id := PrefixID(len(in.prefixes))
	in.prefixes = append(in.prefixes, p)
	in.prefixID[p] = id
	return id
}

// Prefix returns the prefix for a dense ID.
func (in *Interner) Prefix(id PrefixID) (netip.Prefix, bool) {
	in.mu.RLock()
	defer in.mu.RUnlock()
	if id < 0 || int(id) >= len(in.prefixes) {
		return netip.Prefix{}, false
	}
	return in.prefixes[id], true
}

// NumPrefixes returns the number of interned prefixes.
func (in *Interner) NumPrefixes() int {
	in.mu.RLock()
	defer in.mu.RUnlock()
	return len(in.prefixes)
}

// InternStats summarizes an interner for telemetry.
type InternStats struct {
	Devices    int   `json:"devices"`
	Links      int   `json:"links"`
	Prefixes   int   `json:"prefixes"`
	TableBytes int64 `json:"table_bytes"`
}

// Stats returns the interner's table sizes and an approximation of the
// memory its two-way tables occupy.
func (in *Interner) Stats() InternStats {
	in.mu.RLock()
	defer in.mu.RUnlock()
	b := int64(0)
	for _, d := range in.devs {
		b += int64(len(d))*2 + 32 // slice + map sides
	}
	b += int64(len(in.links)) * 2 * 72
	b += int64(len(in.prefixes)) * 2 * 28
	return InternStats{
		Devices:    len(in.devs),
		Links:      len(in.links),
		Prefixes:   len(in.prefixes),
		TableBytes: b,
	}
}

// InternTopology interns every device and link of a topology in
// deterministic (index) order; it returns the topology's index for
// convenience.
func (in *Interner) InternTopology(t *Topology) *TopoIndex {
	ix := t.Index()
	for _, name := range ix.devNames {
		in.InternDevice(name)
	}
	for _, id := range ix.linkIDs {
		in.InternLink(id)
	}
	return ix
}
