// Package netmodel defines the core data model shared by every Hoyan
// subsystem: route attributes, routes, RIBs, the global RIB abstraction used
// by RCL, network topology, and traffic flows.
//
// The model deliberately mirrors the vocabulary of the paper: a route is a
// row in a (global) RIB with device and vrf columns (Figure 6); the topology
// is the graph the IGP runs SPF over; a flow is a 5-tuple with a traffic
// volume as collected by NetFlow/sFlow.
package netmodel

import (
	"encoding/json"
	"fmt"
	"slices"
	"sort"
	"strconv"
	"strings"
)

// ASN is a BGP autonomous system number.
type ASN uint32

// Community is a standard 32-bit BGP community, conventionally written
// "upper:lower" (e.g. "100:1").
type Community uint32

// NewCommunity builds a community from its upper and lower 16-bit halves.
func NewCommunity(hi, lo uint16) Community {
	return Community(uint32(hi)<<16 | uint32(lo))
}

// ParseCommunity parses the conventional "hi:lo" notation.
func ParseCommunity(s string) (Community, error) {
	hi, lo, ok := strings.Cut(s, ":")
	if !ok {
		return 0, fmt.Errorf("netmodel: community %q: want hi:lo", s)
	}
	h, err := strconv.ParseUint(hi, 10, 16)
	if err != nil {
		return 0, fmt.Errorf("netmodel: community %q: %v", s, err)
	}
	l, err := strconv.ParseUint(lo, 10, 16)
	if err != nil {
		return 0, fmt.Errorf("netmodel: community %q: %v", s, err)
	}
	return NewCommunity(uint16(h), uint16(l)), nil
}

// MustCommunity is ParseCommunity that panics on error; for tests and tables.
func MustCommunity(s string) Community {
	c, err := ParseCommunity(s)
	if err != nil {
		panic(err)
	}
	return c
}

func (c Community) String() string {
	return fmt.Sprintf("%d:%d", uint32(c)>>16, uint32(c)&0xffff)
}

// CommunitySet is a sorted, duplicate-free set of communities. The zero value
// is the empty set.
type CommunitySet struct {
	cs []Community
}

// NewCommunitySet builds a set from the given communities.
func NewCommunitySet(cs ...Community) CommunitySet {
	var s CommunitySet
	for _, c := range cs {
		s = s.Add(c)
	}
	return s
}

// ParseCommunitySet parses a comma-separated list of hi:lo communities.
func ParseCommunitySet(s string) (CommunitySet, error) {
	var set CommunitySet
	if strings.TrimSpace(s) == "" {
		return set, nil
	}
	for _, part := range strings.Split(s, ",") {
		c, err := ParseCommunity(strings.TrimSpace(part))
		if err != nil {
			return CommunitySet{}, err
		}
		set = set.Add(c)
	}
	return set, nil
}

// Add returns a new set that also contains c.
func (s CommunitySet) Add(c Community) CommunitySet {
	i := sort.Search(len(s.cs), func(i int) bool { return s.cs[i] >= c })
	if i < len(s.cs) && s.cs[i] == c {
		return s
	}
	out := make([]Community, 0, len(s.cs)+1)
	out = append(out, s.cs[:i]...)
	out = append(out, c)
	out = append(out, s.cs[i:]...)
	return CommunitySet{cs: out}
}

// Remove returns a new set without c.
func (s CommunitySet) Remove(c Community) CommunitySet {
	i := sort.Search(len(s.cs), func(i int) bool { return s.cs[i] >= c })
	if i >= len(s.cs) || s.cs[i] != c {
		return s
	}
	out := make([]Community, 0, len(s.cs)-1)
	out = append(out, s.cs[:i]...)
	out = append(out, s.cs[i+1:]...)
	return CommunitySet{cs: out}
}

// Contains reports whether c is in the set.
func (s CommunitySet) Contains(c Community) bool {
	i := sort.Search(len(s.cs), func(i int) bool { return s.cs[i] >= c })
	return i < len(s.cs) && s.cs[i] == c
}

// Len returns the number of communities in the set.
func (s CommunitySet) Len() int { return len(s.cs) }

// All returns the communities in sorted order. The caller must not modify
// the returned slice.
func (s CommunitySet) All() []Community { return s.cs }

// Equal reports whether the two sets have identical contents.
func (s CommunitySet) Equal(t CommunitySet) bool {
	if len(s.cs) != len(t.cs) {
		return false
	}
	for i := range s.cs {
		if s.cs[i] != t.cs[i] {
			return false
		}
	}
	return true
}

// Strings returns the communities formatted as "hi:lo", sorted.
func (s CommunitySet) Strings() []string {
	out := make([]string, len(s.cs))
	for i, c := range s.cs {
		out[i] = c.String()
	}
	return out
}

func (s CommunitySet) String() string { return strings.Join(s.Strings(), ",") }

// MarshalJSON encodes the set as its "hi:lo,..." text form, for the wire
// format of the distributed simulation framework.
func (s CommunitySet) MarshalJSON() ([]byte, error) {
	return json.Marshal(s.String())
}

// UnmarshalJSON decodes the text form produced by MarshalJSON.
func (s *CommunitySet) UnmarshalJSON(b []byte) error {
	var txt string
	if err := json.Unmarshal(b, &txt); err != nil {
		return err
	}
	set, err := ParseCommunitySet(txt)
	if err != nil {
		return err
	}
	*s = set
	return nil
}

// ASPath is a BGP AS path consisting of an ordered AS_SEQUENCE and an
// optional unordered AS_SET (produced by route aggregation).
type ASPath struct {
	Seq []ASN
	Set []ASN
}

// PrependASPath returns p with asn prepended to the sequence.
func (p ASPath) Prepend(asn ASN) ASPath {
	seq := make([]ASN, 0, len(p.Seq)+1)
	seq = append(seq, asn)
	seq = append(seq, p.Seq...)
	return ASPath{Seq: seq, Set: append([]ASN(nil), p.Set...)}
}

// Contains reports whether asn appears anywhere in the path (sequence or
// set); used for AS-loop prevention.
func (p ASPath) Contains(asn ASN) bool {
	for _, a := range p.Seq {
		if a == asn {
			return true
		}
	}
	for _, a := range p.Set {
		if a == asn {
			return true
		}
	}
	return false
}

// Len returns the AS-path length used in best-path selection: each sequence
// element counts 1 and a non-empty AS_SET counts 1 in total (RFC 4271).
func (p ASPath) Len() int {
	n := len(p.Seq)
	if len(p.Set) > 0 {
		n++
	}
	return n
}

// Equal reports whether two paths are identical (set compared as a sorted
// multiset).
func (p ASPath) Equal(q ASPath) bool {
	if len(p.Seq) != len(q.Seq) || len(p.Set) != len(q.Set) {
		return false
	}
	for i := range p.Seq {
		if p.Seq[i] != q.Seq[i] {
			return false
		}
	}
	ps := append([]ASN(nil), p.Set...)
	qs := append([]ASN(nil), q.Set...)
	slices.Sort(ps)
	slices.Sort(qs)
	for i := range ps {
		if ps[i] != qs[i] {
			return false
		}
	}
	return true
}

// String renders the path in the conventional "65001 65002 {1,2}" form.
func (p ASPath) String() string {
	var b strings.Builder
	for i, a := range p.Seq {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d", a)
	}
	if len(p.Set) > 0 {
		if len(p.Seq) > 0 {
			b.WriteByte(' ')
		}
		b.WriteByte('{')
		set := append([]ASN(nil), p.Set...)
		slices.Sort(set)
		for i, a := range set {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%d", a)
		}
		b.WriteByte('}')
	}
	return b.String()
}

// ParseASPath parses the String form back into an ASPath.
func ParseASPath(s string) (ASPath, error) {
	var p ASPath
	s = strings.TrimSpace(s)
	if s == "" {
		return p, nil
	}
	setStart := strings.IndexByte(s, '{')
	seqPart := s
	if setStart >= 0 {
		seqPart = strings.TrimSpace(s[:setStart])
		setPart := strings.TrimSuffix(strings.TrimSpace(s[setStart+1:]), "}")
		for _, f := range strings.Split(setPart, ",") {
			f = strings.TrimSpace(f)
			if f == "" {
				continue
			}
			n, err := strconv.ParseUint(f, 10, 32)
			if err != nil {
				return ASPath{}, fmt.Errorf("netmodel: as path %q: %v", s, err)
			}
			p.Set = append(p.Set, ASN(n))
		}
	}
	for _, f := range strings.Fields(seqPart) {
		n, err := strconv.ParseUint(f, 10, 32)
		if err != nil {
			return ASPath{}, fmt.Errorf("netmodel: as path %q: %v", s, err)
		}
		p.Seq = append(p.Seq, ASN(n))
	}
	return p, nil
}

// Origin is the BGP origin attribute. Lower is preferred.
type Origin uint8

// Origin values in preference order.
const (
	OriginIGP Origin = iota
	OriginEGP
	OriginIncomplete
)

func (o Origin) String() string {
	switch o {
	case OriginIGP:
		return "igp"
	case OriginEGP:
		return "egp"
	case OriginIncomplete:
		return "incomplete"
	}
	return fmt.Sprintf("origin(%d)", uint8(o))
}

// Protocol identifies the protocol that produced a route.
type Protocol uint8

// Protocols known to the simulator.
const (
	ProtoBGP Protocol = iota
	ProtoISIS
	ProtoStatic
	ProtoDirect
	ProtoAggregate
)

func (p Protocol) String() string {
	switch p {
	case ProtoBGP:
		return "bgp"
	case ProtoISIS:
		return "isis"
	case ProtoStatic:
		return "static"
	case ProtoDirect:
		return "direct"
	case ProtoAggregate:
		return "aggregate"
	}
	return fmt.Sprintf("proto(%d)", uint8(p))
}

// RouteType classifies a route within its RIB.
type RouteType uint8

// Route types. Best routes are the selected (possibly multipath) routes used
// for forwarding; candidates are installed but not selected.
const (
	RouteCandidate RouteType = iota
	RouteBest
)

func (t RouteType) String() string {
	switch t {
	case RouteBest:
		return "BEST"
	case RouteCandidate:
		return "CANDIDATE"
	}
	return fmt.Sprintf("routetype(%d)", uint8(t))
}
