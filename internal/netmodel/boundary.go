package netmodel

import (
	"bytes"
	"encoding/binary"
	"net/netip"
	"slices"
)

// BoundaryAdv is one seam advertisement of a sharded verification run: the
// exact BGP message payload a device inside a shard sends over one session
// to a device outside it, captured after export policy, AS prepending, and
// next-hop rewriting. A sealed re-simulation of the receiving shard replays
// it as a frozen external input, so the per-shard fixpoint composes into the
// whole-network one. An adv with no routes is never stored: a withdrawn or
// never-advertised (from, to, vrf, prefix) key is simply absent from the
// contract.
type BoundaryAdv struct {
	From     string       // advertising device (inside the exporting shard)
	To       string       // receiving device (outside it)
	VRF      string       // session VRF
	Prefix   netip.Prefix // advertised prefix
	EBGP     bool         // session type, as seen by the sender
	FromAddr netip.Addr   // sender-side session address (msg source)
	Routes   []Route      // payload, in advertisement order
}

// AppendSignature appends an injective binary encoding of the adv to dst.
// Two advs have equal signatures iff every field (including route order
// within the adv) is equal, so sorting a contract by signature yields the
// ACORN-style canonical form: equivalent orderings of the same advertisement
// set compare equal byte-for-byte.
func (a *BoundaryAdv) AppendSignature(dst []byte) []byte {
	dst = sigStr(dst, a.From)
	dst = sigStr(dst, a.To)
	dst = sigStr(dst, a.VRF)
	dst = sigPrefix(dst, a.Prefix)
	dst = sigBool(dst, a.EBGP)
	dst = sigAddr(dst, a.FromAddr)
	dst = binary.AppendUvarint(dst, uint64(len(a.Routes)))
	for i := range a.Routes {
		dst = appendRouteSignature(dst, &a.Routes[i])
	}
	return dst
}

// AppendSignature appends an injective binary encoding of the route to dst:
// equal signatures iff every field is equal. Besides ordering contracts, it
// is the cheap dedupe key for rows recomputed by overlapping subtasks (the
// fmt-based key it replaced dominated result collection).
func (r *Route) AppendSignature(dst []byte) []byte {
	return appendRouteSignature(dst, r)
}

func appendRouteSignature(dst []byte, r *Route) []byte {
	dst = sigStr(dst, r.Device)
	dst = sigStr(dst, r.VRF)
	dst = sigPrefix(dst, r.Prefix)
	dst = append(dst, byte(r.Protocol))
	dst = sigAddr(dst, r.NextHop)
	cs := r.Communities.All()
	dst = binary.AppendUvarint(dst, uint64(len(cs)))
	for _, c := range cs {
		dst = binary.AppendUvarint(dst, uint64(c))
	}
	dst = binary.AppendUvarint(dst, uint64(r.LocalPref))
	dst = binary.AppendUvarint(dst, uint64(r.MED))
	dst = binary.AppendUvarint(dst, uint64(r.Weight))
	dst = binary.AppendUvarint(dst, uint64(r.Preference))
	dst = binary.AppendUvarint(dst, uint64(len(r.ASPath.Seq)))
	for _, asn := range r.ASPath.Seq {
		dst = binary.AppendUvarint(dst, uint64(asn))
	}
	dst = binary.AppendUvarint(dst, uint64(len(r.ASPath.Set)))
	for _, asn := range r.ASPath.Set {
		dst = binary.AppendUvarint(dst, uint64(asn))
	}
	dst = append(dst, byte(r.Origin))
	dst = binary.AppendUvarint(dst, uint64(r.IGPCost))
	dst = append(dst, byte(r.RouteType))
	dst = sigBool(dst, r.ViaSR)
	dst = sigStr(dst, r.Peer)
	dst = sigStr(dst, r.Source)
	return dst
}

func sigStr(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func sigBool(dst []byte, b bool) []byte {
	if b {
		return append(dst, 1)
	}
	return append(dst, 0)
}

func sigAddr(dst []byte, a netip.Addr) []byte {
	if !a.IsValid() {
		return append(dst, 0)
	}
	b16 := a.As16()
	dst = append(dst, 1)
	return append(dst, b16[:]...)
}

func sigPrefix(dst []byte, p netip.Prefix) []byte {
	dst = sigAddr(dst, p.Addr())
	return append(dst, byte(p.Bits()))
}

// CanonicalizeBoundary sorts the advs in place by binary signature and
// returns the slice. The order is total (the signature is injective), so two
// contracts holding the same advertisement set in any order canonicalize to
// identical slices.
func CanonicalizeBoundary(advs []BoundaryAdv) []BoundaryAdv {
	if len(advs) < 2 {
		return advs
	}
	buf := GetSigBuf()
	defer PutSigBuf(buf)
	sigs, ends := appendBoundarySigs(*buf, advs)
	*buf = sigs
	order := make([]int, len(advs))
	for i := range order {
		order[i] = i
	}
	slices.SortFunc(order, func(x, y int) int {
		return bytes.Compare(sigSpan(sigs, ends, x), sigSpan(sigs, ends, y))
	})
	out := make([]BoundaryAdv, len(advs))
	for i, idx := range order {
		out[i] = advs[idx]
	}
	copy(advs, out)
	return advs
}

// BoundarySetsEqual reports whether two contracts hold the same advertisement
// set, regardless of slice order.
func BoundarySetsEqual(a, b []BoundaryAdv) bool {
	if len(a) != len(b) {
		return false
	}
	bufA, bufB := GetSigBuf(), GetSigBuf()
	defer PutSigBuf(bufA)
	defer PutSigBuf(bufB)
	sa, endsA := appendBoundarySigs(*bufA, a)
	sb, endsB := appendBoundarySigs(*bufB, b)
	*bufA, *bufB = sa, sb
	oa, ob := sortedSigOrder(sa, endsA), sortedSigOrder(sb, endsB)
	for i := range oa {
		if !bytes.Equal(sigSpan(sa, endsA, oa[i]), sigSpan(sb, endsB, ob[i])) {
			return false
		}
	}
	return true
}

// appendBoundarySigs encodes every adv's signature into one flat buffer
// (appended to dst) and returns it along with each signature's end offset —
// one buffer for the whole contract instead of one allocation per adv.
func appendBoundarySigs(dst []byte, advs []BoundaryAdv) (sigs []byte, ends []int) {
	ends = make([]int, len(advs))
	for i := range advs {
		dst = advs[i].AppendSignature(dst)
		ends[i] = len(dst)
	}
	return dst, ends
}

// sigSpan slices signature i out of a flat signature buffer.
func sigSpan(sigs []byte, ends []int, i int) []byte {
	start := 0
	if i > 0 {
		start = ends[i-1]
	}
	return sigs[start:ends[i]]
}

// sortedSigOrder returns the indices of the flat signatures in ascending
// signature order.
func sortedSigOrder(sigs []byte, ends []int) []int {
	order := make([]int, len(ends))
	for i := range order {
		order[i] = i
	}
	slices.SortFunc(order, func(x, y int) int {
		return bytes.Compare(sigSpan(sigs, ends, x), sigSpan(sigs, ends, y))
	})
	return order
}
