package netmodel

import (
	"fmt"
	"net/netip"
	"slices"
	"strings"
	"sync"
)

// Node is a router in the topology graph. Routing configuration lives in the
// config package; the topology holds only what link-state protocols and
// traffic simulation need.
type Node struct {
	Name     string
	Loopback netip.Addr
	Up       bool // false when the router has failed or is under maintenance
}

// Link is a bidirectional adjacency between two routers. Costs may be
// asymmetric (CostAB for A→B, CostBA for B→A).
type Link struct {
	A, B      string // device names; A < B lexically for canonical form
	AIface    string
	BIface    string
	ANet      netip.Prefix // interface subnet on A's side
	BNet      netip.Prefix
	AAddr     netip.Addr // interface address on A
	BAddr     netip.Addr
	CostAB    uint32
	CostBA    uint32
	TEAB      uint32  // IS-IS TE metric A→B; 0 means "use CostAB"
	TEBA      uint32  // IS-IS TE metric B→A; 0 means "use CostBA"
	Bandwidth float64 // bits per second
	Up        bool
}

// DirCost returns the metric of the directed edge leaving from. When useTE
// is set and a TE metric is configured for that direction, it is used
// instead of the base IGP cost (IS-IS for traffic engineering, RFC 5305).
func (l Link) DirCost(from string, useTE bool) uint32 {
	cost, te := l.CostBA, l.TEBA
	if from == l.A {
		cost, te = l.CostAB, l.TEAB
	}
	if useTE && te != 0 {
		return te
	}
	return cost
}

// LinkID canonically identifies a link by its endpoints and interfaces.
type LinkID struct {
	A, B           string
	AIface, BIface string
}

// ID returns the canonical identifier of the link.
func (l Link) ID() LinkID {
	return LinkID{A: l.A, B: l.B, AIface: l.AIface, BIface: l.BIface}
}

func (id LinkID) String() string {
	return fmt.Sprintf("%s[%s]--%s[%s]", id.A, id.AIface, id.B, id.BIface)
}

// Topology is the physical graph of the network.
type Topology struct {
	nodes map[string]*Node
	links []*Link
	// byDevice indexes links touching each device.
	byDevice map[string][]*Link

	// addrMu guards addrIdx and topoIdx, the lazily built indexes behind
	// AddrOwner and Index. Up/down toggles never move addresses or change the
	// graph shape, so both survive SetLinkUp/SetNodeUp; structural mutations
	// invalidate them.
	addrMu  sync.RWMutex
	addrIdx map[netip.Addr]string
	topoIdx *TopoIndex
}

// NewTopology creates an empty topology.
func NewTopology() *Topology {
	return &Topology{nodes: make(map[string]*Node), byDevice: make(map[string][]*Link)}
}

// AddNode registers a router. Adding an existing name replaces the node.
func (t *Topology) AddNode(n Node) {
	n.Up = true
	cp := n
	t.nodes[n.Name] = &cp
	t.invalidateAddrIdx()
}

// RemoveNode deletes a router and every link touching it.
func (t *Topology) RemoveNode(name string) {
	delete(t.nodes, name)
	var kept []*Link
	for _, l := range t.links {
		if l.A == name || l.B == name {
			continue
		}
		kept = append(kept, l)
	}
	t.links = kept
	t.reindex()
	t.invalidateAddrIdx()
}

// Node returns the named router, or nil.
func (t *Topology) Node(name string) *Node { return t.nodes[name] }

// Nodes returns all routers sorted by name.
func (t *Topology) Nodes() []*Node {
	out := make([]*Node, 0, len(t.nodes))
	for _, n := range t.nodes {
		out = append(out, n)
	}
	slices.SortFunc(out, func(a, b *Node) int { return strings.Compare(a.Name, b.Name) })
	return out
}

// NodeNames returns all router names sorted.
func (t *Topology) NodeNames() []string {
	out := make([]string, 0, len(t.nodes))
	for name := range t.nodes {
		out = append(out, name)
	}
	slices.Sort(out)
	return out
}

// AddLink registers a link. The endpoints are normalized so A < B.
func (t *Topology) AddLink(l Link) *Link {
	if l.B < l.A {
		l.A, l.B = l.B, l.A
		l.AIface, l.BIface = l.BIface, l.AIface
		l.ANet, l.BNet = l.BNet, l.ANet
		l.AAddr, l.BAddr = l.BAddr, l.AAddr
		l.CostAB, l.CostBA = l.CostBA, l.CostAB
		l.TEAB, l.TEBA = l.TEBA, l.TEAB
	}
	l.Up = true
	cp := l
	t.links = append(t.links, &cp)
	t.byDevice[cp.A] = append(t.byDevice[cp.A], &cp)
	t.byDevice[cp.B] = append(t.byDevice[cp.B], &cp)
	t.invalidateAddrIdx()
	return &cp
}

// RemoveLink deletes the link with the given ID; it reports whether a link
// was removed.
func (t *Topology) RemoveLink(id LinkID) bool {
	for i, l := range t.links {
		if l.ID() == id {
			t.links = append(t.links[:i], t.links[i+1:]...)
			t.reindex()
			t.invalidateAddrIdx()
			return true
		}
	}
	return false
}

// Link returns the link with the given ID, or nil. The lookup goes through
// the CSR index (links are queried per forwarded branch, so the linear scan
// used to dominate traffic simulation).
func (t *Topology) Link(id LinkID) *Link {
	ix := t.Index()
	if i, ok := ix.linkIdx[id]; ok {
		return ix.links[i]
	}
	return nil
}

// FindLink returns the first up link between the two devices, or nil.
func (t *Topology) FindLink(a, b string) *Link {
	if b < a {
		a, b = b, a
	}
	for _, l := range t.byDevice[a] {
		if l.A == a && l.B == b && l.Up {
			return l
		}
	}
	return nil
}

// Links returns all links in insertion order.
func (t *Topology) Links() []*Link { return t.links }

// LinksOf returns the links touching device.
func (t *Topology) LinksOf(device string) []*Link { return t.byDevice[device] }

// Neighbors returns (neighbor device, link) pairs for every up link of an up
// device, sorted by neighbor name for determinism.
func (t *Topology) Neighbors(device string) []Neighbor {
	n := t.nodes[device]
	if n == nil || !n.Up {
		return nil
	}
	var out []Neighbor
	for _, l := range t.byDevice[device] {
		if !l.Up {
			continue
		}
		other := l.A
		cost := l.CostBA
		if l.A == device {
			other = l.B
			cost = l.CostAB
		}
		if on := t.nodes[other]; on == nil || !on.Up {
			continue
		}
		out = append(out, Neighbor{Device: other, Link: l, Cost: cost})
	}
	slices.SortFunc(out, func(a, b Neighbor) int {
		if a.Device != b.Device {
			return strings.Compare(a.Device, b.Device)
		}
		return strings.Compare(a.Link.ID().String(), b.Link.ID().String())
	})
	return out
}

// Neighbor is one adjacency seen from a device.
type Neighbor struct {
	Device string
	Link   *Link
	Cost   uint32 // cost of the directed edge device → Device
}

// Clone returns a deep copy, so change plans can be applied to a copy of the
// base topology without disturbing it.
func (t *Topology) Clone() *Topology {
	out := NewTopology()
	for _, n := range t.nodes {
		cp := *n
		out.nodes[n.Name] = &cp
	}
	for _, l := range t.links {
		cp := *l
		out.links = append(out.links, &cp)
	}
	out.reindex()
	return out
}

// SetNodeUp marks a router up or down (k-failure analysis, maintenance).
func (t *Topology) SetNodeUp(name string, up bool) bool {
	n := t.nodes[name]
	if n == nil {
		return false
	}
	n.Up = up
	return true
}

// SetLinkUp marks a link up or down.
func (t *Topology) SetLinkUp(id LinkID, up bool) bool {
	l := t.Link(id)
	if l == nil {
		return false
	}
	l.Up = up
	return true
}

func (t *Topology) reindex() {
	t.byDevice = make(map[string][]*Link)
	for _, l := range t.links {
		t.byDevice[l.A] = append(t.byDevice[l.A], l)
		t.byDevice[l.B] = append(t.byDevice[l.B], l)
	}
}

// AddrOwner returns the device owning addr on one of its link interfaces or
// loopback, or "" if none. Lookups go through a lazily built index (addresses
// are queried once per BGP candidate and per forwarded flow hop, so the
// linear scan used to dominate large simulations); the index is safe for
// concurrent readers and is rebuilt after structural topology mutations.
func (t *Topology) AddrOwner(addr netip.Addr) string {
	t.addrMu.RLock()
	idx := t.addrIdx
	t.addrMu.RUnlock()
	if idx == nil {
		idx = t.buildAddrIdx()
	}
	return idx[addr]
}

// buildAddrIdx (re)builds the address index: loopbacks take precedence over
// link addresses, matching the scan order of the original implementation.
func (t *Topology) buildAddrIdx() map[netip.Addr]string {
	t.addrMu.Lock()
	defer t.addrMu.Unlock()
	if t.addrIdx != nil {
		return t.addrIdx
	}
	idx := make(map[netip.Addr]string, len(t.nodes)+2*len(t.links))
	for _, l := range t.links {
		if l.AAddr.IsValid() {
			if _, ok := idx[l.AAddr]; !ok {
				idx[l.AAddr] = l.A
			}
		}
		if l.BAddr.IsValid() {
			if _, ok := idx[l.BAddr]; !ok {
				idx[l.BAddr] = l.B
			}
		}
	}
	names := make([]string, 0, len(t.nodes))
	for name := range t.nodes {
		names = append(names, name)
	}
	slices.Sort(names)
	loSeen := make(map[netip.Addr]bool, len(names))
	for _, name := range names {
		if lo := t.nodes[name].Loopback; lo.IsValid() && !loSeen[lo] {
			loSeen[lo] = true
			idx[lo] = name
		}
	}
	t.addrIdx = idx
	return idx
}

func (t *Topology) invalidateAddrIdx() {
	t.addrMu.Lock()
	t.addrIdx = nil
	t.topoIdx = nil
	t.addrMu.Unlock()
}
