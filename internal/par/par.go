// Package par is the engine's bounded fork-join helper: every parallel hot
// path (per-source SPF, per-flow forwarding, EC classification, per-device
// config parsing) fans its independent work items out through ForEach and
// merges results in a deterministic order afterwards.
//
// The Parallelism convention shared by every Options struct that embeds the
// knob: 0 selects runtime.GOMAXPROCS(0) workers, 1 runs inline on the calling
// goroutine (the sequential reference path), n > 1 uses n workers.
package par

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a Parallelism knob value into a worker count: 0 (the
// default) means runtime.GOMAXPROCS(0); negative values are clamped to 1.
func Workers(parallelism int) int {
	if parallelism == 0 {
		return runtime.GOMAXPROCS(0)
	}
	if parallelism < 1 {
		return 1
	}
	return parallelism
}

// ForEach invokes fn(i) for every i in [0, n), fanning the calls out over at
// most Workers(parallelism) goroutines. Items are claimed from a shared
// counter, so callers must make fn(i) independent of every fn(j): each call
// should write only into its own pre-sized result slot. With an effective
// worker count of 1 (or n <= 1) every call runs inline on the caller's
// goroutine in index order — the sequential reference path.
//
// A panic inside fn is captured and re-raised on the calling goroutine after
// all workers drain, so a parallel run fails the same way a sequential one
// does instead of crashing the process from a worker.
func ForEach(parallelism, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	w := Workers(parallelism)
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}

	var (
		next     atomic.Int64
		panicked atomic.Value
		wg       sync.WaitGroup
	)
	run := func(i int) {
		defer func() {
			if r := recover(); r != nil {
				panicked.CompareAndSwap(nil, fmt.Sprintf("par: worker panic on item %d: %v", i, r))
			}
		}()
		fn(i)
	}
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for panicked.Load() == nil {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				run(i)
			}
		}()
	}
	wg.Wait()
	if p := panicked.Load(); p != nil {
		panic(p)
	}
}

// Map applies fn to every index in [0, n) and returns the results in index
// order, regardless of which worker computed each one.
func Map[T any](parallelism, n int, fn func(i int) T) []T {
	out := make([]T, n)
	ForEach(parallelism, n, func(i int) { out[i] = fn(i) })
	return out
}
