package par

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(1); got != 1 {
		t.Errorf("Workers(1) = %d, want 1", got)
	}
	if got := Workers(7); got != 7 {
		t.Errorf("Workers(7) = %d, want 7", got)
	}
	if got := Workers(-3); got != 1 {
		t.Errorf("Workers(-3) = %d, want 1", got)
	}
}

func TestForEachCoversAllItemsOnce(t *testing.T) {
	for _, p := range []int{1, 2, 4, 0} {
		const n = 1000
		var counts [n]atomic.Int32
		ForEach(p, n, func(i int) { counts[i].Add(1) })
		for i := range counts {
			if got := counts[i].Load(); got != 1 {
				t.Fatalf("parallelism %d: item %d visited %d times, want 1", p, i, got)
			}
		}
	}
}

func TestForEachSequentialIsInOrder(t *testing.T) {
	var seen []int
	ForEach(1, 5, func(i int) { seen = append(seen, i) })
	for i, v := range seen {
		if v != i {
			t.Fatalf("sequential ForEach out of order: %v", seen)
		}
	}
	ForEach(4, 0, func(i int) { t.Fatal("fn called for n=0") })
}

func TestMapKeepsIndexOrder(t *testing.T) {
	got := Map(4, 100, func(i int) int { return i * i })
	for i, v := range got {
		if v != i*i {
			t.Fatalf("Map[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestForEachPanicPropagates(t *testing.T) {
	for _, p := range []int{1, 4} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("parallelism %d: panic did not propagate", p)
				}
			}()
			ForEach(p, 50, func(i int) {
				if i == 13 {
					panic("boom")
				}
			})
		}()
	}
}
