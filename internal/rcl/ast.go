package rcl

import (
	"fmt"
	"strings"
)

// CmpOp is a comparison operator ⊙.
type CmpOp string

// Comparison operators.
const (
	OpEq  CmpOp = "="
	OpNeq CmpOp = "!="
	OpLt  CmpOp = "<"
	OpLe  CmpOp = "<="
	OpGt  CmpOp = ">"
	OpGe  CmpOp = ">="
)

// Predicate is a route predicate p: it maps a route to a Boolean.
type Predicate interface {
	predString() string
	// Size counts internal (non-leaf) syntax tree nodes (the Figure 8
	// specification-size metric).
	Size() int
}

// CmpPred is "field ⊙ value".
type CmpPred struct {
	Field string
	Op    CmpOp
	Value string
}

func (p *CmpPred) predString() string { return fmt.Sprintf("%s %s %s", p.Field, p.Op, p.Value) }
func (p *CmpPred) Size() int          { return 1 }

// ContainsPred is "field contains value" (alias "has").
type ContainsPred struct {
	Field string
	Value string
}

func (p *ContainsPred) predString() string { return fmt.Sprintf("%s contains %s", p.Field, p.Value) }
func (p *ContainsPred) Size() int          { return 1 }

// InPred is "field in {v, ...}".
type InPred struct {
	Field  string
	Values []string
}

func (p *InPred) predString() string {
	return fmt.Sprintf("%s in {%s}", p.Field, strings.Join(p.Values, ", "))
}
func (p *InPred) Size() int { return 1 }

// MatchesPred is `field matches "regex"`.
type MatchesPred struct {
	Field string
	Regex string
}

func (p *MatchesPred) predString() string { return fmt.Sprintf("%s matches %q", p.Field, p.Regex) }
func (p *MatchesPred) Size() int          { return 1 }

// BoolPred composes predicates with and/or/imply.
type BoolPred struct {
	Op   string // "and" | "or" | "imply"
	L, R Predicate
}

func (p *BoolPred) predString() string {
	return fmt.Sprintf("(%s %s %s)", p.L.predString(), p.Op, p.R.predString())
}
func (p *BoolPred) Size() int { return 1 + p.L.Size() + p.R.Size() }

// NotPred is "not p".
type NotPred struct{ P Predicate }

func (p *NotPred) predString() string { return "not " + p.P.predString() }
func (p *NotPred) Size() int          { return 1 + p.P.Size() }

// Transform is a RIB transformation r: it maps the (base, updated) RIB pair
// to a single RIB.
type Transform interface {
	transString() string
	Size() int
}

// SelectRIB is the PRE / POST keyword.
type SelectRIB struct {
	Post bool
}

func (t *SelectRIB) transString() string {
	if t.Post {
		return "POST"
	}
	return "PRE"
}
func (t *SelectRIB) Size() int { return 0 }

// FilterRIB is "r || p".
type FilterRIB struct {
	R Transform
	P Predicate
}

func (t *FilterRIB) transString() string {
	return fmt.Sprintf("%s||(%s)", t.R.transString(), t.P.predString())
}
func (t *FilterRIB) Size() int { return 1 + t.R.Size() + t.P.Size() }

// AggFunc identifies a RIB aggregate function f.
type AggFunc string

// Aggregate functions.
const (
	AggCount    AggFunc = "count"
	AggDistCnt  AggFunc = "distCnt"
	AggDistVals AggFunc = "distVals"
)

// Eval is a RIB evaluation e: it maps the RIB pair to a primitive value.
type Eval interface {
	evalString() string
	Size() int
}

// LitEval is a literal value.
type LitEval struct {
	Value  string
	Number bool
}

func (e *LitEval) evalString() string { return e.Value }
func (e *LitEval) Size() int          { return 0 }

// SetEval is a literal set {v, ...}.
type SetEval struct{ Values []string }

func (e *SetEval) evalString() string { return "{" + strings.Join(e.Values, ", ") + "}" }
func (e *SetEval) Size() int          { return 0 }

// AggEval is "r |> f(field)".
type AggEval struct {
	R     Transform
	F     AggFunc
	Field string // empty for count()
}

func (e *AggEval) evalString() string {
	return fmt.Sprintf("%s |> %s(%s)", e.R.transString(), e.F, e.Field)
}
func (e *AggEval) Size() int { return 1 + e.R.Size() }

// ArithEval is "e1 (+|-|*|/) e2".
type ArithEval struct {
	Op   string
	L, R Eval
}

func (e *ArithEval) evalString() string {
	return fmt.Sprintf("(%s %s %s)", e.L.evalString(), e.Op, e.R.evalString())
}
func (e *ArithEval) Size() int { return 1 + e.L.Size() + e.R.Size() }

// Intent is the top-level construct g: it evaluates the RIB pair to a
// Boolean.
type Intent interface {
	intentString() string
	Size() int
}

// RIBCmpIntent is "r1 (=|!=) r2".
type RIBCmpIntent struct {
	Neq  bool
	L, R Transform
}

func (g *RIBCmpIntent) intentString() string {
	op := "="
	if g.Neq {
		op = "!="
	}
	return fmt.Sprintf("%s %s %s", g.L.transString(), op, g.R.transString())
}
func (g *RIBCmpIntent) Size() int { return 1 + g.L.Size() + g.R.Size() }

// EvalCmpIntent is "e1 ⊙ e2".
type EvalCmpIntent struct {
	Op   CmpOp
	L, R Eval
}

func (g *EvalCmpIntent) intentString() string {
	return fmt.Sprintf("%s %s %s", g.L.evalString(), g.Op, g.R.evalString())
}
func (g *EvalCmpIntent) Size() int { return 1 + g.L.Size() + g.R.Size() }

// GuardedIntent is "p => g".
type GuardedIntent struct {
	P Predicate
	G Intent
}

func (g *GuardedIntent) intentString() string {
	return fmt.Sprintf("%s => %s", g.P.predString(), g.G.intentString())
}
func (g *GuardedIntent) Size() int { return 1 + g.P.Size() + g.G.Size() }

// ForallIntent is "forall field [in {v,...}] : g".
type ForallIntent struct {
	Field  string
	Values []string // nil: group by every distinct value of Field
	G      Intent
}

func (g *ForallIntent) intentString() string {
	if g.Values == nil {
		return fmt.Sprintf("forall %s: %s", g.Field, g.G.intentString())
	}
	return fmt.Sprintf("forall %s in {%s}: %s", g.Field, strings.Join(g.Values, ", "), g.G.intentString())
}
func (g *ForallIntent) Size() int { return 1 + g.G.Size() }

// BoolIntent composes intents with and/or/imply.
type BoolIntent struct {
	Op   string
	L, R Intent
}

func (g *BoolIntent) intentString() string {
	return fmt.Sprintf("(%s %s %s)", g.L.intentString(), g.Op, g.R.intentString())
}
func (g *BoolIntent) Size() int { return 1 + g.L.Size() + g.R.Size() }

// NotIntent is "not g".
type NotIntent struct{ G Intent }

func (g *NotIntent) intentString() string { return "not " + g.G.intentString() }
func (g *NotIntent) Size() int            { return 1 + g.G.Size() }

// String renders an intent in canonical concrete syntax (re-parsable).
func String(g Intent) string { return g.intentString() }
