package rcl

import "testing"

func TestCorpusParsesAndSizes(t *testing.T) {
	specs := Corpus(
		[]string{"rr-0-0", "border-0-0", "dc-1-1"},
		[]string{"10.0.0.0/24", "10.1.0.0/24", "20.0.0.0/24"},
		[]string{"65000:0", "65000:999"},
		[]string{"100.64.3.1", "100.65.3.1"},
	)
	if len(specs) != 50 {
		t.Fatalf("corpus size = %d, want 50", len(specs))
	}
	small := 0
	for _, spec := range specs {
		g, err := Parse(spec)
		if err != nil {
			t.Fatalf("corpus spec does not parse: %q: %v", spec, err)
		}
		if g.Size() < 15 {
			small++
		}
		// Canonical form must re-parse.
		if _, err := Parse(String(g)); err != nil {
			t.Errorf("canonical form of %q unparsable: %v", spec, err)
		}
	}
	// Figure 8 shape: >90% of real-world specifications are smaller than 15.
	if frac := float64(small) / float64(len(specs)); frac < 0.9 {
		t.Errorf("only %.0f%% of corpus specs are < 15 internal nodes", frac*100)
	}
}

func TestCorpusVerifiesAgainstRIBs(t *testing.T) {
	base, updated := figure6()
	specs := Corpus(
		[]string{"A", "B"},
		[]string{"10.0.0.0/24", "20.0.0.0/24"},
		[]string{"100:1", "200:1"},
		[]string{"2.0.0.1", "4.0.0.1"},
	)
	for _, spec := range specs {
		g := MustParse(spec)
		if _, err := Check(g, base, updated); err != nil {
			t.Errorf("spec %q fails to verify: %v", spec, err)
		}
	}
}
