package rcl

import (
	"fmt"

	"hoyan/internal/netmodel"
)

// Parse compiles a specification text into an intent AST.
func Parse(src string) (Intent, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	g, err := p.intent()
	if err != nil {
		return nil, err
	}
	if p.peek().kind != tokEOF {
		return nil, p.errf("unexpected %s after intent", p.peek())
	}
	return g, nil
}

// MustParse panics on error; for tables and tests.
func MustParse(src string) Intent {
	g, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return g
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token   { return p.toks[p.pos] }
func (p *parser) next() token   { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) save() int     { return p.pos }
func (p *parser) restore(m int) { p.pos = m }

func (p *parser) errf(format string, args ...any) error {
	return &SyntaxError{Pos: p.peek().pos, Reason: fmt.Sprintf(format, args...)}
}

func (p *parser) expect(k tokenKind, what string) (token, error) {
	if p.peek().kind != k {
		return token{}, p.errf("expected %s, found %s", what, p.peek())
	}
	return p.next(), nil
}

func (p *parser) word(w string) bool {
	if p.peek().kind == tokWord && p.peek().text == w {
		p.next()
		return true
	}
	return false
}

func isFieldName(s string) bool {
	for _, f := range netmodel.FieldNames {
		if f == s {
			return true
		}
	}
	return false
}

// ---- intents ----

// intent := implyIntent
func (p *parser) intent() (Intent, error) { return p.implyIntent() }

func (p *parser) implyIntent() (Intent, error) {
	l, err := p.orIntent()
	if err != nil {
		return nil, err
	}
	for p.word("imply") {
		r, err := p.orIntent()
		if err != nil {
			return nil, err
		}
		l = &BoolIntent{Op: "imply", L: l, R: r}
	}
	return l, nil
}

func (p *parser) orIntent() (Intent, error) {
	l, err := p.andIntent()
	if err != nil {
		return nil, err
	}
	for p.word("or") {
		r, err := p.andIntent()
		if err != nil {
			return nil, err
		}
		l = &BoolIntent{Op: "or", L: l, R: r}
	}
	return l, nil
}

func (p *parser) andIntent() (Intent, error) {
	l, err := p.unaryIntent()
	if err != nil {
		return nil, err
	}
	for p.word("and") {
		r, err := p.unaryIntent()
		if err != nil {
			return nil, err
		}
		l = &BoolIntent{Op: "and", L: l, R: r}
	}
	return l, nil
}

func (p *parser) unaryIntent() (Intent, error) {
	if p.word("not") {
		g, err := p.unaryIntent()
		if err != nil {
			return nil, err
		}
		return &NotIntent{G: g}, nil
	}
	return p.baseIntent()
}

func (p *parser) baseIntent() (Intent, error) {
	// forall field [in {..}] : g
	if p.word("forall") {
		field, err := p.expect(tokWord, "field name")
		if err != nil {
			return nil, err
		}
		if !isFieldName(field.text) {
			return nil, p.errf("unknown field %q", field.text)
		}
		var values []string
		if p.word("in") {
			values, err = p.setLiteral()
			if err != nil {
				return nil, err
			}
			if values == nil {
				values = []string{}
			}
		}
		if _, err := p.expect(tokColon, "':'"); err != nil {
			return nil, err
		}
		g, err := p.intent()
		if err != nil {
			return nil, err
		}
		return &ForallIntent{Field: field.text, Values: values, G: g}, nil
	}

	// Attempt 1: guarded intent "p => g".
	mark := p.save()
	if pr, err := p.predicate(); err == nil && p.peek().kind == tokArrow {
		p.next()
		g, err := p.intent()
		if err != nil {
			return nil, err
		}
		return &GuardedIntent{P: pr, G: g}, nil
	}
	p.restore(mark)

	// Attempt 2: RIB comparison "r1 (=|!=) r2".
	if r1, err := p.transform(); err == nil && (p.peek().kind == tokEq || p.peek().kind == tokNeq) {
		opTok := p.next()
		if r2, err := p.transform(); err == nil && p.peek().kind != tokPipe {
			return &RIBCmpIntent{Neq: opTok.kind == tokNeq, L: r1, R: r2}, nil
		}
		p.restore(mark)
	} else {
		p.restore(mark)
	}

	// Attempt 3: evaluation comparison "e1 ⊙ e2".
	if e1, err := p.eval(); err == nil {
		op, ok := p.cmpOp()
		if ok {
			e2, err := p.eval()
			if err != nil {
				return nil, err
			}
			return &EvalCmpIntent{Op: op, L: e1, R: e2}, nil
		}
	}
	p.restore(mark)

	// Attempt 4: parenthesized intent.
	if p.peek().kind == tokLParen {
		p.next()
		g, err := p.intent()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen, "')'"); err != nil {
			return nil, err
		}
		return g, nil
	}
	return nil, p.errf("cannot parse intent at %s", p.peek())
}

func (p *parser) cmpOp() (CmpOp, bool) {
	switch p.peek().kind {
	case tokEq:
		p.next()
		return OpEq, true
	case tokNeq:
		p.next()
		return OpNeq, true
	case tokLt:
		p.next()
		return OpLt, true
	case tokLe:
		p.next()
		return OpLe, true
	case tokGt:
		p.next()
		return OpGt, true
	case tokGe:
		p.next()
		return OpGe, true
	}
	return "", false
}

// ---- predicates ----

func (p *parser) predicate() (Predicate, error) { return p.implyPred() }

func (p *parser) implyPred() (Predicate, error) {
	l, err := p.orPred()
	if err != nil {
		return nil, err
	}
	for p.word("imply") {
		r, err := p.orPred()
		if err != nil {
			return nil, err
		}
		l = &BoolPred{Op: "imply", L: l, R: r}
	}
	return l, nil
}

func (p *parser) orPred() (Predicate, error) {
	l, err := p.andPred()
	if err != nil {
		return nil, err
	}
	for p.word("or") {
		r, err := p.andPred()
		if err != nil {
			return nil, err
		}
		l = &BoolPred{Op: "or", L: l, R: r}
	}
	return l, nil
}

func (p *parser) andPred() (Predicate, error) {
	l, err := p.unaryPred()
	if err != nil {
		return nil, err
	}
	for p.word("and") {
		r, err := p.unaryPred()
		if err != nil {
			return nil, err
		}
		l = &BoolPred{Op: "and", L: l, R: r}
	}
	return l, nil
}

func (p *parser) unaryPred() (Predicate, error) {
	if p.word("not") {
		pr, err := p.unaryPred()
		if err != nil {
			return nil, err
		}
		return &NotPred{P: pr}, nil
	}
	if p.peek().kind == tokLParen {
		mark := p.save()
		p.next()
		pr, err := p.predicate()
		if err == nil && p.peek().kind == tokRParen {
			p.next()
			return pr, nil
		}
		p.restore(mark)
		return nil, p.errf("bad parenthesized predicate")
	}
	return p.basePred()
}

func (p *parser) basePred() (Predicate, error) {
	tok := p.peek()
	if tok.kind != tokWord || !isFieldName(tok.text) {
		return nil, p.errf("expected field name, found %s", tok)
	}
	field := p.next().text
	switch {
	case p.word("contains") || p.word("has"):
		v, err := p.value()
		if err != nil {
			return nil, err
		}
		return &ContainsPred{Field: field, Value: v}, nil
	case p.word("in"):
		vs, err := p.setLiteral()
		if err != nil {
			return nil, err
		}
		return &InPred{Field: field, Values: vs}, nil
	case p.word("matches"):
		s, err := p.expect(tokString, "quoted regex")
		if err != nil {
			return nil, err
		}
		return &MatchesPred{Field: field, Regex: s.text}, nil
	default:
		op, ok := p.cmpOp()
		if !ok {
			return nil, p.errf("expected predicate operator after %q", field)
		}
		v, err := p.value()
		if err != nil {
			return nil, err
		}
		return &CmpPred{Field: field, Op: op, Value: v}, nil
	}
}

// ---- transformations ----

func (p *parser) transform() (Transform, error) {
	var t Transform
	switch {
	case p.word("PRE"):
		t = &SelectRIB{Post: false}
	case p.word("POST"):
		t = &SelectRIB{Post: true}
	case p.peek().kind == tokLParen:
		mark := p.save()
		p.next()
		inner, err := p.transform()
		if err != nil || p.peek().kind != tokRParen {
			p.restore(mark)
			return nil, p.errf("bad parenthesized transformation")
		}
		p.next()
		t = inner
	default:
		return nil, p.errf("expected PRE or POST, found %s", p.peek())
	}
	for p.peek().kind == tokFilter {
		p.next()
		var pr Predicate
		var err error
		if p.peek().kind == tokLParen {
			p.next()
			pr, err = p.predicate()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokRParen, "')'"); err != nil {
				return nil, err
			}
		} else {
			pr, err = p.basePred()
			if err != nil {
				return nil, err
			}
		}
		t = &FilterRIB{R: t, P: pr}
	}
	return t, nil
}

// ---- evaluations ----

func (p *parser) eval() (Eval, error) {
	l, err := p.evalTerm()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch p.peek().kind {
		case tokPlus:
			op = "+"
		case tokMinus:
			op = "-"
		case tokStar:
			op = "*"
		case tokSlash:
			op = "/"
		default:
			return l, nil
		}
		p.next()
		r, err := p.evalTerm()
		if err != nil {
			return nil, err
		}
		l = &ArithEval{Op: op, L: l, R: r}
	}
}

func (p *parser) evalTerm() (Eval, error) {
	switch p.peek().kind {
	case tokNumber:
		return &LitEval{Value: p.next().text, Number: true}, nil
	case tokLBrace:
		vs, err := p.setLiteral()
		if err != nil {
			return nil, err
		}
		return &SetEval{Values: vs}, nil
	case tokLParen:
		mark := p.save()
		p.next()
		e, err := p.eval()
		if err == nil && p.peek().kind == tokRParen {
			p.next()
			return e, nil
		}
		p.restore(mark)
	}
	// "r |> f(field)" or a bare word literal.
	mark := p.save()
	if r, err := p.transform(); err == nil {
		if _, err := p.expect(tokPipe, "'|>'"); err != nil {
			return nil, err
		}
		fn, err := p.expect(tokWord, "aggregate function")
		if err != nil {
			return nil, err
		}
		var agg AggFunc
		switch fn.text {
		case "count":
			agg = AggCount
		case "distCnt":
			agg = AggDistCnt
		case "distVals":
			agg = AggDistVals
		default:
			return nil, p.errf("unknown aggregate function %q", fn.text)
		}
		if _, err := p.expect(tokLParen, "'('"); err != nil {
			return nil, err
		}
		field := ""
		if p.peek().kind == tokWord {
			field = p.next().text
			if !isFieldName(field) {
				return nil, p.errf("unknown field %q", field)
			}
		}
		if _, err := p.expect(tokRParen, "')'"); err != nil {
			return nil, err
		}
		if agg != AggCount && field == "" {
			return nil, p.errf("%s needs a field argument", agg)
		}
		if agg == AggCount && field != "" {
			return nil, p.errf("count() takes no argument")
		}
		return &AggEval{R: r, F: agg, Field: field}, nil
	}
	p.restore(mark)
	if p.peek().kind == tokWord {
		return &LitEval{Value: p.next().text}, nil
	}
	return nil, p.errf("cannot parse evaluation at %s", p.peek())
}

// ---- shared ----

func (p *parser) setLiteral() ([]string, error) {
	if _, err := p.expect(tokLBrace, "'{'"); err != nil {
		return nil, err
	}
	vs := []string{}
	for p.peek().kind != tokRBrace {
		v, err := p.value()
		if err != nil {
			return nil, err
		}
		vs = append(vs, v)
		if p.peek().kind == tokComma {
			p.next()
			continue
		}
		break
	}
	if _, err := p.expect(tokRBrace, "'}'"); err != nil {
		return nil, err
	}
	return vs, nil
}

func (p *parser) value() (string, error) {
	switch p.peek().kind {
	case tokWord, tokNumber:
		return p.next().text, nil
	case tokString:
		return p.next().text, nil
	}
	return "", p.errf("expected value, found %s", p.peek())
}
