package rcl

import (
	"net/netip"
	"strings"
	"testing"

	"hoyan/internal/netmodel"
)

// figure6 builds the paper's Figure 6 base and updated global RIBs.
func figure6() (base, updated *netmodel.GlobalRIB) {
	mk := func(dev, vrf, prefix, comms string, lp uint32, nh string) netmodel.Route {
		cs, _ := netmodel.ParseCommunitySet(comms)
		return netmodel.Route{
			Device: dev, VRF: vrf,
			Prefix:      netip.MustParsePrefix(prefix),
			Protocol:    netmodel.ProtoBGP,
			NextHop:     netip.MustParseAddr(nh),
			Communities: cs,
			LocalPref:   lp,
			RouteType:   netmodel.RouteBest,
		}
	}
	base = netmodel.NewGlobalRIB([]netmodel.Route{
		mk("A", "global", "10.0.0.0/24", "100:1", 100, "2.0.0.1"),
		mk("A", "vrf1", "20.0.0.0/24", "100:1,200:1", 10, "3.0.0.1"),
		mk("B", "global", "10.0.0.0/24", "100:1", 200, "4.0.0.1"),
	})
	updated = netmodel.NewGlobalRIB([]netmodel.Route{
		mk("A", "global", "10.0.0.0/24", "100:1", 300, "2.0.0.1"),
		mk("A", "vrf1", "20.0.0.0/24", "100:1,200:1", 10, "3.0.0.1"),
		mk("B", "global", "10.0.0.0/24", "100:1", 300, "4.0.0.1"),
	})
	return base, updated
}

func check(t *testing.T, spec string, base, updated *netmodel.GlobalRIB) *Result {
	t.Helper()
	g, err := Parse(spec)
	if err != nil {
		t.Fatalf("parse %q: %v", spec, err)
	}
	res, err := Check(g, base, updated)
	if err != nil {
		t.Fatalf("check %q: %v", spec, err)
	}
	return res
}

func TestPaperSection41Examples(t *testing.T) {
	base, updated := figure6()

	// Intent (a): routes with prefix 10.0.0.0/24 have local preference 300
	// after the change.
	res := check(t, "prefix = 10.0.0.0/24 => POST |> distVals(localPref) = {300}", base, updated)
	if !res.Holds {
		t.Errorf("intent (a) must hold: %v", res.Violations)
	}

	// Intent (b): routes with other prefixes remain unchanged.
	res = check(t, "prefix != 10.0.0.0/24 => PRE = POST", base, updated)
	if !res.Holds {
		t.Errorf("intent (b) must hold: %v", res.Violations)
	}

	// The negated form of (a) on the base RIB fails (base has 100 and 200).
	res = check(t, "prefix = 10.0.0.0/24 => PRE |> distVals(localPref) = {300}", base, updated)
	if res.Holds {
		t.Error("base RIB must violate localPref=300")
	}
	if len(res.Violations) == 0 {
		t.Fatal("want counterexamples")
	}
	if !strings.Contains(res.Violations[0].Detail, "{100, 200}") {
		t.Errorf("violation detail = %q", res.Violations[0].Detail)
	}
	if len(res.Violations[0].Routes) == 0 {
		t.Error("violation should carry example routes")
	}
}

func TestUseCaseUnchangedRoutes(t *testing.T) {
	base, updated := figure6()
	spec := `forall device in {A, B}:
	  forall prefix in {10.0.0.0/24, 20.0.0.0/24}:
	    routeType = BEST => PRE |> distVals(nexthop) = POST |> distVals(nexthop)`
	if res := check(t, spec, base, updated); !res.Holds {
		t.Errorf("next hops unchanged, intent must hold: %v", res.Violations)
	}
}

func TestUseCaseBlockedCommunity(t *testing.T) {
	base, updated := figure6()
	// The updated RIB still has routes with community 100:1 on A and B.
	spec := `forall device in {A, B}: POST||(communities has 100:1) |> count() = 0`
	res := check(t, spec, base, updated)
	if res.Holds {
		t.Error("intent must be violated (communities still present)")
	}
	// Two violations: one per device group.
	if len(res.Violations) != 2 {
		t.Errorf("violations = %d, want 2", len(res.Violations))
	}
	if !strings.Contains(res.Violations[0].Context, "forall device=A") {
		t.Errorf("context = %q", res.Violations[0].Context)
	}
}

func TestUseCaseConditionalChange(t *testing.T) {
	// Re-route: prefixes whose base next hop was {2.0.0.1} must move to
	// {9.9.9.9}; prefix 10.0.0.0/24 on A has base next hop 2.0.0.1 but still
	// points there after the change -> violated.
	base, updated := figure6()
	spec := `forall device in {A}: forall prefix:
	  (PRE |> distVals(nexthop) = {2.0.0.1}) imply (POST |> distVals(nexthop) = {9.9.9.9})`
	res := check(t, spec, base, updated)
	if res.Holds {
		t.Error("conditional change intent must be violated")
	}
	// And the vacuous case holds: base next hop not matching means no claim.
	spec2 := `forall device in {A}: forall prefix:
	  (PRE |> distVals(nexthop) = {1.2.3.4}) imply (POST |> distVals(nexthop) = {9.9.9.9})`
	if res := check(t, spec2, base, updated); !res.Holds {
		t.Errorf("vacuous imply must hold: %v", res.Violations)
	}
}

func TestForallGroupsAllValues(t *testing.T) {
	base, updated := figure6()
	// Every prefix must have exactly 1 distinct next hop per device — true
	// in Figure 6.
	spec := `forall device: forall prefix: POST |> distCnt(nexthop) = 1`
	if res := check(t, spec, base, updated); !res.Holds {
		t.Errorf("%v", res.Violations)
	}
	// Group over the whole table without per-device split: 10.0.0.0/24 has
	// two next hops (A and B rows).
	spec = `forall prefix: POST |> distCnt(nexthop) = 1`
	if res := check(t, spec, base, updated); res.Holds {
		t.Error("10.0.0.0/24 has 2 next hops across devices")
	}
}

func TestArithmeticAndRelational(t *testing.T) {
	base, updated := figure6()
	if res := check(t, "POST |> count() = PRE |> count()", base, updated); !res.Holds {
		t.Error("row counts equal")
	}
	if res := check(t, "POST |> count() >= 2 and PRE |> count() <= 3", base, updated); !res.Holds {
		t.Error("relational composition")
	}
	if res := check(t, "POST |> count() + 1 = 4", base, updated); !res.Holds {
		t.Error("arithmetic")
	}
	if res := check(t, "POST |> count() * 2 - 2 = 4", base, updated); !res.Holds {
		t.Error("arithmetic chain")
	}
}

func TestPredicateOperators(t *testing.T) {
	base, updated := figure6()
	cases := []struct {
		spec string
		want bool
	}{
		{"vrf = vrf1 => POST |> count() = 1", true},
		{"device in {A} and vrf = global => POST |> distVals(localPref) = {300}", true},
		{"not vrf = vrf1 => POST |> count() = 2", true},
		{"localPref >= 300 => POST |> count() = 2", true},
		{"communities contains 200:1 => POST |> distVals(device) = {A}", true},
		{"vrf = vrf1 or vrf = global => POST |> count() = 3", true},
		{"vrf = nosuchvrf => POST |> count() = 0", true},
	}
	for _, tc := range cases {
		if res := check(t, tc.spec, base, updated); res.Holds != tc.want {
			t.Errorf("%q = %v, want %v (%v)", tc.spec, res.Holds, tc.want, res.Violations)
		}
	}
}

func TestMatchesPredicate(t *testing.T) {
	r := netmodel.Route{
		Device: "A", VRF: "global",
		Prefix:    netip.MustParsePrefix("10.0.0.0/24"),
		NextHop:   netip.MustParseAddr("2.0.0.1"),
		ASPath:    netmodel.ASPath{Seq: []netmodel.ASN{65001, 123, 65002}},
		RouteType: netmodel.RouteBest,
	}
	g := netmodel.NewGlobalRIB([]netmodel.Route{r})
	res := check(t, `aspath matches ".* 123 .*" => POST |> count() = 1`, g, g)
	if !res.Holds {
		t.Errorf("%v", res.Violations)
	}
	// Entire-string semantics: "123" alone must not match.
	res = check(t, `POST||(aspath matches "123") |> count() = 0`, g, g)
	if !res.Holds {
		t.Errorf("anchored match: %v", res.Violations)
	}
}

func TestRIBInequalityIntent(t *testing.T) {
	base, updated := figure6()
	if res := check(t, "PRE != POST", base, updated); !res.Holds {
		t.Error("RIBs differ")
	}
	if res := check(t, "PRE = PRE", base, updated); !res.Holds {
		t.Error("identity")
	}
	res := check(t, "PRE = POST", base, updated)
	if res.Holds {
		t.Error("must be violated")
	}
	if len(res.Violations) == 0 || len(res.Violations[0].Routes) == 0 {
		t.Error("diff rows expected as counterexample")
	}
}

func TestFilterChaining(t *testing.T) {
	base, updated := figure6()
	spec := "POST||device = A||vrf = global |> count() = 1"
	if res := check(t, spec, base, updated); !res.Holds {
		t.Errorf("%v", res.Violations)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"bogusfield = 3 => PRE = POST",
		"PRE == = POST",
		"forall nosuchfield: PRE = POST",
		"POST |> distVals() = {1}",
		"POST |> count(device) = 1",
		"POST |> frobnicate(device) = 1",
		"prefix = 10.0.0.0/24 =>",
		"PRE = POST extra",
		`aspath matches unquoted => PRE = POST`,
	}
	for _, spec := range bad {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) should fail", spec)
		}
	}
}

func TestCanonicalStringRoundTrip(t *testing.T) {
	specs := []string{
		"prefix = 10.0.0.0/24 => POST |> distVals(localPref) = {300}",
		"forall device in {R1, R2}: forall prefix: (PRE |> distVals(nexthop) = {1.2.3.4}) imply (POST |> distVals(nexthop) = {10.2.3.4})",
		"PRE != POST",
		"POST||(communities has 100:1) |> count() = 0",
		"not (PRE = POST) and POST |> count() >= 1",
	}
	for _, spec := range specs {
		g1, err := Parse(spec)
		if err != nil {
			t.Fatalf("parse %q: %v", spec, err)
		}
		canon := String(g1)
		g2, err := Parse(canon)
		if err != nil {
			t.Fatalf("reparse %q: %v", canon, err)
		}
		if String(g2) != canon {
			t.Errorf("canonical form unstable: %q vs %q", canon, String(g2))
		}
	}
}

func TestUnicodeAliases(t *testing.T) {
	base, updated := figure6()
	spec := "prefix = 10.0.0.0/24 ⇒ POST ▷ distVals(localPref) = {300}"
	if res := check(t, spec, base, updated); !res.Holds {
		t.Errorf("unicode spelling: %v", res.Violations)
	}
}

func TestSizeMetric(t *testing.T) {
	// Size counts internal nodes, the Figure 8 metric.
	cases := []struct {
		spec string
		want int
	}{
		// guarded(1) + pred(1) + evalcmp(1) + agg(1) = 4
		{"prefix = 10.0.0.0/24 => POST |> distVals(localPref) = {300}", 4},
		// ribcmp(1) = 1
		{"PRE = POST", 1},
		// forall(1) + evalcmp(1) + agg(1) + filter(1) + pred(1) = 5
		{"forall device in {A, B}: POST||(communities has 100:1) |> count() = 0", 5},
	}
	for _, tc := range cases {
		g := MustParse(tc.spec)
		if got := g.Size(); got != tc.want {
			t.Errorf("Size(%q) = %d, want %d", tc.spec, got, tc.want)
		}
	}
}

func TestViolationStringIncludesContext(t *testing.T) {
	base, updated := figure6()
	res := check(t, "forall device in {A, B}: POST||(communities has 100:1) |> count() = 0", base, updated)
	if res.Holds {
		t.Fatal("should fail")
	}
	s := res.Violations[0].String()
	if !strings.Contains(s, "forall device=") || !strings.Contains(s, "count()") {
		t.Errorf("violation string = %q", s)
	}
}

func TestOrRollsBackViolations(t *testing.T) {
	base, updated := figure6()
	// Left side fails, right side holds: no violations should remain.
	res := check(t, "PRE = POST or POST |> count() = 3", base, updated)
	if !res.Holds {
		t.Fatal("or must hold")
	}
	if len(res.Violations) != 0 {
		t.Errorf("violations should be rolled back: %v", res.Violations)
	}
}

func TestForallInEquivalentToConjunction(t *testing.T) {
	// forall χ in {v1, v2}: g  ≡  (χ=v1 => g') and (χ=v2 => g') where the
	// guard restricts both RIBs (Figure 11 semantics).
	base, updated := figure6()
	forall := check(t, "forall device in {A, B}: POST |> count() >= 1", base, updated)
	conj := check(t, "(device = A => POST |> count() >= 1) and (device = B => POST |> count() >= 1)", base, updated)
	if forall.Holds != conj.Holds {
		t.Errorf("forall-in %v != conjunction %v", forall.Holds, conj.Holds)
	}
}

func TestGuardEquivalentToFilter(t *testing.T) {
	// p => e ⊙ v over PRE/POST ≡ the same comparison with the predicate
	// pushed into filters.
	base, updated := figure6()
	guard := check(t, "vrf = global => POST |> count() = 2", base, updated)
	filt := check(t, "POST||vrf = global |> count() = 2", base, updated)
	if guard.Holds != filt.Holds || !guard.Holds {
		t.Errorf("guard %v vs filter %v", guard.Holds, filt.Holds)
	}
}

func TestNotInvolution(t *testing.T) {
	base, updated := figure6()
	specs := []string{"PRE = POST", "POST |> count() = 3", "prefix = 10.0.0.0/24 => PRE = POST"}
	for _, spec := range specs {
		direct := check(t, spec, base, updated)
		double := check(t, "not not ("+spec+")", base, updated)
		if direct.Holds != double.Holds {
			t.Errorf("double negation differs for %q", spec)
		}
	}
}

func TestEvalErrors(t *testing.T) {
	base, updated := figure6()
	bad := []string{
		"POST |> count() / 0 = 1",               // division by zero
		"POST |> distVals(nexthop) > {1.1.1.1}", // relational on sets
		"POST |> distVals(nexthop) + 1 = 2",     // arithmetic on sets
		"communities > 100:1 => PRE = POST",     // relational on set field
	}
	for _, spec := range bad {
		g, err := Parse(spec)
		if err != nil {
			continue // rejected at parse time is fine too
		}
		if _, err := Check(g, base, updated); err == nil {
			t.Errorf("Check(%q) should fail", spec)
		}
	}
}
