package rcl

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"

	"hoyan/internal/netmodel"
	"slices"
)

// Violation is one concrete counterexample for an unsatisfied intent: the
// violated sub-expression, the grouping context it occurred under, a
// human-readable detail, and up to MaxExampleRoutes related routes.
type Violation struct {
	Expr    string
	Context string
	Detail  string
	Routes  []netmodel.Route
}

func (v Violation) String() string {
	s := v.Expr
	if v.Context != "" {
		s = v.Context + ": " + s
	}
	if v.Detail != "" {
		s += " — " + v.Detail
	}
	return s
}

// MaxExampleRoutes caps the routes attached to one violation.
const MaxExampleRoutes = 5

// Result is the outcome of checking an intent.
type Result struct {
	Holds      bool
	Violations []Violation
}

// Check evaluates intent g against the base (PRE) and updated (POST) global
// RIBs, per the Appendix A semantics, collecting counterexamples for
// violated sub-intents.
func Check(g Intent, base, updated *netmodel.GlobalRIB) (*Result, error) {
	c := &checker{}
	holds, err := c.intent(g, base.Rows(), updated.Rows())
	if err != nil {
		return nil, err
	}
	return &Result{Holds: holds, Violations: c.violations}, nil
}

// EvalError reports a type or domain error during evaluation.
type EvalError struct {
	Expr   string
	Reason string
}

func (e *EvalError) Error() string {
	return fmt.Sprintf("rcl: evaluating %s: %s", e.Expr, e.Reason)
}

type checker struct {
	ctx        []string
	violations []Violation
}

func (c *checker) context() string { return strings.Join(c.ctx, " > ") }

func (c *checker) violate(expr, detail string, routes []netmodel.Route) {
	if len(routes) > MaxExampleRoutes {
		routes = routes[:MaxExampleRoutes]
	}
	c.violations = append(c.violations, Violation{
		Expr: expr, Context: c.context(), Detail: detail,
		Routes: append([]netmodel.Route(nil), routes...),
	})
}

// ---- intent evaluation (Figure 11 (d)) ----

func (c *checker) intent(g Intent, M, N []netmodel.Route) (bool, error) {
	switch g := g.(type) {
	case *RIBCmpIntent:
		l, err := c.transform(g.L, M, N)
		if err != nil {
			return false, err
		}
		r, err := c.transform(g.R, M, N)
		if err != nil {
			return false, err
		}
		gl, gr := netmodel.NewGlobalRIB(l), netmodel.NewGlobalRIB(r)
		equal := gl.Equal(gr)
		holds := equal != g.Neq
		if !holds {
			if g.Neq {
				c.violate(g.intentString(), "RIBs are identical", gl.Rows())
			} else {
				onlyL, onlyR := gl.Diff(gr)
				c.violate(g.intentString(),
					fmt.Sprintf("%d rows only in %s, %d rows only in %s",
						len(onlyL), g.L.transString(), len(onlyR), g.R.transString()),
					append(onlyL, onlyR...))
			}
		}
		return holds, nil

	case *EvalCmpIntent:
		l, err := c.eval(g.L, M, N)
		if err != nil {
			return false, err
		}
		r, err := c.eval(g.R, M, N)
		if err != nil {
			return false, err
		}
		holds, err := compareValues(g.Op, l, r)
		if err != nil {
			return false, &EvalError{Expr: g.intentString(), Reason: err.Error()}
		}
		if !holds {
			c.violate(g.intentString(),
				fmt.Sprintf("left = %s, right = %s", l, r),
				exampleRows(g.L, g.R, M, N))
		}
		return holds, nil

	case *GuardedIntent:
		fm, err := c.filter(M, g.P)
		if err != nil {
			return false, err
		}
		fn, err := c.filter(N, g.P)
		if err != nil {
			return false, err
		}
		return c.intent(g.G, fm, fn)

	case *ForallIntent:
		values := g.Values
		if values == nil {
			values = distinctFieldValues(g.Field, M, N)
		}
		holds := true
		for _, v := range values {
			pm := fieldEquals(g.Field, v, M)
			pn := fieldEquals(g.Field, v, N)
			c.ctx = append(c.ctx, fmt.Sprintf("forall %s=%s", g.Field, v))
			ok, err := c.intent(g.G, pm, pn)
			c.ctx = c.ctx[:len(c.ctx)-1]
			if err != nil {
				return false, err
			}
			if !ok {
				holds = false
			}
		}
		return holds, nil

	case *BoolIntent:
		// Sub-intent violations are recorded speculatively and rolled back
		// when the composition holds anyway.
		mark := len(c.violations)
		l, err := c.intent(g.L, M, N)
		if err != nil {
			return false, err
		}
		r, err := c.intent(g.R, M, N)
		if err != nil {
			return false, err
		}
		var holds bool
		switch g.Op {
		case "and":
			holds = l && r
		case "or":
			holds = l || r
		case "imply":
			holds = !l || r
		}
		if holds {
			c.violations = c.violations[:mark]
		}
		return holds, nil

	case *NotIntent:
		mark := len(c.violations)
		inner, err := c.intent(g.G, M, N)
		if err != nil {
			return false, err
		}
		c.violations = c.violations[:mark] // inner violations are inverted
		if inner {
			c.violate(g.intentString(), "negated intent holds", nil)
		}
		return !inner, nil
	}
	return false, &EvalError{Expr: fmt.Sprintf("%T", g), Reason: "unknown intent node"}
}

// exampleRows picks context rows for an evaluation-comparison violation: the
// filtered rows of the first aggregate operand.
func exampleRows(l, r Eval, M, N []netmodel.Route) []netmodel.Route {
	for _, e := range []Eval{l, r} {
		if agg, ok := e.(*AggEval); ok {
			c := &checker{}
			rows, err := c.transform(agg.R, M, N)
			if err == nil {
				return rows
			}
		}
	}
	return nil
}

// ---- transformations (Figure 11 (b)) ----

func (c *checker) transform(t Transform, M, N []netmodel.Route) ([]netmodel.Route, error) {
	switch t := t.(type) {
	case *SelectRIB:
		if t.Post {
			return N, nil
		}
		return M, nil
	case *FilterRIB:
		rows, err := c.transform(t.R, M, N)
		if err != nil {
			return nil, err
		}
		return c.filter(rows, t.P)
	}
	return nil, &EvalError{Expr: fmt.Sprintf("%T", t), Reason: "unknown transformation node"}
}

func (c *checker) filter(rows []netmodel.Route, p Predicate) ([]netmodel.Route, error) {
	var out []netmodel.Route
	for _, r := range rows {
		ok, err := evalPredicate(p, r)
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, r)
		}
	}
	return out, nil
}

// ---- predicates (Figure 11 (a)) ----

func evalPredicate(p Predicate, r netmodel.Route) (bool, error) {
	switch p := p.(type) {
	case *CmpPred:
		fv, ok := r.Field(p.Field)
		if !ok {
			return false, &EvalError{Expr: p.predString(), Reason: "unknown field"}
		}
		return compareFieldValue(p.Op, fv, p.Value, p.predString())
	case *ContainsPred:
		fv, ok := r.Field(p.Field)
		if !ok {
			return false, &EvalError{Expr: p.predString(), Reason: "unknown field"}
		}
		set, ok := fv.([]string)
		if !ok {
			return false, &EvalError{Expr: p.predString(), Reason: "contains requires a set-valued field"}
		}
		for _, v := range set {
			if v == p.Value {
				return true, nil
			}
		}
		return false, nil
	case *InPred:
		fv, ok := r.Field(p.Field)
		if !ok {
			return false, &EvalError{Expr: p.predString(), Reason: "unknown field"}
		}
		s := fieldString(fv)
		for _, v := range p.Values {
			if s == v {
				return true, nil
			}
		}
		return false, nil
	case *MatchesPred:
		fv, ok := r.Field(p.Field)
		if !ok {
			return false, &EvalError{Expr: p.predString(), Reason: "unknown field"}
		}
		re, err := regexp.Compile("^(?:" + p.Regex + ")$")
		if err != nil {
			return false, &EvalError{Expr: p.predString(), Reason: err.Error()}
		}
		return re.MatchString(fieldString(fv)), nil
	case *BoolPred:
		l, err := evalPredicate(p.L, r)
		if err != nil {
			return false, err
		}
		rr, err := evalPredicate(p.R, r)
		if err != nil {
			return false, err
		}
		switch p.Op {
		case "and":
			return l && rr, nil
		case "or":
			return l || rr, nil
		case "imply":
			return !l || rr, nil
		}
		return false, &EvalError{Expr: p.predString(), Reason: "unknown operator"}
	case *NotPred:
		v, err := evalPredicate(p.P, r)
		return !v, err
	}
	return false, &EvalError{Expr: fmt.Sprintf("%T", p), Reason: "unknown predicate node"}
}

// compareFieldValue compares a route field against a literal: numerically
// when both sides are numeric, textually otherwise.
func compareFieldValue(op CmpOp, fv any, lit string, expr string) (bool, error) {
	switch v := fv.(type) {
	case int64:
		n, err := strconv.ParseInt(lit, 10, 64)
		if err != nil {
			return false, &EvalError{Expr: expr, Reason: fmt.Sprintf("numeric field compared to %q", lit)}
		}
		return cmpOrdered(op, v, n), nil
	case string:
		return cmpOrdered(op, v, lit), nil
	case []string:
		joined := strings.Join(v, ",")
		switch op {
		case OpEq:
			return joined == lit, nil
		case OpNeq:
			return joined != lit, nil
		}
		return false, &EvalError{Expr: expr, Reason: "relational comparison on a set-valued field"}
	}
	return false, &EvalError{Expr: expr, Reason: "unsupported field type"}
}

func cmpOrdered[T int64 | string](op CmpOp, a, b T) bool {
	switch op {
	case OpEq:
		return a == b
	case OpNeq:
		return a != b
	case OpLt:
		return a < b
	case OpLe:
		return a <= b
	case OpGt:
		return a > b
	case OpGe:
		return a >= b
	}
	return false
}

func fieldString(fv any) string {
	switch v := fv.(type) {
	case string:
		return v
	case int64:
		return strconv.FormatInt(v, 10)
	case []string:
		return strings.Join(v, ",")
	}
	return fmt.Sprint(fv)
}

// ---- evaluations (Figure 11 (c)) ----

// Value is the result of a RIB evaluation: a number, a string, or a set.
type Value struct {
	Kind ValueKind
	Num  float64
	Str  string
	Set  []string // sorted
}

// ValueKind discriminates Value.
type ValueKind int

// Value kinds.
const (
	NumValue ValueKind = iota
	StrValue
	SetValue
)

func (v Value) String() string {
	switch v.Kind {
	case NumValue:
		if v.Num == float64(int64(v.Num)) {
			return strconv.FormatInt(int64(v.Num), 10)
		}
		return strconv.FormatFloat(v.Num, 'g', -1, 64)
	case StrValue:
		return v.Str
	case SetValue:
		return "{" + strings.Join(v.Set, ", ") + "}"
	}
	return "?"
}

func (c *checker) eval(e Eval, M, N []netmodel.Route) (Value, error) {
	switch e := e.(type) {
	case *LitEval:
		if e.Number {
			n, _ := strconv.ParseFloat(e.Value, 64)
			return Value{Kind: NumValue, Num: n}, nil
		}
		return Value{Kind: StrValue, Str: e.Value}, nil
	case *SetEval:
		set := append([]string(nil), e.Values...)
		slices.Sort(set)
		return Value{Kind: SetValue, Set: dedupeSorted(set)}, nil
	case *AggEval:
		rows, err := c.transform(e.R, M, N)
		if err != nil {
			return Value{}, err
		}
		switch e.F {
		case AggCount:
			return Value{Kind: NumValue, Num: float64(len(rows))}, nil
		case AggDistCnt:
			vals, err := distVals(e.Field, rows, e.evalString())
			if err != nil {
				return Value{}, err
			}
			return Value{Kind: NumValue, Num: float64(len(vals))}, nil
		case AggDistVals:
			vals, err := distVals(e.Field, rows, e.evalString())
			if err != nil {
				return Value{}, err
			}
			return Value{Kind: SetValue, Set: vals}, nil
		}
		return Value{}, &EvalError{Expr: e.evalString(), Reason: "unknown aggregate"}
	case *ArithEval:
		l, err := c.eval(e.L, M, N)
		if err != nil {
			return Value{}, err
		}
		r, err := c.eval(e.R, M, N)
		if err != nil {
			return Value{}, err
		}
		if l.Kind != NumValue || r.Kind != NumValue {
			return Value{}, &EvalError{Expr: e.evalString(), Reason: "arithmetic on non-numeric values"}
		}
		switch e.Op {
		case "+":
			return Value{Kind: NumValue, Num: l.Num + r.Num}, nil
		case "-":
			return Value{Kind: NumValue, Num: l.Num - r.Num}, nil
		case "*":
			return Value{Kind: NumValue, Num: l.Num * r.Num}, nil
		case "/":
			if r.Num == 0 {
				return Value{}, &EvalError{Expr: e.evalString(), Reason: "division by zero"}
			}
			return Value{Kind: NumValue, Num: l.Num / r.Num}, nil
		}
	}
	return Value{}, &EvalError{Expr: fmt.Sprintf("%T", e), Reason: "unknown evaluation node"}
}

func distVals(field string, rows []netmodel.Route, expr string) ([]string, error) {
	seen := map[string]bool{}
	var out []string
	for _, r := range rows {
		fv, ok := r.Field(field)
		if !ok {
			return nil, &EvalError{Expr: expr, Reason: "unknown field " + field}
		}
		s := fieldString(fv)
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	slices.Sort(out)
	return out, nil
}

func dedupeSorted(xs []string) []string {
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != xs[i-1] {
			out = append(out, x)
		}
	}
	return out
}

// compareValues implements e1 ⊙ e2: numbers compare numerically, strings
// textually (with numeric coercion when both look numeric), sets support
// only equality.
func compareValues(op CmpOp, l, r Value) (bool, error) {
	if l.Kind == SetValue || r.Kind == SetValue {
		if l.Kind != SetValue || r.Kind != SetValue {
			return false, fmt.Errorf("comparing a set to a non-set")
		}
		eq := len(l.Set) == len(r.Set)
		if eq {
			for i := range l.Set {
				if l.Set[i] != r.Set[i] {
					eq = false
					break
				}
			}
		}
		switch op {
		case OpEq:
			return eq, nil
		case OpNeq:
			return !eq, nil
		}
		return false, fmt.Errorf("relational comparison on sets")
	}
	if l.Kind == NumValue && r.Kind == NumValue {
		return cmpFloat(op, l.Num, r.Num), nil
	}
	// Coerce strings that are numeric.
	ln, lok := strconv.ParseFloat(l.String(), 64)
	rn, rok := strconv.ParseFloat(r.String(), 64)
	if lok == nil && rok == nil {
		return cmpFloat(op, ln, rn), nil
	}
	return cmpOrdered(op, l.String(), r.String()), nil
}

func cmpFloat(op CmpOp, a, b float64) bool {
	switch op {
	case OpEq:
		return a == b
	case OpNeq:
		return a != b
	case OpLt:
		return a < b
	case OpLe:
		return a <= b
	case OpGt:
		return a > b
	case OpGe:
		return a >= b
	}
	return false
}

// distinctFieldValues implements the forall-χ grouping domain
// V = {τ_χ | τ ∈ M ∨ τ ∈ N}.
func distinctFieldValues(field string, M, N []netmodel.Route) []string {
	seen := map[string]bool{}
	var out []string
	for _, rows := range [][]netmodel.Route{M, N} {
		for _, r := range rows {
			fv, ok := r.Field(field)
			if !ok {
				continue
			}
			s := fieldString(fv)
			if !seen[s] {
				seen[s] = true
				out = append(out, s)
			}
		}
	}
	slices.Sort(out)
	return out
}

// fieldEquals filters rows whose field value (canonical string form) equals v.
func fieldEquals(field, v string, rows []netmodel.Route) []netmodel.Route {
	var out []netmodel.Route
	for _, r := range rows {
		fv, ok := r.Field(field)
		if ok && fieldString(fv) == v {
			out = append(out, r)
		}
	}
	return out
}
