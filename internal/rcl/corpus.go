package rcl

import (
	"fmt"
	"strings"
)

// Corpus generates the 50-specification evaluation corpus used for Figure 8,
// mirroring the shapes of §4.3's real-world use cases: no-change intents,
// attribute-change intents, blocked-community intents, conditional
// re-routing intents, next-hop-count intents, and presence/absence intents.
// The parameters plug concrete device names, prefixes, communities, and next
// hops from the evaluated network into the templates, so verification times
// are measured against real RIB contents.
func Corpus(devices, prefixes, communities, nexthops []string) []string {
	pick := func(xs []string, i int) string { return xs[i%len(xs)] }
	pick2 := func(xs []string, i int) string {
		if len(xs) == 1 {
			return xs[0]
		}
		return xs[(i+1)%len(xs)]
	}
	set := func(xs ...string) string { return "{" + strings.Join(xs, ", ") + "}" }

	var specs []string
	add := func(s string) { specs = append(specs, s) }

	// 1) Validating unchanged routes (12 variants), §4.3 use case 1.
	for i := 0; i < 12; i++ {
		d1, d2 := pick(devices, i), pick2(devices, i)
		p1, p2 := pick(prefixes, i), pick2(prefixes, i)
		switch i % 3 {
		case 0:
			add(fmt.Sprintf(
				"forall device in %s: forall prefix in %s: routeType = BEST => PRE |> distVals(nexthop) = POST |> distVals(nexthop)",
				set(d1, d2), set(p1, p2)))
		case 1:
			add(fmt.Sprintf("device = %s => PRE = POST", d1))
		default:
			add(fmt.Sprintf("prefix != %s => PRE = POST", p1))
		}
	}

	// 2) Validating the success of route changes (10 variants): attribute
	// values after the change.
	for i := 0; i < 10; i++ {
		p := pick(prefixes, i)
		switch i % 2 {
		case 0:
			add(fmt.Sprintf("prefix = %s => POST |> distVals(localPref) = {%d}", p, 100+10*(i%5)))
		default:
			add(fmt.Sprintf("prefix = %s and routeType = BEST => POST |> count() >= 1", p))
		}
	}

	// 3) Blocked communities (8 variants), §4.3 use case 2.
	for i := 0; i < 8; i++ {
		d := pick(devices, i)
		c := pick(communities, i)
		if i%2 == 0 {
			add(fmt.Sprintf("forall device in %s: POST||(communities has %s) |> count() = 0", set(d), c))
		} else {
			add(fmt.Sprintf("device = %s => POST||(communities has %s) |> count() = 0", d, c))
		}
	}

	// 4) Conditional changes (6 variants), §4.3 use case 3.
	for i := 0; i < 6; i++ {
		d := pick(devices, i)
		nh1, nh2 := pick(nexthops, i), pick2(nexthops, i)
		add(fmt.Sprintf(
			"forall device in %s: forall prefix: (PRE |> distVals(nexthop) = {%s}) imply (POST |> distVals(nexthop) = {%s})",
			set(d), nh1, nh2))
	}

	// 5) Next-hop counts / ECMP intents (6 variants).
	for i := 0; i < 6; i++ {
		p := pick(prefixes, i+3)
		if i%2 == 0 {
			add(fmt.Sprintf("prefix = %s and routeType = BEST => POST |> distCnt(nexthop) >= 1", p))
		} else {
			add(fmt.Sprintf("forall prefix in %s: routeType = BEST => POST |> distCnt(device) >= 1", set(p)))
		}
	}

	// 6) Presence / absence (4 variants): new prefix announcement and
	// prefix reclamation (Table 2).
	for i := 0; i < 4; i++ {
		p := pick(prefixes, i+1)
		if i%2 == 0 {
			add(fmt.Sprintf("prefix = %s => POST |> distCnt(device) >= 1", p))
		} else {
			add(fmt.Sprintf("POST||prefix = %s||device = %s |> count() >= 0", p, pick(devices, i)))
		}
	}

	// 7) Composite intents (4 variants).
	for i := 0; i < 4; i++ {
		p := pick(prefixes, i)
		c := pick(communities, i)
		add(fmt.Sprintf(
			"(prefix = %s => POST |> count() >= 1) and (communities has %s => POST |> distCnt(prefix) >= 1)",
			p, c))
	}

	return specs
}
