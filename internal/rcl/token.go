// Package rcl implements the Route Change intent specification Language of
// §4 and Appendix A: a small domain-specific language over the global-RIB
// abstraction that relates the RIBs before (PRE) and after (POST) a network
// change.
//
// The concrete syntax follows the paper with ASCII spellings:
//
//	p  :=  field OP value | field contains v | field has v
//	    |  field in {v, ...} | field matches "regex"
//	    |  p and p | p or p | p imply p | not p
//	r  :=  PRE | POST | r || p
//	e  :=  value | {v, ...} | r |> count() | r |> distCnt(f) | r |> distVals(f)
//	    |  e + e | e - e | e * e | e / e
//	g  :=  r = r | r != r | e OP e | p => g
//	    |  forall f : g | forall f in {v, ...} : g
//	    |  g and g | g or g | g imply g | not g
//
// "▷"/"►" are accepted as aliases of "|>", and "⇒" of "=>".
package rcl

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind int

const (
	tokEOF  tokenKind = iota
	tokWord           // identifiers, keywords, field names, bare values
	tokNumber
	tokString // quoted regex/string
	tokLParen
	tokRParen
	tokLBrace
	tokRBrace
	tokComma
	tokColon
	tokEq  // =
	tokNeq // !=
	tokLt  // <
	tokLe  // <=
	tokGt  // >
	tokGe  // >=
	tokPlus
	tokMinus
	tokStar
	tokSlash
	tokFilter // ||
	tokPipe   // |>
	tokArrow  // =>
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.text)
}

// SyntaxError reports a lexing or parsing failure with its input offset.
type SyntaxError struct {
	Pos    int
	Reason string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("rcl: syntax error at offset %d: %s", e.Pos, e.Reason)
}

// lex tokenizes a specification. Values like "10.0.0.0/24", "100:1",
// "2.0.0.1", and "2001:db8::/32" are single word tokens: '/' joins a word
// when the word already contains '.' or ':' (so arithmetic division needs
// surrounding whitespace, which the grammar requires anyway).
func lex(src string) ([]token, error) {
	var toks []token
	i := 0
	n := len(src)
	for i < n {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
			continue
		case c == '(':
			toks = append(toks, token{tokLParen, "(", i})
			i++
		case c == ')':
			toks = append(toks, token{tokRParen, ")", i})
			i++
		case c == '{':
			toks = append(toks, token{tokLBrace, "{", i})
			i++
		case c == '}':
			toks = append(toks, token{tokRBrace, "}", i})
			i++
		case c == ',':
			toks = append(toks, token{tokComma, ",", i})
			i++
		case c == ':':
			toks = append(toks, token{tokColon, ":", i})
			i++
		case c == '+':
			toks = append(toks, token{tokPlus, "+", i})
			i++
		case c == '-':
			toks = append(toks, token{tokMinus, "-", i})
			i++
		case c == '*':
			toks = append(toks, token{tokStar, "*", i})
			i++
		case c == '/':
			toks = append(toks, token{tokSlash, "/", i})
			i++
		case c == '=':
			if i+1 < n && src[i+1] == '>' {
				toks = append(toks, token{tokArrow, "=>", i})
				i += 2
			} else if i+1 < n && src[i+1] == '=' {
				toks = append(toks, token{tokEq, "=", i})
				i += 2
			} else {
				toks = append(toks, token{tokEq, "=", i})
				i++
			}
		case c == '!':
			if i+1 < n && src[i+1] == '=' {
				toks = append(toks, token{tokNeq, "!=", i})
				i += 2
			} else {
				return nil, &SyntaxError{Pos: i, Reason: "unexpected '!'"}
			}
		case c == '<':
			if i+1 < n && src[i+1] == '=' {
				toks = append(toks, token{tokLe, "<=", i})
				i += 2
			} else {
				toks = append(toks, token{tokLt, "<", i})
				i++
			}
		case c == '>':
			if i+1 < n && src[i+1] == '=' {
				toks = append(toks, token{tokGe, ">=", i})
				i += 2
			} else {
				toks = append(toks, token{tokGt, ">", i})
				i++
			}
		case c == '|':
			if i+1 < n && src[i+1] == '|' {
				toks = append(toks, token{tokFilter, "||", i})
				i += 2
			} else if i+1 < n && src[i+1] == '>' {
				toks = append(toks, token{tokPipe, "|>", i})
				i += 2
			} else {
				return nil, &SyntaxError{Pos: i, Reason: "unexpected '|'"}
			}
		case c == '"':
			j := i + 1
			for j < n && src[j] != '"' {
				j++
			}
			if j >= n {
				return nil, &SyntaxError{Pos: i, Reason: "unterminated string"}
			}
			toks = append(toks, token{tokString, src[i+1 : j], i})
			i = j + 1
		default:
			// Unicode aliases.
			if strings.HasPrefix(src[i:], "⇒") {
				toks = append(toks, token{tokArrow, "=>", i})
				i += len("⇒")
				continue
			}
			if strings.HasPrefix(src[i:], "▷") || strings.HasPrefix(src[i:], "►") {
				toks = append(toks, token{tokPipe, "|>", i})
				i += len("▷")
				continue
			}
			if strings.HasPrefix(src[i:], "≠") {
				toks = append(toks, token{tokNeq, "!=", i})
				i += len("≠")
				continue
			}
			if !isWordByte(c) {
				return nil, &SyntaxError{Pos: i, Reason: fmt.Sprintf("unexpected character %q", rune(c))}
			}
			j := i
			for j < n {
				cj := src[j]
				// ':' joins a word only when another word character follows
				// (community "100:1", IPv6 "2001:db8::1"); a trailing ':'
				// is the forall separator.
				if cj == ':' {
					if j+1 < n && (isWordByte(src[j+1]) || src[j+1] == ':' || src[j+1] == '/') {
						j++
						continue
					}
					break
				}
				if isWordByte(cj) {
					j++
					continue
				}
				// '/' continues a word only when it already looks like an
				// address (contains '.' or ':') and a digit follows.
				if cj == '/' && j+1 < n && isDigit(src[j+1]) &&
					(strings.ContainsAny(src[i:j], ".:")) {
					j++
					continue
				}
				break
			}
			word := src[i:j]
			if isNumber(word) {
				toks = append(toks, token{tokNumber, word, i})
			} else {
				toks = append(toks, token{tokWord, word, i})
			}
			i = j
		}
	}
	toks = append(toks, token{tokEOF, "", n})
	return toks, nil
}

func isWordByte(c byte) bool {
	return c == '_' || c == '.' || c == '-' ||
		(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isNumber(s string) bool {
	if s == "" {
		return false
	}
	for _, r := range s {
		if !unicode.IsDigit(r) {
			return false
		}
	}
	return true
}
