package rpcx

import (
	"errors"
	"net"
	"net/rpc"
	"strings"
	"sync"
	"testing"
	"time"
)

// Echo is the test RPC service.
type Echo struct{}

// Echo returns its input.
func (Echo) Echo(in *string, out *string) error { *out = *in; return nil }

// Fail always returns an application error.
func (Echo) Fail(in *string, out *string) error { return errors.New("app error: " + *in) }

// serveEcho serves the Echo service on l, reporting each accepted connection
// on the returned channel so tests can kill them.
func serveEcho(t *testing.T, l net.Listener) <-chan net.Conn {
	t.Helper()
	srv := rpc.NewServer()
	if err := srv.RegisterName("Echo", Echo{}); err != nil {
		t.Fatal(err)
	}
	conns := make(chan net.Conn, 16)
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			conns <- conn
			go srv.ServeConn(conn)
		}
	}()
	return conns
}

func TestCallAndServerErrorKeepConnection(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	serveEcho(t, l)

	c, err := Dial(l.Addr().String(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	in, out := "hello", ""
	if err := c.Call("Echo.Echo", &in, &out); err != nil || out != "hello" {
		t.Fatalf("Echo = %q, %v", out, err)
	}

	// An application error must come back as rpc.ServerError and must not
	// poison the connection.
	if err := c.Call("Echo.Fail", &in, &out); err == nil {
		t.Fatal("Fail returned nil")
	} else if _, ok := err.(rpc.ServerError); !ok {
		t.Fatalf("Fail error type %T, want rpc.ServerError", err)
	} else if !strings.Contains(err.Error(), "app error: hello") {
		t.Fatalf("Fail error = %v", err)
	}
	if err := c.Call("Echo.Echo", &in, &out); err != nil {
		t.Fatalf("Echo after server error: %v", err)
	}
}

func TestDialFailsFastOnRefusedConnection(t *testing.T) {
	// Grab a port and close it so nothing listens there.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()

	start := time.Now()
	if _, err := Dial(addr, Options{DialTimeout: time.Second}); err == nil {
		t.Fatal("Dial to closed port succeeded")
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("Dial took %v", d)
	}
}

func TestHungServerCallTimesOut(t *testing.T) {
	// A server that accepts and then goes silent: without I/O deadlines the
	// gob handshake would block forever.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	var held []net.Conn
	var mu sync.Mutex
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			mu.Lock()
			held = append(held, conn) // hold it open, never respond
			mu.Unlock()
		}
	}()
	defer func() {
		mu.Lock()
		for _, c := range held {
			c.Close()
		}
		mu.Unlock()
	}()

	c, err := Dial(l.Addr().String(), Options{CallTimeout: 200 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	in, out := "x", ""
	start := time.Now()
	err = c.Call("Echo.Echo", &in, &out)
	if err == nil {
		t.Fatal("call to hung server succeeded")
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("call blocked for %v despite 200ms call timeout", d)
	}
	var nerr net.Error
	if !errors.As(err, &nerr) || !nerr.Timeout() {
		t.Fatalf("err = %v, want i/o timeout", err)
	}
}

func TestReconnectsAfterServerDropsConnection(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	conns := serveEcho(t, l)

	c, err := Dial(l.Addr().String(), Options{CallTimeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	in, out := "one", ""
	if err := c.Call("Echo.Echo", &in, &out); err != nil {
		t.Fatal(err)
	}
	// Kill the server side of the first connection.
	(<-conns).Close()

	// The client must recover: at most a couple of calls fail while the dead
	// connection is detected, then redial succeeds against the same server.
	deadline := time.Now().Add(10 * time.Second)
	for {
		in, out = "two", ""
		if err := c.Call("Echo.Echo", &in, &out); err == nil {
			if out != "two" {
				t.Fatalf("out = %q", out)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("client never recovered after server dropped the connection")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestCloseRejectsFurtherCalls(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	serveEcho(t, l)

	c, err := Dial(l.Addr().String(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	in, out := "x", ""
	if err := c.Call("Echo.Echo", &in, &out); !errors.Is(err, rpc.ErrShutdown) {
		t.Fatalf("call after Close = %v, want ErrShutdown", err)
	}
}
