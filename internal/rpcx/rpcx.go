// Package rpcx hardens the net/rpc clients the distributed-simulation
// substrates (mq, objstore, taskdb) are built on. The stock rpc.Client has
// two availability holes the paper's always-on deployment cannot live with:
// a hung or partitioned server blocks a call forever (no I/O deadlines), and
// any transport error bricks the client permanently (rpc.ErrShutdown on every
// later call). Client fixes both: dials carry a timeout, every read/write
// arms a rolling deadline, and a connection that dies is dropped and redialed
// on the next call, so one flake costs one errored call, not the process.
package rpcx

import (
	"fmt"
	"net"
	"net/rpc"
	"sync"
	"time"

	"hoyan/internal/telemetry"
)

// Options tune a Client's timeouts.
type Options struct {
	// DialTimeout bounds connection establishment (0 = 5s).
	DialTimeout time.Duration
	// CallTimeout is a rolling per-read/per-write I/O deadline: a call fails
	// once the server goes silent for this long (0 = 30s). It must exceed the
	// longest legitimate server-side blocking interval (e.g. an mq long-poll
	// chunk), since a blocking server sends no bytes while it waits.
	CallTimeout time.Duration
	// Metrics, when non-nil, receives per-call latency, error, and redial
	// counts (see NewMetrics). Nil disables instrumentation.
	Metrics *Metrics
}

// Metrics are a client's RPC-level telemetry instruments. Construct with
// NewMetrics so every substrate client of a process lands in one registry,
// distinguished by the component label.
type Metrics struct {
	// Calls counts completed calls (successful or not); Errors the subset
	// that returned an error; Redials every re-established connection after
	// the initial dial.
	Calls   *telemetry.Counter
	Errors  *telemetry.Counter
	Redials *telemetry.Counter
	// Latency observes per-call wall time in seconds.
	Latency *telemetry.Histogram
}

// NewMetrics registers the standard RPC client metrics for one component
// (e.g. "mq", "objstore", "taskdb") in reg. A nil reg yields detached
// instruments, so the result is always safe to use.
func NewMetrics(reg *telemetry.Registry, component string) *Metrics {
	l := telemetry.L("component", component)
	return &Metrics{
		Calls:   reg.Counter("hoyan_rpc_calls_total", "completed substrate RPC calls", l),
		Errors:  reg.Counter("hoyan_rpc_errors_total", "substrate RPC calls that returned an error", l),
		Redials: reg.Counter("hoyan_rpc_redials_total", "substrate RPC connections re-established after a failure", l),
		Latency: reg.Histogram("hoyan_rpc_latency_seconds", "substrate RPC call latency", telemetry.DurationBuckets, l),
	}
}

func (o Options) withDefaults() Options {
	if o.DialTimeout <= 0 {
		o.DialTimeout = 5 * time.Second
	}
	if o.CallTimeout <= 0 {
		o.CallTimeout = 30 * time.Second
	}
	return o
}

// Client is a reconnecting net/rpc client: transport failures mark the
// connection dead, and the next call transparently redials. Server-side
// errors (rpc.ServerError) do not affect the connection. Safe for concurrent
// use.
type Client struct {
	addr string
	opts Options

	mu     sync.Mutex
	rc     *rpc.Client
	dialed bool
	closed bool
}

// Dial connects to addr eagerly (so configuration errors surface at startup)
// and returns a reconnecting client.
func Dial(addr string, opts Options) (*Client, error) {
	c := &Client{addr: addr, opts: opts.withDefaults()}
	if _, err := c.conn(); err != nil {
		return nil, err
	}
	return c, nil
}

// conn returns the live connection, dialing if needed.
func (c *Client) conn() (*rpc.Client, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, rpc.ErrShutdown
	}
	if c.rc != nil {
		return c.rc, nil
	}
	nc, err := net.DialTimeout("tcp", c.addr, c.opts.DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("rpcx: dial %s: %w", c.addr, err)
	}
	if c.dialed && c.opts.Metrics != nil {
		c.opts.Metrics.Redials.Inc()
	}
	c.dialed = true
	c.rc = rpc.NewClient(&deadlineConn{Conn: nc, timeout: c.opts.CallTimeout})
	return c.rc, nil
}

// drop discards rc if it is still the current connection, so the next call
// redials.
func (c *Client) drop(rc *rpc.Client) {
	c.mu.Lock()
	if c.rc == rc {
		c.rc = nil
	}
	c.mu.Unlock()
	rc.Close()
}

// Call invokes a remote method. A connection already known dead
// (rpc.ErrShutdown before the request is sent) is redialed and the call
// reissued once — that path cannot double-execute the request. Errors that
// surface mid-call (deadline, EOF, resets) drop the connection and are
// returned to the caller: whether the server executed the request is unknown,
// so reissuing is the caller's (or a retry policy's) decision.
func (c *Client) Call(method string, args, reply any) (err error) {
	if m := c.opts.Metrics; m != nil {
		start := time.Now()
		defer func() {
			m.Calls.Inc()
			m.Latency.Observe(time.Since(start).Seconds())
			if err != nil {
				m.Errors.Inc()
			}
		}()
	}
	for redialed := false; ; redialed = true {
		rc, err := c.conn()
		if err != nil {
			return err
		}
		err = rc.Call(method, args, reply)
		if err == nil {
			return nil
		}
		if _, server := err.(rpc.ServerError); server {
			return err // application error: connection is fine
		}
		c.drop(rc)
		if err == rpc.ErrShutdown && !redialed {
			continue // request never left this process: safe to reissue
		}
		return fmt.Errorf("rpcx: call %s on %s: %w", method, c.addr, err)
	}
}

// Close shuts the client down; later calls fail with rpc.ErrShutdown.
func (c *Client) Close() error {
	c.mu.Lock()
	rc := c.rc
	c.rc, c.closed = nil, true
	c.mu.Unlock()
	if rc != nil {
		return rc.Close()
	}
	return nil
}

// deadlineConn arms a fresh read/write deadline on every operation, turning
// the absolute deadlines of net.Conn into a rolling inactivity timeout.
type deadlineConn struct {
	net.Conn
	timeout time.Duration
}

func (c *deadlineConn) Read(p []byte) (int, error) {
	if err := c.Conn.SetReadDeadline(time.Now().Add(c.timeout)); err != nil {
		return 0, err
	}
	return c.Conn.Read(p)
}

func (c *deadlineConn) Write(p []byte) (int, error) {
	if err := c.Conn.SetWriteDeadline(time.Now().Add(c.timeout)); err != nil {
		return 0, err
	}
	return c.Conn.Write(p)
}
