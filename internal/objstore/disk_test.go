package objstore

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"slices"
	"testing"

	"hoyan/internal/durable"
)

func openDisk(t *testing.T, dir string, opts durable.Options) *Disk {
	t.Helper()
	d, err := OpenDisk(dir, opts)
	if err != nil {
		t.Fatalf("OpenDisk(%s): %v", dir, err)
	}
	return d
}

func TestDiskRoundTrip(t *testing.T) {
	dir := t.TempDir()
	d := openDisk(t, dir, durable.Options{Fsync: durable.SyncNever})
	if err := d.Put("tasks/t1/route/0/input", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := d.Put("tasks/t1/route/1/input", []byte("world")); err != nil {
		t.Fatal(err)
	}
	if err := d.Put("tasks/t1/route/0/input", []byte("hello-v2")); err != nil {
		t.Fatal(err)
	}
	got, err := d.Get("tasks/t1/route/0/input")
	if err != nil || string(got) != "hello-v2" {
		t.Fatalf("Get = %q, %v", got, err)
	}
	if _, err := d.Get("missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get(missing) = %v, want ErrNotFound", err)
	}
	keys, err := d.List("tasks/t1/")
	if err != nil || !slices.Equal(keys, []string{"tasks/t1/route/0/input", "tasks/t1/route/1/input"}) {
		t.Fatalf("List = %v, %v", keys, err)
	}
	if err := d.Delete("tasks/t1/route/1/input"); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: the acknowledged state survives.
	d2 := openDisk(t, dir, durable.Options{})
	defer d2.Close()
	got, err = d2.Get("tasks/t1/route/0/input")
	if err != nil || string(got) != "hello-v2" {
		t.Fatalf("Get after reopen = %q, %v", got, err)
	}
	if _, err := d2.Get("tasks/t1/route/1/input"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("deleted key resurrected: %v", err)
	}
	st := d2.Stats()
	if st.Gets != 1 {
		t.Fatalf("stats after reopen = %+v", st)
	}
}

func TestDiskCrashReopen(t *testing.T) {
	dir := t.TempDir()
	d := openDisk(t, dir, durable.Options{Fsync: durable.SyncNever})
	big := bytes.Repeat([]byte("x"), 1<<16)
	if err := d.Put("a", big); err != nil {
		t.Fatal(err)
	}
	if err := d.Put("b", []byte("small")); err != nil {
		t.Fatal(err)
	}
	d.CrashClose()
	if err := d.Put("c", nil); !errors.Is(err, durable.ErrCrashed) {
		t.Fatalf("Put after crash = %v, want ErrCrashed", err)
	}
	if _, err := d.Get("a"); !errors.Is(err, durable.ErrCrashed) {
		t.Fatalf("Get after crash = %v, want ErrCrashed", err)
	}
	if _, err := d.List(""); !errors.Is(err, durable.ErrCrashed) {
		t.Fatalf("List after crash = %v, want ErrCrashed", err)
	}

	d2 := openDisk(t, dir, durable.Options{})
	defer d2.Close()
	got, err := d2.Get("a")
	if err != nil || !bytes.Equal(got, big) {
		t.Fatalf("Get(a) after crash-reopen: %d bytes, %v", len(got), err)
	}
	if got, err := d2.Get("b"); err != nil || string(got) != "small" {
		t.Fatalf("Get(b) after crash-reopen = %q, %v", got, err)
	}
}

// TestDiskTornManifest damages the manifest tail: the store reopens cleanly
// with the torn record's key dropped, and a stray object file for the
// unacknowledged key is cleaned up.
func TestDiskTornManifest(t *testing.T) {
	dir := t.TempDir()
	d := openDisk(t, dir, durable.Options{Fsync: durable.SyncNever})
	if err := d.Put("kept", []byte("kept-data")); err != nil {
		t.Fatal(err)
	}
	if err := d.Put("torn", []byte("torn-data")); err != nil {
		t.Fatal(err)
	}
	d.CrashClose()

	// Tear the tail of the manifest mid-record: the "torn" put is lost.
	manifest := filepath.Join(dir, "manifest.wal")
	data, err := os.ReadFile(manifest)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(manifest, data[:len(data)-5], 0o644); err != nil {
		t.Fatal(err)
	}

	d2 := openDisk(t, dir, durable.Options{})
	defer d2.Close()
	if got, err := d2.Get("kept"); err != nil || string(got) != "kept-data" {
		t.Fatalf("Get(kept) = %q, %v", got, err)
	}
	if _, err := d2.Get("torn"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get(torn) = %v, want ErrNotFound (tail dropped)", err)
	}
	// The orphaned object file is gone.
	if _, err := os.Stat(filepath.Join(dir, "objects", "torn")); !os.IsNotExist(err) {
		t.Fatalf("orphan object file survived: %v", err)
	}
}

// TestDiskMissingObjectFile drops a manifest-acknowledged file (a machine
// crash under fsync=never): the key is dropped at open instead of serving a
// phantom object.
func TestDiskMissingObjectFile(t *testing.T) {
	dir := t.TempDir()
	d := openDisk(t, dir, durable.Options{Fsync: durable.SyncNever})
	if err := d.Put("ghost", []byte("data")); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, "objects", "ghost")); err != nil {
		t.Fatal(err)
	}
	d2 := openDisk(t, dir, durable.Options{})
	defer d2.Close()
	if _, err := d2.Get("ghost"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get(ghost) = %v, want ErrNotFound", err)
	}
}

// TestDiskCompaction drives the manifest past its compaction threshold and
// checks the log shrinks while the state survives a reopen.
func TestDiskCompaction(t *testing.T) {
	dir := t.TempDir()
	d := openDisk(t, dir, durable.Options{Fsync: durable.SyncNever, CompactEvery: 8})
	for i := 0; i < 40; i++ {
		key := "obj"
		if err := d.Put(key, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	// 40 rewrites of one key with CompactEvery=8: the manifest holds far
	// fewer than 40 records.
	info, err := os.Stat(filepath.Join(dir, "manifest.wal"))
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() > 1024 {
		t.Fatalf("manifest not compacted: %d bytes", info.Size())
	}
	d2 := openDisk(t, dir, durable.Options{})
	defer d2.Close()
	got, err := d2.Get("obj")
	if err != nil || !bytes.Equal(got, []byte{39}) {
		t.Fatalf("Get after compaction = %v, %v", got, err)
	}
}

// TestDiskKeyEscaping checks slashed keys map to flat files and survive.
func TestDiskKeyEscaping(t *testing.T) {
	dir := t.TempDir()
	d := openDisk(t, dir, durable.Options{})
	weird := []string{"a/b/c", "a%2Fb", "trailing/", "../escape", "plain"}
	for i, k := range weird {
		if err := d.Put(k, []byte{byte(i)}); err != nil {
			t.Fatalf("Put(%q): %v", k, err)
		}
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	d2 := openDisk(t, dir, durable.Options{})
	defer d2.Close()
	for i, k := range weird {
		got, err := d2.Get(k)
		if err != nil || !bytes.Equal(got, []byte{byte(i)}) {
			t.Fatalf("Get(%q) = %v, %v", k, got, err)
		}
	}
	// Nothing escaped the objects directory.
	if _, err := os.Stat(filepath.Join(dir, "..", "escape")); !os.IsNotExist(err) {
		t.Fatalf("key escaped the objects dir: %v", err)
	}
}
