// Package objstore provides the cloud-object-storage substrate of the
// distributed simulation framework: subtask inputs and result files live
// here as opaque blobs, exactly like Hoyan uses Alibaba Cloud OSS.
//
// An in-memory store backs single-process clusters and tests; the TCP
// server/client pair (net/rpc over gob) backs multi-process deployments.
package objstore

import (
	"errors"
	"fmt"
	"net"
	"net/rpc"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"hoyan/internal/rpcx"
)

// ErrNotFound is returned by Get for missing keys.
var ErrNotFound = errors.New("objstore: not found")

// Store is the object storage interface.
type Store interface {
	// Put stores data under key, overwriting any existing object.
	Put(key string, data []byte) error
	// Get retrieves the object at key (ErrNotFound if absent).
	Get(key string) ([]byte, error)
	// List returns the keys with the given prefix, sorted.
	List(prefix string) ([]string, error)
	// Delete removes the object at key (no error if absent).
	Delete(key string) error
}

// Stats is a point-in-time copy of a store's transfer counters, tracked for
// the Figure 5(d) I/O evaluation.
type Stats struct {
	Puts     int64 `json:"puts"`
	Gets     int64 `json:"gets"`
	BytesIn  int64 `json:"bytes_in"`
	BytesOut int64 `json:"bytes_out"`
}

// StatsProvider is implemented by stores that track transfer counters.
type StatsProvider interface {
	Stats() Stats
}

// Memory is an in-memory Store safe for concurrent use. Transfer counters
// are atomics so Get stays a pure read-lock operation.
type Memory struct {
	mu   sync.RWMutex
	objs map[string][]byte

	puts, gets        atomic.Int64
	bytesIn, bytesOut atomic.Int64
}

// NewMemory creates an empty in-memory store.
func NewMemory() *Memory {
	return &Memory{objs: make(map[string][]byte)}
}

// Put implements Store.
func (s *Memory) Put(key string, data []byte) error {
	cp := append([]byte(nil), data...)
	s.mu.Lock()
	s.objs[key] = cp
	s.mu.Unlock()
	s.puts.Add(1)
	s.bytesIn.Add(int64(len(data)))
	return nil
}

// Get implements Store.
func (s *Memory) Get(key string) ([]byte, error) {
	s.mu.RLock()
	data, ok := s.objs[key]
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	s.gets.Add(1)
	s.bytesOut.Add(int64(len(data)))
	return append([]byte(nil), data...), nil
}

// List implements Store.
func (s *Memory) List(prefix string) ([]string, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []string
	for k := range s.objs {
		if strings.HasPrefix(k, prefix) {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out, nil
}

// Delete implements Store.
func (s *Memory) Delete(key string) error {
	s.mu.Lock()
	delete(s.objs, key)
	s.mu.Unlock()
	return nil
}

// Stats implements StatsProvider.
func (s *Memory) Stats() Stats {
	return Stats{
		Puts:     s.puts.Load(),
		Gets:     s.gets.Load(),
		BytesIn:  s.bytesIn.Load(),
		BytesOut: s.bytesOut.Load(),
	}
}

// Transferred returns the cumulative bytes written to and read from the
// store.
func (s *Memory) Transferred() (in, out int64) {
	st := s.Stats()
	return st.BytesIn, st.BytesOut
}

// Service exposes a Store over net/rpc. It keeps its own RPC-level transfer
// counters so Stats works even when the wrapped store does not track any.
type Service struct {
	s Store

	puts, gets        atomic.Int64
	bytesIn, bytesOut atomic.Int64
}

// PutArgs are the arguments of Store.Put.
type PutArgs struct {
	Key  string
	Data []byte
}

// Put is the RPC form of Store.Put.
func (sv *Service) Put(args *PutArgs, _ *struct{}) error {
	if err := sv.s.Put(args.Key, args.Data); err != nil {
		return err
	}
	sv.puts.Add(1)
	sv.bytesIn.Add(int64(len(args.Data)))
	return nil
}

// GetReply is the result of Store.Get.
type GetReply struct {
	Data  []byte
	Found bool
}

// Get is the RPC form of Store.Get; missing keys are reported in-band so the
// sentinel error survives the RPC boundary.
func (sv *Service) Get(key *string, reply *GetReply) error {
	data, err := sv.s.Get(*key)
	if errors.Is(err, ErrNotFound) {
		reply.Found = false
		return nil
	}
	if err != nil {
		return err
	}
	sv.gets.Add(1)
	sv.bytesOut.Add(int64(len(data)))
	reply.Data, reply.Found = data, true
	return nil
}

// Stats is the RPC form of StatsProvider.Stats: the wrapped store's counters
// when it tracks them (they include in-process traffic too), otherwise the
// RPC server's own.
func (sv *Service) Stats(_ *struct{}, reply *Stats) error {
	if sp, ok := sv.s.(StatsProvider); ok {
		*reply = sp.Stats()
		return nil
	}
	*reply = Stats{
		Puts:     sv.puts.Load(),
		Gets:     sv.gets.Load(),
		BytesIn:  sv.bytesIn.Load(),
		BytesOut: sv.bytesOut.Load(),
	}
	return nil
}

// List is the RPC form of Store.List.
func (sv *Service) List(prefix *string, reply *[]string) error {
	keys, err := sv.s.List(*prefix)
	*reply = keys
	return err
}

// Delete is the RPC form of Store.Delete.
func (sv *Service) Delete(key *string, _ *struct{}) error { return sv.s.Delete(*key) }

// Serve registers the store on a fresh rpc server and serves connections on
// l until the listener is closed.
func Serve(l net.Listener, s Store) {
	srv := rpc.NewServer()
	srv.RegisterName("Store", &Service{s: s})
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go srv.ServeConn(conn)
		}
	}()
}

// Client is a Store talking to a remote Serve instance over a reconnecting
// connection with dial and per-call I/O timeouts.
type Client struct {
	c *rpcx.Client
}

// Dial connects to an object store server with default timeouts.
func Dial(addr string) (*Client, error) { return DialOptions(addr, rpcx.Options{}) }

// DialOptions connects with explicit timeouts.
func DialOptions(addr string, opts rpcx.Options) (*Client, error) {
	c, err := rpcx.Dial(addr, opts)
	if err != nil {
		return nil, fmt.Errorf("objstore: dial %s: %w", addr, err)
	}
	return &Client{c: c}, nil
}

// Put implements Store.
func (c *Client) Put(key string, data []byte) error {
	return c.c.Call("Store.Put", &PutArgs{Key: key, Data: data}, &struct{}{})
}

// Get implements Store.
func (c *Client) Get(key string) ([]byte, error) {
	var reply GetReply
	if err := c.c.Call("Store.Get", &key, &reply); err != nil {
		return nil, err
	}
	if !reply.Found {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	return reply.Data, nil
}

// List implements Store.
func (c *Client) List(prefix string) ([]string, error) {
	var keys []string
	err := c.c.Call("Store.List", &prefix, &keys)
	return keys, err
}

// Delete implements Store.
func (c *Client) Delete(key string) error {
	return c.c.Call("Store.Delete", &key, &struct{}{})
}

// Stats implements StatsProvider against the remote server (the error is
// swallowed: a stats probe failing should never fail a caller that only
// wants numbers — zeros are returned instead).
func (c *Client) Stats() Stats {
	var st Stats
	if err := c.c.Call("Store.Stats", &struct{}{}, &st); err != nil {
		return Stats{}
	}
	return st
}

// Close closes the client connection.
func (c *Client) Close() error { return c.c.Close() }
