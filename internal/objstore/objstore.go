// Package objstore provides the cloud-object-storage substrate of the
// distributed simulation framework: subtask inputs and result files live
// here as opaque blobs, exactly like Hoyan uses Alibaba Cloud OSS.
//
// An in-memory store backs single-process clusters and tests; the TCP
// server/client pair (net/rpc over gob) backs multi-process deployments.
package objstore

import (
	"errors"
	"fmt"
	"net"
	"net/rpc"
	"slices"
	"strings"
	"sync"

	"hoyan/internal/rpcx"
	"hoyan/internal/telemetry"
)

// ErrNotFound is returned by Get for missing keys.
var ErrNotFound = errors.New("objstore: not found")

// Store is the object storage interface.
type Store interface {
	// Put stores data under key, overwriting any existing object.
	Put(key string, data []byte) error
	// Get retrieves the object at key (ErrNotFound if absent).
	Get(key string) ([]byte, error)
	// List returns the keys with the given prefix, sorted.
	List(prefix string) ([]string, error)
	// Delete removes the object at key (no error if absent).
	Delete(key string) error
}

// Stats is a point-in-time copy of a store's transfer counters, tracked for
// the Figure 5(d) I/O evaluation.
type Stats struct {
	Puts     int64 `json:"puts"`
	Gets     int64 `json:"gets"`
	BytesIn  int64 `json:"bytes_in"`
	BytesOut int64 `json:"bytes_out"`
}

// StatsProvider is implemented by stores that track transfer counters.
type StatsProvider interface {
	Stats() Stats
}

// Memory is an in-memory Store safe for concurrent use. Transfer counters
// are telemetry instruments — atomic, so Get stays a pure read-lock
// operation — detached until Instrument binds them to a registry; Stats()
// stays as the compatibility view.
type Memory struct {
	mu   sync.RWMutex
	objs map[string][]byte

	counters storeCounters
}

// storeCounters is the one counter shape both the in-memory store and the
// RPC service use (the Figure 5(d) transfer accounting).
type storeCounters struct {
	puts, gets        *telemetry.Counter
	bytesIn, bytesOut *telemetry.Counter
}

func newStoreCounters() storeCounters {
	return storeCounters{
		puts: &telemetry.Counter{}, gets: &telemetry.Counter{},
		bytesIn: &telemetry.Counter{}, bytesOut: &telemetry.Counter{},
	}
}

// bind re-registers the counters in reg under the given name prefix,
// carrying over accumulated counts.
func (c *storeCounters) bind(reg *telemetry.Registry, prefix string) {
	rebind := func(dst **telemetry.Counter, name, help string) {
		n := reg.Counter(prefix+name, help)
		n.Add((*dst).Value())
		*dst = n
	}
	rebind(&c.puts, "puts_total", "objects written to the store")
	rebind(&c.gets, "gets_total", "objects read from the store")
	rebind(&c.bytesIn, "bytes_in_total", "bytes written to the store")
	rebind(&c.bytesOut, "bytes_out_total", "bytes read from the store")
}

func (c *storeCounters) stats() Stats {
	return Stats{
		Puts: c.puts.Value(), Gets: c.gets.Value(),
		BytesIn: c.bytesIn.Value(), BytesOut: c.bytesOut.Value(),
	}
}

// NewMemory creates an empty in-memory store.
func NewMemory() *Memory {
	return &Memory{objs: make(map[string][]byte), counters: newStoreCounters()}
}

// Instrument re-binds the store's transfer counters to registered metrics in
// reg, carrying over counts accumulated so far. Call before or during use;
// counter swaps are guarded by the store's write lock.
func (s *Memory) Instrument(reg *telemetry.Registry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.counters.bind(reg, "hoyan_objstore_")
}

// Put implements Store.
func (s *Memory) Put(key string, data []byte) error {
	cp := append([]byte(nil), data...)
	s.mu.Lock()
	s.objs[key] = cp
	c := s.counters
	s.mu.Unlock()
	c.puts.Inc()
	c.bytesIn.Add(int64(len(data)))
	return nil
}

// Get implements Store.
func (s *Memory) Get(key string) ([]byte, error) {
	s.mu.RLock()
	data, ok := s.objs[key]
	c := s.counters
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	c.gets.Inc()
	c.bytesOut.Add(int64(len(data)))
	return append([]byte(nil), data...), nil
}

// List implements Store.
func (s *Memory) List(prefix string) ([]string, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []string
	for k := range s.objs {
		if strings.HasPrefix(k, prefix) {
			out = append(out, k)
		}
	}
	slices.Sort(out)
	return out, nil
}

// Delete implements Store.
func (s *Memory) Delete(key string) error {
	s.mu.Lock()
	delete(s.objs, key)
	s.mu.Unlock()
	return nil
}

// Stats implements StatsProvider.
func (s *Memory) Stats() Stats {
	s.mu.RLock()
	c := s.counters
	s.mu.RUnlock()
	return c.stats()
}

// Transferred returns the cumulative bytes written to and read from the
// store.
func (s *Memory) Transferred() (in, out int64) {
	st := s.Stats()
	return st.BytesIn, st.BytesOut
}

// Service exposes a Store over net/rpc. It keeps its own RPC-level transfer
// counters (the same telemetry-backed shape the in-memory store uses) so
// Stats works even when the wrapped store does not track any.
type Service struct {
	s Store

	counters storeCounters
}

// PutArgs are the arguments of Store.Put.
type PutArgs struct {
	Key  string
	Data []byte
}

// Put is the RPC form of Store.Put.
func (sv *Service) Put(args *PutArgs, _ *struct{}) error {
	if err := sv.s.Put(args.Key, args.Data); err != nil {
		return err
	}
	sv.counters.puts.Inc()
	sv.counters.bytesIn.Add(int64(len(args.Data)))
	return nil
}

// GetReply is the result of Store.Get.
type GetReply struct {
	Data  []byte
	Found bool
}

// Get is the RPC form of Store.Get; missing keys are reported in-band so the
// sentinel error survives the RPC boundary.
func (sv *Service) Get(key *string, reply *GetReply) error {
	data, err := sv.s.Get(*key)
	if errors.Is(err, ErrNotFound) {
		reply.Found = false
		return nil
	}
	if err != nil {
		return err
	}
	sv.counters.gets.Inc()
	sv.counters.bytesOut.Add(int64(len(data)))
	reply.Data, reply.Found = data, true
	return nil
}

// Stats is the RPC form of StatsProvider.Stats: the wrapped store's counters
// when it tracks them (they include in-process traffic too), otherwise the
// RPC server's own.
func (sv *Service) Stats(_ *struct{}, reply *Stats) error {
	if sp, ok := sv.s.(StatsProvider); ok {
		*reply = sp.Stats()
		return nil
	}
	*reply = sv.counters.stats()
	return nil
}

// List is the RPC form of Store.List.
func (sv *Service) List(prefix *string, reply *[]string) error {
	keys, err := sv.s.List(*prefix)
	*reply = keys
	return err
}

// Delete is the RPC form of Store.Delete.
func (sv *Service) Delete(key *string, _ *struct{}) error { return sv.s.Delete(*key) }

// Serve registers the store on a fresh rpc server and serves connections on
// l until the listener is closed.
func Serve(l net.Listener, s Store) { ServeRegistry(l, s, nil) }

// ServeRegistry is Serve with the service's RPC counters registered in reg
// (nil reg keeps them detached). If s is a *Memory, its own counters are
// bound to the same registry.
func ServeRegistry(l net.Listener, s Store, reg *telemetry.Registry) {
	sv := &Service{s: s, counters: newStoreCounters()}
	if reg != nil {
		sv.counters.bind(reg, "hoyan_objstore_rpc_")
		if m, ok := s.(*Memory); ok {
			m.Instrument(reg)
		}
	}
	srv := rpc.NewServer()
	srv.RegisterName("Store", sv)
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go srv.ServeConn(conn)
		}
	}()
}

// Client is a Store talking to a remote Serve instance over a reconnecting
// connection with dial and per-call I/O timeouts.
type Client struct {
	c *rpcx.Client
}

// Dial connects to an object store server with default timeouts.
func Dial(addr string) (*Client, error) { return DialOptions(addr, rpcx.Options{}) }

// DialOptions connects with explicit timeouts.
func DialOptions(addr string, opts rpcx.Options) (*Client, error) {
	c, err := rpcx.Dial(addr, opts)
	if err != nil {
		return nil, fmt.Errorf("objstore: dial %s: %w", addr, err)
	}
	return &Client{c: c}, nil
}

// Put implements Store.
func (c *Client) Put(key string, data []byte) error {
	return c.c.Call("Store.Put", &PutArgs{Key: key, Data: data}, &struct{}{})
}

// Get implements Store.
func (c *Client) Get(key string) ([]byte, error) {
	var reply GetReply
	if err := c.c.Call("Store.Get", &key, &reply); err != nil {
		return nil, err
	}
	if !reply.Found {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	return reply.Data, nil
}

// List implements Store.
func (c *Client) List(prefix string) ([]string, error) {
	var keys []string
	err := c.c.Call("Store.List", &prefix, &keys)
	return keys, err
}

// Delete implements Store.
func (c *Client) Delete(key string) error {
	return c.c.Call("Store.Delete", &key, &struct{}{})
}

// Stats implements StatsProvider against the remote server (the error is
// swallowed: a stats probe failing should never fail a caller that only
// wants numbers — zeros are returned instead).
func (c *Client) Stats() Stats {
	var st Stats
	if err := c.c.Call("Store.Stats", &struct{}{}, &st); err != nil {
		return Stats{}
	}
	return st
}

// Close closes the client connection.
func (c *Client) Close() error { return c.c.Close() }
