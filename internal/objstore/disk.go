package objstore

import (
	"encoding/json"
	"fmt"
	"net/url"
	"os"
	"path/filepath"
	"slices"
	"strings"
	"sync"

	"hoyan/internal/durable"
	"hoyan/internal/telemetry"
)

// Disk is a disk-backed Store: each object lives in its own file (written
// atomically via tmp+rename), and a WAL manifest records which keys exist so
// a restart recovers the exact acknowledged key set without scanning and
// trusting stray files. Safe for concurrent use.
//
// Layout under the data directory:
//
//	<dir>/manifest.wal           durable.WAL of {op, key} records
//	<dir>/objects/<escaped key>  one file per object (url.PathEscape'd key)
type Disk struct {
	mu      sync.Mutex
	dir     string
	keys    map[string]struct{}
	wal     *durable.WAL
	opts    durable.Options
	appends int // manifest records since the last compaction
	crashed bool

	counters storeCounters
}

// manifestRec is one manifest WAL record.
type manifestRec struct {
	Op  string `json:"op"` // "put" or "del"
	Key string `json:"key"`
}

// OpenDisk opens (creating if necessary) a disk-backed store rooted at dir,
// replaying the manifest and dropping any key whose object file did not make
// it to disk. Orphaned object and temp files (writes that crashed before
// their manifest record) are removed.
func OpenDisk(dir string, opts durable.Options) (*Disk, error) {
	objDir := filepath.Join(dir, "objects")
	if err := os.MkdirAll(objDir, 0o755); err != nil {
		return nil, fmt.Errorf("objstore: creating %s: %w", objDir, err)
	}
	d := &Disk{dir: dir, keys: make(map[string]struct{}), opts: opts, counters: newStoreCounters()}
	wal, _, err := durable.Open(filepath.Join(dir, "manifest.wal"), opts, func(p []byte) error {
		var rec manifestRec
		if err := json.Unmarshal(p, &rec); err != nil {
			return fmt.Errorf("bad manifest record: %w", err)
		}
		switch rec.Op {
		case "put":
			d.keys[rec.Key] = struct{}{}
		case "del":
			delete(d.keys, rec.Key)
		default:
			return fmt.Errorf("bad manifest op %q", rec.Op)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	d.wal = wal

	// Reconcile the manifest against the object files: a manifest entry
	// whose file vanished (machine crash before the data blocks landed) is
	// dropped — the fleet re-executes the subtask that produced it — and
	// files the manifest doesn't acknowledge are orphans from torn writes.
	ents, err := os.ReadDir(objDir)
	if err != nil {
		wal.Close()
		return nil, fmt.Errorf("objstore: scanning %s: %w", objDir, err)
	}
	onDisk := make(map[string]struct{}, len(ents))
	for _, e := range ents {
		key, uerr := url.PathUnescape(e.Name())
		if uerr != nil || strings.Contains(e.Name(), ".tmp-") {
			os.Remove(filepath.Join(objDir, e.Name()))
			continue
		}
		if _, ok := d.keys[key]; !ok {
			os.Remove(filepath.Join(objDir, e.Name()))
			continue
		}
		onDisk[key] = struct{}{}
	}
	for key := range d.keys {
		if _, ok := onDisk[key]; !ok {
			delete(d.keys, key)
		}
	}
	return d, nil
}

// objPath maps a key to its object file.
func (d *Disk) objPath(key string) string {
	return filepath.Join(d.dir, "objects", url.PathEscape(key))
}

// Instrument re-binds the store's transfer counters and durability metrics to
// registered metrics in reg, carrying over counts accumulated so far.
func (d *Disk) Instrument(reg *telemetry.Registry) {
	d.mu.Lock()
	d.counters.bind(reg, "hoyan_objstore_")
	d.mu.Unlock()
	d.wal.Instrument(reg, "objstore")
}

// Put implements Store: the object file is written to a temp file and
// renamed into place (readers never observe a partial object), then the key
// is acknowledged in the manifest.
func (d *Disk) Put(key string, data []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.crashed {
		return durable.ErrCrashed
	}
	path := d.objPath(key)
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp-*")
	if err != nil {
		d.wal.NoteExternalWrite(err)
		return fmt.Errorf("objstore: put %s: %w", key, err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		d.wal.NoteExternalWrite(err)
		return fmt.Errorf("objstore: put %s: %w", key, err)
	}
	if d.opts.Fsync == durable.SyncAlways {
		if err := tmp.Sync(); err != nil {
			tmp.Close()
			d.wal.NoteExternalWrite(err)
			return fmt.Errorf("objstore: put %s: %w", key, err)
		}
	}
	if err := tmp.Close(); err != nil {
		d.wal.NoteExternalWrite(err)
		return fmt.Errorf("objstore: put %s: %w", key, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		d.wal.NoteExternalWrite(err)
		return fmt.Errorf("objstore: put %s: %w", key, err)
	}
	if err := d.logLocked(manifestRec{Op: "put", Key: key}); err != nil {
		return err
	}
	d.keys[key] = struct{}{}
	d.counters.puts.Inc()
	d.counters.bytesIn.Add(int64(len(data)))
	return nil
}

// Get implements Store.
func (d *Disk) Get(key string) ([]byte, error) {
	d.mu.Lock()
	if d.crashed {
		d.mu.Unlock()
		return nil, durable.ErrCrashed
	}
	_, ok := d.keys[key]
	d.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	data, err := os.ReadFile(d.objPath(key))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("%w: %s", ErrNotFound, key)
		}
		return nil, fmt.Errorf("objstore: get %s: %w", key, err)
	}
	d.counters.gets.Inc()
	d.counters.bytesOut.Add(int64(len(data)))
	return data, nil
}

// List implements Store.
func (d *Disk) List(prefix string) ([]string, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.crashed {
		return nil, durable.ErrCrashed
	}
	var out []string
	for k := range d.keys {
		if strings.HasPrefix(k, prefix) {
			out = append(out, k)
		}
	}
	slices.Sort(out)
	return out, nil
}

// Delete implements Store: the manifest forgets the key first, so a crash
// mid-delete leaves an orphan file (cleaned at next open), never a manifest
// entry pointing at nothing.
func (d *Disk) Delete(key string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.crashed {
		return durable.ErrCrashed
	}
	if _, ok := d.keys[key]; !ok {
		return nil
	}
	if err := d.logLocked(manifestRec{Op: "del", Key: key}); err != nil {
		return err
	}
	delete(d.keys, key)
	os.Remove(d.objPath(key))
	return nil
}

// logLocked appends one manifest record, compacting the manifest down to the
// live key set every CompactEvery appends.
func (d *Disk) logLocked(rec manifestRec) error {
	p, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	if err := d.wal.Append(p); err != nil {
		return err
	}
	d.appends++
	every := d.opts.CompactEvery
	if every <= 0 {
		every = durable.DefaultCompactEvery
	}
	if d.appends >= every {
		keys := make([]string, 0, len(d.keys))
		for k := range d.keys {
			keys = append(keys, k)
		}
		slices.Sort(keys)
		snap := make([][]byte, 0, len(keys)+1)
		for _, k := range keys {
			kp, err := json.Marshal(manifestRec{Op: "put", Key: k})
			if err != nil {
				return err
			}
			snap = append(snap, kp)
		}
		// The record that triggered compaction is part of d.keys by the time
		// callers observe it, but the caller applies its mutation after
		// logLocked returns — include it explicitly.
		snap = append(snap, p)
		if err := d.wal.Compact(snap); err != nil {
			return err
		}
		d.appends = 0
	}
	return nil
}

// Stats implements StatsProvider.
func (d *Disk) Stats() Stats {
	d.mu.Lock()
	c := d.counters
	d.mu.Unlock()
	return c.stats()
}

// Healthy reports nil while durable writes are landing (see durable.WAL.Healthy).
func (d *Disk) Healthy() error { return d.wal.Healthy() }

// Close flushes the manifest and closes the store.
func (d *Disk) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.wal.Close()
}

// CrashClose simulates the store process dying: the manifest handle is
// dropped without flushing and every subsequent operation fails with
// durable.ErrCrashed (transient — callers retry until a reopened store takes
// over).
func (d *Disk) CrashClose() {
	d.mu.Lock()
	d.crashed = true
	d.mu.Unlock()
	d.wal.CrashClose()
}
