package objstore

import (
	"bytes"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"hoyan/internal/rpcx"
)

func TestMemoryCRUD(t *testing.T) {
	s := NewMemory()
	if err := s.Put("task/1/input", []byte("abc")); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get("task/1/input")
	if err != nil || !bytes.Equal(got, []byte("abc")) {
		t.Fatalf("Get = %q %v", got, err)
	}
	// Mutating the returned slice must not affect the stored object.
	got[0] = 'X'
	again, _ := s.Get("task/1/input")
	if !bytes.Equal(again, []byte("abc")) {
		t.Error("store aliased caller memory")
	}
	if _, err := s.Get("nope"); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing key err = %v", err)
	}
	s.Put("task/1/result", []byte("r"))
	s.Put("task/2/input", []byte("i"))
	keys, _ := s.List("task/1/")
	if len(keys) != 2 || keys[0] != "task/1/input" || keys[1] != "task/1/result" {
		t.Errorf("List = %v", keys)
	}
	if err := s.Delete("task/1/input"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("task/1/input"); !errors.Is(err, ErrNotFound) {
		t.Error("delete did not remove object")
	}
	in, out := s.Transferred()
	if in == 0 || out == 0 {
		t.Errorf("transfer counters: in=%d out=%d", in, out)
	}
}

func TestMemoryConcurrent(t *testing.T) {
	s := NewMemory()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			key := string(rune('a' + i))
			for j := 0; j < 100; j++ {
				s.Put(key, []byte{byte(j)})
				if _, err := s.Get(key); err != nil {
					t.Error(err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
}

func TestRPCStore(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	Serve(l, NewMemory())

	c, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	blob := bytes.Repeat([]byte("route-data"), 1000)
	if err := c.Put("k", blob); err != nil {
		t.Fatal(err)
	}
	got, err := c.Get("k")
	if err != nil || !bytes.Equal(got, blob) {
		t.Fatalf("Get: len=%d err=%v", len(got), err)
	}
	if _, err := c.Get("missing"); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing over RPC: %v", err)
	}
	keys, err := c.List("")
	if err != nil || len(keys) != 1 {
		t.Fatalf("List = %v %v", keys, err)
	}
	if err := c.Delete("k"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get("k"); !errors.Is(err, ErrNotFound) {
		t.Error("delete over RPC failed")
	}
}

func TestRPCHungServerTimesOut(t *testing.T) {
	// A server that accepts and never responds must not block Get forever:
	// the per-call I/O deadline fires.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	var held net.Conn
	accepted := make(chan struct{})
	go func() {
		held, _ = l.Accept()
		close(accepted)
	}()
	defer func() {
		<-accepted
		if held != nil {
			held.Close()
		}
	}()

	c, err := DialOptions(l.Addr().String(), rpcx.Options{CallTimeout: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	if _, err := c.Get("k"); err == nil {
		t.Fatal("Get from hung server succeeded")
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("Get blocked %v despite 100ms call timeout", d)
	}
}
