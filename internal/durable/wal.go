package durable

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"hoyan/internal/telemetry"
)

// walMagic is the 8-byte file header identifying a Hoyan WAL (version 1).
var walMagic = []byte("HOYWAL1\n")

// recHeaderSize is the per-record header: u32le payload length + u32le CRC32C
// of the payload.
const recHeaderSize = 8

// maxRecordSize is the sanity bound on a single record: a length field above
// it means the header bytes are garbage, not a huge record.
const maxRecordSize = 1 << 30

// castagnoli is the CRC32C table (hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Decode errors. Both mean "stop replaying here": ErrTorn is an incomplete
// tail (a write that persisted only a prefix), ErrCorrupt a checksum or
// length-field mismatch (bit rot, or garbage after a torn boundary).
var (
	ErrTorn    = errors.New("durable: torn record (incomplete tail)")
	ErrCorrupt = errors.New("durable: corrupt record (checksum mismatch)")
)

// EncodeRecord appends the framed form of payload to dst and returns the
// extended slice.
func EncodeRecord(dst, payload []byte) []byte {
	var hdr [recHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// DecodeRecord reads one framed record from the front of b. It returns the
// payload, the total bytes consumed, and an error: ErrTorn when b holds only
// a prefix of a record, ErrCorrupt when the frame is complete but fails its
// checksum or sanity checks. The returned payload aliases b.
func DecodeRecord(b []byte) (payload []byte, n int, err error) {
	if len(b) < recHeaderSize {
		return nil, 0, ErrTorn
	}
	length := binary.LittleEndian.Uint32(b[0:4])
	sum := binary.LittleEndian.Uint32(b[4:8])
	if length > maxRecordSize {
		return nil, 0, fmt.Errorf("%w: length field %d exceeds limit", ErrCorrupt, length)
	}
	end := recHeaderSize + int(length)
	if len(b) < end {
		return nil, 0, ErrTorn
	}
	payload = b[recHeaderSize:end]
	if crc32.Checksum(payload, castagnoli) != sum {
		return nil, 0, ErrCorrupt
	}
	return payload, end, nil
}

// Recovery describes what Open found on disk.
type Recovery struct {
	// Records is the number of intact records replayed.
	Records int
	// TruncatedBytes is how much torn/corrupt tail was dropped (0 on a clean
	// log). The file is physically truncated back to the last good record.
	TruncatedBytes int64
	// Reset reports that the file held no usable header (empty or partial)
	// and was re-initialized.
	Reset bool
}

// WAL is an append-only write-ahead log. All methods are safe for concurrent
// use. The zero value is not usable; call Open.
type WAL struct {
	mu       sync.Mutex
	f        *os.File
	path     string
	opts     Options
	size     int64
	lastSync time.Time
	crashed  bool
	closed   bool

	// metrics is swapped atomically by Instrument-style rebinding; reads on
	// the append path take the mutex anyway.
	metrics *Metrics

	// consecFails drives Healthy(): consecutive failed durable writes,
	// reset by the first success.
	consecFails atomic.Int32
}

// Open opens (creating if necessary) the WAL at path, replays every intact
// record through replay in append order, truncates any torn or corrupt tail,
// and returns the log positioned for appending. A replay error aborts Open.
//
// An empty or partially-written header (a crash during initial creation) is
// treated like an empty log and re-initialized; a full-size header that is
// not a Hoyan WAL header is an error — Open refuses to clobber a foreign
// file.
func Open(path string, opts Options, replay func(rec []byte) error) (*WAL, Recovery, error) {
	return openWithMetrics(path, opts, replay, NewMetrics(nil, ""))
}

func openWithMetrics(path string, opts Options, replay func(rec []byte) error, m *Metrics) (*WAL, Recovery, error) {
	if opts.Interval <= 0 {
		opts.Interval = DefaultSyncInterval
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, Recovery{}, fmt.Errorf("durable: creating WAL dir: %w", err)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, Recovery{}, fmt.Errorf("durable: opening WAL %s: %w", path, err)
	}
	w := &WAL{f: f, path: path, opts: opts, metrics: m, lastSync: time.Now()}
	rec, err := w.recover(replay)
	if err != nil {
		f.Close()
		return nil, rec, err
	}
	return w, rec, nil
}

// recover replays the log and truncates the tail at the first bad record.
func (w *WAL) recover(replay func(rec []byte) error) (Recovery, error) {
	data, err := io.ReadAll(w.f)
	if err != nil {
		return Recovery{}, fmt.Errorf("durable: reading WAL %s: %w", w.path, err)
	}
	var rec Recovery
	if len(data) < len(walMagic) {
		// Empty file, or a crash mid-header: (re-)initialize.
		rec.Reset = len(data) > 0
		rec.TruncatedBytes = int64(len(data))
		if err := w.f.Truncate(0); err != nil {
			return rec, fmt.Errorf("durable: resetting WAL %s: %w", w.path, err)
		}
		if _, err := w.f.WriteAt(walMagic, 0); err != nil {
			return rec, fmt.Errorf("durable: writing WAL header: %w", err)
		}
		w.size = int64(len(walMagic))
		if _, err := w.f.Seek(w.size, io.SeekStart); err != nil {
			return rec, err
		}
		return rec, nil
	}
	if string(data[:len(walMagic)]) != string(walMagic) {
		return rec, fmt.Errorf("durable: %s is not a Hoyan WAL (bad header)", w.path)
	}
	off := len(walMagic)
	for off < len(data) {
		payload, n, derr := DecodeRecord(data[off:])
		if derr != nil {
			// Torn or corrupt tail: replay stops cleanly here; everything
			// after the last good record is dropped.
			break
		}
		if err := replay(payload); err != nil {
			return rec, fmt.Errorf("durable: replaying WAL %s record %d: %w", w.path, rec.Records, err)
		}
		rec.Records++
		off += n
	}
	w.metrics.Replayed.Add(int64(rec.Records))
	rec.TruncatedBytes = int64(len(data) - off)
	if rec.TruncatedBytes > 0 {
		if err := w.f.Truncate(int64(off)); err != nil {
			return rec, fmt.Errorf("durable: truncating torn WAL tail: %w", err)
		}
	}
	w.size = int64(off)
	if _, err := w.f.Seek(w.size, io.SeekStart); err != nil {
		return rec, err
	}
	return rec, nil
}

// Append logs one record. The record is durable per the fsync policy: with
// SyncAlways it has reached stable storage when Append returns; with
// SyncInterval/SyncNever it has at least reached the OS (surviving a process
// crash). Errors are transient from the caller's perspective: the log's
// in-memory offset is only advanced on success, so a retried Append after a
// partial write produces a torn tail that recovery truncates.
func (w *WAL) Append(payload []byte) error {
	frame := EncodeRecord(nil, payload)
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.stateErrLocked(); err != nil {
		return err
	}
	if _, err := w.f.WriteAt(frame, w.size); err != nil {
		w.noteWrite(err)
		return fmt.Errorf("durable: WAL append: %w", err)
	}
	w.size += int64(len(frame))
	if err := w.maybeSyncLocked(); err != nil {
		w.noteWrite(err)
		return err
	}
	w.noteWrite(nil)
	return nil
}

// stateErrLocked reports the closed/crashed sentinel, if any.
func (w *WAL) stateErrLocked() error {
	if w.crashed {
		return ErrCrashed
	}
	if w.closed {
		return fmt.Errorf("durable: WAL %s is closed", w.path)
	}
	return nil
}

// maybeSyncLocked applies the fsync policy after an append.
func (w *WAL) maybeSyncLocked() error {
	switch w.opts.Fsync {
	case SyncAlways:
		if err := w.f.Sync(); err != nil {
			return fmt.Errorf("durable: WAL fsync: %w", err)
		}
	case SyncInterval:
		if time.Since(w.lastSync) >= w.opts.Interval {
			if err := w.f.Sync(); err != nil {
				return fmt.Errorf("durable: WAL fsync: %w", err)
			}
			w.lastSync = time.Now()
		}
	}
	return nil
}

// Sync forces an fsync regardless of policy.
func (w *WAL) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.stateErrLocked(); err != nil {
		return err
	}
	if err := w.f.Sync(); err != nil {
		w.noteWrite(err)
		return fmt.Errorf("durable: WAL fsync: %w", err)
	}
	w.lastSync = time.Now()
	return nil
}

// Compact atomically replaces the log's contents with the given records (a
// snapshot of the owner's current state): they are written to a temporary
// file, fsynced, and renamed over the log, so a crash at any point leaves
// either the old log or the new one — never a mix.
func (w *WAL) Compact(records [][]byte) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.stateErrLocked(); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(w.path), filepath.Base(w.path)+".compact-*")
	if err != nil {
		w.noteWrite(err)
		return fmt.Errorf("durable: WAL compact: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	buf := append([]byte(nil), walMagic...)
	for _, rec := range records {
		buf = EncodeRecord(buf, rec)
	}
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		w.noteWrite(err)
		return fmt.Errorf("durable: WAL compact write: %w", err)
	}
	// The snapshot replaces history: it must be durable before the rename
	// makes it authoritative, whatever the append-path policy says.
	if w.opts.Fsync != SyncNever {
		if err := tmp.Sync(); err != nil {
			tmp.Close()
			w.noteWrite(err)
			return fmt.Errorf("durable: WAL compact fsync: %w", err)
		}
	}
	if err := tmp.Close(); err != nil {
		w.noteWrite(err)
		return fmt.Errorf("durable: WAL compact close: %w", err)
	}
	if err := os.Rename(tmp.Name(), w.path); err != nil {
		w.noteWrite(err)
		return fmt.Errorf("durable: WAL compact rename: %w", err)
	}
	nf, err := os.OpenFile(w.path, os.O_RDWR, 0o644)
	if err != nil {
		w.noteWrite(err)
		return fmt.Errorf("durable: reopening compacted WAL: %w", err)
	}
	w.f.Close()
	w.f = nf
	w.size = int64(len(buf))
	if _, err := w.f.Seek(w.size, io.SeekStart); err != nil {
		return err
	}
	w.metrics.Compactions.Inc()
	w.noteWrite(nil)
	return nil
}

// Size returns the log's current byte size (header included).
func (w *WAL) Size() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.size
}

// Close flushes and closes the log.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed || w.crashed {
		return nil
	}
	w.closed = true
	if w.opts.Fsync != SyncNever {
		w.f.Sync()
	}
	return w.f.Close()
}

// CrashClose drops the file handle without flushing or compacting and makes
// every subsequent operation fail with ErrCrashed — the chaos harness's
// stand-in for kill -9 on the substrate process. Reopen the same path with
// Open to recover.
func (w *WAL) CrashClose() {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed || w.crashed {
		return
	}
	w.crashed = true
	w.f.Close()
}

// noteWrite records one durable-write outcome for Healthy() and the
// write-failure counter.
func (w *WAL) noteWrite(err error) {
	if err == nil {
		w.consecFails.Store(0)
		return
	}
	w.consecFails.Add(1)
	w.metrics.WriteFailures.Inc()
}

// NoteExternalWrite folds a durable write performed outside the WAL (an
// object-file write sharing its guarantees) into the same failure-health
// accounting.
func (w *WAL) NoteExternalWrite(err error) { w.noteWrite(err) }

// Healthy returns nil while writes are landing, and an error once
// HealthFailureThreshold consecutive durable writes have failed — the signal
// /healthz degrades on instead of crashing the process.
func (w *WAL) Healthy() error {
	if n := w.consecFails.Load(); n >= HealthFailureThreshold {
		return fmt.Errorf("durable: last %d writes to %s failed", n, filepath.Base(w.path))
	}
	return nil
}

// Instrument re-binds the WAL's durability counters to registered metrics in
// reg under the given component label, carrying over counts accumulated so
// far (recovery replay happens at Open, before any registry exists).
func (w *WAL) Instrument(reg *telemetry.Registry, component string) {
	w.mu.Lock()
	w.metrics = w.metrics.rebind(reg, component)
	w.mu.Unlock()
}

// Metrics returns the WAL's current metrics bundle (for substrates that share
// the failure accounting).
func (w *WAL) MetricsBundle() *Metrics {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.metrics
}
