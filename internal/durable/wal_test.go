package durable

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// openCollect opens the WAL at path and collects replayed payloads.
func openCollect(t *testing.T, path string, opts Options) (*WAL, Recovery, [][]byte) {
	t.Helper()
	var got [][]byte
	w, rec, err := Open(path, opts, func(p []byte) error {
		got = append(got, append([]byte(nil), p...))
		return nil
	})
	if err != nil {
		t.Fatalf("Open(%s): %v", path, err)
	}
	return w, rec, got
}

func TestWALRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "test.wal")
	w, rec, _ := openCollect(t, path, Options{Fsync: SyncNever})
	if rec.Records != 0 || rec.TruncatedBytes != 0 {
		t.Fatalf("fresh WAL recovery = %+v, want zeroes", rec)
	}
	var want [][]byte
	for i := 0; i < 50; i++ {
		p := []byte(fmt.Sprintf("record-%03d", i))
		want = append(want, p)
		if err := w.Append(p); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	w2, rec, got := openCollect(t, path, Options{Fsync: SyncNever})
	defer w2.Close()
	if rec.Records != 50 || rec.TruncatedBytes != 0 {
		t.Fatalf("recovery = %+v, want 50 clean records", rec)
	}
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
}

// TestWALRecoveryTails is the table over damaged logs: truncated tails at
// every interesting boundary, bit-flipped payloads and checksums, and
// empty/partial/foreign headers.
func TestWALRecoveryTails(t *testing.T) {
	// Build a clean three-record log once; each case mutates a copy.
	base := append([]byte(nil), walMagic...)
	payloads := [][]byte{
		[]byte("alpha"),
		[]byte("bravo-longer-payload"),
		[]byte("charlie"),
	}
	var offsets []int // byte offset where each record starts
	for _, p := range payloads {
		offsets = append(offsets, len(base))
		base = EncodeRecord(base, p)
	}

	cases := []struct {
		name        string
		mutate      func([]byte) []byte
		wantRecords int
		wantDrop    bool // TruncatedBytes > 0
		wantReset   bool
		wantErr     bool
	}{
		{name: "clean", mutate: func(b []byte) []byte { return b }, wantRecords: 3},
		{name: "empty file", mutate: func([]byte) []byte { return nil }, wantRecords: 0},
		{
			name:      "partial header",
			mutate:    func([]byte) []byte { return []byte("HOY") },
			wantReset: true, wantDrop: true,
		},
		{
			name:    "foreign header",
			mutate:  func(b []byte) []byte { return append([]byte("NOTAWAL\n"), b[len(walMagic):]...) },
			wantErr: true,
		},
		{
			name:        "torn mid last header",
			mutate:      func(b []byte) []byte { return b[:offsets[2]+3] },
			wantRecords: 2, wantDrop: true,
		},
		{
			name:        "torn mid last payload",
			mutate:      func(b []byte) []byte { return b[:len(b)-2] },
			wantRecords: 2, wantDrop: true,
		},
		{
			name:        "torn mid first record",
			mutate:      func(b []byte) []byte { return b[:offsets[0]+recHeaderSize+1] },
			wantRecords: 0, wantDrop: true,
		},
		{
			name: "bit flip in middle payload",
			mutate: func(b []byte) []byte {
				c := append([]byte(nil), b...)
				c[offsets[1]+recHeaderSize] ^= 0x40
				return c
			},
			wantRecords: 1, wantDrop: true,
		},
		{
			name: "bit flip in middle checksum",
			mutate: func(b []byte) []byte {
				c := append([]byte(nil), b...)
				c[offsets[1]+5] ^= 0x01
				return c
			},
			wantRecords: 1, wantDrop: true,
		},
		{
			name: "garbage length field",
			mutate: func(b []byte) []byte {
				c := append([]byte(nil), b...)
				c[offsets[0]+3] = 0xFF // length > maxRecordSize
				return c
			},
			wantRecords: 0, wantDrop: true,
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "tail.wal")
			if err := os.WriteFile(path, tc.mutate(append([]byte(nil), base...)), 0o644); err != nil {
				t.Fatal(err)
			}
			var got int
			w, rec, err := Open(path, Options{Fsync: SyncNever}, func([]byte) error { got++; return nil })
			if tc.wantErr {
				if err == nil {
					w.Close()
					t.Fatal("Open succeeded, want error")
				}
				return
			}
			if err != nil {
				t.Fatalf("Open: %v", err)
			}
			defer w.Close()
			if got != tc.wantRecords || rec.Records != tc.wantRecords {
				t.Fatalf("replayed %d (recovery %d), want %d", got, rec.Records, tc.wantRecords)
			}
			if (rec.TruncatedBytes > 0) != tc.wantDrop {
				t.Fatalf("TruncatedBytes = %d, wantDrop=%v", rec.TruncatedBytes, tc.wantDrop)
			}
			if rec.Reset != tc.wantReset {
				t.Fatalf("Reset = %v, want %v", rec.Reset, tc.wantReset)
			}

			// The damaged tail must be physically gone: appending and
			// reopening yields the surviving records plus the new one.
			if err := w.Append([]byte("after-recovery")); err != nil {
				t.Fatalf("Append after recovery: %v", err)
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
			w2, rec2, replayed := openCollect(t, path, Options{Fsync: SyncNever})
			defer w2.Close()
			if rec2.TruncatedBytes != 0 || rec2.Records != tc.wantRecords+1 {
				t.Fatalf("second recovery = %+v, want %d clean records", rec2, tc.wantRecords+1)
			}
			if last := replayed[len(replayed)-1]; string(last) != "after-recovery" {
				t.Fatalf("last record = %q", last)
			}
		})
	}
}

func TestWALCompact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "compact.wal")
	w, _, _ := openCollect(t, path, Options{Fsync: SyncNever})
	for i := 0; i < 100; i++ {
		if err := w.Append([]byte(fmt.Sprintf("r%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	before := w.Size()
	if err := w.Compact([][]byte{[]byte("snapshot")}); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if w.Size() >= before {
		t.Fatalf("size after compact %d, want < %d", w.Size(), before)
	}
	if got := w.MetricsBundle().Compactions.Value(); got != 1 {
		t.Fatalf("compactions counter = %d, want 1", got)
	}
	// Appends after compaction land after the snapshot.
	if err := w.Append([]byte("post")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w2, rec, got := openCollect(t, path, Options{})
	defer w2.Close()
	if rec.Records != 2 || string(got[0]) != "snapshot" || string(got[1]) != "post" {
		t.Fatalf("replay after compact = %q (recovery %+v)", got, rec)
	}
}

func TestWALCrashClose(t *testing.T) {
	path := filepath.Join(t.TempDir(), "crash.wal")
	w, _, _ := openCollect(t, path, Options{Fsync: SyncNever})
	if err := w.Append([]byte("persisted")); err != nil {
		t.Fatal(err)
	}
	w.CrashClose()
	if err := w.Append([]byte("lost")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("Append after CrashClose = %v, want ErrCrashed", err)
	}
	if err := w.Sync(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("Sync after CrashClose = %v, want ErrCrashed", err)
	}
	if err := w.Compact(nil); !errors.Is(err, ErrCrashed) {
		t.Fatalf("Compact after CrashClose = %v, want ErrCrashed", err)
	}
	// Reopen recovers everything appended pre-crash.
	w2, rec, got := openCollect(t, path, Options{})
	defer w2.Close()
	if rec.Records != 1 || string(got[0]) != "persisted" {
		t.Fatalf("reopen after crash replayed %q (recovery %+v)", got, rec)
	}
}

func TestWALHealthy(t *testing.T) {
	path := filepath.Join(t.TempDir(), "health.wal")
	w, _, _ := openCollect(t, path, Options{Fsync: SyncNever})
	defer w.Close()
	if err := w.Healthy(); err != nil {
		t.Fatalf("fresh WAL unhealthy: %v", err)
	}
	for i := 0; i < HealthFailureThreshold; i++ {
		w.NoteExternalWrite(errors.New("disk full"))
	}
	if err := w.Healthy(); err == nil {
		t.Fatal("Healthy() = nil after threshold failures, want error")
	}
	if got := w.MetricsBundle().WriteFailures.Value(); got != HealthFailureThreshold {
		t.Fatalf("write failures counter = %d, want %d", got, HealthFailureThreshold)
	}
	w.NoteExternalWrite(nil)
	if err := w.Healthy(); err != nil {
		t.Fatalf("Healthy() after success = %v, want nil", err)
	}
}

func TestParsePolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Policy
		err  bool
	}{
		{"always", SyncAlways, false},
		{"interval", SyncInterval, false},
		{"", SyncInterval, false},
		{"never", SyncNever, false},
		{" Never ", SyncNever, false},
		{"sometimes", SyncInterval, true},
	} {
		got, err := ParsePolicy(tc.in)
		if (err != nil) != tc.err || got != tc.want {
			t.Errorf("ParsePolicy(%q) = %v, %v; want %v, err=%v", tc.in, got, err, tc.want, tc.err)
		}
	}
	for _, p := range []Policy{SyncAlways, SyncInterval, SyncNever} {
		rt, err := ParsePolicy(p.String())
		if err != nil || rt != p {
			t.Errorf("round trip %v -> %q -> %v, %v", p, p.String(), rt, err)
		}
	}
}

// FuzzWALRecord throws arbitrary bytes at the record decoder (it must never
// panic, and must consume at most the input) and checks encode/decode
// round-trips.
func FuzzWALRecord(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("short"))
	f.Add(EncodeRecord(nil, []byte("seed payload")))
	f.Add(EncodeRecord(EncodeRecord(nil, []byte("two")), []byte("records")))
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		payload, n, err := DecodeRecord(data)
		if err == nil {
			if n < recHeaderSize || n > len(data) {
				t.Fatalf("DecodeRecord consumed %d of %d bytes", n, len(data))
			}
			// A successfully decoded record must re-encode to the same frame.
			if re := EncodeRecord(nil, payload); !bytes.Equal(re, data[:n]) {
				t.Fatalf("re-encode mismatch: %x vs %x", re, data[:n])
			}
		} else if !errors.Is(err, ErrTorn) && !errors.Is(err, ErrCorrupt) {
			t.Fatalf("DecodeRecord error %v is neither ErrTorn nor ErrCorrupt", err)
		}
		// Round-trip the input as a payload.
		frame := EncodeRecord(nil, data)
		got, n, err := DecodeRecord(frame)
		if err != nil || n != len(frame) || !bytes.Equal(got, data) {
			t.Fatalf("round trip failed: n=%d err=%v", n, err)
		}
	})
}
