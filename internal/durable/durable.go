// Package durable is the persistence layer under the distributed framework's
// substrates: an append-only write-ahead log with length-prefixed,
// CRC-checksummed records, truncated-tail recovery (replay stops cleanly at
// the first torn or corrupt record and drops everything after it), periodic
// snapshot compaction, and a configurable fsync policy.
//
// The disk-backed substrate implementations (objstore.Disk, taskdb.Durable,
// mq.Durable) each keep their authoritative state in memory and log every
// mutation here before applying it, so a process restart replays the log and
// resumes exactly where the previous incarnation's last durable write left
// off. PR 2's fault tolerance (heartbeats, lease reclaim, attempt fencing)
// makes re-execution of anything lost past that point safe.
//
// Stdlib only, like the rest of the fleet.
package durable

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"hoyan/internal/telemetry"
)

// Policy selects when the WAL (and the object files riding the same
// guarantees) are fsynced to stable storage.
type Policy int

// Fsync policies. The zero value is SyncInterval: bounded loss on machine
// crash, near-memory throughput.
const (
	// SyncInterval fsyncs at most once per Options.Interval of active
	// writes: a machine crash loses at most the last interval's appends.
	SyncInterval Policy = iota
	// SyncAlways fsyncs after every append: nothing acknowledged is ever
	// lost, at the cost of one fsync per write.
	SyncAlways
	// SyncNever leaves flushing to the OS (and Close/Compact): fastest, and
	// still safe against process crashes — only a machine crash can lose
	// acknowledged writes.
	SyncNever
)

// String renders the policy in the -fsync flag vocabulary.
func (p Policy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncNever:
		return "never"
	default:
		return "interval"
	}
}

// ParsePolicy parses the -fsync flag vocabulary ("always", "interval",
// "never").
func ParsePolicy(s string) (Policy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "always":
		return SyncAlways, nil
	case "interval", "":
		return SyncInterval, nil
	case "never":
		return SyncNever, nil
	}
	return SyncInterval, fmt.Errorf("durable: unknown fsync policy %q (want always, interval, or never)", s)
}

// Options configure a WAL and the substrate built on it.
type Options struct {
	// Fsync is the sync policy (zero value: SyncInterval).
	Fsync Policy
	// Interval is the SyncInterval cadence; 0 means DefaultSyncInterval.
	Interval time.Duration
	// CompactEvery is how many appended records a substrate accumulates
	// before rewriting its WAL as a snapshot; 0 means DefaultCompactEvery.
	CompactEvery int
}

// DefaultSyncInterval is the SyncInterval cadence when Options.Interval is 0.
const DefaultSyncInterval = 100 * time.Millisecond

// DefaultCompactEvery is the appends-between-compactions default.
const DefaultCompactEvery = 4096

// HealthFailureThreshold is how many consecutive durable-write failures flip
// Healthy() to an error (and /healthz to degraded) — a single flake rides the
// retry path without alarming anyone.
const HealthFailureThreshold = 3

// ErrCrashed is returned by a durable substrate after CrashClose: the chaos
// harness's stand-in for a killed substrate process. It is classified as
// transient (unlike mq.ErrClosed), so masters and workers retry until the
// substrate is reopened.
var ErrCrashed = errors.New("durable: substrate crashed (reopen required)")

// Metrics are the durability counters one component (taskdb, objstore, mq)
// surfaces. All fields are non-nil; NewMetrics with a nil registry yields
// detached instruments.
type Metrics struct {
	// WriteFailures counts failed durable writes: WAL appends, object-file
	// writes, and compaction rewrites (durable_write_failures_total).
	WriteFailures *telemetry.Counter
	// Replayed counts WAL records replayed at recovery (wal_records_replayed).
	Replayed *telemetry.Counter
	// Compactions counts snapshot compactions (wal_compactions_total).
	Compactions *telemetry.Counter
}

// NewMetrics registers the durability counters in reg under the given
// component label (nil reg = detached instruments).
func NewMetrics(reg *telemetry.Registry, component string) *Metrics {
	l := telemetry.L("component", component)
	return &Metrics{
		WriteFailures: reg.Counter("durable_write_failures_total",
			"durable substrate write failures (WAL appends, object files, compactions)", l),
		Replayed: reg.Counter("wal_records_replayed",
			"WAL records replayed at recovery", l),
		Compactions: reg.Counter("wal_compactions_total",
			"WAL snapshot compactions", l),
	}
}

// rebind registers fresh counters in reg and carries over the counts
// accumulated so far (the Instrument-after-Open pattern the in-memory
// substrates use).
func (m *Metrics) rebind(reg *telemetry.Registry, component string) *Metrics {
	n := NewMetrics(reg, component)
	n.WriteFailures.Add(m.WriteFailures.Value())
	n.Replayed.Add(m.Replayed.Value())
	n.Compactions.Add(m.Compactions.Value())
	return n
}
