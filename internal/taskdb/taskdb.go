// Package taskdb provides the subtask-status database of the distributed
// simulation framework: workers update subtask status here, the master
// monitors it, and the §3.2 ordering heuristic records each route subtask's
// covered address range here so traffic subtasks can test overlap.
package taskdb

import (
	"errors"
	"fmt"
	"net"
	"net/rpc"
	"sort"
	"sync"
	"time"
)

// Status of a subtask.
type Status string

// Subtask lifecycle states.
const (
	StatusPending Status = "pending"
	StatusRunning Status = "running"
	StatusDone    Status = "done"
	StatusFailed  Status = "failed"
)

// Record is one subtask's state. RangeLo/RangeHi hold the address range
// covered by a route subtask's input prefixes (textual netip.Addr form, kept
// as strings for clean wire encoding).
type Record struct {
	TaskID   string // simulation task this subtask belongs to
	SubID    int
	Kind     string // "route" or "traffic"
	Status   Status
	Worker   string
	Attempts int
	Error    string

	RangeLo string
	RangeHi string

	StartedAt  time.Time
	FinishedAt time.Time
	DurationMs int64

	// LoadedRIBFiles counts how many route-subtask result files a traffic
	// subtask loaded (the Figure 5(d) metric).
	LoadedRIBFiles int
}

// Key identifies a subtask record.
func (r Record) Key() string { return fmt.Sprintf("%s/%s/%d", r.TaskID, r.Kind, r.SubID) }

// DB is the subtask database interface.
type DB interface {
	// Upsert stores the record, replacing any previous state.
	Upsert(rec Record) error
	// Get fetches one record.
	Get(taskID, kind string, subID int) (Record, bool, error)
	// List returns all records of a task, sorted by kind then sub ID.
	List(taskID string) ([]Record, error)
}

// Memory is an in-memory DB safe for concurrent use.
type Memory struct {
	mu   sync.RWMutex
	recs map[string]Record
}

// NewMemory creates an empty in-memory DB.
func NewMemory() *Memory { return &Memory{recs: make(map[string]Record)} }

// Upsert implements DB.
func (db *Memory) Upsert(rec Record) error {
	db.mu.Lock()
	db.recs[rec.Key()] = rec
	db.mu.Unlock()
	return nil
}

// Get implements DB.
func (db *Memory) Get(taskID, kind string, subID int) (Record, bool, error) {
	db.mu.RLock()
	rec, ok := db.recs[Record{TaskID: taskID, Kind: kind, SubID: subID}.Key()]
	db.mu.RUnlock()
	return rec, ok, nil
}

// List implements DB.
func (db *Memory) List(taskID string) ([]Record, error) {
	db.mu.RLock()
	var out []Record
	for _, rec := range db.recs {
		if rec.TaskID == taskID {
			out = append(out, rec)
		}
	}
	db.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Kind != out[j].Kind {
			return out[i].Kind < out[j].Kind
		}
		return out[i].SubID < out[j].SubID
	})
	return out, nil
}

// Service exposes a DB over net/rpc.
type Service struct{ db DB }

// Upsert is the RPC form of DB.Upsert.
func (s *Service) Upsert(rec *Record, _ *struct{}) error { return s.db.Upsert(*rec) }

// GetArgs are the arguments of Tasks.Get.
type GetArgs struct {
	TaskID string
	Kind   string
	SubID  int
}

// GetReply is the result of Tasks.Get.
type GetReply struct {
	Rec   Record
	Found bool
}

// Get is the RPC form of DB.Get.
func (s *Service) Get(args *GetArgs, reply *GetReply) error {
	rec, ok, err := s.db.Get(args.TaskID, args.Kind, args.SubID)
	reply.Rec, reply.Found = rec, ok
	return err
}

// List is the RPC form of DB.List.
func (s *Service) List(taskID *string, reply *[]Record) error {
	recs, err := s.db.List(*taskID)
	*reply = recs
	return err
}

// Serve registers the DB on a fresh rpc server and serves connections on l
// until the listener is closed.
func Serve(l net.Listener, db DB) {
	srv := rpc.NewServer()
	srv.RegisterName("Tasks", &Service{db: db})
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go srv.ServeConn(conn)
		}
	}()
}

// Client is a DB talking to a remote Serve instance.
type Client struct{ c *rpc.Client }

// Dial connects to a task DB server.
func Dial(addr string) (*Client, error) {
	c, err := rpc.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("taskdb: dial %s: %w", addr, err)
	}
	return &Client{c: c}, nil
}

// Upsert implements DB.
func (c *Client) Upsert(rec Record) error {
	return c.c.Call("Tasks.Upsert", &rec, &struct{}{})
}

// Get implements DB.
func (c *Client) Get(taskID, kind string, subID int) (Record, bool, error) {
	var reply GetReply
	err := c.c.Call("Tasks.Get", &GetArgs{TaskID: taskID, Kind: kind, SubID: subID}, &reply)
	return reply.Rec, reply.Found, err
}

// List implements DB.
func (c *Client) List(taskID string) ([]Record, error) {
	var recs []Record
	err := c.c.Call("Tasks.List", &taskID, &recs)
	return recs, err
}

// Close closes the client connection.
func (c *Client) Close() error { return c.c.Close() }

// ErrUnreachable reports substrate connectivity problems distinctly.
var ErrUnreachable = errors.New("taskdb: unreachable")
