// Package taskdb provides the subtask-status database of the distributed
// simulation framework: workers update subtask status here, the master
// monitors it, and the §3.2 ordering heuristic records each route subtask's
// covered address range here so traffic subtasks can test overlap.
//
// Fault tolerance: each record carries a lease (HeartbeatAt, refreshed by the
// executing worker) and a fence (Attempts, the attempt epoch the master
// assigns on every (re-)enqueue). FencedUpsert rejects writes from attempts
// older than the stored one, so a worker reclaimed as dead cannot clobber the
// status written by the attempt that superseded it.
package taskdb

import (
	"cmp"
	"errors"
	"fmt"
	"net"
	"net/rpc"
	"slices"
	"sync"
	"time"

	"hoyan/internal/rpcx"
	"hoyan/internal/telemetry"
)

// Status of a subtask.
type Status string

// Subtask lifecycle states.
const (
	StatusPending Status = "pending"
	StatusRunning Status = "running"
	StatusDone    Status = "done"
	StatusFailed  Status = "failed"
)

// Record is one subtask's state. RangeLo/RangeHi hold the address range
// covered by a route subtask's input prefixes (textual netip.Addr form, kept
// as strings for clean wire encoding).
type Record struct {
	TaskID string // simulation task this subtask belongs to
	SubID  int
	Kind   string // "route" or "traffic"
	Status Status
	Worker string
	// Attempts is the attempt epoch: 0 for the first enqueue, incremented by
	// the master on every re-enqueue (failure or lease reclaim). It doubles
	// as the fence token for FencedUpsert.
	Attempts int
	Error    string

	RangeLo string
	RangeHi string

	// EnqueuedAt is stamped by the master when the subtask's message is
	// (re-)pushed; a record pending long past it with an empty queue means
	// the message was lost.
	EnqueuedAt time.Time
	StartedAt  time.Time
	FinishedAt time.Time
	// HeartbeatAt is refreshed by the executing worker's heartbeat loop; the
	// master treats a running record with a stale heartbeat as a dead worker
	// and reclaims the subtask.
	HeartbeatAt time.Time
	DurationMs  int64

	// LoadedRIBFiles counts how many route-subtask result files a traffic
	// subtask loaded (the Figure 5(d) metric).
	LoadedRIBFiles int
}

// Key identifies a subtask record.
func (r Record) Key() string { return fmt.Sprintf("%s/%s/%d", r.TaskID, r.Kind, r.SubID) }

// DB is the subtask database interface.
type DB interface {
	// Upsert stores the record unconditionally, replacing any previous state.
	Upsert(rec Record) error
	// FencedUpsert stores the record unless the stored record belongs to a
	// newer attempt (stored.Attempts > rec.Attempts). It reports whether the
	// write was applied; a rejected write is not an error.
	FencedUpsert(rec Record) (bool, error)
	// Heartbeat refreshes HeartbeatAt on a running record of the given
	// attempt. It reports whether the record matched (same attempt, still
	// running); a miss is not an error.
	Heartbeat(taskID, kind string, subID, attempt int, at time.Time) (bool, error)
	// Get fetches one record.
	Get(taskID, kind string, subID int) (Record, bool, error)
	// List returns all records of a task, sorted by kind then sub ID.
	List(taskID string) ([]Record, error)
}

// Memory is an in-memory DB safe for concurrent use.
type Memory struct {
	mu   sync.RWMutex
	recs map[string]Record
}

// NewMemory creates an empty in-memory DB.
func NewMemory() *Memory { return &Memory{recs: make(map[string]Record)} }

// Upsert implements DB.
func (db *Memory) Upsert(rec Record) error {
	db.mu.Lock()
	db.recs[rec.Key()] = rec
	db.mu.Unlock()
	return nil
}

// FencedUpsert implements DB.
func (db *Memory) FencedUpsert(rec Record) (bool, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if old, ok := db.recs[rec.Key()]; ok && old.Attempts > rec.Attempts {
		return false, nil
	}
	db.recs[rec.Key()] = rec
	return true, nil
}

// Heartbeat implements DB.
func (db *Memory) Heartbeat(taskID, kind string, subID, attempt int, at time.Time) (bool, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	key := Record{TaskID: taskID, Kind: kind, SubID: subID}.Key()
	rec, ok := db.recs[key]
	if !ok || rec.Attempts != attempt || rec.Status != StatusRunning {
		return false, nil
	}
	rec.HeartbeatAt = at
	db.recs[key] = rec
	return true, nil
}

// Get implements DB.
func (db *Memory) Get(taskID, kind string, subID int) (Record, bool, error) {
	db.mu.RLock()
	rec, ok := db.recs[Record{TaskID: taskID, Kind: kind, SubID: subID}.Key()]
	db.mu.RUnlock()
	return rec, ok, nil
}

// List implements DB.
func (db *Memory) List(taskID string) ([]Record, error) {
	db.mu.RLock()
	var out []Record
	for _, rec := range db.recs {
		if rec.TaskID == taskID {
			out = append(out, rec)
		}
	}
	db.mu.RUnlock()
	slices.SortFunc(out, func(a, b Record) int {
		if c := cmp.Compare(a.Kind, b.Kind); c != 0 {
			return c
		}
		return cmp.Compare(a.SubID, b.SubID)
	})
	return out, nil
}

// Service exposes a DB over net/rpc, counting writes and heartbeats
// (telemetry instruments, detached unless Serve was given a registry).
type Service struct {
	db DB

	upserts    *telemetry.Counter
	heartbeats *telemetry.Counter
	fenced     *telemetry.Counter
}

func newService(db DB) *Service {
	return &Service{db: db, upserts: &telemetry.Counter{}, heartbeats: &telemetry.Counter{}, fenced: &telemetry.Counter{}}
}

// Upsert is the RPC form of DB.Upsert.
func (s *Service) Upsert(rec *Record, _ *struct{}) error {
	s.upserts.Inc()
	return s.db.Upsert(*rec)
}

// FencedUpsert is the RPC form of DB.FencedUpsert.
func (s *Service) FencedUpsert(rec *Record, applied *bool) error {
	s.upserts.Inc()
	ok, err := s.db.FencedUpsert(*rec)
	if err == nil && !ok {
		s.fenced.Inc()
	}
	*applied = ok
	return err
}

// HeartbeatArgs are the arguments of Tasks.Heartbeat.
type HeartbeatArgs struct {
	TaskID  string
	Kind    string
	SubID   int
	Attempt int
	At      time.Time
}

// Heartbeat is the RPC form of DB.Heartbeat.
func (s *Service) Heartbeat(args *HeartbeatArgs, applied *bool) error {
	s.heartbeats.Inc()
	ok, err := s.db.Heartbeat(args.TaskID, args.Kind, args.SubID, args.Attempt, args.At)
	*applied = ok
	return err
}

// GetArgs are the arguments of Tasks.Get.
type GetArgs struct {
	TaskID string
	Kind   string
	SubID  int
}

// GetReply is the result of Tasks.Get.
type GetReply struct {
	Rec   Record
	Found bool
}

// Get is the RPC form of DB.Get.
func (s *Service) Get(args *GetArgs, reply *GetReply) error {
	rec, ok, err := s.db.Get(args.TaskID, args.Kind, args.SubID)
	reply.Rec, reply.Found = rec, ok
	return err
}

// List is the RPC form of DB.List.
func (s *Service) List(taskID *string, reply *[]Record) error {
	recs, err := s.db.List(*taskID)
	*reply = recs
	return err
}

// Serve registers the DB on a fresh rpc server and serves connections on l
// until the listener is closed.
func Serve(l net.Listener, db DB) { ServeRegistry(l, db, nil) }

// ServeRegistry is Serve with the service's RPC counters registered in reg
// (nil reg keeps them detached).
func ServeRegistry(l net.Listener, db DB, reg *telemetry.Registry) {
	sv := newService(db)
	if reg != nil {
		sv.upserts = reg.Counter("hoyan_taskdb_upserts_total", "subtask record writes served")
		sv.heartbeats = reg.Counter("hoyan_taskdb_heartbeats_total", "lease heartbeats served")
		sv.fenced = reg.Counter("hoyan_taskdb_fenced_writes_total", "writes rejected by the attempt fence")
	}
	srv := rpc.NewServer()
	srv.RegisterName("Tasks", sv)
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go srv.ServeConn(conn)
		}
	}()
}

// Client is a DB talking to a remote Serve instance over a reconnecting
// connection with dial and per-call I/O timeouts.
type Client struct{ c *rpcx.Client }

// Dial connects to a task DB server with default timeouts.
func Dial(addr string) (*Client, error) { return DialOptions(addr, rpcx.Options{}) }

// DialOptions connects with explicit timeouts.
func DialOptions(addr string, opts rpcx.Options) (*Client, error) {
	c, err := rpcx.Dial(addr, opts)
	if err != nil {
		return nil, fmt.Errorf("taskdb: dial %s: %w", addr, err)
	}
	return &Client{c: c}, nil
}

// Upsert implements DB.
func (c *Client) Upsert(rec Record) error {
	return c.c.Call("Tasks.Upsert", &rec, &struct{}{})
}

// FencedUpsert implements DB.
func (c *Client) FencedUpsert(rec Record) (bool, error) {
	var applied bool
	err := c.c.Call("Tasks.FencedUpsert", &rec, &applied)
	return applied, err
}

// Heartbeat implements DB.
func (c *Client) Heartbeat(taskID, kind string, subID, attempt int, at time.Time) (bool, error) {
	var applied bool
	err := c.c.Call("Tasks.Heartbeat",
		&HeartbeatArgs{TaskID: taskID, Kind: kind, SubID: subID, Attempt: attempt, At: at}, &applied)
	return applied, err
}

// Get implements DB.
func (c *Client) Get(taskID, kind string, subID int) (Record, bool, error) {
	var reply GetReply
	err := c.c.Call("Tasks.Get", &GetArgs{TaskID: taskID, Kind: kind, SubID: subID}, &reply)
	return reply.Rec, reply.Found, err
}

// List implements DB.
func (c *Client) List(taskID string) ([]Record, error) {
	var recs []Record
	err := c.c.Call("Tasks.List", &taskID, &recs)
	return recs, err
}

// Close closes the client connection.
func (c *Client) Close() error { return c.c.Close() }

// ErrUnreachable reports substrate connectivity problems distinctly.
var ErrUnreachable = errors.New("taskdb: unreachable")
