package taskdb

import (
	"cmp"
	"encoding/json"
	"fmt"
	"slices"
	"sync"
	"time"

	"hoyan/internal/durable"
	"hoyan/internal/telemetry"
)

// Durable is a disk-backed DB: the authoritative record map lives in memory
// and every applied mutation is logged to a WAL first, so a restart replays
// the log and recovers exactly the acknowledged state. Fencing semantics are
// preserved across restarts — the fence check runs against the recovered map
// and only applied writes are ever logged, so replay needs no re-checking.
// Safe for concurrent use.
type Durable struct {
	mu      sync.Mutex
	recs    map[string]Record
	wal     *durable.WAL
	opts    durable.Options
	appends int
	crashed bool
}

// taskdbRec is one WAL record: an applied upsert or heartbeat.
type taskdbRec struct {
	Op  string  `json:"op"` // "up" or "hb"
	Rec *Record `json:"rec,omitempty"`

	// Heartbeat fields ("hb").
	TaskID  string    `json:"task,omitempty"`
	Kind    string    `json:"kind,omitempty"`
	SubID   int       `json:"sub,omitempty"`
	Attempt int       `json:"attempt,omitempty"`
	At      time.Time `json:"at,omitempty"`
}

// OpenDurable opens (creating if necessary) a WAL-backed task DB persisted at
// path, replaying any existing log. Recovery stats are visible through the
// wal_records_replayed metric after Instrument.
func OpenDurable(path string, opts durable.Options) (*Durable, error) {
	db := &Durable{recs: make(map[string]Record), opts: opts}
	wal, _, err := durable.Open(path, opts, func(p []byte) error {
		var rec taskdbRec
		if err := json.Unmarshal(p, &rec); err != nil {
			return fmt.Errorf("bad taskdb record: %w", err)
		}
		switch rec.Op {
		case "up":
			if rec.Rec == nil {
				return fmt.Errorf("taskdb upsert record without payload")
			}
			db.recs[rec.Rec.Key()] = *rec.Rec
		case "hb":
			key := Record{TaskID: rec.TaskID, Kind: rec.Kind, SubID: rec.SubID}.Key()
			if r, ok := db.recs[key]; ok && r.Attempts == rec.Attempt && r.Status == StatusRunning {
				r.HeartbeatAt = rec.At
				db.recs[key] = r
			}
		default:
			return fmt.Errorf("bad taskdb op %q", rec.Op)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	db.wal = wal
	return db, nil
}

// Instrument binds the DB's durability metrics to reg under the taskdb
// component label.
func (db *Durable) Instrument(reg *telemetry.Registry) { db.wal.Instrument(reg, "taskdb") }

// logLocked appends one WAL record and compacts the log down to a snapshot
// of the record map every CompactEvery appends.
func (db *Durable) logLocked(rec taskdbRec) error {
	p, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	if err := db.wal.Append(p); err != nil {
		return err
	}
	db.appends++
	every := db.opts.CompactEvery
	if every <= 0 {
		every = durable.DefaultCompactEvery
	}
	if db.appends >= every {
		if err := db.compactLocked(rec); err != nil {
			return err
		}
		db.appends = 0
	}
	return nil
}

// compactLocked rewrites the WAL as a snapshot of every record, plus the
// just-logged mutation (the caller applies it to the map after logging).
func (db *Durable) compactLocked(tail taskdbRec) error {
	keys := make([]string, 0, len(db.recs))
	for k := range db.recs {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	snap := make([][]byte, 0, len(keys)+1)
	for _, k := range keys {
		rec := db.recs[k]
		p, err := json.Marshal(taskdbRec{Op: "up", Rec: &rec})
		if err != nil {
			return err
		}
		snap = append(snap, p)
	}
	tp, err := json.Marshal(tail)
	if err != nil {
		return err
	}
	snap = append(snap, tp)
	return db.wal.Compact(snap)
}

// Upsert implements DB.
func (db *Durable) Upsert(rec Record) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.crashed {
		return durable.ErrCrashed
	}
	if err := db.logLocked(taskdbRec{Op: "up", Rec: &rec}); err != nil {
		return err
	}
	db.recs[rec.Key()] = rec
	return nil
}

// FencedUpsert implements DB: the fence check runs against the recovered
// in-memory state, and only applied writes reach the WAL.
func (db *Durable) FencedUpsert(rec Record) (bool, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.crashed {
		return false, durable.ErrCrashed
	}
	if old, ok := db.recs[rec.Key()]; ok && old.Attempts > rec.Attempts {
		return false, nil
	}
	if err := db.logLocked(taskdbRec{Op: "up", Rec: &rec}); err != nil {
		return false, err
	}
	db.recs[rec.Key()] = rec
	return true, nil
}

// Heartbeat implements DB. Applied heartbeats are logged so recovered leases
// carry their true freshness (a resumed master otherwise reclaims every
// running subtask immediately, which is safe but wasteful).
func (db *Durable) Heartbeat(taskID, kind string, subID, attempt int, at time.Time) (bool, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.crashed {
		return false, durable.ErrCrashed
	}
	key := Record{TaskID: taskID, Kind: kind, SubID: subID}.Key()
	rec, ok := db.recs[key]
	if !ok || rec.Attempts != attempt || rec.Status != StatusRunning {
		return false, nil
	}
	if err := db.logLocked(taskdbRec{Op: "hb", TaskID: taskID, Kind: kind, SubID: subID, Attempt: attempt, At: at}); err != nil {
		return false, err
	}
	rec.HeartbeatAt = at
	db.recs[key] = rec
	return true, nil
}

// Get implements DB.
func (db *Durable) Get(taskID, kind string, subID int) (Record, bool, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.crashed {
		return Record{}, false, durable.ErrCrashed
	}
	rec, ok := db.recs[Record{TaskID: taskID, Kind: kind, SubID: subID}.Key()]
	return rec, ok, nil
}

// List implements DB.
func (db *Durable) List(taskID string) ([]Record, error) {
	db.mu.Lock()
	if db.crashed {
		db.mu.Unlock()
		return nil, durable.ErrCrashed
	}
	var out []Record
	for _, rec := range db.recs {
		if rec.TaskID == taskID {
			out = append(out, rec)
		}
	}
	db.mu.Unlock()
	slices.SortFunc(out, func(a, b Record) int {
		if c := cmp.Compare(a.Kind, b.Kind); c != 0 {
			return c
		}
		return cmp.Compare(a.SubID, b.SubID)
	})
	return out, nil
}

// Tasks returns the distinct task IDs present in the DB, sorted — what a
// restarted master enumerates to find work to resume.
func (db *Durable) Tasks() []string {
	db.mu.Lock()
	seen := make(map[string]struct{})
	for _, rec := range db.recs {
		seen[rec.TaskID] = struct{}{}
	}
	db.mu.Unlock()
	out := make([]string, 0, len(seen))
	for id := range seen {
		out = append(out, id)
	}
	slices.Sort(out)
	return out
}

// Healthy reports nil while durable writes are landing.
func (db *Durable) Healthy() error { return db.wal.Healthy() }

// Close flushes the WAL and closes the DB.
func (db *Durable) Close() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.wal.Close()
}

// CrashClose simulates the DB process dying: every subsequent operation
// fails with durable.ErrCrashed (transient) until a reopened DB takes over.
func (db *Durable) CrashClose() {
	db.mu.Lock()
	db.crashed = true
	db.mu.Unlock()
	db.wal.CrashClose()
}
