package taskdb

import (
	"errors"
	"os"
	"path/filepath"
	"slices"
	"testing"
	"time"

	"hoyan/internal/durable"
)

func openDurableDB(t *testing.T, path string, opts durable.Options) *Durable {
	t.Helper()
	db, err := OpenDurable(path, opts)
	if err != nil {
		t.Fatalf("OpenDurable(%s): %v", path, err)
	}
	return db
}

func TestDurableRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "taskdb.wal")
	db := openDurableDB(t, path, durable.Options{Fsync: durable.SyncNever})
	now := time.Now().UTC().Truncate(time.Millisecond)
	recs := []Record{
		{TaskID: "t1", Kind: "route", SubID: 0, Status: StatusDone, Attempts: 1, HeartbeatAt: now},
		{TaskID: "t1", Kind: "route", SubID: 1, Status: StatusRunning, Attempts: 0, Worker: "w2"},
		{TaskID: "t1", Kind: "traffic", SubID: 0, Status: StatusPending},
		{TaskID: "t2", Kind: "route", SubID: 0, Status: StatusPending},
	}
	for _, r := range recs {
		if err := db.Upsert(r); err != nil {
			t.Fatal(err)
		}
	}
	if ok, err := db.Heartbeat("t1", "route", 1, 0, now.Add(time.Second)); !ok || err != nil {
		t.Fatalf("Heartbeat = %v, %v", ok, err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2 := openDurableDB(t, path, durable.Options{})
	defer db2.Close()
	got, err := db2.List("t1")
	if err != nil || len(got) != 3 {
		t.Fatalf("List(t1) = %d records, %v", len(got), err)
	}
	// Sorted kind-then-SubID, like Memory.
	if got[0].Kind != "route" || got[0].SubID != 0 || got[2].Kind != "traffic" {
		t.Fatalf("List order: %+v", got)
	}
	// The replayed heartbeat survives.
	hb, ok, err := db2.Get("t1", "route", 1)
	if err != nil || !ok || !hb.HeartbeatAt.Equal(now.Add(time.Second)) {
		t.Fatalf("heartbeat lost across restart: %+v ok=%v err=%v", hb, ok, err)
	}
	if ids := db2.Tasks(); !slices.Equal(ids, []string{"t1", "t2"}) {
		t.Fatalf("Tasks() = %v", ids)
	}
}

// TestDurableFencingAcrossRestart checks the core invariant: a write fenced
// out before a restart stays fenced out after it.
func TestDurableFencingAcrossRestart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "taskdb.wal")
	db := openDurableDB(t, path, durable.Options{Fsync: durable.SyncNever})
	if ok, err := db.FencedUpsert(Record{TaskID: "t", Kind: "route", SubID: 0, Status: StatusRunning, Attempts: 2}); !ok || err != nil {
		t.Fatalf("FencedUpsert attempt 2 = %v, %v", ok, err)
	}
	// A stale attempt is rejected and leaves no trace in the log.
	if ok, err := db.FencedUpsert(Record{TaskID: "t", Kind: "route", SubID: 0, Status: StatusDone, Attempts: 1}); ok || err != nil {
		t.Fatalf("stale FencedUpsert = %v, %v, want rejected", ok, err)
	}
	db.CrashClose()

	db2 := openDurableDB(t, path, durable.Options{})
	defer db2.Close()
	rec, ok, err := db2.Get("t", "route", 0)
	if err != nil || !ok || rec.Attempts != 2 || rec.Status != StatusRunning {
		t.Fatalf("recovered record = %+v ok=%v err=%v", rec, ok, err)
	}
	// Still fenced after restart.
	if ok, _ := db2.FencedUpsert(Record{TaskID: "t", Kind: "route", SubID: 0, Status: StatusDone, Attempts: 1}); ok {
		t.Fatal("stale attempt accepted after restart")
	}
	if ok, _ := db2.FencedUpsert(Record{TaskID: "t", Kind: "route", SubID: 0, Status: StatusDone, Attempts: 3}); !ok {
		t.Fatal("newer attempt rejected after restart")
	}
}

func TestDurableCrashed(t *testing.T) {
	path := filepath.Join(t.TempDir(), "taskdb.wal")
	db := openDurableDB(t, path, durable.Options{})
	db.CrashClose()
	if err := db.Upsert(Record{TaskID: "t"}); !errors.Is(err, durable.ErrCrashed) {
		t.Fatalf("Upsert after crash = %v", err)
	}
	if _, err := db.FencedUpsert(Record{TaskID: "t"}); !errors.Is(err, durable.ErrCrashed) {
		t.Fatalf("FencedUpsert after crash = %v", err)
	}
	if _, err := db.List("t"); !errors.Is(err, durable.ErrCrashed) {
		t.Fatalf("List after crash = %v", err)
	}
	if _, _, err := db.Get("t", "route", 0); !errors.Is(err, durable.ErrCrashed) {
		t.Fatalf("Get after crash = %v", err)
	}
	if _, err := db.Heartbeat("t", "route", 0, 0, time.Now()); !errors.Is(err, durable.ErrCrashed) {
		t.Fatalf("Heartbeat after crash = %v", err)
	}
}

// TestDurableCompaction drives the log past its threshold: heartbeats and
// rewrites collapse into a bounded snapshot that still replays correctly.
func TestDurableCompaction(t *testing.T) {
	path := filepath.Join(t.TempDir(), "taskdb.wal")
	db := openDurableDB(t, path, durable.Options{Fsync: durable.SyncNever, CompactEvery: 10})
	rec := Record{TaskID: "t", Kind: "route", SubID: 0, Status: StatusRunning, Attempts: 0}
	if err := db.Upsert(rec); err != nil {
		t.Fatal(err)
	}
	base := time.Now().UTC()
	for i := 0; i < 100; i++ {
		if _, err := db.Heartbeat("t", "route", 0, 0, base.Add(time.Duration(i)*time.Second)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() > 4096 {
		t.Fatalf("taskdb WAL not compacted: %d bytes after 100 heartbeats", info.Size())
	}
	db2 := openDurableDB(t, path, durable.Options{})
	defer db2.Close()
	got, ok, err := db2.Get("t", "route", 0)
	if err != nil || !ok || !got.HeartbeatAt.Equal(base.Add(99*time.Second).Truncate(0)) {
		t.Fatalf("recovered heartbeat = %v ok=%v err=%v", got.HeartbeatAt, ok, err)
	}
}
