package taskdb

import (
	"net"
	"testing"
	"time"
)

func TestMemoryUpsertGetList(t *testing.T) {
	db := NewMemory()
	r1 := Record{TaskID: "t1", Kind: "route", SubID: 0, Status: StatusPending, RangeLo: "10.0.0.0", RangeHi: "10.0.255.255"}
	r2 := Record{TaskID: "t1", Kind: "route", SubID: 1, Status: StatusPending}
	r3 := Record{TaskID: "t1", Kind: "traffic", SubID: 0, Status: StatusPending}
	other := Record{TaskID: "t2", Kind: "route", SubID: 0}
	for _, r := range []Record{r2, r3, r1, other} {
		if err := db.Upsert(r); err != nil {
			t.Fatal(err)
		}
	}
	got, ok, err := db.Get("t1", "route", 0)
	if err != nil || !ok || got.RangeHi != "10.0.255.255" {
		t.Fatalf("Get = %+v %v %v", got, ok, err)
	}
	if _, ok, _ := db.Get("t1", "route", 99); ok {
		t.Error("phantom record")
	}
	recs, err := db.List("t1")
	if err != nil || len(recs) != 3 {
		t.Fatalf("List = %v %v", recs, err)
	}
	// Sorted by kind then sub ID.
	if recs[0].Kind != "route" || recs[0].SubID != 0 || recs[2].Kind != "traffic" {
		t.Errorf("order: %v", recs)
	}

	// Upsert replaces.
	r1.Status = StatusDone
	r1.DurationMs = 123
	db.Upsert(r1)
	got, _, _ = db.Get("t1", "route", 0)
	if got.Status != StatusDone || got.DurationMs != 123 {
		t.Errorf("after upsert: %+v", got)
	}
}

func TestFencedUpsertRejectsStaleAttempt(t *testing.T) {
	db := NewMemory()
	// Attempt 0 runs, master reclaims and bumps the epoch to 1.
	ok, err := db.FencedUpsert(Record{TaskID: "t", Kind: "route", SubID: 0, Status: StatusRunning, Worker: "w0", Attempts: 0})
	if err != nil || !ok {
		t.Fatalf("first write: %v %v", ok, err)
	}
	ok, err = db.FencedUpsert(Record{TaskID: "t", Kind: "route", SubID: 0, Status: StatusPending, Attempts: 1})
	if err != nil || !ok {
		t.Fatalf("reclaim write: %v %v", ok, err)
	}
	// The stale attempt-0 worker finishes late: its write must be rejected.
	ok, err = db.FencedUpsert(Record{TaskID: "t", Kind: "route", SubID: 0, Status: StatusDone, Worker: "w0", Attempts: 0})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("stale attempt overwrote newer epoch")
	}
	got, _, _ := db.Get("t", "route", 0)
	if got.Status != StatusPending || got.Attempts != 1 {
		t.Fatalf("record clobbered by stale attempt: %+v", got)
	}
	// Attempt 1's worker claims and completes: same-epoch writes apply.
	ok, _ = db.FencedUpsert(Record{TaskID: "t", Kind: "route", SubID: 0, Status: StatusRunning, Worker: "w1", Attempts: 1})
	if !ok {
		t.Fatal("same-epoch claim rejected")
	}
	ok, _ = db.FencedUpsert(Record{TaskID: "t", Kind: "route", SubID: 0, Status: StatusDone, Worker: "w1", Attempts: 1})
	if !ok {
		t.Fatal("same-epoch completion rejected")
	}
	got, _, _ = db.Get("t", "route", 0)
	if got.Status != StatusDone || got.Worker != "w1" {
		t.Fatalf("final record: %+v", got)
	}
}

func TestHeartbeatOnlyTouchesMatchingRunningRecord(t *testing.T) {
	db := NewMemory()
	at := time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC)

	// No record yet: miss.
	if ok, err := db.Heartbeat("t", "route", 0, 0, at); err != nil || ok {
		t.Fatalf("heartbeat on missing record: %v %v", ok, err)
	}
	db.Upsert(Record{TaskID: "t", Kind: "route", SubID: 0, Status: StatusRunning, Attempts: 2})

	// Wrong attempt: miss.
	if ok, _ := db.Heartbeat("t", "route", 0, 1, at); ok {
		t.Fatal("stale-attempt heartbeat applied")
	}
	// Matching attempt and running: applied.
	if ok, _ := db.Heartbeat("t", "route", 0, 2, at); !ok {
		t.Fatal("matching heartbeat missed")
	}
	got, _, _ := db.Get("t", "route", 0)
	if !got.HeartbeatAt.Equal(at) {
		t.Fatalf("HeartbeatAt = %v", got.HeartbeatAt)
	}
	// Done record: heartbeat is a no-op.
	db.Upsert(Record{TaskID: "t", Kind: "route", SubID: 0, Status: StatusDone, Attempts: 2})
	if ok, _ := db.Heartbeat("t", "route", 0, 2, at.Add(time.Minute)); ok {
		t.Fatal("heartbeat applied to done record")
	}
}

func TestRPCTaskDB(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	Serve(l, NewMemory())

	c, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	rec := Record{
		TaskID: "t", Kind: "route", SubID: 3, Status: StatusRunning,
		Worker: "w1", StartedAt: time.Now().Truncate(time.Second),
	}
	if err := c.Upsert(rec); err != nil {
		t.Fatal(err)
	}
	got, ok, err := c.Get("t", "route", 3)
	if err != nil || !ok || got.Worker != "w1" || got.Status != StatusRunning {
		t.Fatalf("Get over RPC: %+v %v %v", got, ok, err)
	}
	recs, err := c.List("t")
	if err != nil || len(recs) != 1 {
		t.Fatalf("List over RPC: %v %v", recs, err)
	}
	if _, ok, err := c.Get("t", "route", 9); ok || err != nil {
		t.Errorf("missing record: ok=%v err=%v", ok, err)
	}

	// Fencing and heartbeats across the RPC boundary.
	if ok, err := c.FencedUpsert(Record{TaskID: "t", Kind: "route", SubID: 3, Status: StatusPending, Attempts: 2}); err != nil || !ok {
		t.Fatalf("FencedUpsert over RPC: %v %v", ok, err)
	}
	if ok, err := c.FencedUpsert(Record{TaskID: "t", Kind: "route", SubID: 3, Status: StatusDone, Attempts: 1}); err != nil || ok {
		t.Fatalf("stale FencedUpsert over RPC applied: %v %v", ok, err)
	}
	c.Upsert(Record{TaskID: "t", Kind: "route", SubID: 3, Status: StatusRunning, Attempts: 2})
	at := time.Now().UTC().Truncate(time.Second)
	if ok, err := c.Heartbeat("t", "route", 3, 2, at); err != nil || !ok {
		t.Fatalf("Heartbeat over RPC: %v %v", ok, err)
	}
	got, _, _ = c.Get("t", "route", 3)
	if !got.HeartbeatAt.Equal(at) {
		t.Fatalf("HeartbeatAt over RPC = %v, want %v", got.HeartbeatAt, at)
	}
}
