package taskdb

import (
	"net"
	"testing"
	"time"
)

func TestMemoryUpsertGetList(t *testing.T) {
	db := NewMemory()
	r1 := Record{TaskID: "t1", Kind: "route", SubID: 0, Status: StatusPending, RangeLo: "10.0.0.0", RangeHi: "10.0.255.255"}
	r2 := Record{TaskID: "t1", Kind: "route", SubID: 1, Status: StatusPending}
	r3 := Record{TaskID: "t1", Kind: "traffic", SubID: 0, Status: StatusPending}
	other := Record{TaskID: "t2", Kind: "route", SubID: 0}
	for _, r := range []Record{r2, r3, r1, other} {
		if err := db.Upsert(r); err != nil {
			t.Fatal(err)
		}
	}
	got, ok, err := db.Get("t1", "route", 0)
	if err != nil || !ok || got.RangeHi != "10.0.255.255" {
		t.Fatalf("Get = %+v %v %v", got, ok, err)
	}
	if _, ok, _ := db.Get("t1", "route", 99); ok {
		t.Error("phantom record")
	}
	recs, err := db.List("t1")
	if err != nil || len(recs) != 3 {
		t.Fatalf("List = %v %v", recs, err)
	}
	// Sorted by kind then sub ID.
	if recs[0].Kind != "route" || recs[0].SubID != 0 || recs[2].Kind != "traffic" {
		t.Errorf("order: %v", recs)
	}

	// Upsert replaces.
	r1.Status = StatusDone
	r1.DurationMs = 123
	db.Upsert(r1)
	got, _, _ = db.Get("t1", "route", 0)
	if got.Status != StatusDone || got.DurationMs != 123 {
		t.Errorf("after upsert: %+v", got)
	}
}

func TestRPCTaskDB(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	Serve(l, NewMemory())

	c, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	rec := Record{
		TaskID: "t", Kind: "route", SubID: 3, Status: StatusRunning,
		Worker: "w1", StartedAt: time.Now().Truncate(time.Second),
	}
	if err := c.Upsert(rec); err != nil {
		t.Fatal(err)
	}
	got, ok, err := c.Get("t", "route", 3)
	if err != nil || !ok || got.Worker != "w1" || got.Status != StatusRunning {
		t.Fatalf("Get over RPC: %+v %v %v", got, ok, err)
	}
	recs, err := c.List("t")
	if err != nil || len(recs) != 1 {
		t.Fatalf("List over RPC: %v %v", recs, err)
	}
	if _, ok, err := c.Get("t", "route", 9); ok || err != nil {
		t.Errorf("missing record: ok=%v err=%v", ok, err)
	}
}
