package dsim

import (
	"bytes"
	"fmt"
	"net/netip"
	"slices"
	"time"

	"hoyan/internal/config"
	"hoyan/internal/core"
	"hoyan/internal/ec"
	"hoyan/internal/isis"
	"hoyan/internal/netmodel"
	"hoyan/internal/shard"
	"hoyan/internal/taskdb"
	"hoyan/internal/vsb"
	"hoyan/internal/wire"
)

// ShardVerifier drives sharded route verification over the fleet: the master
// runs the boundary-contract fixpoint (shard.Iterate) while every dirty
// shard's sealed simulation executes as a Kind "shard" subtask on the
// workers, one message per shard per contract-exchange round. The stitched
// global RIB is written as a single-file route result, so the traffic stage
// and CollectRouteResults consume it exactly like a whole-network route
// task. Results are byte-identical to the whole-network path; the win is
// that each subtask simulates only a shard's worth of devices, and a
// contained what-if re-runs only its touched shards.
type ShardVerifier struct {
	m         *Master
	snapKey   string
	net       *config.Network
	inputs    []netmodel.Route
	opts      core.Options
	numShards int
	maxRounds int

	part         *shard.Partition
	ecs          *ec.RouteECs
	repsByShard  [][]netmodel.Route
	baseIGP      *isis.Result
	baseState    *shard.State
	baseExpanded [][]netmodel.Route
	ownersByDev  map[string][]string
	met          *shard.Metrics

	// LastRounds and LastReused describe the most recent Base/WhatIf call.
	LastRounds int
	LastReused int
	// BaseFellBack records that the base fixpoint did not converge and the
	// whole-network path produced the base result.
	BaseFellBack bool
}

// NewShardVerifier prepares a sharded verification over one uploaded
// snapshot. numShards is clamped to the topology's region count; maxRounds
// <= 0 uses shard.DefaultMaxRounds. net must be the same network the
// snapshot encodes (the caller uploads it via UploadSnapshot).
func (m *Master) NewShardVerifier(snapKey string, net *config.Network, inputs []netmodel.Route, numShards, maxRounds int, opts core.Options) *ShardVerifier {
	if maxRounds <= 0 {
		maxRounds = shard.DefaultMaxRounds
	}
	return &ShardVerifier{
		m: m, snapKey: snapKey, net: net, inputs: inputs, opts: opts,
		numShards: numShards, maxRounds: maxRounds,
		part: shard.Compute(net.Topo, numShards),
		met:  shard.NewMetrics(m.reg),
	}
}

// Partition exposes the computed device partition.
func (v *ShardVerifier) Partition() *shard.Partition { return v.part }

// Metrics exposes the shard instrument bundle.
func (v *ShardVerifier) Metrics() *shard.Metrics { return v.met }

// ContractRoutes reports the converged base contract size (0 after a base
// fallback).
func (v *ShardVerifier) ContractRoutes() int {
	if v.baseState == nil {
		return 0
	}
	return v.baseState.ContractRoutes()
}

// runner builds a RoundFn that enqueues one shard subtask per dirty shard
// and waits for the round to finish. SubIDs are allocated from a sequence
// local to the task so every (taskID, "shard", sub) across rounds is unique,
// letting Wait count done records cumulatively.
func (v *ShardVerifier) runner(taskID string, downLinks []netmodel.LinkID, downNodes []string) shard.RoundFn {
	total := 0
	return func(round int, dirty []int, inbound [][]netmodel.BoundaryAdv) ([][]netmodel.BoundaryAdv, [][]netmodel.Route, error) {
		base := total
		for k, i := range dirty {
			sub := base + k
			var buf bytes.Buffer
			if err := wire.EncodeShardInput(&buf, &wire.ShardInput{
				Routes:  v.repsByShard[i],
				Inbound: inbound[i],
			}); err != nil {
				return nil, nil, err
			}
			ik := inputKey(taskID, "shard", sub)
			if err := v.m.svc.Store.Put(ik, buf.Bytes()); err != nil {
				return nil, nil, err
			}
			v.m.metrics.UploadBytes.Add(int64(buf.Len()))
			msg := SubtaskMsg{
				TaskID: taskID, Kind: "shard", SubID: sub,
				SnapshotKey: v.snapKey, InputKey: ik,
				ResultKey: resultKey(taskID, "shard", sub),
				Options:   v.opts,
				NumShards: v.part.NumShards(), ShardID: i, ShardRound: round,
				DownLinks: downLinks, DownNodes: downNodes,
			}
			rec := taskdb.Record{
				TaskID: taskID, Kind: "shard", SubID: sub,
				Status: taskdb.StatusPending, EnqueuedAt: time.Now(),
			}
			if err := v.m.enqueueSubtask(msg, rec, v.m.metrics.EnqueuedShard); err != nil {
				return nil, nil, err
			}
		}
		total += len(dirty)
		if err := v.m.Wait(taskID, "shard", total); err != nil {
			return nil, nil, err
		}
		exports := make([][]netmodel.BoundaryAdv, len(dirty))
		rows := make([][]netmodel.Route, len(dirty))
		for k := range dirty {
			data, err := v.m.svc.Store.Get(resultKey(taskID, "shard", base+k))
			if err != nil {
				return nil, nil, fmt.Errorf("loading shard result %d: %w", base+k, err)
			}
			res, err := wire.DecodeShardResult(bytes.NewReader(data))
			if err != nil {
				return nil, nil, err
			}
			exports[k] = res.Exports
			rows[k] = res.Rows
		}
		return exports, rows, nil
	}
}

// Base runs the base-network contract fixpoint across the fleet and writes
// the stitched global RIB as taskID's single route-result file. When the
// fixpoint does not converge within maxRounds it falls back to the
// whole-network distributed path (counted in shard_full_fallbacks_total),
// with fallbackSubtasks route subtasks; either way the result files are
// byte-identical to a whole-network run and the returned RouteTask feeds
// StartTrafficSimulation and CollectRouteResults unchanged.
func (v *ShardVerifier) Base(taskID string, fallbackSubtasks int) (*RouteTask, error) {
	prof := v.opts.Profiles
	if prof == nil {
		prof = vsb.Defaults()
	}
	reps := v.inputs
	if !v.opts.DisableRouteECs {
		v.ecs = ec.ComputeRouteECs(v.net, prof, v.inputs, v.opts.Parallelism)
		reps = v.ecs.Representatives()
	}
	v.repsByShard = make([][]netmodel.Route, v.part.NumShards())
	for _, r := range reps {
		i := v.part.ShardOf(r.Device)
		v.repsByShard[i] = append(v.repsByShard[i], r)
	}
	v.baseIGP = isis.Compute(v.net.Topo, isis.Options{
		UseTEMetric: v.opts.UseTEMetric,
		Parallelism: v.opts.Parallelism,
	})

	allDirty := make([]int, v.part.NumShards())
	for i := range allDirty {
		allDirty[i] = i
	}
	st, err := shard.Iterate(v.part, v.maxRounds, allDirty, nil, v.runner(taskID, nil, nil))
	if err != nil {
		return nil, err
	}
	v.met.Rounds.Add(int64(st.Rounds))
	v.met.SeamMismatches.Add(int64(st.SeamChanges))
	v.LastRounds = st.Rounds
	v.LastReused = 0
	if !st.Converged {
		v.met.FullFallbacks.Inc()
		v.BaseFellBack = true
		rt, err := v.m.StartRouteSimulation(taskID, v.snapKey, v.inputs, fallbackSubtasks, v.opts)
		if err != nil {
			return nil, err
		}
		if err := v.m.Wait(taskID, "route", rt.Subtasks); err != nil {
			return nil, err
		}
		return rt, nil
	}
	v.met.ContractRoutes.Set(float64(st.ContractRoutes()))
	v.baseState = st
	v.baseExpanded = make([][]netmodel.Route, st.NumShards)
	var preRows []netmodel.Route
	for i := range st.Rows {
		// Each cached segment is sorted once here so every later stitch is a
		// merge of sorted runs instead of a full re-sort.
		v.baseExpanded[i] = shard.ExpandRows(v.ecs, st.Rows[i])
		slices.SortFunc(v.baseExpanded[i], netmodel.CompareRoutes)
		preRows = append(preRows, st.Rows[i]...)
	}
	v.ownersByDev = shard.NextHopOwners(v.net.Topo, preRows)
	return v.writeRouteResult(taskID, netmodel.MergeSortedRoutes(v.baseExpanded))
}

// WhatIf verifies one topology-delta scenario through the sharded path,
// writing its stitched rows as scenTaskID's single route-result file. The
// delta must be provably contained in its touched shards; otherwise
// shard.ErrNotContained is returned (with shard_full_fallbacks_total bumped)
// and the caller should run the scenario whole-network via
// StartRouteScenario. Only down-deltas ride the subtask messages, so
// repair (up) and input-route deltas always fall back.
func (v *ShardVerifier) WhatIf(scenTaskID string, delta core.Delta) (*RouteTask, error) {
	if v.baseState == nil {
		return nil, shard.ErrNotContained
	}
	if len(delta.LinksUp)+len(delta.NodesUp) > 0 {
		v.met.FullFallbacks.Inc()
		return nil, shard.ErrNotContained
	}
	touched, ok := shard.TouchedShards(v.part, delta)
	if !ok {
		v.met.FullFallbacks.Inc()
		return nil, shard.ErrNotContained
	}
	scratch := v.net.Clone()
	for _, id := range delta.LinksDown {
		if !scratch.Topo.SetLinkUp(id, false) {
			return nil, fmt.Errorf("dsim: scenario link %v not in network", id)
		}
	}
	for _, n := range delta.NodesDown {
		if !scratch.Topo.SetNodeUp(n, false) {
			return nil, fmt.Errorf("dsim: scenario node %s not in network", n)
		}
	}
	scenIGP := isis.Compute(scratch.Topo, isis.Options{
		UseTEMetric: v.opts.UseTEMetric,
		Parallelism: v.opts.Parallelism,
	})
	if !shard.Contained(v.net, v.part, touched, v.baseIGP, scenIGP, delta, v.ownersByDev) {
		v.met.FullFallbacks.Inc()
		return nil, shard.ErrNotContained
	}
	dirty := make([]int, 0, len(touched))
	for i := range touched {
		dirty = append(dirty, i)
	}
	slices.Sort(dirty)
	st, err := shard.Iterate(v.part, v.maxRounds, dirty, v.baseState,
		v.runner(scenTaskID, delta.LinksDown, delta.NodesDown))
	if err != nil {
		return nil, err
	}
	v.met.Rounds.Add(int64(st.Rounds))
	v.met.SeamMismatches.Add(int64(st.SeamChanges))
	v.LastRounds = st.Rounds
	if !st.Converged {
		v.met.FullFallbacks.Inc()
		return nil, shard.ErrNotContained
	}
	v.met.ContractRoutes.Set(float64(st.ContractRoutes()))
	segs := make([][]netmodel.Route, len(st.Rows))
	reused := 0
	for i := range st.Rows {
		if shard.SameRows(st.Rows[i], v.baseState.Rows[i]) {
			segs[i] = v.baseExpanded[i] // already sorted
			reused++
			continue
		}
		segs[i] = shard.ExpandRows(v.ecs, st.Rows[i])
		slices.SortFunc(segs[i], netmodel.CompareRoutes)
	}
	v.LastReused = reused
	return v.writeRouteResult(scenTaskID, netmodel.MergeSortedRoutes(segs))
}

// writeRouteResult stores stitched, globally-sorted rows as the task's
// single route-result file and records a done route subtask covering their
// full address range, so traffic subtasks (ordering heuristic) and
// CollectRouteResults read the sharded result like any other route task.
func (v *ShardVerifier) writeRouteResult(taskID string, rows []netmodel.Route) (*RouteTask, error) {
	var buf bytes.Buffer
	if err := core.EncodeRoutes(&buf, rows); err != nil {
		return nil, err
	}
	if err := v.m.svc.Store.Put(resultKey(taskID, "route", 0), buf.Bytes()); err != nil {
		return nil, err
	}
	v.m.metrics.UploadBytes.Add(int64(buf.Len()))
	rec := taskdb.Record{
		TaskID: taskID, Kind: "route", SubID: 0, Status: taskdb.StatusDone,
		EnqueuedAt: time.Now(), FinishedAt: time.Now(),
	}
	var lo, hi netip.Addr
	for i := range rows {
		l := rows[i].Prefix.Masked().Addr()
		h := netmodel.LastAddr(rows[i].Prefix)
		if !lo.IsValid() || l.Compare(lo) < 0 {
			lo = l
		}
		if !hi.IsValid() || h.Compare(hi) > 0 {
			hi = h
		}
	}
	if lo.IsValid() {
		rec.RangeLo, rec.RangeHi = lo.String(), hi.String()
	}
	if err := v.m.svc.Tasks.Upsert(rec); err != nil {
		return nil, err
	}
	return &RouteTask{ID: taskID, SnapshotKey: v.snapKey, Subtasks: 1}, nil
}
