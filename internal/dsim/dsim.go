// Package dsim implements Hoyan's distributed simulation framework (§3.2,
// Figure 3): a master splits a simulation task into subtasks over disjoint
// input subsets, uploads each subset to the object store, and pushes one
// message per subtask into the message queue; working servers consume
// messages, run the core engine on their subset, and write result files; the
// master monitors the subtask database, re-enqueues failures, and aggregates
// results.
//
// The §3.2 *ordering heuristic* is implemented exactly as described: input
// routes are ordered by the last address of their prefix and split into
// contiguous subsets whose covered address range is recorded in the task DB;
// input flows are ordered by destination address, so a traffic subtask only
// loads the RIB files of route subtasks whose recorded range overlaps its
// own destination range.
package dsim

import (
	"encoding/json"
	"fmt"
	"net/netip"

	"hoyan/internal/core"
	"hoyan/internal/mq"
	"hoyan/internal/netmodel"
	"hoyan/internal/objstore"
	"hoyan/internal/taskdb"
	"hoyan/internal/wire"
	"slices"
)

// Topic is the message-queue topic subtask messages travel on.
const Topic = "hoyan/subtasks"

// Services bundles the three substrate handles every framework role needs.
type Services struct {
	Queue mq.Queue
	Store objstore.Store
	Tasks taskdb.DB
}

// Strategy selects how traffic subtasks decide which route-subtask RIB files
// to load.
type Strategy string

// Strategies evaluated in Figure 5(b)/(d).
const (
	// StrategyOrdered is the §3.2 ordering heuristic: flows sorted by
	// destination, subtask ranges overlap-tested against route ranges.
	StrategyOrdered Strategy = "ordered"
	// StrategyRandom partitions flows in input (effectively random) order;
	// range overlap is still tested but covers nearly everything.
	StrategyRandom Strategy = "random"
	// StrategyBaseline loads every RIB file unconditionally.
	StrategyBaseline Strategy = "baseline"
)

// SubtaskMsg is the queue payload describing one subtask.
type SubtaskMsg struct {
	TaskID      string       `json:"task_id"`
	Kind        string       `json:"kind"` // "route" or "traffic"
	SubID       int          `json:"sub_id"`
	SnapshotKey string       `json:"snapshot_key"`
	InputKey    string       `json:"input_key"`
	ResultKey   string       `json:"result_key"`
	Options     core.Options `json:"options"`

	// Attempt is the attempt epoch this message belongs to (0 for the first
	// enqueue, bumped by the master on every re-enqueue). Workers stamp it
	// into their task-DB writes so a stale attempt — a worker the master
	// already presumed dead and reclaimed — cannot overwrite the status of
	// the attempt that superseded it (see taskdb.DB.FencedUpsert).
	Attempt int `json:"attempt,omitempty"`

	// Trace propagation: the master stamps its enqueue span's identity and
	// the enqueue wall time here, so the worker parents its subtask span (and
	// a synthetic mq.wait span) under the master's trace — one simulation run
	// yields a single end-to-end trace. Empty when tracing is off; the fields
	// never influence simulation results.
	TraceID          string `json:"trace_id,omitempty"`
	ParentSpan       string `json:"parent_span,omitempty"`
	EnqueuedUnixNano int64  `json:"enqueued_unix_nano,omitempty"`

	// Traffic subtasks only.
	RouteTaskID   string   `json:"route_task_id,omitempty"`
	RouteSubtasks int      `json:"route_subtasks,omitempty"`
	Strategy      Strategy `json:"strategy,omitempty"`

	// Shard subtasks only (Kind "shard"): the worker re-derives the device
	// partition from the snapshot topology (NumShards shards), seals shard
	// ShardID, and replays the inbound boundary contract carried in the
	// input file. ShardRound distinguishes contract-exchange rounds in
	// traces and logs; it never influences results.
	NumShards  int `json:"num_shards,omitempty"`
	ShardID    int `json:"shard_id,omitempty"`
	ShardRound int `json:"shard_round,omitempty"`

	// Scenario delta: links/nodes the worker takes down on a clone of the
	// restored snapshot before simulating. Honored by route, traffic, and
	// shard subtasks, so a what-if sweep rides one shared snapshot instead
	// of uploading a snapshot per scenario.
	DownLinks []netmodel.LinkID `json:"down_links,omitempty"`
	DownNodes []string          `json:"down_nodes,omitempty"`
}

func (m SubtaskMsg) key() string {
	return fmt.Sprintf("%s/%s/%d", m.TaskID, m.Kind, m.SubID)
}

func (m SubtaskMsg) encode() (mq.Message, error) {
	payload, err := json.Marshal(m)
	if err != nil {
		return mq.Message{}, fmt.Errorf("dsim: encoding subtask message %s: %w", m.key(), err)
	}
	return mq.Message{ID: m.key(), Kind: m.Kind, Payload: payload}, nil
}

func decodeMsg(m mq.Message) (SubtaskMsg, error) {
	var out SubtaskMsg
	if err := json.Unmarshal(m.Payload, &out); err != nil {
		return out, fmt.Errorf("dsim: decoding subtask message %s: %w", m.ID, err)
	}
	return out, nil
}

// Object-store key layout.
func snapshotKey(taskID string) string { return "tasks/" + taskID + "/snapshot" }
func inputKey(taskID, kind string, sub int) string {
	return fmt.Sprintf("tasks/%s/%s/%d/input", taskID, kind, sub)
}
func resultKey(taskID, kind string, sub int) string {
	return fmt.Sprintf("tasks/%s/%s/%d/result", taskID, kind, sub)
}

// msgKey is where the master persists each subtask's message payload, so a
// restarted master can reconstruct and re-enqueue in-flight subtasks
// (Master.Resume) without re-deriving inputs it no longer holds in memory.
func msgKey(taskID, kind string, sub int) string {
	return fmt.Sprintf("tasks/%s/%s/%d/msg", taskID, kind, sub)
}

// splitRoutes orders input routes by the last address of their prefix and
// cuts them into n contiguous subsets, keeping routes with the same prefix
// in the same subset. It returns the subsets with their covered ranges.
func splitRoutes(inputs []netmodel.Route, n int) []routeSubset {
	routes := append([]netmodel.Route(nil), inputs...)
	slices.SortStableFunc(routes, func(a, b netmodel.Route) int {
		if c := netmodel.LastAddr(a.Prefix).Compare(netmodel.LastAddr(b.Prefix)); c != 0 {
			return c
		}
		return netmodel.CompareRoutes(a, b)
	})
	if n < 1 {
		n = 1
	}
	if n > len(routes) {
		n = len(routes)
	}
	var out []routeSubset
	if n == 0 {
		return out
	}
	per := (len(routes) + n - 1) / n
	for start := 0; start < len(routes); {
		end := start + per
		if end > len(routes) {
			end = len(routes)
		}
		// Never split a prefix across subsets.
		for end < len(routes) && routes[end].Prefix == routes[end-1].Prefix {
			end++
		}
		sub := routeSubset{Routes: routes[start:end]}
		sub.Lo = routes[start].Prefix.Masked().Addr()
		sub.Hi = netmodel.LastAddr(routes[end-1].Prefix)
		// The range must cover every member prefix (shorter prefixes may
		// start earlier / end later than the sort order suggests).
		for _, r := range sub.Routes {
			if a := r.Prefix.Masked().Addr(); a.Compare(sub.Lo) < 0 {
				sub.Lo = a
			}
			if a := netmodel.LastAddr(r.Prefix); a.Compare(sub.Hi) > 0 {
				sub.Hi = a
			}
		}
		out = append(out, sub)
		start = end
	}
	return out
}

type routeSubset struct {
	Routes []netmodel.Route
	Lo, Hi netip.Addr
}

// splitFlows orders flows by destination address (unless the random
// strategy keeps input order) and cuts them into n contiguous subsets.
func splitFlows(flows []netmodel.Flow, n int, strategy Strategy) []flowSubset {
	fs := append([]netmodel.Flow(nil), flows...)
	if strategy != StrategyRandom {
		slices.SortStableFunc(fs, netmodel.CompareFlows)
	}
	if n < 1 {
		n = 1
	}
	if n > len(fs) {
		n = len(fs)
	}
	var out []flowSubset
	if n == 0 {
		return out
	}
	per := (len(fs) + n - 1) / n
	for start := 0; start < len(fs); start += per {
		end := start + per
		if end > len(fs) {
			end = len(fs)
		}
		sub := flowSubset{Flows: fs[start:end]}
		sub.Lo, sub.Hi = fs[start].Dst, fs[start].Dst
		for _, f := range sub.Flows {
			if f.Dst.Compare(sub.Lo) < 0 {
				sub.Lo = f.Dst
			}
			if f.Dst.Compare(sub.Hi) > 0 {
				sub.Hi = f.Dst
			}
		}
		out = append(out, sub)
	}
	return out
}

type flowSubset struct {
	Flows  []netmodel.Flow
	Lo, Hi netip.Addr
}

// TrafficResultFile is the wire form of one traffic subtask's result. The
// struct lives in internal/wire so result files share the framework's compact
// binary codec (legacy JSON files still decode).
type TrafficResultFile = wire.TrafficResult

// LoadEntry is one link's simulated volume.
type LoadEntry = wire.LoadEntry

// PathEntry is one flow's simulated path.
type PathEntry = wire.PathEntry

// PathWire is the wire form of netmodel.Path.
type PathWire = wire.Path
