package dsim

import (
	"context"
	"fmt"
	"sync"

	"hoyan/internal/mq"
	"hoyan/internal/objstore"
	"hoyan/internal/taskdb"
	"hoyan/internal/telemetry"
)

// LocalCluster is a single-process deployment of the framework: in-memory
// substrates plus a pool of worker goroutines. Benchmarks use it to sweep the
// worker count (Figure 5); tests use it for end-to-end verification. The
// same Master/Worker code runs unchanged against the TCP substrates for
// multi-process deployments (cmd/hoyan-master, cmd/hoyan-worker).
type LocalCluster struct {
	Svc     Services
	Master  *Master
	Workers []*Worker

	// MasterReg / WorkerRegs are the per-role metric registries (nil/empty
	// when the cluster was started without telemetry). The master registry
	// also carries the shared substrates' counters (queue, store).
	MasterReg  *telemetry.Registry
	WorkerRegs []*telemetry.Registry

	cancel context.CancelFunc
	wg     sync.WaitGroup
	mem    *mq.Memory
}

// LocalOptions configures StartLocalOptions.
type LocalOptions struct {
	// Workers is the worker-goroutine count.
	Workers int
	// Store / Tasks reuse existing substrates (nil creates fresh in-memory
	// ones); the queue is always fresh.
	Store objstore.Store
	Tasks taskdb.DB
	// Telemetry gives the master and every worker a registry and a tracer,
	// instruments the in-memory substrates, and enables span collection —
	// gather the results with MetricsSnapshot and TraceSpans.
	Telemetry bool
}

// StartLocal creates in-memory services and starts n workers.
func StartLocal(n int) *LocalCluster {
	return StartLocalOptions(LocalOptions{Workers: n})
}

// StartLocalWithStore starts a cluster of n workers over an existing object
// store and task DB (but a fresh queue), so successive runs can reuse
// already-computed route-simulation results — the Figure 5(b) sweep re-runs
// traffic simulation for several worker counts against one route result set.
func StartLocalWithStore(n int, store objstore.Store, tasks taskdb.DB) *LocalCluster {
	return StartLocalOptions(LocalOptions{Workers: n, Store: store, Tasks: tasks})
}

// StartLocalOptions starts a cluster described by opts.
func StartLocalOptions(opts LocalOptions) *LocalCluster {
	if opts.Store == nil {
		opts.Store = objstore.NewMemory()
	}
	if opts.Tasks == nil {
		opts.Tasks = taskdb.NewMemory()
	}
	memq := mq.NewMemory()
	svc := Services{
		Queue: memq,
		Store: opts.Store,
		Tasks: opts.Tasks,
	}
	ctx, cancel := context.WithCancel(context.Background())
	c := &LocalCluster{Svc: svc, Master: NewMaster(svc), cancel: cancel, mem: memq}
	if opts.Telemetry {
		c.MasterReg = telemetry.NewRegistry()
		c.Master.Tracer = telemetry.NewTracer("master")
		c.Master.Instrument(c.MasterReg)
		memq.Instrument(c.MasterReg)
		if ms, ok := opts.Store.(*objstore.Memory); ok {
			ms.Instrument(c.MasterReg)
		}
	}
	for i := 0; i < opts.Workers; i++ {
		w := NewWorker(fmt.Sprintf("worker-%d", i), svc)
		if opts.Telemetry {
			reg := telemetry.NewRegistry()
			w.Tracer = telemetry.NewTracer(w.Name)
			w.Instrument(reg)
			c.WorkerRegs = append(c.WorkerRegs, reg)
		}
		c.Workers = append(c.Workers, w)
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			w.Run(ctx)
		}()
	}
	return c
}

// CacheStats aggregates cache and transfer counters across the cluster's
// workers. Safe to call while the cluster runs.
func (c *LocalCluster) CacheStats() CacheStats {
	var s CacheStats
	for _, w := range c.Workers {
		s.Add(w.Stats())
	}
	return s
}

// MetricsSnapshot merges the master's and every worker's registry into one
// fleet-wide snapshot (nil without telemetry). Same-name series with the same
// labels are summed, so per-worker counters read as fleet totals.
func (c *LocalCluster) MetricsSnapshot() telemetry.Snapshot {
	var snap telemetry.Snapshot
	if c.MasterReg != nil {
		snap = c.MasterReg.Gather()
	}
	for _, reg := range c.WorkerRegs {
		snap = snap.Merge(reg.Gather())
	}
	return snap
}

// TraceSpans gathers the run's spans across the master and every worker (nil
// without telemetry), ready for telemetry.WriteChromeTrace.
func (c *LocalCluster) TraceSpans() []telemetry.SpanRecord {
	var out []telemetry.SpanRecord
	out = append(out, c.Master.Tracer.Spans()...)
	for _, w := range c.Workers {
		out = append(out, w.Tracer.Spans()...)
	}
	return out
}

// Stop terminates the workers and waits for them to exit.
func (c *LocalCluster) Stop() {
	c.cancel()
	c.mem.Close()
	c.wg.Wait()
}
