package dsim

import (
	"context"
	"fmt"
	"sync"

	"hoyan/internal/mq"
	"hoyan/internal/objstore"
	"hoyan/internal/taskdb"
)

// LocalCluster is a single-process deployment of the framework: in-memory
// substrates plus a pool of worker goroutines. Benchmarks use it to sweep the
// worker count (Figure 5); tests use it for end-to-end verification. The
// same Master/Worker code runs unchanged against the TCP substrates for
// multi-process deployments (cmd/hoyan-master, cmd/hoyan-worker).
type LocalCluster struct {
	Svc     Services
	Master  *Master
	Workers []*Worker

	cancel context.CancelFunc
	wg     sync.WaitGroup
	mem    *mq.Memory
}

// StartLocal creates in-memory services and starts n workers.
func StartLocal(n int) *LocalCluster {
	return StartLocalWithStore(n, objstore.NewMemory(), taskdb.NewMemory())
}

// StartLocalWithStore starts a cluster of n workers over an existing object
// store and task DB (but a fresh queue), so successive runs can reuse
// already-computed route-simulation results — the Figure 5(b) sweep re-runs
// traffic simulation for several worker counts against one route result set.
func StartLocalWithStore(n int, store objstore.Store, tasks taskdb.DB) *LocalCluster {
	memq := mq.NewMemory()
	svc := Services{
		Queue: memq,
		Store: store,
		Tasks: tasks,
	}
	ctx, cancel := context.WithCancel(context.Background())
	c := &LocalCluster{Svc: svc, Master: NewMaster(svc), cancel: cancel, mem: memq}
	for i := 0; i < n; i++ {
		w := NewWorker(fmt.Sprintf("worker-%d", i), svc)
		c.Workers = append(c.Workers, w)
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			w.Run(ctx)
		}()
	}
	return c
}

// CacheStats aggregates cache and transfer counters across the cluster's
// workers. Safe to call while the cluster runs.
func (c *LocalCluster) CacheStats() CacheStats {
	var s CacheStats
	for _, w := range c.Workers {
		s.Add(w.Stats())
	}
	return s
}

// Stop terminates the workers and waits for them to exit.
func (c *LocalCluster) Stop() {
	c.cancel()
	c.mem.Close()
	c.wg.Wait()
}
