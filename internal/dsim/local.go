package dsim

import (
	"context"
	"fmt"
	"path/filepath"
	"sync"

	"hoyan/internal/durable"
	"hoyan/internal/mq"
	"hoyan/internal/objstore"
	"hoyan/internal/taskdb"
	"hoyan/internal/telemetry"
)

// LocalCluster is a single-process deployment of the framework: in-memory
// substrates plus a pool of worker goroutines. Benchmarks use it to sweep the
// worker count (Figure 5); tests use it for end-to-end verification. The
// same Master/Worker code runs unchanged against the TCP substrates for
// multi-process deployments (cmd/hoyan-master, cmd/hoyan-worker).
type LocalCluster struct {
	Svc     Services
	Master  *Master
	Workers []*Worker

	// MasterReg / WorkerRegs are the per-role metric registries (nil/empty
	// when the cluster was started without telemetry). The master registry
	// also carries the shared substrates' counters (queue, store).
	MasterReg  *telemetry.Registry
	WorkerRegs []*telemetry.Registry

	cancel context.CancelFunc
	wg     sync.WaitGroup
	// closeSubstrates shuts down whatever substrates the cluster owns (the
	// queue always; disk-backed store and task DB when durable).
	closeSubstrates func()
}

// LocalOptions configures StartLocalOptions.
type LocalOptions struct {
	// Workers is the worker-goroutine count.
	Workers int
	// Store / Tasks reuse existing substrates (nil creates fresh in-memory
	// ones); the queue is always fresh.
	Store objstore.Store
	Tasks taskdb.DB
	// Telemetry gives the master and every worker a registry and a tracer,
	// instruments the substrates, and enables span collection — gather the
	// results with MetricsSnapshot and TraceSpans.
	Telemetry bool

	// DataDir, when set (StartLocalDurable only), backs all three substrates
	// with WAL-based disk persistence rooted there: the object store under
	// <DataDir>/objstore, the task DB at <DataDir>/taskdb.wal, the queue at
	// <DataDir>/mq.wal. Explicit Store/Tasks handles still win over the
	// disk-backed defaults.
	DataDir string
	// Fsync is the durability policy for DataDir-backed substrates (zero
	// value durable.SyncInterval).
	Fsync durable.Policy
}

// StartLocal creates in-memory services and starts n workers.
func StartLocal(n int) *LocalCluster {
	return StartLocalOptions(LocalOptions{Workers: n})
}

// StartLocalWithStore starts a cluster of n workers over an existing object
// store and task DB (but a fresh queue), so successive runs can reuse
// already-computed route-simulation results — the Figure 5(b) sweep re-runs
// traffic simulation for several worker counts against one route result set.
func StartLocalWithStore(n int, store objstore.Store, tasks taskdb.DB) *LocalCluster {
	return StartLocalOptions(LocalOptions{Workers: n, Store: store, Tasks: tasks})
}

// StartLocalOptions starts a cluster described by opts over in-memory
// substrates (opts.DataDir is ignored here; use StartLocalDurable for
// disk-backed clusters).
func StartLocalOptions(opts LocalOptions) *LocalCluster {
	if opts.Store == nil {
		opts.Store = objstore.NewMemory()
	}
	if opts.Tasks == nil {
		opts.Tasks = taskdb.NewMemory()
	}
	memq := mq.NewMemory()
	svc := Services{
		Queue: memq,
		Store: opts.Store,
		Tasks: opts.Tasks,
	}
	return startCluster(opts, svc, memq.Close)
}

// StartLocalDurable starts a cluster whose substrates persist under
// opts.DataDir: a restart-safe single-process deployment. With an empty
// DataDir it falls back to StartLocalOptions. The returned cluster's Stop
// closes the substrates cleanly (WALs flushed); state survives and a later
// StartLocalDurable over the same directory recovers it.
func StartLocalDurable(opts LocalOptions) (*LocalCluster, error) {
	if opts.DataDir == "" {
		return StartLocalOptions(opts), nil
	}
	dopts := durable.Options{Fsync: opts.Fsync}
	var closers []func()
	if opts.Store == nil {
		disk, err := objstore.OpenDisk(filepath.Join(opts.DataDir, "objstore"), dopts)
		if err != nil {
			return nil, err
		}
		opts.Store = disk
		closers = append(closers, func() { disk.Close() })
	}
	if opts.Tasks == nil {
		db, err := taskdb.OpenDurable(filepath.Join(opts.DataDir, "taskdb.wal"), dopts)
		if err != nil {
			return nil, err
		}
		opts.Tasks = db
		closers = append(closers, func() { db.Close() })
	}
	q, err := mq.OpenDurable(filepath.Join(opts.DataDir, "mq.wal"), dopts)
	if err != nil {
		for _, c := range closers {
			c()
		}
		return nil, err
	}
	svc := Services{Queue: q, Store: opts.Store, Tasks: opts.Tasks}
	return startCluster(opts, svc, func() {
		q.Close()
		for _, c := range closers {
			c()
		}
	}), nil
}

// registryInstrumenter is implemented by every substrate that can re-bind
// its counters to a telemetry registry (mq.Memory, mq.Durable,
// objstore.Memory, objstore.Disk, taskdb.Durable).
type registryInstrumenter interface {
	Instrument(reg *telemetry.Registry)
}

// startCluster is the common tail of StartLocalOptions/StartLocalDurable:
// telemetry wiring and the worker pool.
func startCluster(opts LocalOptions, svc Services, closeSubstrates func()) *LocalCluster {
	ctx, cancel := context.WithCancel(context.Background())
	c := &LocalCluster{Svc: svc, Master: NewMaster(svc), cancel: cancel, closeSubstrates: closeSubstrates}
	if opts.Telemetry {
		c.MasterReg = telemetry.NewRegistry()
		c.Master.Tracer = telemetry.NewTracer("master")
		c.Master.Instrument(c.MasterReg)
		for _, sub := range []any{svc.Queue, svc.Store, svc.Tasks} {
			if ri, ok := sub.(registryInstrumenter); ok {
				ri.Instrument(c.MasterReg)
			}
		}
	}
	for i := 0; i < opts.Workers; i++ {
		w := NewWorker(fmt.Sprintf("worker-%d", i), svc)
		if opts.Telemetry {
			reg := telemetry.NewRegistry()
			w.Tracer = telemetry.NewTracer(w.Name)
			w.Instrument(reg)
			c.WorkerRegs = append(c.WorkerRegs, reg)
		}
		c.Workers = append(c.Workers, w)
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			w.Run(ctx)
		}()
	}
	return c
}

// CacheStats aggregates cache and transfer counters across the cluster's
// workers. Safe to call while the cluster runs.
func (c *LocalCluster) CacheStats() CacheStats {
	var s CacheStats
	for _, w := range c.Workers {
		s.Add(w.Stats())
	}
	return s
}

// MetricsSnapshot merges the master's and every worker's registry into one
// fleet-wide snapshot (nil without telemetry). Same-name series with the same
// labels are summed, so per-worker counters read as fleet totals.
func (c *LocalCluster) MetricsSnapshot() telemetry.Snapshot {
	var snap telemetry.Snapshot
	if c.MasterReg != nil {
		snap = c.MasterReg.Gather()
	}
	for _, reg := range c.WorkerRegs {
		snap = snap.Merge(reg.Gather())
	}
	return snap
}

// TraceSpans gathers the run's spans across the master and every worker (nil
// without telemetry), ready for telemetry.WriteChromeTrace.
func (c *LocalCluster) TraceSpans() []telemetry.SpanRecord {
	var out []telemetry.SpanRecord
	out = append(out, c.Master.Tracer.Spans()...)
	for _, w := range c.Workers {
		out = append(out, w.Tracer.Spans()...)
	}
	return out
}

// Stop terminates the workers and waits for them to exit, then shuts down
// the substrates the cluster owns (durable ones flush their WALs, so state
// survives for a later StartLocalDurable over the same directory).
func (c *LocalCluster) Stop() {
	c.cancel()
	if c.closeSubstrates != nil {
		c.closeSubstrates()
	}
	c.wg.Wait()
}
