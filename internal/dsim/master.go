package dsim

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
	"time"

	"hoyan/internal/config"
	"hoyan/internal/core"
	"hoyan/internal/netmodel"
	"hoyan/internal/taskdb"
	"hoyan/internal/traffic"
)

// Master coordinates a simulation task: it prepares subtasks, enqueues them,
// monitors the task DB, re-enqueues failures, and aggregates results.
type Master struct {
	svc Services

	// MaxAttempts bounds per-subtask retries (the paper's master resends a
	// failed subtask's message back to the queue).
	MaxAttempts int
	// PollInterval is the task-DB monitoring cadence.
	PollInterval time.Duration
	// Timeout bounds a whole Wait call.
	Timeout time.Duration

	// msgs remembers each enqueued subtask message so failures can be
	// resent verbatim.
	msgs map[string]SubtaskMsg
}

// NewMaster creates a master over the given substrate services.
func NewMaster(svc Services) *Master {
	return &Master{
		svc: svc, MaxAttempts: 3, PollInterval: 5 * time.Millisecond, Timeout: 10 * time.Minute,
		msgs: make(map[string]SubtaskMsg),
	}
}

// RouteTask handles a started distributed route simulation.
type RouteTask struct {
	ID          string
	SnapshotKey string
	Subtasks    int
}

// UploadSnapshot stores the network snapshot once; route and traffic tasks
// of the same change verification share it.
func (m *Master) UploadSnapshot(taskID string, net *config.Network) (string, error) {
	var buf bytes.Buffer
	if err := core.TakeSnapshot(net).Encode(&buf); err != nil {
		return "", fmt.Errorf("dsim: encoding snapshot: %w", err)
	}
	key := snapshotKey(taskID)
	if err := m.svc.Store.Put(key, buf.Bytes()); err != nil {
		return "", fmt.Errorf("dsim: uploading snapshot: %w", err)
	}
	return key, nil
}

// StartRouteSimulation splits the input routes into n subtasks (ordering
// heuristic), uploads their inputs, records pending status + ranges in the
// task DB, and enqueues one message per subtask.
func (m *Master) StartRouteSimulation(taskID, snapKey string, inputs []netmodel.Route, n int, opts core.Options) (*RouteTask, error) {
	subsets := splitRoutes(inputs, n)
	for i, sub := range subsets {
		var buf bytes.Buffer
		if err := core.EncodeRoutes(&buf, sub.Routes); err != nil {
			return nil, err
		}
		ik := inputKey(taskID, "route", i)
		if err := m.svc.Store.Put(ik, buf.Bytes()); err != nil {
			return nil, err
		}
		rec := taskdb.Record{
			TaskID: taskID, Kind: "route", SubID: i, Status: taskdb.StatusPending,
			RangeLo: sub.Lo.String(), RangeHi: sub.Hi.String(),
		}
		if err := m.svc.Tasks.Upsert(rec); err != nil {
			return nil, err
		}
		msg := SubtaskMsg{
			TaskID: taskID, Kind: "route", SubID: i,
			SnapshotKey: snapKey, InputKey: ik,
			ResultKey: resultKey(taskID, "route", i),
			Options:   opts,
		}
		m.msgs[msg.key()] = msg
		enc, err := msg.encode()
		if err != nil {
			return nil, err
		}
		if err := m.svc.Queue.Push(Topic, enc); err != nil {
			return nil, err
		}
	}
	return &RouteTask{ID: taskID, SnapshotKey: snapKey, Subtasks: len(subsets)}, nil
}

// TrafficTask handles a started distributed traffic simulation.
type TrafficTask struct {
	ID       string
	Subtasks int
}

// StartTrafficSimulation splits the input flows into n subtasks following
// the chosen strategy and enqueues them. The route simulation (routeTask)
// must already be complete: traffic subtasks read its result files.
func (m *Master) StartTrafficSimulation(taskID string, route *RouteTask, flows []netmodel.Flow, n int, strategy Strategy, opts core.Options) (*TrafficTask, error) {
	subsets := splitFlows(flows, n, strategy)
	for i, sub := range subsets {
		var buf bytes.Buffer
		if err := core.EncodeFlows(&buf, sub.Flows); err != nil {
			return nil, err
		}
		ik := inputKey(taskID, "traffic", i)
		if err := m.svc.Store.Put(ik, buf.Bytes()); err != nil {
			return nil, err
		}
		rec := taskdb.Record{
			TaskID: taskID, Kind: "traffic", SubID: i, Status: taskdb.StatusPending,
			RangeLo: sub.Lo.String(), RangeHi: sub.Hi.String(),
		}
		if err := m.svc.Tasks.Upsert(rec); err != nil {
			return nil, err
		}
		msg := SubtaskMsg{
			TaskID: taskID, Kind: "traffic", SubID: i,
			SnapshotKey: route.SnapshotKey, InputKey: ik,
			ResultKey:     resultKey(taskID, "traffic", i),
			Options:       opts,
			RouteTaskID:   route.ID,
			RouteSubtasks: route.Subtasks,
			Strategy:      strategy,
		}
		m.msgs[msg.key()] = msg
		enc, err := msg.encode()
		if err != nil {
			return nil, err
		}
		if err := m.svc.Queue.Push(Topic, enc); err != nil {
			return nil, err
		}
	}
	return &TrafficTask{ID: taskID, Subtasks: len(subsets)}, nil
}

// Wait blocks until every subtask of (taskID, kind) is done, re-enqueueing
// failed subtasks up to MaxAttempts times.
func (m *Master) Wait(taskID, kind string, n int) error {
	deadline := time.Now().Add(m.Timeout)
	for {
		recs, err := m.svc.Tasks.List(taskID)
		if err != nil {
			return err
		}
		done := 0
		for _, rec := range recs {
			if rec.Kind != kind {
				continue
			}
			switch rec.Status {
			case taskdb.StatusDone:
				done++
			case taskdb.StatusFailed:
				if rec.Attempts >= m.MaxAttempts {
					return fmt.Errorf("dsim: subtask %s/%s/%d failed permanently: %s", taskID, kind, rec.SubID, rec.Error)
				}
				// Re-enqueue (the paper's master resends the message).
				rec.Status = taskdb.StatusPending
				rec.Attempts++
				if err := m.svc.Tasks.Upsert(rec); err != nil {
					return err
				}
				msg, ok := m.msgs[SubtaskMsg{TaskID: taskID, Kind: kind, SubID: rec.SubID}.key()]
				if !ok {
					return fmt.Errorf("dsim: no recorded message for %s/%s/%d", taskID, kind, rec.SubID)
				}
				enc, err := msg.encode()
				if err != nil {
					return err
				}
				if err := m.svc.Queue.Push(Topic, enc); err != nil {
					return err
				}
			}
		}
		if done == n {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("dsim: task %s/%s timed out (%d/%d done)", taskID, kind, done, n)
		}
		time.Sleep(m.PollInterval)
	}
}

// CollectRouteResults merges the RIB rows of all route subtasks into one
// global RIB, deduplicating rows that multiple subtasks derived (e.g. the
// same aggregate generated by two contributor subsets).
func (m *Master) CollectRouteResults(t *RouteTask) (*netmodel.GlobalRIB, error) {
	seen := make(map[string]bool)
	var rows []netmodel.Route
	for i := 0; i < t.Subtasks; i++ {
		data, err := m.svc.Store.Get(resultKey(t.ID, "route", i))
		if err != nil {
			return nil, err
		}
		sub, err := core.DecodeRoutes(bytes.NewReader(data))
		if err != nil {
			return nil, err
		}
		for _, r := range sub {
			sig := rowSignature(r)
			if !seen[sig] {
				seen[sig] = true
				rows = append(rows, r)
			}
		}
	}
	return netmodel.NewGlobalRIB(rows), nil
}

func rowSignature(r netmodel.Route) string {
	return fmt.Sprintf("%s|%s|%s|%d|%s|%s|%d|%d|%d|%d|%s|%s|%d|%s",
		r.Device, r.VRF, r.Prefix, r.Protocol, r.NextHop, r.Communities,
		r.LocalPref, r.MED, r.Weight, r.Preference, r.ASPath, r.Origin,
		r.RouteType, r.Peer)
}

// TrafficSummary is the aggregated result of a distributed traffic
// simulation.
type TrafficSummary struct {
	Load  netmodel.LinkLoad
	Paths []traffic.FlowPath
	// LoadedRIBFiles reports, per subtask, how many route-result files were
	// loaded — the Figure 5(d) metric.
	LoadedRIBFiles []int
}

// CollectTrafficResults aggregates per-subtask link loads (summing across
// subtasks, as the paper's master does) and concatenates flow paths.
func (m *Master) CollectTrafficResults(t *TrafficTask) (*TrafficSummary, error) {
	out := &TrafficSummary{Load: make(netmodel.LinkLoad)}
	for i := 0; i < t.Subtasks; i++ {
		data, err := m.svc.Store.Get(resultKey(t.ID, "traffic", i))
		if err != nil {
			return nil, err
		}
		var file TrafficResultFile
		if err := json.Unmarshal(data, &file); err != nil {
			return nil, fmt.Errorf("dsim: decoding traffic result %d: %w", i, err)
		}
		for _, e := range file.Load {
			out.Load[e.Link] += e.Volume
		}
		for _, p := range file.Paths {
			out.Paths = append(out.Paths, traffic.FlowPath{
				Flow: p.Flow,
				Path: netmodel.Path{Hops: p.Path.Hops, Exit: p.Path.Exit},
			})
		}
		rec, ok, err := m.svc.Tasks.Get(t.ID, "traffic", i)
		if err == nil && ok {
			out.LoadedRIBFiles = append(out.LoadedRIBFiles, rec.LoadedRIBFiles)
		}
	}
	sort.Slice(out.Paths, func(i, j int) bool {
		return netmodel.CompareFlows(out.Paths[i].Flow, out.Paths[j].Flow) < 0
	})
	return out, nil
}

// SubtaskDurations returns the per-subtask run times of a task kind (the
// Figure 5(c) CDF input).
func (m *Master) SubtaskDurations(taskID, kind string) ([]time.Duration, error) {
	recs, err := m.svc.Tasks.List(taskID)
	if err != nil {
		return nil, err
	}
	var out []time.Duration
	for _, rec := range recs {
		if rec.Kind == kind && rec.Status == taskdb.StatusDone {
			out = append(out, time.Duration(rec.DurationMs)*time.Millisecond)
		}
	}
	return out, nil
}
