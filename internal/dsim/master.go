package dsim

import (
	"bytes"
	"fmt"
	"time"

	"hoyan/internal/config"
	"hoyan/internal/core"
	"hoyan/internal/netmodel"
	"hoyan/internal/taskdb"
	"hoyan/internal/telemetry"
	"hoyan/internal/traffic"
	"hoyan/internal/wire"
	"slices"
)

// Master coordinates a simulation task: it prepares subtasks, enqueues them,
// monitors the task DB, re-enqueues failures, and aggregates results.
//
// Fault tolerance: the master assumes at-least-once subtask execution. It
// re-enqueues subtasks that report failure, subtasks whose worker stopped
// heartbeating (crash or partition — the lease), and subtasks stuck pending
// with an empty queue (message lost in flight). Every re-enqueue bumps the
// attempt epoch, which fences out writes from the superseded attempt; result
// files are deterministic and keyed per subtask, so duplicate executions are
// idempotent.
type Master struct {
	svc Services

	// MaxAttempts bounds per-subtask retries (the paper's master resends a
	// failed subtask's message back to the queue).
	MaxAttempts int
	// PollInterval is the task-DB monitoring cadence.
	PollInterval time.Duration
	// Timeout bounds a whole Wait call.
	Timeout time.Duration
	// LeaseTimeout bounds how long a running subtask may go without a worker
	// heartbeat before the master presumes the worker dead and reclaims the
	// subtask. It also paces the lost-pending sweep. 0 disables reclaim.
	// It must be several times the workers' heartbeat interval.
	LeaseTimeout time.Duration

	// Tracer collects the master's spans: a run root (BeginRun) with one
	// "enqueue" child per subtask message, whose identity travels inside the
	// message so worker spans land in the same trace. Nil disables tracing.
	Tracer *telemetry.Tracer

	// Events receives structured diagnostics (re-enqueues with cause and
	// attempt). Nil discards them.
	Events *telemetry.EventLogger

	// metrics is the master's instrument bundle — detached counters until
	// Instrument binds a registry; never nil.
	metrics *MasterMetrics
	// reg is the registry Instrument bound (nil before), so later-created
	// components (the shard verifier) register their instruments alongside.
	reg *telemetry.Registry

	// runCtx is the span context enqueue spans parent under (set by
	// BeginRun; zero makes each enqueue start its own trace).
	runCtx telemetry.SpanContext

	// msgs remembers each enqueued subtask message so failures can be
	// resent verbatim.
	msgs map[string]SubtaskMsg
	// pendingSince tracks when a pending subtask was first seen alongside an
	// empty queue: only after a full lease period in that state is its
	// message declared lost. Keying the grace period off this observation
	// (rather than EnqueuedAt) keeps a long queue wait on a busy cluster
	// from looking like message loss.
	pendingSince map[string]time.Time
}

// NewMaster creates a master over the given substrate services. The queue,
// store, and task DB handles are wrapped with DefaultRetryPolicy so transient
// substrate errors are retried in place.
func NewMaster(svc Services) *Master {
	return &Master{
		svc:         WithRetry(svc, DefaultRetryPolicy()),
		MaxAttempts: 3, PollInterval: 5 * time.Millisecond, Timeout: 10 * time.Minute,
		LeaseTimeout: 30 * time.Second,
		metrics:      NewMasterMetrics(nil),
		msgs:         make(map[string]SubtaskMsg),
		pendingSince: make(map[string]time.Time),
	}
}

// Instrument registers the master's metrics in reg and re-binds the retry
// policies of its substrate handles so retry activity shows per component.
// Call before starting tasks.
func (m *Master) Instrument(reg *telemetry.Registry) {
	m.metrics = NewMasterMetrics(reg)
	m.reg = reg
	instrumentRetries(m.svc, reg)
}

// BeginRun opens the run's root span: every subsequent enqueue span — and,
// through message propagation, every worker span — lands in its trace, so one
// run yields one end-to-end trace. The caller ends the returned span when the
// run completes. Nil-safe without a tracer.
func (m *Master) BeginRun(name string) *telemetry.Span {
	sp := m.Tracer.StartRoot(name)
	m.runCtx = sp.Context()
	return sp
}

// stampTrace opens a per-subtask enqueue span under the run root and stamps
// its identity plus the enqueue wall time into the message. The caller ends
// the span once the push lands.
func (m *Master) stampTrace(msg *SubtaskMsg) *telemetry.Span {
	sp := m.Tracer.StartChild(m.runCtx, "enqueue")
	if sc := sp.Context(); sc.Valid() {
		sp.SetTag("subtask", msg.key())
		msg.TraceID = sc.TraceID
		msg.ParentSpan = sc.SpanID
	}
	msg.EnqueuedUnixNano = time.Now().UnixNano()
	return sp
}

// RouteTask handles a started distributed route simulation.
type RouteTask struct {
	ID          string
	SnapshotKey string
	Subtasks    int
}

// UploadSnapshot stores the network snapshot once; route and traffic tasks
// of the same change verification share it.
func (m *Master) UploadSnapshot(taskID string, net *config.Network) (string, error) {
	var buf bytes.Buffer
	if err := core.TakeSnapshot(net).Encode(&buf); err != nil {
		return "", fmt.Errorf("dsim: encoding snapshot: %w", err)
	}
	key := snapshotKey(taskID)
	if err := m.svc.Store.Put(key, buf.Bytes()); err != nil {
		return "", fmt.Errorf("dsim: uploading snapshot: %w", err)
	}
	m.metrics.UploadBytes.Add(int64(buf.Len()))
	return key, nil
}

// enqueueSubtask is the shared tail of every Start* path: it persists the
// message (before the record becomes visible, so every record a restarted
// master finds in the task DB has a recoverable message for Resume), records
// the pending row, stamps the trace, and pushes the message.
func (m *Master) enqueueSubtask(msg SubtaskMsg, rec taskdb.Record, enqueued *telemetry.Counter) error {
	if err := m.persistMsg(msg); err != nil {
		return err
	}
	if err := m.svc.Tasks.Upsert(rec); err != nil {
		return err
	}
	sp := m.stampTrace(&msg)
	m.msgs[msg.key()] = msg
	enc, err := msg.encode()
	if err != nil {
		sp.End()
		return err
	}
	err = m.svc.Queue.Push(Topic, enc)
	sp.End()
	if err != nil {
		return err
	}
	enqueued.Inc()
	return nil
}

// StartRouteSimulation splits the input routes into n subtasks (ordering
// heuristic), uploads their inputs, records pending status + ranges in the
// task DB, and enqueues one message per subtask.
func (m *Master) StartRouteSimulation(taskID, snapKey string, inputs []netmodel.Route, n int, opts core.Options) (*RouteTask, error) {
	return m.StartRouteScenario(taskID, snapKey, inputs, n, opts, nil, nil)
}

// StartRouteScenario is StartRouteSimulation with a topology delta riding
// the subtask messages: workers clone the shared snapshot, take the listed
// links/nodes down, and simulate the scenario — a what-if sweep re-uses one
// uploaded snapshot across all its scenarios.
func (m *Master) StartRouteScenario(taskID, snapKey string, inputs []netmodel.Route, n int, opts core.Options,
	downLinks []netmodel.LinkID, downNodes []string) (*RouteTask, error) {
	subsets := splitRoutes(inputs, n)
	for i, sub := range subsets {
		var buf bytes.Buffer
		if err := core.EncodeRoutes(&buf, sub.Routes); err != nil {
			return nil, err
		}
		ik := inputKey(taskID, "route", i)
		if err := m.svc.Store.Put(ik, buf.Bytes()); err != nil {
			return nil, err
		}
		m.metrics.UploadBytes.Add(int64(buf.Len()))
		msg := SubtaskMsg{
			TaskID: taskID, Kind: "route", SubID: i,
			SnapshotKey: snapKey, InputKey: ik,
			ResultKey: resultKey(taskID, "route", i),
			Options:   opts,
			DownLinks: downLinks, DownNodes: downNodes,
		}
		rec := taskdb.Record{
			TaskID: taskID, Kind: "route", SubID: i, Status: taskdb.StatusPending,
			RangeLo: sub.Lo.String(), RangeHi: sub.Hi.String(),
			EnqueuedAt: time.Now(),
		}
		if err := m.enqueueSubtask(msg, rec, m.metrics.EnqueuedRoute); err != nil {
			return nil, err
		}
	}
	return &RouteTask{ID: taskID, SnapshotKey: snapKey, Subtasks: len(subsets)}, nil
}

// TrafficTask handles a started distributed traffic simulation.
type TrafficTask struct {
	ID       string
	Subtasks int
}

// StartTrafficSimulation splits the input flows into n subtasks following
// the chosen strategy and enqueues them. The route simulation (routeTask)
// must already be complete: traffic subtasks read its result files.
func (m *Master) StartTrafficSimulation(taskID string, route *RouteTask, flows []netmodel.Flow, n int, strategy Strategy, opts core.Options) (*TrafficTask, error) {
	subsets := splitFlows(flows, n, strategy)
	for i, sub := range subsets {
		var buf bytes.Buffer
		if err := core.EncodeFlows(&buf, sub.Flows); err != nil {
			return nil, err
		}
		ik := inputKey(taskID, "traffic", i)
		if err := m.svc.Store.Put(ik, buf.Bytes()); err != nil {
			return nil, err
		}
		m.metrics.UploadBytes.Add(int64(buf.Len()))
		msg := SubtaskMsg{
			TaskID: taskID, Kind: "traffic", SubID: i,
			SnapshotKey: route.SnapshotKey, InputKey: ik,
			ResultKey:     resultKey(taskID, "traffic", i),
			Options:       opts,
			RouteTaskID:   route.ID,
			RouteSubtasks: route.Subtasks,
			Strategy:      strategy,
		}
		rec := taskdb.Record{
			TaskID: taskID, Kind: "traffic", SubID: i, Status: taskdb.StatusPending,
			RangeLo: sub.Lo.String(), RangeHi: sub.Hi.String(),
			EnqueuedAt: time.Now(),
		}
		if err := m.enqueueSubtask(msg, rec, m.metrics.EnqueuedTraffic); err != nil {
			return nil, err
		}
	}
	return &TrafficTask{ID: taskID, Subtasks: len(subsets)}, nil
}

// Wait blocks until every subtask of (taskID, kind) is done. It re-enqueues
// subtasks that failed, whose worker's lease expired, or whose message was
// lost, each up to MaxAttempts times.
func (m *Master) Wait(taskID, kind string, n int) error {
	start := time.Now()
	defer func() { m.metrics.WaitSeconds.Observe(time.Since(start).Seconds()) }()
	deadline := start.Add(m.Timeout)
	for {
		m.metrics.PollSweeps.Inc()
		recs, err := m.svc.Tasks.List(taskID)
		if err != nil {
			return err
		}
		// Queue length is fetched at most once per sweep, and only when a
		// pending record needs the lost-message heuristic.
		qlen, qlenKnown := 0, false
		done := 0
		for _, rec := range recs {
			if rec.Kind != kind {
				continue
			}
			switch rec.Status {
			case taskdb.StatusDone:
				delete(m.pendingSince, rec.Key())
				done++
			case taskdb.StatusFailed:
				delete(m.pendingSince, rec.Key())
				// Re-enqueue (the paper's master resends the message).
				if err := m.reenqueue(rec, m.metrics.ReenqueueFailed, "worker reported: "+rec.Error); err != nil {
					return err
				}
			case taskdb.StatusRunning:
				delete(m.pendingSince, rec.Key())
				if m.leaseExpired(rec) {
					if err := m.reenqueue(rec, m.metrics.ReenqueueLease, fmt.Sprintf("lease expired (worker %s presumed dead)", rec.Worker)); err != nil {
						return err
					}
				}
			case taskdb.StatusPending:
				if m.LeaseTimeout <= 0 {
					break
				}
				if !qlenKnown {
					if qlen, err = m.svc.Queue.Len(Topic); err != nil {
						qlen = 1 // unknown: assume the message is still queued
					}
					qlenKnown = true
				}
				if qlen > 0 {
					// A queued message may be this subtask's: not lost.
					delete(m.pendingSince, rec.Key())
					break
				}
				first, seen := m.pendingSince[rec.Key()]
				switch {
				case !seen:
					m.pendingSince[rec.Key()] = time.Now()
				case time.Since(first) > m.LeaseTimeout:
					// Pending for a full lease period with nothing queued:
					// the message was lost (e.g. a Pop reply that never
					// reached a worker, or a worker that died between Pop
					// and claiming the record).
					delete(m.pendingSince, rec.Key())
					if err := m.reenqueue(rec, m.metrics.ReenqueueLost, "pending with empty queue (message lost)"); err != nil {
						return err
					}
				}
			}
		}
		if done == n {
			m.metrics.Done.Add(int64(n))
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("dsim: task %s/%s timed out (%d/%d done)", taskID, kind, done, n)
		}
		time.Sleep(m.PollInterval)
	}
}

// leaseExpired reports whether a running subtask's worker has gone silent for
// longer than the lease.
func (m *Master) leaseExpired(rec taskdb.Record) bool {
	if m.LeaseTimeout <= 0 {
		return false
	}
	last := rec.HeartbeatAt
	if rec.StartedAt.After(last) {
		last = rec.StartedAt
	}
	return !last.IsZero() && time.Since(last) > m.LeaseTimeout
}

// reenqueue bumps the subtask's attempt epoch (fencing out the superseded
// attempt) and resends its message, counting the given cause. Exhausting
// MaxAttempts is the only error that aborts the task: a failed push is left
// to the lost-pending sweep, which re-enqueues the subtask after a lease
// period instead of stranding it.
func (m *Master) reenqueue(rec taskdb.Record, causeCount *telemetry.Counter, cause string) error {
	if rec.Attempts >= m.MaxAttempts {
		return fmt.Errorf("dsim: subtask %s/%s/%d failed permanently after %d attempts: %s",
			rec.TaskID, rec.Kind, rec.SubID, rec.Attempts+1, cause)
	}
	msg, ok := m.msgs[SubtaskMsg{TaskID: rec.TaskID, Kind: rec.Kind, SubID: rec.SubID}.key()]
	if !ok {
		return fmt.Errorf("dsim: no recorded message for %s/%s/%d", rec.TaskID, rec.Kind, rec.SubID)
	}
	causeCount.Inc()
	m.Events.Log("subtask.reenqueue",
		telemetry.F("subtask", rec.Key()),
		telemetry.F("attempt", rec.Attempts+1),
		telemetry.F("cause", cause))
	rec.Status = taskdb.StatusPending
	rec.Attempts++
	rec.Worker = ""
	rec.Error = cause
	rec.EnqueuedAt = time.Now()
	rec.HeartbeatAt = time.Time{}
	// The record write must land before the push: a worker may pop the new
	// message immediately, and its claim (same epoch) must not be clobbered
	// by this pending write arriving late.
	if _, err := m.svc.Tasks.FencedUpsert(rec); err != nil {
		return err
	}
	msg.Attempt = rec.Attempts
	sp := m.stampTrace(&msg)
	sp.SetTag("cause", cause)
	enc, err := msg.encode()
	if err != nil {
		sp.End()
		return err
	}
	err = m.svc.Queue.Push(Topic, enc)
	sp.End()
	if err != nil {
		// Push already retried by the substrate wrapper; the record stays
		// pending and the lost-pending sweep will re-enqueue it.
		return nil
	}
	return nil
}

// CollectRouteResults merges the RIB rows of all route subtasks into one
// global RIB, deduplicating rows that multiple subtasks derived (e.g. the
// same aggregate generated by two contributor subsets).
func (m *Master) CollectRouteResults(t *RouteTask) (*netmodel.GlobalRIB, error) {
	if t.Subtasks == 1 {
		// Single result file (a stitched sharded run): no overlapping subsets
		// to dedupe, and the rows are already in CompareRoutes order.
		data, err := m.svc.Store.Get(resultKey(t.ID, "route", 0))
		if err != nil {
			return nil, err
		}
		rows, err := core.DecodeRoutes(bytes.NewReader(data))
		if err != nil {
			return nil, err
		}
		return netmodel.NewGlobalRIBFromSorted(rows), nil
	}
	seen := make(map[string]bool)
	var rows []netmodel.Route
	sigBuf := netmodel.GetSigBuf()
	defer netmodel.PutSigBuf(sigBuf)
	sig := *sigBuf
	defer func() { *sigBuf = sig }()
	for i := 0; i < t.Subtasks; i++ {
		data, err := m.svc.Store.Get(resultKey(t.ID, "route", i))
		if err != nil {
			return nil, err
		}
		sub, err := core.DecodeRoutes(bytes.NewReader(data))
		if err != nil {
			return nil, err
		}
		for _, r := range sub {
			sig = r.AppendSignature(sig[:0])
			if !seen[string(sig)] {
				seen[string(sig)] = true
				rows = append(rows, r)
			}
		}
	}
	return netmodel.NewGlobalRIB(rows), nil
}

// rowSignature is one route's injective dedupe key: overlapping subtasks
// recompute boundary prefixes identically, so equal keys mean equal rows.
func rowSignature(r netmodel.Route) string {
	return string(r.AppendSignature(nil))
}

// TrafficSummary is the aggregated result of a distributed traffic
// simulation.
type TrafficSummary struct {
	Load  netmodel.LinkLoad
	Paths []traffic.FlowPath
	// LoadedRIBFiles reports, per subtask, how many route-result files were
	// loaded — the Figure 5(d) metric.
	LoadedRIBFiles []int
}

// CollectTrafficResults aggregates per-subtask link loads (summing across
// subtasks, as the paper's master does) and concatenates flow paths.
func (m *Master) CollectTrafficResults(t *TrafficTask) (*TrafficSummary, error) {
	out := &TrafficSummary{Load: make(netmodel.LinkLoad)}
	for i := 0; i < t.Subtasks; i++ {
		data, err := m.svc.Store.Get(resultKey(t.ID, "traffic", i))
		if err != nil {
			return nil, err
		}
		file, err := wire.DecodeTrafficResult(bytes.NewReader(data))
		if err != nil {
			return nil, fmt.Errorf("dsim: decoding traffic result %d: %w", i, err)
		}
		for _, e := range file.Load {
			out.Load[e.Link] += e.Volume
		}
		for _, p := range file.Paths {
			out.Paths = append(out.Paths, traffic.FlowPath{
				Flow: p.Flow,
				Path: netmodel.Path{Hops: p.Path.Hops, Exit: p.Path.Exit},
			})
		}
		rec, ok, err := m.svc.Tasks.Get(t.ID, "traffic", i)
		if err == nil && ok {
			out.LoadedRIBFiles = append(out.LoadedRIBFiles, rec.LoadedRIBFiles)
		}
	}
	slices.SortFunc(out.Paths, func(a, b traffic.FlowPath) int {
		return netmodel.CompareFlows(a.Flow, b.Flow)
	})
	return out, nil
}

// SubtaskDurations returns the per-subtask run times of a task kind (the
// Figure 5(c) CDF input).
func (m *Master) SubtaskDurations(taskID, kind string) ([]time.Duration, error) {
	recs, err := m.svc.Tasks.List(taskID)
	if err != nil {
		return nil, err
	}
	var out []time.Duration
	for _, rec := range recs {
		if rec.Kind == kind && rec.Status == taskdb.StatusDone {
			out = append(out, time.Duration(rec.DurationMs)*time.Millisecond)
		}
	}
	return out, nil
}
