package dsim

import "container/list"

// lru is a tiny bounded LRU keyed by string. Workers use it for decoded
// route-RIB files, restored networks, and prepared engines; sizes are small
// (tens of entries), so a list + map is plenty.
//
// Not safe for concurrent use — callers hold the worker's cache mutex.
type lru[V any] struct {
	max int
	ll  *list.List
	m   map[string]*list.Element
}

type lruEntry[V any] struct {
	key string
	val V
}

// newLRU creates an LRU holding at most max entries (max < 1 disables it:
// every get misses and put is a no-op).
func newLRU[V any](max int) *lru[V] {
	return &lru[V]{max: max, ll: list.New(), m: make(map[string]*list.Element)}
}

func (c *lru[V]) get(key string) (V, bool) {
	if el, ok := c.m[key]; ok {
		c.ll.MoveToFront(el)
		return el.Value.(*lruEntry[V]).val, true
	}
	var zero V
	return zero, false
}

// put inserts or refreshes an entry, returning the keys it evicted to stay
// within bounds (so callers can count and log evictions).
func (c *lru[V]) put(key string, val V) (evicted []string) {
	if c.max < 1 {
		return nil
	}
	if el, ok := c.m[key]; ok {
		el.Value.(*lruEntry[V]).val = val
		c.ll.MoveToFront(el)
		return nil
	}
	c.m[key] = c.ll.PushFront(&lruEntry[V]{key: key, val: val})
	for c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		k := oldest.Value.(*lruEntry[V]).key
		delete(c.m, k)
		evicted = append(evicted, k)
	}
	return evicted
}

func (c *lru[V]) len() int { return c.ll.Len() }
