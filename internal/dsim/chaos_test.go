package dsim

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"hoyan/internal/core"
	"hoyan/internal/faults"
	"hoyan/internal/gen"
	"hoyan/internal/mq"
	"hoyan/internal/netmodel"
	"hoyan/internal/objstore"
	"hoyan/internal/taskdb"
	"hoyan/internal/traffic"
	"slices"
)

// chaosMaster returns a master tuned for fast lease reclaim in tests.
func chaosMaster(svc Services, maxAttempts int, lease time.Duration) *Master {
	m := NewMaster(svc)
	m.MaxAttempts = maxAttempts
	m.LeaseTimeout = lease
	m.Timeout = 2 * time.Minute
	return m
}

// distResult is everything a distributed run produces.
type distResult struct {
	RIB  *netmodel.GlobalRIB
	Sum  *TrafficSummary
	Task *RouteTask
}

// runDistributed runs route then traffic simulation on an already-started
// cluster of workers and collects the results.
func runDistributed(t *testing.T, m *Master, taskID string, out *gen.Output, nRoute, nTraffic int) distResult {
	t.Helper()
	snapKey, err := m.UploadSnapshot(taskID, out.Net)
	if err != nil {
		t.Fatalf("%s: UploadSnapshot: %v", taskID, err)
	}
	rt, err := m.StartRouteSimulation(taskID, snapKey, out.Inputs, nRoute, core.Options{})
	if err != nil {
		t.Fatalf("%s: StartRouteSimulation: %v", taskID, err)
	}
	if err := m.Wait(taskID, "route", rt.Subtasks); err != nil {
		t.Fatalf("%s: route Wait: %v", taskID, err)
	}
	rib, err := m.CollectRouteResults(rt)
	if err != nil {
		t.Fatalf("%s: CollectRouteResults: %v", taskID, err)
	}
	tt, err := m.StartTrafficSimulation(taskID, rt, out.Flows, nTraffic, StrategyOrdered, core.Options{})
	if err != nil {
		t.Fatalf("%s: StartTrafficSimulation: %v", taskID, err)
	}
	if err := m.Wait(taskID, "traffic", tt.Subtasks); err != nil {
		t.Fatalf("%s: traffic Wait: %v", taskID, err)
	}
	sum, err := m.CollectTrafficResults(tt)
	if err != nil {
		t.Fatalf("%s: CollectTrafficResults: %v", taskID, err)
	}
	return distResult{RIB: rib, Sum: sum, Task: rt}
}

// pathKeys renders flow paths as sortable strings so path sets can be
// compared independent of tie-breaking among equal flows.
func pathKeys(t *testing.T, paths []traffic.FlowPath) []string {
	t.Helper()
	out := make([]string, 0, len(paths))
	for _, p := range paths {
		b, err := json.Marshal(p)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, string(b))
	}
	slices.Sort(out)
	return out
}

// assertMatchesCentral checks a distributed result against the local
// single-process simulation: identical (deduplicated) RIB and link loads
// within float tolerance.
func assertMatchesCentral(t *testing.T, out *gen.Output, got distResult) {
	t.Helper()
	eng := core.NewEngine(out.Net, core.Options{})
	routes := eng.RouteSimulation(out.Inputs)
	central := dedupe(routes.GlobalRIB())
	if !central.Equal(got.RIB) {
		a, b := central.Diff(got.RIB)
		t.Fatalf("distributed RIB != centralized (%d vs %d rows, diff %d/%d)",
			central.Len(), got.RIB.Len(), len(a), len(b))
	}
	centralTraffic := eng.TrafficSimulation(routes, routes.GlobalRIB().Rows(), out.Flows)
	for id, v := range centralTraffic.Traffic.Load {
		if d := got.Sum.Load[id] - v; d > 1e-3 || d < -1e-3 {
			t.Errorf("load[%s]: distributed %v, centralized %v", id, got.Sum.Load[id], v)
		}
	}
	for id, v := range got.Sum.Load {
		if _, ok := centralTraffic.Traffic.Load[id]; !ok && v > 1e-3 {
			t.Errorf("phantom load on %s: %v", id, v)
		}
	}
	if len(got.Sum.Paths) > len(out.Flows) {
		t.Errorf("paths = %d > flows = %d", len(got.Sum.Paths), len(out.Flows))
	}
}

// assertSameDistributed checks that two distributed runs with the same
// partitioning produced byte-identical results: same RIB rows, same link
// loads (exact — same summation order), same path set.
func assertSameDistributed(t *testing.T, clean, chaos distResult) {
	t.Helper()
	if !clean.RIB.Equal(chaos.RIB) {
		a, b := clean.RIB.Diff(chaos.RIB)
		t.Fatalf("chaos RIB != clean RIB (diff %d/%d)", len(a), len(b))
	}
	if !reflect.DeepEqual(clean.Sum.Load, chaos.Sum.Load) {
		t.Fatal("chaos link loads != clean link loads")
	}
	if !reflect.DeepEqual(pathKeys(t, clean.Sum.Paths), pathKeys(t, chaos.Sum.Paths)) {
		t.Fatalf("chaos path set != clean path set (%d vs %d paths)",
			len(chaos.Sum.Paths), len(clean.Sum.Paths))
	}
}

// TestChaosWorkerCrashLeaseReclaim kills workers mid-subtask — after they
// claimed the record, before any completion or failure report — and checks
// the master's lease reclaim gets every subtask done, with results identical
// to the local single-process simulation and to a clean distributed run.
func TestChaosWorkerCrashLeaseReclaim(t *testing.T) {
	out := gen.Generate(gen.WAN(1))
	const nRoute, nTraffic = 6, 6

	// Clean distributed reference run.
	cleanCluster := StartLocal(3)
	clean := runDistributed(t, cleanCluster.Master, "clean", out, nRoute, nTraffic)
	cleanCluster.Stop()

	svc := Services{Queue: mq.NewMemory(), Store: objstore.NewMemory(), Tasks: taskdb.NewMemory()}
	master := chaosMaster(svc, 5, 300*time.Millisecond)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// Phase 1: two crashers claim one route subtask each and die silently.
	var crashed sync.WaitGroup
	for i := 0; i < 2; i++ {
		w := NewWorker(fmt.Sprintf("crasher-%d", i), svc)
		w.CrashNext = 1
		w.HeartbeatInterval = 25 * time.Millisecond
		crashed.Add(1)
		go func() {
			defer crashed.Done()
			w.Run(ctx)
		}()
	}

	snapKey, err := master.UploadSnapshot("chaos", out.Net)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := master.StartRouteSimulation("chaos", snapKey, out.Inputs, nRoute, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Both crashers die holding a claimed subtask before any healthy worker
	// exists: only lease reclaim can finish those subtasks now.
	crashed.Wait()

	// Now start healthy workers, one of which will also crash once during
	// the traffic phase.
	for i := 0; i < 2; i++ {
		w := NewWorker(fmt.Sprintf("worker-%d", i), svc)
		w.HeartbeatInterval = 25 * time.Millisecond
		go w.Run(ctx)
	}
	lateCrasher := NewWorker("late-crasher", svc)
	lateCrasher.HeartbeatInterval = 25 * time.Millisecond
	if err := master.Wait("chaos", "route", rt.Subtasks); err != nil {
		t.Fatalf("route Wait with crashes: %v", err)
	}
	rib, err := master.CollectRouteResults(rt)
	if err != nil {
		t.Fatal(err)
	}

	// Phase 2: traffic, with one more crash mid-phase.
	lateCrasher.CrashNext = 1
	go lateCrasher.Run(ctx)
	tt, err := master.StartTrafficSimulation("chaos", rt, out.Flows, nTraffic, StrategyOrdered, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := master.Wait("chaos", "traffic", tt.Subtasks); err != nil {
		t.Fatalf("traffic Wait with crashes: %v", err)
	}
	sum, err := master.CollectTrafficResults(tt)
	if err != nil {
		t.Fatal(err)
	}
	chaos := distResult{RIB: rib, Sum: sum, Task: rt}

	// Reclaims actually happened, within the attempt budget.
	recs, err := svc.Tasks.List("chaos")
	if err != nil {
		t.Fatal(err)
	}
	reclaimed := 0
	for _, rec := range recs {
		if rec.Status != taskdb.StatusDone {
			t.Errorf("subtask %s not done: %s (attempts %d)", rec.Key(), rec.Status, rec.Attempts)
		}
		if rec.Attempts > 0 {
			reclaimed++
		}
		if rec.Attempts > master.MaxAttempts {
			t.Errorf("subtask %s exceeded MaxAttempts: %d", rec.Key(), rec.Attempts)
		}
	}
	if reclaimed < 2 {
		t.Errorf("reclaimed %d subtasks, want >= 2 (two crashed claims)", reclaimed)
	}

	assertMatchesCentral(t, out, chaos)
	assertSameDistributed(t, clean, chaos)
}

// TestChaosFlakySubstrates runs the full distributed route+traffic pipeline
// with every substrate operation failing at >=10% (including lost pop replies
// — vanished messages — and lost write acks) and checks the results are
// identical to the local simulation and to a clean distributed run.
func TestChaosFlakySubstrates(t *testing.T) {
	out := gen.Generate(gen.WAN(1))
	const nRoute, nTraffic = 5, 5

	cleanCluster := StartLocal(3)
	clean := runDistributed(t, cleanCluster.Master, "clean", out, nRoute, nTraffic)
	cleanCluster.Stop()

	inj := faults.NewInjector(20260806)
	inj.ErrorRate = 0.12
	svc := Services{
		Queue: faults.FlakyQueue{Q: mq.NewMemory(), In: inj},
		Store: faults.FlakyStore{S: objstore.NewMemory(), In: inj},
		Tasks: faults.FlakyTasks{DB: taskdb.NewMemory(), In: inj},
	}
	master := chaosMaster(svc, 10, 400*time.Millisecond)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	for i := 0; i < 3; i++ {
		w := NewWorker(fmt.Sprintf("flaky-worker-%d", i), svc)
		w.HeartbeatInterval = 25 * time.Millisecond
		go w.Run(ctx)
	}

	chaos := runDistributed(t, master, "chaos", out, nRoute, nTraffic)

	points, injected := inj.Stats()
	if points == 0 || injected == 0 {
		t.Fatalf("chaos run injected nothing (points=%d injected=%d)", points, injected)
	}
	t.Logf("injected %d errors across %d injection points (%.1f%%)",
		injected, points, 100*float64(injected)/float64(points))

	assertMatchesCentral(t, out, chaos)
	assertSameDistributed(t, clean, chaos)
}

// TestWorkerSurvivesTransientPopErrors drives a worker through a queue that
// errors persistently (longer than one retry envelope) before recovering:
// Run must log-and-retry, not exit, and the task must complete.
func TestWorkerSurvivesTransientPopErrors(t *testing.T) {
	out := gen.Generate(gen.WAN(1))
	flakyPop := &popErrQueue{Queue: mq.NewMemory(), failures: 40}
	svc := Services{Queue: flakyPop, Store: objstore.NewMemory(), Tasks: taskdb.NewMemory()}
	master := chaosMaster(svc, 3, time.Second)

	w := NewWorker("survivor", svc)
	w.PopWait = 5 * time.Millisecond
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go w.Run(ctx)

	snapKey, err := master.UploadSnapshot("pop-errs", out.Net)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := master.StartRouteSimulation("pop-errs", snapKey, out.Inputs, 3, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := master.Wait("pop-errs", "route", rt.Subtasks); err != nil {
		t.Fatalf("Wait across pop errors: %v", err)
	}
	if n := flakyPop.served(); n < 3 {
		t.Fatalf("queue served %d pops after recovering", n)
	}
}

// TestWorkerExitsOnQueueClosed checks the one pop error that must stop a
// worker: deliberate queue shutdown — including when the sentinel crossed an
// RPC boundary and was re-mapped.
func TestWorkerExitsOnQueueClosed(t *testing.T) {
	memq := mq.NewMemory()
	svc := Services{Queue: memq, Store: objstore.NewMemory(), Tasks: taskdb.NewMemory()}
	w := NewWorker("closer", svc)
	w.PopWait = 5 * time.Millisecond
	done := make(chan struct{})
	go func() {
		w.Run(context.Background())
		close(done)
	}()
	time.Sleep(20 * time.Millisecond)
	memq.Close()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("worker did not exit after queue close")
	}
}

// TestStaleAttemptMessageSkipped delivers a message from a reclaimed attempt
// to a worker and checks it neither executes nor disturbs the record owned
// by the newer attempt.
func TestStaleAttemptMessageSkipped(t *testing.T) {
	out := gen.Generate(gen.WAN(1))
	memq := mq.NewMemory()
	svc := Services{Queue: memq, Store: objstore.NewMemory(), Tasks: taskdb.NewMemory()}
	master := NewMaster(svc)

	snapKey, err := master.UploadSnapshot("stale", out.Net)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := master.StartRouteSimulation("stale", snapKey, out.Inputs, 1, core.Options{})
	if err != nil || rt.Subtasks != 1 {
		t.Fatalf("start: %v (%d subtasks)", err, rt.Subtasks)
	}
	// Drain the attempt-0 message and pretend the master reclaimed the
	// subtask: the record is now owned by attempt 1.
	m, ok, err := memq.Pop(Topic, time.Second)
	if err != nil || !ok {
		t.Fatalf("draining: %v %v", ok, err)
	}
	rec, _, _ := svc.Tasks.Get("stale", "route", 0)
	rec.Status = taskdb.StatusPending
	rec.Attempts = 1
	if _, err := svc.Tasks.FencedUpsert(rec); err != nil {
		t.Fatal(err)
	}
	// Re-deliver the stale attempt-0 message.
	if err := memq.Push(Topic, m); err != nil {
		t.Fatal(err)
	}
	w := NewWorker("stale-worker", svc)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	w.RunN(ctx, 1)

	got, _, _ := svc.Tasks.Get("stale", "route", 0)
	if got.Status != taskdb.StatusPending || got.Attempts != 1 {
		t.Fatalf("stale message disturbed the record: %+v", got)
	}
	// No result was written by the stale attempt.
	if _, err := svc.Store.Get(resultKey("stale", "route", 0)); !errors.Is(err, objstore.ErrNotFound) {
		t.Fatalf("stale attempt wrote a result: %v", err)
	}
}

// popErrQueue fails its first n Pop calls with a transient error.
type popErrQueue struct {
	mq.Queue
	mu       sync.Mutex
	failures int
	pops     int
}

func (q *popErrQueue) Pop(topic string, wait time.Duration) (mq.Message, bool, error) {
	q.mu.Lock()
	if q.failures > 0 {
		q.failures--
		q.mu.Unlock()
		return mq.Message{}, false, errors.New("transient: connection reset")
	}
	q.pops++
	q.mu.Unlock()
	return q.Queue.Pop(topic, wait)
}

func (q *popErrQueue) served() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.pops
}
