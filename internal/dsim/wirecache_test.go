package dsim

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"

	"hoyan/internal/core"
	"hoyan/internal/faults"
	"hoyan/internal/gen"
	"hoyan/internal/mq"
	"hoyan/internal/objstore"
	"hoyan/internal/taskdb"
	"hoyan/internal/wire"
)

// TestLRU pins the cache's bound and recency ordering.
func TestLRU(t *testing.T) {
	c := newLRU[int](2)
	c.put("a", 1)
	c.put("b", 2)
	if _, ok := c.get("a"); !ok { // refresh a; b is now oldest
		t.Fatal("a missing")
	}
	c.put("c", 3)
	if _, ok := c.get("b"); ok {
		t.Error("b should have been evicted")
	}
	if v, ok := c.get("a"); !ok || v != 1 {
		t.Errorf("a = %d, %v", v, ok)
	}
	if v, ok := c.get("c"); !ok || v != 3 {
		t.Errorf("c = %d, %v", v, ok)
	}
	c.put("a", 10) // update in place
	if v, _ := c.get("a"); v != 10 {
		t.Errorf("a after update = %d", v)
	}
	if c.len() != 2 {
		t.Errorf("len = %d, want 2", c.len())
	}

	off := newLRU[int](0) // disabled
	off.put("x", 1)
	if _, ok := off.get("x"); ok || off.len() != 0 {
		t.Error("disabled LRU stored an entry")
	}
}

// TestChaosWithCachesByteIdentical runs the distributed pipeline with the
// binary codec and worker caches active while workers crash mid-subtask and
// substrates fail: the results must stay byte-identical to a clean
// distributed run and to the centralized engine, and the caches must have
// actually been exercised. A cache serving a stale entry across attempt
// epochs would surface here as a result divergence.
func TestChaosWithCachesByteIdentical(t *testing.T) {
	out := gen.Generate(gen.WAN(1))
	const nRoute, nTraffic = 6, 6

	// Clean distributed reference run; its workers must show cache traffic.
	cleanCluster := StartLocal(3)
	clean := runDistributed(t, cleanCluster.Master, "clean", out, nRoute, nTraffic)
	cleanStats := cleanCluster.CacheStats()
	cleanCluster.Stop()
	if cleanStats.RIBFileHits == 0 {
		t.Errorf("clean run had no RIB cache hits: %+v", cleanStats)
	}
	if cleanStats.SnapshotHits == 0 {
		t.Errorf("clean run had no snapshot cache hits: %+v", cleanStats)
	}

	// Chaos run: flaky substrates plus a mid-run crash; default caches on.
	inj := faults.NewInjector(20260807)
	inj.ErrorRate = 0.10
	svc := Services{
		Queue: faults.FlakyQueue{Q: mq.NewMemory(), In: inj},
		Store: faults.FlakyStore{S: objstore.NewMemory(), In: inj},
		Tasks: faults.FlakyTasks{DB: taskdb.NewMemory(), In: inj},
	}
	master := chaosMaster(svc, 10, 400*time.Millisecond)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var workers []*Worker
	for i := 0; i < 3; i++ {
		w := NewWorker(fmt.Sprintf("chaos-worker-%d", i), svc)
		w.HeartbeatInterval = 25 * time.Millisecond
		if i == 0 {
			w.CrashNext = 1 // dies holding its first claim; lease reclaim recovers
		}
		workers = append(workers, w)
		go w.Run(ctx)
	}

	chaos := runDistributed(t, master, "chaos", out, nRoute, nTraffic)

	var chaosStats CacheStats
	for _, w := range workers {
		chaosStats.Add(w.Stats())
	}
	if chaosStats.RIBFileHits == 0 {
		t.Errorf("chaos run had no RIB cache hits: %+v", chaosStats)
	}
	t.Logf("chaos cache stats: %+v", chaosStats)

	assertMatchesCentral(t, out, chaos)
	assertSameDistributed(t, clean, chaos)
}

// TestMixedVersionJSONBlobs emulates a mixed-version cluster / archived
// blobs: after the route phase completes, every blob in the store — snapshot,
// inputs, route-RIB result files — is rewritten in the legacy JSON encoding.
// A fresh set of (binary-speaking) workers must then run the traffic phase
// off those JSON blobs via the decoders' fallback, and the master must
// aggregate JSON traffic result files, all matching the centralized engine.
func TestMixedVersionJSONBlobs(t *testing.T) {
	out := gen.Generate(gen.WAN(1))
	const nRoute, nTraffic = 4, 4

	store, tasks := objstore.NewMemory(), taskdb.NewMemory()
	c1 := StartLocalWithStore(2, store, tasks)
	snapKey, err := c1.Master.UploadSnapshot("mixed", out.Net)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := c1.Master.StartRouteSimulation("mixed", snapKey, out.Inputs, nRoute, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := c1.Master.Wait("mixed", "route", rt.Subtasks); err != nil {
		t.Fatal(err)
	}
	c1.Stop()

	// Downgrade every stored blob to the legacy JSON encoding.
	keys, err := store.List("")
	if err != nil {
		t.Fatal(err)
	}
	rewritten := 0
	for _, key := range keys {
		data, err := store.Get(key)
		if err != nil {
			t.Fatal(err)
		}
		var legacy []byte
		switch {
		case strings.HasSuffix(key, "/msg"):
			// Persisted subtask messages are already plain JSON.
			continue
		case strings.HasSuffix(key, "/snapshot"):
			snap, err := core.DecodeSnapshot(bytes.NewReader(data))
			if err != nil {
				t.Fatalf("%s: %v", key, err)
			}
			legacy, err = json.Marshal(snap)
			if err != nil {
				t.Fatal(err)
			}
		default: // route inputs and route-RIB result files
			rows, err := core.DecodeRoutes(bytes.NewReader(data))
			if err != nil {
				t.Fatalf("%s: %v", key, err)
			}
			legacy, err = json.Marshal(rows)
			if err != nil {
				t.Fatal(err)
			}
		}
		if err := store.Put(key, legacy); err != nil {
			t.Fatal(err)
		}
		rewritten++
	}
	if rewritten < nRoute+2 {
		t.Fatalf("rewrote only %d blobs", rewritten)
	}

	// A fresh cluster runs traffic off the JSON blobs and re-collects the
	// route results through the fallback decoder.
	c2 := StartLocalWithStore(2, store, tasks)
	defer c2.Stop()
	rib, err := c2.Master.CollectRouteResults(rt)
	if err != nil {
		t.Fatal(err)
	}
	tt, err := c2.Master.StartTrafficSimulation("mixed", rt, out.Flows, nTraffic, StrategyOrdered, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := c2.Master.Wait("mixed", "traffic", tt.Subtasks); err != nil {
		t.Fatal(err)
	}
	sum, err := c2.Master.CollectTrafficResults(tt)
	if err != nil {
		t.Fatal(err)
	}
	assertMatchesCentral(t, out, distResult{RIB: rib, Sum: sum, Task: rt})

	// Finally downgrade the traffic result files too and check the master's
	// aggregation falls back identically.
	for i := 0; i < tt.Subtasks; i++ {
		key := resultKey("mixed", "traffic", i)
		data, err := store.Get(key)
		if err != nil {
			t.Fatal(err)
		}
		file, err := wire.DecodeTrafficResult(bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		legacy, err := json.Marshal(file)
		if err != nil {
			t.Fatal(err)
		}
		if err := store.Put(key, legacy); err != nil {
			t.Fatal(err)
		}
	}
	sum2, err := c2.Master.CollectTrafficResults(tt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sum.Load, sum2.Load) {
		t.Error("JSON traffic result files aggregated differently")
	}
	if !reflect.DeepEqual(pathKeys(t, sum.Paths), pathKeys(t, sum2.Paths)) {
		t.Error("JSON traffic result files produced a different path set")
	}
}

// TestRIBCacheDisabled checks the RIBCacheSize knob: negative disables the
// cache entirely (every file is re-fetched) while results stay correct.
func TestRIBCacheDisabled(t *testing.T) {
	out := gen.Generate(gen.WAN(1))
	svc := Services{Queue: mq.NewMemory(), Store: objstore.NewMemory(), Tasks: taskdb.NewMemory()}
	master := NewMaster(svc)

	w := NewWorker("nocache", svc)
	w.RIBCacheSize = -1
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go w.Run(ctx)

	res := runDistributed(t, master, "nocache", out, 3, 3)
	assertMatchesCentral(t, out, res)
	st := w.Stats()
	if st.RIBFileHits != 0 {
		t.Errorf("disabled RIB cache reported %d hits", st.RIBFileHits)
	}
	if st.RIBFileMisses == 0 {
		t.Error("no RIB file fetches recorded")
	}
}
