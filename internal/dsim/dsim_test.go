package dsim

import (
	"context"
	"net"
	"net/netip"
	"testing"
	"time"

	"hoyan/internal/core"
	"hoyan/internal/gen"
	"hoyan/internal/mq"
	"hoyan/internal/netmodel"
	"hoyan/internal/objstore"
	"hoyan/internal/taskdb"
)

// dedupe applies the master's row-dedup to a centralized result so the two
// can be compared (distributed collection collapses identical rows that
// several subtasks derive independently, e.g. local direct routes).
func dedupe(g *netmodel.GlobalRIB) *netmodel.GlobalRIB {
	seen := map[string]bool{}
	var rows []netmodel.Route
	for _, r := range g.Rows() {
		sig := rowSignature(r)
		if !seen[sig] {
			seen[sig] = true
			rows = append(rows, r)
		}
	}
	return netmodel.NewGlobalRIB(rows)
}

func TestSplitRoutesOrderingHeuristic(t *testing.T) {
	mk := func(p string) netmodel.Route {
		return netmodel.Route{Device: "A", VRF: netmodel.DefaultVRF, Prefix: netip.MustParsePrefix(p)}
	}
	// The §3.2 example: r1..r6 with prefixes whose last addresses order them
	// [r1 r2 r6 r4 r3 r5].
	r1, r2, r6 := mk("10.0.0.0/24"), mk("10.0.0.0/8"), mk("20.0.0.0/24")
	r4, r3, r5 := mk("30.0.0.0/24"), mk("30.0.0.0/8"), mk("40.0.0.0/24")
	subs := splitRoutes([]netmodel.Route{r1, r2, r3, r4, r5, r6}, 2)
	if len(subs) != 2 {
		t.Fatalf("subsets = %d", len(subs))
	}
	// R1 = {r1, r2, r6}: range [10.0.0.0, 20.255.255.255] — wait, r6 is a
	// /24 so its last address is 20.0.0.255; the paper's figure uses
	// 20.255.255.255 because its r6 is broader. Verify our invariant: the
	// range covers exactly the member prefixes.
	if subs[0].Lo != netip.MustParseAddr("10.0.0.0") {
		t.Errorf("R1.Lo = %s", subs[0].Lo)
	}
	if subs[0].Hi != netip.MustParseAddr("20.0.0.255") {
		t.Errorf("R1.Hi = %s", subs[0].Hi)
	}
	if len(subs[0].Routes) != 3 || len(subs[1].Routes) != 3 {
		t.Errorf("sizes = %d/%d", len(subs[0].Routes), len(subs[1].Routes))
	}
	if subs[1].Lo != netip.MustParseAddr("30.0.0.0") || subs[1].Hi != netip.MustParseAddr("40.0.0.255") {
		t.Errorf("R2 range = [%s, %s]", subs[1].Lo, subs[1].Hi)
	}
}

func TestSplitRoutesKeepsPrefixTogether(t *testing.T) {
	var inputs []netmodel.Route
	p := netip.MustParsePrefix("10.0.0.0/24")
	for i := 0; i < 5; i++ {
		inputs = append(inputs, netmodel.Route{Device: "A", Prefix: p, LocalPref: uint32(i)})
	}
	inputs = append(inputs, netmodel.Route{Device: "A", Prefix: netip.MustParsePrefix("10.0.1.0/24")})
	subs := splitRoutes(inputs, 3)
	for _, s := range subs {
		seen := map[netip.Prefix]bool{}
		for _, r := range s.Routes {
			seen[r.Prefix] = true
		}
		if seen[p] && len(s.Routes) < 5 {
			// p must be entirely inside one subset.
			count := 0
			for _, r := range s.Routes {
				if r.Prefix == p {
					count++
				}
			}
			if count != 5 {
				t.Fatalf("prefix split across subsets: %d in one subset", count)
			}
		}
	}
}

func TestSplitFlowsByDestination(t *testing.T) {
	mk := func(d string) netmodel.Flow {
		return netmodel.Flow{Ingress: "A", Dst: netip.MustParseAddr(d)}
	}
	flows := []netmodel.Flow{mk("30.0.0.1"), mk("10.0.0.1"), mk("20.0.0.1"), mk("40.0.0.1")}
	subs := splitFlows(flows, 2, StrategyOrdered)
	if len(subs) != 2 {
		t.Fatalf("subsets = %d", len(subs))
	}
	if subs[0].Hi.Compare(subs[1].Lo) > 0 {
		t.Errorf("ordered subsets overlap: [%s,%s] [%s,%s]", subs[0].Lo, subs[0].Hi, subs[1].Lo, subs[1].Hi)
	}
	// Random strategy keeps input order: ranges will overlap heavily.
	subs = splitFlows(flows, 2, StrategyRandom)
	if subs[0].Lo != netip.MustParseAddr("10.0.0.1") || subs[0].Hi != netip.MustParseAddr("30.0.0.1") {
		t.Errorf("random subset range = [%s,%s]", subs[0].Lo, subs[0].Hi)
	}
}

func TestDistributedRouteSimMatchesCentralized(t *testing.T) {
	out := gen.Generate(gen.WAN(1))
	central := dedupe(core.NewEngine(out.Net, core.Options{}).RouteSimulation(out.Inputs).GlobalRIB())

	c := StartLocal(4)
	defer c.Stop()
	snapKey, err := c.Master.UploadSnapshot("t1", out.Net)
	if err != nil {
		t.Fatal(err)
	}
	task, err := c.Master.StartRouteSimulation("t1", snapKey, out.Inputs, 8, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if task.Subtasks != 8 {
		t.Fatalf("subtasks = %d", task.Subtasks)
	}
	if err := c.Master.Wait("t1", "route", task.Subtasks); err != nil {
		t.Fatal(err)
	}
	dist, err := c.Master.CollectRouteResults(task)
	if err != nil {
		t.Fatal(err)
	}
	if !central.Equal(dist) {
		a, b := central.Diff(dist)
		for i := 0; i < len(a) && i < 5; i++ {
			t.Logf("central only: %v", a[i])
		}
		for i := 0; i < len(b) && i < 5; i++ {
			t.Logf("distributed only: %v", b[i])
		}
		t.Fatalf("distributed != centralized (%d vs %d rows, diff %d/%d)", central.Len(), dist.Len(), len(a), len(b))
	}

	// Per-subtask durations recorded for Figure 5(c).
	durs, err := c.Master.SubtaskDurations("t1", "route")
	if err != nil || len(durs) != task.Subtasks {
		t.Errorf("durations = %v %v", durs, err)
	}
}

func TestDistributedTrafficSimMatchesCentralized(t *testing.T) {
	out := gen.Generate(gen.WAN(1))
	eng := core.NewEngine(out.Net, core.Options{})
	centralRoutes := eng.RouteSimulation(out.Inputs)
	centralTraffic := eng.TrafficSimulation(centralRoutes, centralRoutes.GlobalRIB().Rows(), out.Flows)

	c := StartLocal(4)
	defer c.Stop()
	snapKey, err := c.Master.UploadSnapshot("t2", out.Net)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := c.Master.StartRouteSimulation("t2", snapKey, out.Inputs, 6, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Master.Wait("t2", "route", rt.Subtasks); err != nil {
		t.Fatal(err)
	}
	tt, err := c.Master.StartTrafficSimulation("t2", rt, out.Flows, 6, StrategyOrdered, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Master.Wait("t2", "traffic", tt.Subtasks); err != nil {
		t.Fatal(err)
	}
	sum, err := c.Master.CollectTrafficResults(tt)
	if err != nil {
		t.Fatal(err)
	}
	// Link loads must agree with the centralized run.
	for id, v := range centralTraffic.Traffic.Load {
		got := sum.Load[id]
		if d := got - v; d > 1e-3 || d < -1e-3 {
			t.Errorf("load[%s]: distributed %v, centralized %v", id, got, v)
		}
	}
	for id := range sum.Load {
		if _, ok := centralTraffic.Traffic.Load[id]; !ok && sum.Load[id] > 1e-3 {
			t.Errorf("phantom load on %s: %v", id, sum.Load[id])
		}
	}
	if len(sum.Paths) != len(out.Flows) {
		// With flow ECs the distributed side simulates representatives only,
		// same as the centralized side; path counts reflect EC classes per
		// subtask and may exceed the central class count but never the flow
		// count.
		if len(sum.Paths) > len(out.Flows) {
			t.Errorf("paths = %d > flows = %d", len(sum.Paths), len(out.Flows))
		}
	}
}

func TestOrderingHeuristicReducesLoadedFiles(t *testing.T) {
	out := gen.Generate(gen.WAN(2))
	c := StartLocal(4)
	defer c.Stop()
	snapKey, err := c.Master.UploadSnapshot("t3", out.Net)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := c.Master.StartRouteSimulation("t3", snapKey, out.Inputs, 10, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Master.Wait("t3", "route", rt.Subtasks); err != nil {
		t.Fatal(err)
	}

	run := func(taskID string, strategy Strategy) []int {
		tt, err := c.Master.StartTrafficSimulation(taskID, rt, out.Flows, 8, strategy, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Master.Wait(taskID, "traffic", tt.Subtasks); err != nil {
			t.Fatal(err)
		}
		sum, err := c.Master.CollectTrafficResults(tt)
		if err != nil {
			t.Fatal(err)
		}
		return sum.LoadedRIBFiles
	}
	// Reuse t3's route results for three traffic strategies.
	ordered := run("t3", StrategyOrdered)
	baseline := run("t3base", StrategyBaseline)

	sumOf := func(xs []int) int {
		s := 0
		for _, x := range xs {
			s += x
		}
		return s
	}
	so, sb := sumOf(ordered), sumOf(baseline)
	if sb != rt.Subtasks*len(baseline) {
		t.Errorf("baseline must load all files: %d", sb)
	}
	if so >= sb {
		t.Errorf("ordering heuristic must reduce loaded files: ordered=%d baseline=%d", so, sb)
	}
}

func TestMasterRetriesFailedSubtask(t *testing.T) {
	out := gen.Generate(gen.WAN(1))
	memq := mq.NewMemory()
	svc := Services{Queue: memq, Store: objstore.NewMemory(), Tasks: taskdb.NewMemory()}
	master := NewMaster(svc)

	w := NewWorker("flaky", svc)
	w.FailNext = 2 // first two subtasks fail, then recover
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go w.Run(ctx)

	snapKey, err := master.UploadSnapshot("t4", out.Net)
	if err != nil {
		t.Fatal(err)
	}
	task, err := master.StartRouteSimulation("t4", snapKey, out.Inputs, 4, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := master.Wait("t4", "route", task.Subtasks); err != nil {
		t.Fatalf("Wait with retries: %v", err)
	}
	if _, err := master.CollectRouteResults(task); err != nil {
		t.Fatal(err)
	}
	// Verify some record shows a retry.
	recs, _ := svc.Tasks.List("t4")
	retried := false
	for _, rec := range recs {
		if rec.Attempts > 0 {
			retried = true
		}
	}
	if !retried {
		t.Error("no retry recorded")
	}
}

func TestPermanentFailureSurfaces(t *testing.T) {
	out := gen.Generate(gen.WAN(1))
	memq := mq.NewMemory()
	svc := Services{Queue: memq, Store: objstore.NewMemory(), Tasks: taskdb.NewMemory()}
	master := NewMaster(svc)
	master.MaxAttempts = 1
	master.Timeout = 5 * time.Second

	w := NewWorker("dead", svc)
	w.FailNext = 1000
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go w.Run(ctx)

	snapKey, _ := master.UploadSnapshot("t5", out.Net)
	task, err := master.StartRouteSimulation("t5", snapKey, out.Inputs[:4], 2, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := master.Wait("t5", "route", task.Subtasks); err == nil {
		t.Fatal("want permanent failure error")
	}
}

func TestDistributedOverTCPSubstrates(t *testing.T) {
	// Full framework over real TCP connections: MQ, object store, and task
	// DB each served on a loopback listener; master and worker use clients.
	lq, _ := net.Listen("tcp", "127.0.0.1:0")
	ls, _ := net.Listen("tcp", "127.0.0.1:0")
	lt, _ := net.Listen("tcp", "127.0.0.1:0")
	defer lq.Close()
	defer ls.Close()
	defer lt.Close()
	mq.Serve(lq, mq.NewMemory())
	objstore.Serve(ls, objstore.NewMemory())
	taskdb.Serve(lt, taskdb.NewMemory())

	dialServices := func() Services {
		qc, err := mq.Dial(lq.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		sc, err := objstore.Dial(ls.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		tc, err := taskdb.Dial(lt.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		return Services{Queue: qc, Store: sc, Tasks: tc}
	}

	out := gen.Generate(gen.WAN(1))
	master := NewMaster(dialServices())
	master.Timeout = 30 * time.Second

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	for i := 0; i < 2; i++ {
		w := NewWorker("tcp-worker", dialServices())
		go w.Run(ctx)
	}

	snapKey, err := master.UploadSnapshot("tcp1", out.Net)
	if err != nil {
		t.Fatal(err)
	}
	task, err := master.StartRouteSimulation("tcp1", snapKey, out.Inputs, 4, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := master.Wait("tcp1", "route", task.Subtasks); err != nil {
		t.Fatal(err)
	}
	dist, err := master.CollectRouteResults(task)
	if err != nil {
		t.Fatal(err)
	}
	central := dedupe(core.NewEngine(out.Net, core.Options{}).RouteSimulation(out.Inputs).GlobalRIB())
	if !central.Equal(dist) {
		t.Fatal("TCP-distributed result differs from centralized")
	}
}

func TestSplitRoutesPartitionProperty(t *testing.T) {
	// Property: splitRoutes partitions the inputs exactly, subsets are
	// contiguous in last-address order, and each subset's range covers every
	// member prefix.
	rnd := func(seed int64) []netmodel.Route {
		out := gen.Generate(gen.Profile{
			Name: "prop", Seed: seed, Regions: 2, CoresPerRegion: 2,
			BordersPerRegion: 1, RRsPerRegion: 1, DCsPerRegion: 1,
			ISPsPerRegion: 1, PrefixesPerDC: 13, PrefixesPerISP: 7, Flows: 0,
		})
		return out.Inputs
	}
	for seed := int64(1); seed <= 3; seed++ {
		inputs := rnd(seed)
		for _, n := range []int{1, 3, 7, len(inputs), len(inputs) * 2} {
			subs := splitRoutes(inputs, n)
			total := 0
			prefixHome := map[netip.Prefix]int{}
			for i, sub := range subs {
				total += len(sub.Routes)
				for _, r := range sub.Routes {
					if home, seen := prefixHome[r.Prefix]; seen && home != i {
						t.Fatalf("prefix %s split across subsets %d and %d", r.Prefix, home, i)
					}
					prefixHome[r.Prefix] = i
					if r.Prefix.Masked().Addr().Compare(sub.Lo) < 0 ||
						netmodel.LastAddr(r.Prefix).Compare(sub.Hi) > 0 {
						t.Fatalf("range [%s,%s] does not cover %s", sub.Lo, sub.Hi, r.Prefix)
					}
				}
			}
			if total != len(inputs) {
				t.Fatalf("partition lost routes: %d != %d", total, len(inputs))
			}
		}
	}
}

func TestSplitFlowsPartitionProperty(t *testing.T) {
	out := gen.Generate(gen.WAN(1))
	for _, n := range []int{1, 4, 9, len(out.Flows)} {
		for _, strategy := range []Strategy{StrategyOrdered, StrategyRandom} {
			subs := splitFlows(out.Flows, n, strategy)
			total := 0
			for _, sub := range subs {
				total += len(sub.Flows)
				for _, f := range sub.Flows {
					if f.Dst.Compare(sub.Lo) < 0 || f.Dst.Compare(sub.Hi) > 0 {
						t.Fatalf("flow dst %s outside range [%s,%s]", f.Dst, sub.Lo, sub.Hi)
					}
				}
			}
			if total != len(out.Flows) {
				t.Fatalf("%s: partition lost flows: %d != %d", strategy, total, len(out.Flows))
			}
		}
	}
}
