package dsim

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"hoyan/internal/core"
	"hoyan/internal/faults"
	"hoyan/internal/gen"
	"hoyan/internal/mq"
	"hoyan/internal/netmodel"
	"hoyan/internal/objstore"
	"hoyan/internal/shard"
	"hoyan/internal/taskdb"
)

// TestShardWholeNetworkEquivalence pins the tentpole's hard requirement at
// the distributed layer: the sharded fleet's stitched base RIB — and every
// contained what-if scenario's — is byte-identical to the whole-network
// distributed path, and the stitched result file drives the unchanged
// traffic stage.
func TestShardWholeNetworkEquivalence(t *testing.T) {
	out := gen.Generate(gen.WAN(1))
	c := StartLocal(4)
	defer c.Stop()

	snapKey, err := c.Master.UploadSnapshot("shardeq", out.Net)
	if err != nil {
		t.Fatal(err)
	}
	v := c.Master.NewShardVerifier(snapKey, out.Net, out.Inputs, 3, 0, core.Options{})
	rt, err := v.Base("shardeq", 4)
	if err != nil {
		t.Fatal(err)
	}
	dist, err := c.Master.CollectRouteResults(rt)
	if err != nil {
		t.Fatal(err)
	}
	central := dedupe(core.NewEngine(out.Net, core.Options{}).RouteSimulation(out.Inputs).GlobalRIB())
	if !central.Equal(dist) {
		a, b := central.Diff(dist)
		t.Fatalf("sharded base RIB != centralized (%d vs %d rows, diff %d/%d)",
			central.Len(), dist.Len(), len(a), len(b))
	}
	if v.BaseFellBack {
		t.Error("base fixpoint fell back to the whole-network path")
	}

	// The stitched single-file route result feeds the traffic stage like any
	// other route task.
	tt, err := c.Master.StartTrafficSimulation("shardeq", rt, out.Flows, 4, StrategyOrdered, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Master.Wait("shardeq", "traffic", tt.Subtasks); err != nil {
		t.Fatal(err)
	}
	sum, err := c.Master.CollectTrafficResults(tt)
	if err != nil {
		t.Fatal(err)
	}
	eng := core.NewEngine(out.Net, core.Options{})
	routes := eng.RouteSimulation(out.Inputs)
	centralTraffic := eng.TrafficSimulation(routes, routes.GlobalRIB().Rows(), out.Flows)
	for id, want := range centralTraffic.Traffic.Load {
		if d := sum.Load[id] - want; d > 1e-3 || d < -1e-3 {
			t.Errorf("load[%s]: sharded %v, centralized %v", id, sum.Load[id], want)
		}
	}

	// What-if sweep: every contained link failure must stitch byte-identical
	// to a whole-network scenario re-simulation.
	links := out.Net.Topo.Links()
	contained, fellBack := 0, 0
	for i, l := range links {
		if i >= 16 {
			break
		}
		delta := core.Delta{LinksDown: []netmodel.LinkID{l.ID()}}
		scenID := fmt.Sprintf("shardeq-wi%d", i)
		srt, err := v.WhatIf(scenID, delta)
		if errors.Is(err, shard.ErrNotContained) {
			fellBack++
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		contained++
		got, err := c.Master.CollectRouteResults(srt)
		if err != nil {
			t.Fatal(err)
		}
		scratch := out.Net.Clone()
		scratch.Topo.SetLinkUp(l.ID(), false)
		want := dedupe(core.NewEngine(scratch, core.Options{}).RouteSimulation(out.Inputs).GlobalRIB())
		if !want.Equal(got) {
			a, b := want.Diff(got)
			t.Fatalf("link %v: sharded what-if RIB != centralized scenario (diff %d/%d)",
				l.ID(), len(a), len(b))
		}
	}
	if contained == 0 {
		t.Fatal("no link failure was contained; the distributed what-if path is untested")
	}
	t.Logf("contained=%d fellback=%d rounds(last)=%d reused(last)=%d",
		contained, fellBack, v.LastRounds, v.LastReused)
}

// TestShardWholeNetworkEquivalenceRandomized verifies sharded base runs over
// seeded randomly-degraded topologies — partitions whose seams start broken —
// against the centralized whole-network engine.
func TestShardWholeNetworkEquivalenceRandomized(t *testing.T) {
	rnd := rand.New(rand.NewSource(42))
	c := StartLocal(4)
	defer c.Stop()
	for trial := 0; trial < 3; trial++ {
		out := gen.Generate(gen.WAN(1))
		links := out.Net.Topo.Links()
		for i := 0; i < 2+rnd.Intn(3); i++ {
			out.Net.Topo.SetLinkUp(links[rnd.Intn(len(links))].ID(), false)
		}
		taskID := fmt.Sprintf("shardrnd%d", trial)
		snapKey, err := c.Master.UploadSnapshot(taskID, out.Net)
		if err != nil {
			t.Fatal(err)
		}
		v := c.Master.NewShardVerifier(snapKey, out.Net, out.Inputs, 3, 0, core.Options{})
		rt, err := v.Base(taskID, 4)
		if err != nil {
			t.Fatal(err)
		}
		dist, err := c.Master.CollectRouteResults(rt)
		if err != nil {
			t.Fatal(err)
		}
		central := dedupe(core.NewEngine(out.Net, core.Options{}).RouteSimulation(out.Inputs).GlobalRIB())
		if !central.Equal(dist) {
			a, b := central.Diff(dist)
			t.Fatalf("trial %d: sharded RIB != centralized on degraded topology (diff %d/%d)",
				trial, len(a), len(b))
		}
	}
}

// TestShardChaosCrashMidContractRound crashes a worker holding a claimed
// shard subtask mid-contract-round, on flaky substrates, and requires the
// lease-reclaimed run to stay byte-identical to a clean sharded run and to
// the centralized engine. Shard results are canonical (sorted rows, sorted
// contract), so at-least-once re-execution converges to the same bytes.
func TestShardChaosCrashMidContractRound(t *testing.T) {
	out := gen.Generate(gen.WAN(1))

	// Clean sharded reference.
	cleanCluster := StartLocal(3)
	snapKey, err := cleanCluster.Master.UploadSnapshot("clean", out.Net)
	if err != nil {
		t.Fatal(err)
	}
	vc := cleanCluster.Master.NewShardVerifier(snapKey, out.Net, out.Inputs, 3, 0, core.Options{})
	crt, err := vc.Base("clean", 3)
	if err != nil {
		t.Fatal(err)
	}
	clean, err := cleanCluster.Master.CollectRouteResults(crt)
	if err != nil {
		t.Fatal(err)
	}
	cleanCluster.Stop()

	// Chaos cluster: flaky substrates (transient injected errors ridden out
	// by the retry wrappers) plus a worker that dies holding a shard subtask.
	inj := faults.NewInjector(20260808)
	inj.ErrorRate = 0.02
	svc := Services{
		Queue: faults.FlakyQueue{Q: mq.NewMemory(), In: inj},
		Store: faults.FlakyStore{S: objstore.NewMemory(), In: inj},
		Tasks: faults.FlakyTasks{DB: taskdb.NewMemory(), In: inj},
	}
	master := chaosMaster(svc, 5, 300*time.Millisecond)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	crasher := NewWorker("crasher", svc)
	crasher.CrashNext = 1
	crasher.HeartbeatInterval = 25 * time.Millisecond
	go crasher.Run(ctx)
	for i := 0; i < 2; i++ {
		w := NewWorker(fmt.Sprintf("worker-%d", i), svc)
		w.HeartbeatInterval = 25 * time.Millisecond
		go w.Run(ctx)
	}

	chaosSnap, err := master.UploadSnapshot("chaos", out.Net)
	if err != nil {
		t.Fatal(err)
	}
	v := master.NewShardVerifier(chaosSnap, out.Net, out.Inputs, 3, 0, core.Options{})
	rt, err := v.Base("chaos", 3)
	if err != nil {
		t.Fatal(err)
	}
	chaos, err := master.CollectRouteResults(rt)
	if err != nil {
		t.Fatal(err)
	}
	if !clean.Equal(chaos) {
		a, b := clean.Diff(chaos)
		t.Fatalf("chaos sharded RIB != clean sharded RIB (diff %d/%d)", len(a), len(b))
	}
	central := dedupe(core.NewEngine(out.Net, core.Options{}).RouteSimulation(out.Inputs).GlobalRIB())
	if !central.Equal(chaos) {
		t.Fatal("chaos sharded RIB != centralized RIB")
	}

	// The crash actually exercised the reclaim path.
	recs, err := svc.Tasks.List("chaos")
	if err != nil {
		t.Fatal(err)
	}
	reclaimed := 0
	for _, rec := range recs {
		if rec.Status != taskdb.StatusDone {
			t.Errorf("subtask %s not done: %s", rec.Key(), rec.Status)
		}
		if rec.Attempts > 0 {
			reclaimed++
		}
	}
	if reclaimed == 0 {
		t.Error("no shard subtask was lease-reclaimed; the crash missed")
	}
}
