package dsim

import (
	"encoding/json"
	"fmt"
	"time"

	"hoyan/internal/taskdb"
	"hoyan/internal/telemetry"
)

// persistMsg stores a subtask's message payload in the object store (under
// msgKey) before the subtask becomes visible in the task DB, so a restarted
// master can reconstruct every in-flight subtask from the substrates alone.
// Trace-propagation stamps are deliberately excluded: they belong to one
// enqueue, not to the subtask.
func (m *Master) persistMsg(msg SubtaskMsg) error {
	msg.TraceID, msg.ParentSpan, msg.EnqueuedUnixNano = "", "", 0
	msg.Attempt = 0
	data, err := json.Marshal(msg)
	if err != nil {
		return fmt.Errorf("dsim: encoding subtask message %s: %w", msg.key(), err)
	}
	if err := m.svc.Store.Put(msgKey(msg.TaskID, msg.Kind, msg.SubID), data); err != nil {
		return fmt.Errorf("dsim: persisting subtask message %s: %w", msg.key(), err)
	}
	return nil
}

// ResumeInfo summarizes what Master.Resume recovered.
type ResumeInfo struct {
	TaskID      string
	SnapshotKey string
	// RouteSubtasks / TrafficSubtasks are the total subtask counts found per
	// kind — what the caller passes back to Wait and the Collect functions.
	RouteSubtasks   int
	TrafficSubtasks int
	// Reenqueued counts subtasks re-enqueued with a bumped attempt epoch;
	// Done counts subtasks already complete (their results are reused as-is).
	Reenqueued int
	Done       int
}

// Resume reconstructs a task after a master restart: it reads the recovered
// task DB, reloads each subtask's persisted message from the object store,
// and re-enqueues every subtask that is not done with a bumped attempt epoch.
// The bump fences out both workers still executing a pre-restart attempt and
// stale copies of the message that survived in the recovered queue — exactly
// the mechanism re-enqueues use, so resumed runs converge to byte-identical
// results. Completed subtasks keep their results; the caller continues with
// Wait + Collect as if it had started the task itself.
func (m *Master) Resume(taskID string) (*ResumeInfo, error) {
	recs, err := m.svc.Tasks.List(taskID)
	if err != nil {
		return nil, err
	}
	if len(recs) == 0 {
		return nil, fmt.Errorf("dsim: nothing to resume: task %s has no recorded subtasks", taskID)
	}
	info := &ResumeInfo{TaskID: taskID}
	for _, rec := range recs {
		data, err := m.svc.Store.Get(msgKey(rec.TaskID, rec.Kind, rec.SubID))
		if err != nil {
			return nil, fmt.Errorf("dsim: resume %s: loading message of %s: %w", taskID, rec.Key(), err)
		}
		var msg SubtaskMsg
		if err := json.Unmarshal(data, &msg); err != nil {
			return nil, fmt.Errorf("dsim: resume %s: decoding message of %s: %w", taskID, rec.Key(), err)
		}
		switch rec.Kind {
		case "route":
			info.RouteSubtasks++
		case "traffic":
			info.TrafficSubtasks++
		}
		if msg.SnapshotKey != "" {
			info.SnapshotKey = msg.SnapshotKey
		}
		msg.Attempt = rec.Attempts
		m.msgs[msg.key()] = msg
		if rec.Status == taskdb.StatusDone {
			info.Done++
			continue
		}
		if rec.Attempts >= m.MaxAttempts {
			return nil, fmt.Errorf("dsim: resume %s: subtask %s already exhausted %d attempts",
				taskID, rec.Key(), rec.Attempts)
		}
		m.metrics.ReenqueueResume.Inc()
		m.Events.Log("subtask.resume",
			telemetry.F("subtask", rec.Key()),
			telemetry.F("attempt", rec.Attempts+1),
			telemetry.F("prev_status", string(rec.Status)))
		rec.Status = taskdb.StatusPending
		rec.Attempts++
		rec.Worker = ""
		rec.Error = ""
		rec.EnqueuedAt = time.Now()
		rec.StartedAt = time.Time{}
		rec.HeartbeatAt = time.Time{}
		// Record before push, like reenqueue: a worker may pop the fresh
		// message immediately and its claim must not be clobbered.
		if _, err := m.svc.Tasks.FencedUpsert(rec); err != nil {
			return nil, err
		}
		msg.Attempt = rec.Attempts
		m.msgs[msg.key()] = msg
		sp := m.stampTrace(&msg)
		sp.SetTag("cause", "master_resume")
		enc, err := msg.encode()
		if err != nil {
			sp.End()
			return nil, err
		}
		err = m.svc.Queue.Push(Topic, enc)
		sp.End()
		if err != nil {
			// Push already retried by the substrate wrapper; the pending
			// record is covered by the lost-message sweep in Wait.
			m.logResumeEvent(rec, err)
		}
		info.Reenqueued++
	}
	return info, nil
}

// RouteTaskOf / TrafficTaskOf rebuild the task handles a resumed Wait/Collect
// sequence needs from a ResumeInfo.
func (info *ResumeInfo) RouteTask() *RouteTask {
	return &RouteTask{ID: info.TaskID, SnapshotKey: info.SnapshotKey, Subtasks: info.RouteSubtasks}
}

// TrafficTask rebuilds the traffic task handle (nil when the task had not
// reached the traffic phase).
func (info *ResumeInfo) TrafficTask() *TrafficTask {
	if info.TrafficSubtasks == 0 {
		return nil
	}
	return &TrafficTask{ID: info.TaskID, Subtasks: info.TrafficSubtasks}
}

func (m *Master) logResumeEvent(rec taskdb.Record, err error) {
	m.Events.Log("subtask.resume.push_failed",
		telemetry.F("subtask", rec.Key()),
		telemetry.F("error", err.Error()))
}
