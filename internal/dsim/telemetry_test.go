package dsim

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"hoyan/internal/faults"
	"hoyan/internal/gen"
	"hoyan/internal/mq"
	"hoyan/internal/objstore"
	"hoyan/internal/taskdb"
	"hoyan/internal/telemetry"
)

// dialTCPServices serves fresh in-memory substrates on loopback listeners
// (registering their server counters in reg) and returns a dialer producing
// independent client sets.
func dialTCPServices(t *testing.T, reg *telemetry.Registry) func() Services {
	t.Helper()
	lq, _ := net.Listen("tcp", "127.0.0.1:0")
	ls, _ := net.Listen("tcp", "127.0.0.1:0")
	lt, _ := net.Listen("tcp", "127.0.0.1:0")
	t.Cleanup(func() { lq.Close(); ls.Close(); lt.Close() })
	mq.ServeRegistry(lq, mq.NewMemory(), reg)
	objstore.ServeRegistry(ls, objstore.NewMemory(), reg)
	taskdb.ServeRegistry(lt, taskdb.NewMemory(), reg)
	return func() Services {
		qc, err := mq.Dial(lq.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		sc, err := objstore.Dial(ls.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		tc, err := taskdb.Dial(lt.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		return Services{Queue: qc, Store: sc, Tasks: tc}
	}
}

// TestTracePropagationOverTCP runs the full pipeline over real TCP
// substrates with tracing on and checks that one trace ID spans the whole
// run: the master's root and enqueue spans and every worker's subtask
// lifecycle spans, stitched together purely through the span context carried
// inside SubtaskMsg.
func TestTracePropagationOverTCP(t *testing.T) {
	masterReg := telemetry.NewRegistry()
	dial := dialTCPServices(t, masterReg)

	out := gen.Generate(gen.WAN(1))
	const nRoute, nTraffic = 4, 4

	master := NewMaster(dial())
	master.Timeout = 30 * time.Second
	master.Tracer = telemetry.NewTracer("master")
	master.Instrument(masterReg)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var workers []*Worker
	var workerRegs []*telemetry.Registry
	for i := 0; i < 2; i++ {
		w := NewWorker(fmt.Sprintf("tcp-worker-%d", i), dial())
		w.Tracer = telemetry.NewTracer(w.Name)
		reg := telemetry.NewRegistry()
		w.Instrument(reg)
		workers = append(workers, w)
		workerRegs = append(workerRegs, reg)
		go w.Run(ctx)
	}

	runSpan := master.BeginRun("run tcp-trace")
	res := runDistributed(t, master, "tcp-trace", out, nRoute, nTraffic)
	runSpan.End()
	assertMatchesCentral(t, out, res)

	spans := master.Tracer.Spans()
	for _, w := range workers {
		spans = append(spans, w.Tracer.Spans()...)
	}

	traces := map[string]bool{}
	byName := map[string]int{}
	var rootTrace string
	for _, sp := range spans {
		traces[sp.TraceID] = true
		byName[sp.Name]++
		if sp.Name == "run tcp-trace" {
			rootTrace = sp.TraceID
		}
		if sp.TraceID == "" {
			t.Errorf("span %q has no trace ID", sp.Name)
		}
	}
	if len(traces) != 1 {
		t.Fatalf("got %d distinct trace IDs across master+workers, want 1: %v", len(traces), traces)
	}
	if rootTrace == "" {
		t.Fatal("no root span named \"run tcp-trace\"")
	}

	// Every subtask executes exactly once on a worker, and each execution
	// leaves the full lifecycle under the run's trace.
	total := nRoute + nTraffic
	wants := map[string]int{
		"enqueue":        total, // master side
		"worker.subtask": total, // worker side, remote parent from the wire
		"mq.wait":        total,
		"decode":         total,
		"engine.run":     total,
		"result.encode":  total,
		"objstore.put":   total,
		"taskdb.upsert":  total,
	}
	for name, want := range wants {
		if byName[name] != want {
			t.Errorf("span %q recorded %d times, want %d", name, byName[name], want)
		}
	}
	if byName["snapshot.restore"] == 0 {
		t.Error("no snapshot.restore spans recorded")
	}

	// Acceptance floor for the ops surface: master-side and worker-side
	// registries each expose a healthy set of distinct metric series.
	if n := len(masterReg.Gather()); n < 15 {
		t.Errorf("master registry has %d series, want >= 15", n)
	}
	for i, reg := range workerRegs {
		if n := len(reg.Gather()); n < 15 {
			t.Errorf("worker %d registry has %d series, want >= 15", i, n)
		}
	}
}

// TestChaosDeterminismWithTelemetry repeats the chaos byte-identity check
// with the whole observability stack on — metrics, tracing, and the
// structured event log — proving telemetry never perturbs simulation
// results. It also checks the event stream is valid JSON lines carrying the
// retry/failure diagnostics the chaos run must have produced.
func TestChaosDeterminismWithTelemetry(t *testing.T) {
	out := gen.Generate(gen.WAN(1))
	const nRoute, nTraffic = 6, 6

	// Clean reference run, telemetry on.
	cleanCluster := StartLocalOptions(LocalOptions{Workers: 3, Telemetry: true})
	clean := runDistributed(t, cleanCluster.Master, "clean-tel", out, nRoute, nTraffic)
	if snap := cleanCluster.MetricsSnapshot(); len(snap) < 15 {
		t.Errorf("clean fleet snapshot has %d series, want >= 15", len(snap))
	}
	cleanCluster.Stop()

	// Chaos run: flaky substrates, a crashing worker, and every telemetry
	// sink attached.
	inj := faults.NewInjector(20260806)
	inj.ErrorRate = 0.10
	var eventBuf bytes.Buffer
	events := telemetry.NewEventLogger(&eventBuf)
	svc := Services{
		Queue: faults.FlakyQueue{Q: mq.NewMemory(), In: inj},
		Store: faults.FlakyStore{S: objstore.NewMemory(), In: inj},
		Tasks: faults.FlakyTasks{DB: taskdb.NewMemory(), In: inj},
	}
	reg := telemetry.NewRegistry()
	master := chaosMaster(svc, 10, 400*time.Millisecond)
	master.Tracer = telemetry.NewTracer("master")
	master.Events = events
	master.Instrument(reg)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	for i := 0; i < 3; i++ {
		w := NewWorker(fmt.Sprintf("chaos-tel-%d", i), svc)
		w.HeartbeatInterval = 25 * time.Millisecond
		w.Tracer = telemetry.NewTracer(w.Name)
		w.Events = events
		w.Instrument(reg)
		if i == 0 {
			w.CrashNext = 1
		}
		go w.Run(ctx)
	}

	chaos := runDistributed(t, master, "chaos-tel", out, nRoute, nTraffic)
	assertMatchesCentral(t, out, chaos)
	assertSameDistributed(t, clean, chaos)

	// The injected faults must have surfaced in the structured event stream,
	// and every line must parse as one JSON object.
	lines := strings.Split(strings.TrimSpace(eventBuf.String()), "\n")
	if len(lines) == 0 || lines[0] == "" {
		t.Fatal("chaos run produced no structured events")
	}
	for i, line := range lines {
		var obj map[string]any
		if err := json.Unmarshal([]byte(line), &obj); err != nil {
			t.Fatalf("event line %d is not valid JSON: %v\n%s", i, err, line)
		}
		if obj["event"] == "" || obj["event"] == nil {
			t.Errorf("event line %d has no event field: %s", i, line)
		}
	}
	// Retries against the flaky substrates are counted per component.
	snap := reg.Gather()
	var retries float64
	for _, s := range snap {
		if s.Name == "hoyan_retry_attempts_total" {
			retries += s.Value
		}
	}
	if retries == 0 {
		t.Error("chaos run recorded no retry attempts in the registry")
	}
}
