package dsim

import (
	"context"
	"errors"
	"net/rpc"
	"time"

	"hoyan/internal/mq"
	"hoyan/internal/objstore"
	"hoyan/internal/retry"
	"hoyan/internal/taskdb"
)

// TransientSubstrateError classifies substrate errors for the retry layer:
// everything is presumed transient (TCP resets, I/O deadlines, injected
// chaos) except deliberate shutdown (mq.ErrClosed, rpc.ErrShutdown), missing
// objects (objstore.ErrNotFound — inputs and snapshots are written before any
// message referencing them is pushed, so absence is a protocol bug, not a
// flake), context cancellation, and errors marked retry.Permanent.
func TransientSubstrateError(err error) bool {
	if err == nil {
		return false
	}
	switch {
	case errors.Is(err, mq.ErrClosed),
		errors.Is(err, objstore.ErrNotFound),
		errors.Is(err, rpc.ErrShutdown),
		errors.Is(err, context.Canceled),
		errors.Is(err, context.DeadlineExceeded),
		retry.IsPermanent(err):
		return false
	}
	return true
}

// DefaultRetryPolicy is the policy masters and workers wrap their substrate
// handles with: five tries over roughly a second, transient-only.
func DefaultRetryPolicy() retry.Policy {
	p := retry.Default()
	p.Retryable = TransientSubstrateError
	return p
}

// WithRetry wraps the services' queue, store, and task DB so every call rides
// out transient substrate errors under the policy. Already-wrapped handles
// are left alone, so nesting WithRetry does not multiply retries.
func WithRetry(svc Services, p retry.Policy) Services {
	if _, ok := svc.Queue.(*retryQueue); !ok {
		svc.Queue = &retryQueue{q: svc.Queue, p: p}
	}
	if _, ok := svc.Store.(*retryStore); !ok {
		svc.Store = &retryStore{s: svc.Store, p: p}
	}
	if _, ok := svc.Tasks.(*retryTasks); !ok {
		svc.Tasks = &retryTasks{db: svc.Tasks, p: p}
	}
	return svc
}

// retryQueue retries mq.Queue calls.
type retryQueue struct {
	q mq.Queue
	p retry.Policy
}

func (r *retryQueue) Push(topic string, m mq.Message) error {
	return r.p.Do(context.Background(), func() error { return r.q.Push(topic, m) })
}

// Pop retries transient errors. Note the at-least-once consequence: if a
// reply is lost after the server already dequeued a message, the retried Pop
// returns a different message and the first one is gone — the master's lease
// reclaim re-enqueues its subtask.
func (r *retryQueue) Pop(topic string, wait time.Duration) (m mq.Message, ok bool, err error) {
	err = r.p.Do(context.Background(), func() error {
		var e error
		m, ok, e = r.q.Pop(topic, wait)
		return e
	})
	return m, ok, err
}

func (r *retryQueue) Len(topic string) (n int, err error) {
	err = r.p.Do(context.Background(), func() error {
		var e error
		n, e = r.q.Len(topic)
		return e
	})
	return n, err
}

// retryStore retries objstore.Store calls.
type retryStore struct {
	s objstore.Store
	p retry.Policy
}

func (r *retryStore) Put(key string, data []byte) error {
	return r.p.Do(context.Background(), func() error { return r.s.Put(key, data) })
}

func (r *retryStore) Get(key string) (data []byte, err error) {
	err = r.p.Do(context.Background(), func() error {
		var e error
		data, e = r.s.Get(key)
		return e
	})
	return data, err
}

func (r *retryStore) List(prefix string) (keys []string, err error) {
	err = r.p.Do(context.Background(), func() error {
		var e error
		keys, e = r.s.List(prefix)
		return e
	})
	return keys, err
}

func (r *retryStore) Delete(key string) error {
	return r.p.Do(context.Background(), func() error { return r.s.Delete(key) })
}

// retryTasks retries taskdb.DB calls.
type retryTasks struct {
	db taskdb.DB
	p  retry.Policy
}

func (r *retryTasks) Upsert(rec taskdb.Record) error {
	return r.p.Do(context.Background(), func() error { return r.db.Upsert(rec) })
}

func (r *retryTasks) FencedUpsert(rec taskdb.Record) (applied bool, err error) {
	err = r.p.Do(context.Background(), func() error {
		var e error
		applied, e = r.db.FencedUpsert(rec)
		return e
	})
	return applied, err
}

func (r *retryTasks) Heartbeat(taskID, kind string, subID, attempt int, at time.Time) (applied bool, err error) {
	err = r.p.Do(context.Background(), func() error {
		var e error
		applied, e = r.db.Heartbeat(taskID, kind, subID, attempt, at)
		return e
	})
	return applied, err
}

func (r *retryTasks) Get(taskID, kind string, subID int) (rec taskdb.Record, ok bool, err error) {
	err = r.p.Do(context.Background(), func() error {
		var e error
		rec, ok, e = r.db.Get(taskID, kind, subID)
		return e
	})
	return rec, ok, err
}

func (r *retryTasks) List(taskID string) (recs []taskdb.Record, err error) {
	err = r.p.Do(context.Background(), func() error {
		var e error
		recs, e = r.db.List(taskID)
		return e
	})
	return recs, err
}
