package dsim

import (
	"hoyan/internal/bgp"
	"hoyan/internal/netmodel"
	"hoyan/internal/retry"
	"hoyan/internal/telemetry"
)

// stripeImbalanceBuckets grade the max/mean dirty-pair ratio across a BGP
// run's stripes: 1.0 is perfectly balanced, anything past ~2 means one
// stripe (usually a big aggregation dependency group) dominated wall time.
var stripeImbalanceBuckets = []float64{1, 1.1, 1.25, 1.5, 2, 3, 5}

// WorkerMetrics are one worker's pre-registered telemetry instruments. Every
// field is non-nil (NewWorkerMetrics with a nil registry yields detached
// instruments), so the hot path is a plain atomic op with no branching.
type WorkerMetrics struct {
	// Subtask outcomes.
	SubtasksRoute   *telemetry.Counter // hoyan_worker_subtasks_total{kind=route}
	SubtasksTraffic *telemetry.Counter
	SubtasksShard   *telemetry.Counter // hoyan_worker_subtasks_total{kind=traffic}
	Failures        *telemetry.Counter
	StaleSkipped    *telemetry.Counter
	Heartbeats      *telemetry.Counter
	PopEmpty        *telemetry.Counter
	PopErrors       *telemetry.Counter

	// Cache and transfer counters (the CacheStats compatibility view reads
	// these).
	SnapshotHits   *telemetry.Counter
	SnapshotMisses *telemetry.Counter
	RIBHits        *telemetry.Counter
	RIBMisses      *telemetry.Counter
	BytesFetched   *telemetry.Counter
	BytesSaved     *telemetry.Counter
	CacheEvictions *telemetry.Counter

	// Interner table sizes of the worker's cached engines (gauges: the
	// indexed core's ID-table footprint, refreshed after every subtask).
	InternDevices    *telemetry.Gauge
	InternLinks      *telemetry.Gauge
	InternPrefixes   *telemetry.Gauge
	InternTableBytes *telemetry.Gauge

	// Striped-fixpoint activity of the worker's BGP runs (see bgp.ParStats):
	// rounds that actually fanned out, stripes they used, and the per-run
	// max/mean dirty-pair imbalance ratio.
	BGPParallelRounds  *telemetry.Counter   // bgp_parallel_rounds_total
	BGPStripes         *telemetry.Counter   // bgp_stripes_total
	BGPStripeImbalance *telemetry.Histogram // bgp_stripe_imbalance_ratio

	// Per-stage wall time (the §5-style measurement seam: where does a
	// subtask spend its time).
	QueueWaitSeconds *telemetry.Histogram
	DecodeSeconds    *telemetry.Histogram
	RestoreSeconds   *telemetry.Histogram
	EngineSeconds    *telemetry.Histogram
	EncodeSeconds    *telemetry.Histogram
	PutSeconds       *telemetry.Histogram
	SubtaskSeconds   *telemetry.Histogram
}

// NewWorkerMetrics registers the worker metric set in reg (nil reg = detached
// instruments, telemetry disabled but all call sites stay valid).
func NewWorkerMetrics(reg *telemetry.Registry) *WorkerMetrics {
	stage := func(name string) *telemetry.Histogram {
		return reg.Histogram("hoyan_worker_stage_seconds",
			"per-stage wall time of subtask execution",
			telemetry.DurationBuckets, telemetry.L("stage", name))
	}
	return &WorkerMetrics{
		SubtasksRoute: reg.Counter("hoyan_worker_subtasks_total",
			"subtasks executed", telemetry.L("kind", "route")),
		SubtasksTraffic: reg.Counter("hoyan_worker_subtasks_total",
			"subtasks executed", telemetry.L("kind", "traffic")),
		SubtasksShard: reg.Counter("hoyan_worker_subtasks_total",
			"subtasks executed", telemetry.L("kind", "shard")),
		Failures:     reg.Counter("hoyan_worker_subtask_failures_total", "subtasks that reported failure"),
		StaleSkipped: reg.Counter("hoyan_worker_stale_messages_total", "messages skipped because a newer attempt owns the subtask"),
		Heartbeats:   reg.Counter("hoyan_worker_heartbeats_total", "lease heartbeats sent"),
		PopEmpty:     reg.Counter("hoyan_worker_pop_empty_total", "queue polls that timed out empty"),
		PopErrors:    reg.Counter("hoyan_worker_pop_errors_total", "transient queue pop errors ridden out"),

		SnapshotHits:   reg.Counter("hoyan_worker_snapshot_cache_total", "snapshot/engine cache lookups", telemetry.L("result", "hit")),
		SnapshotMisses: reg.Counter("hoyan_worker_snapshot_cache_total", "snapshot/engine cache lookups", telemetry.L("result", "miss")),
		RIBHits:        reg.Counter("hoyan_worker_rib_cache_total", "route-RIB file cache lookups", telemetry.L("result", "hit")),
		RIBMisses:      reg.Counter("hoyan_worker_rib_cache_total", "route-RIB file cache lookups", telemetry.L("result", "miss")),
		BytesFetched:   reg.Counter("hoyan_worker_store_bytes_fetched_total", "object-store bytes downloaded"),
		BytesSaved:     reg.Counter("hoyan_worker_store_bytes_saved_total", "encoded RIB bytes served from cache instead of the store"),
		CacheEvictions: reg.Counter("hoyan_worker_cache_evictions_total", "entries evicted from the worker caches"),

		InternDevices:    reg.Gauge("hoyan_intern_devices", "devices interned into dense IDs"),
		InternLinks:      reg.Gauge("hoyan_intern_links", "links interned into dense IDs"),
		InternPrefixes:   reg.Gauge("hoyan_intern_prefixes", "prefixes interned into dense IDs"),
		InternTableBytes: reg.Gauge("hoyan_intern_table_bytes", "approximate bytes held by the interner's two-way ID tables"),

		BGPParallelRounds: reg.Counter("bgp_parallel_rounds_total", "BGP fixpoint rounds run striped across the par pool"),
		BGPStripes:        reg.Counter("bgp_stripes_total", "stripes executed across all parallel fixpoint rounds"),
		BGPStripeImbalance: reg.Histogram("bgp_stripe_imbalance_ratio",
			"max/mean dirty (table, prefix) pairs per stripe, one sample per run", stripeImbalanceBuckets),

		QueueWaitSeconds: stage("mq_wait"),
		DecodeSeconds:    stage("decode"),
		RestoreSeconds:   stage("snapshot_restore"),
		EngineSeconds:    stage("engine_run"),
		EncodeSeconds:    stage("result_encode"),
		PutSeconds:       stage("objstore_put"),
		SubtaskSeconds: reg.Histogram("hoyan_worker_subtask_seconds",
			"whole-subtask wall time", telemetry.DurationBuckets),
	}
}

// MasterMetrics are the master's pre-registered telemetry instruments.
type MasterMetrics struct {
	EnqueuedRoute   *telemetry.Counter // hoyan_master_subtasks_enqueued_total{kind=route}
	EnqueuedTraffic *telemetry.Counter
	EnqueuedShard   *telemetry.Counter
	Done            *telemetry.Counter
	ReenqueueFailed *telemetry.Counter // hoyan_master_reenqueues_total{cause=...}
	ReenqueueLease  *telemetry.Counter
	ReenqueueLost   *telemetry.Counter
	ReenqueueResume *telemetry.Counter
	PollSweeps      *telemetry.Counter
	UploadBytes     *telemetry.Counter
	WaitSeconds     *telemetry.Histogram
}

// NewMasterMetrics registers the master metric set in reg (nil reg = detached
// instruments).
func NewMasterMetrics(reg *telemetry.Registry) *MasterMetrics {
	reenq := func(cause string) *telemetry.Counter {
		return reg.Counter("hoyan_master_reenqueues_total",
			"subtasks re-enqueued, by cause", telemetry.L("cause", cause))
	}
	return &MasterMetrics{
		EnqueuedRoute: reg.Counter("hoyan_master_subtasks_enqueued_total",
			"subtasks enqueued", telemetry.L("kind", "route")),
		EnqueuedTraffic: reg.Counter("hoyan_master_subtasks_enqueued_total",
			"subtasks enqueued", telemetry.L("kind", "traffic")),
		EnqueuedShard: reg.Counter("hoyan_master_subtasks_enqueued_total",
			"subtasks enqueued", telemetry.L("kind", "shard")),
		Done:            reg.Counter("hoyan_master_subtasks_done_total", "subtasks observed done"),
		ReenqueueFailed: reenq("worker_failed"),
		ReenqueueLease:  reenq("lease_expired"),
		ReenqueueLost:   reenq("message_lost"),
		ReenqueueResume: reenq("master_resume"),
		PollSweeps:      reg.Counter("hoyan_master_poll_sweeps_total", "task-DB monitoring sweeps"),
		UploadBytes:     reg.Counter("hoyan_master_upload_bytes_total", "snapshot and input bytes uploaded to the object store"),
		WaitSeconds: reg.Histogram("hoyan_master_wait_seconds",
			"Wait() duration per task kind", telemetry.DurationBuckets),
	}
}

// RecordIntern refreshes the interner-size gauges from one engine's stats.
// A nil st (index disabled) is a no-op, so call sites need no branching.
func (m *WorkerMetrics) RecordIntern(st *netmodel.InternStats) {
	if st == nil {
		return
	}
	m.InternDevices.Set(float64(st.Devices))
	m.InternLinks.Set(float64(st.Links))
	m.InternPrefixes.Set(float64(st.Prefixes))
	m.InternTableBytes.Set(float64(st.TableBytes))
}

// RecordBGPPar folds one BGP run's striped-fixpoint stats into the worker
// counters. Runs whose rounds all stayed sequential (too small, Parallelism
// 1) contribute nothing.
func (m *WorkerMetrics) RecordBGPPar(p bgp.ParStats) {
	if p.ParallelRounds == 0 {
		return
	}
	m.BGPParallelRounds.Add(int64(p.ParallelRounds))
	m.BGPStripes.Add(int64(p.Stripes))
	if p.Stripes > 0 && p.SumStripePairs > 0 {
		mean := float64(p.SumStripePairs) / float64(p.Stripes)
		m.BGPStripeImbalance.Observe(float64(p.MaxStripePairs) / mean)
	}
}

// instrumentRetries re-binds the retry policies inside the already-wrapped
// substrate handles to counters in reg, so per-component retry activity shows
// up on /metrics. A no-op for handles that were not wrapped by WithRetry.
func instrumentRetries(svc Services, reg *telemetry.Registry) {
	if q, ok := svc.Queue.(*retryQueue); ok {
		q.p.Metrics = retry.NewMetrics(reg, "mq")
	}
	if s, ok := svc.Store.(*retryStore); ok {
		s.p.Metrics = retry.NewMetrics(reg, "objstore")
	}
	if t, ok := svc.Tasks.(*retryTasks); ok {
		t.p.Metrics = retry.NewMetrics(reg, "taskdb")
	}
}
