package dsim

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"hoyan/internal/bgp"
	"hoyan/internal/config"
	"hoyan/internal/core"
	"hoyan/internal/durable"
	"hoyan/internal/mq"
	"hoyan/internal/netmodel"
	"hoyan/internal/shard"
	"hoyan/internal/taskdb"
	"hoyan/internal/telemetry"
	"hoyan/internal/wire"
	"slices"
	"strings"
)

// Worker is one working server: it consumes subtask messages, runs the core
// engine on the subtask's input subset, and writes result files.
//
// Fault tolerance: while executing, a side goroutine heartbeats into the
// subtask's task-DB record so the master can tell a slow worker from a dead
// one. Every status write is fenced with the message's attempt epoch, so a
// worker that was presumed dead and reclaimed cannot clobber the superseding
// attempt's status when it finally finishes. Result-file writes are
// deterministic and keyed per subtask, so duplicate executions are safe.
type Worker struct {
	Name string
	svc  Services

	// PopWait is the queue polling timeout per iteration; it also paces the
	// backoff after a transient queue error.
	PopWait time.Duration

	// HeartbeatInterval is the lease-refresh cadence while executing a
	// subtask. It must be well below the master's LeaseTimeout.
	HeartbeatInterval time.Duration

	// FailNext makes the next n subtasks fail artificially (tests the
	// master's retry path): the failure is reported to the task DB.
	FailNext int

	// CrashNext makes the worker die mid-subtask n times: it claims the
	// subtask (status running) and then Run returns without reporting
	// anything — the chaos harness's stand-in for a killed process, which
	// only the master's lease reclaim can recover from.
	CrashNext int

	// Parallelism, when > 0, pins the intra-engine parallelism of every
	// subtask this worker executes, overriding the task's own
	// Options.Parallelism (an operator knob for co-located workers sharing
	// one machine). 0 leaves the task options untouched.
	Parallelism int

	// Logf, when set, receives diagnostics (transient errors being retried,
	// stale attempts skipped). Nil discards them.
	Logf func(format string, args ...any)

	// Tracer collects execution spans: one "worker.subtask" span per message
	// with decode/restore/engine/encode/put children, parented under the
	// master's enqueue span when the message carries a trace. Nil disables
	// tracing. Set before Run.
	Tracer *telemetry.Tracer

	// Events receives structured diagnostics (pop errors, stale skips, cache
	// evictions, decode failures) as JSON lines. Nil discards them. Set
	// before Run.
	Events *telemetry.EventLogger

	// RIBCacheSize bounds the worker's LRU of decoded route-RIB result
	// files, in entries. 0 uses DefaultRIBCacheSize; negative disables the
	// cache. Read once, on first use.
	RIBCacheSize int

	// Caches: workers process many subtasks of the same task, so
	// re-fetching and re-parsing shared inputs per message would dominate
	// run time. nets memoizes restored base snapshots per (snapshot key,
	// parallelism); engines memoizes prepared engines per (snapshot key,
	// options); ribs holds decoded route-RIB result files keyed by object
	// key. Run is single-threaded — the mutex only protects concurrent
	// Stats() readers.
	cacheMu sync.Mutex
	nets    *lru[*config.Network]
	engines *lru[*core.Engine]
	ribs    *lru[ribEntry]

	// metrics is the worker's instrument bundle — detached counters until
	// Instrument binds a registry. Stats() reads it, so it is never nil.
	metrics *WorkerMetrics

	// lastContact is the unix-nano time of the last successful substrate
	// round-trip (queue poll or heartbeat); the ops /healthz endpoint judges
	// liveness from it.
	lastContact atomic.Int64

	// writeFails counts consecutive failed result-file writes (the
	// objstore.put stage, after its retry envelope is exhausted); WriteHealth
	// turns it into a degraded /healthz signal alongside contact staleness.
	writeFails atomic.Int32

	// lastPopAt / lastDecodeDur carry per-message timing from nextMsg to
	// execute. Run is single-threaded, so plain fields suffice.
	lastPopAt     time.Time
	lastDecodeDur time.Duration
}

// DefaultRIBCacheSize is the route-RIB file cache bound (entries) when
// Worker.RIBCacheSize is 0.
const DefaultRIBCacheSize = 64

// ribEntry is one cached route-RIB result file: its decoded rows plus the
// encoded size it saves on every hit.
type ribEntry struct {
	rows []netmodel.Route
	size int64
}

// CacheStats is a point-in-time copy of a worker's cache and transfer
// counters.
type CacheStats struct {
	// SnapshotHits / SnapshotMisses count memoized engine and network
	// restores: a hit skips the snapshot download, config parse, and IGP
	// computation.
	SnapshotHits   int64 `json:"snapshot_hits"`
	SnapshotMisses int64 `json:"snapshot_misses"`
	// RIBFileHits / RIBFileMisses count route-RIB result files served from
	// the worker's LRU versus fetched and decoded from the object store.
	RIBFileHits   int64 `json:"rib_file_hits"`
	RIBFileMisses int64 `json:"rib_file_misses"`
	// BytesFetched counts object-store bytes this worker downloaded;
	// BytesSaved counts encoded RIB bytes served from cache instead.
	BytesFetched int64 `json:"bytes_fetched"`
	BytesSaved   int64 `json:"bytes_saved"`
}

// Add accumulates o into s (aggregating across a cluster's workers).
func (s *CacheStats) Add(o CacheStats) {
	s.SnapshotHits += o.SnapshotHits
	s.SnapshotMisses += o.SnapshotMisses
	s.RIBFileHits += o.RIBFileHits
	s.RIBFileMisses += o.RIBFileMisses
	s.BytesFetched += o.BytesFetched
	s.BytesSaved += o.BytesSaved
}

// Stats returns the worker's cache and transfer counters — a compatibility
// view over the telemetry instruments. Safe to call concurrently with Run.
func (w *Worker) Stats() CacheStats {
	m := w.metrics
	return CacheStats{
		SnapshotHits:   m.SnapshotHits.Value(),
		SnapshotMisses: m.SnapshotMisses.Value(),
		RIBFileHits:    m.RIBHits.Value(),
		RIBFileMisses:  m.RIBMisses.Value(),
		BytesFetched:   m.BytesFetched.Value(),
		BytesSaved:     m.BytesSaved.Value(),
	}
}

// Instrument registers the worker's metrics in reg and re-binds the retry
// policies of its substrate handles so retry activity shows per component.
// Call before Run: the instrument-bundle swap is not synchronized with a
// running worker.
func (w *Worker) Instrument(reg *telemetry.Registry) {
	w.metrics = NewWorkerMetrics(reg)
	instrumentRetries(w.svc, reg)
}

// LastContact returns the time of the worker's last successful substrate
// round-trip (zero before any). /healthz compares it against a staleness
// threshold.
func (w *Worker) LastContact() time.Time {
	ns := w.lastContact.Load()
	if ns == 0 {
		return time.Time{}
	}
	return time.Unix(0, ns)
}

func (w *Worker) touch() { w.lastContact.Store(time.Now().UnixNano()) }

// noteResultWrite records one result-file write outcome for WriteHealth.
func (w *Worker) noteResultWrite(err error) {
	if err == nil {
		w.writeFails.Store(0)
		return
	}
	w.writeFails.Add(1)
}

// WriteHealth returns nil while result-file writes are landing, and an error
// once durable.HealthFailureThreshold consecutive writes have failed (each
// already retried by the substrate wrapper) — the signal the ops /healthz
// endpoint degrades on, so a worker on a full or read-only disk reports
// unhealthy instead of silently burning attempts.
func (w *Worker) WriteHealth() error {
	if n := w.writeFails.Load(); n >= durable.HealthFailureThreshold {
		return fmt.Errorf("dsim: worker %s: last %d result writes failed", w.Name, n)
	}
	return nil
}

// event emits a structured diagnostic with the worker's name attached (no-op
// without an Events logger).
func (w *Worker) event(name string, fields ...telemetry.Field) {
	w.Events.Log(name, append([]telemetry.Field{telemetry.F("worker", w.Name)}, fields...)...)
}

// noteEvictions counts and logs cache evictions reported by an lru put.
func (w *Worker) noteEvictions(cache string, keys []string) {
	for _, k := range keys {
		w.metrics.CacheEvictions.Inc()
		w.event("cache.evict", telemetry.F("cache", cache), telemetry.F("key", k))
	}
}

// stage runs fn as one named child span of ctx's current span plus one
// histogram observation.
func (w *Worker) stage(ctx context.Context, name string, h *telemetry.Histogram, fn func() error) error {
	_, sp := telemetry.StartSpan(ctx, name)
	start := time.Now()
	err := fn()
	sp.End()
	h.Observe(time.Since(start).Seconds())
	return err
}

// NewWorker creates a worker over the substrate services. The queue, store,
// and task DB handles are wrapped with DefaultRetryPolicy so transient
// substrate errors are retried in place.
func NewWorker(name string, svc Services) *Worker {
	return &Worker{
		Name: name, svc: WithRetry(svc, DefaultRetryPolicy()),
		PopWait:           50 * time.Millisecond,
		HeartbeatInterval: time.Second,
		nets:              newLRU[*config.Network](2),
		engines:           newLRU[*core.Engine](4),
		metrics:           NewWorkerMetrics(nil),
	}
}

func (w *Worker) logf(format string, args ...any) {
	if w.Logf != nil {
		w.Logf(format, args...)
	}
}

// Run consumes subtasks until ctx is cancelled or the queue is closed.
// Transient queue errors are logged and retried; they never kill the worker.
func (w *Worker) Run(ctx context.Context) {
	for {
		msg, ok, fatal := w.nextMsg(ctx)
		if fatal {
			return
		}
		if !ok {
			continue
		}
		if crashed := w.execute(ctx, msg); crashed {
			return
		}
	}
}

// RunN consumes exactly n subtask messages then returns (deterministic
// tests).
func (w *Worker) RunN(ctx context.Context, n int) {
	for i := 0; i < n; {
		msg, ok, fatal := w.nextMsg(ctx)
		if fatal {
			return
		}
		if !ok {
			continue
		}
		if crashed := w.execute(ctx, msg); crashed {
			return
		}
		i++
	}
}

// nextMsg pops and decodes one subtask message. fatal reports that the
// worker should stop: the context is done or the queue was deliberately
// closed. Any other pop error is transient — logged, backed off, retried.
func (w *Worker) nextMsg(ctx context.Context) (msg SubtaskMsg, ok, fatal bool) {
	if ctx.Err() != nil {
		return SubtaskMsg{}, false, true
	}
	m, ok, err := w.svc.Queue.Pop(Topic, w.PopWait)
	if err != nil {
		if errors.Is(err, mq.ErrClosed) || errors.Is(err, context.Canceled) || ctx.Err() != nil {
			return SubtaskMsg{}, false, true
		}
		w.metrics.PopErrors.Inc()
		w.event("queue.pop.error", telemetry.F("error", err.Error()))
		w.logf("dsim: worker %s: queue pop: %v (backing off)", w.Name, err)
		select {
		case <-ctx.Done():
			return SubtaskMsg{}, false, true
		case <-time.After(w.PopWait):
		}
		return SubtaskMsg{}, false, false
	}
	w.touch()
	if !ok {
		w.metrics.PopEmpty.Inc()
		return SubtaskMsg{}, false, false
	}
	w.lastPopAt = time.Now()
	msg, derr := decodeMsg(m)
	w.lastDecodeDur = time.Since(w.lastPopAt)
	w.metrics.DecodeSeconds.Observe(w.lastDecodeDur.Seconds())
	if derr != nil {
		w.event("message.decode.error", telemetry.F("msg_id", m.ID), telemetry.F("error", derr.Error()))
		w.logf("dsim: worker %s: %v (dropping message)", w.Name, derr)
		return SubtaskMsg{}, false, false
	}
	return msg, true, false
}

// execute runs one subtask and records its status. crashed reports that the
// worker simulated a hard crash and must stop immediately.
func (w *Worker) execute(ctx context.Context, msg SubtaskMsg) (crashed bool) {
	rec, ok, err := w.svc.Tasks.Get(msg.TaskID, msg.Kind, msg.SubID)
	if err != nil {
		// Can't claim: skip the message. The master's lost-pending sweep
		// re-enqueues the subtask once the lease period passes.
		w.logf("dsim: worker %s: claiming %s/%s/%d: %v (skipping, reclaim will resend)",
			w.Name, msg.TaskID, msg.Kind, msg.SubID, err)
		return false
	}
	if !ok {
		rec = taskdb.Record{TaskID: msg.TaskID, Kind: msg.Kind, SubID: msg.SubID}
	}
	if rec.Attempts > msg.Attempt {
		// This message belongs to an attempt the master already reclaimed;
		// the superseding attempt owns the subtask now.
		w.metrics.StaleSkipped.Inc()
		w.event("subtask.stale_skip",
			telemetry.F("subtask", msg.key()),
			telemetry.F("attempt", msg.Attempt),
			telemetry.F("current_attempt", rec.Attempts))
		w.logf("dsim: worker %s: skipping stale attempt %d of %s/%s/%d (current %d)",
			w.Name, msg.Attempt, msg.TaskID, msg.Kind, msg.SubID, rec.Attempts)
		return false
	}

	// Tracing: parent everything under the master's enqueue span when the
	// message carries one. The mq.wait span is synthetic — its duration is
	// the gap between the master's enqueue stamp and our pop.
	parent := telemetry.SpanContext{TraceID: msg.TraceID, SpanID: msg.ParentSpan}
	if msg.EnqueuedUnixNano > 0 {
		wait := w.lastPopAt.Sub(time.Unix(0, msg.EnqueuedUnixNano))
		if wait < 0 {
			wait = 0
		}
		w.metrics.QueueWaitSeconds.Observe(wait.Seconds())
		w.Tracer.RecordSpan(parent, "mq.wait", w.lastPopAt.Add(-wait), wait)
	}
	ctx = telemetry.WithTracer(ctx, w.Tracer)
	ctx = telemetry.WithRemoteParent(ctx, parent)
	ctx, span := telemetry.StartSpan(ctx, "worker.subtask")
	defer span.End()
	span.SetTag("subtask", msg.key())
	span.SetTag("attempt", fmt.Sprintf("%d", msg.Attempt))
	if w.lastDecodeDur > 0 {
		w.Tracer.RecordSpan(span.Context(), "decode", w.lastPopAt, w.lastDecodeDur)
	}

	now := time.Now()
	rec.Status = taskdb.StatusRunning
	rec.Worker = w.Name
	rec.Attempts = msg.Attempt
	rec.StartedAt = now
	rec.HeartbeatAt = now
	rec.Error = ""
	if applied, err := w.svc.Tasks.FencedUpsert(rec); err != nil || !applied {
		w.logf("dsim: worker %s: claim of %s/%s/%d not applied (applied=%v err=%v)",
			w.Name, msg.TaskID, msg.Kind, msg.SubID, applied, err)
		return false
	}

	if w.CrashNext > 0 {
		// Simulated hard crash: the subtask is claimed, no completion will
		// ever be reported, and heartbeats stop with the worker. Only the
		// master's lease reclaim gets the subtask done now.
		w.CrashNext--
		w.logf("dsim: worker %s: simulated crash holding %s/%s/%d attempt %d",
			w.Name, msg.TaskID, msg.Kind, msg.SubID, msg.Attempt)
		return true
	}

	// Heartbeat from a side goroutine while the engine runs.
	hbCtx, stopHB := context.WithCancel(ctx)
	hbDone := make(chan struct{})
	go func() {
		defer close(hbDone)
		w.heartbeat(hbCtx, msg)
	}()

	var loadedFiles int
	runErr := func() error {
		if w.FailNext > 0 {
			w.FailNext--
			return fmt.Errorf("injected failure on %s", w.Name)
		}
		switch msg.Kind {
		case "route":
			return w.routeSubtask(ctx, msg)
		case "traffic":
			var err error
			loadedFiles, err = w.trafficSubtask(ctx, msg)
			return err
		case "shard":
			return w.shardSubtask(ctx, msg)
		}
		return fmt.Errorf("unknown subtask kind %q", msg.Kind)
	}()

	stopHB()
	<-hbDone

	rec.FinishedAt = time.Now()
	rec.DurationMs = rec.FinishedAt.Sub(rec.StartedAt).Milliseconds()
	rec.HeartbeatAt = rec.FinishedAt
	rec.LoadedRIBFiles = loadedFiles
	if runErr != nil {
		rec.Status = taskdb.StatusFailed
		rec.Error = runErr.Error()
		w.metrics.Failures.Inc()
		w.event("subtask.failed",
			telemetry.F("subtask", msg.key()),
			telemetry.F("attempt", msg.Attempt),
			telemetry.F("error", runErr.Error()))
	} else {
		rec.Status = taskdb.StatusDone
		switch msg.Kind {
		case "route":
			w.metrics.SubtasksRoute.Inc()
		case "shard":
			w.metrics.SubtasksShard.Inc()
		default:
			w.metrics.SubtasksTraffic.Inc()
		}
	}
	w.metrics.SubtaskSeconds.Observe(rec.FinishedAt.Sub(rec.StartedAt).Seconds())
	// The completion write is retried by the substrate wrapper. If it still
	// fails, the subtask is NOT reported done: the record stays running with
	// a stale heartbeat and the master's lease reclaim re-runs it (result
	// writes are idempotent, so the re-run converges to the same state).
	_, usp := telemetry.StartSpan(ctx, "taskdb.upsert")
	applied, uerr := w.svc.Tasks.FencedUpsert(rec)
	usp.End()
	if uerr != nil {
		w.logf("dsim: worker %s: completion of %s/%s/%d lost: %v (lease reclaim will re-run)",
			w.Name, msg.TaskID, msg.Kind, msg.SubID, uerr)
	} else if !applied {
		w.logf("dsim: worker %s: completion of %s/%s/%d fenced off by newer attempt",
			w.Name, msg.TaskID, msg.Kind, msg.SubID)
	}
	return false
}

// heartbeat refreshes the subtask's lease until ctx is cancelled.
func (w *Worker) heartbeat(ctx context.Context, msg SubtaskMsg) {
	interval := w.HeartbeatInterval
	if interval <= 0 {
		interval = time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			if _, err := w.svc.Tasks.Heartbeat(msg.TaskID, msg.Kind, msg.SubID, msg.Attempt, time.Now()); err != nil {
				w.logf("dsim: worker %s: heartbeat %s/%s/%d: %v", w.Name, msg.TaskID, msg.Kind, msg.SubID, err)
			} else {
				w.metrics.Heartbeats.Inc()
				w.touch()
			}
		}
	}
}

// engineFor returns a core engine for the snapshot, memoized across subtasks
// per (snapshot, options). Beneath it the restored network itself is memoized
// per (snapshot, parallelism), so switching options — e.g. a strategy sweep
// over one snapshot — re-runs the IGP but not the download and config parse.
func (w *Worker) engineFor(ctx context.Context, snapKey string, opts core.Options) (*core.Engine, error) {
	if w.Parallelism > 0 {
		opts.Parallelism = w.Parallelism
	}
	optsSig, _ := json.Marshal(opts)
	ekey := snapKey + "|" + string(optsSig)
	w.cacheMu.Lock()
	eng, ok := w.engines.get(ekey)
	w.cacheMu.Unlock()
	if ok {
		w.metrics.SnapshotHits.Inc()
		return eng, nil
	}
	net, err := w.networkFor(ctx, snapKey, opts.Parallelism)
	if err != nil {
		return nil, err
	}
	eng = core.NewEngine(net, opts)
	w.cacheMu.Lock()
	ev := w.engines.put(ekey, eng)
	w.cacheMu.Unlock()
	w.noteEvictions("engine", ev)
	return eng, nil
}

// scenarioEngineFor returns an engine for the snapshot with the message's
// scenario delta applied, memoized per (snapshot, options, delta). With no
// delta it is exactly engineFor; with one, the cached base network is
// cloned, the listed links/nodes taken down, and a fresh engine built (full
// SPF) under a delta-keyed cache entry.
func (w *Worker) scenarioEngineFor(ctx context.Context, msg SubtaskMsg) (*core.Engine, error) {
	if len(msg.DownLinks) == 0 && len(msg.DownNodes) == 0 {
		return w.engineFor(ctx, msg.SnapshotKey, msg.Options)
	}
	opts := msg.Options
	if w.Parallelism > 0 {
		opts.Parallelism = w.Parallelism
	}
	optsSig, _ := json.Marshal(opts)
	ekey := msg.SnapshotKey + "|" + string(optsSig)
	for _, id := range msg.DownLinks {
		ekey += "|L" + id.String()
	}
	for _, n := range msg.DownNodes {
		ekey += "|N" + n
	}
	w.cacheMu.Lock()
	eng, ok := w.engines.get(ekey)
	w.cacheMu.Unlock()
	if ok {
		w.metrics.SnapshotHits.Inc()
		return eng, nil
	}
	base, err := w.networkFor(ctx, msg.SnapshotKey, opts.Parallelism)
	if err != nil {
		return nil, err
	}
	scen := base.Clone()
	for _, id := range msg.DownLinks {
		if !scen.Topo.SetLinkUp(id, false) {
			return nil, fmt.Errorf("scenario link %v not in snapshot", id)
		}
	}
	for _, n := range msg.DownNodes {
		if !scen.Topo.SetNodeUp(n, false) {
			return nil, fmt.Errorf("scenario node %s not in snapshot", n)
		}
	}
	eng = core.NewEngine(scen, opts)
	w.cacheMu.Lock()
	ev := w.engines.put(ekey, eng)
	w.cacheMu.Unlock()
	w.noteEvictions("engine", ev)
	return eng, nil
}

// networkFor returns the restored network model for a snapshot, memoized per
// (snapshot key, parallelism). The restored model is read-only to engines.
func (w *Worker) networkFor(ctx context.Context, snapKey string, parallelism int) (*config.Network, error) {
	nkey := fmt.Sprintf("%s|p%d", snapKey, parallelism)
	w.cacheMu.Lock()
	net, ok := w.nets.get(nkey)
	w.cacheMu.Unlock()
	if ok {
		w.metrics.SnapshotHits.Inc()
		return net, nil
	}
	w.metrics.SnapshotMisses.Inc()
	err := w.stage(ctx, "snapshot.restore", w.metrics.RestoreSeconds, func() error {
		data, err := w.svc.Store.Get(snapKey)
		if err != nil {
			return fmt.Errorf("loading snapshot: %w", err)
		}
		w.metrics.BytesFetched.Add(int64(len(data)))
		snap, err := core.DecodeSnapshot(bytes.NewReader(data))
		if err != nil {
			return err
		}
		net, err = snap.RestoreParallel(parallelism)
		return err
	})
	if err != nil {
		return nil, err
	}
	w.cacheMu.Lock()
	ev := w.nets.put(nkey, net)
	w.cacheMu.Unlock()
	w.noteEvictions("network", ev)
	return net, nil
}

// ribRows returns the decoded rows of one route-subtask result file, served
// from the worker's bounded LRU when possible. Caching by object key is
// sound across attempt epochs: result files are content-deterministic, so a
// reclaimed subtask's re-run writes byte-identical data under the same key.
// Cached rows are shared read-only — RIBSet.AddRows copies what it keeps.
func (w *Worker) ribRows(key string) ([]netmodel.Route, error) {
	w.cacheMu.Lock()
	ent, ok := w.ribCacheLocked().get(key)
	w.cacheMu.Unlock()
	if ok {
		w.metrics.RIBHits.Inc()
		w.metrics.BytesSaved.Add(ent.size)
		return ent.rows, nil
	}
	w.metrics.RIBMisses.Inc()
	data, err := w.svc.Store.Get(key)
	if err != nil {
		return nil, err
	}
	w.metrics.BytesFetched.Add(int64(len(data)))
	rows, err := core.DecodeRoutes(bytes.NewReader(data))
	if err != nil {
		w.event("rib.decode.error", telemetry.F("key", key), telemetry.F("error", err.Error()))
		return nil, err
	}
	w.cacheRIB(key, rows, int64(len(data)))
	return rows, nil
}

// cacheRIB inserts one decoded route-RIB file into the LRU.
func (w *Worker) cacheRIB(key string, rows []netmodel.Route, size int64) {
	w.cacheMu.Lock()
	ev := w.ribCacheLocked().put(key, ribEntry{rows: rows, size: size})
	w.cacheMu.Unlock()
	w.noteEvictions("rib", ev)
}

// ribCacheLocked lazily sizes the RIB cache from the RIBCacheSize knob.
// Callers hold cacheMu.
func (w *Worker) ribCacheLocked() *lru[ribEntry] {
	if w.ribs == nil {
		size := w.RIBCacheSize
		switch {
		case size == 0:
			size = DefaultRIBCacheSize
		case size < 0:
			size = 0
		}
		w.ribs = newLRU[ribEntry](size)
	}
	return w.ribs
}

// routeSubtask simulates a subset of input routes and stores the resulting
// RIB rows.
func (w *Worker) routeSubtask(ctx context.Context, msg SubtaskMsg) error {
	eng, err := w.scenarioEngineFor(ctx, msg)
	if err != nil {
		return err
	}
	data, err := w.svc.Store.Get(msg.InputKey)
	if err != nil {
		return fmt.Errorf("loading input: %w", err)
	}
	w.metrics.BytesFetched.Add(int64(len(data)))
	inputs, err := core.DecodeRoutes(bytes.NewReader(data))
	if err != nil {
		return err
	}
	var rows []netmodel.Route
	w.stage(ctx, "engine.run", w.metrics.EngineSeconds, func() error {
		res := eng.RouteSimulation(inputs)
		w.metrics.RecordBGPPar(res.BGP.Par)
		rows = res.GlobalRIB().Rows()
		return nil
	})
	w.metrics.RecordIntern(eng.InternStats())
	var buf bytes.Buffer
	if err := w.stage(ctx, "result.encode", w.metrics.EncodeSeconds, func() error {
		return core.EncodeRoutes(&buf, rows)
	}); err != nil {
		return err
	}
	err = w.stage(ctx, "objstore.put", w.metrics.PutSeconds, func() error {
		return w.svc.Store.Put(msg.ResultKey, buf.Bytes())
	})
	w.noteResultWrite(err)
	if err != nil {
		return err
	}
	// Seed the RIB cache: this worker's own traffic subtasks often read the
	// file straight back.
	w.cacheRIB(msg.ResultKey, rows, int64(buf.Len()))
	return nil
}

// shardSubtask runs one boundary-sealed shard simulation: it derives the
// device partition from the snapshot topology (identical on every node —
// the partition is a pure function of the device names), seals the
// message's shard, replays the inbound contract from the input file, and
// stores the shard's outbound contract plus its pre-expansion RIB rows.
// Both halves of the result are canonical, so re-executions are idempotent.
func (w *Worker) shardSubtask(ctx context.Context, msg SubtaskMsg) error {
	eng, err := w.scenarioEngineFor(ctx, msg)
	if err != nil {
		return err
	}
	data, err := w.svc.Store.Get(msg.InputKey)
	if err != nil {
		return fmt.Errorf("loading input: %w", err)
	}
	w.metrics.BytesFetched.Add(int64(len(data)))
	in, err := wire.DecodeShardInput(bytes.NewReader(data))
	if err != nil {
		return err
	}
	part := shard.Compute(eng.Network().Topo, msg.NumShards)
	if msg.ShardID < 0 || msg.ShardID >= part.NumShards() {
		return fmt.Errorf("shard %d out of range (partition has %d)", msg.ShardID, part.NumShards())
	}
	res := &wire.ShardResult{}
	w.stage(ctx, "engine.run", w.metrics.EngineSeconds, func() error {
		sim := eng.RouteSimulationSealed(in.Routes, &bgp.Seal{
			Inside:  part.Members(msg.ShardID),
			Inbound: in.Inbound,
		})
		w.metrics.RecordBGPPar(sim.BGP.Par)
		res.Exports = sim.BGP.BoundaryOut
		res.Rows = sim.GlobalRIB().Rows()
		return nil
	})
	w.metrics.RecordIntern(eng.InternStats())
	var buf bytes.Buffer
	if err := w.stage(ctx, "result.encode", w.metrics.EncodeSeconds, func() error {
		return wire.EncodeShardResult(&buf, res)
	}); err != nil {
		return err
	}
	err = w.stage(ctx, "objstore.put", w.metrics.PutSeconds, func() error {
		return w.svc.Store.Put(msg.ResultKey, buf.Bytes())
	})
	w.noteResultWrite(err)
	return err
}

// trafficSubtask simulates a subset of flows. It loads only the route
// subtask result files its destination range can depend on (ordering
// heuristic) unless the baseline strategy forces loading everything. It
// returns the number of RIB files loaded.
func (w *Worker) trafficSubtask(ctx context.Context, msg SubtaskMsg) (int, error) {
	eng, err := w.scenarioEngineFor(ctx, msg)
	if err != nil {
		return 0, err
	}
	data, err := w.svc.Store.Get(msg.InputKey)
	if err != nil {
		return 0, fmt.Errorf("loading input: %w", err)
	}
	w.metrics.BytesFetched.Add(int64(len(data)))
	flows, err := core.DecodeFlows(bytes.NewReader(data))
	if err != nil {
		return 0, err
	}

	needed, err := w.neededRouteFiles(msg, flows)
	if err != nil {
		return 0, err
	}
	ribs := netmodel.NewRIBSet(nil)
	var allRows []netmodel.Route
	_, lsp := telemetry.StartSpan(ctx, "ribs.load")
	for _, sub := range needed {
		rows, err := w.ribRows(resultKey(msg.RouteTaskID, "route", sub))
		if err != nil {
			lsp.End()
			return 0, fmt.Errorf("loading RIB file %d: %w", sub, err)
		}
		ribs.AddRows(rows)
		allRows = append(allRows, rows...)
	}
	lsp.End()

	var res *core.TrafficResult
	w.stage(ctx, "engine.run", w.metrics.EngineSeconds, func() error {
		res = eng.TrafficSimulation(ribs, allRows, flows)
		return nil
	})
	w.metrics.RecordIntern(eng.InternStats())
	file := TrafficResultFile{}
	ids := make([]netmodel.LinkID, 0, len(res.Traffic.Load))
	for id := range res.Traffic.Load {
		ids = append(ids, id)
	}
	slices.SortFunc(ids, func(a, b netmodel.LinkID) int { return strings.Compare(a.String(), b.String()) })
	for _, id := range ids {
		file.Load = append(file.Load, LoadEntry{Link: id, Volume: res.Traffic.Load[id]})
	}
	for _, p := range res.Traffic.Paths {
		file.Paths = append(file.Paths, PathEntry{Flow: p.Flow, Path: PathWire{Hops: p.Path.Hops, Exit: p.Path.Exit}})
	}
	var buf bytes.Buffer
	if err := w.stage(ctx, "result.encode", w.metrics.EncodeSeconds, func() error {
		return wire.EncodeTrafficResult(&buf, &file)
	}); err != nil {
		return 0, fmt.Errorf("encoding traffic result: %w", err)
	}
	err = w.stage(ctx, "objstore.put", w.metrics.PutSeconds, func() error {
		return w.svc.Store.Put(msg.ResultKey, buf.Bytes())
	})
	w.noteResultWrite(err)
	if err != nil {
		return 0, err
	}
	return len(needed), nil
}

// neededRouteFiles decides which route-subtask results this traffic subtask
// depends on. Under the baseline strategy, all of them; otherwise only those
// whose recorded address range overlaps the flows' destination range (§3.2).
func (w *Worker) neededRouteFiles(msg SubtaskMsg, flows []netmodel.Flow) ([]int, error) {
	all := make([]int, 0, msg.RouteSubtasks)
	for i := 0; i < msg.RouteSubtasks; i++ {
		all = append(all, i)
	}
	if msg.Strategy == StrategyBaseline || len(flows) == 0 {
		return all, nil
	}
	lo, hi := flows[0].Dst, flows[0].Dst
	for _, f := range flows {
		if f.Dst.Compare(lo) < 0 {
			lo = f.Dst
		}
		if f.Dst.Compare(hi) > 0 {
			hi = f.Dst
		}
	}
	var out []int
	for i := 0; i < msg.RouteSubtasks; i++ {
		rec, ok, err := w.svc.Tasks.Get(msg.RouteTaskID, "route", i)
		if err != nil {
			return nil, err
		}
		if !ok {
			out = append(out, i) // unknown range: be safe, load it
			continue
		}
		rLo, err1 := netip.ParseAddr(rec.RangeLo)
		rHi, err2 := netip.ParseAddr(rec.RangeHi)
		if err1 != nil || err2 != nil {
			out = append(out, i)
			continue
		}
		// Overlap test between [lo,hi] and [rLo,rHi].
		if hi.Compare(rLo) >= 0 && rHi.Compare(lo) >= 0 {
			out = append(out, i)
		}
	}
	return out, nil
}
