package dsim

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/netip"
	"sort"
	"time"

	"hoyan/internal/core"
	"hoyan/internal/netmodel"
	"hoyan/internal/taskdb"
)

// Worker is one working server: it consumes subtask messages, runs the core
// engine on the subtask's input subset, and writes result files.
type Worker struct {
	Name string
	svc  Services

	// PopWait is the queue polling timeout per iteration.
	PopWait time.Duration

	// FailNext makes the next n subtasks fail artificially (tests the
	// master's retry path).
	FailNext int

	// Parallelism, when > 0, pins the intra-engine parallelism of every
	// subtask this worker executes, overriding the task's own
	// Options.Parallelism (an operator knob for co-located workers sharing
	// one machine). 0 leaves the task options untouched.
	Parallelism int

	// Snapshot cache: workers process many subtasks of the same task, so
	// re-parsing the network for each message would dominate run time.
	cacheKey    string
	cacheEngine *core.Engine
	cacheOpts   string
}

// NewWorker creates a worker over the substrate services.
func NewWorker(name string, svc Services) *Worker {
	return &Worker{Name: name, svc: svc, PopWait: 50 * time.Millisecond}
}

// Run consumes subtasks until ctx is cancelled.
func (w *Worker) Run(ctx context.Context) {
	for {
		select {
		case <-ctx.Done():
			return
		default:
		}
		m, ok, err := w.svc.Queue.Pop(Topic, w.PopWait)
		if err != nil {
			return // queue closed or unreachable
		}
		if !ok {
			continue
		}
		msg, err := decodeMsg(m)
		if err != nil {
			continue // malformed message: drop
		}
		w.execute(msg)
	}
}

// RunN consumes exactly n subtasks then returns (deterministic tests).
func (w *Worker) RunN(ctx context.Context, n int) {
	for i := 0; i < n; {
		select {
		case <-ctx.Done():
			return
		default:
		}
		m, ok, err := w.svc.Queue.Pop(Topic, w.PopWait)
		if err != nil {
			return
		}
		if !ok {
			continue
		}
		msg, err := decodeMsg(m)
		if err != nil {
			continue
		}
		w.execute(msg)
		i++
	}
}

// execute runs one subtask and records its status.
func (w *Worker) execute(msg SubtaskMsg) {
	rec, ok, err := w.svc.Tasks.Get(msg.TaskID, msg.Kind, msg.SubID)
	if err != nil || !ok {
		rec = taskdb.Record{TaskID: msg.TaskID, Kind: msg.Kind, SubID: msg.SubID}
	}
	rec.Status = taskdb.StatusRunning
	rec.Worker = w.Name
	rec.StartedAt = time.Now()
	rec.Error = ""
	w.svc.Tasks.Upsert(rec)

	var loadedFiles int
	runErr := func() error {
		if w.FailNext > 0 {
			w.FailNext--
			return fmt.Errorf("injected failure on %s", w.Name)
		}
		switch msg.Kind {
		case "route":
			return w.routeSubtask(msg)
		case "traffic":
			var err error
			loadedFiles, err = w.trafficSubtask(msg)
			return err
		}
		return fmt.Errorf("unknown subtask kind %q", msg.Kind)
	}()

	rec.FinishedAt = time.Now()
	rec.DurationMs = rec.FinishedAt.Sub(rec.StartedAt).Milliseconds()
	rec.LoadedRIBFiles = loadedFiles
	if runErr != nil {
		rec.Status = taskdb.StatusFailed
		rec.Error = runErr.Error()
	} else {
		rec.Status = taskdb.StatusDone
	}
	w.svc.Tasks.Upsert(rec)
}

// engineFor returns a core engine for the snapshot, cached across subtasks.
func (w *Worker) engineFor(snapKey string, opts core.Options) (*core.Engine, error) {
	if w.Parallelism > 0 {
		opts.Parallelism = w.Parallelism
	}
	optsSig, _ := json.Marshal(opts)
	if w.cacheEngine != nil && w.cacheKey == snapKey && w.cacheOpts == string(optsSig) {
		return w.cacheEngine, nil
	}
	data, err := w.svc.Store.Get(snapKey)
	if err != nil {
		return nil, fmt.Errorf("loading snapshot: %w", err)
	}
	snap, err := core.DecodeSnapshot(bytes.NewReader(data))
	if err != nil {
		return nil, err
	}
	net, err := snap.RestoreParallel(opts.Parallelism)
	if err != nil {
		return nil, err
	}
	eng := core.NewEngine(net, opts)
	w.cacheKey, w.cacheEngine, w.cacheOpts = snapKey, eng, string(optsSig)
	return eng, nil
}

// routeSubtask simulates a subset of input routes and stores the resulting
// RIB rows.
func (w *Worker) routeSubtask(msg SubtaskMsg) error {
	eng, err := w.engineFor(msg.SnapshotKey, msg.Options)
	if err != nil {
		return err
	}
	data, err := w.svc.Store.Get(msg.InputKey)
	if err != nil {
		return fmt.Errorf("loading input: %w", err)
	}
	inputs, err := core.DecodeRoutes(bytes.NewReader(data))
	if err != nil {
		return err
	}
	res := eng.RouteSimulation(inputs)
	var buf bytes.Buffer
	if err := core.EncodeRoutes(&buf, res.GlobalRIB().Rows()); err != nil {
		return err
	}
	return w.svc.Store.Put(msg.ResultKey, buf.Bytes())
}

// trafficSubtask simulates a subset of flows. It loads only the route
// subtask result files its destination range can depend on (ordering
// heuristic) unless the baseline strategy forces loading everything. It
// returns the number of RIB files loaded.
func (w *Worker) trafficSubtask(msg SubtaskMsg) (int, error) {
	eng, err := w.engineFor(msg.SnapshotKey, msg.Options)
	if err != nil {
		return 0, err
	}
	data, err := w.svc.Store.Get(msg.InputKey)
	if err != nil {
		return 0, fmt.Errorf("loading input: %w", err)
	}
	flows, err := core.DecodeFlows(bytes.NewReader(data))
	if err != nil {
		return 0, err
	}

	needed, err := w.neededRouteFiles(msg, flows)
	if err != nil {
		return 0, err
	}
	ribs := netmodel.NewRIBSet(nil)
	var allRows []netmodel.Route
	for _, sub := range needed {
		data, err := w.svc.Store.Get(resultKey(msg.RouteTaskID, "route", sub))
		if err != nil {
			return 0, fmt.Errorf("loading RIB file %d: %w", sub, err)
		}
		rows, err := core.DecodeRoutes(bytes.NewReader(data))
		if err != nil {
			return 0, err
		}
		ribs.AddRows(rows)
		allRows = append(allRows, rows...)
	}

	res := eng.TrafficSimulation(ribs, allRows, flows)
	file := TrafficResultFile{}
	ids := make([]netmodel.LinkID, 0, len(res.Traffic.Load))
	for id := range res.Traffic.Load {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i].String() < ids[j].String() })
	for _, id := range ids {
		file.Load = append(file.Load, LoadEntry{Link: id, Volume: res.Traffic.Load[id]})
	}
	for _, p := range res.Traffic.Paths {
		file.Paths = append(file.Paths, PathEntry{Flow: p.Flow, Path: PathWire{Hops: p.Path.Hops, Exit: p.Path.Exit}})
	}
	out, err := json.Marshal(file)
	if err != nil {
		return 0, err
	}
	if err := w.svc.Store.Put(msg.ResultKey, out); err != nil {
		return 0, err
	}
	return len(needed), nil
}

// neededRouteFiles decides which route-subtask results this traffic subtask
// depends on. Under the baseline strategy, all of them; otherwise only those
// whose recorded address range overlaps the flows' destination range (§3.2).
func (w *Worker) neededRouteFiles(msg SubtaskMsg, flows []netmodel.Flow) ([]int, error) {
	all := make([]int, 0, msg.RouteSubtasks)
	for i := 0; i < msg.RouteSubtasks; i++ {
		all = append(all, i)
	}
	if msg.Strategy == StrategyBaseline || len(flows) == 0 {
		return all, nil
	}
	lo, hi := flows[0].Dst, flows[0].Dst
	for _, f := range flows {
		if f.Dst.Compare(lo) < 0 {
			lo = f.Dst
		}
		if f.Dst.Compare(hi) > 0 {
			hi = f.Dst
		}
	}
	var out []int
	for i := 0; i < msg.RouteSubtasks; i++ {
		rec, ok, err := w.svc.Tasks.Get(msg.RouteTaskID, "route", i)
		if err != nil {
			return nil, err
		}
		if !ok {
			out = append(out, i) // unknown range: be safe, load it
			continue
		}
		rLo, err1 := netip.ParseAddr(rec.RangeLo)
		rHi, err2 := netip.ParseAddr(rec.RangeHi)
		if err1 != nil || err2 != nil {
			out = append(out, i)
			continue
		}
		// Overlap test between [lo,hi] and [rLo,rHi].
		if hi.Compare(rLo) >= 0 && rHi.Compare(lo) >= 0 {
			out = append(out, i)
		}
	}
	return out, nil
}
