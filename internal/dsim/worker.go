package dsim

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/netip"
	"sort"
	"time"

	"hoyan/internal/core"
	"hoyan/internal/mq"
	"hoyan/internal/netmodel"
	"hoyan/internal/taskdb"
)

// Worker is one working server: it consumes subtask messages, runs the core
// engine on the subtask's input subset, and writes result files.
//
// Fault tolerance: while executing, a side goroutine heartbeats into the
// subtask's task-DB record so the master can tell a slow worker from a dead
// one. Every status write is fenced with the message's attempt epoch, so a
// worker that was presumed dead and reclaimed cannot clobber the superseding
// attempt's status when it finally finishes. Result-file writes are
// deterministic and keyed per subtask, so duplicate executions are safe.
type Worker struct {
	Name string
	svc  Services

	// PopWait is the queue polling timeout per iteration; it also paces the
	// backoff after a transient queue error.
	PopWait time.Duration

	// HeartbeatInterval is the lease-refresh cadence while executing a
	// subtask. It must be well below the master's LeaseTimeout.
	HeartbeatInterval time.Duration

	// FailNext makes the next n subtasks fail artificially (tests the
	// master's retry path): the failure is reported to the task DB.
	FailNext int

	// CrashNext makes the worker die mid-subtask n times: it claims the
	// subtask (status running) and then Run returns without reporting
	// anything — the chaos harness's stand-in for a killed process, which
	// only the master's lease reclaim can recover from.
	CrashNext int

	// Parallelism, when > 0, pins the intra-engine parallelism of every
	// subtask this worker executes, overriding the task's own
	// Options.Parallelism (an operator knob for co-located workers sharing
	// one machine). 0 leaves the task options untouched.
	Parallelism int

	// Logf, when set, receives diagnostics (transient errors being retried,
	// stale attempts skipped). Nil discards them.
	Logf func(format string, args ...any)

	// Snapshot cache: workers process many subtasks of the same task, so
	// re-parsing the network for each message would dominate run time.
	cacheKey    string
	cacheEngine *core.Engine
	cacheOpts   string
}

// NewWorker creates a worker over the substrate services. The queue, store,
// and task DB handles are wrapped with DefaultRetryPolicy so transient
// substrate errors are retried in place.
func NewWorker(name string, svc Services) *Worker {
	return &Worker{
		Name: name, svc: WithRetry(svc, DefaultRetryPolicy()),
		PopWait:           50 * time.Millisecond,
		HeartbeatInterval: time.Second,
	}
}

func (w *Worker) logf(format string, args ...any) {
	if w.Logf != nil {
		w.Logf(format, args...)
	}
}

// Run consumes subtasks until ctx is cancelled or the queue is closed.
// Transient queue errors are logged and retried; they never kill the worker.
func (w *Worker) Run(ctx context.Context) {
	for {
		msg, ok, fatal := w.nextMsg(ctx)
		if fatal {
			return
		}
		if !ok {
			continue
		}
		if crashed := w.execute(ctx, msg); crashed {
			return
		}
	}
}

// RunN consumes exactly n subtask messages then returns (deterministic
// tests).
func (w *Worker) RunN(ctx context.Context, n int) {
	for i := 0; i < n; {
		msg, ok, fatal := w.nextMsg(ctx)
		if fatal {
			return
		}
		if !ok {
			continue
		}
		if crashed := w.execute(ctx, msg); crashed {
			return
		}
		i++
	}
}

// nextMsg pops and decodes one subtask message. fatal reports that the
// worker should stop: the context is done or the queue was deliberately
// closed. Any other pop error is transient — logged, backed off, retried.
func (w *Worker) nextMsg(ctx context.Context) (msg SubtaskMsg, ok, fatal bool) {
	if ctx.Err() != nil {
		return SubtaskMsg{}, false, true
	}
	m, ok, err := w.svc.Queue.Pop(Topic, w.PopWait)
	if err != nil {
		if errors.Is(err, mq.ErrClosed) || errors.Is(err, context.Canceled) || ctx.Err() != nil {
			return SubtaskMsg{}, false, true
		}
		w.logf("dsim: worker %s: queue pop: %v (backing off)", w.Name, err)
		select {
		case <-ctx.Done():
			return SubtaskMsg{}, false, true
		case <-time.After(w.PopWait):
		}
		return SubtaskMsg{}, false, false
	}
	if !ok {
		return SubtaskMsg{}, false, false
	}
	msg, derr := decodeMsg(m)
	if derr != nil {
		w.logf("dsim: worker %s: %v (dropping message)", w.Name, derr)
		return SubtaskMsg{}, false, false
	}
	return msg, true, false
}

// execute runs one subtask and records its status. crashed reports that the
// worker simulated a hard crash and must stop immediately.
func (w *Worker) execute(ctx context.Context, msg SubtaskMsg) (crashed bool) {
	rec, ok, err := w.svc.Tasks.Get(msg.TaskID, msg.Kind, msg.SubID)
	if err != nil {
		// Can't claim: skip the message. The master's lost-pending sweep
		// re-enqueues the subtask once the lease period passes.
		w.logf("dsim: worker %s: claiming %s/%s/%d: %v (skipping, reclaim will resend)",
			w.Name, msg.TaskID, msg.Kind, msg.SubID, err)
		return false
	}
	if !ok {
		rec = taskdb.Record{TaskID: msg.TaskID, Kind: msg.Kind, SubID: msg.SubID}
	}
	if rec.Attempts > msg.Attempt {
		// This message belongs to an attempt the master already reclaimed;
		// the superseding attempt owns the subtask now.
		w.logf("dsim: worker %s: skipping stale attempt %d of %s/%s/%d (current %d)",
			w.Name, msg.Attempt, msg.TaskID, msg.Kind, msg.SubID, rec.Attempts)
		return false
	}

	now := time.Now()
	rec.Status = taskdb.StatusRunning
	rec.Worker = w.Name
	rec.Attempts = msg.Attempt
	rec.StartedAt = now
	rec.HeartbeatAt = now
	rec.Error = ""
	if applied, err := w.svc.Tasks.FencedUpsert(rec); err != nil || !applied {
		w.logf("dsim: worker %s: claim of %s/%s/%d not applied (applied=%v err=%v)",
			w.Name, msg.TaskID, msg.Kind, msg.SubID, applied, err)
		return false
	}

	if w.CrashNext > 0 {
		// Simulated hard crash: the subtask is claimed, no completion will
		// ever be reported, and heartbeats stop with the worker. Only the
		// master's lease reclaim gets the subtask done now.
		w.CrashNext--
		w.logf("dsim: worker %s: simulated crash holding %s/%s/%d attempt %d",
			w.Name, msg.TaskID, msg.Kind, msg.SubID, msg.Attempt)
		return true
	}

	// Heartbeat from a side goroutine while the engine runs.
	hbCtx, stopHB := context.WithCancel(ctx)
	hbDone := make(chan struct{})
	go func() {
		defer close(hbDone)
		w.heartbeat(hbCtx, msg)
	}()

	var loadedFiles int
	runErr := func() error {
		if w.FailNext > 0 {
			w.FailNext--
			return fmt.Errorf("injected failure on %s", w.Name)
		}
		switch msg.Kind {
		case "route":
			return w.routeSubtask(msg)
		case "traffic":
			var err error
			loadedFiles, err = w.trafficSubtask(msg)
			return err
		}
		return fmt.Errorf("unknown subtask kind %q", msg.Kind)
	}()

	stopHB()
	<-hbDone

	rec.FinishedAt = time.Now()
	rec.DurationMs = rec.FinishedAt.Sub(rec.StartedAt).Milliseconds()
	rec.HeartbeatAt = rec.FinishedAt
	rec.LoadedRIBFiles = loadedFiles
	if runErr != nil {
		rec.Status = taskdb.StatusFailed
		rec.Error = runErr.Error()
	} else {
		rec.Status = taskdb.StatusDone
	}
	// The completion write is retried by the substrate wrapper. If it still
	// fails, the subtask is NOT reported done: the record stays running with
	// a stale heartbeat and the master's lease reclaim re-runs it (result
	// writes are idempotent, so the re-run converges to the same state).
	if applied, err := w.svc.Tasks.FencedUpsert(rec); err != nil {
		w.logf("dsim: worker %s: completion of %s/%s/%d lost: %v (lease reclaim will re-run)",
			w.Name, msg.TaskID, msg.Kind, msg.SubID, err)
	} else if !applied {
		w.logf("dsim: worker %s: completion of %s/%s/%d fenced off by newer attempt",
			w.Name, msg.TaskID, msg.Kind, msg.SubID)
	}
	return false
}

// heartbeat refreshes the subtask's lease until ctx is cancelled.
func (w *Worker) heartbeat(ctx context.Context, msg SubtaskMsg) {
	interval := w.HeartbeatInterval
	if interval <= 0 {
		interval = time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			if _, err := w.svc.Tasks.Heartbeat(msg.TaskID, msg.Kind, msg.SubID, msg.Attempt, time.Now()); err != nil {
				w.logf("dsim: worker %s: heartbeat %s/%s/%d: %v", w.Name, msg.TaskID, msg.Kind, msg.SubID, err)
			}
		}
	}
}

// engineFor returns a core engine for the snapshot, cached across subtasks.
func (w *Worker) engineFor(snapKey string, opts core.Options) (*core.Engine, error) {
	if w.Parallelism > 0 {
		opts.Parallelism = w.Parallelism
	}
	optsSig, _ := json.Marshal(opts)
	if w.cacheEngine != nil && w.cacheKey == snapKey && w.cacheOpts == string(optsSig) {
		return w.cacheEngine, nil
	}
	data, err := w.svc.Store.Get(snapKey)
	if err != nil {
		return nil, fmt.Errorf("loading snapshot: %w", err)
	}
	snap, err := core.DecodeSnapshot(bytes.NewReader(data))
	if err != nil {
		return nil, err
	}
	net, err := snap.RestoreParallel(opts.Parallelism)
	if err != nil {
		return nil, err
	}
	eng := core.NewEngine(net, opts)
	w.cacheKey, w.cacheEngine, w.cacheOpts = snapKey, eng, string(optsSig)
	return eng, nil
}

// routeSubtask simulates a subset of input routes and stores the resulting
// RIB rows.
func (w *Worker) routeSubtask(msg SubtaskMsg) error {
	eng, err := w.engineFor(msg.SnapshotKey, msg.Options)
	if err != nil {
		return err
	}
	data, err := w.svc.Store.Get(msg.InputKey)
	if err != nil {
		return fmt.Errorf("loading input: %w", err)
	}
	inputs, err := core.DecodeRoutes(bytes.NewReader(data))
	if err != nil {
		return err
	}
	res := eng.RouteSimulation(inputs)
	var buf bytes.Buffer
	if err := core.EncodeRoutes(&buf, res.GlobalRIB().Rows()); err != nil {
		return err
	}
	return w.svc.Store.Put(msg.ResultKey, buf.Bytes())
}

// trafficSubtask simulates a subset of flows. It loads only the route
// subtask result files its destination range can depend on (ordering
// heuristic) unless the baseline strategy forces loading everything. It
// returns the number of RIB files loaded.
func (w *Worker) trafficSubtask(msg SubtaskMsg) (int, error) {
	eng, err := w.engineFor(msg.SnapshotKey, msg.Options)
	if err != nil {
		return 0, err
	}
	data, err := w.svc.Store.Get(msg.InputKey)
	if err != nil {
		return 0, fmt.Errorf("loading input: %w", err)
	}
	flows, err := core.DecodeFlows(bytes.NewReader(data))
	if err != nil {
		return 0, err
	}

	needed, err := w.neededRouteFiles(msg, flows)
	if err != nil {
		return 0, err
	}
	ribs := netmodel.NewRIBSet(nil)
	var allRows []netmodel.Route
	for _, sub := range needed {
		data, err := w.svc.Store.Get(resultKey(msg.RouteTaskID, "route", sub))
		if err != nil {
			return 0, fmt.Errorf("loading RIB file %d: %w", sub, err)
		}
		rows, err := core.DecodeRoutes(bytes.NewReader(data))
		if err != nil {
			return 0, err
		}
		ribs.AddRows(rows)
		allRows = append(allRows, rows...)
	}

	res := eng.TrafficSimulation(ribs, allRows, flows)
	file := TrafficResultFile{}
	ids := make([]netmodel.LinkID, 0, len(res.Traffic.Load))
	for id := range res.Traffic.Load {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i].String() < ids[j].String() })
	for _, id := range ids {
		file.Load = append(file.Load, LoadEntry{Link: id, Volume: res.Traffic.Load[id]})
	}
	for _, p := range res.Traffic.Paths {
		file.Paths = append(file.Paths, PathEntry{Flow: p.Flow, Path: PathWire{Hops: p.Path.Hops, Exit: p.Path.Exit}})
	}
	out, err := json.Marshal(file)
	if err != nil {
		return 0, err
	}
	if err := w.svc.Store.Put(msg.ResultKey, out); err != nil {
		return 0, err
	}
	return len(needed), nil
}

// neededRouteFiles decides which route-subtask results this traffic subtask
// depends on. Under the baseline strategy, all of them; otherwise only those
// whose recorded address range overlaps the flows' destination range (§3.2).
func (w *Worker) neededRouteFiles(msg SubtaskMsg, flows []netmodel.Flow) ([]int, error) {
	all := make([]int, 0, msg.RouteSubtasks)
	for i := 0; i < msg.RouteSubtasks; i++ {
		all = append(all, i)
	}
	if msg.Strategy == StrategyBaseline || len(flows) == 0 {
		return all, nil
	}
	lo, hi := flows[0].Dst, flows[0].Dst
	for _, f := range flows {
		if f.Dst.Compare(lo) < 0 {
			lo = f.Dst
		}
		if f.Dst.Compare(hi) > 0 {
			hi = f.Dst
		}
	}
	var out []int
	for i := 0; i < msg.RouteSubtasks; i++ {
		rec, ok, err := w.svc.Tasks.Get(msg.RouteTaskID, "route", i)
		if err != nil {
			return nil, err
		}
		if !ok {
			out = append(out, i) // unknown range: be safe, load it
			continue
		}
		rLo, err1 := netip.ParseAddr(rec.RangeLo)
		rHi, err2 := netip.ParseAddr(rec.RangeHi)
		if err1 != nil || err2 != nil {
			out = append(out, i)
			continue
		}
		// Overlap test between [lo,hi] and [rLo,rHi].
		if hi.Compare(rLo) >= 0 && rHi.Compare(lo) >= 0 {
			out = append(out, i)
		}
	}
	return out, nil
}
