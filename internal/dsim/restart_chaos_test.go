package dsim

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"hoyan/internal/core"
	"hoyan/internal/durable"
	"hoyan/internal/faults"
	"hoyan/internal/gen"
	"hoyan/internal/mq"
	"hoyan/internal/objstore"
	"hoyan/internal/taskdb"
)

// durableServices opens (or recovers) the three disk-backed substrates under
// dir and returns them with a crash hook that drops all their file handles
// unflushed — the moral equivalent of kill -9 on the hosting process.
func durableServices(t *testing.T, dir string) (Services, func()) {
	t.Helper()
	store, err := objstore.OpenDisk(filepath.Join(dir, "objstore"), durable.Options{})
	if err != nil {
		t.Fatalf("OpenDisk: %v", err)
	}
	tasks, err := taskdb.OpenDurable(filepath.Join(dir, "taskdb.wal"), durable.Options{})
	if err != nil {
		t.Fatalf("taskdb.OpenDurable: %v", err)
	}
	q, err := mq.OpenDurable(filepath.Join(dir, "mq.wal"), durable.Options{})
	if err != nil {
		t.Fatalf("mq.OpenDurable: %v", err)
	}
	svc := Services{Queue: q, Store: store, Tasks: tasks}
	crash := func() {
		q.CrashClose()
		tasks.CrashClose()
		store.CrashClose()
	}
	return svc, crash
}

// TestRestartMasterResume kills the whole deployment — master and substrates
// — twice mid-task (once during the route phase, once during traffic) and
// restarts from disk each time via Master.Resume. The resumed run must fence
// out the stale pre-crash queue messages, reuse completed results as-is,
// re-execute the rest, and land byte-identical to a clean distributed run and
// to the centralized engine.
func TestRestartMasterResume(t *testing.T) {
	out := gen.Generate(gen.WAN(1))
	const nRoute, nTraffic = 6, 6

	cleanCluster := StartLocal(3)
	clean := runDistributed(t, cleanCluster.Master, "clean", out, nRoute, nTraffic)
	cleanCluster.Stop()

	dir := t.TempDir()

	// Deployment 1: route phase starts, three subtasks complete, then the
	// process dies (handles dropped without flush, master state lost).
	svcA, crashA := durableServices(t, dir)
	m1 := chaosMaster(svcA, 10, 400*time.Millisecond)
	snapKey, err := m1.UploadSnapshot("restart", out.Net)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m1.StartRouteSimulation("restart", snapKey, out.Inputs, nRoute, core.Options{}); err != nil {
		t.Fatal(err)
	}
	ctxA, cancelA := context.WithTimeout(context.Background(), time.Minute)
	wA := NewWorker("pre-crash", svcA)
	wA.HeartbeatInterval = 25 * time.Millisecond
	wA.RunN(ctxA, 3)
	cancelA()
	crashA()

	// Deployment 2: a brand-new master resumes the task from the recovered
	// substrates, finishes the route phase, starts traffic — and dies again.
	svcB, crashB := durableServices(t, dir)
	m2 := chaosMaster(svcB, 10, 400*time.Millisecond)
	info, err := m2.Resume("restart")
	if err != nil {
		t.Fatalf("Resume after route-phase crash: %v", err)
	}
	if info.RouteSubtasks != nRoute || info.TrafficSubtasks != 0 {
		t.Fatalf("resumed %d route / %d traffic subtasks, want %d/0", info.RouteSubtasks, info.TrafficSubtasks, nRoute)
	}
	if info.Done != 3 || info.Reenqueued != nRoute-3 {
		t.Fatalf("resume found %d done, re-enqueued %d; want 3 done, %d re-enqueued", info.Done, info.Reenqueued, nRoute-3)
	}
	ctxB, cancelB := context.WithCancel(context.Background())
	doneB := make(chan struct{})
	var workersB []*Worker
	for i := 0; i < 2; i++ {
		w := NewWorker(fmt.Sprintf("resume-worker-%d", i), svcB)
		w.HeartbeatInterval = 25 * time.Millisecond
		workersB = append(workersB, w)
	}
	go func() {
		defer close(doneB)
		workersB[0].Run(ctxB)
	}()
	doneB2 := make(chan struct{})
	go func() {
		defer close(doneB2)
		workersB[1].Run(ctxB)
	}()
	if err := m2.Wait("restart", "route", info.RouteSubtasks); err != nil {
		t.Fatalf("resumed route Wait: %v", err)
	}
	rt := info.RouteTask()
	if _, err := m2.StartTrafficSimulation("restart", rt, out.Flows, nTraffic, StrategyOrdered, core.Options{}); err != nil {
		t.Fatal(err)
	}
	// Give the workers a moment to pull some traffic subtasks, then stop them
	// and kill the deployment with the traffic phase incomplete.
	time.Sleep(100 * time.Millisecond)
	cancelB()
	<-doneB
	<-doneB2
	crashB()

	// The pre-crash attempts left stale attempt-0 messages behind; the fencing
	// counters prove the resumed workers skipped them rather than re-running.
	var staleSkipped int64
	for _, w := range workersB {
		staleSkipped += w.metrics.StaleSkipped.Value()
	}
	if staleSkipped < int64(nRoute-3) {
		t.Errorf("resumed workers stale-skipped %d messages, want >= %d (pre-crash queue remnants)",
			staleSkipped, nRoute-3)
	}

	// Deployment 3: resume again — this time with both phases on record — and
	// run the task to completion.
	svcC, _ := durableServices(t, dir)
	m3 := chaosMaster(svcC, 10, 400*time.Millisecond)
	info3, err := m3.Resume("restart")
	if err != nil {
		t.Fatalf("Resume after traffic-phase crash: %v", err)
	}
	if info3.RouteSubtasks != nRoute || info3.TrafficSubtasks != nTraffic {
		t.Fatalf("resumed %d route / %d traffic subtasks, want %d/%d",
			info3.RouteSubtasks, info3.TrafficSubtasks, nRoute, nTraffic)
	}
	ctxC, cancelC := context.WithCancel(context.Background())
	defer cancelC()
	for i := 0; i < 3; i++ {
		w := NewWorker(fmt.Sprintf("final-worker-%d", i), svcC)
		w.HeartbeatInterval = 25 * time.Millisecond
		go w.Run(ctxC)
	}
	if err := m3.Wait("restart", "traffic", info3.TrafficSubtasks); err != nil {
		t.Fatalf("resumed traffic Wait: %v", err)
	}
	rib, err := m3.CollectRouteResults(info3.RouteTask())
	if err != nil {
		t.Fatal(err)
	}
	sum, err := m3.CollectTrafficResults(info3.TrafficTask())
	if err != nil {
		t.Fatal(err)
	}
	chaos := distResult{RIB: rib, Sum: sum, Task: info3.RouteTask()}
	assertMatchesCentral(t, out, chaos)
	assertSameDistributed(t, clean, chaos)
}

// restarter is the crash/reopen surface shared by the faults wrappers.
type restarter interface {
	Crash()
	Reopen() error
	Crashes() (int, int64)
}

// TestRestartSubstrateCrashMidRun kills and reopens each durable substrate —
// object store, task DB, then queue — while workers are actively executing
// subtasks. The down windows sit inside the retry envelope, so in-flight
// operations ride the restart out (or fail the subtask and get re-enqueued);
// either way the final results must stay byte-identical.
func TestRestartSubstrateCrashMidRun(t *testing.T) {
	out := gen.Generate(gen.WAN(1))
	const nRoute, nTraffic = 6, 6

	cleanCluster := StartLocal(3)
	clean := runDistributed(t, cleanCluster.Master, "clean", out, nRoute, nTraffic)
	cleanCluster.Stop()

	dir := t.TempDir()
	dopts := durable.Options{}
	store, err := objstore.OpenDisk(filepath.Join(dir, "objstore"), dopts)
	if err != nil {
		t.Fatal(err)
	}
	tasks, err := taskdb.OpenDurable(filepath.Join(dir, "taskdb.wal"), dopts)
	if err != nil {
		t.Fatal(err)
	}
	q, err := mq.OpenDurable(filepath.Join(dir, "mq.wal"), dopts)
	if err != nil {
		t.Fatal(err)
	}
	storeR := faults.NewRestartableStore(store, func() (objstore.Store, error) {
		return objstore.OpenDisk(filepath.Join(dir, "objstore"), dopts)
	})
	tasksR := faults.NewRestartableTasks(tasks, func() (taskdb.DB, error) {
		return taskdb.OpenDurable(filepath.Join(dir, "taskdb.wal"), dopts)
	})
	qR := faults.NewRestartableQueue(q, func() (mq.Queue, error) {
		return mq.OpenDurable(filepath.Join(dir, "mq.wal"), dopts)
	})
	svc := Services{Queue: qR, Store: storeR, Tasks: tasksR}
	master := chaosMaster(svc, 10, 400*time.Millisecond)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	for i := 0; i < 3; i++ {
		w := NewWorker(fmt.Sprintf("restart-worker-%d", i), svc)
		w.HeartbeatInterval = 25 * time.Millisecond
		go w.Run(ctx)
	}

	cycle := func(r restarter) {
		r.Crash()
		time.Sleep(40 * time.Millisecond) // down window < retry envelope
		if err := r.Reopen(); err != nil {
			t.Errorf("reopen: %v", err)
		}
		time.Sleep(60 * time.Millisecond) // let retries drain before the next hit
	}

	snapKey, err := master.UploadSnapshot("midrun", out.Net)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := master.StartRouteSimulation("midrun", snapKey, out.Inputs, nRoute, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Workers are now chewing on route subtasks: bounce every substrate under
	// them, one after another.
	cycle(storeR)
	cycle(tasksR)
	cycle(qR)
	if err := master.Wait("midrun", "route", rt.Subtasks); err != nil {
		t.Fatalf("route Wait across substrate restarts: %v", err)
	}
	rib, err := master.CollectRouteResults(rt)
	if err != nil {
		t.Fatal(err)
	}

	tt, err := master.StartTrafficSimulation("midrun", rt, out.Flows, nTraffic, StrategyOrdered, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cycle(qR) // one more queue bounce mid-traffic
	if err := master.Wait("midrun", "traffic", tt.Subtasks); err != nil {
		t.Fatalf("traffic Wait across queue restart: %v", err)
	}
	sum, err := master.CollectTrafficResults(tt)
	if err != nil {
		t.Fatal(err)
	}

	for _, r := range []restarter{storeR, tasksR} {
		if crashes, _ := r.Crashes(); crashes != 1 {
			t.Errorf("substrate crashed %d times, want 1", crashes)
		}
	}
	if crashes, _ := qR.Crashes(); crashes != 2 {
		t.Errorf("queue crashed %d times, want 2", crashes)
	}

	chaos := distResult{RIB: rib, Sum: sum, Task: rt}
	assertMatchesCentral(t, out, chaos)
	assertSameDistributed(t, clean, chaos)
}

// TestRestartTornWALTail crashes the deployment mid-task, then tears the
// tails of the task-DB and queue WALs — a crash that landed only part of the
// final appends. Recovery must truncate the torn records and resume must
// converge to byte-identical results: a lost "done" record re-executes its
// subtask (idempotent result files), a lost "pop" record re-delivers a stale
// message the fencing layer skips.
func TestRestartTornWALTail(t *testing.T) {
	out := gen.Generate(gen.WAN(1))
	const nRoute, nTraffic = 5, 5

	cleanCluster := StartLocal(3)
	clean := runDistributed(t, cleanCluster.Master, "clean", out, nRoute, nTraffic)
	cleanCluster.Stop()

	dir := t.TempDir()
	svcA, crashA := durableServices(t, dir)
	m1 := chaosMaster(svcA, 10, 400*time.Millisecond)
	snapKey, err := m1.UploadSnapshot("torn", out.Net)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m1.StartRouteSimulation("torn", snapKey, out.Inputs, nRoute, core.Options{}); err != nil {
		t.Fatal(err)
	}
	ctxA, cancelA := context.WithTimeout(context.Background(), time.Minute)
	wA := NewWorker("pre-tear", svcA)
	wA.HeartbeatInterval = 25 * time.Millisecond
	wA.RunN(ctxA, 3)
	cancelA()
	crashA()

	// Tear the final appends: part of the last task-DB record (likely a claim,
	// heartbeat, or done upsert) and of the last queue record (a pop).
	taskWAL := filepath.Join(dir, "taskdb.wal")
	mqWAL := filepath.Join(dir, "mq.wal")
	if err := faults.TearTail(taskWAL, 5); err != nil {
		t.Fatal(err)
	}
	if err := faults.TearTail(mqWAL, 3); err != nil {
		t.Fatal(err)
	}
	tornSize := fileSize(t, taskWAL)

	svcB, _ := durableServices(t, dir)
	if got := fileSize(t, taskWAL); got >= tornSize {
		t.Errorf("recovery did not truncate the torn task-DB tail: %d >= %d bytes", got, tornSize)
	}
	m2 := chaosMaster(svcB, 10, 400*time.Millisecond)
	info, err := m2.Resume("torn")
	if err != nil {
		t.Fatalf("Resume over torn WALs: %v", err)
	}
	if info.RouteSubtasks != nRoute {
		t.Fatalf("resumed %d route subtasks, want %d", info.RouteSubtasks, nRoute)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	for i := 0; i < 3; i++ {
		w := NewWorker(fmt.Sprintf("post-tear-worker-%d", i), svcB)
		w.HeartbeatInterval = 25 * time.Millisecond
		go w.Run(ctx)
	}
	if err := m2.Wait("torn", "route", info.RouteSubtasks); err != nil {
		t.Fatalf("route Wait after torn recovery: %v", err)
	}
	rt := info.RouteTask()
	rib, err := m2.CollectRouteResults(rt)
	if err != nil {
		t.Fatal(err)
	}
	tt, err := m2.StartTrafficSimulation("torn", rt, out.Flows, nTraffic, StrategyOrdered, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := m2.Wait("torn", "traffic", tt.Subtasks); err != nil {
		t.Fatal(err)
	}
	sum, err := m2.CollectTrafficResults(tt)
	if err != nil {
		t.Fatal(err)
	}
	chaos := distResult{RIB: rib, Sum: sum, Task: rt}
	assertMatchesCentral(t, out, chaos)
	assertSameDistributed(t, clean, chaos)
}

func fileSize(t *testing.T, path string) int64 {
	t.Helper()
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	return fi.Size()
}
