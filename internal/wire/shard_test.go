package wire

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"reflect"
	"testing"

	"hoyan/internal/netmodel"
)

// sampleAdvs exercises the boundary-adv encoder paths: repeated device/VRF
// strings (interning), multi-route payloads, eBGP vs iBGP seams, and the
// zero adv.
func sampleAdvs() []netmodel.BoundaryAdv {
	routes := sampleRoutes()
	return []netmodel.BoundaryAdv{
		{
			From: "border-0-0", To: "rr-1-0", VRF: netmodel.DefaultVRF,
			Prefix: routes[0].Prefix, EBGP: true,
			FromAddr: routes[0].NextHop,
			Routes:   routes[:2],
		},
		{
			From: "border-0-0", To: "rr-1-1", VRF: netmodel.DefaultVRF,
			Prefix: routes[2].Prefix,
			Routes: routes[2:3],
		},
		{}, // zero adv: empty strings, zero prefix/addr, no payload
	}
}

func TestShardInputRoundTrip(t *testing.T) {
	want := &ShardInput{Routes: sampleRoutes(), Inbound: sampleAdvs()}
	var buf bytes.Buffer
	if err := EncodeShardInput(&buf, want); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeShardInput(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("shard input round trip:\n got %+v\nwant %+v", got, want)
	}
}

func TestShardResultRoundTrip(t *testing.T) {
	want := &ShardResult{Exports: sampleAdvs(), Rows: sampleRoutes()}
	var buf bytes.Buffer
	if err := EncodeShardResult(&buf, want); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeShardResult(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("shard result round trip:\n got %+v\nwant %+v", got, want)
	}
}

// TestShardJSONFallback is the mixed-version decode test: a legacy (or
// not-yet-upgraded) peer writes shard messages as plain JSON, and the binary
// decoders must accept them via the peek-byte fallback — exactly what keeps a
// rolling upgrade of the fleet safe.
func TestShardJSONFallback(t *testing.T) {
	in := &ShardInput{Routes: sampleRoutes(), Inbound: sampleAdvs()}
	inJSON, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	gotIn, err := DecodeShardInput(bytes.NewReader(inJSON))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotIn, in) {
		t.Errorf("json fallback shard input:\n got %+v\nwant %+v", gotIn, in)
	}

	res := &ShardResult{Exports: sampleAdvs(), Rows: sampleRoutes()}
	resJSON, _ := json.Marshal(res)
	gotRes, err := DecodeShardResult(bytes.NewReader(resJSON))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotRes, res) {
		t.Errorf("json fallback shard result:\n got %+v\nwant %+v", gotRes, res)
	}
}

// FuzzContractCanonicalize asserts the seam encoding's core invariants on
// arbitrary input: the decoder never panics; any contract it accepts
// round-trips through the binary frame unchanged; and canonicalization is
// order-insensitive — any permutation of the advs canonicalizes to the same
// signature sequence (the ACORN-style property the contract-exchange
// fixpoint's convergence check depends on).
func FuzzContractCanonicalize(f *testing.F) {
	var seed bytes.Buffer
	if err := EncodeShardResult(&seed, &ShardResult{Exports: sampleAdvs(), Rows: sampleRoutes()[:1]}); err != nil {
		f.Fatal(err)
	}
	jsonBlob, _ := json.Marshal(&ShardResult{Exports: sampleAdvs()})
	f.Add(seed.Bytes(), uint64(1))
	f.Add(jsonBlob, uint64(2))
	f.Add(seed.Bytes()[:len(seed.Bytes())/2], uint64(3)) // truncated
	corrupted := append([]byte(nil), seed.Bytes()...)
	corrupted[len(corrupted)/2] ^= 0xFF
	f.Add(corrupted, uint64(4))
	f.Add([]byte{}, uint64(5))

	f.Fuzz(func(t *testing.T, data []byte, permSeed uint64) {
		res, err := DecodeShardResult(bytes.NewReader(data))
		if err != nil {
			return
		}

		// Round trip: anything accepted re-encodes and re-decodes bytewise.
		var buf bytes.Buffer
		if err := EncodeShardResult(&buf, res); err != nil {
			t.Fatalf("re-encoding accepted contract: %v", err)
		}
		again, err := DecodeShardResult(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-decoding own encoding: %v", err)
		}
		// Compare via the injective binary signature: JSON-fallback inputs can
		// carry empty-but-non-nil slices at any depth (case-insensitive field
		// matching included) that the binary form represents as nil — a
		// representational difference the signature correctly ignores.
		if !bytes.Equal(contractSig(res), contractSig(again)) {
			t.Fatal("re-decode changed the contract")
		}

		// Canonicalization is permutation-invariant: shuffle the advs, then
		// both orders must canonicalize to identical signature sequences.
		canon := netmodel.CanonicalizeBoundary(append([]netmodel.BoundaryAdv(nil), res.Exports...))
		shuffled := append([]netmodel.BoundaryAdv(nil), res.Exports...)
		rnd := rand.New(rand.NewSource(int64(permSeed)))
		rnd.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		canon2 := netmodel.CanonicalizeBoundary(shuffled)
		if len(canon) != len(canon2) {
			t.Fatalf("canonical lengths differ: %d vs %d", len(canon), len(canon2))
		}
		for i := range canon {
			a := canon[i].AppendSignature(nil)
			b := canon2[i].AppendSignature(nil)
			if !bytes.Equal(a, b) {
				t.Fatalf("adv %d: canonical order depends on input order", i)
			}
		}
		if !netmodel.BoundarySetsEqual(res.Exports, canon2) {
			t.Fatal("canonicalization changed the advertisement set")
		}
	})
}

// contractSig is a shard result's injective semantic identity: every export's
// signature plus the rows wrapped as one pseudo-adv payload.
func contractSig(res *ShardResult) []byte {
	var dst []byte
	for i := range res.Exports {
		dst = res.Exports[i].AppendSignature(dst)
	}
	wrap := netmodel.BoundaryAdv{Routes: res.Rows}
	return wrap.AppendSignature(dst)
}
