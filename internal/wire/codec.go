package wire

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/netip"

	"hoyan/internal/netmodel"
	"slices"
)

// ---------------------------------------------------------------- routes

// EncodeRoutes writes route rows as an uncompressed binary frame.
func EncodeRoutes(w io.Writer, routes []netmodel.Route) error {
	return EncodeRoutesOpts(w, routes, Options{})
}

// EncodeRoutesOpts writes route rows with explicit options.
func EncodeRoutesOpts(w io.Writer, routes []netmodel.Route, opts Options) error {
	return encodeFrame(w, KindRoutes, opts, func(e *encoder) {
		e.uvarint(uint64(len(routes)))
		for i := range routes {
			e.route(&routes[i])
		}
	})
}

func (e *encoder) route(r *netmodel.Route) {
	e.str(r.Device)
	e.str(r.VRF)
	e.prefix(r.Prefix)
	e.byte(byte(r.Protocol))
	e.addr(r.NextHop)
	e.communities(r.Communities)
	e.uvarint(uint64(r.LocalPref))
	e.uvarint(uint64(r.MED))
	e.uvarint(uint64(r.Weight))
	e.uvarint(uint64(r.Preference))
	e.asPath(r.ASPath)
	e.byte(byte(r.Origin))
	e.uvarint(uint64(r.IGPCost))
	e.byte(byte(r.RouteType))
	e.bool(r.ViaSR)
	e.str(r.Peer)
	e.str(r.Source)
}

// DecodeRoutes reads a route file written by EncodeRoutes, falling back to
// the legacy JSON encoding when the blob does not start with the wire magic.
func DecodeRoutes(r io.Reader) ([]netmodel.Route, error) {
	br := bufio.NewReader(r)
	d, binary, err := decodeFrame(br, KindRoutes)
	if err != nil {
		return nil, err
	}
	if !binary {
		var out []netmodel.Route
		if err := json.NewDecoder(br).Decode(&out); err != nil {
			return nil, fmt.Errorf("wire: decoding routes (json fallback): %w", err)
		}
		return out, nil
	}
	n, err := d.uvarint()
	if err != nil {
		return nil, fmt.Errorf("wire: decoding routes: %w", err)
	}
	out := make([]netmodel.Route, 0, min(n, preallocCap))
	for i := uint64(0); i < n; i++ {
		rt, err := d.route()
		if err != nil {
			return nil, fmt.Errorf("wire: decoding route %d/%d: %w", i, n, err)
		}
		out = append(out, rt)
	}
	return out, nil
}

func (d *decoder) route() (netmodel.Route, error) {
	var r netmodel.Route
	var err error
	read := func(f func() error) {
		if err == nil {
			err = f()
		}
	}
	read(func() (e error) { r.Device, e = d.str(); return })
	read(func() (e error) { r.VRF, e = d.str(); return })
	read(func() (e error) { r.Prefix, e = d.prefix(); return })
	read(func() (e error) {
		b, e := d.byte()
		r.Protocol = netmodel.Protocol(b)
		return e
	})
	read(func() (e error) { r.NextHop, e = d.addr(); return })
	read(func() (e error) { r.Communities, e = d.communities(); return })
	read(func() (e error) { r.LocalPref, e = d.u32(); return })
	read(func() (e error) { r.MED, e = d.u32(); return })
	read(func() (e error) { r.Weight, e = d.u32(); return })
	read(func() (e error) { r.Preference, e = d.u32(); return })
	read(func() (e error) { r.ASPath, e = d.asPath(); return })
	read(func() (e error) {
		b, e := d.byte()
		r.Origin = netmodel.Origin(b)
		return e
	})
	read(func() (e error) { r.IGPCost, e = d.u32(); return })
	read(func() (e error) {
		b, e := d.byte()
		r.RouteType = netmodel.RouteType(b)
		return e
	})
	read(func() (e error) { r.ViaSR, e = d.bool(); return })
	read(func() (e error) { r.Peer, e = d.str(); return })
	read(func() (e error) { r.Source, e = d.str(); return })
	return r, err
}

// ---------------------------------------------------------------- flows

// EncodeFlows writes flows as an uncompressed binary frame.
func EncodeFlows(w io.Writer, flows []netmodel.Flow) error {
	return EncodeFlowsOpts(w, flows, Options{})
}

// EncodeFlowsOpts writes flows with explicit options.
func EncodeFlowsOpts(w io.Writer, flows []netmodel.Flow, opts Options) error {
	return encodeFrame(w, KindFlows, opts, func(e *encoder) {
		e.uvarint(uint64(len(flows)))
		for i := range flows {
			e.flow(&flows[i])
		}
	})
}

func (e *encoder) flow(f *netmodel.Flow) {
	e.addr(f.Src)
	e.addr(f.Dst)
	e.uvarint(uint64(f.SrcPort))
	e.uvarint(uint64(f.DstPort))
	e.byte(byte(f.Proto))
	e.str(f.Ingress)
	e.f64(f.Volume)
}

// DecodeFlows reads a flow file written by EncodeFlows, with JSON fallback.
func DecodeFlows(r io.Reader) ([]netmodel.Flow, error) {
	br := bufio.NewReader(r)
	d, binary, err := decodeFrame(br, KindFlows)
	if err != nil {
		return nil, err
	}
	if !binary {
		var out []netmodel.Flow
		if err := json.NewDecoder(br).Decode(&out); err != nil {
			return nil, fmt.Errorf("wire: decoding flows (json fallback): %w", err)
		}
		return out, nil
	}
	n, err := d.uvarint()
	if err != nil {
		return nil, fmt.Errorf("wire: decoding flows: %w", err)
	}
	out := make([]netmodel.Flow, 0, min(n, preallocCap))
	for i := uint64(0); i < n; i++ {
		f, err := d.flow()
		if err != nil {
			return nil, fmt.Errorf("wire: decoding flow %d/%d: %w", i, n, err)
		}
		out = append(out, f)
	}
	return out, nil
}

func (d *decoder) flow() (netmodel.Flow, error) {
	var f netmodel.Flow
	var err error
	read := func(fn func() error) {
		if err == nil {
			err = fn()
		}
	}
	read(func() (e error) { f.Src, e = d.addr(); return })
	read(func() (e error) { f.Dst, e = d.addr(); return })
	read(func() (e error) {
		v, e := d.uvarint()
		f.SrcPort = uint16(v)
		return e
	})
	read(func() (e error) {
		v, e := d.uvarint()
		f.DstPort = uint16(v)
		return e
	})
	read(func() (e error) {
		b, e := d.byte()
		f.Proto = netmodel.IPProto(b)
		return e
	})
	read(func() (e error) { f.Ingress, e = d.str(); return })
	read(func() (e error) { f.Volume, e = d.f64(); return })
	return f, err
}

// ---------------------------------------------------------------- snapshot

// SnapshotNode is the wire form of a topology node. core.SnapshotNode
// aliases this type; the JSON tags preserve the legacy fallback encoding.
type SnapshotNode struct {
	Name     string     `json:"name"`
	Loopback netip.Addr `json:"loopback"`
	Up       bool       `json:"up"`
}

// Snapshot is the wire form of a network model: per-device configuration
// text plus the monitored topology. core.Snapshot shares this underlying
// struct, so conversions between the two are free.
type Snapshot struct {
	Configs map[string]string `json:"configs"`
	Nodes   []SnapshotNode    `json:"nodes"`
	Links   []netmodel.Link   `json:"links"`
}

// EncodeSnapshot writes the snapshot as a flate-compressed binary frame
// (configuration text dominates the payload and compresses well).
func EncodeSnapshot(w io.Writer, s *Snapshot) error {
	return EncodeSnapshotOpts(w, s, Options{Compress: true})
}

// EncodeSnapshotOpts writes the snapshot with explicit options.
func EncodeSnapshotOpts(w io.Writer, s *Snapshot, opts Options) error {
	return encodeFrame(w, KindSnapshot, opts, func(e *encoder) {
		// Deterministic bytes: config map in sorted key order.
		names := make([]string, 0, len(s.Configs))
		for name := range s.Configs {
			names = append(names, name)
		}
		slices.Sort(names)
		e.uvarint(uint64(len(names)))
		for _, name := range names {
			e.str(name)
			e.blob(s.Configs[name])
		}
		e.uvarint(uint64(len(s.Nodes)))
		for _, n := range s.Nodes {
			e.str(n.Name)
			e.addr(n.Loopback)
			e.bool(n.Up)
		}
		e.uvarint(uint64(len(s.Links)))
		for i := range s.Links {
			e.link(&s.Links[i])
		}
	})
}

func (e *encoder) link(l *netmodel.Link) {
	e.str(l.A)
	e.str(l.B)
	e.str(l.AIface)
	e.str(l.BIface)
	e.prefix(l.ANet)
	e.prefix(l.BNet)
	e.addr(l.AAddr)
	e.addr(l.BAddr)
	e.uvarint(uint64(l.CostAB))
	e.uvarint(uint64(l.CostBA))
	e.uvarint(uint64(l.TEAB))
	e.uvarint(uint64(l.TEBA))
	e.f64(l.Bandwidth)
	e.bool(l.Up)
}

// DecodeSnapshot reads a snapshot written by EncodeSnapshot, with JSON
// fallback for blobs produced by older versions.
func DecodeSnapshot(r io.Reader) (*Snapshot, error) {
	br := bufio.NewReader(r)
	d, binary, err := decodeFrame(br, KindSnapshot)
	if err != nil {
		return nil, err
	}
	if !binary {
		var s Snapshot
		if err := json.NewDecoder(br).Decode(&s); err != nil {
			return nil, fmt.Errorf("wire: decoding snapshot (json fallback): %w", err)
		}
		return &s, nil
	}
	s := &Snapshot{Configs: make(map[string]string)}
	nc, err := d.uvarint()
	if err != nil {
		return nil, fmt.Errorf("wire: decoding snapshot configs: %w", err)
	}
	for i := uint64(0); i < nc; i++ {
		name, err := d.str()
		if err != nil {
			return nil, fmt.Errorf("wire: decoding snapshot config name %d: %w", i, err)
		}
		text, err := d.blob()
		if err != nil {
			return nil, fmt.Errorf("wire: decoding snapshot config %q: %w", name, err)
		}
		s.Configs[name] = text
	}
	nn, err := d.uvarint()
	if err != nil {
		return nil, fmt.Errorf("wire: decoding snapshot nodes: %w", err)
	}
	s.Nodes = make([]SnapshotNode, 0, min(nn, preallocCap))
	for i := uint64(0); i < nn; i++ {
		var n SnapshotNode
		if n.Name, err = d.str(); err == nil {
			if n.Loopback, err = d.addr(); err == nil {
				n.Up, err = d.bool()
			}
		}
		if err != nil {
			return nil, fmt.Errorf("wire: decoding snapshot node %d: %w", i, err)
		}
		s.Nodes = append(s.Nodes, n)
	}
	nl, err := d.uvarint()
	if err != nil {
		return nil, fmt.Errorf("wire: decoding snapshot links: %w", err)
	}
	s.Links = make([]netmodel.Link, 0, min(nl, preallocCap))
	for i := uint64(0); i < nl; i++ {
		l, err := d.link()
		if err != nil {
			return nil, fmt.Errorf("wire: decoding snapshot link %d: %w", i, err)
		}
		s.Links = append(s.Links, l)
	}
	return s, nil
}

func (d *decoder) link() (netmodel.Link, error) {
	var l netmodel.Link
	var err error
	read := func(fn func() error) {
		if err == nil {
			err = fn()
		}
	}
	read(func() (e error) { l.A, e = d.str(); return })
	read(func() (e error) { l.B, e = d.str(); return })
	read(func() (e error) { l.AIface, e = d.str(); return })
	read(func() (e error) { l.BIface, e = d.str(); return })
	read(func() (e error) { l.ANet, e = d.prefix(); return })
	read(func() (e error) { l.BNet, e = d.prefix(); return })
	read(func() (e error) { l.AAddr, e = d.addr(); return })
	read(func() (e error) { l.BAddr, e = d.addr(); return })
	read(func() (e error) { l.CostAB, e = d.u32(); return })
	read(func() (e error) { l.CostBA, e = d.u32(); return })
	read(func() (e error) { l.TEAB, e = d.u32(); return })
	read(func() (e error) { l.TEBA, e = d.u32(); return })
	read(func() (e error) { l.Bandwidth, e = d.f64(); return })
	read(func() (e error) { l.Up, e = d.bool(); return })
	return l, err
}

// ----------------------------------------------------- traffic result file

// Path is the wire form of netmodel.Path (dsim.PathWire aliases it).
type Path struct {
	Hops []netmodel.Hop      `json:"hops"`
	Exit netmodel.ExitReason `json:"exit"`
}

// PathEntry is one flow's simulated path (dsim.PathEntry aliases it).
type PathEntry struct {
	Flow netmodel.Flow `json:"flow"`
	Path Path          `json:"path"`
}

// LoadEntry is one link's simulated volume (dsim.LoadEntry aliases it).
type LoadEntry struct {
	Link   netmodel.LinkID `json:"link"`
	Volume float64         `json:"volume"`
}

// TrafficResult is the wire form of one traffic subtask's result file
// (dsim.TrafficResultFile aliases it).
type TrafficResult struct {
	Load  []LoadEntry `json:"load"`
	Paths []PathEntry `json:"paths"`
}

// EncodeTrafficResult writes a traffic result file as an uncompressed
// binary frame.
func EncodeTrafficResult(w io.Writer, t *TrafficResult) error {
	return EncodeTrafficResultOpts(w, t, Options{})
}

// EncodeTrafficResultOpts writes a traffic result with explicit options.
func EncodeTrafficResultOpts(w io.Writer, t *TrafficResult, opts Options) error {
	return encodeFrame(w, KindTrafficResult, opts, func(e *encoder) {
		e.uvarint(uint64(len(t.Load)))
		for i := range t.Load {
			e.linkID(t.Load[i].Link)
			e.f64(t.Load[i].Volume)
		}
		e.uvarint(uint64(len(t.Paths)))
		for i := range t.Paths {
			p := &t.Paths[i]
			e.flow(&p.Flow)
			e.uvarint(uint64(len(p.Path.Hops)))
			for _, h := range p.Path.Hops {
				e.str(h.Device)
				e.linkID(h.Link)
			}
			e.byte(byte(p.Path.Exit))
		}
	})
}

func (e *encoder) linkID(id netmodel.LinkID) {
	e.str(id.A)
	e.str(id.B)
	e.str(id.AIface)
	e.str(id.BIface)
}

// DecodeTrafficResult reads a traffic result file, with JSON fallback.
func DecodeTrafficResult(r io.Reader) (*TrafficResult, error) {
	br := bufio.NewReader(r)
	d, binary, err := decodeFrame(br, KindTrafficResult)
	if err != nil {
		return nil, err
	}
	if !binary {
		var t TrafficResult
		if err := json.NewDecoder(br).Decode(&t); err != nil {
			return nil, fmt.Errorf("wire: decoding traffic result (json fallback): %w", err)
		}
		return &t, nil
	}
	t := &TrafficResult{}
	nl, err := d.uvarint()
	if err != nil {
		return nil, fmt.Errorf("wire: decoding traffic loads: %w", err)
	}
	t.Load = make([]LoadEntry, 0, min(nl, preallocCap))
	for i := uint64(0); i < nl; i++ {
		var le LoadEntry
		if le.Link, err = d.linkID(); err == nil {
			le.Volume, err = d.f64()
		}
		if err != nil {
			return nil, fmt.Errorf("wire: decoding traffic load %d: %w", i, err)
		}
		t.Load = append(t.Load, le)
	}
	np, err := d.uvarint()
	if err != nil {
		return nil, fmt.Errorf("wire: decoding traffic paths: %w", err)
	}
	t.Paths = make([]PathEntry, 0, min(np, preallocCap))
	for i := uint64(0); i < np; i++ {
		pe, err := d.pathEntry()
		if err != nil {
			return nil, fmt.Errorf("wire: decoding traffic path %d: %w", i, err)
		}
		t.Paths = append(t.Paths, pe)
	}
	return t, nil
}

func (d *decoder) linkID() (netmodel.LinkID, error) {
	var id netmodel.LinkID
	var err error
	read := func(fn func() error) {
		if err == nil {
			err = fn()
		}
	}
	read(func() (e error) { id.A, e = d.str(); return })
	read(func() (e error) { id.B, e = d.str(); return })
	read(func() (e error) { id.AIface, e = d.str(); return })
	read(func() (e error) { id.BIface, e = d.str(); return })
	return id, err
}

func (d *decoder) pathEntry() (PathEntry, error) {
	var pe PathEntry
	f, err := d.flow()
	if err != nil {
		return pe, err
	}
	pe.Flow = f
	nh, err := d.uvarint()
	if err != nil {
		return pe, err
	}
	pe.Path.Hops = make([]netmodel.Hop, 0, min(nh, preallocCap))
	for i := uint64(0); i < nh; i++ {
		var h netmodel.Hop
		if h.Device, err = d.str(); err == nil {
			h.Link, err = d.linkID()
		}
		if err != nil {
			return pe, err
		}
		pe.Path.Hops = append(pe.Path.Hops, h)
	}
	exit, err := d.byte()
	if err != nil {
		return pe, err
	}
	pe.Path.Exit = netmodel.ExitReason(exit)
	return pe, nil
}
