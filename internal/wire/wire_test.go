package wire

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"net/netip"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"hoyan/internal/netmodel"
)

var update = flag.Bool("update", false, "rewrite golden files from the sample fixtures")

// ---------------------------------------------------------------- fixtures

// sampleRoutes exercises the interesting encoder paths: repeated strings and
// AS paths (interning), IPv4 and IPv6, zero addresses/prefixes, empty rows,
// and values past the one-byte varint range.
func sampleRoutes() []netmodel.Route {
	shared := netmodel.ASPath{Seq: []netmodel.ASN{65000, 65001, 4200000000}}
	comms := netmodel.NewCommunitySet(netmodel.NewCommunity(65000, 1), netmodel.NewCommunity(65000, 666))
	return []netmodel.Route{
		{
			Device: "rr-0-0", VRF: netmodel.DefaultVRF,
			Prefix:      netip.MustParsePrefix("10.0.0.0/24"),
			Protocol:    netmodel.ProtoBGP,
			NextHop:     netip.MustParseAddr("192.0.2.1"),
			Communities: comms, LocalPref: 200, MED: 50, Weight: 32768,
			Preference: 170, ASPath: shared, Origin: netmodel.OriginIGP,
			IGPCost: 10, RouteType: netmodel.RouteBest, ViaSR: true,
			Peer: "border-0-0", Source: "bgp",
		},
		{
			Device: "rr-0-0", VRF: netmodel.DefaultVRF, // interned refs
			Prefix:   netip.MustParsePrefix("2001:db8::/48"),
			Protocol: netmodel.ProtoISIS,
			NextHop:  netip.MustParseAddr("2001:db8::1"),
			ASPath:   shared, // interned structural ref
			IGPCost:  300000, RouteType: netmodel.RouteCandidate,
			Peer: "border-0-0", Source: "isis",
		},
		{
			Device: "border-1-0", VRF: "vpn-a",
			Prefix:   netip.MustParsePrefix("10.1.0.0/16"),
			Protocol: netmodel.ProtoStatic,
			ASPath:   netmodel.ASPath{Set: []netmodel.ASN{65010, 65011}},
			Origin:   netmodel.OriginIncomplete,
		},
		{}, // zero route: zero prefix, zero addr, empty everything
	}
}

func sampleFlows() []netmodel.Flow {
	return []netmodel.Flow{
		{
			Src: netip.MustParseAddr("10.0.0.1"), Dst: netip.MustParseAddr("10.1.0.1"),
			SrcPort: 443, DstPort: 51234, Proto: netmodel.ProtoTCP,
			Ingress: "border-0-0", Volume: 1.5e9,
		},
		{
			Src: netip.MustParseAddr("2001:db8::1"), Dst: netip.MustParseAddr("2001:db8:1::1"),
			Proto: netmodel.ProtoUDP, Ingress: "border-0-0", Volume: 0.25,
		},
		{}, // zero flow
	}
}

func sampleSnapshot() *Snapshot {
	return &Snapshot{
		Configs: map[string]string{
			"rr-0-0":     "hostname rr-0-0\nrouter bgp 65000\n",
			"border-0-0": "hostname border-0-0\nrouter bgp 65000\n",
		},
		Nodes: []SnapshotNode{
			{Name: "rr-0-0", Loopback: netip.MustParseAddr("10.255.0.1"), Up: true},
			{Name: "border-0-0", Loopback: netip.MustParseAddr("10.255.0.2"), Up: false},
		},
		Links: []netmodel.Link{{
			A: "rr-0-0", B: "border-0-0", AIface: "eth0", BIface: "eth1",
			ANet:   netip.MustParsePrefix("10.254.0.0/31"),
			BNet:   netip.MustParsePrefix("10.254.0.0/31"),
			AAddr:  netip.MustParseAddr("10.254.0.0"),
			BAddr:  netip.MustParseAddr("10.254.0.1"),
			CostAB: 10, CostBA: 10, TEAB: 1, TEBA: 1, Bandwidth: 100e9, Up: true,
		}},
	}
}

func sampleTraffic() *TrafficResult {
	id := netmodel.LinkID{A: "rr-0-0", B: "border-0-0", AIface: "eth0", BIface: "eth1"}
	return &TrafficResult{
		Load: []LoadEntry{{Link: id, Volume: 1.5e9}},
		Paths: []PathEntry{{
			Flow: sampleFlows()[0],
			Path: Path{
				Hops: []netmodel.Hop{{Device: "border-0-0", Link: id}, {Device: "rr-0-0"}},
				Exit: netmodel.ExitDelivered,
			},
		}},
	}
}

// ---------------------------------------------------------------- round trips

func TestRoutesRoundTrip(t *testing.T) {
	want := sampleRoutes()
	for _, opts := range []Options{{}, {Compress: true}} {
		var buf bytes.Buffer
		if err := EncodeRoutesOpts(&buf, want, opts); err != nil {
			t.Fatalf("encode (%+v): %v", opts, err)
		}
		got, err := DecodeRoutes(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("decode (%+v): %v", opts, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("round trip (%+v):\n got %+v\nwant %+v", opts, got, want)
		}
	}
}

func TestRoutesRoundTripEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := EncodeRoutes(&buf, nil); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeRoutes(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("got %d routes, want 0", len(got))
	}
}

func TestFlowsRoundTrip(t *testing.T) {
	want := sampleFlows()
	var buf bytes.Buffer
	if err := EncodeFlows(&buf, want); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeFlows(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("round trip:\n got %+v\nwant %+v", got, want)
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	want := sampleSnapshot()
	for _, opts := range []Options{{}, {Compress: true}} {
		var buf bytes.Buffer
		if err := EncodeSnapshotOpts(&buf, want, opts); err != nil {
			t.Fatalf("encode (%+v): %v", opts, err)
		}
		got, err := DecodeSnapshot(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("decode (%+v): %v", opts, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("round trip (%+v):\n got %+v\nwant %+v", opts, got, want)
		}
	}
}

func TestSnapshotEncodeDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := EncodeSnapshot(&a, sampleSnapshot()); err != nil {
		t.Fatal(err)
	}
	if err := EncodeSnapshot(&b, sampleSnapshot()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("two encodings of the same snapshot differ (config map ordering leaked)")
	}
}

func TestTrafficResultRoundTrip(t *testing.T) {
	want := sampleTraffic()
	var buf bytes.Buffer
	if err := EncodeTrafficResult(&buf, want); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeTrafficResult(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("round trip:\n got %+v\nwant %+v", got, want)
	}
}

// ----------------------------------------------------------------- goldens

// golden compares got against testdata/name, rewriting it under -update.
func golden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/wire -update` to create goldens)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s: encoding drifted from golden (%d vs %d bytes); if the format "+
			"change is intentional, bump Version and regenerate with -update", name, len(got), len(want))
	}
}

// TestGolden locks the binary encodings: a byte-level change to the format
// breaks this test, forcing a deliberate Version bump.
func TestGolden(t *testing.T) {
	var routes, flows, snap, traffic bytes.Buffer
	if err := EncodeRoutes(&routes, sampleRoutes()); err != nil {
		t.Fatal(err)
	}
	if err := EncodeFlows(&flows, sampleFlows()); err != nil {
		t.Fatal(err)
	}
	if err := EncodeSnapshot(&snap, sampleSnapshot()); err != nil {
		t.Fatal(err)
	}
	if err := EncodeTrafficResult(&traffic, sampleTraffic()); err != nil {
		t.Fatal(err)
	}
	golden(t, "routes.bin", routes.Bytes())
	golden(t, "flows.bin", flows.Bytes())
	golden(t, "snapshot.bin", snap.Bytes())
	golden(t, "traffic.bin", traffic.Bytes())

	// Decoding the goldens must reproduce the fixtures exactly.
	gotR, err := DecodeRoutes(&routes)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotR, sampleRoutes()) {
		t.Error("golden routes decode mismatch")
	}
	gotS, err := DecodeSnapshot(&snap)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotS, sampleSnapshot()) {
		t.Error("golden snapshot decode mismatch")
	}
}

// TestJSONFallback feeds every decoder a legacy JSON blob — what a
// pre-binary master or an archived result file would hold — and checks it
// decodes identically to the fixtures.
func TestJSONFallback(t *testing.T) {
	routesJSON, err := json.Marshal(sampleRoutes())
	if err != nil {
		t.Fatal(err)
	}
	golden(t, "routes.json", routesJSON)
	gotR, err := DecodeRoutes(bytes.NewReader(routesJSON))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotR, sampleRoutes()) {
		t.Errorf("json fallback routes:\n got %+v\nwant %+v", gotR, sampleRoutes())
	}

	flowsJSON, _ := json.Marshal(sampleFlows())
	gotF, err := DecodeFlows(bytes.NewReader(flowsJSON))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotF, sampleFlows()) {
		t.Error("json fallback flows mismatch")
	}

	snapJSON, _ := json.Marshal(sampleSnapshot())
	gotS, err := DecodeSnapshot(bytes.NewReader(snapJSON))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotS, sampleSnapshot()) {
		t.Error("json fallback snapshot mismatch")
	}

	trafficJSON, _ := json.Marshal(sampleTraffic())
	gotT, err := DecodeTrafficResult(bytes.NewReader(trafficJSON))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotT, sampleTraffic()) {
		t.Error("json fallback traffic result mismatch")
	}
}

// ------------------------------------------------------------- corrupt input

func encodedRoutes(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := EncodeRoutes(&buf, sampleRoutes()); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestDecodeTruncated(t *testing.T) {
	blob := encodedRoutes(t)
	for n := 0; n < len(blob); n++ {
		if _, err := DecodeRoutes(bytes.NewReader(blob[:n])); err == nil {
			t.Fatalf("truncation at %d/%d bytes decoded without error", n, len(blob))
		}
	}
}

func TestDecodeCorruptHeader(t *testing.T) {
	blob := encodedRoutes(t)
	mut := func(i int, b byte) []byte {
		c := append([]byte(nil), blob...)
		c[i] = b
		return c
	}
	cases := []struct {
		name    string
		blob    []byte
		corrupt bool // must map to ErrCorrupt specifically
	}{
		{"bad marker", mut(1, 'X'), true},
		{"future version", mut(3, 99), false},
		{"unknown flags", mut(4, 0x80), true},
		{"unknown kind", mut(5, 42), true},
	}
	for _, tc := range cases {
		_, err := DecodeRoutes(bytes.NewReader(tc.blob))
		if err == nil {
			t.Errorf("%s: decoded without error", tc.name)
			continue
		}
		if tc.corrupt && !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: error %v does not wrap ErrCorrupt", tc.name, err)
		}
	}
}

func TestDecodeWrongKind(t *testing.T) {
	if _, err := DecodeFlows(bytes.NewReader(encodedRoutes(t))); !errors.Is(err, ErrCorrupt) {
		t.Errorf("flows decoder accepted a routes frame: %v", err)
	}
}

func TestDecodeDanglingStringRef(t *testing.T) {
	// Frame holding one route whose device field references string id 5
	// with an empty intern table.
	blob := []byte{Magic, mark1, mark2, Version, 0, byte(KindRoutes), 1 /* count */, 5 /* str ref */}
	if _, err := DecodeRoutes(bytes.NewReader(blob)); !errors.Is(err, ErrCorrupt) {
		t.Errorf("dangling intern ref: got %v, want ErrCorrupt", err)
	}
}

func TestDecodeOversizedBlobLength(t *testing.T) {
	// A literal string whose claimed length exceeds maxBlob must fail before
	// allocating.
	var buf bytes.Buffer
	buf.Write([]byte{Magic, mark1, mark2, Version, 0, byte(KindRoutes), 1, 0})
	e := newEncoder(&buf)
	e.uvarint(maxBlob + 1)
	if _, err := DecodeRoutes(bytes.NewReader(buf.Bytes())); !errors.Is(err, ErrCorrupt) {
		t.Errorf("oversized blob length: got %v, want ErrCorrupt", err)
	}
}

func TestDecodeJSONGarbage(t *testing.T) {
	_, err := DecodeRoutes(strings.NewReader("definitely not json"))
	if err == nil || !strings.Contains(err.Error(), "json fallback") {
		t.Errorf("garbage input: got %v, want json fallback error", err)
	}
}

func TestDecodeEmptyInput(t *testing.T) {
	if _, err := DecodeRoutes(bytes.NewReader(nil)); err == nil {
		t.Error("empty input decoded without error")
	}
}

// ---------------------------------------------------------------- fuzzing

// FuzzDecodeRoutes asserts the decoder never panics and that anything it
// accepts re-encodes and re-decodes to the same rows.
func FuzzDecodeRoutes(f *testing.F) {
	var plain, compressed bytes.Buffer
	if err := EncodeRoutes(&plain, sampleRoutes()); err != nil {
		f.Fatal(err)
	}
	if err := EncodeRoutesOpts(&compressed, sampleRoutes(), Options{Compress: true}); err != nil {
		f.Fatal(err)
	}
	jsonBlob, _ := json.Marshal(sampleRoutes())
	f.Add(plain.Bytes())
	f.Add(compressed.Bytes())
	f.Add(jsonBlob)
	f.Add(plain.Bytes()[:len(plain.Bytes())/2]) // truncated
	corrupted := append([]byte(nil), plain.Bytes()...)
	corrupted[len(corrupted)/2] ^= 0xFF
	f.Add(corrupted)
	f.Add([]byte{Magic, mark1, mark2, Version, 0, byte(KindRoutes), 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x0F}) // absurd count
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		routes, err := DecodeRoutes(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := EncodeRoutes(&buf, routes); err != nil {
			t.Fatalf("re-encoding accepted rows: %v", err)
		}
		again, err := DecodeRoutes(&buf)
		if err != nil {
			t.Fatalf("re-decoding own encoding: %v", err)
		}
		if len(again) != len(routes) {
			t.Fatalf("re-decode row count %d != %d", len(again), len(routes))
		}
	})
}
