package wire

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"hoyan/internal/netmodel"
)

// ShardInput is the wire form of one shard subtask's sealed-run inputs: the
// shard's slice of the representative input routes plus the inbound boundary
// contract for this contract-exchange round. The JSON tags preserve the
// legacy fallback encoding for mixed-version clusters.
type ShardInput struct {
	Routes  []netmodel.Route       `json:"routes"`
	Inbound []netmodel.BoundaryAdv `json:"inbound"`
}

// ShardResult is one shard subtask's sealed-run outcome: the canonical
// outbound contract plus the shard's final (pre-expansion) route rows.
type ShardResult struct {
	Exports []netmodel.BoundaryAdv `json:"exports"`
	Rows    []netmodel.Route       `json:"rows"`
}

func (e *encoder) boundaryAdv(a *netmodel.BoundaryAdv) {
	e.str(a.From)
	e.str(a.To)
	e.str(a.VRF)
	e.prefix(a.Prefix)
	e.bool(a.EBGP)
	e.addr(a.FromAddr)
	e.uvarint(uint64(len(a.Routes)))
	for i := range a.Routes {
		e.route(&a.Routes[i])
	}
}

func (d *decoder) boundaryAdv() (netmodel.BoundaryAdv, error) {
	var a netmodel.BoundaryAdv
	var err error
	read := func(fn func() error) {
		if err == nil {
			err = fn()
		}
	}
	read(func() (e error) { a.From, e = d.str(); return })
	read(func() (e error) { a.To, e = d.str(); return })
	read(func() (e error) { a.VRF, e = d.str(); return })
	read(func() (e error) { a.Prefix, e = d.prefix(); return })
	read(func() (e error) { a.EBGP, e = d.bool(); return })
	read(func() (e error) { a.FromAddr, e = d.addr(); return })
	if err != nil {
		return a, err
	}
	n, err := d.uvarint()
	if err != nil {
		return a, err
	}
	if n > 0 { // keep nil for empty payloads, matching the JSON fallback
		a.Routes = make([]netmodel.Route, 0, min(n, preallocCap))
	}
	for i := uint64(0); i < n; i++ {
		r, err := d.route()
		if err != nil {
			return a, err
		}
		a.Routes = append(a.Routes, r)
	}
	return a, nil
}

func (e *encoder) boundaryAdvs(advs []netmodel.BoundaryAdv) {
	e.uvarint(uint64(len(advs)))
	for i := range advs {
		e.boundaryAdv(&advs[i])
	}
}

func (d *decoder) boundaryAdvs() ([]netmodel.BoundaryAdv, error) {
	n, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	var out []netmodel.BoundaryAdv
	if n > 0 {
		out = make([]netmodel.BoundaryAdv, 0, min(n, preallocCap))
	}
	for i := uint64(0); i < n; i++ {
		a, err := d.boundaryAdv()
		if err != nil {
			return nil, fmt.Errorf("adv %d/%d: %w", i, n, err)
		}
		out = append(out, a)
	}
	return out, nil
}

// EncodeShardInput writes a shard subtask input as an uncompressed binary
// frame.
func EncodeShardInput(w io.Writer, in *ShardInput) error {
	return encodeFrame(w, KindShardInput, Options{}, func(e *encoder) {
		e.uvarint(uint64(len(in.Routes)))
		for i := range in.Routes {
			e.route(&in.Routes[i])
		}
		e.boundaryAdvs(in.Inbound)
	})
}

// DecodeShardInput reads a shard subtask input, with JSON fallback.
func DecodeShardInput(r io.Reader) (*ShardInput, error) {
	br := bufio.NewReader(r)
	d, binary, err := decodeFrame(br, KindShardInput)
	if err != nil {
		return nil, err
	}
	if !binary {
		var in ShardInput
		if err := json.NewDecoder(br).Decode(&in); err != nil {
			return nil, fmt.Errorf("wire: decoding shard input (json fallback): %w", err)
		}
		return &in, nil
	}
	in := &ShardInput{}
	n, err := d.uvarint()
	if err != nil {
		return nil, fmt.Errorf("wire: decoding shard input routes: %w", err)
	}
	if n > 0 {
		in.Routes = make([]netmodel.Route, 0, min(n, preallocCap))
	}
	for i := uint64(0); i < n; i++ {
		rt, err := d.route()
		if err != nil {
			return nil, fmt.Errorf("wire: decoding shard input route %d/%d: %w", i, n, err)
		}
		in.Routes = append(in.Routes, rt)
	}
	if in.Inbound, err = d.boundaryAdvs(); err != nil {
		return nil, fmt.Errorf("wire: decoding shard input contract: %w", err)
	}
	return in, nil
}

// EncodeShardResult writes a shard subtask result as an uncompressed binary
// frame.
func EncodeShardResult(w io.Writer, res *ShardResult) error {
	return encodeFrame(w, KindShardResult, Options{}, func(e *encoder) {
		e.boundaryAdvs(res.Exports)
		e.uvarint(uint64(len(res.Rows)))
		for i := range res.Rows {
			e.route(&res.Rows[i])
		}
	})
}

// DecodeShardResult reads a shard subtask result, with JSON fallback.
func DecodeShardResult(r io.Reader) (*ShardResult, error) {
	br := bufio.NewReader(r)
	d, binary, err := decodeFrame(br, KindShardResult)
	if err != nil {
		return nil, err
	}
	if !binary {
		var res ShardResult
		if err := json.NewDecoder(br).Decode(&res); err != nil {
			return nil, fmt.Errorf("wire: decoding shard result (json fallback): %w", err)
		}
		return &res, nil
	}
	res := &ShardResult{}
	if res.Exports, err = d.boundaryAdvs(); err != nil {
		return nil, fmt.Errorf("wire: decoding shard result contract: %w", err)
	}
	n, err := d.uvarint()
	if err != nil {
		return nil, fmt.Errorf("wire: decoding shard result rows: %w", err)
	}
	if n > 0 {
		res.Rows = make([]netmodel.Route, 0, min(n, preallocCap))
	}
	for i := uint64(0); i < n; i++ {
		rt, err := d.route()
		if err != nil {
			return nil, fmt.Errorf("wire: decoding shard result row %d/%d: %w", i, n, err)
		}
		res.Rows = append(res.Rows, rt)
	}
	return res, nil
}
