// Package wire implements the distributed framework's versioned compact
// binary wire format. Every blob that crosses the object store — network
// snapshots, route files, flow files, traffic result files — pays for its
// bytes twice: once in transfer and once in decode CPU on a worker. The
// format here replaces the encoding/json wire path with:
//
//   - string interning: device names, VRFs, interface names, peers, and
//     ingress devices repeat massively across rows; each distinct string is
//     transmitted once and referenced by a varint id afterwards,
//   - structural interning of AS paths and community sets (the two
//     heavy repeated BGP attributes), which also deduplicates them in memory
//     on decode — all rows sharing an AS path share one backing slice,
//   - varint integers for the uint32-ish attribute fields,
//   - raw 4/16-byte netip address and prefix encodings instead of quoted
//     dotted strings,
//   - an optional compress/flate frame (used for snapshots, whose payload is
//     device configuration text).
//
// Framing: a 6-byte header [Magic 'H' 'Y' version flags kind] precedes the
// payload. Magic (0xB1) can never start a JSON document, so every decoder
// sniffs the first byte and falls back to the legacy encoding/json decoder
// for old blobs — mixed-version clusters and archived result files keep
// working.
package wire

import (
	"bufio"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"net/netip"

	"hoyan/internal/netmodel"
)

// Frame header constants.
const (
	// Magic is the first byte of every binary wire frame. It is outside the
	// ASCII range, so it can never begin a JSON document ('{', '[', '"',
	// digits, whitespace, ...): decoders sniff it to pick binary vs JSON.
	Magic byte = 0xB1
	mark1 byte = 'H'
	mark2 byte = 'Y'

	// Version is the current format version. Decoders reject frames with a
	// newer version instead of misparsing them.
	Version byte = 1

	flagFlate byte = 1 << 0

	headerLen = 6
)

// Kind tags the payload type inside a frame so a routes decoder fed a flows
// blob fails cleanly instead of producing garbage.
type Kind byte

// Payload kinds.
const (
	KindRoutes Kind = iota + 1
	KindFlows
	KindSnapshot
	KindTrafficResult
	KindShardInput
	KindShardResult
)

func (k Kind) String() string {
	switch k {
	case KindRoutes:
		return "routes"
	case KindFlows:
		return "flows"
	case KindSnapshot:
		return "snapshot"
	case KindTrafficResult:
		return "traffic-result"
	case KindShardInput:
		return "shard-input"
	case KindShardResult:
		return "shard-result"
	}
	return fmt.Sprintf("kind(%d)", byte(k))
}

// Options tunes encoding. The zero value is an uncompressed frame.
type Options struct {
	// Compress wraps the payload in a flate stream. Snapshots (configuration
	// text) compress ~5-10x; route/flow files are already dense after
	// interning, so their default is uncompressed for decode speed.
	Compress bool
}

// maxBlob bounds a single length-prefixed byte string (a device
// configuration is the largest legitimate payload). Corrupt length prefixes
// fail here instead of attempting a multi-gigabyte allocation.
const maxBlob = 1 << 28

// preallocCap bounds speculative slice preallocation from untrusted counts:
// decoders grow by append beyond it, so a corrupt count fails on EOF rather
// than on an absurd make().
const preallocCap = 1 << 16

// ErrCorrupt tags structural decode failures (bad magic trailer, dangling
// intern reference, oversized length).
var ErrCorrupt = errors.New("wire: corrupt frame")

// ---------------------------------------------------------------- encoder

// encoder writes the payload of one frame, carrying a sticky error and the
// interning tables.
type encoder struct {
	w   io.Writer
	err error

	varbuf  [binary.MaxVarintLen64]byte
	scratch []byte

	strings map[string]uint64
	asPaths map[string]uint64
	comms   map[string]uint64
}

func newEncoder(w io.Writer) *encoder {
	return &encoder{
		w:       w,
		strings: make(map[string]uint64),
		asPaths: make(map[string]uint64),
		comms:   make(map[string]uint64),
	}
}

func (e *encoder) write(p []byte) {
	if e.err == nil {
		_, e.err = e.w.Write(p)
	}
}

func (e *encoder) byte(b byte) { e.write([]byte{b}) }

func (e *encoder) bool(b bool) {
	if b {
		e.byte(1)
	} else {
		e.byte(0)
	}
}

func (e *encoder) uvarint(v uint64) {
	n := binary.PutUvarint(e.varbuf[:], v)
	e.write(e.varbuf[:n])
}

func (e *encoder) f64(v float64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
	e.write(b[:])
}

// blob writes a non-interned length-prefixed byte string (config text).
func (e *encoder) blob(s string) {
	e.uvarint(uint64(len(s)))
	e.write([]byte(s))
}

// str writes an interned string: a varint reference for strings seen before,
// or 0 followed by the literal on first appearance (which assigns the next
// id on both sides).
func (e *encoder) str(s string) {
	if id, ok := e.strings[s]; ok {
		e.uvarint(id)
		return
	}
	e.strings[s] = uint64(len(e.strings)) + 1
	e.uvarint(0)
	e.blob(s)
}

// addr writes a netip address as a length byte (0 = zero Addr) plus raw
// bytes, preserving the 4/16-byte form.
func (e *encoder) addr(a netip.Addr) {
	if !a.IsValid() {
		e.byte(0)
		return
	}
	b := a.AsSlice()
	e.byte(byte(len(b)))
	e.write(b)
}

func (e *encoder) prefix(p netip.Prefix) {
	e.addr(p.Addr())
	if p.Addr().IsValid() {
		e.byte(byte(p.Bits()))
	}
}

func appendUvarint(dst []byte, v uint64) []byte {
	var b [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(b[:], v)
	return append(dst, b[:n]...)
}

// asPath writes a structurally interned AS path.
func (e *encoder) asPath(p netmodel.ASPath) {
	e.scratch = e.scratch[:0]
	e.scratch = appendUvarint(e.scratch, uint64(len(p.Seq)))
	for _, a := range p.Seq {
		e.scratch = appendUvarint(e.scratch, uint64(a))
	}
	e.scratch = appendUvarint(e.scratch, uint64(len(p.Set)))
	for _, a := range p.Set {
		e.scratch = appendUvarint(e.scratch, uint64(a))
	}
	key := string(e.scratch)
	if id, ok := e.asPaths[key]; ok {
		e.uvarint(id)
		return
	}
	e.asPaths[key] = uint64(len(e.asPaths)) + 1
	e.uvarint(0)
	e.write(e.scratch)
}

// communities writes a structurally interned community set.
func (e *encoder) communities(s netmodel.CommunitySet) {
	all := s.All()
	e.scratch = e.scratch[:0]
	e.scratch = appendUvarint(e.scratch, uint64(len(all)))
	for _, c := range all {
		e.scratch = appendUvarint(e.scratch, uint64(c))
	}
	key := string(e.scratch)
	if id, ok := e.comms[key]; ok {
		e.uvarint(id)
		return
	}
	e.comms[key] = uint64(len(e.comms)) + 1
	e.uvarint(0)
	e.write(e.scratch)
}

// encodeFrame writes the header and runs body over a fresh encoder,
// finishing the flate stream when compression is on.
func encodeFrame(w io.Writer, kind Kind, opts Options, body func(*encoder)) error {
	bw := bufio.NewWriter(w)
	header := [headerLen]byte{Magic, mark1, mark2, Version, 0, byte(kind)}
	if opts.Compress {
		header[4] |= flagFlate
	}
	if _, err := bw.Write(header[:]); err != nil {
		return err
	}
	var e *encoder
	var fw *flate.Writer
	if opts.Compress {
		fw, _ = flate.NewWriter(bw, flate.BestSpeed)
		e = newEncoder(fw)
	} else {
		e = newEncoder(bw)
	}
	body(e)
	if e.err != nil {
		return e.err
	}
	if fw != nil {
		if err := fw.Close(); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ---------------------------------------------------------------- decoder

// decoder reads one frame's payload, mirroring the encoder's interning
// tables.
type decoder struct {
	r *bufio.Reader

	strings []string
	asPaths []netmodel.ASPath
	comms   []netmodel.CommunitySet
}

// decodeFrame sniffs the first byte of br. If it is not the wire magic, it
// returns (nil, false, nil): the caller decodes br as legacy JSON. Otherwise
// it validates the header and returns a decoder over the (possibly
// decompressed) payload.
func decodeFrame(br *bufio.Reader, want Kind) (*decoder, bool, error) {
	first, err := br.Peek(1)
	if err != nil {
		return nil, false, fmt.Errorf("wire: reading %s frame: %w", want, err)
	}
	if first[0] != Magic {
		return nil, false, nil
	}
	var header [headerLen]byte
	if _, err := io.ReadFull(br, header[:]); err != nil {
		return nil, false, fmt.Errorf("wire: %s header truncated: %w (%w)", want, err, ErrCorrupt)
	}
	if header[1] != mark1 || header[2] != mark2 {
		return nil, false, fmt.Errorf("wire: bad %s frame marker %q (%w)", want, header[1:3], ErrCorrupt)
	}
	if header[3] != Version {
		return nil, false, fmt.Errorf("wire: unsupported %s frame version %d (have %d)", want, header[3], Version)
	}
	if Kind(header[5]) != want {
		return nil, false, fmt.Errorf("wire: frame holds %s, want %s (%w)", Kind(header[5]), want, ErrCorrupt)
	}
	if header[4]&^flagFlate != 0 {
		return nil, false, fmt.Errorf("wire: unknown %s frame flags %#x (%w)", want, header[4], ErrCorrupt)
	}
	d := &decoder{r: br}
	if header[4]&flagFlate != 0 {
		d.r = bufio.NewReader(flate.NewReader(br))
	}
	return d, true, nil
}

func (d *decoder) byte() (byte, error) { return d.r.ReadByte() }

func (d *decoder) bool() (bool, error) {
	b, err := d.r.ReadByte()
	return b != 0, err
}

func (d *decoder) uvarint() (uint64, error) {
	return binary.ReadUvarint(d.r)
}

func (d *decoder) u32() (uint32, error) {
	v, err := d.uvarint()
	if err != nil {
		return 0, err
	}
	if v > math.MaxUint32 {
		return 0, fmt.Errorf("wire: value %d overflows uint32 (%w)", v, ErrCorrupt)
	}
	return uint32(v), nil
}

func (d *decoder) f64() (float64, error) {
	var b [8]byte
	if _, err := io.ReadFull(d.r, b[:]); err != nil {
		return 0, err
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b[:])), nil
}

func (d *decoder) blob() (string, error) {
	n, err := d.uvarint()
	if err != nil {
		return "", err
	}
	if n > maxBlob {
		return "", fmt.Errorf("wire: blob length %d exceeds limit (%w)", n, ErrCorrupt)
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(d.r, b); err != nil {
		return "", err
	}
	return string(b), nil
}

func (d *decoder) str() (string, error) {
	id, err := d.uvarint()
	if err != nil {
		return "", err
	}
	if id == 0 {
		s, err := d.blob()
		if err != nil {
			return "", err
		}
		d.strings = append(d.strings, s)
		return s, nil
	}
	if id > uint64(len(d.strings)) {
		return "", fmt.Errorf("wire: string ref %d out of table (%d entries) (%w)", id, len(d.strings), ErrCorrupt)
	}
	return d.strings[id-1], nil
}

func (d *decoder) addr() (netip.Addr, error) {
	n, err := d.r.ReadByte()
	if err != nil {
		return netip.Addr{}, err
	}
	switch n {
	case 0:
		return netip.Addr{}, nil
	case 4, 16:
		b := make([]byte, n)
		if _, err := io.ReadFull(d.r, b); err != nil {
			return netip.Addr{}, err
		}
		a, _ := netip.AddrFromSlice(b)
		return a, nil
	}
	return netip.Addr{}, fmt.Errorf("wire: address length %d (%w)", n, ErrCorrupt)
}

func (d *decoder) prefix() (netip.Prefix, error) {
	a, err := d.addr()
	if err != nil || !a.IsValid() {
		return netip.Prefix{}, err
	}
	bits, err := d.r.ReadByte()
	if err != nil {
		return netip.Prefix{}, err
	}
	if int(bits) > a.BitLen() {
		return netip.Prefix{}, fmt.Errorf("wire: prefix bits %d exceed %d-bit address (%w)", bits, a.BitLen(), ErrCorrupt)
	}
	return netip.PrefixFrom(a, int(bits)), nil
}

func (d *decoder) asnList() ([]netmodel.ASN, error) {
	n, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	out := make([]netmodel.ASN, 0, min(n, preallocCap))
	for i := uint64(0); i < n; i++ {
		v, err := d.u32()
		if err != nil {
			return nil, err
		}
		out = append(out, netmodel.ASN(v))
	}
	return out, nil
}

func (d *decoder) asPath() (netmodel.ASPath, error) {
	id, err := d.uvarint()
	if err != nil {
		return netmodel.ASPath{}, err
	}
	if id == 0 {
		seq, err := d.asnList()
		if err != nil {
			return netmodel.ASPath{}, err
		}
		set, err := d.asnList()
		if err != nil {
			return netmodel.ASPath{}, err
		}
		p := netmodel.ASPath{Seq: seq, Set: set}
		d.asPaths = append(d.asPaths, p)
		return p, nil
	}
	if id > uint64(len(d.asPaths)) {
		return netmodel.ASPath{}, fmt.Errorf("wire: as-path ref %d out of table (%d entries) (%w)", id, len(d.asPaths), ErrCorrupt)
	}
	// Rows sharing an AS path share the decoded backing slices; ASPath is
	// treated as immutable everywhere (Prepend copies).
	return d.asPaths[id-1], nil
}

func (d *decoder) communities() (netmodel.CommunitySet, error) {
	id, err := d.uvarint()
	if err != nil {
		return netmodel.CommunitySet{}, err
	}
	if id == 0 {
		n, err := d.uvarint()
		if err != nil {
			return netmodel.CommunitySet{}, err
		}
		var set netmodel.CommunitySet
		for i := uint64(0); i < n; i++ {
			v, err := d.u32()
			if err != nil {
				return netmodel.CommunitySet{}, err
			}
			set = set.Add(netmodel.Community(v))
		}
		d.comms = append(d.comms, set)
		return set, nil
	}
	if id > uint64(len(d.comms)) {
		return netmodel.CommunitySet{}, fmt.Errorf("wire: community-set ref %d out of table (%d entries) (%w)", id, len(d.comms), ErrCorrupt)
	}
	return d.comms[id-1], nil
}

func min(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}
