// Package retry provides context-aware retries with exponential backoff and
// seeded jitter for the distributed simulation substrates. The paper's
// framework assumes the message queue, object store, and subtask database are
// remote services that flake under load; masters and workers wrap every
// substrate call in a Policy so transient TCP/gob errors are ridden out
// instead of killing the run.
//
// Determinism: the jitter source is seeded per Do call, so a given Policy
// produces the same backoff schedule on every run — chaos tests stay
// reproducible.
package retry

import (
	"context"
	"errors"
	"math/rand"
	"time"

	"hoyan/internal/telemetry"
)

// Policy describes how an operation is retried.
type Policy struct {
	// MaxTries is the total number of attempts (first try included).
	// Values < 1 mean a single attempt.
	MaxTries int
	// BaseDelay is the sleep before the second attempt.
	BaseDelay time.Duration
	// MaxDelay caps the per-attempt backoff (before jitter).
	MaxDelay time.Duration
	// Multiplier grows the delay between attempts (values <= 1 mean 2).
	Multiplier float64
	// Jitter is the +/- fraction of each delay randomized (0..1).
	Jitter float64
	// Seed seeds the jitter source; the zero value uses a fixed default so
	// schedules are reproducible unless the caller opts into variety.
	Seed int64
	// Retryable classifies errors; nil uses DefaultRetryable.
	Retryable func(error) bool
	// Metrics, when non-nil, counts attempts, retries, and give-ups (see
	// NewMetrics). Nil disables instrumentation.
	Metrics *Metrics
}

// Metrics are a policy's telemetry instruments.
type Metrics struct {
	// Attempts counts every op invocation; Retries the subset beyond an op's
	// first attempt; Giveups ops that returned a final error (retries
	// exhausted, non-retryable, or context done).
	Attempts *telemetry.Counter
	Retries  *telemetry.Counter
	Giveups  *telemetry.Counter
}

// NewMetrics registers the standard retry metrics for one component in reg.
// A nil reg yields detached instruments.
func NewMetrics(reg *telemetry.Registry, component string) *Metrics {
	l := telemetry.L("component", component)
	return &Metrics{
		Attempts: reg.Counter("hoyan_retry_attempts_total", "substrate operation attempts (first tries included)", l),
		Retries:  reg.Counter("hoyan_retry_retries_total", "substrate operation attempts beyond the first", l),
		Giveups:  reg.Counter("hoyan_retry_giveups_total", "substrate operations that failed after all retries", l),
	}
}

// Default is a policy suited to loopback/LAN substrate RPCs: five tries over
// roughly a second.
func Default() Policy {
	return Policy{MaxTries: 5, BaseDelay: 10 * time.Millisecond, MaxDelay: 500 * time.Millisecond, Multiplier: 2, Jitter: 0.5}
}

// DefaultRetryable retries every error except context cancellation/expiry and
// errors marked with Permanent.
func DefaultRetryable(err error) bool {
	if err == nil {
		return false
	}
	if IsPermanent(err) || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	return true
}

// permanentError marks an error as not worth retrying.
type permanentError struct{ err error }

func (p *permanentError) Error() string { return p.err.Error() }
func (p *permanentError) Unwrap() error { return p.err }

// Permanent marks err so DefaultRetryable (and IsPermanent) classify it as
// non-retryable. A nil err stays nil.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err: err}
}

// IsPermanent reports whether err (or anything it wraps) was marked with
// Permanent.
func IsPermanent(err error) bool {
	var p *permanentError
	return errors.As(err, &p)
}

// Do runs op, retrying per the policy until it succeeds, exhausts MaxTries,
// is classified non-retryable, or ctx is done. It returns the last error (the
// ctx error if cancellation interrupted a backoff sleep).
func (p Policy) Do(ctx context.Context, op func() error) error {
	tries := p.MaxTries
	if tries < 1 {
		tries = 1
	}
	retryable := p.Retryable
	if retryable == nil {
		retryable = DefaultRetryable
	}
	seed := p.Seed
	if seed == 0 {
		seed = 1
	}
	rng := rand.New(rand.NewSource(seed))

	var err error
	for attempt := 0; attempt < tries; attempt++ {
		if attempt > 0 {
			if serr := sleep(ctx, p.backoff(attempt, rng)); serr != nil {
				p.giveup()
				return serr
			}
		}
		if ctx.Err() != nil {
			p.giveup()
			return ctx.Err()
		}
		if m := p.Metrics; m != nil {
			m.Attempts.Inc()
			if attempt > 0 {
				m.Retries.Inc()
			}
		}
		if err = op(); err == nil {
			return nil
		}
		if !retryable(err) {
			p.giveup()
			return err
		}
	}
	p.giveup()
	return err
}

func (p Policy) giveup() {
	if p.Metrics != nil {
		p.Metrics.Giveups.Inc()
	}
}

// backoff computes the delay before the given attempt (attempt >= 1).
func (p Policy) backoff(attempt int, rng *rand.Rand) time.Duration {
	base := p.BaseDelay
	if base <= 0 {
		return 0
	}
	mult := p.Multiplier
	if mult <= 1 {
		mult = 2
	}
	d := float64(base)
	for i := 1; i < attempt; i++ {
		d *= mult
		if p.MaxDelay > 0 && d >= float64(p.MaxDelay) {
			d = float64(p.MaxDelay)
			break
		}
	}
	if p.MaxDelay > 0 && d > float64(p.MaxDelay) {
		d = float64(p.MaxDelay)
	}
	if p.Jitter > 0 {
		d *= 1 + p.Jitter*(2*rng.Float64()-1)
	}
	if d < 0 {
		d = 0
	}
	return time.Duration(d)
}

func sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
