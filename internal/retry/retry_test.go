package retry

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"
)

func TestDoSucceedsAfterTransientFailures(t *testing.T) {
	p := Policy{MaxTries: 5, BaseDelay: time.Microsecond}
	calls := 0
	err := p.Do(context.Background(), func() error {
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if calls != 3 {
		t.Fatalf("calls = %d, want 3", calls)
	}
}

func TestDoExhaustsTriesAndReturnsLastError(t *testing.T) {
	p := Policy{MaxTries: 4, BaseDelay: time.Microsecond}
	calls := 0
	last := errors.New("still broken")
	err := p.Do(context.Background(), func() error {
		calls++
		if calls == 4 {
			return last
		}
		return errors.New("broken")
	})
	if !errors.Is(err, last) {
		t.Fatalf("err = %v, want last error", err)
	}
	if calls != 4 {
		t.Fatalf("calls = %d, want 4", calls)
	}
}

func TestDoStopsOnPermanentError(t *testing.T) {
	p := Policy{MaxTries: 10, BaseDelay: time.Microsecond}
	calls := 0
	inner := errors.New("bad request")
	err := p.Do(context.Background(), func() error {
		calls++
		return Permanent(inner)
	})
	if calls != 1 {
		t.Fatalf("calls = %d, want 1", calls)
	}
	if !errors.Is(err, inner) {
		t.Fatalf("err = %v, want wrapped inner error", err)
	}
	if !IsPermanent(err) {
		t.Fatal("IsPermanent = false")
	}
}

func TestDoStopsOnContextErrors(t *testing.T) {
	// A ctx-cancel error from the op itself is non-retryable.
	p := Policy{MaxTries: 10, BaseDelay: time.Microsecond}
	calls := 0
	err := p.Do(context.Background(), func() error {
		calls++
		return context.Canceled
	})
	if calls != 1 || !errors.Is(err, context.Canceled) {
		t.Fatalf("calls = %d err = %v", calls, err)
	}

	// Cancellation during backoff interrupts the sleep.
	ctx, cancel := context.WithCancel(context.Background())
	p = Policy{MaxTries: 3, BaseDelay: time.Hour}
	calls = 0
	done := make(chan error, 1)
	go func() {
		done <- p.Do(ctx, func() error { calls++; return errors.New("transient") })
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Do did not return after cancellation")
	}
	if calls != 1 {
		t.Fatalf("calls = %d, want 1", calls)
	}
}

func TestDoCustomClassifier(t *testing.T) {
	sentinel := errors.New("closed")
	p := Policy{MaxTries: 5, BaseDelay: time.Microsecond,
		Retryable: func(err error) bool { return !errors.Is(err, sentinel) }}
	calls := 0
	err := p.Do(context.Background(), func() error { calls++; return sentinel })
	if calls != 1 || !errors.Is(err, sentinel) {
		t.Fatalf("calls = %d err = %v", calls, err)
	}
}

func TestBackoffGrowsAndCaps(t *testing.T) {
	p := Policy{BaseDelay: 10 * time.Millisecond, MaxDelay: 60 * time.Millisecond, Multiplier: 2}
	rng := rand.New(rand.NewSource(1))
	want := []time.Duration{
		10 * time.Millisecond, // attempt 1
		20 * time.Millisecond, // attempt 2
		40 * time.Millisecond, // attempt 3
		60 * time.Millisecond, // attempt 4 (capped from 80ms)
		60 * time.Millisecond, // attempt 5 (stays capped)
	}
	for i, w := range want {
		if got := p.backoff(i+1, rng); got != w {
			t.Errorf("backoff(%d) = %v, want %v", i+1, got, w)
		}
	}
}

func TestBackoffJitterBoundedAndDeterministic(t *testing.T) {
	p := Policy{BaseDelay: 100 * time.Millisecond, MaxDelay: time.Second, Multiplier: 2, Jitter: 0.5}
	a := rand.New(rand.NewSource(7))
	b := rand.New(rand.NewSource(7))
	for attempt := 1; attempt <= 6; attempt++ {
		da, db := p.backoff(attempt, a), p.backoff(attempt, b)
		if da != db {
			t.Fatalf("same seed diverged at attempt %d: %v vs %v", attempt, da, db)
		}
		lo := time.Duration(float64(p.BaseDelay) * 0.49)
		hi := time.Duration(float64(p.MaxDelay) * 1.51)
		if da < lo || da > hi {
			t.Fatalf("jittered backoff %v outside [%v, %v]", da, lo, hi)
		}
	}
}

func TestPermanentNil(t *testing.T) {
	if Permanent(nil) != nil {
		t.Fatal("Permanent(nil) != nil")
	}
	if IsPermanent(nil) {
		t.Fatal("IsPermanent(nil)")
	}
}
