package experiments

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"hoyan/internal/dsim"
)

func TestTable1ShapeHolds(t *testing.T) {
	rows := Table1()
	if len(rows) != 2 {
		t.Fatal("two rows")
	}
	if rows[1].Routers <= rows[0].Routers || rows[1].Prefixes <= rows[0].Prefixes {
		t.Errorf("2024 must exceed 2017: %+v", rows)
	}
	var buf bytes.Buffer
	PrintTable1(&buf, rows)
	if !strings.Contains(buf.String(), "2024") {
		t.Error("print")
	}
}

func TestFig1ShapeHolds(t *testing.T) {
	// Time grows with prefix fraction on WAN; WAN+DCN hits the emulated
	// memory cliff above 30%. The points are single wall-clock measurements
	// of a now-fast engine, so a background spike (packages test in
	// parallel) can invert the shape — retry a couple of times before
	// calling it a failure.
	var wan []Fig1Point
	for attempt := 0; attempt < 3; attempt++ {
		pts := Fig1(QuickScale())
		wan = wan[:0]
		oomSeen := false
		for _, p := range pts {
			if p.Profile == "WAN" {
				wan = append(wan, p)
			} else if p.OOM {
				oomSeen = true
			}
		}
		if len(wan) != 4 {
			t.Fatalf("wan points = %d", len(wan))
		}
		if !oomSeen {
			t.Fatal("WAN+DCN must hit the emulated OOM cliff")
		}
		if wan[3].Elapsed >= wan[0].Elapsed {
			return
		}
		t.Logf("attempt %d: shape inverted (%v vs %v), retrying", attempt, wan[0].Elapsed, wan[3].Elapsed)
	}
	t.Errorf("time must grow with fraction: %v vs %v", wan[0].Elapsed, wan[3].Elapsed)
}

func TestFig5aSpeedupShape(t *testing.T) {
	s := QuickScale()
	s.WANK = 2
	r := Fig5a(s)
	var wan []Fig5Point
	for _, p := range r.Points {
		if p.Profile == "WAN" {
			wan = append(wan, p)
		}
	}
	if len(wan) != len(s.Workers) {
		t.Fatalf("points = %d", len(wan))
	}
	// The modelled makespan is non-increasing in the worker count, and the
	// max-worker point must show real speedup over one worker.
	for i := 1; i < len(wan); i++ {
		if wan[i].Elapsed > wan[i-1].Elapsed {
			t.Errorf("makespan increased: w=%d %v -> w=%d %v",
				wan[i-1].Workers, wan[i-1].Elapsed, wan[i].Workers, wan[i].Elapsed)
		}
	}
	if wan[len(wan)-1].Elapsed >= wan[0].Elapsed {
		t.Errorf("no speedup: 1w=%v maxw=%v", wan[0].Elapsed, wan[len(wan)-1].Elapsed)
	}
	if len(r.Durations) == 0 {
		t.Error("no subtask durations for fig5c")
	}
	var buf bytes.Buffer
	PrintFig5a(&buf, r)
	PrintFig5c(&buf, r.Durations)
	if !strings.Contains(buf.String(), "workers") {
		t.Error("print")
	}
}

func TestFig5bOrderingBeatsBaseline(t *testing.T) {
	s := QuickScale()
	s.WANK = 2
	r := Fig5b(s)
	// At max workers, the ordering heuristic must load fewer files than the
	// baseline (which loads all).
	ord := r.LoadedFiles[dsim.StrategyOrdered]
	base := r.LoadedFiles[dsim.StrategyBaseline]
	if len(ord) == 0 || len(base) == 0 {
		t.Fatalf("missing loaded-file data: %v", r.LoadedFiles)
	}
	sum := func(xs []int) int {
		total := 0
		for _, x := range xs {
			total += x
		}
		return total
	}
	if sum(ord) >= sum(base) {
		t.Errorf("ordering %d >= baseline %d files", sum(ord), sum(base))
	}
	// The baseline's extra I/O shows up as slower subtasks: at the max
	// worker count the baseline makespan must not beat the heuristic.
	var ordT, baseT time.Duration
	maxW := s.Workers[len(s.Workers)-1]
	for _, p := range r.Points {
		if p.Workers != maxW {
			continue
		}
		if p.Strategy == dsim.StrategyOrdered {
			ordT = p.Elapsed
		}
		if p.Strategy == dsim.StrategyBaseline {
			baseT = p.Elapsed
		}
	}
	if baseT < ordT {
		t.Errorf("baseline %v beat ordering %v", baseT, ordT)
	}
	var buf bytes.Buffer
	PrintFig5b(&buf, r)
	PrintFig5d(&buf, r)
	if !strings.Contains(buf.String(), "ordered") {
		t.Error("print")
	}
}

func TestFig8ShapeHolds(t *testing.T) {
	r := Fig8(QuickScale())
	if len(r.Sizes) != 50 || len(r.Times) != 50 {
		t.Fatalf("corpus = %d/%d", len(r.Sizes), len(r.Times))
	}
	small := 0
	for _, s := range r.Sizes {
		if s < 15 {
			small++
		}
	}
	if float64(small)/50 < 0.9 {
		t.Errorf("only %d/50 specs below size 15", small)
	}
	for _, d := range r.Times {
		if d > time.Minute {
			t.Errorf("verification too slow: %v", d)
		}
	}
	var buf bytes.Buffer
	PrintFig8(&buf, r)
}

func TestECStatsReduction(t *testing.T) {
	r := ECStats(QuickScale())
	if r.RouteClasses >= r.RouteInputs {
		t.Errorf("route ECs must reduce: %d -> %d", r.RouteInputs, r.RouteClasses)
	}
	if r.FlowClasses >= r.FlowInputs {
		t.Errorf("flow ECs must reduce: %d -> %d", r.FlowInputs, r.FlowClasses)
	}
	var buf bytes.Buffer
	PrintECStats(&buf, r)
}

func TestTables(t *testing.T) {
	if testing.Short() {
		t.Skip("table campaigns are slow")
	}
	t2 := Table2()
	for _, r := range t2 {
		if !r.Verified {
			t.Errorf("change type %s failed to verify", r.Type)
		}
	}
	t4 := Table4(QuickScale())
	for _, r := range t4 {
		if r.Detected != r.Injected {
			t.Errorf("table4 %s: %d/%d detected", r.Class, r.Detected, r.Injected)
		}
	}
	t5 := Table5()
	for _, r := range t5 {
		if !r.Detected {
			t.Errorf("table5 %s undetected", r.VSB)
		}
	}
	t6 := Table6()
	for _, r := range t6 {
		if r.Detected != r.Total {
			t.Errorf("table6 %s: %d/%d", r.Cause, r.Detected, r.Total)
		}
	}
	summary, err := Fig9()
	if err != nil || !strings.Contains(summary, "diverges at H2") {
		t.Errorf("fig9: %v %q", err, summary)
	}
	var buf bytes.Buffer
	PrintTable2(&buf, t2)
	PrintTable3(&buf)
	PrintTable4(&buf, t4)
	PrintTable5(&buf, t5)
	PrintTable6(&buf, t6)
}
