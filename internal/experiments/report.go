package experiments

import (
	"fmt"
	"io"

	"hoyan/internal/core"
	"hoyan/internal/pipeline"
	"hoyan/internal/telemetry"
)

// ReportResult is one instrumented distributed run over the generated WAN:
// the pipeline's per-stage breakdown plus the fleet-wide telemetry gathered
// from it.
type ReportResult struct {
	Devices int
	Routes  int
	Flows   int
	RIBRows int
	Workers int
	Report  pipeline.RunReport
}

// Report runs one distributed route + traffic simulation with telemetry on
// (the ops view of a production verification run) and returns the full
// observability record. It uses the largest worker count of the scale's
// Figure 5 sweep. shards > 1 routes the run through the sharded verifier
// (boundary-route contracts, per-shard sealed fixpoints); <= 1 keeps the
// whole-network path.
func Report(s Scale, shards int) (*ReportResult, error) {
	workers := 4
	for _, n := range s.Workers {
		if n > workers {
			workers = n
		}
	}
	g := genWAN(s)
	sys := pipeline.New(g.Net, g.Inputs, g.Flows, core.Options{})
	sys.Workers = workers
	sys.RouteSubtasks = s.RouteSubtasks
	sys.TrafficSubtasks = s.TrafficSubtasks
	sys.Shards = shards
	sys.Telemetry = true
	snap, err := sys.Simulate("report")
	if err != nil {
		return nil, err
	}
	return &ReportResult{
		Devices: len(g.Net.Devices),
		Routes:  len(g.Inputs),
		Flows:   len(g.Flows),
		RIBRows: snap.RIB.Len(),
		Workers: workers,
		Report:  sys.LastRunReport(),
	}, nil
}

// PrintReport renders the per-stage breakdown and a telemetry summary.
func PrintReport(w io.Writer, r *ReportResult) {
	fmt.Fprintln(w, "Run report: one instrumented distributed verification run")
	fmt.Fprintf(w, "%d devices, %d input routes, %d flows, %d workers -> %d RIB rows\n",
		r.Devices, r.Routes, r.Flows, r.Workers, r.RIBRows)
	r.Report.WriteBreakdown(w)
	if r.Report.Shard != nil {
		for _, m := range r.Report.Metrics {
			switch m.Name {
			case "shard_rounds_total", "shard_contract_routes", "shard_seam_mismatches_total", "shard_full_fallbacks_total":
				fmt.Fprintf(w, "  %s: %g\n", m.Name, m.Value)
			}
		}
	}
	// Striped BGP fixpoint activity. Zero counters mean every round stayed
	// sequential (single-core host, Parallelism 1, or tiny dirty sets); the
	// imbalance histogram only prints once at least one run striped.
	for _, m := range r.Report.Metrics {
		switch m.Name {
		case "bgp_parallel_rounds_total", "bgp_stripes_total":
			fmt.Fprintf(w, "  %s: %g\n", m.Name, m.Value)
		case "bgp_stripe_imbalance_ratio":
			if m.Count > 0 {
				fmt.Fprintf(w, "  %s: mean %.2f over %d run(s)\n", m.Name, m.Sum/float64(m.Count), m.Count)
			}
		}
	}
	fmt.Fprintf(w, "  telemetry: %d metric series, %d trace spans across %s\n",
		len(r.Report.Metrics), len(r.Report.Spans), traceSummary(r.Report.Spans))
}

// traceSummary counts the distinct trace IDs and actors in a span set.
func traceSummary(spans []telemetry.SpanRecord) string {
	traces := map[string]bool{}
	actors := map[string]bool{}
	for _, sp := range spans {
		traces[sp.TraceID] = true
		actors[sp.Actor] = true
	}
	return fmt.Sprintf("%d trace(s) / %d actor(s)", len(traces), len(actors))
}
