package experiments

import (
	"fmt"
	"io"
	"time"

	"hoyan/internal/core"
	"hoyan/internal/gen"
	"hoyan/internal/intent"
	"hoyan/internal/kfail"
	"hoyan/internal/telemetry"
)

// IncrResult measures the incremental what-if engine on a single-link-failure
// sweep: wall time and throughput warm-started vs from-scratch, plus the
// work-avoidance counters the sweep exported.
type IncrResult struct {
	Scenarios   int
	Incremental time.Duration
	FromScratch time.Duration

	SPFReused      int64
	BGPTablesDirty int64
	WarmRounds     int64
	FlowsReused    int64
}

// Speedup is the from-scratch / incremental wall-time ratio.
func (r *IncrResult) Speedup() float64 {
	if r.Incremental == 0 {
		return 0
	}
	return float64(r.FromScratch) / float64(r.Incremental)
}

// Throughput returns scenarios per second for a duration.
func (r *IncrResult) Throughput(d time.Duration) float64 {
	if d == 0 {
		return 0
	}
	return float64(r.Scenarios) / d.Seconds()
}

// Incr runs the same k=1 failure sweep twice — incremental forks, then
// DisableIncremental — over a generated WAN. Results are byte-identical by
// construction (the kfail tests pin that); this experiment measures the
// throughput gap.
func Incr(s Scale) *IncrResult {
	g := gen.Generate(gen.WAN(s.WANK))
	intents := []intent.Intent{intent.LoadIntent{MaxUtilization: 1.0}}
	reg := telemetry.NewRegistry()
	maxScenarios := 30

	opts := kfail.Options{K: 1, MaxScenarios: maxScenarios, Registry: reg, Parallelism: 1, Sim: core.Options{Parallelism: 1}}
	start := time.Now()
	res, err := kfail.Check(g.Net, g.Inputs, g.Flows, intents, opts)
	if err != nil {
		panic(err)
	}
	incDur := time.Since(start)

	opts.Registry = nil
	opts.Sim.DisableIncremental = true
	start = time.Now()
	if _, err := kfail.Check(g.Net, g.Inputs, g.Flows, intents, opts); err != nil {
		panic(err)
	}
	refDur := time.Since(start)

	return &IncrResult{
		Scenarios:      res.Scenarios,
		Incremental:    incDur,
		FromScratch:    refDur,
		SPFReused:      reg.Counter("incr_spf_sources_reused", "").Value(),
		BGPTablesDirty: reg.Counter("incr_bgp_tables_dirty", "").Value(),
		WarmRounds:     reg.Counter("incr_warm_rounds", "").Value(),
		FlowsReused:    reg.Counter("incr_flows_reused", "").Value(),
	}
}

// PrintIncr renders the incremental what-if measurements.
func PrintIncr(w io.Writer, r *IncrResult) {
	fmt.Fprintln(w, "Incremental what-if engine (k=1 link-failure sweep)")
	fmt.Fprintf(w, "  %d scenarios: incremental %s (%.1f/s) vs from-scratch %s (%.1f/s) — %.1fx\n",
		r.Scenarios,
		r.Incremental.Round(time.Millisecond), r.Throughput(r.Incremental),
		r.FromScratch.Round(time.Millisecond), r.Throughput(r.FromScratch), r.Speedup())
	fmt.Fprintf(w, "  work avoided: %d SPF sources reused, %d BGP tables dirtied, %d warm rounds, %d flows reused\n",
		r.SPFReused, r.BGPTablesDirty, r.WarmRounds, r.FlowsReused)
}
