package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"time"

	"hoyan/internal/core"
	"hoyan/internal/gen"
	"hoyan/internal/netmodel"
	"hoyan/internal/serve"
	"hoyan/internal/telemetry"
)

// ---------------------------------------------------------- serve (hoyand)

// ServeResult summarizes a verification-as-a-service load run: one warm
// hoyand instance answering a burst of what-if queries from two tenants.
type ServeResult struct {
	Scale    int
	Devices  int
	Queries  int
	Rejected int // 429s retried by the clients
	Elapsed  time.Duration
	QPS      float64

	// Latency percentiles from the serve_query_latency_seconds histogram.
	LatP50, LatP99 time.Duration
	// Queue-wait breakdown from serve_queue_wait_seconds: time spent queued
	// versus executing.
	WaitP50, WaitP99 time.Duration
	AvgWait, AvgRun  time.Duration
	BaseConvergeTime time.Duration
}

// ServeLoad runs the experiment: load gen.WAN once, then fire queries
// concurrent what-if requests through the REST API and read the latency and
// queue-wait distributions back out of the telemetry snapshot.
func ServeLoad(s Scale, queries int) (*ServeResult, error) {
	g := gen.Generate(gen.WAN(s.WANK))
	reg := telemetry.NewRegistry()
	srv, err := serve.NewServer(serve.Config{
		Tenants: []serve.TenantConfig{
			{Name: "noc", APIKey: "key-noc", Weight: 2},
			{Name: "batch", APIKey: "key-batch", RatePerSec: 200, Burst: 20},
		},
		Workers:  4,
		Registry: reg,
		Sim:      core.Options{Parallelism: 1},
	})
	if err != nil {
		return nil, err
	}

	convergeStart := time.Now()
	if _, err := srv.LoadNetwork("exp", g.Net, g.Inputs, g.Flows, true); err != nil {
		return nil, err
	}
	converge := time.Since(convergeStart)

	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	links := g.Net.Topo.Links()
	step := len(links)/12 + 1
	var scenarios []*netmodel.Link
	for i := 0; i < len(links); i += step {
		scenarios = append(scenarios, links[i])
	}

	res := &ServeResult{Scale: s.WANK, Devices: len(g.Net.Devices), Queries: queries}
	var mu sync.Mutex
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < queries; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			key := "key-noc"
			if i%2 == 1 {
				key = "key-batch"
			}
			l := scenarios[i%len(scenarios)]
			body, _ := json.Marshal(serve.QueryRequest{
				Kind:      "whatif",
				FailLinks: []serve.LinkRef{{A: l.A, B: l.B}},
			})
			var id string
			for {
				req, _ := http.NewRequest("POST", ts.URL+"/v1/queries", bytes.NewReader(body))
				req.Header.Set("X-API-Key", key)
				resp, err := http.DefaultClient.Do(req)
				if err != nil {
					return
				}
				if resp.StatusCode == http.StatusTooManyRequests {
					resp.Body.Close()
					mu.Lock()
					res.Rejected++
					mu.Unlock()
					time.Sleep(10 * time.Millisecond)
					continue
				}
				var st struct {
					ID string `json:"id"`
				}
				json.NewDecoder(resp.Body).Decode(&st)
				resp.Body.Close()
				id = st.ID
				break
			}
			for {
				req, _ := http.NewRequest("GET", ts.URL+"/v1/queries/"+id, nil)
				req.Header.Set("X-API-Key", key)
				resp, err := http.DefaultClient.Do(req)
				if err != nil {
					return
				}
				var st struct {
					State string `json:"state"`
				}
				json.NewDecoder(resp.Body).Decode(&st)
				resp.Body.Close()
				if st.State == "done" || st.State == "failed" || st.State == "canceled" {
					return
				}
				time.Sleep(2 * time.Millisecond)
			}
		}(i)
	}
	wg.Wait()
	res.Elapsed = time.Since(start)
	res.QPS = float64(queries) / res.Elapsed.Seconds()
	res.BaseConvergeTime = converge

	snap := reg.Gather()
	if lat, ok := snap.Find("serve_query_latency_seconds", telemetry.L("kind", "whatif")); ok {
		res.LatP50 = histQuantile(lat, 0.50)
		res.LatP99 = histQuantile(lat, 0.99)
		if lat.Count > 0 {
			res.AvgRun = time.Duration(lat.Sum / float64(lat.Count) * float64(time.Second))
		}
	}
	if wait, ok := snap.Find("serve_queue_wait_seconds"); ok {
		res.WaitP50 = histQuantile(wait, 0.50)
		res.WaitP99 = histQuantile(wait, 0.99)
		if wait.Count > 0 {
			res.AvgWait = time.Duration(wait.Sum / float64(wait.Count) * float64(time.Second))
		}
	}

	shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return nil, err
	}
	return res, nil
}

// histQuantile reads the q-quantile out of a cumulative-bucket series: the
// smallest bucket upper bound covering q of the observations.
func histQuantile(ser telemetry.Series, q float64) time.Duration {
	if ser.Count == 0 {
		return 0
	}
	target := int64(q * float64(ser.Count))
	if target < 1 {
		target = 1
	}
	var cum int64
	for _, b := range ser.Buckets {
		cum += b.Count
		if cum >= target && !math.IsInf(b.UpperBound, 1) {
			return time.Duration(b.UpperBound * float64(time.Second))
		}
	}
	// Landed in the +Inf bucket: report the mean as the best available guess.
	return time.Duration(ser.Sum / float64(ser.Count) * float64(time.Second))
}

// PrintServe renders the experiment.
func PrintServe(w io.Writer, r *ServeResult) {
	fmt.Fprintln(w, "Verification as a service (hoyand, warm what-if queries)")
	fmt.Fprintf(w, "  WAN(%d): %d devices; base converged once in %s\n",
		r.Scale, r.Devices, r.BaseConvergeTime.Round(time.Millisecond))
	fmt.Fprintf(w, "  %d queries in %s: %.1f queries/s (%d rate-limit 429s retried)\n",
		r.Queries, r.Elapsed.Round(time.Millisecond), r.QPS, r.Rejected)
	fmt.Fprintf(w, "  query latency: p50 %s, p99 %s, mean run %s\n",
		r.LatP50.Round(time.Millisecond), r.LatP99.Round(time.Millisecond), r.AvgRun.Round(time.Millisecond))
	fmt.Fprintf(w, "  queue wait:    p50 %s, p99 %s, mean %s\n",
		r.WaitP50.Round(time.Millisecond), r.WaitP99.Round(time.Millisecond), r.AvgWait.Round(time.Millisecond))
}
