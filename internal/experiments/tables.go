package experiments

import (
	"fmt"
	"io"

	"hoyan/internal/core"
	"hoyan/internal/diagnosis"
	"hoyan/internal/gen"
	"hoyan/internal/monitor"
	"hoyan/internal/pipeline"
	"hoyan/internal/scenario"
	"hoyan/internal/vsb"
)

// ---------------------------------------------------------------- Table 2

// Table2Row is one change-type coverage row.
type Table2Row struct {
	Type         string
	NeedsRouteIn bool
	Intents      int
	Verified     bool
}

// Table2 drives one correct change per Table 2 change type end-to-end.
func Table2() []Table2Row {
	var rows []Table2Row
	for _, sc := range scenario.Table2Catalog() {
		sys := pipeline.New(sc.Net, sc.Inputs, sc.Flows, core.Options{})
		out, err := sys.Verify(sc.Plan, sc.Intents)
		rows = append(rows, Table2Row{
			Type:         string(sc.Type),
			NeedsRouteIn: sc.Type.NeedsRouteIntent(),
			Intents:      len(sc.Intents),
			Verified:     err == nil && out.OK,
		})
	}
	return rows
}

// PrintTable2 renders the coverage table.
func PrintTable2(w io.Writer, rows []Table2Row) {
	fmt.Fprintln(w, "Table 2: the 12 change types, each verified end-to-end")
	fmt.Fprintf(w, "%-22s %12s %8s %9s\n", "change type", "route-intent", "intents", "verified")
	for _, r := range rows {
		star := ""
		if r.NeedsRouteIn {
			star = "*"
		}
		fmt.Fprintf(w, "%-22s %12s %8d %9v\n", r.Type, star, r.Intents, r.Verified)
	}
}

// PrintTable3 renders the qualitative capability matrix, asserted by the
// integration suite.
func PrintTable3(w io.Writer) {
	fmt.Fprintln(w, "Table 3: Hoyan's key evolution")
	fmt.Fprintf(w, "%-18s %-28s %-40s\n", "", "Original", "New (this repo)")
	fmt.Fprintf(w, "%-18s %-28s %-40s\n", "Simulation", "single server; parallel",
		"distributed (internal/dsim, mq/objstore/taskdb)")
	fmt.Fprintf(w, "%-18s %-28s %-40s\n", "Intents", "reachability",
		"+route (RCL) / path / traffic load intents")
	fmt.Fprintf(w, "%-18s %-28s %-40s\n", "Accuracy support", "BGP, IS-IS",
		"+SR, PBR (internal/diagnosis campaigns)")
}

// ---------------------------------------------------------------- Table 4

// Table4Row is one issue-class row.
type Table4Row struct {
	Class    string
	Share    float64
	Injected int
	Detected int
}

// Table4 runs the issue-injection campaign and tallies detection per class.
func Table4(s Scale) []Table4Row {
	g := genWAN(s)
	probe := diagnosis.BuildProbe()
	issues := diagnosis.Table4Issues()
	type agg struct{ injected, detected int }
	byClass := map[diagnosis.IssueClass]*agg{}
	for _, is := range issues {
		a := byClass[is.Class]
		if a == nil {
			a = &agg{}
			byClass[is.Class] = a
		}
		a.injected++
		f := &diagnosis.Framework{
			Net: g.Net, Inputs: g.Inputs, Flows: g.Flows,
			HighPriorityPrefixes: []string{"10.0.0.0/24", "20.0.0.0/24"},
			LoadTolerance:        0.002,
			RouteMon:             &monitor.RouteMonitor{},
			TrafficMon:           &monitor.TrafficMonitor{},
		}
		if is.UseProbe {
			f.Net, f.Inputs, f.Flows = probe.Net, probe.Inputs, probe.Flows
			f.HighPriorityPrefixes = nil
		}
		is.Apply(f)
		if !f.Run().Accurate {
			a.detected++
		}
	}
	shares := diagnosis.ClassShares(issues)
	var rows []Table4Row
	for _, c := range diagnosis.OrderedClasses() {
		a := byClass[c]
		if a == nil {
			continue
		}
		rows = append(rows, Table4Row{Class: string(c), Share: shares[c], Injected: a.injected, Detected: a.detected})
	}
	return rows
}

// PrintTable4 renders the issue-class table.
func PrintTable4(w io.Writer, rows []Table4Row) {
	fmt.Fprintln(w, "Table 4: injected accuracy issues by class (share mirrors the paper)")
	fmt.Fprintf(w, "%-32s %7s %9s %9s\n", "issue class", "share", "injected", "detected")
	for _, r := range rows {
		fmt.Fprintf(w, "%-32s %6.1f%% %9d %9d\n", r.Class, r.Share, r.Injected, r.Detected)
	}
}

// ---------------------------------------------------------------- Table 5

// Table5Row is one VSB row.
type Table5Row struct {
	VSB         string
	Description string
	Detected    bool
	RouteDiffs  int
	LoadDiffs   int
}

// Table5 runs the VSB differential-testing campaign over the probe network.
func Table5() []Table5Row {
	var rows []Table5Row
	for _, r := range diagnosis.VSBCampaign(diagnosis.BuildProbe()) {
		rows = append(rows, Table5Row{
			VSB:         string(r.Mutation),
			Description: r.Mutation.Description(),
			Detected:    r.Detected,
			RouteDiffs:  r.RouteDiffs,
			LoadDiffs:   r.LoadDiffs,
		})
	}
	return rows
}

// PrintTable5 renders the VSB table.
func PrintTable5(w io.Writer, rows []Table5Row) {
	fmt.Fprintln(w, "Table 5: vendor-specific behaviours, detected via differential testing")
	fmt.Fprintf(w, "%-28s %9s %6s %6s\n", "VSB", "detected", "routes", "loads")
	for _, r := range rows {
		fmt.Fprintf(w, "%-28s %9v %6d %6d\n", r.VSB, r.Detected, r.RouteDiffs, r.LoadDiffs)
	}
}

// ---------------------------------------------------------------- Table 6

// Table6Row is one root-cause row.
type Table6Row struct {
	Cause    string
	Share    float64
	Detected int
	Total    int
}

// Table6 runs the risky-change campaign and tallies detection per root
// cause.
func Table6() []Table6Row {
	cat := scenario.Table6Catalog()
	type agg struct{ detected, total int }
	byCause := map[scenario.RootCause]*agg{}
	order := []scenario.RootCause{
		scenario.CauseIncorrectCommands, scenario.CauseDesignFlaw,
		scenario.CauseExistingMisconfig, scenario.CauseTopologyIssue, scenario.CauseOther,
	}
	for _, rs := range cat {
		a := byCause[rs.Cause]
		if a == nil {
			a = &agg{}
			byCause[rs.Cause] = a
		}
		a.total++
		sys := pipeline.New(rs.Net, rs.Inputs, rs.Flows, core.Options{})
		out, err := sys.Verify(rs.Plan, rs.Intents)
		if rs.WantApplyError {
			if err != nil {
				a.detected++
			}
			continue
		}
		if err == nil && !out.OK {
			a.detected++
		}
	}
	var rows []Table6Row
	for _, c := range order {
		a := byCause[c]
		if a == nil {
			continue
		}
		rows = append(rows, Table6Row{
			Cause: string(c), Share: 100 * float64(a.total) / float64(len(cat)),
			Detected: a.detected, Total: a.total,
		})
	}
	return rows
}

// PrintTable6 renders the root-cause table.
func PrintTable6(w io.Writer, rows []Table6Row) {
	fmt.Fprintln(w, "Table 6: change risks detected by root cause")
	fmt.Fprintf(w, "%-28s %7s %9s\n", "root cause", "share", "detected")
	for _, r := range rows {
		fmt.Fprintf(w, "%-28s %6.1f%% %5d/%-3d\n", r.Cause, r.Share, r.Detected, r.Total)
	}
}

// ---------------------------------------------------------------- Figure 9

// Fig9 reruns the SR IGP-cost root-cause case study and returns the
// analysis summary text.
func Fig9() (string, error) {
	p := diagnosis.BuildProbe()
	flawed := vsb.Defaults()
	flawed["alpha"] = vsb.MutSRIGPCost.Apply(flawed["alpha"])
	f := &diagnosis.Framework{
		Net: p.Net, Inputs: p.Inputs, Flows: p.Flows,
		ModelOpts:     core.Options{Profiles: flawed},
		LoadTolerance: 0.01,
	}
	rep := f.Run()
	if len(rep.LoadDiffs) == 0 {
		return "", fmt.Errorf("fig9: no load diffs found")
	}
	analysis, err := rep.AnalyzeLink(rep.LoadDiffs[0].Link)
	if err != nil {
		return "", err
	}
	return "Figure 9 case study (SR IGP-cost VSB):\n" + analysis.Summary(), nil
}

func genWAN(s Scale) *gen.Output { return gen.Generate(gen.WAN(s.WANK)) }
