// Package experiments regenerates every table and figure of the paper's
// evaluation at laptop scale (see DESIGN.md's per-experiment index and
// EXPERIMENTS.md for paper-vs-measured notes). cmd/hoyan-exp prints them;
// bench_test.go wraps the hot paths as testing.B benchmarks.
package experiments

import (
	"fmt"
	"io"
	"time"

	"hoyan/internal/core"
	"hoyan/internal/dsim"
	"hoyan/internal/gen"
	"hoyan/internal/netmodel"
	"hoyan/internal/objstore"
	"hoyan/internal/rcl"
	"hoyan/internal/taskdb"
	"slices"
)

// Scale is the experiment scale knob: 1 = quick (CI-sized), larger values
// approach the paper's relative scales.
type Scale struct {
	WANK            int // gen.WAN profile multiplier
	DCNK            int
	Workers         []int // worker counts for the Figure 5 sweeps
	RouteSubtasks   int
	TrafficSubtasks int
}

// DefaultScale is sized to finish the full suite in a few minutes.
func DefaultScale() Scale {
	return Scale{
		WANK: 4, DCNK: 3,
		Workers:         []int{1, 2, 4, 6, 8, 10},
		RouteSubtasks:   40,
		TrafficSubtasks: 32,
	}
}

// QuickScale is sized for tests.
func QuickScale() Scale {
	return Scale{
		WANK: 1, DCNK: 1,
		Workers:         []int{1, 2, 4},
		RouteSubtasks:   8,
		TrafficSubtasks: 8,
	}
}

// ---------------------------------------------------------------- Table 1

// Table1Row is one scale-requirement row.
type Table1Row struct {
	Year     string
	Routers  int
	Prefixes int
	Flows    int
	RunTime  time.Duration // measured centralized route-simulation time
}

// Table1 reproduces the scale-growth table with the two scaled profiles.
func Table1() []Table1Row {
	mk := func(year string, p gen.Profile) Table1Row {
		out := gen.Generate(p)
		start := time.Now()
		core.NewEngine(out.Net, core.Options{}).RouteSimulation(out.Inputs)
		return Table1Row{
			Year: year, Routers: len(out.Net.Devices),
			Prefixes: len(out.Prefixes), Flows: len(out.Flows),
			RunTime: time.Since(start),
		}
	}
	return []Table1Row{mk("2017 (scaled)", gen.Scale2017()), mk("2024 (scaled)", gen.Scale2024())}
}

// PrintTable1 renders Table 1.
func PrintTable1(w io.Writer, rows []Table1Row) {
	fmt.Fprintln(w, "Table 1: scale requirements (scaled-down profiles)")
	fmt.Fprintf(w, "%-14s %9s %9s %8s %12s\n", "", "#Routers", "#Prefixes", "#Flows", "RouteSimTime")
	for _, r := range rows {
		fmt.Fprintf(w, "%-14s %9d %9d %8d %12s\n", r.Year, r.Routers, r.Prefixes, r.Flows, r.RunTime.Round(time.Millisecond))
	}
}

// ---------------------------------------------------------------- Figure 1

// Fig1Point is one centralized-simulation measurement.
type Fig1Point struct {
	Profile    string
	PrefixFrac int // percent of prefixes simulated
	Inputs     int
	Elapsed    time.Duration
	OOM        bool // emulated memory exhaustion (WAN+DCN beyond its budget)
}

// Fig1 reproduces the centralized-scaling figure: simulation time of the
// single-server engine as the prefix fraction grows, on WAN and WAN+DCN.
// The WAN+DCN memory failure is emulated with an input-budget cap, standing
// in for the paper's out-of-memory at 30% of prefixes.
func Fig1(s Scale) []Fig1Point {
	var out []Fig1Point
	fracs := []int{25, 50, 75, 100}
	for _, prof := range []struct {
		name   string
		p      gen.Profile
		budget int // max inputs before emulated OOM; 0 = unlimited
	}{
		{"WAN", gen.WAN(s.WANK), 0},
		{"WAN+DCN", gen.WANDCN(s.DCNK), 0},
	} {
		g := gen.Generate(prof.p)
		budget := prof.budget
		if prof.name == "WAN+DCN" {
			// The paper's centralized engine completed only 30% of prefixes
			// on WAN+DCN before exhausting 791 GB; emulate the same cliff.
			budget = len(g.Inputs) * 30 / 100
		}
		// Warm-up run so the first timed point is not inflated by cold
		// caches and allocator growth.
		core.NewEngine(g.Net, core.Options{}).RouteSimulation(g.Inputs[:len(g.Inputs)/4])
		for _, frac := range fracs {
			n := len(g.Inputs) * frac / 100
			pt := Fig1Point{Profile: prof.name, PrefixFrac: frac, Inputs: n}
			if budget > 0 && n > budget {
				pt.OOM = true
				out = append(out, pt)
				continue
			}
			start := time.Now()
			core.NewEngine(g.Net, core.Options{}).RouteSimulation(g.Inputs[:n])
			pt.Elapsed = time.Since(start)
			out = append(out, pt)
		}
	}
	return out
}

// PrintFig1 renders Figure 1 as a series table.
func PrintFig1(w io.Writer, pts []Fig1Point) {
	fmt.Fprintln(w, "Figure 1: centralized simulation time vs prefix fraction")
	fmt.Fprintf(w, "%-9s %6s %8s %12s\n", "profile", "frac%", "#inputs", "time")
	for _, p := range pts {
		if p.OOM {
			fmt.Fprintf(w, "%-9s %6d %8d %12s\n", p.Profile, p.PrefixFrac, p.Inputs, "OOM(emul.)")
			continue
		}
		fmt.Fprintf(w, "%-9s %6d %8d %12s\n", p.Profile, p.PrefixFrac, p.Inputs, p.Elapsed.Round(time.Millisecond))
	}
}

// ---------------------------------------------------------------- Figure 5

// Fig5Point is one distributed-simulation measurement.
type Fig5Point struct {
	Profile  string
	Workers  int
	Elapsed  time.Duration
	Strategy dsim.Strategy // traffic runs only
}

// Fig5aResult bundles the route-simulation sweep with the per-subtask
// durations of the WAN run (for Figure 5(c)).
type Fig5aResult struct {
	Points    []Fig5Point
	Durations []time.Duration // per-subtask, from the WAN run
	// CentralizedWAN is the single-engine reference time.
	CentralizedWAN time.Duration
	// OneWorkerWall is the measured wall time of the full single-worker
	// distributed WAN run (framework overhead included).
	OneWorkerWall time.Duration
}

// Fig5a measures distributed route simulation on WAN and WAN+DCN.
//
// Every subtask is executed for real through the framework (queue, object
// store, task DB) on one worker; the multi-worker times are then the
// makespans of the measured per-subtask durations under the framework's
// FIFO queue discipline. On a multi-core host this model matches wall-clock
// behaviour; on the single-core evaluation host it is the only faithful way
// to show the Figure 5 shape (see EXPERIMENTS.md), and it reproduces the
// paper's diminishing-returns cause directly: subtask-duration skew.
func Fig5a(s Scale) *Fig5aResult {
	res := &Fig5aResult{}
	for _, prof := range []struct {
		name string
		p    gen.Profile
	}{{"WAN", gen.WAN(s.WANK)}, {"WAN+DCN", gen.WANDCN(s.DCNK)}} {
		g := gen.Generate(prof.p)
		if prof.name == "WAN" {
			start := time.Now()
			core.NewEngine(g.Net, core.Options{}).RouteSimulation(g.Inputs)
			res.CentralizedWAN = time.Since(start)
		}
		cluster := dsim.StartLocal(1)
		taskID := "fig5a-" + prof.name
		snapKey, err := cluster.Master.UploadSnapshot(taskID, g.Net)
		if err != nil {
			panic(err)
		}
		start := time.Now()
		task, err := cluster.Master.StartRouteSimulation(taskID, snapKey, g.Inputs, s.RouteSubtasks, core.Options{})
		if err != nil {
			panic(err)
		}
		if err := cluster.Master.Wait(taskID, "route", task.Subtasks); err != nil {
			panic(err)
		}
		wall := time.Since(start)
		durs, _ := cluster.Master.SubtaskDurations(taskID, "route")
		cluster.Stop()
		if prof.name == "WAN" {
			res.Durations = durs
			res.OneWorkerWall = wall
		}
		for _, workers := range s.Workers {
			res.Points = append(res.Points, Fig5Point{
				Profile: prof.name, Workers: workers, Elapsed: Makespan(durs, workers),
			})
		}
	}
	return res
}

// Makespan computes the completion time of the measured subtask durations on
// n workers pulling from a FIFO queue (the framework's MQ discipline).
func Makespan(durations []time.Duration, n int) time.Duration {
	if n < 1 {
		n = 1
	}
	free := make([]time.Duration, n)
	for _, d := range durations {
		// The next task goes to the earliest-free worker.
		minIdx := 0
		for i := 1; i < n; i++ {
			if free[i] < free[minIdx] {
				minIdx = i
			}
		}
		free[minIdx] += d
	}
	var max time.Duration
	for _, f := range free {
		if f > max {
			max = f
		}
	}
	return max
}

// PrintFig5a renders Figure 5(a).
func PrintFig5a(w io.Writer, r *Fig5aResult) {
	fmt.Fprintln(w, "Figure 5(a): distributed route simulation time vs #workers")
	fmt.Fprintf(w, "centralized WAN reference: %s\n", r.CentralizedWAN.Round(time.Millisecond))
	fmt.Fprintf(w, "%-9s %8s %12s\n", "profile", "workers", "time")
	for _, p := range r.Points {
		fmt.Fprintf(w, "%-9s %8d %12s\n", p.Profile, p.Workers, p.Elapsed.Round(time.Millisecond))
	}
}

// StrategyIO is the measured object-store and worker-cache I/O of one
// strategy's traffic run (the Figure 5(d) bytes-moved evaluation).
type StrategyIO struct {
	// BytesMoved is the object-store read volume of the whole traffic run
	// (inputs + RIB files actually fetched).
	BytesMoved int64
	// CacheHits / CacheMisses count route-RIB files served from the
	// workers' LRU caches versus fetched from the store.
	CacheHits   int64
	CacheMisses int64
	// BytesSaved is the encoded RIB volume the caches kept off the wire.
	BytesSaved int64
}

// Fig5bResult bundles the traffic sweep with the loaded-RIB-file counts and
// measured I/O (for Figure 5(d)).
type Fig5bResult struct {
	Points []Fig5Point
	// LoadedFiles maps strategy -> per-subtask loaded-file counts of the
	// max-worker run.
	LoadedFiles map[dsim.Strategy][]int
	// IO maps strategy -> measured store/cache I/O of its traffic run.
	IO map[dsim.Strategy]StrategyIO
	// RouteSubtasks is the total RIB file count (the 100% mark of Fig 5(d)).
	RouteSubtasks int
}

// Fig5b measures distributed traffic simulation under the ordering
// heuristic, the baseline (load-everything) strategy, and the random split,
// collecting per-subtask durations (makespan-modelled across worker counts,
// as in Fig5a) and the Figure 5(d) loaded-file distributions.
//
// The route results are computed once on their own cluster; each strategy
// then runs on a fresh single-worker cluster over the same object store, so
// the store's read-volume delta and the workers' cache counters are clean
// per-strategy measurements.
func Fig5b(s Scale) *Fig5bResult {
	g := gen.Generate(gen.WAN(s.WANK))
	res := &Fig5bResult{
		LoadedFiles:   map[dsim.Strategy][]int{},
		IO:            map[dsim.Strategy]StrategyIO{},
		RouteSubtasks: s.RouteSubtasks,
	}

	// Shared route simulation results (computed once).
	store, tasks := objstore.NewMemory(), taskdb.NewMemory()
	cluster := dsim.StartLocalWithStore(1, store, tasks)
	snapKey, err := cluster.Master.UploadSnapshot("fig5b-routes", g.Net)
	if err != nil {
		panic(err)
	}
	routeTask, err := cluster.Master.StartRouteSimulation("fig5b-routes", snapKey, g.Inputs, s.RouteSubtasks, core.Options{})
	if err != nil {
		panic(err)
	}
	if err := cluster.Master.Wait("fig5b-routes", "route", routeTask.Subtasks); err != nil {
		panic(err)
	}
	cluster.Stop()

	for _, strategy := range []dsim.Strategy{dsim.StrategyOrdered, dsim.StrategyBaseline, dsim.StrategyRandom} {
		readsBefore := store.Stats().BytesOut
		c := dsim.StartLocalWithStore(1, store, tasks)
		taskID := "fig5b-" + string(strategy)
		tt, err := c.Master.StartTrafficSimulation(taskID, routeTask, g.Flows, s.TrafficSubtasks, strategy, core.Options{})
		if err != nil {
			panic(err)
		}
		if err := c.Master.Wait(taskID, "traffic", tt.Subtasks); err != nil {
			panic(err)
		}
		if sum, err := c.Master.CollectTrafficResults(tt); err == nil {
			res.LoadedFiles[strategy] = sum.LoadedRIBFiles
		}
		durs, _ := c.Master.SubtaskDurations(taskID, "traffic")
		cacheStats := c.CacheStats()
		c.Stop()
		res.IO[strategy] = StrategyIO{
			BytesMoved:  store.Stats().BytesOut - readsBefore,
			CacheHits:   cacheStats.RIBFileHits,
			CacheMisses: cacheStats.RIBFileMisses,
			BytesSaved:  cacheStats.BytesSaved,
		}
		if strategy == dsim.StrategyRandom {
			continue // random is measured for Fig 5(d) only
		}
		for _, workers := range s.Workers {
			res.Points = append(res.Points, Fig5Point{
				Profile: "WAN", Workers: workers, Strategy: strategy,
				Elapsed: Makespan(durs, workers),
			})
		}
	}
	return res
}

// PrintFig5b renders Figure 5(b).
func PrintFig5b(w io.Writer, r *Fig5bResult) {
	fmt.Fprintln(w, "Figure 5(b): distributed traffic simulation time vs #workers")
	fmt.Fprintf(w, "%-9s %8s %10s %12s\n", "profile", "workers", "strategy", "time")
	for _, p := range r.Points {
		fmt.Fprintf(w, "%-9s %8d %10s %12s\n", p.Profile, p.Workers, p.Strategy, p.Elapsed.Round(time.Millisecond))
	}
}

// CDF returns (value, cumulative fraction) pairs for a duration sample.
func CDF(durations []time.Duration) []struct {
	Value time.Duration
	Frac  float64
} {
	ds := append([]time.Duration(nil), durations...)
	slices.Sort(ds)
	out := make([]struct {
		Value time.Duration
		Frac  float64
	}, len(ds))
	for i, d := range ds {
		out[i] = struct {
			Value time.Duration
			Frac  float64
		}{d, float64(i+1) / float64(len(ds))}
	}
	return out
}

// PrintFig5c renders the subtask-duration CDF.
func PrintFig5c(w io.Writer, durations []time.Duration) {
	fmt.Fprintln(w, "Figure 5(c): CDF of route subtask run time")
	if len(durations) == 0 {
		fmt.Fprintln(w, "  (no data)")
		return
	}
	cdf := CDF(durations)
	for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 1.0} {
		idx := int(q*float64(len(cdf))) - 1
		if idx < 0 {
			idx = 0
		}
		fmt.Fprintf(w, "  p%-3.0f %12s\n", q*100, cdf[idx].Value.Round(time.Millisecond))
	}
	min, max := cdf[0].Value, cdf[len(cdf)-1].Value
	skew := float64(0)
	if min > 0 {
		skew = float64(max) / float64(min)
	}
	fmt.Fprintf(w, "  shortest %s, longest %s (skew %.1fx): uneven subtask cost\n",
		min.Round(time.Millisecond), max.Round(time.Millisecond), skew)
}

// PrintFig5d renders the loaded-RIB-file CDF per strategy together with the
// measured object-store read volume and worker cache-hit rate of each run.
func PrintFig5d(w io.Writer, r *Fig5bResult) {
	fmt.Fprintln(w, "Figure 5(d): loaded RIB files per traffic subtask (of", r.RouteSubtasks, "total)")
	for _, strategy := range []dsim.Strategy{dsim.StrategyOrdered, dsim.StrategyRandom, dsim.StrategyBaseline} {
		counts := r.LoadedFiles[strategy]
		if len(counts) == 0 {
			continue
		}
		cs := append([]int(nil), counts...)
		slices.Sort(cs)
		total := 0
		for _, c := range cs {
			total += c
		}
		fmt.Fprintf(w, "  %-9s median %d, max %d, mean %.1f files",
			strategy, cs[len(cs)/2], cs[len(cs)-1], float64(total)/float64(len(cs)))
		if io, ok := r.IO[strategy]; ok {
			fmt.Fprintf(w, "; %s moved, RIB cache %s (%s saved)",
				fmtBytes(io.BytesMoved), fmtHitRate(io.CacheHits, io.CacheMisses), fmtBytes(io.BytesSaved))
		}
		fmt.Fprintln(w)
	}
}

// fmtBytes renders a byte count with a binary unit.
func fmtBytes(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(n)/float64(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(n)/float64(1<<10))
	}
	return fmt.Sprintf("%d B", n)
}

// fmtHitRate renders a hit/total ratio.
func fmtHitRate(hits, misses int64) string {
	total := hits + misses
	if total == 0 {
		return "0/0 hits"
	}
	return fmt.Sprintf("%d/%d hits (%.0f%%)", hits, total, 100*float64(hits)/float64(total))
}

// ---------------------------------------------------------------- Figure 8

// Fig8Result holds the RCL corpus measurements.
type Fig8Result struct {
	Sizes []int
	Times []time.Duration
}

// Fig8 measures specification sizes and verification times of the 50-spec
// corpus against a generated WAN's base and updated global RIBs.
func Fig8(s Scale) *Fig8Result {
	g := gen.Generate(gen.WAN(s.WANK))
	eng := core.NewEngine(g.Net, core.Options{})
	base := eng.RouteSimulation(g.Inputs).GlobalRIB()
	// The "updated" RIB: drop one input to create a small delta.
	updated := core.NewEngine(g.Net, core.Options{}).RouteSimulation(g.Inputs[1:]).GlobalRIB()

	devices := []string{"rr-0-0", "border-0-0", "dc-0-1", "rr-1-0"}
	prefixes := []string{"10.0.0.0/24", "10.1.0.0/24", "20.0.0.0/24"}
	comms := []string{"65000:0", "65000:1", "65000:999"}
	nhs := []string{g.Net.Devices["border-0-0"].Loopback.String(), g.Net.Devices["dc-0-0"].Loopback.String()}

	res := &Fig8Result{}
	for _, spec := range rcl.Corpus(devices, prefixes, comms, nhs) {
		g, err := rcl.Parse(spec)
		if err != nil {
			panic(fmt.Sprintf("corpus spec %q: %v", spec, err))
		}
		res.Sizes = append(res.Sizes, g.Size())
		start := time.Now()
		if _, err := rcl.Check(g, base, updated); err != nil {
			panic(err)
		}
		res.Times = append(res.Times, time.Since(start))
	}
	return res
}

// PrintFig8 renders both Figure 8 CDFs.
func PrintFig8(w io.Writer, r *Fig8Result) {
	sizes := append([]int(nil), r.Sizes...)
	slices.Sort(sizes)
	fmt.Fprintln(w, "Figure 8 (left): CDF of RCL specification sizes (internal nodes)")
	under15 := 0
	for _, s := range sizes {
		if s < 15 {
			under15++
		}
	}
	fmt.Fprintf(w, "  p50=%d p90=%d max=%d; %.0f%% below 15\n",
		sizes[len(sizes)/2], sizes[len(sizes)*9/10], sizes[len(sizes)-1],
		100*float64(under15)/float64(len(sizes)))

	fmt.Fprintln(w, "Figure 8 (right): CDF of verification time")
	cdf := CDF(r.Times)
	for _, q := range []float64{0.5, 0.8, 0.9, 1.0} {
		idx := int(q*float64(len(cdf))) - 1
		if idx < 0 {
			idx = 0
		}
		fmt.Fprintf(w, "  p%-3.0f %12s\n", q*100, cdf[idx].Value)
	}
}

// ---------------------------------------------------------------- EC stats

// ECStats reports the §3.1 equivalence-class reduction factors.
type ECStatsResult struct {
	RouteInputs, RouteClasses int
	FlowInputs, FlowClasses   int
}

// ECStats measures the EC reductions on a generated WAN with a
// traffic-heavy profile: the flow-EC payoff scales with the flow count per
// (ingress, destination-atom) pair, which the paper's 10^9-flow workload
// saturates.
func ECStats(s Scale) *ECStatsResult {
	p := gen.WAN(s.WANK)
	p.Flows = 40000 * s.WANK
	g := gen.Generate(p)
	eng := core.NewEngine(g.Net, core.Options{})
	routeRes := eng.RouteSimulation(g.Inputs)
	trafficRes := eng.TrafficSimulation(routeRes, routeRes.GlobalRIB().Rows(), g.Flows)
	out := &ECStatsResult{
		RouteInputs: len(g.Inputs), FlowInputs: len(g.Flows),
	}
	if routeRes.ECStats != nil {
		out.RouteClasses = len(routeRes.ECStats.Classes)
	}
	if trafficRes.ECStats != nil {
		out.FlowClasses = len(trafficRes.ECStats.Classes)
	}
	return out
}

// PrintECStats renders the EC reduction factors.
func PrintECStats(w io.Writer, r *ECStatsResult) {
	fmt.Fprintln(w, "Equivalence-class reductions (§3.1)")
	fmt.Fprintf(w, "  routes: %d inputs -> %d classes (%.1fx)\n",
		r.RouteInputs, r.RouteClasses, ratio(r.RouteInputs, r.RouteClasses))
	fmt.Fprintf(w, "  flows:  %d inputs -> %d classes (%.1fx)\n",
		r.FlowInputs, r.FlowClasses, ratio(r.FlowInputs, r.FlowClasses))
}

func ratio(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

func maxInt(xs []int) int {
	m := xs[0]
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

var _ = netmodel.DefaultVRF
