package config

import (
	"fmt"
	"net/netip"
	"strings"

	"hoyan/internal/netmodel"
	"hoyan/internal/policy"
)

// betaParser parses the vendor-beta dialect (VRP-flavoured): sections end at
// "#" or the next top-level command; removal uses a leading "undo ".
//
// The dialect distinguishes "ip ip-prefix" (IPv4) from "ip ipv6-prefix"
// (IPv6) filter declarations — the distinction behind the Figure 10(b)
// incident.
type betaParser struct {
	d *Device

	curIface *Interface
	curVRF   *VRF
	inBGP    bool
	curNode  *policy.Node
}

func (p *betaParser) resetSection() {
	p.curIface, p.curVRF, p.curNode = nil, nil, nil
	p.inBGP = false
}

// ParseBeta parses a full vendor-beta configuration text.
func ParseBeta(name, text string) (*Device, error) {
	d := NewDevice(name, "beta")
	p := &betaParser{d: d}
	lines := splitLines(text)
	d.Lines = len(lines)
	for _, l := range lines {
		if err := p.line(l.n, l.text); err != nil {
			return nil, err
		}
	}
	for _, rm := range d.RouteMaps {
		rm.SortNodes()
	}
	return d, nil
}

func (p *betaParser) line(lineNo int, s string) error {
	f := strings.Fields(s)
	if len(f) == 0 {
		return nil
	}
	if f[0] == "#" {
		p.resetSection()
		return nil
	}
	if f[0] == "undo" {
		return p.undoCommand(lineNo, s, f[1:])
	}
	d := p.d
	fail := func(reason string) error { return parseErr(d.Name, lineNo, s, reason) }

	switch f[0] {
	case "sysname":
		if len(f) != 2 {
			return fail("sysname NAME")
		}
		d.Name = f[1]
		p.resetSection()
		return nil
	case "vendor":
		p.resetSection()
		return nil
	case "as-number":
		n, err := parseUint32(f[1])
		if err != nil {
			return fail("bad as-number")
		}
		d.ASN = netmodel.ASN(n)
		p.resetSection()
		return nil
	case "router-id":
		a, err := netip.ParseAddr(f[1])
		if err != nil {
			return fail("bad router-id")
		}
		d.RouterID = a
		p.resetSection()
		return nil
	case "loopback":
		a, err := netip.ParseAddr(f[1])
		if err != nil {
			return fail("bad loopback")
		}
		d.Loopback = a
		p.resetSection()
		return nil
	case "isis":
		if p.curIface != nil {
			return p.ifaceLine(lineNo, s, f)
		}
		if len(f) == 2 && f[1] == "enable" {
			d.ISISEnabled = true
			p.resetSection()
			return nil
		}
		return fail("isis enable")
	case "isolate":
		d.Isolated = true
		p.resetSection()
		return nil
	case "interface":
		if len(f) != 2 {
			return fail("interface NAME")
		}
		p.resetSection()
		i, ok := d.Interfaces[f[1]]
		if !ok {
			i = &Interface{Name: f[1]}
			d.Interfaces[f[1]] = i
		}
		p.curIface = i
		return nil
	case "bgp":
		p.resetSection()
		p.inBGP = true
		return nil
	case "route-policy":
		// route-policy NAME permit|deny node N
		p.resetSection()
		if len(f) != 5 || f[3] != "node" {
			return fail("route-policy NAME permit|deny node N")
		}
		permit, ok := permitDeny(f[2])
		if !ok {
			return fail("want permit|deny")
		}
		seq, err := parseInt(f[4])
		if err != nil {
			return fail("bad node number")
		}
		rm, ok := d.RouteMaps[f[1]]
		if !ok {
			rm = &policy.RouteMap{Name: f[1]}
			d.RouteMaps[f[1]] = rm
		}
		node := rm.Node(seq)
		if node == nil {
			node = &policy.Node{Seq: seq}
			rm.Nodes = append(rm.Nodes, node)
			rm.SortNodes()
		}
		if permit {
			node.Action = policy.ActionPermit
		} else {
			node.Action = policy.ActionDeny
		}
		p.curNode = node
		return nil
	case "if-match":
		return p.ifMatchLine(lineNo, s, f)
	case "apply":
		return p.applyLine(lineNo, s, f)
	case "ip":
		return p.ipLine(lineNo, s, f)
	case "acl":
		p.resetSection()
		return p.aclLine(lineNo, s, f)
	case "sr-policy":
		p.resetSection()
		return p.srPolicyLine(lineNo, s, f)
	case "policy-based-route":
		p.resetSection()
		return p.pbrLine(lineNo, s, f)
	case "maximum", "peer", "aggregate", "import-route", "network":
		if !p.inBGP {
			return fail(f[0] + " outside bgp")
		}
		return p.bgpLine(lineNo, s, f)
	}
	if p.curIface != nil {
		return p.ifaceLine(lineNo, s, f)
	}
	if p.curVRF != nil {
		return p.vrfLine(lineNo, s, f)
	}
	return fail("unknown command")
}

func (p *betaParser) ifaceLine(lineNo int, s string, f []string) error {
	d, i := p.d, p.curIface
	fail := func(reason string) error { return parseErr(d.Name, lineNo, s, reason) }
	switch {
	case f[0] == "ip" && len(f) == 3 && f[1] == "address":
		pr, err := netip.ParsePrefix(f[2])
		if err != nil {
			return fail("bad address")
		}
		i.Addr = pr
	case f[0] == "isis" && len(f) == 3 && f[1] == "cost":
		c, err := parseUint32(f[2])
		if err != nil {
			return fail("bad cost")
		}
		i.ISISCost = c
	case f[0] == "isis" && len(f) == 3 && f[1] == "te-cost":
		c, err := parseUint32(f[2])
		if err != nil {
			return fail("bad te-cost")
		}
		i.TECost = c
	case f[0] == "bandwidth" && len(f) == 2:
		var bw float64
		if _, err := fmt.Sscanf(f[1], "%g", &bw); err != nil {
			return fail("bad bandwidth")
		}
		i.Bandwidth = bw
	case f[0] == "traffic-filter" && len(f) == 4 && f[2] == "acl":
		switch f[1] {
		case "inbound":
			i.ACLIn = f[3]
		case "outbound":
			i.ACLOut = f[3]
		default:
			return fail("want inbound|outbound")
		}
	case f[0] == "pbr" && len(f) == 2:
		i.PBR = f[1]
	default:
		return fail("unknown interface command")
	}
	return nil
}

func (p *betaParser) vrfLine(lineNo int, s string, f []string) error {
	d, v := p.d, p.curVRF
	fail := func(reason string) error { return parseErr(d.Name, lineNo, s, reason) }
	switch {
	case f[0] == "rd" && len(f) == 2:
		v.RD = f[1]
	case f[0] == "vpn-target" && len(f) == 3:
		switch f[2] {
		case "import":
			v.ImportRTs = append(v.ImportRTs, f[1])
		case "export":
			v.ExportRTs = append(v.ExportRTs, f[1])
		default:
			return fail("want import|export")
		}
	case f[0] == "export" && len(f) == 3 && f[1] == "route-policy":
		v.ExportPolicy = f[2]
	default:
		return fail("unknown vpn-instance command")
	}
	return nil
}

func (p *betaParser) bgpLine(lineNo int, s string, f []string) error {
	d := p.d
	fail := func(reason string) error { return parseErr(d.Name, lineNo, s, reason) }
	switch f[0] {
	case "maximum":
		// maximum load-balancing N
		if len(f) != 3 || f[1] != "load-balancing" {
			return fail("maximum load-balancing N")
		}
		n, err := parseInt(f[2])
		if err != nil {
			return fail("bad count")
		}
		d.MaxPaths = n
	case "network":
		pr, err := netip.ParsePrefix(f[1])
		if err != nil {
			return fail("bad prefix")
		}
		d.Networks = append(d.Networks, pr)
	case "peer":
		return p.peerLine(lineNo, s, f)
	case "aggregate":
		// aggregate PREFIX [as-set] [summary-only] [vpn-instance NAME]
		if len(f) < 2 {
			return fail("aggregate PREFIX")
		}
		pr, err := netip.ParsePrefix(f[1])
		if err != nil {
			return fail("bad prefix")
		}
		agg := Aggregate{VRF: netmodel.DefaultVRF, Prefix: pr}
		rest := f[2:]
		for i := 0; i < len(rest); i++ {
			switch rest[i] {
			case "as-set":
				agg.ASSet = true
			case "summary-only":
				agg.SummaryOnly = true
			case "vpn-instance":
				if i+1 >= len(rest) {
					return fail("vpn-instance NAME")
				}
				agg.VRF = rest[i+1]
				i++
			default:
				return fail("unknown aggregate token")
			}
		}
		d.Aggregates = append(d.Aggregates, agg)
	case "import-route":
		if len(f) < 2 {
			return fail("import-route PROTO")
		}
		proto, err := protoFromString(f[1])
		if err != nil {
			return fail(err.Error())
		}
		r := Redistribution{From: proto}
		if len(f) == 4 && f[2] == "route-policy" {
			r.Policy = f[3]
		} else if len(f) != 2 {
			return fail("import-route PROTO [route-policy NAME]")
		}
		d.Redistributes = append(d.Redistributes, r)
	}
	return nil
}

func (p *betaParser) peerLine(lineNo int, s string, f []string) error {
	d := p.d
	fail := func(reason string) error { return parseErr(d.Name, lineNo, s, reason) }
	if len(f) < 3 {
		return fail("peer ADDR CMD")
	}
	addr, err := netip.ParseAddr(f[1])
	if err != nil {
		return fail("bad peer address")
	}
	vrf := netmodel.DefaultVRF
	rest := f[2:]
	if len(rest) >= 2 && rest[len(rest)-2] == "vpn-instance" {
		vrf = rest[len(rest)-1]
		rest = rest[:len(rest)-2]
	}
	nb := d.Neighbor(addr, vrf)
	ensure := func() *Neighbor {
		if nb == nil {
			nb = &Neighbor{Addr: addr, VRF: vrf}
			d.Neighbors = append(d.Neighbors, nb)
		}
		return nb
	}
	switch rest[0] {
	case "as-number":
		if len(rest) != 2 {
			return fail("as-number N")
		}
		n, err := parseUint32(rest[1])
		if err != nil {
			return fail("bad as-number")
		}
		ensure().RemoteAS = netmodel.ASN(n)
	case "route-policy":
		if len(rest) != 3 {
			return fail("route-policy NAME import|export")
		}
		switch rest[2] {
		case "import":
			ensure().ImportPolicy = rest[1]
		case "export":
			ensure().ExportPolicy = rest[1]
		default:
			return fail("want import|export")
		}
	case "reflect-client":
		ensure().RRClient = true
	case "next-hop-local":
		ensure().NextHopSelf = true
	case "connect-interface":
		ensure().UpdateSource = true
	case "add-paths":
		if len(rest) != 2 {
			return fail("add-paths N")
		}
		n, err := parseInt(rest[1])
		if err != nil {
			return fail("bad add-paths")
		}
		ensure().AddPaths = n
	default:
		return fail("unknown peer command")
	}
	return nil
}

func (p *betaParser) ifMatchLine(lineNo int, s string, f []string) error {
	d := p.d
	fail := func(reason string) error { return parseErr(d.Name, lineNo, s, reason) }
	if p.curNode == nil {
		return fail("if-match outside route-policy")
	}
	if len(f) < 3 {
		return fail("if-match KIND NAME")
	}
	switch f[1] {
	case "ip-prefix", "ipv6-prefix":
		p.curNode.Matches = append(p.curNode.Matches, policy.Match{Kind: policy.MatchPrefixList, ListName: f[2]})
	case "community-filter":
		p.curNode.Matches = append(p.curNode.Matches, policy.Match{Kind: policy.MatchCommunityList, ListName: f[2]})
	case "as-path-filter":
		p.curNode.Matches = append(p.curNode.Matches, policy.Match{Kind: policy.MatchASPathList, ListName: f[2]})
	case "protocol":
		proto, err := protoFromString(f[2])
		if err != nil {
			return fail(err.Error())
		}
		p.curNode.Matches = append(p.curNode.Matches, policy.Match{Kind: policy.MatchProtocol, Protocol: proto})
	case "peer":
		a, err := netip.ParseAddr(f[2])
		if err != nil {
			return fail("bad peer address")
		}
		p.curNode.Matches = append(p.curNode.Matches, policy.Match{Kind: policy.MatchPeerAddr, Addr: a})
	default:
		return fail("unknown if-match kind")
	}
	return nil
}

func (p *betaParser) applyLine(lineNo int, s string, f []string) error {
	d := p.d
	fail := func(reason string) error { return parseErr(d.Name, lineNo, s, reason) }
	if p.curNode == nil {
		return fail("apply outside route-policy")
	}
	add := func(st policy.Set) { p.curNode.Sets = append(p.curNode.Sets, st) }
	if len(f) < 3 {
		return fail("apply KIND VALUE")
	}
	switch f[1] {
	case "local-preference", "cost", "preference":
		v, err := parseUint32(f[2])
		if err != nil {
			return fail("bad value")
		}
		kind := map[string]policy.SetKind{
			"local-preference": policy.SetLocalPref,
			"cost":             policy.SetMED,
			"preference":       policy.SetPreference,
		}[f[1]]
		add(policy.Set{Kind: kind, Value: v})
	case "community":
		// apply community C additive | apply community delete C | apply community C1 C2 ...
		if f[2] == "delete" {
			if len(f) != 4 {
				return fail("apply community delete C")
			}
			c, err := netmodel.ParseCommunity(f[3])
			if err != nil {
				return fail("bad community")
			}
			add(policy.Set{Kind: policy.DeleteCommunity, Community: c})
			return nil
		}
		if f[len(f)-1] == "additive" {
			if len(f) != 4 {
				return fail("apply community C additive")
			}
			c, err := netmodel.ParseCommunity(f[2])
			if err != nil {
				return fail("bad community")
			}
			add(policy.Set{Kind: policy.AddCommunity, Community: c})
			return nil
		}
		var cs netmodel.CommunitySet
		for _, tok := range f[2:] {
			c, err := netmodel.ParseCommunity(tok)
			if err != nil {
				return fail("bad community")
			}
			cs = cs.Add(c)
		}
		add(policy.Set{Kind: policy.SetCommunity, Communities: cs})
	case "ip-address":
		if len(f) != 4 || f[2] != "next-hop" {
			return fail("apply ip-address next-hop A")
		}
		a, err := netip.ParseAddr(f[3])
		if err != nil {
			return fail("bad next hop")
		}
		add(policy.Set{Kind: policy.SetNextHop, NextHop: a})
	case "as-path":
		// apply as-path ASN [COUNT] additive | apply as-path ASN... overwrite
		last := f[len(f)-1]
		switch last {
		case "additive":
			asn, err := parseUint32(f[2])
			if err != nil {
				return fail("bad asn")
			}
			count := uint32(1)
			if len(f) == 5 {
				if count, err = parseUint32(f[3]); err != nil {
					return fail("bad count")
				}
			}
			add(policy.Set{Kind: policy.PrependASPath, ASN: netmodel.ASN(asn), Value: count})
		case "overwrite":
			var seq []netmodel.ASN
			for _, tok := range f[2 : len(f)-1] {
				n, err := parseUint32(tok)
				if err != nil {
					return fail("bad asn")
				}
				seq = append(seq, netmodel.ASN(n))
			}
			add(policy.Set{Kind: policy.ReplaceASPath, ASPath: netmodel.ASPath{Seq: seq}})
		default:
			return fail("apply as-path must end with additive|overwrite")
		}
	default:
		return fail("unknown apply kind")
	}
	return nil
}

// ipLine handles beta top-level "ip ..." commands.
func (p *betaParser) ipLine(lineNo int, s string, f []string) error {
	d := p.d
	fail := func(reason string) error { return parseErr(d.Name, lineNo, s, reason) }
	if p.curIface != nil && len(f) >= 2 && f[1] == "address" {
		return p.ifaceLine(lineNo, s, f)
	}
	if len(f) >= 2 && f[1] == "vpn-instance" {
		if len(f) != 3 {
			return fail("ip vpn-instance NAME")
		}
		p.resetSection()
		v, ok := d.VRFs[f[2]]
		if !ok {
			v = &VRF{Name: f[2]}
			d.VRFs[f[2]] = v
		}
		p.curVRF = v
		return nil
	}
	p.resetSection()
	if len(f) < 3 {
		return fail("incomplete ip command")
	}
	switch f[1] {
	case "ip-prefix", "ipv6-prefix":
		// ip ip-prefix NAME index N permit|deny PREFIX [greater-equal N] [less-equal N]
		//
		// The declared family follows the command keyword, NOT the prefixes
		// inside: declaring IPv6 prefixes under "ip-prefix" is exactly the
		// Figure 10(b) misconfiguration.
		family := policy.FamilyIPv4
		if f[1] == "ipv6-prefix" {
			family = policy.FamilyIPv6
		}
		if len(f) < 7 || f[3] != "index" {
			return fail("ip " + f[1] + " NAME index N permit|deny PREFIX")
		}
		name := f[2]
		permit, ok := permitDeny(f[5])
		if !ok {
			return fail("want permit|deny")
		}
		pr, err := netip.ParsePrefix(f[6])
		if err != nil {
			return fail("bad prefix")
		}
		ge, le, err := parseGeLe(f[7:], "greater-equal", "less-equal")
		if err != nil {
			return fail(err.Error())
		}
		l, ok := d.PrefixLists[name]
		if !ok {
			l = &policy.PrefixList{Name: name, Family: family}
			d.PrefixLists[name] = l
		}
		l.Entries = append(l.Entries, policy.PrefixEntry{Permit: permit, Prefix: pr, Ge: ge, Le: le})
	case "community-filter":
		if len(f) != 5 {
			return fail("ip community-filter NAME permit|deny C")
		}
		name := f[2]
		permit, ok := permitDeny(f[3])
		if !ok {
			return fail("want permit|deny")
		}
		c, err := netmodel.ParseCommunity(f[4])
		if err != nil {
			return fail("bad community")
		}
		l, ok := d.CommunityLists[name]
		if !ok {
			l = &policy.CommunityList{Name: name}
			d.CommunityLists[name] = l
		}
		l.Entries = append(l.Entries, policy.CommunityEntry{Permit: permit, Community: c})
	case "as-path-filter":
		if len(f) < 5 {
			return fail("ip as-path-filter NAME permit|deny REGEX")
		}
		name := f[2]
		permit, ok := permitDeny(f[3])
		if !ok {
			return fail("want permit|deny")
		}
		regex := strings.Trim(strings.Join(f[4:], " "), `"`)
		l, ok := d.ASPathLists[name]
		if !ok {
			l = &policy.ASPathList{Name: name}
			d.ASPathLists[name] = l
		}
		l.Entries = append(l.Entries, policy.ASPathEntry{Permit: permit, Regex: regex})
	case "route-static":
		// ip route-static PREFIX NEXTHOP [preference N] [vpn-instance NAME]
		if len(f) < 4 {
			return fail("ip route-static PREFIX NEXTHOP")
		}
		pr, err := netip.ParsePrefix(f[2])
		if err != nil {
			return fail("bad prefix")
		}
		nh, err := netip.ParseAddr(f[3])
		if err != nil {
			return fail("bad next hop")
		}
		st := StaticRoute{VRF: netmodel.DefaultVRF, Prefix: pr, NextHop: nh, Preference: 60}
		rest := f[4:]
		for i := 0; i < len(rest); i += 2 {
			if i+1 >= len(rest) {
				return fail("dangling option")
			}
			switch rest[i] {
			case "preference":
				v, err := parseUint32(rest[i+1])
				if err != nil {
					return fail("bad preference")
				}
				st.Preference = v
			case "vpn-instance":
				st.VRF = rest[i+1]
			default:
				return fail("unknown static option")
			}
		}
		d.Statics = append(d.Statics, st)
	default:
		return fail("unknown ip command")
	}
	return nil
}

func (p *betaParser) aclLine(lineNo int, s string, f []string) error {
	d := p.d
	fail := func(reason string) error { return parseErr(d.Name, lineNo, s, reason) }
	// acl NAME rule permit|deny [clauses]
	if len(f) < 4 || f[2] != "rule" {
		return fail("acl NAME rule permit|deny ...")
	}
	name := f[1]
	permit, ok := permitDeny(f[3])
	if !ok {
		return fail("want permit|deny")
	}
	e, err := parseACLClause(f[4:])
	if err != nil {
		return fail(err.Error())
	}
	e.Permit = permit
	a, ok := d.ACLs[name]
	if !ok {
		a = &policy.ACL{Name: name}
		d.ACLs[name] = a
	}
	a.Entries = append(a.Entries, e)
	return nil
}

func (p *betaParser) srPolicyLine(lineNo int, s string, f []string) error {
	d := p.d
	fail := func(reason string) error { return parseErr(d.Name, lineNo, s, reason) }
	if len(f) < 6 || f[2] != "endpoint" || f[4] != "color" {
		return fail("sr-policy NAME endpoint ADDR color N [segments ...]")
	}
	ep, err := netip.ParseAddr(f[3])
	if err != nil {
		return fail("bad endpoint")
	}
	color, err := parseUint32(f[5])
	if err != nil {
		return fail("bad color")
	}
	sp := &SRPolicy{Name: f[1], Endpoint: ep, Color: color}
	if len(f) > 6 {
		if f[6] != "segments" {
			return fail("want segments")
		}
		sp.Segments = append(sp.Segments, f[7:]...)
	}
	for i, old := range d.SRPolicies {
		if old.Name == sp.Name {
			d.SRPolicies[i] = sp
			return nil
		}
	}
	d.SRPolicies = append(d.SRPolicies, sp)
	return nil
}

func (p *betaParser) pbrLine(lineNo int, s string, f []string) error {
	d := p.d
	fail := func(reason string) error { return parseErr(d.Name, lineNo, s, reason) }
	if len(f) < 4 {
		return fail("policy-based-route NAME ... next-hop ADDR")
	}
	name := f[1]
	if f[len(f)-2] != "next-hop" {
		return fail("policy-based-route must end with next-hop ADDR")
	}
	nh, err := netip.ParseAddr(f[len(f)-1])
	if err != nil {
		return fail("bad next-hop")
	}
	e, err := parseACLClause(f[2 : len(f)-2])
	if err != nil {
		return fail(err.Error())
	}
	e.Permit = true
	d.PBRPolicies[name] = append(d.PBRPolicies[name], PBRRule{Name: name, Match: e, NextHop: nh})
	return nil
}

func (p *betaParser) undoCommand(lineNo int, s string, f []string) error {
	d := p.d
	fail := func(reason string) error { return parseErr(d.Name, lineNo, s, reason) }
	if len(f) == 0 {
		return fail("empty undo command")
	}
	switch f[0] {
	case "isolate":
		d.Isolated = false
		return nil
	case "route-policy":
		switch len(f) {
		case 2:
			delete(d.RouteMaps, f[1])
			return nil
		case 5:
			if f[3] != "node" {
				return fail("undo route-policy NAME ACTION node N")
			}
			rm := d.RouteMaps[f[1]]
			if rm == nil {
				return fail("no such route-policy")
			}
			seq, err := parseInt(f[4])
			if err != nil {
				return fail("bad node")
			}
			if !rm.DeleteNode(seq) {
				return fail("no such node")
			}
			return nil
		}
		return fail("undo route-policy NAME [ACTION node N]")
	case "peer":
		if len(f) < 2 {
			return fail("undo peer ADDR")
		}
		addr, err := netip.ParseAddr(f[1])
		if err != nil {
			return fail("bad address")
		}
		vrf := netmodel.DefaultVRF
		if len(f) == 4 && f[2] == "vpn-instance" {
			vrf = f[3]
		}
		if len(f) == 4 && f[2] == "route-policy" {
			nb := d.Neighbor(addr, vrf)
			if nb == nil {
				return fail("no such peer")
			}
			if f[3] == "import" {
				nb.ImportPolicy = ""
			} else {
				nb.ExportPolicy = ""
			}
			return nil
		}
		if !d.RemoveNeighbor(addr, vrf) {
			return fail("no such peer")
		}
		return nil
	case "ip":
		if len(f) >= 4 && f[1] == "route-static" {
			pr, err := netip.ParsePrefix(f[2])
			if err != nil {
				return fail("bad prefix")
			}
			nh, err := netip.ParseAddr(f[3])
			if err != nil {
				return fail("bad next hop")
			}
			vrf := netmodel.DefaultVRF
			if len(f) == 6 && f[4] == "vpn-instance" {
				vrf = f[5]
			}
			for i, st := range d.Statics {
				if st.Prefix == pr && st.NextHop == nh && st.VRF == vrf {
					d.Statics = append(d.Statics[:i], d.Statics[i+1:]...)
					return nil
				}
			}
			return fail("no such static route")
		}
		if len(f) == 3 && (f[1] == "ip-prefix" || f[1] == "ipv6-prefix") {
			delete(d.PrefixLists, f[2])
			return nil
		}
		if len(f) == 3 && f[1] == "community-filter" {
			delete(d.CommunityLists, f[2])
			return nil
		}
		return fail("unknown undo ip command")
	case "aggregate":
		if len(f) < 2 {
			return fail("undo aggregate PREFIX")
		}
		pr, err := netip.ParsePrefix(f[1])
		if err != nil {
			return fail("bad prefix")
		}
		for i, a := range d.Aggregates {
			if a.Prefix == pr {
				d.Aggregates = append(d.Aggregates[:i], d.Aggregates[i+1:]...)
				return nil
			}
		}
		return fail("no such aggregate")
	case "sr-policy":
		if len(f) != 2 {
			return fail("undo sr-policy NAME")
		}
		for i, sp := range d.SRPolicies {
			if sp.Name == f[1] {
				d.SRPolicies = append(d.SRPolicies[:i], d.SRPolicies[i+1:]...)
				return nil
			}
		}
		return fail("no such sr-policy")
	case "acl":
		if len(f) != 2 {
			return fail("undo acl NAME")
		}
		delete(d.ACLs, f[1])
		return nil
	case "network":
		if len(f) != 2 {
			return fail("undo network PREFIX")
		}
		pr, err := netip.ParsePrefix(f[1])
		if err != nil {
			return fail("bad prefix")
		}
		for i, n := range d.Networks {
			if n == pr {
				d.Networks = append(d.Networks[:i], d.Networks[i+1:]...)
				return nil
			}
		}
		return fail("no such network")
	}
	return fail("unknown undo command")
}

// SerializeBeta renders a device model into vendor-beta configuration text.
func SerializeBeta(d *Device) string {
	var b strings.Builder
	fmt.Fprintf(&b, "sysname %s\nvendor beta\nas-number %d\n", d.Name, d.ASN)
	if d.RouterID.IsValid() {
		fmt.Fprintf(&b, "router-id %s\n", d.RouterID)
	}
	if d.Loopback.IsValid() {
		fmt.Fprintf(&b, "loopback %s\n", d.Loopback)
	}
	if d.ISISEnabled {
		b.WriteString("isis enable\n")
	}
	if d.Isolated {
		b.WriteString("isolate\n")
	}
	b.WriteString("#\n")
	for _, name := range sortedKeys(d.Interfaces) {
		i := d.Interfaces[name]
		fmt.Fprintf(&b, "interface %s\n", name)
		if i.Addr.IsValid() {
			fmt.Fprintf(&b, " ip address %s\n", i.Addr)
		}
		if i.ISISCost != 0 {
			fmt.Fprintf(&b, " isis cost %d\n", i.ISISCost)
		}
		if i.TECost != 0 {
			fmt.Fprintf(&b, " isis te-cost %d\n", i.TECost)
		}
		if i.Bandwidth != 0 {
			fmt.Fprintf(&b, " bandwidth %g\n", i.Bandwidth)
		}
		if i.ACLIn != "" {
			fmt.Fprintf(&b, " traffic-filter inbound acl %s\n", i.ACLIn)
		}
		if i.ACLOut != "" {
			fmt.Fprintf(&b, " traffic-filter outbound acl %s\n", i.ACLOut)
		}
		if i.PBR != "" {
			fmt.Fprintf(&b, " pbr %s\n", i.PBR)
		}
		b.WriteString("#\n")
	}
	for _, name := range sortedKeys(d.VRFs) {
		v := d.VRFs[name]
		fmt.Fprintf(&b, "ip vpn-instance %s\n", name)
		if v.RD != "" {
			fmt.Fprintf(&b, " rd %s\n", v.RD)
		}
		for _, rt := range v.ImportRTs {
			fmt.Fprintf(&b, " vpn-target %s import\n", rt)
		}
		for _, rt := range v.ExportRTs {
			fmt.Fprintf(&b, " vpn-target %s export\n", rt)
		}
		if v.ExportPolicy != "" {
			fmt.Fprintf(&b, " export route-policy %s\n", v.ExportPolicy)
		}
		b.WriteString("#\n")
	}
	if len(d.Neighbors) > 0 || len(d.Aggregates) > 0 || len(d.Redistributes) > 0 || len(d.Networks) > 0 || d.MaxPaths > 1 {
		b.WriteString("bgp\n")
		if d.MaxPaths > 1 {
			fmt.Fprintf(&b, " maximum load-balancing %d\n", d.MaxPaths)
		}
		for _, nb := range d.Neighbors {
			suffix := ""
			if nb.VRF != netmodel.DefaultVRF {
				suffix = " vpn-instance " + nb.VRF
			}
			fmt.Fprintf(&b, " peer %s as-number %d%s\n", nb.Addr, nb.RemoteAS, suffix)
			if nb.ImportPolicy != "" {
				fmt.Fprintf(&b, " peer %s route-policy %s import%s\n", nb.Addr, nb.ImportPolicy, suffix)
			}
			if nb.ExportPolicy != "" {
				fmt.Fprintf(&b, " peer %s route-policy %s export%s\n", nb.Addr, nb.ExportPolicy, suffix)
			}
			if nb.RRClient {
				fmt.Fprintf(&b, " peer %s reflect-client%s\n", nb.Addr, suffix)
			}
			if nb.NextHopSelf {
				fmt.Fprintf(&b, " peer %s next-hop-local%s\n", nb.Addr, suffix)
			}
			if nb.UpdateSource {
				fmt.Fprintf(&b, " peer %s connect-interface loopback%s\n", nb.Addr, suffix)
			}
			if nb.AddPaths > 1 {
				fmt.Fprintf(&b, " peer %s add-paths %d%s\n", nb.Addr, nb.AddPaths, suffix)
			}
		}
		for _, n := range d.Networks {
			fmt.Fprintf(&b, " network %s\n", n)
		}
		for _, a := range d.Aggregates {
			line := " aggregate " + a.Prefix.String()
			if a.ASSet {
				line += " as-set"
			}
			if a.SummaryOnly {
				line += " summary-only"
			}
			if a.VRF != netmodel.DefaultVRF {
				line += " vpn-instance " + a.VRF
			}
			b.WriteString(line + "\n")
		}
		for _, r := range d.Redistributes {
			line := " import-route " + r.From.String()
			if r.Policy != "" {
				line += " route-policy " + r.Policy
			}
			b.WriteString(line + "\n")
		}
		b.WriteString("#\n")
	}
	for _, name := range sortedKeys(d.RouteMaps) {
		rm := d.RouteMaps[name]
		for _, n := range rm.Nodes {
			action := "permit"
			if n.Action == policy.ActionDeny {
				action = "deny"
			}
			fmt.Fprintf(&b, "route-policy %s %s node %d\n", name, action, n.Seq)
			for _, m := range n.Matches {
				switch m.Kind {
				case policy.MatchPrefixList:
					fmt.Fprintf(&b, " if-match ip-prefix %s\n", m.ListName)
				case policy.MatchCommunityList:
					fmt.Fprintf(&b, " if-match community-filter %s\n", m.ListName)
				case policy.MatchASPathList:
					fmt.Fprintf(&b, " if-match as-path-filter %s\n", m.ListName)
				case policy.MatchProtocol:
					fmt.Fprintf(&b, " if-match protocol %s\n", m.Protocol)
				case policy.MatchPeerAddr:
					fmt.Fprintf(&b, " if-match peer %s\n", m.Addr)
				}
			}
			for _, st := range n.Sets {
				switch st.Kind {
				case policy.SetLocalPref:
					fmt.Fprintf(&b, " apply local-preference %d\n", st.Value)
				case policy.SetMED:
					fmt.Fprintf(&b, " apply cost %d\n", st.Value)
				case policy.SetPreference:
					fmt.Fprintf(&b, " apply preference %d\n", st.Value)
				case policy.SetCommunity:
					fmt.Fprintf(&b, " apply community %s\n", strings.Join(st.Communities.Strings(), " "))
				case policy.AddCommunity:
					fmt.Fprintf(&b, " apply community %s additive\n", st.Community)
				case policy.DeleteCommunity:
					fmt.Fprintf(&b, " apply community delete %s\n", st.Community)
				case policy.SetNextHop:
					fmt.Fprintf(&b, " apply ip-address next-hop %s\n", st.NextHop)
				case policy.PrependASPath:
					fmt.Fprintf(&b, " apply as-path %d %d additive\n", st.ASN, st.Value)
				case policy.ReplaceASPath:
					parts := make([]string, len(st.ASPath.Seq))
					for i, a := range st.ASPath.Seq {
						parts[i] = fmt.Sprintf("%d", a)
					}
					fmt.Fprintf(&b, " apply as-path %s overwrite\n", strings.Join(parts, " "))
				case policy.SetWeight:
					// Beta has no weight concept; serialized as a comment so
					// round-tripping through beta deliberately loses it,
					// matching the real vendor gap.
					fmt.Fprintf(&b, " // weight %d not supported on beta\n", st.Value)
				}
			}
			b.WriteString("#\n")
		}
	}
	for _, name := range sortedKeys(d.PrefixLists) {
		l := d.PrefixLists[name]
		kw := "ip-prefix"
		if l.Family == policy.FamilyIPv6 {
			kw = "ipv6-prefix"
		}
		for idx, e := range l.Entries {
			line := fmt.Sprintf("ip %s %s index %d %s %s", kw, name, (idx+1)*10, pd(e.Permit), e.Prefix)
			if e.Ge != 0 {
				line += fmt.Sprintf(" greater-equal %d", e.Ge)
			}
			if e.Le != 0 {
				line += fmt.Sprintf(" less-equal %d", e.Le)
			}
			b.WriteString(line + "\n")
		}
	}
	for _, name := range sortedKeys(d.CommunityLists) {
		for _, e := range d.CommunityLists[name].Entries {
			fmt.Fprintf(&b, "ip community-filter %s %s %s\n", name, pd(e.Permit), e.Community)
		}
	}
	for _, name := range sortedKeys(d.ASPathLists) {
		for _, e := range d.ASPathLists[name].Entries {
			fmt.Fprintf(&b, "ip as-path-filter %s %s \"%s\"\n", name, pd(e.Permit), e.Regex)
		}
	}
	for _, name := range sortedKeys(d.ACLs) {
		for _, e := range d.ACLs[name].Entries {
			line := fmt.Sprintf("acl %s rule %s", name, pd(e.Permit))
			if c := formatACLClause(e); c != "" {
				line += " " + c
			}
			b.WriteString(line + "\n")
		}
	}
	for _, st := range d.Statics {
		line := fmt.Sprintf("ip route-static %s %s", st.Prefix, st.NextHop)
		if st.Preference != 60 {
			line += fmt.Sprintf(" preference %d", st.Preference)
		}
		if st.VRF != netmodel.DefaultVRF {
			line += " vpn-instance " + st.VRF
		}
		b.WriteString(line + "\n")
	}
	for _, sp := range d.SRPolicies {
		line := fmt.Sprintf("sr-policy %s endpoint %s color %d", sp.Name, sp.Endpoint, sp.Color)
		if len(sp.Segments) > 0 {
			line += " segments " + strings.Join(sp.Segments, " ")
		}
		b.WriteString(line + "\n")
	}
	for _, name := range sortedKeys(d.PBRPolicies) {
		for _, r := range d.PBRPolicies[name] {
			line := "policy-based-route " + name
			if c := formatACLClause(r.Match); c != "" {
				line += " " + c
			}
			line += " next-hop " + r.NextHop.String()
			b.WriteString(line + "\n")
		}
	}
	return b.String()
}
