package config

import "hoyan/internal/vsb"

// vsbProfilePermitV6 returns a profile with the Figure 10(b) behaviour on.
func vsbProfilePermitV6() vsb.Profile {
	p := vsb.Beta()
	p.IPPrefixFilterPermitsIPv6 = true
	return p
}
