package config

import (
	"fmt"
	"math/rand"
	"net/netip"
	"strings"
	"testing"

	"hoyan/internal/netmodel"
	"hoyan/internal/policy"
)

const alphaConfig = `
hostname R1
vendor alpha
asn 65001
router-id 1.1.1.1
loopback 1.1.1.1
isis enable
!
interface eth0
 ip address 10.0.0.1/30
 isis cost 10
 isis te-cost 20
 bandwidth 1e+10
 acl-in ACL1
!
vrf v1
 rd 65001:1
 route-target import 65001:100
 route-target export 65001:200
 export-policy RM_EXP
!
router bgp
 max-paths 4
 neighbor 10.0.0.2 remote-as 65002
 neighbor 10.0.0.2 route-map RM_IN in
 neighbor 10.0.0.2 route-map RM_OUT out
 neighbor 2.2.2.2 remote-as 65001
 neighbor 2.2.2.2 update-source
 neighbor 2.2.2.2 route-reflector-client
 neighbor 2.2.2.2 next-hop-self
 neighbor 2.2.2.2 add-paths 2
 neighbor 3.3.3.3 remote-as 65001 vrf v1
 network 172.16.0.0/16
 aggregate-address 10.0.0.0/8 as-set
 redistribute static route-map RM_RED
 redistribute direct
!
route-map RM_IN permit 10
 match ip-prefix PL1
 match community CL1
 set local-preference 200
 set community add 100:1
!
route-map RM_IN deny 20
!
route-map RM_OUT 5
 set med 50
!
route-map RM_RED permit 10
 match protocol static
!
route-map RM_EXP permit 10
!
ip prefix-list PL1 permit 10.0.0.0/24 le 32
ipv6 prefix-list PL6 permit 2001:db8::/32 le 64
ip community-list CL1 permit 100:1
ip as-path-list AP1 permit ".* 123 .*"
ip access-list ACL1 deny proto tcp dst 10.0.0.0/24 dport 80-80
ip access-list ACL1 permit
ip route 10.9.0.0/16 10.0.0.2 pref 5 vrf v1
sr-policy SRP1 endpoint 2.2.2.2 color 100 segments R2 R3
pbr-policy PBR1 dst 10.7.0.0/16 next-hop 10.0.0.2
`

func TestParseAlpha(t *testing.T) {
	d, err := ParseAlpha("R1", alphaConfig)
	if err != nil {
		t.Fatal(err)
	}
	if d.Name != "R1" || d.ASN != 65001 || !d.ISISEnabled {
		t.Errorf("header: %+v", d)
	}
	if d.RouterID != netip.MustParseAddr("1.1.1.1") {
		t.Error("router-id")
	}
	i := d.Interfaces["eth0"]
	if i == nil || i.Addr != netip.MustParsePrefix("10.0.0.1/30") || i.ISISCost != 10 || i.TECost != 20 || i.ACLIn != "ACL1" || i.Bandwidth != 1e10 {
		t.Errorf("interface: %+v", i)
	}
	v := d.VRFs["v1"]
	if v == nil || v.RD != "65001:1" || len(v.ImportRTs) != 1 || v.ExportPolicy != "RM_EXP" {
		t.Errorf("vrf: %+v", v)
	}
	if d.MaxPaths != 4 {
		t.Errorf("max-paths = %d", d.MaxPaths)
	}
	nb := d.Neighbor(netip.MustParseAddr("10.0.0.2"), netmodel.DefaultVRF)
	if nb == nil || nb.RemoteAS != 65002 || nb.ImportPolicy != "RM_IN" || nb.ExportPolicy != "RM_OUT" {
		t.Fatalf("ebgp neighbor: %+v", nb)
	}
	rr := d.Neighbor(netip.MustParseAddr("2.2.2.2"), netmodel.DefaultVRF)
	if rr == nil || !rr.RRClient || !rr.NextHopSelf || !rr.UpdateSource || rr.AddPaths != 2 {
		t.Fatalf("ibgp neighbor: %+v", rr)
	}
	if d.Neighbor(netip.MustParseAddr("3.3.3.3"), "v1") == nil {
		t.Error("vrf neighbor missing")
	}
	rm := d.RouteMaps["RM_IN"]
	if rm == nil || len(rm.Nodes) != 2 {
		t.Fatalf("RM_IN: %+v", rm)
	}
	n10 := rm.Node(10)
	if n10.Action != policy.ActionPermit || len(n10.Matches) != 2 || len(n10.Sets) != 2 {
		t.Errorf("node 10: %+v", n10)
	}
	if rm.Node(20).Action != policy.ActionDeny {
		t.Error("node 20 should deny")
	}
	if d.RouteMaps["RM_OUT"].Node(5).Action != policy.ActionUnset {
		t.Error("route-map without action should be ActionUnset (VSB)")
	}
	if d.PrefixLists["PL1"].Family != policy.FamilyIPv4 || d.PrefixLists["PL6"].Family != policy.FamilyIPv6 {
		t.Error("prefix list families")
	}
	if len(d.ACLs["ACL1"].Entries) != 2 {
		t.Error("ACL entries")
	}
	if len(d.Statics) != 1 || d.Statics[0].VRF != "v1" || d.Statics[0].Preference != 5 {
		t.Errorf("statics: %+v", d.Statics)
	}
	if len(d.SRPolicies) != 1 || len(d.SRPolicies[0].Segments) != 2 {
		t.Errorf("sr policies: %+v", d.SRPolicies)
	}
	if len(d.PBRPolicies["PBR1"]) != 1 {
		t.Errorf("pbr: %+v", d.PBRPolicies)
	}
	if len(d.Aggregates) != 1 || !d.Aggregates[0].ASSet {
		t.Errorf("aggregates: %+v", d.Aggregates)
	}
	if len(d.Redistributes) != 2 || d.Redistributes[0].Policy != "RM_RED" {
		t.Errorf("redistributes: %+v", d.Redistributes)
	}
	if len(d.Networks) != 1 {
		t.Errorf("networks: %+v", d.Networks)
	}
}

func TestAlphaRoundTrip(t *testing.T) {
	d, err := ParseAlpha("R1", alphaConfig)
	if err != nil {
		t.Fatal(err)
	}
	text := SerializeAlpha(d)
	d2, err := ParseAlpha("R1", text)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, text)
	}
	text2 := SerializeAlpha(d2)
	if text != text2 {
		t.Errorf("round trip not stable:\n--- first ---\n%s\n--- second ---\n%s", text, text2)
	}
}

const betaConfig = `
sysname R2
vendor beta
as-number 65002
router-id 2.2.2.2
loopback 2.2.2.2
isis enable
#
interface ge0
 ip address 10.0.0.2/30
 isis cost 10
 traffic-filter inbound acl ACL1
#
ip vpn-instance v1
 rd 65002:1
 vpn-target 65001:100 import
 vpn-target 65001:200 export
 export route-policy RP_EXP
#
bgp
 maximum load-balancing 4
 peer 10.0.0.1 as-number 65001
 peer 10.0.0.1 route-policy RP_IN import
 peer 10.0.0.1 route-policy RP_OUT export
 peer 3.3.3.3 as-number 65002
 peer 3.3.3.3 reflect-client
 peer 3.3.3.3 connect-interface loopback
 network 172.17.0.0/16
 aggregate 20.0.0.0/8
 import-route static
#
route-policy RP_IN permit node 10
 if-match ip-prefix PL1
 if-match community-filter CF1
 apply local-preference 300
 apply community 100:1 additive
#
route-policy RP_OUT deny node 10
#
route-policy RP_EXP permit node 10
#
ip ip-prefix PL1 index 10 permit 10.0.0.0/24 less-equal 32
ip ipv6-prefix PL6 index 10 permit 2001:db8::/32 less-equal 64
ip community-filter CF1 permit 100:1
ip as-path-filter AF1 permit "(^|.* )123( .*|$)"
acl ACL1 rule deny proto udp dst 10.1.0.0/16
acl ACL1 rule permit
ip route-static 10.9.0.0/16 10.0.0.1 preference 7
sr-policy SRP1 endpoint 3.3.3.3 color 200
policy-based-route PBR1 src 10.8.0.0/16 next-hop 10.0.0.1
`

func TestParseBeta(t *testing.T) {
	d, err := ParseBeta("R2", betaConfig)
	if err != nil {
		t.Fatal(err)
	}
	if d.Vendor != "beta" || d.ASN != 65002 {
		t.Errorf("header: %+v", d)
	}
	nb := d.Neighbor(netip.MustParseAddr("10.0.0.1"), netmodel.DefaultVRF)
	if nb == nil || nb.ImportPolicy != "RP_IN" || nb.ExportPolicy != "RP_OUT" {
		t.Fatalf("peer: %+v", nb)
	}
	rr := d.Neighbor(netip.MustParseAddr("3.3.3.3"), netmodel.DefaultVRF)
	if rr == nil || !rr.RRClient || !rr.UpdateSource {
		t.Fatalf("rr peer: %+v", rr)
	}
	rm := d.RouteMaps["RP_IN"]
	if rm == nil || rm.Node(10) == nil || len(rm.Node(10).Sets) != 2 {
		t.Fatalf("RP_IN: %+v", rm)
	}
	// ip-prefix vs ipv6-prefix: family follows the declaring command.
	if d.PrefixLists["PL1"].Family != policy.FamilyIPv4 {
		t.Error("PL1 family")
	}
	if d.PrefixLists["PL6"].Family != policy.FamilyIPv6 {
		t.Error("PL6 family")
	}
	if len(d.Statics) != 1 || d.Statics[0].Preference != 7 {
		t.Errorf("statics: %+v", d.Statics)
	}
	if d.VRFs["v1"] == nil || d.VRFs["v1"].ExportPolicy != "RP_EXP" {
		t.Errorf("vpn-instance: %+v", d.VRFs["v1"])
	}
}

func TestBetaRoundTrip(t *testing.T) {
	d, err := ParseBeta("R2", betaConfig)
	if err != nil {
		t.Fatal(err)
	}
	text := SerializeBeta(d)
	d2, err := ParseBeta("R2", text)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, text)
	}
	if SerializeBeta(d2) != text {
		t.Error("round trip not stable")
	}
}

func TestFigure10bMisconfiguration(t *testing.T) {
	// The operator declares IPv6 prefixes with the IPv4 "ip-prefix" command.
	text := `
sysname C
vendor beta
as-number 65100
#
ip ip-prefix TARGETS index 10 permit 2001:db8:1::/48
`
	d, err := ParseBeta("C", text)
	if err != nil {
		t.Fatal(err)
	}
	l := d.PrefixLists["TARGETS"]
	if l.Family != policy.FamilyIPv4 {
		t.Fatal("ip-prefix must declare an IPv4-family list even with v6 entries")
	}
	// Under a vendor whose ip-prefix permits all IPv6 by default, every v6
	// prefix matches; the intended one and all others alike.
	permissive := vsbProfilePermitV6()
	if !l.Match(netip.MustParsePrefix("2001:db8:999::/48"), permissive) {
		t.Error("unrelated IPv6 prefix should be permitted by the VSB")
	}
}

func TestDetectVendorAndParseDevice(t *testing.T) {
	if v := DetectVendor(alphaConfig); v != "alpha" {
		t.Errorf("alpha detect = %q", v)
	}
	if v := DetectVendor(betaConfig); v != "beta" {
		t.Errorf("beta detect = %q", v)
	}
	if v := DetectVendor("hostname X\n"); v != "alpha" {
		t.Errorf("hostname fallback = %q", v)
	}
	if v := DetectVendor("sysname X\n"); v != "beta" {
		t.Errorf("sysname fallback = %q", v)
	}
	d, err := ParseDevice("R2", betaConfig)
	if err != nil || d.Vendor != "beta" {
		t.Errorf("ParseDevice: %v %v", d, err)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"bogus command here\n",
		"router bgp\n neighbor notanaddr remote-as 1\n",
		"route-map RM permit notanumber\n",
		"ip prefix-list PL permit 10.0.0.0.0/24\n",
		"interface e0\n isis cost abc\n",
	}
	for _, c := range cases {
		if _, err := ParseAlpha("X", c); err == nil {
			t.Errorf("want parse error for %q", c)
		}
	}
	if _, err := ParseBeta("X", "bgp\n peer 1.1.1.1 as-number x\n"); err == nil {
		t.Error("beta: want parse error")
	}
	var pe *ParseError
	_, err := ParseAlpha("X", "hostname X\nbogus\n")
	if pe2, ok := err.(*ParseError); !ok {
		t.Errorf("want *ParseError, got %T", err)
	} else {
		pe = pe2
		if pe.Device != "X" || pe.Line != 2 || !strings.Contains(pe.Error(), "bogus") {
			t.Errorf("ParseError fields: %+v", pe)
		}
	}
}

func TestApplyCommandsAlpha(t *testing.T) {
	d, err := ParseAlpha("R1", alphaConfig)
	if err != nil {
		t.Fatal(err)
	}
	// Figure 10(a)-style change: delete the deny node from an ingress policy.
	cmds := `
route-map RM_IN permit 30
 match ip-prefix PL1
 set local-preference 400
!
no route-map RM_IN deny 20
ip route 10.10.0.0/16 10.0.0.2
no ip route 10.9.0.0/16 10.0.0.2 vrf v1
`
	if err := ApplyCommands(d, cmds); err != nil {
		t.Fatal(err)
	}
	rm := d.RouteMaps["RM_IN"]
	if rm.Node(20) != nil {
		t.Error("node 20 should be deleted")
	}
	n30 := rm.Node(30)
	if n30 == nil || n30.Sets[0].Value != 400 {
		t.Errorf("node 30: %+v", n30)
	}
	if len(d.Statics) != 1 || d.Statics[0].Prefix != netip.MustParsePrefix("10.10.0.0/16") {
		t.Errorf("statics after change: %+v", d.Statics)
	}
}

func TestApplyCommandsBeta(t *testing.T) {
	d, err := ParseBeta("R2", betaConfig)
	if err != nil {
		t.Fatal(err)
	}
	cmds := `
route-policy RP_IN permit node 20
 apply local-preference 500
#
undo route-policy RP_OUT deny node 10
undo peer 3.3.3.3
`
	if err := ApplyCommands(d, cmds); err != nil {
		t.Fatal(err)
	}
	if d.RouteMaps["RP_IN"].Node(20) == nil {
		t.Error("node 20 missing")
	}
	if len(d.RouteMaps["RP_OUT"].Nodes) != 0 {
		t.Error("RP_OUT node 10 should be deleted")
	}
	if d.Neighbor(netip.MustParseAddr("3.3.3.3"), netmodel.DefaultVRF) != nil {
		t.Error("peer 3.3.3.3 should be removed")
	}
}

func TestApplyCommandsErrors(t *testing.T) {
	d := NewDevice("R", "alpha")
	if err := ApplyCommands(d, "no route-map NOSUCH permit 10\n"); err == nil {
		t.Error("want error deleting node of unknown map")
	}
	if err := ApplyCommands(d, "no neighbor 9.9.9.9\n"); err == nil {
		t.Error("want error removing unknown neighbor")
	}
}

func TestCloneIsolation(t *testing.T) {
	d, err := ParseAlpha("R1", alphaConfig)
	if err != nil {
		t.Fatal(err)
	}
	cl := d.Clone()
	if err := ApplyCommands(cl, "no route-map RM_IN deny 20\nroute-map RM_IN permit 40\n set med 9\n"); err != nil {
		t.Fatal(err)
	}
	if d.RouteMaps["RM_IN"].Node(20) == nil {
		t.Error("clone mutation leaked into base (node 20)")
	}
	if d.RouteMaps["RM_IN"].Node(40) != nil {
		t.Error("clone mutation leaked into base (node 40)")
	}
	cl.Interfaces["eth0"].ISISCost = 999
	if d.Interfaces["eth0"].ISISCost == 999 {
		t.Error("interface not deep-copied")
	}
	cl.VRFs["v1"].ImportRTs[0] = "zzz"
	if d.VRFs["v1"].ImportRTs[0] == "zzz" {
		t.Error("vrf RTs not deep-copied")
	}
}

func TestNetworkValidate(t *testing.T) {
	net := NewNetwork()
	d := NewDevice("R1", "alpha")
	d.Neighbors = append(d.Neighbors, &Neighbor{Addr: netip.MustParseAddr("1.2.3.4"), VRF: netmodel.DefaultVRF, ImportPolicy: "MISSING"})
	d.Interfaces["e0"] = &Interface{Name: "e0", ACLIn: "NOACL"}
	net.Devices["R1"] = d
	issues := net.Validate()
	if len(issues) != 2 {
		t.Fatalf("issues = %v", issues)
	}
}

func TestBuildNetwork(t *testing.T) {
	configs := map[string]string{
		"R1": alphaConfig,
		"R2": betaConfig,
	}
	net, err := BuildNetwork(configs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(net.Devices) != 2 || net.Devices["R1"].Vendor != "alpha" || net.Devices["R2"].Vendor != "beta" {
		t.Errorf("devices: %v", net.DeviceNames())
	}
	if _, err := BuildNetwork(map[string]string{"X": "garbage line\n"}, nil); err == nil {
		t.Error("want error for bad config")
	}
}

// TestRandomizedRoundTripProperty builds random device models, serializes
// them in both dialects, re-parses, and re-serializes: the second
// serialization must be identical (parse ∘ serialize is a projection).
func TestRandomizedRoundTripProperty(t *testing.T) {
	rnd := rand.New(rand.NewSource(7))
	addr := func() netip.Addr {
		return netip.AddrFrom4([4]byte{byte(1 + rnd.Intn(220)), byte(rnd.Intn(255)), byte(rnd.Intn(255)), byte(1 + rnd.Intn(250))})
	}
	prefix := func() netip.Prefix {
		bits := 8 + rnd.Intn(25)
		return netip.PrefixFrom(addr(), bits).Masked()
	}
	for trial := 0; trial < 25; trial++ {
		vendor := "alpha"
		if trial%2 == 1 {
			vendor = "beta"
		}
		d := NewDevice(fmt.Sprintf("R%d", trial), vendor)
		d.ASN = netmodel.ASN(64512 + rnd.Intn(1000))
		d.Loopback = addr()
		d.RouterID = d.Loopback
		d.ISISEnabled = rnd.Intn(2) == 0
		d.MaxPaths = 1 + rnd.Intn(8)
		for i := 0; i < rnd.Intn(4); i++ {
			name := fmt.Sprintf("eth%d", i)
			d.Interfaces[name] = &Interface{
				Name: name, Addr: netip.PrefixFrom(addr(), 30),
				ISISCost: uint32(rnd.Intn(100)), Bandwidth: float64(rnd.Intn(10)) * 1e9,
			}
		}
		for i := 0; i < rnd.Intn(3); i++ {
			d.Neighbors = append(d.Neighbors, &Neighbor{
				Addr: addr(), RemoteAS: netmodel.ASN(64512 + rnd.Intn(1000)),
				VRF: netmodel.DefaultVRF, RRClient: rnd.Intn(2) == 0,
				NextHopSelf: rnd.Intn(2) == 0, UpdateSource: rnd.Intn(2) == 0,
			})
		}
		for i := 0; i < rnd.Intn(3); i++ {
			name := fmt.Sprintf("PL%d", i)
			d.PrefixLists[name] = &policy.PrefixList{Name: name, Family: policy.FamilyIPv4,
				Entries: []policy.PrefixEntry{{Permit: rnd.Intn(2) == 0, Prefix: prefix(), Le: 32}}}
		}
		for i := 0; i < rnd.Intn(3); i++ {
			name := fmt.Sprintf("RM%d", i)
			d.RouteMaps[name] = &policy.RouteMap{Name: name, Nodes: []*policy.Node{{
				Seq: 10, Action: policy.ActionPermit,
				Sets: []policy.Set{{Kind: policy.SetLocalPref, Value: uint32(rnd.Intn(500))}},
			}}}
		}
		d.Statics = append(d.Statics, StaticRoute{
			VRF: netmodel.DefaultVRF, Prefix: prefix(), NextHop: addr(),
			Preference: uint32(1 + rnd.Intn(200)),
		})

		text1 := Serialize(d)
		d2, err := ParseDevice(d.Name, text1)
		if err != nil {
			t.Fatalf("trial %d (%s): %v\n%s", trial, vendor, err, text1)
		}
		text2 := Serialize(d2)
		if text1 != text2 {
			t.Fatalf("trial %d (%s): round trip unstable:\n--1--\n%s\n--2--\n%s", trial, vendor, text1, text2)
		}
	}
}
