package config

import (
	"fmt"
	"strings"

	"hoyan/internal/par"
	"slices"
)

// DetectVendor inspects a configuration text and returns the dialect it is
// written in ("alpha" or "beta"), based on the vendor stanza or, failing
// that, dialect-specific keywords.
func DetectVendor(text string) string {
	for _, l := range splitLines(text) {
		f := strings.Fields(l.text)
		if len(f) == 2 && f[0] == "vendor" {
			return f[1]
		}
		switch f[0] {
		case "hostname":
			return "alpha"
		case "sysname":
			return "beta"
		}
	}
	return "alpha"
}

// ParseDevice parses one device configuration text, auto-detecting the
// vendor dialect.
func ParseDevice(name, text string) (*Device, error) {
	switch DetectVendor(text) {
	case "beta":
		return ParseBeta(name, text)
	default:
		return ParseAlpha(name, text)
	}
}

// Serialize renders the device back into its own vendor's dialect.
func Serialize(d *Device) string {
	if d.Vendor == "beta" {
		return SerializeBeta(d)
	}
	return SerializeAlpha(d)
}

// BuildOptions tunes network-model building.
type BuildOptions struct {
	// Parallelism bounds the worker pool parsing device configurations
	// (par conventions: 0 = GOMAXPROCS, 1 = sequential).
	Parallelism int
}

// BuildNetwork is the network-model-building service (§2.2): it parses all
// device configuration texts and pairs them with the monitored topology into
// the base network model. Parsing runs sequentially; use BuildNetworkOpts to
// parse devices concurrently.
func BuildNetwork(configs map[string]string, topoOf func(net *Network) error) (*Network, error) {
	return BuildNetworkOpts(configs, topoOf, BuildOptions{Parallelism: 1})
}

// BuildNetworkOpts is BuildNetwork with tuning: each device text parses
// independently on the worker pool into its own slot (devices are sorted by
// name first, so the reported error is the lexically-first failing device at
// any parallelism); the Network is then assembled single-threaded.
func BuildNetworkOpts(configs map[string]string, topoOf func(net *Network) error, opts BuildOptions) (*Network, error) {
	names := make([]string, 0, len(configs))
	for name := range configs {
		names = append(names, name)
	}
	slices.Sort(names)

	devs := make([]*Device, len(names))
	errs := make([]error, len(names))
	par.ForEach(opts.Parallelism, len(names), func(i int) {
		devs[i], errs[i] = ParseDevice(names[i], configs[names[i]])
	})

	net := NewNetwork()
	for i := range names {
		if errs[i] != nil {
			return nil, fmt.Errorf("config: building model: %w", errs[i])
		}
		net.Devices[devs[i].Name] = devs[i]
	}
	if topoOf != nil {
		if err := topoOf(net); err != nil {
			return nil, err
		}
	}
	return net, nil
}

// ApplyCommands applies a block of change-plan command lines to the device,
// using the device's own dialect, maintaining section context across lines
// exactly like a CLI session. The device is modified in place; callers apply
// change plans to a Clone of the base model.
func ApplyCommands(d *Device, commands string) error {
	lines := splitLines(commands)
	if d.Vendor == "beta" {
		p := &betaParser{d: d}
		for _, l := range lines {
			if err := p.line(l.n, l.text); err != nil {
				return err
			}
		}
	} else {
		p := &alphaParser{d: d}
		for _, l := range lines {
			if err := p.line(l.n, l.text); err != nil {
				return err
			}
		}
	}
	for _, rm := range d.RouteMaps {
		rm.SortNodes()
	}
	return nil
}
