package config

import (
	"fmt"
	"net/netip"
	"strings"

	"hoyan/internal/netmodel"
	"hoyan/internal/policy"
	"slices"
)

// alphaParser parses the vendor-alpha dialect (IOS-flavoured): sections are
// introduced by a header line and terminated by "!" or the next top-level
// command. Removal uses a leading "no ".
type alphaParser struct {
	d *Device

	curIface *Interface
	curVRF   *VRF
	inBGP    bool
	curNode  *policy.Node
}

func (p *alphaParser) resetSection() {
	p.curIface, p.curVRF, p.curNode = nil, nil, nil
	p.inBGP = false
}

// ParseAlpha parses a full vendor-alpha configuration text.
func ParseAlpha(name, text string) (*Device, error) {
	d := NewDevice(name, "alpha")
	p := &alphaParser{d: d}
	lines := splitLines(text)
	d.Lines = len(lines)
	for _, l := range lines {
		if err := p.line(l.n, l.text); err != nil {
			return nil, err
		}
	}
	for _, rm := range d.RouteMaps {
		rm.SortNodes()
	}
	return d, nil
}

// ApplyAlphaCommand applies one change-plan command line to the device,
// maintaining section context across calls through the returned parser. Used
// by the change package, which feeds command blocks line by line.
func (p *alphaParser) line(lineNo int, s string) error {
	f := strings.Fields(s)
	if len(f) == 0 {
		return nil
	}
	if f[0] == "!" {
		p.resetSection()
		return nil
	}
	if f[0] == "no" {
		return p.noCommand(lineNo, s, f[1:])
	}
	d := p.d
	fail := func(reason string) error { return parseErr(d.Name, lineNo, s, reason) }

	switch f[0] {
	case "hostname":
		if len(f) != 2 {
			return fail("hostname NAME")
		}
		d.Name = f[1]
		p.resetSection()
		return nil
	case "vendor":
		p.resetSection()
		return nil // informational
	case "asn":
		if len(f) != 2 {
			return fail("asn N")
		}
		n, err := parseUint32(f[1])
		if err != nil {
			return fail("bad asn")
		}
		d.ASN = netmodel.ASN(n)
		p.resetSection()
		return nil
	case "router-id":
		a, err := netip.ParseAddr(f[1])
		if err != nil {
			return fail("bad router-id")
		}
		d.RouterID = a
		p.resetSection()
		return nil
	case "loopback":
		a, err := netip.ParseAddr(f[1])
		if err != nil {
			return fail("bad loopback")
		}
		d.Loopback = a
		p.resetSection()
		return nil
	case "isis":
		if p.curIface != nil {
			return p.ifaceLine(lineNo, s, f)
		}
		if len(f) == 2 && f[1] == "enable" {
			d.ISISEnabled = true
			p.resetSection()
			return nil
		}
		return fail("isis enable")
	case "isolate":
		d.Isolated = true
		p.resetSection()
		return nil
	case "interface":
		if len(f) != 2 {
			return fail("interface NAME")
		}
		p.resetSection()
		i, ok := d.Interfaces[f[1]]
		if !ok {
			i = &Interface{Name: f[1]}
			d.Interfaces[f[1]] = i
		}
		p.curIface = i
		return nil
	case "vrf":
		if len(f) != 2 {
			return fail("vrf NAME")
		}
		p.resetSection()
		v, ok := d.VRFs[f[1]]
		if !ok {
			v = &VRF{Name: f[1]}
			d.VRFs[f[1]] = v
		}
		p.curVRF = v
		return nil
	case "router":
		if len(f) == 2 && f[1] == "bgp" {
			p.resetSection()
			p.inBGP = true
			return nil
		}
		return fail("router bgp")
	case "route-map":
		// route-map NAME [permit|deny] SEQ
		p.resetSection()
		if len(f) < 3 {
			return fail("route-map NAME [permit|deny] SEQ")
		}
		name := f[1]
		action := policy.ActionUnset
		seqIdx := 2
		if permit, ok := permitDeny(f[2]); ok {
			if permit {
				action = policy.ActionPermit
			} else {
				action = policy.ActionDeny
			}
			seqIdx = 3
		}
		if len(f) <= seqIdx {
			return fail("route-map needs sequence number")
		}
		seq, err := parseInt(f[seqIdx])
		if err != nil {
			return fail("bad sequence number")
		}
		rm, ok := d.RouteMaps[name]
		if !ok {
			rm = &policy.RouteMap{Name: name}
			d.RouteMaps[name] = rm
		}
		node := rm.Node(seq)
		if node == nil {
			node = &policy.Node{Seq: seq}
			rm.Nodes = append(rm.Nodes, node)
			rm.SortNodes()
		}
		node.Action = action
		p.curNode = node
		return nil
	case "match":
		return p.matchLine(lineNo, s, f)
	case "set":
		return p.setLine(lineNo, s, f)
	case "ip", "ipv6":
		return p.ipLine(lineNo, s, f)
	case "sr-policy":
		// sr-policy NAME endpoint A color N [segments D...]
		p.resetSection()
		return p.srPolicyLine(lineNo, s, f)
	case "pbr-policy":
		p.resetSection()
		return p.pbrLine(lineNo, s, f)
	case "max-paths", "neighbor", "aggregate-address", "redistribute", "network":
		if !p.inBGP {
			return fail(f[0] + " outside router bgp")
		}
		return p.bgpLine(lineNo, s, f)
	}
	// Section-scoped continuation lines.
	if p.curIface != nil {
		return p.ifaceLine(lineNo, s, f)
	}
	if p.curVRF != nil {
		return p.vrfLine(lineNo, s, f)
	}
	return fail("unknown command")
}

func (p *alphaParser) ifaceLine(lineNo int, s string, f []string) error {
	d, i := p.d, p.curIface
	fail := func(reason string) error { return parseErr(d.Name, lineNo, s, reason) }
	switch {
	case f[0] == "ip" && len(f) == 3 && f[1] == "address":
		pr, err := netip.ParsePrefix(f[2])
		if err != nil {
			return fail("bad address")
		}
		i.Addr = pr
	case f[0] == "isis" && len(f) == 3 && f[1] == "cost":
		c, err := parseUint32(f[2])
		if err != nil {
			return fail("bad cost")
		}
		i.ISISCost = c
	case f[0] == "isis" && len(f) == 3 && f[1] == "te-cost":
		c, err := parseUint32(f[2])
		if err != nil {
			return fail("bad te-cost")
		}
		i.TECost = c
	case f[0] == "bandwidth" && len(f) == 2:
		var bw float64
		if _, err := fmt.Sscanf(f[1], "%g", &bw); err != nil {
			return fail("bad bandwidth")
		}
		i.Bandwidth = bw
	case f[0] == "acl-in" && len(f) == 2:
		i.ACLIn = f[1]
	case f[0] == "acl-out" && len(f) == 2:
		i.ACLOut = f[1]
	case f[0] == "pbr" && len(f) == 2:
		i.PBR = f[1]
	default:
		return fail("unknown interface command")
	}
	return nil
}

func (p *alphaParser) vrfLine(lineNo int, s string, f []string) error {
	d, v := p.d, p.curVRF
	fail := func(reason string) error { return parseErr(d.Name, lineNo, s, reason) }
	switch {
	case f[0] == "rd" && len(f) == 2:
		v.RD = f[1]
	case f[0] == "route-target" && len(f) == 3 && f[1] == "import":
		v.ImportRTs = append(v.ImportRTs, f[2])
	case f[0] == "route-target" && len(f) == 3 && f[1] == "export":
		v.ExportRTs = append(v.ExportRTs, f[2])
	case f[0] == "export-policy" && len(f) == 2:
		v.ExportPolicy = f[1]
	default:
		return fail("unknown vrf command")
	}
	return nil
}

func (p *alphaParser) bgpLine(lineNo int, s string, f []string) error {
	d := p.d
	fail := func(reason string) error { return parseErr(d.Name, lineNo, s, reason) }
	switch f[0] {
	case "max-paths":
		if len(f) != 2 {
			return fail("max-paths N")
		}
		n, err := parseInt(f[1])
		if err != nil {
			return fail("bad max-paths")
		}
		d.MaxPaths = n
	case "network":
		if len(f) != 2 {
			return fail("network PREFIX")
		}
		pr, err := netip.ParsePrefix(f[1])
		if err != nil {
			return fail("bad prefix")
		}
		d.Networks = append(d.Networks, pr)
	case "neighbor":
		return p.neighborLine(lineNo, s, f)
	case "aggregate-address":
		// aggregate-address PREFIX [as-set] [summary-only] [vrf NAME]
		if len(f) < 2 {
			return fail("aggregate-address PREFIX")
		}
		pr, err := netip.ParsePrefix(f[1])
		if err != nil {
			return fail("bad prefix")
		}
		agg := Aggregate{VRF: netmodel.DefaultVRF, Prefix: pr}
		rest := f[2:]
		for i := 0; i < len(rest); i++ {
			switch rest[i] {
			case "as-set":
				agg.ASSet = true
			case "summary-only":
				agg.SummaryOnly = true
			case "vrf":
				if i+1 >= len(rest) {
					return fail("vrf NAME")
				}
				agg.VRF = rest[i+1]
				i++
			default:
				return fail("unknown aggregate token")
			}
		}
		d.Aggregates = append(d.Aggregates, agg)
	case "redistribute":
		// redistribute static|direct|isis [route-map NAME]
		if len(f) < 2 {
			return fail("redistribute PROTO")
		}
		proto, err := protoFromString(f[1])
		if err != nil {
			return fail(err.Error())
		}
		r := Redistribution{From: proto}
		if len(f) == 4 && f[2] == "route-map" {
			r.Policy = f[3]
		} else if len(f) != 2 {
			return fail("redistribute PROTO [route-map NAME]")
		}
		d.Redistributes = append(d.Redistributes, r)
	}
	return nil
}

func (p *alphaParser) neighborLine(lineNo int, s string, f []string) error {
	d := p.d
	fail := func(reason string) error { return parseErr(d.Name, lineNo, s, reason) }
	if len(f) < 3 {
		return fail("neighbor ADDR CMD")
	}
	addr, err := netip.ParseAddr(f[1])
	if err != nil {
		return fail("bad neighbor address")
	}
	// Optional trailing "vrf NAME".
	vrf := netmodel.DefaultVRF
	rest := f[2:]
	if len(rest) >= 2 && rest[len(rest)-2] == "vrf" {
		vrf = rest[len(rest)-1]
		rest = rest[:len(rest)-2]
	}
	nb := d.Neighbor(addr, vrf)
	ensure := func() *Neighbor {
		if nb == nil {
			nb = &Neighbor{Addr: addr, VRF: vrf}
			d.Neighbors = append(d.Neighbors, nb)
		}
		return nb
	}
	switch rest[0] {
	case "remote-as":
		if len(rest) != 2 {
			return fail("remote-as N")
		}
		n, err := parseUint32(rest[1])
		if err != nil {
			return fail("bad remote-as")
		}
		ensure().RemoteAS = netmodel.ASN(n)
	case "route-map":
		if len(rest) != 3 {
			return fail("route-map NAME in|out")
		}
		switch rest[2] {
		case "in":
			ensure().ImportPolicy = rest[1]
		case "out":
			ensure().ExportPolicy = rest[1]
		default:
			return fail("route-map direction must be in|out")
		}
	case "route-reflector-client":
		ensure().RRClient = true
	case "next-hop-self":
		ensure().NextHopSelf = true
	case "update-source":
		ensure().UpdateSource = true
	case "add-paths":
		if len(rest) != 2 {
			return fail("add-paths N")
		}
		n, err := parseInt(rest[1])
		if err != nil {
			return fail("bad add-paths")
		}
		ensure().AddPaths = n
	default:
		return fail("unknown neighbor command")
	}
	return nil
}

func (p *alphaParser) matchLine(lineNo int, s string, f []string) error {
	d := p.d
	fail := func(reason string) error { return parseErr(d.Name, lineNo, s, reason) }
	if p.curNode == nil {
		return fail("match outside route-map")
	}
	if len(f) < 3 {
		return fail("match KIND NAME")
	}
	switch f[1] {
	case "ip-prefix":
		p.curNode.Matches = append(p.curNode.Matches, policy.Match{Kind: policy.MatchPrefixList, ListName: f[2]})
	case "community":
		p.curNode.Matches = append(p.curNode.Matches, policy.Match{Kind: policy.MatchCommunityList, ListName: f[2]})
	case "as-path":
		p.curNode.Matches = append(p.curNode.Matches, policy.Match{Kind: policy.MatchASPathList, ListName: f[2]})
	case "protocol":
		proto, err := protoFromString(f[2])
		if err != nil {
			return fail(err.Error())
		}
		p.curNode.Matches = append(p.curNode.Matches, policy.Match{Kind: policy.MatchProtocol, Protocol: proto})
	case "peer":
		a, err := netip.ParseAddr(f[2])
		if err != nil {
			return fail("bad peer address")
		}
		p.curNode.Matches = append(p.curNode.Matches, policy.Match{Kind: policy.MatchPeerAddr, Addr: a})
	default:
		return fail("unknown match kind")
	}
	return nil
}

func (p *alphaParser) setLine(lineNo int, s string, f []string) error {
	d := p.d
	fail := func(reason string) error { return parseErr(d.Name, lineNo, s, reason) }
	if p.curNode == nil {
		return fail("set outside route-map")
	}
	add := func(st policy.Set) { p.curNode.Sets = append(p.curNode.Sets, st) }
	if len(f) < 3 {
		return fail("set KIND VALUE")
	}
	switch f[1] {
	case "local-preference", "med", "weight", "preference":
		v, err := parseUint32(f[2])
		if err != nil {
			return fail("bad value")
		}
		kind := map[string]policy.SetKind{
			"local-preference": policy.SetLocalPref,
			"med":              policy.SetMED,
			"weight":           policy.SetWeight,
			"preference":       policy.SetPreference,
		}[f[1]]
		add(policy.Set{Kind: kind, Value: v})
	case "community":
		switch f[2] {
		case "add", "delete":
			if len(f) != 4 {
				return fail("set community add|delete C")
			}
			c, err := netmodel.ParseCommunity(f[3])
			if err != nil {
				return fail("bad community")
			}
			kind := policy.AddCommunity
			if f[2] == "delete" {
				kind = policy.DeleteCommunity
			}
			add(policy.Set{Kind: kind, Community: c})
		default: // replace with the listed set
			var cs netmodel.CommunitySet
			for _, tok := range f[2:] {
				c, err := netmodel.ParseCommunity(tok)
				if err != nil {
					return fail("bad community")
				}
				cs = cs.Add(c)
			}
			add(policy.Set{Kind: policy.SetCommunity, Communities: cs})
		}
	case "next-hop":
		a, err := netip.ParseAddr(f[2])
		if err != nil {
			return fail("bad next-hop")
		}
		add(policy.Set{Kind: policy.SetNextHop, NextHop: a})
	case "as-path":
		if len(f) < 4 {
			return fail("set as-path prepend|replace ...")
		}
		switch f[2] {
		case "prepend":
			// set as-path prepend ASN COUNT
			asn, err := parseUint32(f[3])
			if err != nil {
				return fail("bad asn")
			}
			count := uint32(1)
			if len(f) == 5 {
				if count, err = parseUint32(f[4]); err != nil {
					return fail("bad count")
				}
			}
			add(policy.Set{Kind: policy.PrependASPath, ASN: netmodel.ASN(asn), Value: count})
		case "replace":
			var seq []netmodel.ASN
			for _, tok := range f[3:] {
				n, err := parseUint32(tok)
				if err != nil {
					return fail("bad asn")
				}
				seq = append(seq, netmodel.ASN(n))
			}
			add(policy.Set{Kind: policy.ReplaceASPath, ASPath: netmodel.ASPath{Seq: seq}})
		default:
			return fail("unknown as-path action")
		}
	default:
		return fail("unknown set kind")
	}
	return nil
}

// ipLine handles top-level "ip ..." and "ipv6 ..." commands.
func (p *alphaParser) ipLine(lineNo int, s string, f []string) error {
	d := p.d
	fail := func(reason string) error { return parseErr(d.Name, lineNo, s, reason) }
	if p.curIface != nil && f[0] == "ip" && len(f) >= 2 && f[1] == "address" {
		return p.ifaceLine(lineNo, s, f)
	}
	p.resetSection()
	if len(f) < 3 {
		return fail("incomplete ip command")
	}
	family := policy.FamilyIPv4
	if f[0] == "ipv6" {
		family = policy.FamilyIPv6
	}
	switch f[1] {
	case "prefix-list":
		// ip prefix-list NAME permit|deny PREFIX [ge N] [le N]
		if len(f) < 5 {
			return fail("ip prefix-list NAME permit|deny PREFIX")
		}
		name := f[2]
		permit, ok := permitDeny(f[3])
		if !ok {
			return fail("want permit|deny")
		}
		pr, err := netip.ParsePrefix(f[4])
		if err != nil {
			return fail("bad prefix")
		}
		ge, le, err := parseGeLe(f[5:], "ge", "le")
		if err != nil {
			return fail(err.Error())
		}
		l, ok := d.PrefixLists[name]
		if !ok {
			l = &policy.PrefixList{Name: name, Family: family}
			d.PrefixLists[name] = l
		}
		l.Entries = append(l.Entries, policy.PrefixEntry{Permit: permit, Prefix: pr, Ge: ge, Le: le})
	case "community-list":
		if len(f) != 5 {
			return fail("ip community-list NAME permit|deny C")
		}
		name := f[2]
		permit, ok := permitDeny(f[3])
		if !ok {
			return fail("want permit|deny")
		}
		c, err := netmodel.ParseCommunity(f[4])
		if err != nil {
			return fail("bad community")
		}
		l, ok := d.CommunityLists[name]
		if !ok {
			l = &policy.CommunityList{Name: name}
			d.CommunityLists[name] = l
		}
		l.Entries = append(l.Entries, policy.CommunityEntry{Permit: permit, Community: c})
	case "as-path-list":
		if len(f) < 5 {
			return fail("ip as-path-list NAME permit|deny REGEX")
		}
		name := f[2]
		permit, ok := permitDeny(f[3])
		if !ok {
			return fail("want permit|deny")
		}
		regex := strings.Trim(strings.Join(f[4:], " "), `"`)
		l, ok := d.ASPathLists[name]
		if !ok {
			l = &policy.ASPathList{Name: name}
			d.ASPathLists[name] = l
		}
		l.Entries = append(l.Entries, policy.ASPathEntry{Permit: permit, Regex: regex})
	case "access-list":
		// ip access-list NAME permit|deny [clauses]
		if len(f) < 4 {
			return fail("ip access-list NAME permit|deny ...")
		}
		name := f[2]
		permit, ok := permitDeny(f[3])
		if !ok {
			return fail("want permit|deny")
		}
		e, err := parseACLClause(f[4:])
		if err != nil {
			return fail(err.Error())
		}
		e.Permit = permit
		a, ok := d.ACLs[name]
		if !ok {
			a = &policy.ACL{Name: name}
			d.ACLs[name] = a
		}
		a.Entries = append(a.Entries, e)
	case "route":
		// ip route PREFIX NEXTHOP [pref N] [vrf NAME]
		if len(f) < 4 {
			return fail("ip route PREFIX NEXTHOP")
		}
		pr, err := netip.ParsePrefix(f[2])
		if err != nil {
			return fail("bad prefix")
		}
		nh, err := netip.ParseAddr(f[3])
		if err != nil {
			return fail("bad next hop")
		}
		st := StaticRoute{VRF: netmodel.DefaultVRF, Prefix: pr, NextHop: nh, Preference: 1}
		rest := f[4:]
		for i := 0; i < len(rest); i += 2 {
			if i+1 >= len(rest) {
				return fail("dangling option")
			}
			switch rest[i] {
			case "pref":
				v, err := parseUint32(rest[i+1])
				if err != nil {
					return fail("bad pref")
				}
				st.Preference = v
			case "vrf":
				st.VRF = rest[i+1]
			default:
				return fail("unknown static option")
			}
		}
		d.Statics = append(d.Statics, st)
	default:
		return fail("unknown ip command")
	}
	return nil
}

func (p *alphaParser) srPolicyLine(lineNo int, s string, f []string) error {
	d := p.d
	fail := func(reason string) error { return parseErr(d.Name, lineNo, s, reason) }
	// sr-policy NAME endpoint ADDR color N [segments D1 D2 ...]
	if len(f) < 6 || f[2] != "endpoint" || f[4] != "color" {
		return fail("sr-policy NAME endpoint ADDR color N [segments ...]")
	}
	ep, err := netip.ParseAddr(f[3])
	if err != nil {
		return fail("bad endpoint")
	}
	color, err := parseUint32(f[5])
	if err != nil {
		return fail("bad color")
	}
	sp := &SRPolicy{Name: f[1], Endpoint: ep, Color: color}
	if len(f) > 6 {
		if f[6] != "segments" {
			return fail("want segments")
		}
		sp.Segments = append(sp.Segments, f[7:]...)
	}
	// Re-declaration replaces.
	for i, old := range d.SRPolicies {
		if old.Name == sp.Name {
			d.SRPolicies[i] = sp
			return nil
		}
	}
	d.SRPolicies = append(d.SRPolicies, sp)
	return nil
}

func (p *alphaParser) pbrLine(lineNo int, s string, f []string) error {
	d := p.d
	fail := func(reason string) error { return parseErr(d.Name, lineNo, s, reason) }
	// pbr-policy NAME [clauses] next-hop ADDR
	if len(f) < 4 {
		return fail("pbr-policy NAME ... next-hop ADDR")
	}
	name := f[1]
	if f[len(f)-2] != "next-hop" {
		return fail("pbr-policy must end with next-hop ADDR")
	}
	nh, err := netip.ParseAddr(f[len(f)-1])
	if err != nil {
		return fail("bad next-hop")
	}
	e, err := parseACLClause(f[2 : len(f)-2])
	if err != nil {
		return fail(err.Error())
	}
	e.Permit = true
	d.PBRPolicies[name] = append(d.PBRPolicies[name], PBRRule{Name: name, Match: e, NextHop: nh})
	return nil
}

// noCommand handles removals: "no route-map NAME [permit|deny] SEQ",
// "no route-map NAME", "no neighbor ADDR [vrf NAME]", "no ip route ...",
// "no aggregate-address PREFIX", "no sr-policy NAME", "no ip prefix-list NAME",
// "no interface pbr" style removals used by change plans.
func (p *alphaParser) noCommand(lineNo int, s string, f []string) error {
	d := p.d
	fail := func(reason string) error { return parseErr(d.Name, lineNo, s, reason) }
	if len(f) == 0 {
		return fail("empty no command")
	}
	switch f[0] {
	case "isolate":
		d.Isolated = false
		return nil
	case "route-map":
		switch len(f) {
		case 2:
			delete(d.RouteMaps, f[1])
			return nil
		case 3, 4:
			rm := d.RouteMaps[f[1]]
			if rm == nil {
				return fail("no such route-map")
			}
			seqTok := f[len(f)-1]
			seq, err := parseInt(seqTok)
			if err != nil {
				return fail("bad sequence")
			}
			if !rm.DeleteNode(seq) {
				return fail("no such node")
			}
			return nil
		}
		return fail("no route-map NAME [ACTION] [SEQ]")
	case "neighbor":
		if len(f) < 2 {
			return fail("no neighbor ADDR")
		}
		addr, err := netip.ParseAddr(f[1])
		if err != nil {
			return fail("bad address")
		}
		vrf := netmodel.DefaultVRF
		if len(f) == 4 && f[2] == "vrf" {
			vrf = f[3]
		}
		if len(f) == 4 && f[2] == "route-map" {
			// no neighbor ADDR route-map in|out : unbind policy
			nb := d.Neighbor(addr, vrf)
			if nb == nil {
				return fail("no such neighbor")
			}
			if f[3] == "in" {
				nb.ImportPolicy = ""
			} else {
				nb.ExportPolicy = ""
			}
			return nil
		}
		if !d.RemoveNeighbor(addr, vrf) {
			return fail("no such neighbor")
		}
		return nil
	case "ip":
		if len(f) >= 4 && f[1] == "route" {
			pr, err := netip.ParsePrefix(f[2])
			if err != nil {
				return fail("bad prefix")
			}
			nh, err := netip.ParseAddr(f[3])
			if err != nil {
				return fail("bad next hop")
			}
			vrf := netmodel.DefaultVRF
			if len(f) == 6 && f[4] == "vrf" {
				vrf = f[5]
			}
			for i, st := range d.Statics {
				if st.Prefix == pr && st.NextHop == nh && st.VRF == vrf {
					d.Statics = append(d.Statics[:i], d.Statics[i+1:]...)
					return nil
				}
			}
			return fail("no such static route")
		}
		if len(f) == 3 && f[1] == "prefix-list" {
			delete(d.PrefixLists, f[2])
			return nil
		}
		if len(f) == 3 && f[1] == "community-list" {
			delete(d.CommunityLists, f[2])
			return nil
		}
		if len(f) == 3 && f[1] == "access-list" {
			delete(d.ACLs, f[2])
			return nil
		}
		return fail("unknown no ip command")
	case "aggregate-address":
		if len(f) < 2 {
			return fail("no aggregate-address PREFIX")
		}
		pr, err := netip.ParsePrefix(f[1])
		if err != nil {
			return fail("bad prefix")
		}
		for i, a := range d.Aggregates {
			if a.Prefix == pr {
				d.Aggregates = append(d.Aggregates[:i], d.Aggregates[i+1:]...)
				return nil
			}
		}
		return fail("no such aggregate")
	case "sr-policy":
		if len(f) != 2 {
			return fail("no sr-policy NAME")
		}
		for i, sp := range d.SRPolicies {
			if sp.Name == f[1] {
				d.SRPolicies = append(d.SRPolicies[:i], d.SRPolicies[i+1:]...)
				return nil
			}
		}
		return fail("no such sr-policy")
	case "pbr-policy":
		if len(f) != 2 {
			return fail("no pbr-policy NAME")
		}
		delete(d.PBRPolicies, f[1])
		return nil
	case "network":
		if len(f) != 2 {
			return fail("no network PREFIX")
		}
		pr, err := netip.ParsePrefix(f[1])
		if err != nil {
			return fail("bad prefix")
		}
		for i, n := range d.Networks {
			if n == pr {
				d.Networks = append(d.Networks[:i], d.Networks[i+1:]...)
				return nil
			}
		}
		return fail("no such network")
	}
	return fail("unknown no command")
}

func protoFromString(s string) (netmodel.Protocol, error) {
	switch s {
	case "static":
		return netmodel.ProtoStatic, nil
	case "direct":
		return netmodel.ProtoDirect, nil
	case "isis":
		return netmodel.ProtoISIS, nil
	case "bgp":
		return netmodel.ProtoBGP, nil
	case "aggregate":
		return netmodel.ProtoAggregate, nil
	}
	return 0, fmt.Errorf("unknown protocol %q", s)
}

// SerializeAlpha renders a device model back into vendor-alpha configuration
// text. Parse(SerializeAlpha(d)) reproduces d; the synthetic-config generator
// uses this to hand Hoyan realistic config text to parse.
func SerializeAlpha(d *Device) string {
	var b strings.Builder
	fmt.Fprintf(&b, "hostname %s\nvendor alpha\nasn %d\n", d.Name, d.ASN)
	if d.RouterID.IsValid() {
		fmt.Fprintf(&b, "router-id %s\n", d.RouterID)
	}
	if d.Loopback.IsValid() {
		fmt.Fprintf(&b, "loopback %s\n", d.Loopback)
	}
	if d.ISISEnabled {
		b.WriteString("isis enable\n")
	}
	if d.Isolated {
		b.WriteString("isolate\n")
	}
	b.WriteString("!\n")
	for _, name := range sortedKeys(d.Interfaces) {
		i := d.Interfaces[name]
		fmt.Fprintf(&b, "interface %s\n", name)
		if i.Addr.IsValid() {
			fmt.Fprintf(&b, " ip address %s\n", i.Addr)
		}
		if i.ISISCost != 0 {
			fmt.Fprintf(&b, " isis cost %d\n", i.ISISCost)
		}
		if i.TECost != 0 {
			fmt.Fprintf(&b, " isis te-cost %d\n", i.TECost)
		}
		if i.Bandwidth != 0 {
			fmt.Fprintf(&b, " bandwidth %g\n", i.Bandwidth)
		}
		if i.ACLIn != "" {
			fmt.Fprintf(&b, " acl-in %s\n", i.ACLIn)
		}
		if i.ACLOut != "" {
			fmt.Fprintf(&b, " acl-out %s\n", i.ACLOut)
		}
		if i.PBR != "" {
			fmt.Fprintf(&b, " pbr %s\n", i.PBR)
		}
		b.WriteString("!\n")
	}
	for _, name := range sortedKeys(d.VRFs) {
		v := d.VRFs[name]
		fmt.Fprintf(&b, "vrf %s\n", name)
		if v.RD != "" {
			fmt.Fprintf(&b, " rd %s\n", v.RD)
		}
		for _, rt := range v.ImportRTs {
			fmt.Fprintf(&b, " route-target import %s\n", rt)
		}
		for _, rt := range v.ExportRTs {
			fmt.Fprintf(&b, " route-target export %s\n", rt)
		}
		if v.ExportPolicy != "" {
			fmt.Fprintf(&b, " export-policy %s\n", v.ExportPolicy)
		}
		b.WriteString("!\n")
	}
	if len(d.Neighbors) > 0 || len(d.Aggregates) > 0 || len(d.Redistributes) > 0 || len(d.Networks) > 0 || d.MaxPaths > 1 {
		b.WriteString("router bgp\n")
		if d.MaxPaths > 1 {
			fmt.Fprintf(&b, " max-paths %d\n", d.MaxPaths)
		}
		for _, nb := range d.Neighbors {
			suffix := ""
			if nb.VRF != netmodel.DefaultVRF {
				suffix = " vrf " + nb.VRF
			}
			fmt.Fprintf(&b, " neighbor %s remote-as %d%s\n", nb.Addr, nb.RemoteAS, suffix)
			if nb.ImportPolicy != "" {
				fmt.Fprintf(&b, " neighbor %s route-map %s in%s\n", nb.Addr, nb.ImportPolicy, suffix)
			}
			if nb.ExportPolicy != "" {
				fmt.Fprintf(&b, " neighbor %s route-map %s out%s\n", nb.Addr, nb.ExportPolicy, suffix)
			}
			if nb.RRClient {
				fmt.Fprintf(&b, " neighbor %s route-reflector-client%s\n", nb.Addr, suffix)
			}
			if nb.NextHopSelf {
				fmt.Fprintf(&b, " neighbor %s next-hop-self%s\n", nb.Addr, suffix)
			}
			if nb.UpdateSource {
				fmt.Fprintf(&b, " neighbor %s update-source%s\n", nb.Addr, suffix)
			}
			if nb.AddPaths > 1 {
				fmt.Fprintf(&b, " neighbor %s add-paths %d%s\n", nb.Addr, nb.AddPaths, suffix)
			}
		}
		for _, n := range d.Networks {
			fmt.Fprintf(&b, " network %s\n", n)
		}
		for _, a := range d.Aggregates {
			line := " aggregate-address " + a.Prefix.String()
			if a.ASSet {
				line += " as-set"
			}
			if a.SummaryOnly {
				line += " summary-only"
			}
			if a.VRF != netmodel.DefaultVRF {
				line += " vrf " + a.VRF
			}
			b.WriteString(line + "\n")
		}
		for _, r := range d.Redistributes {
			line := " redistribute " + r.From.String()
			if r.Policy != "" {
				line += " route-map " + r.Policy
			}
			b.WriteString(line + "\n")
		}
		b.WriteString("!\n")
	}
	for _, name := range sortedKeys(d.RouteMaps) {
		rm := d.RouteMaps[name]
		for _, n := range rm.Nodes {
			action := ""
			switch n.Action {
			case policy.ActionPermit:
				action = "permit "
			case policy.ActionDeny:
				action = "deny "
			}
			fmt.Fprintf(&b, "route-map %s %s%d\n", name, action, n.Seq)
			for _, m := range n.Matches {
				switch m.Kind {
				case policy.MatchPrefixList:
					fmt.Fprintf(&b, " match ip-prefix %s\n", m.ListName)
				case policy.MatchCommunityList:
					fmt.Fprintf(&b, " match community %s\n", m.ListName)
				case policy.MatchASPathList:
					fmt.Fprintf(&b, " match as-path %s\n", m.ListName)
				case policy.MatchProtocol:
					fmt.Fprintf(&b, " match protocol %s\n", m.Protocol)
				case policy.MatchPeerAddr:
					fmt.Fprintf(&b, " match peer %s\n", m.Addr)
				}
			}
			for _, st := range n.Sets {
				switch st.Kind {
				case policy.SetLocalPref:
					fmt.Fprintf(&b, " set local-preference %d\n", st.Value)
				case policy.SetMED:
					fmt.Fprintf(&b, " set med %d\n", st.Value)
				case policy.SetWeight:
					fmt.Fprintf(&b, " set weight %d\n", st.Value)
				case policy.SetPreference:
					fmt.Fprintf(&b, " set preference %d\n", st.Value)
				case policy.SetCommunity:
					fmt.Fprintf(&b, " set community %s\n", strings.Join(st.Communities.Strings(), " "))
				case policy.AddCommunity:
					fmt.Fprintf(&b, " set community add %s\n", st.Community)
				case policy.DeleteCommunity:
					fmt.Fprintf(&b, " set community delete %s\n", st.Community)
				case policy.SetNextHop:
					fmt.Fprintf(&b, " set next-hop %s\n", st.NextHop)
				case policy.PrependASPath:
					fmt.Fprintf(&b, " set as-path prepend %d %d\n", st.ASN, st.Value)
				case policy.ReplaceASPath:
					parts := make([]string, len(st.ASPath.Seq))
					for i, a := range st.ASPath.Seq {
						parts[i] = fmt.Sprintf("%d", a)
					}
					fmt.Fprintf(&b, " set as-path replace %s\n", strings.Join(parts, " "))
				}
			}
			b.WriteString("!\n")
		}
	}
	for _, name := range sortedKeys(d.PrefixLists) {
		l := d.PrefixLists[name]
		kw := "ip"
		if l.Family == policy.FamilyIPv6 {
			kw = "ipv6"
		}
		for _, e := range l.Entries {
			line := fmt.Sprintf("%s prefix-list %s %s %s", kw, name, pd(e.Permit), e.Prefix)
			if e.Ge != 0 {
				line += fmt.Sprintf(" ge %d", e.Ge)
			}
			if e.Le != 0 {
				line += fmt.Sprintf(" le %d", e.Le)
			}
			b.WriteString(line + "\n")
		}
	}
	for _, name := range sortedKeys(d.CommunityLists) {
		for _, e := range d.CommunityLists[name].Entries {
			fmt.Fprintf(&b, "ip community-list %s %s %s\n", name, pd(e.Permit), e.Community)
		}
	}
	for _, name := range sortedKeys(d.ASPathLists) {
		for _, e := range d.ASPathLists[name].Entries {
			fmt.Fprintf(&b, "ip as-path-list %s %s \"%s\"\n", name, pd(e.Permit), e.Regex)
		}
	}
	for _, name := range sortedKeys(d.ACLs) {
		for _, e := range d.ACLs[name].Entries {
			line := fmt.Sprintf("ip access-list %s %s", name, pd(e.Permit))
			if c := formatACLClause(e); c != "" {
				line += " " + c
			}
			b.WriteString(line + "\n")
		}
	}
	for _, st := range d.Statics {
		line := fmt.Sprintf("ip route %s %s", st.Prefix, st.NextHop)
		if st.Preference != 1 {
			line += fmt.Sprintf(" pref %d", st.Preference)
		}
		if st.VRF != netmodel.DefaultVRF {
			line += " vrf " + st.VRF
		}
		b.WriteString(line + "\n")
	}
	for _, sp := range d.SRPolicies {
		line := fmt.Sprintf("sr-policy %s endpoint %s color %d", sp.Name, sp.Endpoint, sp.Color)
		if len(sp.Segments) > 0 {
			line += " segments " + strings.Join(sp.Segments, " ")
		}
		b.WriteString(line + "\n")
	}
	for _, name := range sortedKeys(d.PBRPolicies) {
		for _, r := range d.PBRPolicies[name] {
			line := "pbr-policy " + name
			if c := formatACLClause(r.Match); c != "" {
				line += " " + c
			}
			line += " next-hop " + r.NextHop.String()
			b.WriteString(line + "\n")
		}
	}
	return b.String()
}

func pd(permit bool) string {
	if permit {
		return "permit"
	}
	return "deny"
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	slices.Sort(out)
	return out
}
