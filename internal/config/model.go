// Package config holds Hoyan's internal network model — the vendor-neutral
// representation every device configuration is parsed into — together with
// parsers and serializers for the two synthetic vendor dialects (alpha and
// beta) and incremental application of change-plan commands.
//
// The paper's network-model-building service corresponds to BuildNetwork:
// parse every device's configuration text once, pair it with the monitored
// topology, and cache the result as the base network model (§2.2).
package config

import (
	"fmt"
	"net/netip"

	"hoyan/internal/netmodel"
	"hoyan/internal/policy"
	"slices"
)

// Interface is a configured router interface.
type Interface struct {
	Name      string
	Addr      netip.Prefix // interface address with subnet length
	ISISCost  uint32
	TECost    uint32 // IS-IS TE metric (0 = unset)
	Bandwidth float64
	ACLIn     string // ACL applied to traffic entering this interface
	ACLOut    string // ACL applied to traffic leaving this interface
	PBR       string // PBR policy applied to traffic entering this interface
}

// VRF is a VPN routing instance on a device.
type VRF struct {
	Name         string
	RD           string
	ImportRTs    []string
	ExportRTs    []string
	ExportPolicy string // route map applied when leaking out of this VRF
}

// Neighbor is a configured BGP session endpoint.
type Neighbor struct {
	Addr         netip.Addr
	RemoteAS     netmodel.ASN
	VRF          string // session VRF; DefaultVRF for global
	ImportPolicy string // route map name; "" = no policy defined
	ExportPolicy string
	RRClient     bool // this neighbor is a route-reflector client of us
	NextHopSelf  bool
	AddPaths     int  // number of paths advertised (RFC 7911); 0/1 = best only
	UpdateSource bool // session uses loopbacks (iBGP convention)
}

// StaticRoute is a configured static route.
type StaticRoute struct {
	VRF        string
	Prefix     netip.Prefix
	NextHop    netip.Addr
	Preference uint32
}

// Aggregate is a BGP aggregate-address statement.
type Aggregate struct {
	VRF         string
	Prefix      netip.Prefix
	ASSet       bool
	SummaryOnly bool
}

// Redistribution injects routes of one protocol into BGP, optionally through
// a route map.
type Redistribution struct {
	From   netmodel.Protocol
	Policy string
}

// SRPolicy is a segment-routing policy steering BGP traffic toward Endpoint
// through an explicit segment list (device names). An empty segment list
// means "IGP shortest path to the endpoint in a tunnel".
type SRPolicy struct {
	Name     string
	Endpoint netip.Addr // remote loopback
	Color    uint32
	Segments []string
}

// PBRRule steers flows matching the ACL-style clause to an explicit next
// hop, bypassing the FIB.
type PBRRule struct {
	Name    string
	Match   policy.ACLEntry
	NextHop netip.Addr
}

// Device is the parsed model of one router's configuration.
type Device struct {
	Name     string
	Vendor   string
	ASN      netmodel.ASN
	RouterID netip.Addr
	Loopback netip.Addr

	Interfaces map[string]*Interface
	VRFs       map[string]*VRF

	Neighbors      []*Neighbor
	MaxPaths       int // BGP multipath limit; <=1 disables ECMP
	Networks       []netip.Prefix
	Aggregates     []Aggregate
	Redistributes  []Redistribution
	Statics        []StaticRoute
	SRPolicies     []*SRPolicy
	PBRPolicies    map[string][]PBRRule
	RouteMaps      map[string]*policy.RouteMap
	PrefixLists    map[string]*policy.PrefixList
	CommunityLists map[string]*policy.CommunityList
	ASPathLists    map[string]*policy.ASPathList
	ACLs           map[string]*policy.ACL

	ISISEnabled bool

	// Isolated marks the device as under maintenance isolation. How
	// isolation manifests is vendor-specific (Table 5 "device isolation"):
	// policy-based vendors stop advertising routes but keep learning;
	// configuration-based vendors shut the BGP sessions down entirely.
	Isolated bool

	// Lines is the number of configuration lines the device was parsed
	// from; kept for scale reporting (each production router carries
	// thousands of lines).
	Lines int
}

// NewDevice creates an empty device model.
func NewDevice(name, vendor string) *Device {
	return &Device{
		Name:           name,
		Vendor:         vendor,
		Interfaces:     make(map[string]*Interface),
		VRFs:           make(map[string]*VRF),
		PBRPolicies:    make(map[string][]PBRRule),
		RouteMaps:      make(map[string]*policy.RouteMap),
		PrefixLists:    make(map[string]*policy.PrefixList),
		CommunityLists: make(map[string]*policy.CommunityList),
		ASPathLists:    make(map[string]*policy.ASPathList),
		ACLs:           make(map[string]*policy.ACL),
		MaxPaths:       1,
	}
}

// Neighbor returns the configured neighbor with the given address in the
// given VRF, or nil.
func (d *Device) Neighbor(addr netip.Addr, vrf string) *Neighbor {
	for _, n := range d.Neighbors {
		if n.Addr == addr && n.VRF == vrf {
			return n
		}
	}
	return nil
}

// RemoveNeighbor deletes the neighbor with the given address/VRF.
func (d *Device) RemoveNeighbor(addr netip.Addr, vrf string) bool {
	for i, n := range d.Neighbors {
		if n.Addr == addr && n.VRF == vrf {
			d.Neighbors = append(d.Neighbors[:i], d.Neighbors[i+1:]...)
			return true
		}
	}
	return false
}

// PolicyEnv assembles the policy evaluation environment for this device
// under the given VSB profile source.
func (d *Device) PolicyEnv(prof policy.Env) policy.Env {
	prof.PrefixLists = d.PrefixLists
	prof.CommunityLists = d.CommunityLists
	prof.ASPathLists = d.ASPathLists
	return prof
}

// Clone returns a deep copy of the device, so a change plan can be applied
// to a copy of the base model.
func (d *Device) Clone() *Device {
	out := NewDevice(d.Name, d.Vendor)
	out.ASN, out.RouterID, out.Loopback = d.ASN, d.RouterID, d.Loopback
	out.MaxPaths, out.ISISEnabled, out.Lines = d.MaxPaths, d.ISISEnabled, d.Lines
	out.Isolated = d.Isolated
	for name, i := range d.Interfaces {
		cp := *i
		out.Interfaces[name] = &cp
	}
	for name, v := range d.VRFs {
		cp := *v
		cp.ImportRTs = append([]string(nil), v.ImportRTs...)
		cp.ExportRTs = append([]string(nil), v.ExportRTs...)
		out.VRFs[name] = &cp
	}
	for _, n := range d.Neighbors {
		cp := *n
		out.Neighbors = append(out.Neighbors, &cp)
	}
	out.Networks = append([]netip.Prefix(nil), d.Networks...)
	out.Aggregates = append([]Aggregate(nil), d.Aggregates...)
	out.Redistributes = append([]Redistribution(nil), d.Redistributes...)
	out.Statics = append([]StaticRoute(nil), d.Statics...)
	for _, s := range d.SRPolicies {
		cp := *s
		cp.Segments = append([]string(nil), s.Segments...)
		out.SRPolicies = append(out.SRPolicies, &cp)
	}
	for name, rules := range d.PBRPolicies {
		out.PBRPolicies[name] = append([]PBRRule(nil), rules...)
	}
	for name, rm := range d.RouteMaps {
		out.RouteMaps[name] = rm.Clone()
	}
	for name, pl := range d.PrefixLists {
		cp := &policy.PrefixList{Name: pl.Name, Family: pl.Family}
		cp.Entries = append([]policy.PrefixEntry(nil), pl.Entries...)
		out.PrefixLists[name] = cp
	}
	for name, cl := range d.CommunityLists {
		cp := &policy.CommunityList{Name: cl.Name}
		cp.Entries = append([]policy.CommunityEntry(nil), cl.Entries...)
		out.CommunityLists[name] = cp
	}
	for name, al := range d.ASPathLists {
		cp := &policy.ASPathList{Name: al.Name}
		for _, e := range al.Entries {
			cp.Entries = append(cp.Entries, policy.ASPathEntry{Permit: e.Permit, Regex: e.Regex})
		}
		out.ASPathLists[name] = cp
	}
	for name, a := range d.ACLs {
		cp := &policy.ACL{Name: a.Name}
		cp.Entries = append([]policy.ACLEntry(nil), a.Entries...)
		out.ACLs[name] = cp
	}
	return out
}

// Network is Hoyan's base network model: every parsed device plus the
// monitored topology.
type Network struct {
	Devices map[string]*Device
	Topo    *netmodel.Topology
}

// NewNetwork creates an empty network model.
func NewNetwork() *Network {
	return &Network{Devices: make(map[string]*Device), Topo: netmodel.NewTopology()}
}

// DeviceNames returns all device names sorted.
func (n *Network) DeviceNames() []string {
	out := make([]string, 0, len(n.Devices))
	for name := range n.Devices {
		out = append(out, name)
	}
	slices.Sort(out)
	return out
}

// Clone deep-copies the network model so changes can be applied without
// disturbing the pre-computed base model.
func (n *Network) Clone() *Network {
	out := NewNetwork()
	for name, d := range n.Devices {
		out.Devices[name] = d.Clone()
	}
	out.Topo = n.Topo.Clone()
	return out
}

// DeviceByAddr returns the device owning addr on a loopback or link
// interface, or nil.
func (n *Network) DeviceByAddr(addr netip.Addr) *Device {
	name := n.Topo.AddrOwner(addr)
	if name == "" {
		return nil
	}
	return n.Devices[name]
}

// Validate performs structural sanity checks used by tests and the auditing
// workflow: every BGP neighbor's referenced policies and every interface ACL
// must exist (dangling references are legal configs — they trigger VSBs —
// so Validate reports rather than fails them).
func (n *Network) Validate() []string {
	var issues []string
	for _, name := range n.DeviceNames() {
		d := n.Devices[name]
		for _, nb := range d.Neighbors {
			for _, pol := range []string{nb.ImportPolicy, nb.ExportPolicy} {
				if pol != "" {
					if _, ok := d.RouteMaps[pol]; !ok {
						issues = append(issues, fmt.Sprintf("%s: neighbor %s references undefined policy %q", name, nb.Addr, pol))
					}
				}
			}
		}
		for _, i := range d.Interfaces {
			for _, acl := range []string{i.ACLIn, i.ACLOut} {
				if acl != "" {
					if _, ok := d.ACLs[acl]; !ok {
						issues = append(issues, fmt.Sprintf("%s: interface %s references undefined ACL %q", name, i.Name, acl))
					}
				}
			}
		}
	}
	return issues
}
