package config

import (
	"fmt"
	"net/netip"
	"strconv"
	"strings"

	"hoyan/internal/netmodel"
	"hoyan/internal/policy"
)

// ParseError reports a configuration line that could not be parsed.
type ParseError struct {
	Device string
	Line   int
	Text   string
	Reason string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("config: %s line %d: %s: %q", e.Device, e.Line, e.Reason, e.Text)
}

func parseErr(device string, line int, text, reason string) error {
	return &ParseError{Device: device, Line: line, Text: text, Reason: reason}
}

func parseUint32(s string) (uint32, error) {
	v, err := strconv.ParseUint(s, 10, 32)
	return uint32(v), err
}

func parseInt(s string) (int, error) {
	v, err := strconv.ParseInt(s, 10, 32)
	return int(v), err
}

// parseACLClause parses keyword-style ACL match tokens shared by both
// dialects: [proto tcp|udp|NUM] [src PREFIX|any] [dst PREFIX|any]
// [sport LO-HI] [dport LO-HI].
func parseACLClause(fields []string) (policy.ACLEntry, error) {
	var e policy.ACLEntry
	i := 0
	for i < len(fields) {
		key := fields[i]
		if i+1 >= len(fields) {
			return e, fmt.Errorf("clause %q needs a value", key)
		}
		val := fields[i+1]
		switch key {
		case "proto":
			switch val {
			case "tcp":
				e.Proto = netmodel.ProtoTCP
			case "udp":
				e.Proto = netmodel.ProtoUDP
			case "any":
			default:
				n, err := parseUint32(val)
				if err != nil || n > 255 {
					return e, fmt.Errorf("bad proto %q", val)
				}
				e.Proto = netmodel.IPProto(n)
			}
		case "src", "dst":
			if val != "any" {
				p, err := netip.ParsePrefix(val)
				if err != nil {
					return e, fmt.Errorf("bad prefix %q", val)
				}
				if key == "src" {
					e.Src = p
				} else {
					e.Dst = p
				}
			}
		case "sport", "dport":
			lo, hi, err := parsePortRange(val)
			if err != nil {
				return e, err
			}
			if key == "sport" {
				e.SrcPortLo, e.SrcPortHi = lo, hi
			} else {
				e.DstPortLo, e.DstPortHi = lo, hi
			}
		default:
			return e, fmt.Errorf("unknown clause %q", key)
		}
		i += 2
	}
	return e, nil
}

func parsePortRange(s string) (lo, hi uint16, err error) {
	loS, hiS, ok := strings.Cut(s, "-")
	if !ok {
		hiS = loS
	}
	l, err := strconv.ParseUint(loS, 10, 16)
	if err != nil {
		return 0, 0, fmt.Errorf("bad port %q", s)
	}
	h, err := strconv.ParseUint(hiS, 10, 16)
	if err != nil {
		return 0, 0, fmt.Errorf("bad port %q", s)
	}
	return uint16(l), uint16(h), nil
}

// formatACLClause is the inverse of parseACLClause.
func formatACLClause(e policy.ACLEntry) string {
	var parts []string
	if e.Proto != 0 {
		switch e.Proto {
		case netmodel.ProtoTCP:
			parts = append(parts, "proto tcp")
		case netmodel.ProtoUDP:
			parts = append(parts, "proto udp")
		default:
			parts = append(parts, fmt.Sprintf("proto %d", e.Proto))
		}
	}
	if e.Src.IsValid() {
		parts = append(parts, "src "+e.Src.String())
	}
	if e.Dst.IsValid() {
		parts = append(parts, "dst "+e.Dst.String())
	}
	if e.SrcPortHi != 0 {
		parts = append(parts, fmt.Sprintf("sport %d-%d", e.SrcPortLo, e.SrcPortHi))
	}
	if e.DstPortHi != 0 {
		parts = append(parts, fmt.Sprintf("dport %d-%d", e.DstPortLo, e.DstPortHi))
	}
	return strings.Join(parts, " ")
}

// parseGeLe parses optional trailing "[ge N] [le N]" (alpha) or
// "[greater-equal N] [less-equal N]" (beta) tokens.
func parseGeLe(fields []string, geKey, leKey string) (ge, le int, err error) {
	i := 0
	for i < len(fields) {
		if i+1 >= len(fields) {
			return 0, 0, fmt.Errorf("dangling %q", fields[i])
		}
		n, err := parseInt(fields[i+1])
		if err != nil {
			return 0, 0, fmt.Errorf("bad length %q", fields[i+1])
		}
		switch fields[i] {
		case geKey:
			ge = n
		case leKey:
			le = n
		default:
			return 0, 0, fmt.Errorf("unknown token %q", fields[i])
		}
		i += 2
	}
	return ge, le, nil
}

func permitDeny(s string) (bool, bool) {
	switch s {
	case "permit":
		return true, true
	case "deny":
		return false, true
	}
	return false, false
}

// splitLines returns non-empty, comment-stripped lines with 1-based line
// numbers preserved.
type cfgLine struct {
	n    int
	text string
}

func splitLines(text string) []cfgLine {
	var out []cfgLine
	for i, raw := range strings.Split(text, "\n") {
		s := strings.TrimSpace(raw)
		if s == "" || strings.HasPrefix(s, "//") {
			continue
		}
		out = append(out, cfgLine{n: i + 1, text: s})
	}
	return out
}
