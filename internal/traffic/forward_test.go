package traffic

import (
	"net/netip"
	"testing"

	"hoyan/internal/bgp"
	"hoyan/internal/config"
	"hoyan/internal/isis"
	"hoyan/internal/netmodel"
	"hoyan/internal/policy"
)

// testNet builds a diamond network with an external exit:
//
//	IN -- A -- B -- D -- OUT    (OUT advertises 10.0.0.0/24)
//	       \       /
//	        \- C -/
//
// All in AS 65001 (iBGP full mesh through RR-less direct sessions A-B, A-C,
// B-D, C-D won't propagate; so D uses next-hop-self sessions to A directly).
// To keep propagation simple every router pair has an iBGP session with D
// and A as needed.
type testEnv struct {
	net *config.Network
	igp *isis.Result
	res *bgp.Result
}

func addrOfLink(net *config.Network, a, b string, side string) netip.Addr {
	l := net.Topo.FindLink(a, b)
	aAddr, bAddr := l.AAddr, l.BAddr
	if l.A != a {
		aAddr, bAddr = bAddr, aAddr
	}
	if side == "a" {
		return aAddr
	}
	return bAddr
}

func buildDiamond(t *testing.T) *testEnv {
	t.Helper()
	net := config.NewNetwork()
	nextIP := 0
	dev := func(name string, asn netmodel.ASN, lo string) *config.Device {
		d := config.NewDevice(name, "alpha")
		d.ASN = asn
		d.Loopback = netip.MustParseAddr(lo)
		d.RouterID = d.Loopback
		d.MaxPaths = 4
		net.Devices[name] = d
		net.Topo.AddNode(netmodel.Node{Name: name, Loopback: d.Loopback})
		return d
	}
	link := func(a, b string, cost uint32) {
		nextIP++
		base := netip.AddrFrom4([4]byte{172, 20, byte(nextIP >> 6), byte((nextIP << 2) & 0xff)})
		aAddr := base.Next()
		bAddr := aAddr.Next()
		aIf, bIf := "to-"+b, "to-"+a
		net.Devices[a].Interfaces[aIf] = &config.Interface{Name: aIf, Addr: netip.PrefixFrom(aAddr, 30), ISISCost: cost}
		net.Devices[b].Interfaces[bIf] = &config.Interface{Name: bIf, Addr: netip.PrefixFrom(bAddr, 30), ISISCost: cost}
		net.Topo.AddLink(netmodel.Link{
			A: a, B: b, AIface: aIf, BIface: bIf,
			ANet: netip.PrefixFrom(base, 30), BNet: netip.PrefixFrom(base, 30),
			AAddr: aAddr, BAddr: bAddr, CostAB: cost, CostBA: cost, Bandwidth: 1e10,
		})
	}
	ibgp := func(a, b string) {
		da, db := net.Devices[a], net.Devices[b]
		da.Neighbors = append(da.Neighbors, &config.Neighbor{Addr: db.Loopback, RemoteAS: db.ASN, VRF: netmodel.DefaultVRF, UpdateSource: true, NextHopSelf: true})
		db.Neighbors = append(db.Neighbors, &config.Neighbor{Addr: da.Loopback, RemoteAS: da.ASN, VRF: netmodel.DefaultVRF, UpdateSource: true, NextHopSelf: true})
	}
	dev("A", 65001, "1.0.0.1")
	dev("B", 65001, "1.0.0.2")
	dev("C", 65001, "1.0.0.3")
	dev("D", 65001, "1.0.0.4")
	link("A", "B", 10)
	link("A", "C", 10)
	link("B", "D", 10)
	link("C", "D", 10)
	// D injects the external prefix; iBGP sessions A-D (through IGP).
	ibgp("A", "D")
	ibgp("B", "D")
	ibgp("C", "D")
	// D's external interface covering the input route's next hop.
	net.Devices["D"].Interfaces["ext"] = &config.Interface{Name: "ext", Addr: netip.MustParsePrefix("198.51.100.1/24")}

	igp := isis.Compute(net.Topo, isis.Options{})
	inputs := []netmodel.Route{{
		Device: "D", VRF: netmodel.DefaultVRF,
		Prefix:   netip.MustParsePrefix("10.0.0.0/24"),
		Protocol: netmodel.ProtoBGP,
		NextHop:  netip.MustParseAddr("198.51.100.2"),
		ASPath:   netmodel.ASPath{Seq: []netmodel.ASN{65100}},
		Source:   "D",
	}}
	res := bgp.Simulate(net, igp, inputs, bgp.Options{})
	if !res.Converged {
		t.Fatal("bgp did not converge")
	}
	return &testEnv{net: net, igp: igp, res: res}
}

func flow(ing, src, dst string, vol float64) netmodel.Flow {
	return netmodel.Flow{
		Ingress: ing,
		Src:     netip.MustParseAddr(src),
		Dst:     netip.MustParseAddr(dst),
		SrcPort: 1234, DstPort: 80, Proto: netmodel.ProtoTCP,
		Volume: vol,
	}
}

func TestForwardBasicPath(t *testing.T) {
	e := buildDiamond(t)
	fw := NewForwarder(e.net, e.igp, e.res, Options{})
	p := fw.Path(flow("A", "192.0.2.1", "10.0.0.5", 100))
	devs := p.Devices()
	if p.Exit != netmodel.ExitToPeer {
		t.Fatalf("exit = %v path = %v", p.Exit, p)
	}
	if devs[0] != "A" || devs[len(devs)-1] != "D" {
		t.Errorf("path = %v, want A..D", devs)
	}
	if len(devs) != 3 {
		t.Errorf("path length = %d, want 3 (A-B-D or A-C-D)", len(devs))
	}
}

func TestForwardECMPLoadSplit(t *testing.T) {
	e := buildDiamond(t)
	fw := NewForwarder(e.net, e.igp, e.res, Options{})
	res := fw.Simulate([]netmodel.Flow{flow("A", "192.0.2.1", "10.0.0.5", 100)})
	// A's route to 10/24 has next hop D's loopback; IGP gives ECMP via B and
	// C: 50 each on A-B and A-C, then 50 each on B-D and C-D.
	ab := e.net.Topo.FindLink("A", "B").ID()
	ac := e.net.Topo.FindLink("A", "C").ID()
	bd := e.net.Topo.FindLink("B", "D").ID()
	cd := e.net.Topo.FindLink("C", "D").ID()
	for _, tc := range []struct {
		id   netmodel.LinkID
		want float64
	}{{ab, 50}, {ac, 50}, {bd, 50}, {cd, 50}} {
		if got := res.Load[tc.id]; got != tc.want {
			t.Errorf("load[%s] = %v, want %v", tc.id, got, tc.want)
		}
	}
}

func TestForwardNoRoute(t *testing.T) {
	e := buildDiamond(t)
	fw := NewForwarder(e.net, e.igp, e.res, Options{})
	p := fw.Path(flow("A", "192.0.2.1", "203.0.113.77", 10))
	if p.Exit != netmodel.ExitNoRoute {
		t.Errorf("exit = %v, want no-route", p.Exit)
	}
}

func TestForwardDeliveredToLoopback(t *testing.T) {
	e := buildDiamond(t)
	fw := NewForwarder(e.net, e.igp, e.res, Options{})
	p := fw.Path(flow("A", "192.0.2.1", "1.0.0.4", 10)) // D's loopback
	if p.Exit != netmodel.ExitDelivered {
		t.Fatalf("exit = %v", p.Exit)
	}
	if devs := p.Devices(); devs[len(devs)-1] != "D" {
		t.Errorf("path = %v", devs)
	}
}

func TestACLBlocksFlow(t *testing.T) {
	e := buildDiamond(t)
	// Block TCP/80 entering D from B.
	d := e.net.Devices["D"]
	d.ACLs["BLOCK80"] = &policy.ACL{Name: "BLOCK80", Entries: []policy.ACLEntry{
		{Permit: false, Proto: netmodel.ProtoTCP, DstPortLo: 80, DstPortHi: 80},
		{Permit: true},
	}}
	d.Interfaces["to-B"].ACLIn = "BLOCK80"
	d.Interfaces["to-C"].ACLIn = "BLOCK80"
	fw := NewForwarder(e.net, e.igp, e.res, Options{})
	p := fw.Path(flow("A", "192.0.2.1", "10.0.0.5", 10))
	if p.Exit != netmodel.ExitACLDenied {
		t.Errorf("exit = %v, want acl-denied (path %v)", p.Exit, p)
	}
	// Other ports pass.
	f2 := flow("A", "192.0.2.1", "10.0.0.5", 10)
	f2.DstPort = 443
	if p := fw.Path(f2); p.Exit != netmodel.ExitToPeer {
		t.Errorf("443 exit = %v", p.Exit)
	}
	// IgnoreACLs fault injection restores forwarding.
	fw2 := NewForwarder(e.net, e.igp, e.res, Options{IgnoreACLs: true})
	if p := fw2.Path(flow("A", "192.0.2.1", "10.0.0.5", 10)); p.Exit != netmodel.ExitToPeer {
		t.Errorf("IgnoreACLs exit = %v", p.Exit)
	}
}

func TestPBRSteering(t *testing.T) {
	e := buildDiamond(t)
	// On A, steer 10.0.0.0/24 traffic explicitly via C (bypassing LPM/ECMP).
	a := e.net.Devices["A"]
	cAddr := addrOfLink(e.net, "C", "A", "a")
	a.PBRPolicies["VIA_C"] = []config.PBRRule{{
		Name:    "VIA_C",
		Match:   policy.ACLEntry{Permit: true, Dst: netip.MustParsePrefix("10.0.0.0/24")},
		NextHop: cAddr,
	}}
	a.Interfaces["to-B"].PBR = "VIA_C"

	fw := NewForwarder(e.net, e.igp, e.res, Options{})
	p := fw.Path(flow("A", "192.0.2.1", "10.0.0.5", 10))
	if devs := p.Devices(); len(devs) != 3 || devs[1] != "C" {
		t.Errorf("PBR path = %v, want via C", devs)
	}
	// With PBR ignored (fault injection) ECMP returns.
	fw2 := NewForwarder(e.net, e.igp, e.res, Options{IgnorePBR: true})
	res := fw2.Simulate([]netmodel.Flow{flow("A", "192.0.2.1", "10.0.0.5", 100)})
	if got := res.Load[e.net.Topo.FindLink("A", "B").ID()]; got != 50 {
		t.Errorf("IgnorePBR load via B = %v, want 50", got)
	}
}

func TestLinkFailureReroutesLoad(t *testing.T) {
	e := buildDiamond(t)
	abID := e.net.Topo.FindLink("A", "B").ID()
	acID := e.net.Topo.FindLink("A", "C").ID()
	e.net.Topo.SetLinkUp(abID, false)
	// Recompute the IGP after the failure.
	igp := isis.Compute(e.net.Topo, isis.Options{})
	fw := NewForwarder(e.net, igp, e.res, Options{})
	res := fw.Simulate([]netmodel.Flow{flow("A", "192.0.2.1", "10.0.0.5", 100)})
	if got := res.Load[acID]; got != 100 {
		t.Errorf("all volume must shift to A-C, got %v", got)
	}
	if got := res.Load[abID]; got != 0 {
		t.Errorf("down link must carry nothing, got %v", got)
	}
}

func TestPathDeterministicHashChoice(t *testing.T) {
	e := buildDiamond(t)
	fw := NewForwarder(e.net, e.igp, e.res, Options{})
	f := flow("A", "192.0.2.1", "10.0.0.5", 10)
	p1 := fw.Path(f)
	p2 := fw.Path(f)
	if p1.String() != p2.String() {
		t.Error("same flow must take the same path")
	}
	// Different 5-tuples eventually use both branches.
	seen := map[string]bool{}
	for port := uint16(1); port < 50; port++ {
		f.SrcPort = port
		seen[fw.Path(f).Devices()[1]] = true
	}
	if !seen["B"] || !seen["C"] {
		t.Errorf("hashing should spread across ECMP branches, saw %v", seen)
	}
}

func TestLoopDetection(t *testing.T) {
	// Static routes pointing at each other create a forwarding loop.
	net := config.NewNetwork()
	for i, name := range []string{"X", "Y"} {
		d := config.NewDevice(name, "alpha")
		d.ASN = 65001
		d.Loopback = netip.AddrFrom4([4]byte{9, 9, 9, byte(i + 1)})
		net.Devices[name] = d
		net.Topo.AddNode(netmodel.Node{Name: name, Loopback: d.Loopback})
	}
	xa, ya := netip.MustParseAddr("172.30.0.1"), netip.MustParseAddr("172.30.0.2")
	net.Devices["X"].Interfaces["e0"] = &config.Interface{Name: "e0", Addr: netip.PrefixFrom(xa, 30)}
	net.Devices["Y"].Interfaces["e0"] = &config.Interface{Name: "e0", Addr: netip.PrefixFrom(ya, 30)}
	net.Topo.AddLink(netmodel.Link{
		A: "X", B: "Y", AIface: "e0", BIface: "e0",
		AAddr: xa, BAddr: ya, CostAB: 10, CostBA: 10,
	})
	igp := isis.Compute(net.Topo, isis.Options{})
	// Both statics point across the link for the same prefix.
	net.Devices["X"].Statics = []config.StaticRoute{{VRF: netmodel.DefaultVRF, Prefix: netip.MustParsePrefix("10.0.0.0/24"), NextHop: ya, Preference: 1}}
	net.Devices["Y"].Statics = []config.StaticRoute{{VRF: netmodel.DefaultVRF, Prefix: netip.MustParsePrefix("10.0.0.0/24"), NextHop: xa, Preference: 1}}
	res := bgp.Simulate(net, igp, nil, bgp.Options{})
	fw := NewForwarder(net, igp, res, Options{})
	p := fw.Path(flow("X", "192.0.2.1", "10.0.0.5", 10))
	if p.Exit != netmodel.ExitLoop {
		t.Errorf("exit = %v, want loop (path %v)", p.Exit, p)
	}
	// Load accumulation must terminate too.
	r := fw.Simulate([]netmodel.Flow{flow("X", "192.0.2.1", "10.0.0.5", 10)})
	if len(r.Paths) != 1 {
		t.Error("simulate must finish")
	}
}

func TestSRSegmentSteering(t *testing.T) {
	e := buildDiamond(t)
	// A configures an SR policy to D via explicit segment C.
	a := e.net.Devices["A"]
	a.SRPolicies = append(a.SRPolicies, &config.SRPolicy{
		Name: "TO-D-VIA-C", Endpoint: e.net.Devices["D"].Loopback, Color: 100, Segments: []string{"C"},
	})
	fw := NewForwarder(e.net, e.igp, e.res, Options{})
	p := fw.Path(flow("A", "192.0.2.1", "10.0.0.5", 10))
	if devs := p.Devices(); len(devs) < 2 || devs[1] != "C" {
		t.Errorf("SR path = %v, want first hop C", devs)
	}
	res := fw.Simulate([]netmodel.Flow{flow("A", "192.0.2.1", "10.0.0.5", 100)})
	if got := res.Load[e.net.Topo.FindLink("A", "C").ID()]; got != 100 {
		t.Errorf("SR must steer all volume via C, got %v", got)
	}
}

func TestEgressACLBlocksFlow(t *testing.T) {
	e := buildDiamond(t)
	// A blocks TCP/80 leaving toward both B and C.
	a := e.net.Devices["A"]
	a.ACLs["EGRESS80"] = &policy.ACL{Name: "EGRESS80", Entries: []policy.ACLEntry{
		{Permit: false, Proto: netmodel.ProtoTCP, DstPortLo: 80, DstPortHi: 80},
		{Permit: true},
	}}
	a.Interfaces["to-B"].ACLOut = "EGRESS80"
	a.Interfaces["to-C"].ACLOut = "EGRESS80"
	fw := NewForwarder(e.net, e.igp, e.res, Options{})
	if p := fw.Path(flow("A", "192.0.2.1", "10.0.0.5", 10)); p.Exit != netmodel.ExitACLDenied {
		t.Errorf("exit = %v, want acl-denied", p.Exit)
	}
	// With only one side blocked, traffic takes the other branch.
	a.Interfaces["to-C"].ACLOut = ""
	res := fw.Simulate([]netmodel.Flow{flow("A", "192.0.2.1", "10.0.0.5", 100)})
	if got := res.Load[e.net.Topo.FindLink("A", "C").ID()]; got != 100 {
		t.Errorf("all volume must take the unblocked branch, got %v", got)
	}
	if got := res.Load[e.net.Topo.FindLink("A", "B").ID()]; got != 0 {
		t.Errorf("blocked branch must carry nothing, got %v", got)
	}
}
