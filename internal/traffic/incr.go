package traffic

import (
	"net/netip"

	"hoyan/internal/netmodel"
	"hoyan/internal/par"
)

// Trace records, for one flow, every device whose forwarding state the
// simulation consulted (RIB lookups, IGP first hops, adjacent link state),
// plus the flow's per-link volume shares in BFS order. A flow's result can
// only change if the state of one of its traced devices changed, so traces
// let a re-simulation skip flows the delta cannot reach.
type Trace struct {
	devs map[string]bool
	// deps records every IGP first-hop query the walk made, as
	// device → queried targets. A changed first-hop set only matters to
	// this flow if the exact (device, target) pair was consulted.
	deps     map[string]map[string]bool
	contribs []linkShare
}

func (t *Trace) see(dev string) {
	if t == nil {
		return
	}
	if t.devs == nil {
		t.devs = make(map[string]bool, 8)
	}
	t.devs[dev] = true
}

// dep records that the walk consulted dev's IGP first hops toward target.
func (t *Trace) dep(dev, target string) {
	if t == nil {
		return
	}
	if t.deps == nil {
		t.deps = make(map[string]map[string]bool, 4)
	}
	m := t.deps[dev]
	if m == nil {
		m = make(map[string]bool, 2)
		t.deps[dev] = m
	}
	m[target] = true
}

// Touches reports whether the trace consulted any of the changed devices, or
// made an IGP first-hop query whose answer changed (hopsChanged maps each
// device with a changed IGP view to the destinations whose first-hop set
// differs from base).
func (t *Trace) Touches(changed map[string]bool, hopsChanged map[string]map[string]bool) bool {
	if t == nil {
		return true
	}
	for dev := range t.devs {
		if changed[dev] {
			return true
		}
	}
	for dev, targets := range t.deps {
		hc := hopsChanged[dev]
		if hc == nil {
			continue
		}
		for x := range targets {
			if hc[x] {
				return true
			}
		}
	}
	return false
}

// TouchesRIB reports whether any visited device has a changed RIB prefix
// covering dst. A flow's RIB lookups are longest-prefix matches on its
// destination, so when no differing prefix at any visited device contains the
// destination, every lookup the flow made (including misses) answers exactly
// as it did in the base run.
func (t *Trace) TouchesRIB(ribDiff map[string][]netip.Prefix, dst netip.Addr) bool {
	if t == nil {
		return true
	}
	if len(ribDiff) == 0 {
		return false
	}
	for dev := range t.devs {
		for _, p := range ribDiff[dev] {
			if p.Contains(dst) {
				return true
			}
		}
	}
	return false
}

// SimulateTraced is Simulate plus a per-flow trace usable with Resimulate.
// Results are identical to Simulate's.
func (f *Forwarder) SimulateTraced(flows []netmodel.Flow) (*Result, []Trace) {
	if len(flows) == 0 {
		return &Result{Load: make(netmodel.LinkLoad)}, nil
	}
	paths := make([]FlowPath, len(flows))
	traces := make([]Trace, len(flows))
	par.ForEach(f.opts.Parallelism, len(flows), func(i int) {
		if f.opts.ctxDone() {
			return
		}
		fl := flows[i]
		paths[i] = FlowPath{Flow: fl, Path: f.path(fl, &traces[i])}
		traces[i].contribs = f.loadContribsTraced(fl, &traces[i])
	})
	return mergeLoads(paths, traces), traces
}

// Resimulate forwards only the flows whose base trace touches a changed
// device, a changed (device, target) IGP query, or a changed RIB prefix
// covering the flow's destination, copying the base path and contributions
// for every other flow. It returns the new result, the new traces, and the
// number of flows reused.
//
// The load merge replays every flow's contributions in flow order — exactly
// the order Simulate uses — so the floating-point sums are byte-identical to
// a full simulation whatever subset was recomputed.
//
// flows must be the same slice contents the base was simulated with.
func (f *Forwarder) Resimulate(flows []netmodel.Flow, base *Result, baseTraces []Trace, changed map[string]bool, hopsChanged map[string]map[string]bool, ribDiff map[string][]netip.Prefix) (*Result, []Trace, int) {
	if len(flows) == 0 {
		return &Result{Load: make(netmodel.LinkLoad)}, nil, 0
	}
	if len(baseTraces) != len(flows) || len(base.Paths) != len(flows) {
		// Base mismatch: recompute everything.
		res, traces := f.SimulateTraced(flows)
		return res, traces, 0
	}
	paths := make([]FlowPath, len(flows))
	traces := make([]Trace, len(flows))
	var redo []int
	reused := 0
	for i := range flows {
		if baseTraces[i].Touches(changed, hopsChanged) || baseTraces[i].TouchesRIB(ribDiff, flows[i].Dst) {
			redo = append(redo, i)
			continue
		}
		paths[i] = base.Paths[i]
		traces[i] = baseTraces[i]
		reused++
	}
	par.ForEach(f.opts.Parallelism, len(redo), func(j int) {
		if f.opts.ctxDone() {
			return
		}
		i := redo[j]
		fl := flows[i]
		paths[i] = FlowPath{Flow: fl, Path: f.path(fl, &traces[i])}
		traces[i].contribs = f.loadContribsTraced(fl, &traces[i])
	})
	return mergeLoads(paths, traces), traces, reused
}

// mergeLoads sums every flow's link shares sequentially in flow order.
func mergeLoads(paths []FlowPath, traces []Trace) *Result {
	res := &Result{Paths: paths, Load: make(netmodel.LinkLoad)}
	for i := range traces {
		for _, c := range traces[i].contribs {
			res.Load[c.link] += c.volume
		}
	}
	return res
}
