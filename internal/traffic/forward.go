// Package traffic simulates packet forwarding: given the simulated RIBs, it
// computes the forwarding path of every input flow and aggregates per-link
// traffic loads (the Jingubang/Yu capability folded into Hoyan, §3.1).
//
// Forwarding at each hop honors PBR steering, ingress/egress ACLs, longest
// prefix match over best routes, recursive next-hop resolution through the
// IGP, SR tunnels with explicit segment lists, and ECMP. Flow volume is
// split evenly across equal-cost branches for load computation; a
// deterministic 5-tuple hash picks the representative path.
package traffic

import (
	"context"
	"net/netip"
	"slices"
	"strings"

	"hoyan/internal/config"
	"hoyan/internal/isis"
	"hoyan/internal/netmodel"
	"hoyan/internal/par"
	"hoyan/internal/vsb"
)

// RIBSource supplies routing tables per (device, vrf). Both *bgp.Result and
// RIB file sets loaded by the distributed framework implement it.
type RIBSource interface {
	RIB(device, vrf string) *netmodel.RIB
}

// Options tunes the forwarding simulation.
type Options struct {
	// Profiles supplies vendor behaviours (unused VSBs are harmless here).
	Profiles vsb.Profiles
	// IgnoreACLs disables ACL evaluation (fault-injection for the accuracy
	// campaign: "Hoyan does not model ACLs").
	IgnoreACLs bool
	// IgnorePBR disables PBR steering (fault injection).
	IgnorePBR bool
	// MaxHops bounds path length before declaring a loop.
	MaxHops int
	// Parallelism bounds the worker pool forwarding flows in Simulate
	// (par conventions: 0 = GOMAXPROCS, 1 = sequential). Every per-flow walk
	// is read-only over the snapshot, IGP, and RIBs.
	Parallelism int

	// Legacy disables the dense-ID fast paths (CSR neighbor scans, slice
	// visited sets, indexed load merging) and walks the string-keyed topology
	// exactly as the original implementation did. The two produce identical
	// results; the legacy path is the reference for speedup measurement and
	// equivalence tests.
	Legacy bool

	// Ctx, when non-nil, is polled before each per-flow walk; once it is done
	// the remaining flows are skipped and the (incomplete) result must be
	// discarded by the caller.
	Ctx context.Context
}

// ctxDone reports whether opts carries a cancelled context.
func (o Options) ctxDone() bool {
	return o.Ctx != nil && o.Ctx.Err() != nil
}

func (o Options) withDefaults() Options {
	if o.Profiles == nil {
		o.Profiles = vsb.Defaults()
	}
	if o.MaxHops == 0 {
		o.MaxHops = 64
	}
	return o
}

// Forwarder computes flow paths over a network snapshot and its RIBs.
type Forwarder struct {
	net  *config.Network
	igp  *isis.Result
	ribs RIBSource
	opts Options

	// idx is the dense-ID topology index (nil under Options.Legacy); igpIdx
	// records whether the IGP result was computed against the same index, so
	// recursive resolution can walk first-hop edge positions directly.
	idx    *netmodel.TopoIndex
	igpIdx bool

	// owned holds each device's locally terminated addresses (loopbacks and
	// interface addresses), replacing the per-hop interface scan of ownsAddr.
	owned map[string]map[netip.Addr]bool
}

// NewForwarder builds a forwarder over the given snapshot.
func NewForwarder(net *config.Network, igp *isis.Result, ribs RIBSource, opts Options) *Forwarder {
	f := &Forwarder{net: net, igp: igp, ribs: ribs, opts: opts.withDefaults()}
	if !f.opts.Legacy {
		f.idx = net.Topo.Index()
		f.igpIdx = igp != nil && igp.EdgeIndex() == f.idx
		f.owned = make(map[string]map[netip.Addr]bool, len(net.Devices))
		for name, d := range net.Devices {
			set := make(map[netip.Addr]bool, len(d.Interfaces)+2)
			if d.Loopback.IsValid() {
				set[d.Loopback] = true
			}
			if node := net.Topo.Node(name); node != nil && node.Loopback.IsValid() {
				set[node.Loopback] = true
			}
			for _, i := range d.Interfaces {
				if i.Addr.IsValid() {
					set[i.Addr.Addr()] = true
				}
			}
			f.owned[name] = set
		}
	}
	return f
}

// Result of a traffic simulation.
type Result struct {
	// Paths holds the representative (hash-chosen) path per flow, in input
	// order.
	Paths []FlowPath
	// Load is the per-link traffic volume with ECMP even-splitting.
	Load netmodel.LinkLoad
}

// FlowPath pairs a flow with its simulated forwarding path.
type FlowPath struct {
	Flow netmodel.Flow
	Path netmodel.Path
}

// Simulate forwards every flow and aggregates link loads. Flows fan out over
// Options.Parallelism workers; each worker fills only its flow's slot in the
// pre-sized path and load-contribution slices, and contributions are summed
// sequentially in flow order afterwards, so the floating-point additions
// happen in exactly the sequential path's order and the result is
// byte-identical at any parallelism.
func (f *Forwarder) Simulate(flows []netmodel.Flow) *Result {
	if len(flows) == 0 {
		return &Result{Load: make(netmodel.LinkLoad)}
	}
	paths := make([]FlowPath, len(flows))
	contribs := make([][]linkShare, len(flows))
	par.ForEach(f.opts.Parallelism, len(flows), func(i int) {
		if f.opts.ctxDone() {
			return
		}
		fl := flows[i]
		paths[i] = FlowPath{Flow: fl, Path: f.Path(fl)}
		contribs[i] = f.loadContribs(fl)
	})
	res := &Result{Paths: paths, Load: make(netmodel.LinkLoad)}
	if f.idx != nil {
		// Accumulate into a flat per-LinkIdx array: per-link additions happen
		// in the same order as the map merge below, so the floating-point sums
		// are byte-identical; only the per-share map hashing is gone.
		acc := make([]float64, f.idx.NumLinks())
		touched := make([]bool, f.idx.NumLinks())
		for _, cs := range contribs {
			for _, c := range cs {
				if c.lidx >= 0 {
					acc[c.lidx] += c.volume
					touched[c.lidx] = true
				} else {
					res.Load[c.link] += c.volume
				}
			}
		}
		for li, t := range touched {
			if t {
				res.Load[f.idx.LinkIDAt(netmodel.LinkIdx(li))] += acc[li]
			}
		}
		return res
	}
	for _, cs := range contribs {
		for _, c := range cs {
			res.Load[c.link] += c.volume
		}
	}
	return res
}

// Path computes the representative forwarding path of one flow, choosing one
// ECMP branch per hop by 5-tuple hash.
func (f *Forwarder) Path(fl netmodel.Flow) netmodel.Path {
	return f.path(fl, nil)
}

// path is Path with optional trace recording: rec accumulates every device
// whose forwarding state the walk consulted.
func (f *Forwarder) path(fl netmodel.Flow, rec *Trace) netmodel.Path {
	var path netmodel.Path
	cur := fl.Ingress
	inIface := ""
	// Visited set: a flat per-DevID slice on the indexed path, with a lazy
	// map fallback for names outside the topology index.
	var visited []bool
	var visitedM map[string]bool
	if f.idx != nil {
		visited = make([]bool, f.idx.NumDevices())
	} else {
		visitedM = map[string]bool{}
	}
	wasVisited := func(dev string) bool {
		if visited != nil {
			if id, ok := f.idx.DevID(dev); ok {
				if visited[id] {
					return true
				}
				visited[id] = true
				return false
			}
		}
		if visitedM == nil {
			visitedM = map[string]bool{}
		}
		if visitedM[dev] {
			return true
		}
		visitedM[dev] = true
		return false
	}
	h := flowHash(fl)
	for hop := 0; hop < f.opts.MaxHops; hop++ {
		if wasVisited(cur) {
			path.Hops = append(path.Hops, netmodel.Hop{Device: cur})
			path.Exit = netmodel.ExitLoop
			return path
		}

		rec.see(cur)
		step := f.step(cur, inIface, fl, rec)
		if step.exit != exitNone {
			path.Hops = append(path.Hops, netmodel.Hop{Device: cur})
			path.Exit = exitReason(step.exit)
			return path
		}
		// Pick one branch by hash.
		nh := step.branches[int(h)%len(step.branches)]
		path.Hops = append(path.Hops, netmodel.Hop{Device: cur, Link: nh.link})
		cur = nh.device
		inIface = nh.remoteIface
	}
	path.Hops = append(path.Hops, netmodel.Hop{Device: cur})
	path.Exit = netmodel.ExitLoop
	return path
}

// linkShare is one link's slice of a flow's volume, in the order the BFS
// visits it — replaying a flow's shares in order reproduces the sequential
// accumulation exactly. lidx carries the link's dense index when the walk
// ran on the topology index (netmodel.NoLink otherwise).
type linkShare struct {
	link   netmodel.LinkID
	lidx   netmodel.LinkIdx
	volume float64
}

// loadContribs walks the flow's ECMP fan-out and returns the volume share it
// places on every traversed link, splitting evenly at each branch point.
func (f *Forwarder) loadContribs(fl netmodel.Flow) []linkShare {
	return f.loadContribsTraced(fl, nil)
}

func (f *Forwarder) loadContribsTraced(fl netmodel.Flow, rec *Trace) []linkShare {
	type state struct {
		device  string
		inIface string
		volume  float64
		depth   int
	}
	var out []linkShare
	queue := []state{{device: fl.Ingress, volume: fl.Volume}}
	// visits caps work on pathological loops.
	visits := 0
	for len(queue) > 0 && visits < 4*f.opts.MaxHops {
		st := queue[0]
		queue = queue[1:]
		visits++
		if st.depth >= f.opts.MaxHops {
			continue
		}
		rec.see(st.device)
		step := f.step(st.device, st.inIface, fl, rec)
		if step.exit != exitNone {
			continue
		}
		share := st.volume / float64(len(step.branches))
		for _, br := range step.branches {
			out = append(out, linkShare{link: br.link, lidx: br.lidx, volume: share})
			queue = append(queue, state{device: br.device, inIface: br.remoteIface, volume: share, depth: st.depth + 1})
		}
	}
	return out
}

type branch struct {
	device      string // next device
	link        netmodel.LinkID
	lidx        netmodel.LinkIdx // dense link index (NoLink on the legacy path)
	remoteIface string           // interface name on the next device (for its ACL-in)
}

type stepExit uint8

const (
	exitNone stepExit = iota
	exitDelivered
	exitToPeer
	exitNoRoute
	exitACL
	exitLinkDown
)

func exitReason(e stepExit) netmodel.ExitReason {
	switch e {
	case exitDelivered:
		return netmodel.ExitDelivered
	case exitToPeer:
		return netmodel.ExitToPeer
	case exitACL:
		return netmodel.ExitACLDenied
	case exitLinkDown:
		return netmodel.ExitLinkDown
	}
	return netmodel.ExitNoRoute
}

type stepResult struct {
	exit     stepExit
	branches []branch
}

// step decides what device dev does with the flow: terminate or forward
// along one or more equal-cost branches. rec (optional) accumulates the IGP
// first-hop queries the step makes.
func (f *Forwarder) step(dev, inIface string, fl netmodel.Flow, rec *Trace) stepResult {
	d := f.net.Devices[dev]
	if d == nil {
		return stepResult{exit: exitNoRoute}
	}
	// Ingress ACL.
	if !f.opts.IgnoreACLs && inIface != "" {
		if i := d.Interfaces[inIface]; i != nil && i.ACLIn != "" {
			if acl := d.ACLs[i.ACLIn]; acl != nil && !acl.Permits(fl) {
				return stepResult{exit: exitACL}
			}
		}
	}
	// Local delivery.
	if f.ownsAddr(d, fl.Dst) {
		return stepResult{exit: exitDelivered}
	}
	// PBR bound to the ingress interface (or any interface at injection).
	if !f.opts.IgnorePBR {
		if nh, ok := f.pbrNextHop(d, inIface, fl); ok {
			return f.applyEgressACL(d, fl, f.toward(d, nh, fl, rec))
		}
	}
	// Longest prefix match over best routes. When the RIB has no match the
	// flow may still be deliverable through the IGP (router loopbacks and
	// link subnets are IS-IS routes, not BGP ones).
	rib := f.ribs.RIB(dev, netmodel.DefaultVRF)
	_, best, ok := rib.LongestMatch(fl.Dst)
	if !ok {
		return f.toward(d, fl.Dst, fl, rec)
	}
	// Direct route: destination is on-subnet but not ours — the flow leaves
	// the modelled network here (e.g. toward an un-modelled server).
	if best[0].Protocol == netmodel.ProtoDirect {
		return stepResult{exit: exitDelivered}
	}
	var out stepResult
	exitSeen := exitNoRoute
	for _, r := range best {
		br := f.toward(d, r.NextHop, fl, rec)
		if br.exit != exitNone {
			if exitSeen == exitNoRoute {
				exitSeen = br.exit
			}
			continue
		}
		out.branches = append(out.branches, br.branches...)
	}
	if len(out.branches) == 0 {
		out.exit = exitSeen
		return out
	}
	f.dedupeBranches(&out.branches)
	return f.applyEgressACL(d, fl, out)
}

// applyEgressACL drops branches whose local egress interface carries a
// denying ACL; the flow is ACL-denied when every branch is blocked.
func (f *Forwarder) applyEgressACL(d *config.Device, fl netmodel.Flow, sr stepResult) stepResult {
	if f.opts.IgnoreACLs || sr.exit != exitNone {
		return sr
	}
	kept := sr.branches[:0]
	for _, br := range sr.branches {
		l := f.net.Topo.Link(br.link)
		if l == nil {
			continue
		}
		iface := l.AIface
		if l.B == d.Name {
			iface = l.BIface
		}
		if i := d.Interfaces[iface]; i != nil && i.ACLOut != "" {
			if acl := d.ACLs[i.ACLOut]; acl != nil && !acl.Permits(fl) {
				continue
			}
		}
		kept = append(kept, br)
	}
	if len(kept) == 0 {
		return stepResult{exit: exitACL}
	}
	sr.branches = kept
	return sr
}

// toward resolves a next-hop address into concrete branches (or an exit).
func (f *Forwarder) toward(d *config.Device, nh netip.Addr, fl netmodel.Flow, rec *Trace) stepResult {
	if !nh.IsValid() {
		return stepResult{exit: exitNoRoute}
	}
	owner := f.net.Topo.AddrOwner(nh)
	if owner == "" {
		// Off-network next hop: if it is on a directly connected subnet the
		// flow exits to a peer; otherwise it is unroutable.
		for _, i := range d.Interfaces {
			if i.Addr.IsValid() && i.Addr.Masked().Contains(nh) {
				return stepResult{exit: exitToPeer}
			}
		}
		return stepResult{exit: exitNoRoute}
	}
	if owner == d.Name {
		return stepResult{exit: exitDelivered}
	}
	// SR policy with explicit segments: first segment decides the next
	// device (the tunnel path then continues hop by hop since intermediate
	// devices also follow their SR/IGP state; explicit segments are resolved
	// by routing toward the first segment device).
	target := owner
	if sp := f.srPolicyFor(d, nh, owner); sp != nil && len(sp.Segments) > 0 {
		if f.net.Topo.Node(sp.Segments[0]) != nil {
			target = sp.Segments[0]
		}
	}
	// Directly connected to the target through the link holding nh?
	if f.idx != nil {
		if devID, ok := f.idx.DevID(d.Name); ok {
			// CSR scan in place of the LinksOf walk; on a (degenerate)
			// duplicate-address tie the seed picked the first link in
			// insertion order, so the earliest insertion position wins.
			bestPos, bestIns := int32(-1), int32(0)
			lo, hi := f.idx.EdgeRange(devID)
			for pos := lo; pos < hi; pos++ {
				l := f.idx.EdgeLink(pos)
				if !l.Up {
					continue
				}
				nbAddr := l.AAddr
				if f.idx.EdgeFromA(pos) {
					nbAddr = l.BAddr
				}
				if nbAddr != nh || f.idx.DevName(f.idx.EdgeDev(pos)) != target {
					continue
				}
				ins := f.idx.InsertionOrder(f.idx.EdgeLinkIdx(pos))
				if bestPos < 0 || ins < bestIns {
					bestPos, bestIns = pos, ins
				}
			}
			if bestPos >= 0 {
				l := f.idx.EdgeLink(bestPos)
				iface := l.AIface
				if f.idx.EdgeFromA(bestPos) {
					iface = l.BIface
				}
				return stepResult{branches: []branch{{
					device:      f.idx.DevName(f.idx.EdgeDev(bestPos)),
					link:        f.idx.LinkIDAt(f.idx.EdgeLinkIdx(bestPos)),
					lidx:        f.idx.EdgeLinkIdx(bestPos),
					remoteIface: iface,
				}}}
			}
		}
	} else {
		for _, l := range f.net.Topo.LinksOf(d.Name) {
			if !l.Up {
				continue
			}
			if l.A == d.Name && l.BAddr == nh && l.B == target {
				return stepResult{branches: []branch{{device: l.B, link: l.ID(), lidx: netmodel.NoLink, remoteIface: l.BIface}}}
			}
			if l.B == d.Name && l.AAddr == nh && l.A == target {
				return stepResult{branches: []branch{{device: l.A, link: l.ID(), lidx: netmodel.NoLink, remoteIface: l.AIface}}}
			}
		}
	}
	// Recursive resolution through the IGP.
	rec.dep(d.Name, target)
	var out stepResult
	if f.idx != nil && f.igpIdx {
		devID, okD := f.idx.DevID(d.Name)
		tgtID, okT := f.idx.DevID(target)
		if !okD || !okT {
			return stepResult{exit: exitNoRoute}
		}
		poss := f.igp.FirstHopEdges(devID, tgtID)
		if len(poss) == 0 {
			return stepResult{exit: exitNoRoute}
		}
		for _, pos := range poss {
			l := f.idx.EdgeLink(pos)
			if l == nil || !l.Up {
				continue
			}
			iface := l.AIface
			if f.idx.EdgeFromA(pos) {
				iface = l.BIface
			}
			out.branches = append(out.branches, branch{
				device:      f.idx.DevName(f.idx.EdgeDev(pos)),
				link:        f.idx.LinkIDAt(f.idx.EdgeLinkIdx(pos)),
				lidx:        f.idx.EdgeLinkIdx(pos),
				remoteIface: iface,
			})
		}
	} else {
		fhs := f.igp.FirstHops(d.Name, target)
		if len(fhs) == 0 {
			return stepResult{exit: exitNoRoute}
		}
		for _, fh := range fhs {
			l := f.net.Topo.Link(fh.Link)
			if l == nil || !l.Up {
				continue
			}
			iface := l.AIface
			if l.A == d.Name {
				iface = l.BIface
			}
			out.branches = append(out.branches, branch{device: fh.Device, link: fh.Link, lidx: netmodel.NoLink, remoteIface: iface})
		}
	}
	if len(out.branches) == 0 {
		return stepResult{exit: exitLinkDown}
	}
	f.dedupeBranches(&out.branches)
	return out
}

func (f *Forwarder) srPolicyFor(d *config.Device, nh netip.Addr, owner string) *config.SRPolicy {
	for _, sp := range d.SRPolicies {
		epOwner := f.net.Topo.AddrOwner(sp.Endpoint)
		if sp.Endpoint == nh || (epOwner != "" && epOwner == owner) {
			return sp
		}
	}
	return nil
}

// pbrNextHop finds an applicable PBR rule. At the injection point (no
// ingress interface) any bound policy applies; mid-path only the ingress
// interface's policy applies.
func (f *Forwarder) pbrNextHop(d *config.Device, inIface string, fl netmodel.Flow) (netip.Addr, bool) {
	var names []string
	if inIface != "" {
		if i := d.Interfaces[inIface]; i != nil && i.PBR != "" {
			names = []string{i.PBR}
		}
	} else {
		seen := map[string]bool{}
		for _, i := range d.Interfaces {
			if i.PBR != "" && !seen[i.PBR] {
				names = append(names, i.PBR)
				seen[i.PBR] = true
			}
		}
		slices.Sort(names)
	}
	for _, name := range names {
		for _, rule := range d.PBRPolicies[name] {
			if rule.Match.Matches(fl) {
				return rule.NextHop, true
			}
		}
	}
	return netip.Addr{}, false
}

// ownsAddr reports whether the device terminates the address locally. The
// indexed path answers from the prebuilt owned-address set; the legacy path
// scans the interfaces per hop.
func (f *Forwarder) ownsAddr(d *config.Device, a netip.Addr) bool {
	if f.owned != nil && a.IsValid() {
		return f.owned[d.Name][a]
	}
	if d.Loopback == a {
		return true
	}
	node := f.net.Topo.Node(d.Name)
	if node != nil && node.Loopback == a {
		return true
	}
	for _, i := range d.Interfaces {
		if i.Addr.IsValid() && i.Addr.Addr() == a {
			return true
		}
	}
	return false
}

// dedupeBranches sorts branches into (device, link) order and removes exact
// duplicates. On the indexed path the link order comes from the dense link
// index, which is assigned in LinkID-string order — the same order the
// legacy string sort produces.
func (f *Forwarder) dedupeBranches(bs *[]branch) {
	if f.idx != nil {
		slices.SortFunc(*bs, func(a, b branch) int {
			if a.device != b.device {
				return strings.Compare(a.device, b.device)
			}
			if a.lidx != b.lidx {
				if a.lidx < b.lidx {
					return -1
				}
				return 1
			}
			return 0
		})
	} else {
		slices.SortFunc(*bs, func(a, b branch) int {
			if a.device != b.device {
				return strings.Compare(a.device, b.device)
			}
			return strings.Compare(a.link.String(), b.link.String())
		})
	}
	out := (*bs)[:0]
	var last branch
	for i, b := range *bs {
		if i == 0 || b != last {
			out = append(out, b)
		}
		last = b
	}
	*bs = out
}

// flowHash is FNV-1a over the 5-tuple, computed inline (byte-identical to
// hash/fnv over AsSlice bytes) so per-flow hashing does not allocate.
func flowHash(fl netmodel.Flow) uint32 {
	const prime = 16777619
	h := uint32(2166136261)
	mixAddr := func(a netip.Addr) {
		switch {
		case !a.IsValid():
		case a.Is4():
			b := a.As4()
			for _, x := range b {
				h = (h ^ uint32(x)) * prime
			}
		default:
			b := a.As16()
			for _, x := range b {
				h = (h ^ uint32(x)) * prime
			}
		}
	}
	mixAddr(fl.Src)
	mixAddr(fl.Dst)
	for _, x := range [5]byte{byte(fl.SrcPort >> 8), byte(fl.SrcPort), byte(fl.DstPort >> 8), byte(fl.DstPort), byte(fl.Proto)} {
		h = (h ^ uint32(x)) * prime
	}
	return h
}
