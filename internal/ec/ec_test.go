package ec

import (
	"fmt"
	"net/netip"
	"testing"
	"testing/quick"

	"hoyan/internal/config"
	"hoyan/internal/netmodel"
	"hoyan/internal/policy"
	"hoyan/internal/vsb"
)

func testNet() *config.Network {
	net := config.NewNetwork()
	d := config.NewDevice("R1", "alpha")
	d.PrefixLists["PL"] = &policy.PrefixList{Name: "PL", Family: policy.FamilyIPv4, Entries: []policy.PrefixEntry{
		{Permit: true, Prefix: netip.MustParsePrefix("10.0.0.0/8"), Le: 32},
	}}
	d.Aggregates = append(d.Aggregates, config.Aggregate{VRF: netmodel.DefaultVRF, Prefix: netip.MustParsePrefix("20.0.0.0/8")})
	net.Devices["R1"] = d
	net.Devices["R2"] = config.NewDevice("R2", "beta")
	return net
}

func input(dev, prefix string, lp uint32) netmodel.Route {
	return netmodel.Route{
		Device: dev, VRF: netmodel.DefaultVRF,
		Prefix:    netip.MustParsePrefix(prefix),
		Protocol:  netmodel.ProtoBGP,
		NextHop:   netip.MustParseAddr("203.0.113.1"),
		LocalPref: lp,
		ASPath:    netmodel.ASPath{Seq: []netmodel.ASN{65100}},
	}
}

func TestRouteECGrouping(t *testing.T) {
	net := testNet()
	inputs := []netmodel.Route{
		input("R1", "10.1.0.0/24", 100), // matches PL, no agg
		input("R1", "10.2.0.0/24", 100), // same class
		input("R1", "20.1.0.0/24", 100), // different: no PL match, triggers agg
		input("R1", "10.3.0.0/24", 200), // different: attribute differs
		input("R2", "10.4.0.0/24", 100), // different: injection device
	}
	ecs := ComputeRouteECs(net, nil, inputs, 1)
	if len(ecs.Classes) != 4 {
		for i, c := range ecs.Classes {
			t.Logf("class %d: %v", i, c.Routes)
		}
		t.Fatalf("classes = %d, want 4", len(ecs.Classes))
	}
	if ecs.Inputs != 5 {
		t.Errorf("Inputs = %d", ecs.Inputs)
	}
	if got := ecs.Reduction(); got != 5.0/4.0 {
		t.Errorf("Reduction = %v", got)
	}
	if len(ecs.Representatives()) != 4 {
		t.Error("one representative per class")
	}
}

func TestRouteECExpansion(t *testing.T) {
	net := testNet()
	inputs := []netmodel.Route{
		input("R1", "10.1.0.0/24", 100),
		input("R1", "10.2.0.0/24", 100),
	}
	ecs := ComputeRouteECs(net, nil, inputs, 1)
	if len(ecs.Classes) != 1 {
		t.Fatalf("classes = %d", len(ecs.Classes))
	}
	exp := ecs.Expansion()
	rep := ecs.Classes[0].Rep().Prefix
	if len(exp[rep]) != 1 {
		t.Fatalf("expansion = %v", exp)
	}

	// Simulating only the representative, then expanding, reproduces rows
	// for the member prefix.
	rib := netmodel.NewRIB("X", netmodel.DefaultVRF)
	rib.Add(netmodel.Route{Prefix: rep, Protocol: netmodel.ProtoBGP,
		NextHop: netip.MustParseAddr("1.1.1.1"), RouteType: netmodel.RouteBest})
	ecs.ExpandRIB(rib)
	member := exp[rep][0]
	rows := rib.Routes(member)
	if len(rows) != 1 || rows[0].NextHop != netip.MustParseAddr("1.1.1.1") || rows[0].RouteType != netmodel.RouteBest {
		t.Errorf("expanded rows = %v", rows)
	}
}

func TestRouteECVendorSensitivity(t *testing.T) {
	// An IPv6 input route against an IPv4 prefix list: match result depends
	// on the device's vendor profile, so EC membership must too.
	net := config.NewNetwork()
	d := config.NewDevice("R1", "alpha") // IPPrefixFilterPermitsIPv6 = true
	d.PrefixLists["PL"] = &policy.PrefixList{Name: "PL", Family: policy.FamilyIPv4, Entries: []policy.PrefixEntry{
		{Permit: true, Prefix: netip.MustParsePrefix("10.0.0.0/8"), Le: 32},
	}}
	net.Devices["R1"] = d
	v6a := netmodel.Route{Device: "R1", VRF: netmodel.DefaultVRF, Prefix: netip.MustParsePrefix("2001:db8:1::/48"), NextHop: netip.MustParseAddr("2001:db8::1")}
	v4a := netmodel.Route{Device: "R1", VRF: netmodel.DefaultVRF, Prefix: netip.MustParsePrefix("10.1.0.0/24"), NextHop: netip.MustParseAddr("2001:db8::1")}
	ecs := ComputeRouteECs(net, nil, []netmodel.Route{v6a, v4a}, 1)
	// Alpha: both match PL (v6 via the VSB) but they are still different...
	// prefixes with equal signatures fold into one EC.
	if len(ecs.Classes) != 1 {
		t.Errorf("alpha classes = %d, want 1 (VSB folds v6 into the same EC)", len(ecs.Classes))
	}
	d.Vendor = "beta" // strict: v6 does not match the IPv4 list
	ecs = ComputeRouteECs(net, nil, []netmodel.Route{v6a, v4a}, 1)
	if len(ecs.Classes) != 2 {
		t.Errorf("beta classes = %d, want 2", len(ecs.Classes))
	}
}

func TestAtoms(t *testing.T) {
	atoms := NewAtoms([]netip.Prefix{
		netip.MustParsePrefix("10.0.0.0/24"),
		netip.MustParsePrefix("10.0.0.0/8"),
	})
	a1 := atoms.Atom(netip.MustParseAddr("10.0.0.1"))
	a2 := atoms.Atom(netip.MustParseAddr("10.0.0.254"))
	if a1 != a2 {
		t.Errorf("same /24 atoms differ: %d %d", a1, a2)
	}
	b1 := atoms.Atom(netip.MustParseAddr("10.1.0.1"))
	if b1 == a1 {
		t.Error("/24 and /8-only must differ")
	}
	b2 := atoms.Atom(netip.MustParseAddr("10.255.255.255"))
	if b1 != b2 {
		t.Error("addresses covered by /8 only must share an atom")
	}
	out1 := atoms.Atom(netip.MustParseAddr("9.255.255.255"))
	out2 := atoms.Atom(netip.MustParseAddr("11.0.0.0"))
	if out1 == b1 || out2 == b1 {
		t.Error("outside addresses must not join /8 atom")
	}
}

func TestAtomsProperty(t *testing.T) {
	prefixes := []netip.Prefix{
		netip.MustParsePrefix("10.0.0.0/8"),
		netip.MustParsePrefix("10.64.0.0/10"),
		netip.MustParsePrefix("10.64.3.0/24"),
		netip.MustParsePrefix("172.16.0.0/12"),
	}
	atoms := NewAtoms(prefixes)
	cover := func(a netip.Addr) string {
		s := ""
		for _, p := range prefixes {
			if p.Contains(a) {
				s += "1"
			} else {
				s += "0"
			}
		}
		return s
	}
	f := func(b0, b1, b2, b3, c0, c1, c2, c3 byte) bool {
		a1 := netip.AddrFrom4([4]byte{b0, b1, b2, b3})
		a2 := netip.AddrFrom4([4]byte{c0, c1, c2, c3})
		// Same atom implies same covering prefix set.
		if atoms.Atom(a1) == atoms.Atom(a2) {
			return cover(a1) == cover(a2)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestFlowECs(t *testing.T) {
	net := config.NewNetwork()
	net.Devices["R1"] = config.NewDevice("R1", "alpha")
	prefixes := []netip.Prefix{
		netip.MustParsePrefix("10.0.0.0/24"),
		netip.MustParsePrefix("20.0.0.0/24"),
	}
	mkFlow := func(ing, dst string, dport uint16, vol float64) netmodel.Flow {
		return netmodel.Flow{
			Ingress: ing,
			Src:     netip.MustParseAddr("192.0.2.1"),
			Dst:     netip.MustParseAddr(dst),
			DstPort: dport, Proto: netmodel.ProtoTCP, Volume: vol,
		}
	}
	flows := []netmodel.Flow{
		mkFlow("R1", "10.0.0.1", 80, 10),
		mkFlow("R1", "10.0.0.99", 443, 20), // same dst atom; no ACLs -> same EC
		mkFlow("R1", "20.0.0.1", 80, 5),    // different atom
		mkFlow("R2", "10.0.0.1", 80, 1),    // different ingress
	}
	ecs := ComputeFlowECs(net, prefixes, flows, 1)
	if len(ecs.Classes) != 3 {
		t.Fatalf("classes = %d, want 3", len(ecs.Classes))
	}
	// Volumes sum within a class.
	var found bool
	for _, c := range ecs.Classes {
		if c.Rep.Dst == netip.MustParseAddr("10.0.0.1") && c.Rep.Ingress == "R1" {
			found = true
			if c.Volume != 30 {
				t.Errorf("class volume = %v, want 30", c.Volume)
			}
			if len(c.Flows) != 2 {
				t.Errorf("class size = %d", len(c.Flows))
			}
		}
	}
	if !found {
		t.Error("expected class missing")
	}
	reps := ecs.Representatives()
	if len(reps) != 3 {
		t.Fatal("reps")
	}
	var total float64
	for _, r := range reps {
		total += r.Volume
	}
	if total != 36 {
		t.Errorf("representative volumes must sum to input total, got %v", total)
	}
}

func TestFlowECsACLRefinement(t *testing.T) {
	net := config.NewNetwork()
	d := config.NewDevice("R1", "alpha")
	d.ACLs["A"] = &policy.ACL{Name: "A", Entries: []policy.ACLEntry{
		{Permit: false, Proto: netmodel.ProtoTCP, DstPortLo: 80, DstPortHi: 80},
		{Permit: true},
	}}
	net.Devices["R1"] = d
	prefixes := []netip.Prefix{netip.MustParsePrefix("10.0.0.0/24")}
	f80 := netmodel.Flow{Ingress: "R1", Src: netip.MustParseAddr("192.0.2.1"), Dst: netip.MustParseAddr("10.0.0.1"), DstPort: 80, Proto: netmodel.ProtoTCP, Volume: 1}
	f443 := f80
	f443.DstPort = 443
	fUDP := f80
	fUDP.Proto = netmodel.ProtoUDP
	ecs := ComputeFlowECs(net, prefixes, []netmodel.Flow{f80, f443, fUDP}, 1)
	// The ACL matches on dst port and proto, so all three must separate.
	if len(ecs.Classes) != 3 {
		t.Errorf("classes = %d, want 3 (ACL-sensitive fields separate)", len(ecs.Classes))
	}
}

func TestRIBPrefixes(t *testing.T) {
	rs := []netmodel.Route{
		{Prefix: netip.MustParsePrefix("10.0.0.0/24")},
		{Prefix: netip.MustParsePrefix("10.0.0.0/24")},
		{Prefix: netip.MustParsePrefix("20.0.0.0/24")},
	}
	ps := RIBPrefixes(rs)
	if len(ps) != 2 {
		t.Errorf("prefixes = %v", ps)
	}
}

func BenchmarkRouteECSignatures(b *testing.B) {
	net := testNet()
	var inputs []netmodel.Route
	for i := 0; i < 1000; i++ {
		inputs = append(inputs, input("R1", fmt.Sprintf("10.%d.%d.0/24", i/256, i%256), 100))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ComputeRouteECs(net, nil, inputs, 1)
	}
}

var _ = vsb.Defaults // keep import when benchmarks compile alone
