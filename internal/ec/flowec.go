package ec

import (
	"net/netip"
	"slices"

	"hoyan/internal/config"
	"hoyan/internal/netmodel"
	"hoyan/internal/par"
	"hoyan/internal/policy"
)

// Atoms partitions an address family's space into maximal intervals such
// that every address in an interval is covered by exactly the same set of
// prefixes. Two flow destinations in the same atom therefore have identical
// longest-prefix matches on every RIB built from those prefixes.
type Atoms struct {
	// boundaries are the sorted interval start addresses (4-byte and
	// 16-byte families kept separately).
	v4 []netip.Addr
	v6 []netip.Addr
}

// NewAtoms builds the atom partition induced by the given prefixes.
func NewAtoms(prefixes []netip.Prefix) *Atoms {
	seen4 := map[netip.Addr]bool{}
	seen6 := map[netip.Addr]bool{}
	add := func(a netip.Addr) {
		if a.Is4() || a.Is4In6() {
			seen4[a] = true
		} else {
			seen6[a] = true
		}
	}
	for _, p := range prefixes {
		add(p.Masked().Addr())
		last := netmodel.LastAddr(p)
		if next := last.Next(); next.IsValid() {
			add(next)
		}
	}
	a := &Atoms{}
	for b := range seen4 {
		a.v4 = append(a.v4, b)
	}
	for b := range seen6 {
		a.v6 = append(a.v6, b)
	}
	slices.SortFunc(a.v4, netip.Addr.Compare)
	slices.SortFunc(a.v6, netip.Addr.Compare)
	return a
}

// Atom returns the atom index of addr: addresses in the same atom are
// covered by the same prefix set. Negative indices denote "before the first
// boundary" (covered by nothing).
func (a *Atoms) Atom(addr netip.Addr) int {
	bs := a.v4
	if addr.Is6() && !addr.Is4In6() {
		bs = a.v6
	}
	// Largest boundary <= addr.
	lo, hi := 0, len(bs)
	for lo < hi {
		mid := (lo + hi) / 2
		if bs[mid].Compare(addr) <= 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo - 1
}

// Count returns the number of atom intervals (both families).
func (a *Atoms) Count() int { return len(a.v4) + len(a.v6) }

// FlowClass is one flow equivalence class. Rep is the simulated
// representative; Volume is the summed volume of all members, so simulating
// the representative with Volume reproduces the class's total load.
type FlowClass struct {
	Rep    netmodel.Flow
	Flows  []netmodel.Flow
	Volume float64
}

// FlowECs partitions flows into equivalence classes.
type FlowECs struct {
	Classes []FlowClass
	Inputs  int
}

// Reduction returns the flow-count reduction factor.
func (e *FlowECs) Reduction() float64 {
	if len(e.Classes) == 0 {
		return 1
	}
	return float64(e.Inputs) / float64(len(e.Classes))
}

// Representatives returns one flow per class carrying the class's total
// volume.
func (e *FlowECs) Representatives() []netmodel.Flow {
	out := make([]netmodel.Flow, len(e.Classes))
	for i, c := range e.Classes {
		f := c.Rep
		f.Volume = c.Volume
		out[i] = f
	}
	return out
}

// flowKey is the equivalence signature of a flow.
type flowKey struct {
	ingress          string
	dstAtom, srcAtom int
	proto            netmodel.IPProto
	sportBkt, dpBkt  int
}

// ComputeFlowECs partitions flows. ribPrefixes must contain every prefix
// appearing in the simulated RIBs (the route-simulation result's prefixes;
// in the pre-processing service, the input routes' prefixes plus locally
// originated ones). ACL and PBR rule fields refine the partition so that
// classmates are indistinguishable to packet filters.
//
// Per-flow signature computation (atom binary searches) fans out over
// parallelism workers (0 = GOMAXPROCS, 1 = sequential) into per-flow slots;
// classes are grouped sequentially in input order afterwards, keeping the
// partition identical at any parallelism.
func ComputeFlowECs(net *config.Network, ribPrefixes []netip.Prefix, flows []netmodel.Flow, parallelism int) *FlowECs {
	dstAtoms := NewAtoms(ribPrefixes)

	// ACL/PBR-induced refinements.
	var srcPrefixes []netip.Prefix
	sportB := map[uint16]bool{}
	dportB := map[uint16]bool{}
	protoSensitive := false
	collect := func(e policy.ACLEntry) {
		if e.Src.IsValid() {
			srcPrefixes = append(srcPrefixes, e.Src)
		}
		if e.Dst.IsValid() {
			// Destination filters are already covered by RIB prefixes only
			// if they coincide; add them to be exact.
			srcPrefixes = append(srcPrefixes, e.Dst) // see dstExtra below
		}
		if e.SrcPortHi != 0 {
			sportB[e.SrcPortLo] = true
			sportB[e.SrcPortHi+1] = true
		}
		if e.DstPortHi != 0 {
			dportB[e.DstPortLo] = true
			dportB[e.DstPortHi+1] = true
		}
		if e.Proto != 0 {
			protoSensitive = true
		}
	}
	var dstExtra []netip.Prefix
	for _, name := range net.DeviceNames() {
		d := net.Devices[name]
		for _, acl := range d.ACLs {
			for _, e := range acl.Entries {
				collect(e)
				if e.Dst.IsValid() {
					dstExtra = append(dstExtra, e.Dst)
				}
			}
		}
		for _, rules := range d.PBRPolicies {
			for _, r := range rules {
				collect(r.Match)
				if r.Match.Dst.IsValid() {
					dstExtra = append(dstExtra, r.Match.Dst)
				}
			}
		}
	}
	if len(dstExtra) > 0 {
		dstAtoms = NewAtoms(append(append([]netip.Prefix(nil), ribPrefixes...), dstExtra...))
	}
	srcAtoms := NewAtoms(srcPrefixes)
	sports := portBuckets(sportB)
	dports := portBuckets(dportB)

	keys := par.Map(parallelism, len(flows), func(i int) flowKey {
		f := flows[i]
		key := flowKey{
			ingress:  f.Ingress,
			dstAtom:  dstAtoms.Atom(f.Dst),
			srcAtom:  srcAtoms.Atom(f.Src),
			sportBkt: bucketOf(sports, f.SrcPort),
			dpBkt:    bucketOf(dports, f.DstPort),
		}
		if protoSensitive {
			key.proto = f.Proto
		}
		return key
	})

	out := &FlowECs{Inputs: len(flows)}
	bySig := map[flowKey]int{}
	for i, f := range flows {
		key := keys[i]
		idx, ok := bySig[key]
		if !ok {
			idx = len(out.Classes)
			bySig[key] = idx
			out.Classes = append(out.Classes, FlowClass{Rep: f})
		}
		out.Classes[idx].Flows = append(out.Classes[idx].Flows, f)
		out.Classes[idx].Volume += f.Volume
	}
	return out
}

// portBuckets turns boundary points into a sorted boundary list.
func portBuckets(b map[uint16]bool) []uint16 {
	out := make([]uint16, 0, len(b))
	for p := range b {
		out = append(out, p)
	}
	slices.Sort(out)
	return out
}

// bucketOf returns the index of the bucket containing port.
func bucketOf(boundaries []uint16, port uint16) int {
	lo, hi := 0, len(boundaries)
	for lo < hi {
		mid := (lo + hi) / 2
		if boundaries[mid] <= port {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// RIBPrefixes collects the distinct prefixes of a set of routes — the input
// the flow-EC computation needs.
func RIBPrefixes(routes []netmodel.Route) []netip.Prefix {
	seen := map[netip.Prefix]bool{}
	var out []netip.Prefix
	for _, r := range routes {
		if !seen[r.Prefix] {
			seen[r.Prefix] = true
			out = append(out, r.Prefix)
		}
	}
	return out
}
