// Package ec implements Hoyan's equivalence-class (EC) techniques (§3.1):
//
//   - Route ECs: input routes are equivalent when they are injected at the
//     same router/VRF, their prefixes match identically against every prefix
//     set in the network and trigger the same aggregates, and all their BGP
//     attributes agree. One representative per EC is simulated; RIB rows are
//     then replicated to the member prefixes (~4× reduction on the WAN).
//
//   - Flow ECs: flows are equivalent when their longest-prefix matches on
//     all RIBs agree — computed via address-space atoms — and they are
//     indistinguishable to every ACL/PBR rule (~100× reduction).
package ec

import (
	"fmt"
	"net/netip"
	"slices"
	"strings"
	"sync"

	"hoyan/internal/config"
	"hoyan/internal/netmodel"
	"hoyan/internal/par"
	"hoyan/internal/vsb"
)

// RouteClass is one route equivalence class; Routes[0] is the simulated
// representative.
type RouteClass struct {
	Routes []netmodel.Route
}

// Rep returns the representative input route.
func (c *RouteClass) Rep() netmodel.Route { return c.Routes[0] }

// RouteECs is the partition of input routes into equivalence classes.
type RouteECs struct {
	Classes []RouteClass
	// Inputs is the total number of input routes partitioned.
	Inputs int

	// UniquePrefixes counts the distinct input prefixes interned during
	// classification (0 on a zero-valued RouteECs).
	UniquePrefixes int

	// Memoized expansion in deterministic (class-order) form: ExpandRIB is
	// called once per (device, vrf) table, so the rep→members walk is computed
	// once and reused.
	expOnce    sync.Once
	expReps    []netip.Prefix
	expMembers [][]netip.Prefix
}

// Reduction returns the input-count reduction factor (inputs / classes).
func (e *RouteECs) Reduction() float64 {
	if len(e.Classes) == 0 {
		return 1
	}
	return float64(e.Inputs) / float64(len(e.Classes))
}

// Representatives returns one input route per class.
func (e *RouteECs) Representatives() []netmodel.Route {
	out := make([]netmodel.Route, len(e.Classes))
	for i := range e.Classes {
		out[i] = e.Classes[i].Rep()
	}
	return out
}

// ComputeRouteECs partitions the input routes per the §3.1 criteria.
// Signature computation — the prefix-list sweep dominating the cost — fans
// out over Options-style parallelism (0 = GOMAXPROCS, 1 = sequential) into
// per-input slots; classes are then grouped sequentially in input order, so
// the partition is identical at any parallelism.
func ComputeRouteECs(net *config.Network, profiles vsb.Profiles, inputs []netmodel.Route, parallelism int) *RouteECs {
	if profiles == nil {
		profiles = vsb.Defaults()
	}
	// Gather every prefix list in the network once, with its device's VSB
	// profile (the match result can be vendor-dependent for family-mismatch
	// cases).
	type listRef struct {
		dev  string
		name string
	}
	var lists []listRef
	var aggs []netip.Prefix
	for _, dev := range net.DeviceNames() {
		d := net.Devices[dev]
		for _, name := range sortedListNames(d) {
			lists = append(lists, listRef{dev: dev, name: name})
		}
		for _, a := range d.Aggregates {
			aggs = append(aggs, a.Prefix)
		}
	}

	// The prefix-list sweep — the dominating cost — depends only on the
	// route's prefix, and many inputs share a prefix. Intern prefixes into
	// dense IDs and compute the match-bit row once per unique prefix; the
	// per-input signature then just splices the memoized row in.
	interner := netmodel.NewInterner()
	inputPID := make([]netmodel.PrefixID, len(inputs))
	for i := range inputs {
		inputPID[i] = interner.InternPrefix(inputs[i].Prefix)
	}
	nPrefixes := interner.NumPrefixes()
	rows := par.Map(parallelism, nPrefixes, func(pi int) string {
		p, _ := interner.Prefix(netmodel.PrefixID(pi))
		row := make([]byte, 0, len(lists)+len(aggs)+1)
		// (2) same matching results across all prefix sets and aggregates.
		for _, lr := range lists {
			d := net.Devices[lr.dev]
			if d.PrefixLists[lr.name].Match(p, profiles.For(d.Vendor)) {
				row = append(row, '1')
			} else {
				row = append(row, '0')
			}
		}
		row = append(row, '|')
		for _, a := range aggs {
			if a.Bits() < p.Bits() && a.Contains(p.Addr()) {
				row = append(row, '1')
			} else {
				row = append(row, '0')
			}
		}
		return string(row)
	})

	sigs := par.Map(parallelism, len(inputs), func(i int) string {
		r := inputs[i]
		var b strings.Builder
		b.Grow(len(rows[inputPID[i]]) + 64)
		// (1) same injection router and VRF.
		b.WriteString(r.Device)
		b.WriteByte('|')
		b.WriteString(r.VRF)
		b.WriteByte('|')
		b.WriteString(rows[inputPID[i]])
		// (3) same values for all BGP attributes.
		fmt.Fprintf(&b, "|%s|%d|%d|%d|%s|%s|%s",
			r.NextHop, r.LocalPref, r.MED, r.Weight, r.Communities, r.ASPath, r.Origin)
		return b.String()
	})

	bySig := make(map[string]int)
	out := &RouteECs{Inputs: len(inputs), UniquePrefixes: nPrefixes}
	for i, r := range inputs {
		sig := sigs[i]
		idx, ok := bySig[sig]
		if !ok {
			idx = len(out.Classes)
			bySig[sig] = idx
			out.Classes = append(out.Classes, RouteClass{})
		}
		out.Classes[idx].Routes = append(out.Classes[idx].Routes, r)
	}
	return out
}

// Expansion maps each representative prefix to the member prefixes whose RIB
// rows should be cloned from it (excluding the representative itself).
func (e *RouteECs) Expansion() map[netip.Prefix][]netip.Prefix {
	reps, members := e.expansion()
	out := make(map[netip.Prefix][]netip.Prefix, len(reps))
	for i, rep := range reps {
		out[rep] = append(out[rep], members[i]...)
	}
	return out
}

// expansion returns the memoized rep→members pairs in class order. Distinct
// classes can share a representative prefix (same prefix, different
// attributes), so reps may repeat; walking the pairs in order is equivalent
// to walking the Expansion map.
func (e *RouteECs) expansion() ([]netip.Prefix, [][]netip.Prefix) {
	e.expOnce.Do(func() {
		for i := range e.Classes {
			c := &e.Classes[i]
			rep := c.Rep().Prefix
			var ms []netip.Prefix
			for _, r := range c.Routes[1:] {
				if r.Prefix != rep {
					ms = append(ms, r.Prefix)
				}
			}
			if len(ms) > 0 {
				e.expReps = append(e.expReps, rep)
				e.expMembers = append(e.expMembers, ms)
			}
		}
	})
	return e.expReps, e.expMembers
}

// ExpandRIB replicates the representative prefixes' rows onto the member
// prefixes of their classes, realizing the EC speedup: simulate one route
// per EC, then clone results.
//
// The expansion walk is memoized across tables (ExpandRIB runs once per
// (device, vrf)), and each member gets exactly one merged slice that the RIB
// adopts in place of copying (ReplaceOwned). The original per-call behaviour
// is preserved in ExpandRIBLegacy.
func (e *RouteECs) ExpandRIB(rib *netmodel.RIB) {
	reps, members := e.expansion()
	for ri, rep := range reps {
		rows := rib.Routes(rep)
		if len(rows) == 0 {
			continue
		}
		for _, m := range members[ri] {
			existing := rib.Routes(m)
			merged := make([]netmodel.Route, 0, len(existing)+len(rows))
			merged = append(merged, existing...)
			for _, r := range rows {
				r.Prefix = m
				merged = append(merged, r)
			}
			rib.ReplaceOwned(m, merged)
		}
	}
}

// ExpandRIBLegacy is the original expansion: it rebuilds the rep→member map
// per call and copies each member's rows twice. Kept as the reference behind
// the engine's index opt-out so speedup measurements compare against the
// seed implementation.
func (e *RouteECs) ExpandRIBLegacy(rib *netmodel.RIB) {
	for rep, members := range e.Expansion() {
		rows := rib.Routes(rep)
		if len(rows) == 0 {
			continue
		}
		for _, m := range members {
			cloned := make([]netmodel.Route, len(rows))
			for i, r := range rows {
				r.Prefix = m
				cloned[i] = r
			}
			existing := rib.Routes(m)
			rib.Replace(m, append(append([]netmodel.Route(nil), existing...), cloned...))
		}
	}
}

func sortedListNames(d *config.Device) []string {
	out := make([]string, 0, len(d.PrefixLists))
	for name := range d.PrefixLists {
		out = append(out, name)
	}
	slices.Sort(out)
	return out
}
