package bgp

import (
	"context"
	"net/netip"

	"hoyan/internal/config"
	"hoyan/internal/isis"
	"hoyan/internal/netmodel"
)

// State is a converged simulation captured for warm-started re-simulation:
// the session graph, adj-RIB-ins, local candidates, per-table RIBs, and the
// advertisement-suppression bookkeeping, all as of the fixpoint.
//
// The captured maps own their structure but share candidate/route slices with
// whoever else read the base result; that is safe because the simulation only
// ever installs fresh slices (deliver, decide, refreshAggregate) and never
// mutates stored ones. The RIBs are shallow clones taken before the engine
// expands representative prefixes in place, so a State stays pristine however
// the corresponding Result is post-processed.
type State struct {
	opts     Options
	sessions map[string][]*session
	adjIn    map[tableKey]map[netip.Prefix]map[string][]cand
	locals   map[tableKey]map[netip.Prefix][]cand
	ribs     map[tableKey]*netmodel.RIB
	lastAdv  map[tableKey]map[netip.Prefix]string
	aggOn    map[tableKey]map[netip.Prefix]bool
}

// Delta tells Resimulate what changed relative to the base run. The network
// passed to Resimulate must already reflect the new topology; configurations
// must be unchanged (callers with config deltas re-simulate from scratch).
type Delta struct {
	// DistChanged maps each device whose IGP view changed to the set of
	// destinations whose distance from it differs (including appearing or
	// disappearing). Next-hop resolution reads the IGP only as
	// dist(device, AddrOwner(nextHop)), so a prefix of such a device's table
	// is re-decided only when one of its candidates' owners is in the set.
	DistChanged map[string]map[string]bool
	// ChangedLinks are links whose Up state flipped. Their endpoints'
	// tables are re-decided (resolution consults adjacent links directly).
	ChangedLinks []netmodel.LinkID
	// NodesDown are devices that went down: their tables are purged and their
	// advertisements withdrawn everywhere.
	NodesDown []string
}

// ResimStats reports how much work a warm restart performed.
type ResimStats struct {
	// TablesDirty is the number of (device, vrf) tables seeded dirty.
	TablesDirty int
	// TablesTotal is the number of tables in the base state.
	TablesTotal int
	// Rounds is the number of fixpoint rounds the warm restart ran.
	Rounds int
	// ChangedDevices is every device whose table content actually differs
	// from the base state (purged or re-decided to different rows).
	ChangedDevices map[string]bool
}

// SimulateWithState runs a full simulation and captures its converged state
// for later warm restarts.
func SimulateWithState(net *config.Network, igp *isis.Result, inputs []netmodel.Route, opts Options) (*Result, *State) {
	s := newSim(net, igp, opts)
	s.originateLocals(inputs)
	res := s.run(s.allDirty())
	// A captured State never retains the originating run's context: a later
	// warm restart must not observe a long-cancelled deadline. ResimulateCtx
	// installs the restart's own context instead.
	capturedOpts := s.opts
	capturedOpts.Ctx = nil
	st := &State{
		opts:     capturedOpts,
		sessions: s.sessions,
		adjIn:    s.adjIn,
		locals:   s.locals,
		ribs:     cloneRIBs(s.ribs),
		lastAdv:  s.lastAdv,
		aggOn:    s.aggOn,
	}
	return res, st
}

// Resimulate re-runs the fixpoint warm-started from the captured state: it
// withdraws candidates whose sessions died, re-originates and diffs local
// candidates (covering input-route changes), and seeds the dirty-set loop
// with only the tables the delta can touch. Unchanged tables keep their base
// RIB rows verbatim.
//
// Byte-identity with a from-scratch simulation follows from the fixpoint
// being deterministic per table: a table's converged content is a function of
// its local candidates, its peers' final exports, and the resolution
// environment (IGP costs, adjacent links, address ownership). Every way any
// of those can change under a topology/input delta seeds that table dirty
// here, and changed decisions always re-advertise (advSignature covers all
// exported fields), so changes cascade exactly as they would from scratch.
func (st *State) Resimulate(net *config.Network, igp *isis.Result, inputs []netmodel.Route, d Delta) (*Result, *ResimStats) {
	return st.ResimulateCtx(nil, net, igp, inputs, d, 0)
}

// ResimulateCtx is Resimulate with a cancellation context: the warm-started
// fixpoint polls ctx between rounds and bails out early once it is done. The
// caller must discard the (incomplete) result whenever ctx.Err() != nil. A nil
// ctx disables polling.
//
// parallelism overrides the captured Options.Parallelism for this restart
// when non-zero: serve's query workers cap warm forks below the engine-wide
// setting so one tenant's queries cannot occupy every core. Zero keeps the
// captured setting. The result is byte-identical at every value.
func (st *State) ResimulateCtx(ctx context.Context, net *config.Network, igp *isis.Result, inputs []netmodel.Route, d Delta, parallelism int) (*Result, *ResimStats) {
	opts := st.opts
	opts.Ctx = ctx
	if parallelism != 0 {
		opts.Parallelism = parallelism
	}
	s := newSim(net, igp, opts)
	// Copy-on-write: only the outer maps are copied here; each table's inner
	// maps stay shared with the captured state until the first write to that
	// table privatizes them (sim.own). Warm restarts typically write a small
	// fraction of the tables, so this skips most of the cloning work.
	s.adjIn = outerCopy(st.adjIn)
	s.locals = outerCopy(st.locals)
	s.ribs = outerCopy(st.ribs)
	s.lastAdv = outerCopy(st.lastAdv)
	s.aggOn = outerCopy(st.aggOn)
	s.shared = make(map[tableKey]bool, len(st.ribs))
	for _, k := range s.tableKeys() {
		s.shared[k] = true
	}

	changed := make(map[string]bool)
	s.dirtyDevs = changed

	dirty := make(map[tableKey]map[netip.Prefix]bool)
	mark := func(k tableKey, p netip.Prefix) {
		if dirty[k] == nil {
			dirty[k] = make(map[netip.Prefix]bool)
		}
		dirty[k][p] = true
	}
	// markTable dirties every prefix the table has any state for.
	markTable := func(k tableKey) {
		for p := range s.locals[k] {
			mark(k, p)
		}
		for p := range s.adjIn[k] {
			mark(k, p)
		}
		if rib := s.ribs[k]; rib != nil {
			for _, p := range rib.Prefixes() {
				mark(k, p)
			}
		}
	}

	stats := &ResimStats{TablesTotal: len(st.ribs)}

	// 1. Purge every table of a downed device; its peers learn of the loss
	// through the session diff below.
	down := make(map[string]bool, len(d.NodesDown))
	for _, n := range d.NodesDown {
		down[n] = true
	}
	if len(down) > 0 {
		for _, k := range s.tableKeys() {
			if !down[k.dev] {
				continue
			}
			delete(s.adjIn, k)
			delete(s.locals, k)
			delete(s.ribs, k)
			delete(s.lastAdv, k)
			delete(s.aggOn, k)
			changed[k.dev] = true
		}
	}

	// 2. Diff the session graph. Configurations are unchanged, so a session
	// is identified by (local, remote, vrf): a removed session withdraws the
	// sender's candidates at the receiver; an added session forces the local
	// side to re-advertise its entire table.
	type sessID struct{ local, remote, vrf string }
	baseSess := make(map[sessID]bool)
	for local, ss := range st.sessions {
		for _, sess := range ss {
			baseSess[sessID{local, sess.remote, sess.vrf}] = true
		}
	}
	newSess := make(map[sessID]bool)
	for local, ss := range s.sessions {
		for _, sess := range ss {
			id := sessID{local, sess.remote, sess.vrf}
			newSess[id] = true
			if !baseSess[id] {
				// Added: the local side must (re-)advertise everything it has
				// in this vrf. Clearing lastAdv forces the re-advertisement
				// even where the decision is unchanged.
				k := tableKey{sess.local, sess.vrf}
				delete(s.lastAdv, k)
				markTable(k)
			}
		}
	}
	for id := range baseSess {
		if newSess[id] {
			continue
		}
		// Removed: the receiver drops everything it learned over it.
		k := tableKey{id.remote, id.vrf}
		if down[k.dev] {
			continue // table already purged
		}
		s.own(k)
		for p, byFrom := range s.adjIn[k] {
			if _, ok := byFrom[id.local]; !ok {
				continue
			}
			fresh := make(map[string][]cand, len(byFrom)-1)
			for from, cs := range byFrom {
				if from != id.local {
					fresh[from] = cs
				}
			}
			if len(fresh) == 0 {
				delete(s.adjIn[k], p)
			} else {
				s.adjIn[k][p] = fresh
			}
			mark(k, p)
		}
	}

	// 3. Re-originate local candidates on the new network and diff against
	// the captured ones: input-route changes, direct/redistributed routes
	// that appear or vanish with topology state. Aggregate candidates are
	// maintained by the fixpoint itself and carried over unchanged.
	fresh := newSim(net, igp, st.opts)
	fresh.originateLocals(inputs)
	for _, k := range unionKeys(s.locals, fresh.locals) {
		if down[k.dev] {
			continue
		}
		prefixes := make(map[netip.Prefix]bool)
		for p := range s.locals[k] {
			prefixes[p] = true
		}
		for p := range fresh.locals[k] {
			prefixes[p] = true
		}
		for p := range prefixes {
			oldAll := s.locals[k][p]
			oldPlain, oldAggs := splitAggregates(oldAll)
			newPlain := fresh.locals[k][p]
			if candsEqual(oldPlain, newPlain) {
				continue
			}
			merged := make([]cand, 0, len(newPlain)+len(oldAggs))
			merged = append(merged, newPlain...)
			merged = append(merged, oldAggs...)
			m := s.localsOf(k)
			if len(merged) == 0 {
				delete(m, p)
			} else {
				m[p] = merged
			}
			mark(k, p)
		}
	}

	// 4. Tables whose next-hop resolution environment changed. Endpoints of
	// flipped links re-decide everything: resolution consults their adjacent
	// links and direct subnets without going through the IGP (FindLink,
	// onDirectSubnet). Any other device with a changed IGP view re-decides
	// only the prefixes holding a candidate whose next-hop owner's distance
	// changed — resolution reads the IGP solely as dist(dev, owner), so no
	// other prefix can resolve differently.
	endpoints := make(map[string]bool, 2*len(d.ChangedLinks))
	for _, id := range d.ChangedLinks {
		endpoints[id.A] = true
		endpoints[id.B] = true
	}
	if len(endpoints) > 0 || len(d.DistChanged) > 0 {
		for _, k := range s.tableKeys() {
			if endpoints[k.dev] {
				markTable(k)
				continue
			}
			if cd := d.DistChanged[k.dev]; len(cd) > 0 {
				s.markDistAffected(k, cd, mark)
			}
		}
	}

	stats.TablesDirty = len(dirty)
	res := s.run(dirty)
	stats.Rounds = res.Rounds

	// Many seeded-dirty tables re-decide to exactly their base rows. Shrink
	// the changed set to devices whose content actually differs, so the
	// downstream stages (expansion, global-RIB merge, flow re-forwarding)
	// reuse base state for the rest.
	sKeys := ribKeysByDev(s.ribs, changed)
	stKeys := ribKeysByDev(st.ribs, changed)
	for dev := range changed {
		a, b := sKeys[dev], stKeys[dev]
		if len(a) != len(b) {
			continue
		}
		same := true
		for _, k := range a {
			base, ok := st.ribs[k]
			if !ok || !s.ribs[k].EqualContent(base) {
				same = false
				break
			}
		}
		if same {
			delete(changed, dev)
		}
	}
	// Callers post-process changed devices' tables in place (prefix
	// expansion), so none of them may still alias the captured state.
	for _, k := range s.tableKeys() {
		if changed[k.dev] {
			s.own(k)
		}
	}
	stats.ChangedDevices = changed
	return res, stats
}

// markDistAffected dirties the prefixes of table k that hold at least one
// candidate whose resolution depends on a changed distance. Local non-static
// candidates resolve trivially; next hops owned by the device itself cost 0
// either way; unknown owners resolve through direct subnets, which only
// adjacency changes (handled by endpoint marking) can affect.
func (s *sim) markDistAffected(k tableKey, cd map[string]bool, mark func(tableKey, netip.Prefix)) {
	affects := func(cs []cand) bool {
		for _, c := range cs {
			if c.local && c.route.Protocol != netmodel.ProtoStatic {
				continue
			}
			nh := c.route.NextHop
			if !nh.IsValid() {
				continue
			}
			owner := s.net.Topo.AddrOwner(nh)
			if owner == "" || owner == k.dev {
				continue
			}
			if cd[owner] {
				return true
			}
		}
		return false
	}
	for p, cs := range s.locals[k] {
		if affects(cs) {
			mark(k, p)
		}
	}
	for p, byFrom := range s.adjIn[k] {
		for _, cs := range byFrom {
			if affects(cs) {
				mark(k, p)
				break
			}
		}
	}
}

// ribKeysByDev indexes table keys by device, restricted to devices in want.
func ribKeysByDev(m map[tableKey]*netmodel.RIB, want map[string]bool) map[string][]tableKey {
	out := make(map[string][]tableKey, len(want))
	for k := range m {
		if want[k.dev] {
			out[k.dev] = append(out[k.dev], k)
		}
	}
	return out
}

// tableKeys returns every table the simulation has any state for.
func (s *sim) tableKeys() []tableKey {
	seen := make(map[tableKey]bool)
	for k := range s.locals {
		seen[k] = true
	}
	for k := range s.adjIn {
		seen[k] = true
	}
	for k := range s.ribs {
		seen[k] = true
	}
	for k := range s.lastAdv {
		seen[k] = true
	}
	for k := range s.aggOn {
		seen[k] = true
	}
	out := make([]tableKey, 0, len(seen))
	for k := range seen {
		out = append(out, k)
	}
	return out
}

func unionKeys(a, b map[tableKey]map[netip.Prefix][]cand) []tableKey {
	seen := make(map[tableKey]bool, len(a)+len(b))
	for k := range a {
		seen[k] = true
	}
	for k := range b {
		seen[k] = true
	}
	out := make([]tableKey, 0, len(seen))
	for k := range seen {
		out = append(out, k)
	}
	return out
}

// splitAggregates separates a local candidate slice into plain candidates and
// fixpoint-maintained aggregate candidates (which always sit at the end).
func splitAggregates(cs []cand) (plain, aggs []cand) {
	for _, c := range cs {
		if c.route.Protocol == netmodel.ProtoAggregate {
			aggs = append(aggs, c)
		} else {
			plain = append(plain, c)
		}
	}
	return plain, aggs
}

func candsEqual(a, b []cand) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !candEqual(a[i], b[i]) {
			return false
		}
	}
	return true
}

func candEqual(a, b cand) bool {
	if a.ebgp != b.ebgp || a.local != b.local || a.direct32 != b.direct32 {
		return false
	}
	ra, rb := a.route, b.route
	return ra.AttrsEqual(rb) && ra.Peer == rb.Peer && ra.Source == rb.Source &&
		ra.IGPCost == rb.IGPCost && ra.ViaSR == rb.ViaSR
}

// outerCopy copies only the per-table map; the inner values stay shared until
// sim.own privatizes a table.
func outerCopy[V any](m map[tableKey]V) map[tableKey]V {
	out := make(map[tableKey]V, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// own privatizes table k's inner maps when they are still shared with a
// captured State. Every write path to per-table state calls it first, so a
// warm restart clones exactly the tables it touches. The cloned structure
// stops at the leaf candidate/route slices: the fixpoint only installs fresh
// slices, so shared leaves are never written through either side.
func (s *sim) own(k tableKey) {
	if !s.shared[k] {
		return
	}
	delete(s.shared, k)
	if m, ok := s.adjIn[k]; ok {
		cp := make(map[netip.Prefix]map[string][]cand, len(m))
		for p, byFrom := range m {
			fp := make(map[string][]cand, len(byFrom))
			for from, cs := range byFrom {
				fp[from] = cs
			}
			cp[p] = fp
		}
		s.adjIn[k] = cp
	}
	if m, ok := s.locals[k]; ok {
		cp := make(map[netip.Prefix][]cand, len(m))
		for p, cs := range m {
			cp[p] = cs
		}
		s.locals[k] = cp
	}
	if t, ok := s.ribs[k]; ok {
		s.ribs[k] = t.ShallowClone()
	}
	if m, ok := s.lastAdv[k]; ok {
		cp := make(map[netip.Prefix]string, len(m))
		for p, sig := range m {
			cp[p] = sig
		}
		s.lastAdv[k] = cp
	}
	if m, ok := s.aggOn[k]; ok {
		cp := make(map[netip.Prefix]bool, len(m))
		for p, on := range m {
			cp[p] = on
		}
		s.aggOn[k] = cp
	}
}

func cloneRIBs(m map[tableKey]*netmodel.RIB) map[tableKey]*netmodel.RIB {
	out := make(map[tableKey]*netmodel.RIB, len(m))
	for k, rib := range m {
		out[k] = rib.ShallowClone()
	}
	return out
}
