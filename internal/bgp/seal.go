package bgp

import (
	"net/netip"

	"hoyan/internal/netmodel"
)

// Seal configures the boundary-sealed simulation mode behind the sharded
// verifier (internal/shard): the fixpoint runs only over the devices inside
// one shard, every advertisement crossing the seam to an outside device is
// captured into the shard's boundary contract instead of being delivered,
// and the inbound contract routes are replayed once at start as frozen
// external inputs through the exact same delivery path (import policy,
// AS-loop check, session-type defaults) a live message would take.
//
// Sealed runs always use the indexed fixpoint; Options.Legacy is ignored.
// State capture (SimulateWithState) does not support sealing.
type Seal struct {
	// Inside holds the shard's member devices. Devices absent from the map
	// neither originate nor decide; sessions toward them become capture
	// points.
	Inside map[string]bool
	// Inbound is the frozen boundary contract delivered into the shard
	// before the first round. Advs whose receiver is outside the shard or
	// whose (from, to, vrf) session does not exist on the current topology
	// are skipped — exactly the messages a whole-network run would not
	// deliver either.
	Inbound []netmodel.BoundaryAdv
}

// boundaryKey identifies one seam advertisement slot: the latest capture per
// key is the seam's converged message, matching the receiver's adj-RIB-in
// cell (from, prefix) in a whole-network run.
type boundaryKey struct {
	from   string
	to     string
	vrf    string
	prefix netip.Prefix
}

// captureBoundary records (or, for a withdrawal, erases) the advertisement a
// sealed table just sent across the seam. The routes are copied out of the
// per-round advertisement arena, which is recycled on the next round.
func (s *sim) captureBoundary(from string, sess *session, p netip.Prefix, adv []netmodel.Route) {
	k := boundaryKey{from: from, to: sess.remote, vrf: sess.vrf, prefix: p}
	if len(adv) == 0 {
		delete(s.sealOut, k)
		return
	}
	routes := make([]netmodel.Route, len(adv))
	copy(routes, adv)
	s.sealOut[k] = netmodel.BoundaryAdv{
		From: from, To: sess.remote, VRF: sess.vrf, Prefix: p,
		EBGP: sess.ebgp, FromAddr: sess.localAddr, Routes: routes,
	}
}

// seedBoundary replays the inbound contract into the sealed shard before the
// first round, through the standard delivery path. Delivery order is the
// contract's canonical order, so runs are deterministic regardless of how
// the caller assembled the slice.
func (s *sim) seedBoundary() {
	seal := s.opts.Seal
	inbound := make([]netmodel.BoundaryAdv, len(seal.Inbound))
	copy(inbound, seal.Inbound)
	netmodel.CanonicalizeBoundary(inbound)
	msgs := make([]msg, 0, len(inbound))
	for i := range inbound {
		adv := &inbound[i]
		if !seal.Inside[adv.To] || len(adv.Routes) == 0 {
			continue
		}
		sess := s.findSession(adv.From, adv.To, adv.VRF)
		if sess == nil {
			continue
		}
		msgs = append(msgs, msg{
			to: adv.To, vrf: adv.VRF, from: adv.From,
			prefix: adv.Prefix, routes: adv.Routes,
			ebgp: sess.ebgp, fromAddr: sess.localAddr,
		})
	}
	s.deliver(msgs)
}

// findSession looks up the directed session local→remote in the given VRF,
// or nil when the current topology keeps it down.
func (s *sim) findSession(local, remote, vrf string) *session {
	for _, sess := range s.sessions[local] {
		if sess.remote == remote && sess.vrf == vrf {
			return sess
		}
	}
	return nil
}

// boundaryOut assembles the canonicalized outbound contract of a sealed run.
func (s *sim) boundaryOut() []netmodel.BoundaryAdv {
	if len(s.sealOut) == 0 {
		return nil
	}
	out := make([]netmodel.BoundaryAdv, 0, len(s.sealOut))
	for _, adv := range s.sealOut {
		out = append(out, adv)
	}
	return netmodel.CanonicalizeBoundary(out)
}
