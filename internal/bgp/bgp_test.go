package bgp

import (
	"net/netip"
	"testing"

	"hoyan/internal/config"
	"hoyan/internal/isis"
	"hoyan/internal/netmodel"
	"hoyan/internal/policy"
	"hoyan/internal/vsb"
)

// netBuilder assembles test networks programmatically.
type netBuilder struct {
	net    *config.Network
	nextIP int
}

func newBuilder() *netBuilder {
	return &netBuilder{net: config.NewNetwork()}
}

func (b *netBuilder) device(name, vendor string, asn netmodel.ASN, loopback string) *config.Device {
	d := config.NewDevice(name, vendor)
	d.ASN = asn
	d.Loopback = netip.MustParseAddr(loopback)
	d.RouterID = d.Loopback
	d.ISISEnabled = true
	d.MaxPaths = 4
	b.net.Devices[name] = d
	b.net.Topo.AddNode(netmodel.Node{Name: name, Loopback: d.Loopback})
	return d
}

// link wires two devices with a /30, registering interfaces on both.
func (b *netBuilder) link(a, bdev string, cost uint32) *netmodel.Link {
	b.nextIP++
	base := netip.AddrFrom4([4]byte{172, 16, byte(b.nextIP >> 6), byte((b.nextIP << 2) & 0xff)})
	aAddr := base.Next()
	bAddr := aAddr.Next()
	subnet := netip.PrefixFrom(base, 30)
	aIf := "to-" + bdev
	bIf := "to-" + a
	pa, _ := aAddr.Prefix(30)
	pb, _ := bAddr.Prefix(30)
	b.net.Devices[a].Interfaces[aIf] = &config.Interface{Name: aIf, Addr: netip.PrefixFrom(aAddr, pa.Bits()), ISISCost: cost}
	b.net.Devices[bdev].Interfaces[bIf] = &config.Interface{Name: bIf, Addr: netip.PrefixFrom(bAddr, pb.Bits()), ISISCost: cost}
	return b.net.Topo.AddLink(netmodel.Link{
		A: a, B: bdev, AIface: aIf, BIface: bIf,
		ANet: subnet, BNet: subnet,
		AAddr: aAddr, BAddr: bAddr,
		CostAB: cost, CostBA: cost, Bandwidth: 1e10,
	})
}

// ebgp configures an eBGP session over the link between a and b (both sides).
func (b *netBuilder) ebgp(a, bdev string) {
	l := b.net.Topo.FindLink(a, bdev)
	aAddr, bAddr := l.AAddr, l.BAddr
	if l.A != a {
		aAddr, bAddr = bAddr, aAddr
	}
	da, db := b.net.Devices[a], b.net.Devices[bdev]
	da.Neighbors = append(da.Neighbors, &config.Neighbor{Addr: bAddr, RemoteAS: db.ASN, VRF: netmodel.DefaultVRF})
	db.Neighbors = append(db.Neighbors, &config.Neighbor{Addr: aAddr, RemoteAS: da.ASN, VRF: netmodel.DefaultVRF})
}

// ibgp configures an iBGP session between loopbacks (both sides).
func (b *netBuilder) ibgp(a, bdev string) {
	da, db := b.net.Devices[a], b.net.Devices[bdev]
	da.Neighbors = append(da.Neighbors, &config.Neighbor{Addr: db.Loopback, RemoteAS: db.ASN, VRF: netmodel.DefaultVRF, UpdateSource: true})
	db.Neighbors = append(db.Neighbors, &config.Neighbor{Addr: da.Loopback, RemoteAS: da.ASN, VRF: netmodel.DefaultVRF, UpdateSource: true})
}

func (b *netBuilder) run(inputs []netmodel.Route, opts Options) *Result {
	igp := isis.Compute(b.net.Topo, isis.Options{UseTEMetric: opts.UseTEMetric})
	return Simulate(b.net, igp, inputs, opts)
}

func inputRoute(dev, prefix string, aspath ...netmodel.ASN) netmodel.Route {
	return netmodel.Route{
		Device: dev, VRF: netmodel.DefaultVRF,
		Prefix:    netip.MustParsePrefix(prefix),
		Protocol:  netmodel.ProtoBGP,
		NextHop:   netip.MustParseAddr("203.0.113.1"), // unmodeled external peer
		LocalPref: 100,
		ASPath:    netmodel.ASPath{Seq: aspath},
		Source:    dev,
	}
}

// nextHopSelfAll sets next-hop-self on every iBGP neighbor of dev so input
// routes with external next hops can propagate over iBGP in tests.
func nextHopSelfAll(b *netBuilder, dev string) {
	for _, nb := range b.net.Devices[dev].Neighbors {
		nb.NextHopSelf = true
	}
}

// permitAllImport binds a permit-all import policy to every neighbor of dev
// (needed on vendor beta, which drops eBGP updates without a policy).
func permitAllImport(b *netBuilder, dev string) {
	d := b.net.Devices[dev]
	d.RouteMaps["PERMIT_ALL"] = &policy.RouteMap{Name: "PERMIT_ALL", Nodes: []*policy.Node{{Seq: 10, Action: policy.ActionPermit}}}
	for _, nb := range d.Neighbors {
		nb.ImportPolicy = "PERMIT_ALL"
	}
}

// lineTopo builds E(64999) -- A(65001) -- B(65001) with eBGP E-A and iBGP A-B.
func lineTopo() *netBuilder {
	b := newBuilder()
	b.device("E", "alpha", 64999, "1.0.0.1")
	b.device("A", "alpha", 65001, "1.0.0.2")
	b.device("B", "alpha", 65001, "1.0.0.3")
	b.link("E", "A", 10)
	b.link("A", "B", 10)
	b.ebgp("E", "A")
	b.ibgp("A", "B")
	return b
}

func TestBasicPropagation(t *testing.T) {
	b := lineTopo()
	// E's external subnet must cover the input route's next hop so it
	// resolves as directly connected.
	b.net.Devices["E"].Interfaces["ext"] = &config.Interface{Name: "ext", Addr: netip.MustParsePrefix("203.0.113.2/24")}

	p := netip.MustParsePrefix("10.0.0.0/24")
	res := b.run([]netmodel.Route{inputRoute("E", "10.0.0.0/24", 65100)}, Options{})
	if !res.Converged {
		t.Fatalf("did not converge in %d rounds", res.Rounds)
	}

	// E has the input route as best.
	if best := res.RIB("E", netmodel.DefaultVRF).Best(p); len(best) != 1 {
		t.Fatalf("E best = %v", best)
	}
	// A learned it over eBGP with E's ASN prepended.
	aBest := res.RIB("A", netmodel.DefaultVRF).Best(p)
	if len(aBest) != 1 {
		t.Fatalf("A best = %v", aBest)
	}
	if got := aBest[0].ASPath.String(); got != "64999 65100" {
		t.Errorf("A aspath = %q", got)
	}
	if aBest[0].Peer != "E" {
		t.Errorf("A peer = %q", aBest[0].Peer)
	}
	if aBest[0].LocalPref != 100 {
		t.Errorf("A localpref = %d (eBGP default)", aBest[0].LocalPref)
	}
	// The eBGP next hop is E's side of the E-A link.
	l := b.net.Topo.FindLink("A", "E")
	eAddr := l.AAddr
	if l.A != "E" {
		eAddr = l.BAddr
	}
	if aBest[0].NextHop != eAddr {
		t.Errorf("A nexthop = %s, want %s", aBest[0].NextHop, eAddr)
	}
	// B learned it over iBGP: same AS path, next hop unchanged.
	bBest := res.RIB("B", netmodel.DefaultVRF).Best(p)
	if len(bBest) != 1 {
		t.Fatalf("B best = %v", bBest)
	}
	if got := bBest[0].ASPath.String(); got != "64999 65100" {
		t.Errorf("B aspath = %q (iBGP must not prepend)", got)
	}
	if bBest[0].NextHop != eAddr {
		t.Errorf("B nexthop = %s, want unchanged %s", bBest[0].NextHop, eAddr)
	}
}

func TestNextHopSelf(t *testing.T) {
	b := lineTopo()
	b.net.Devices["E"].Interfaces["ext"] = &config.Interface{Name: "ext", Addr: netip.MustParsePrefix("203.0.113.2/24")}
	// A sets next-hop-self toward B.
	for _, nb := range b.net.Devices["A"].Neighbors {
		if nb.Addr == b.net.Devices["B"].Loopback {
			nb.NextHopSelf = true
		}
	}
	p := netip.MustParsePrefix("10.0.0.0/24")
	res := b.run([]netmodel.Route{inputRoute("E", "10.0.0.0/24", 65100)}, Options{})
	bBest := res.RIB("B", netmodel.DefaultVRF).Best(p)
	if len(bBest) != 1 || bBest[0].NextHop != b.net.Devices["A"].Loopback {
		t.Errorf("B best = %v, want next hop A's loopback", bBest)
	}
}

func TestASLoopPrevention(t *testing.T) {
	// Figure 10(a) shape: A(external AS) peers with M1 and M2 (same AS).
	// A route learned by A from M2 must not be accepted by M1 via A.
	b := newBuilder()
	b.device("A", "alpha", 64512, "1.0.0.1")
	b.device("M1", "beta", 65001, "1.0.0.2")
	b.device("M2", "beta", 65001, "1.0.0.3")
	b.link("A", "M1", 10)
	b.link("A", "M2", 10)
	b.ebgp("A", "M1")
	b.ebgp("A", "M2")
	// No M1-M2 iBGP (they talk through A only, as in the case study).
	b.net.Devices["M2"].Interfaces["ext"] = &config.Interface{Name: "ext", Addr: netip.MustParsePrefix("203.0.113.2/24")}

	p := netip.MustParsePrefix("1.0.0.0/24")
	res := b.run([]netmodel.Route{inputRoute("M2", "1.0.0.0/24", 65200)}, Options{})
	// A has the route (via M2, path "65001 65200").
	aBest := res.RIB("A", netmodel.DefaultVRF).Best(p)
	if len(aBest) != 1 || aBest[0].ASPath.String() != "65001 65200" {
		t.Fatalf("A best = %v", aBest)
	}
	// M1 must NOT have it: A advertises with path "64512 65001 65200",
	// which contains M1's own ASN.
	if best := res.RIB("M1", netmodel.DefaultVRF).Best(p); len(best) != 0 {
		t.Errorf("M1 must drop looped route, got %v", best)
	}
}

func TestRouteReflection(t *testing.T) {
	// RR with two clients C1, C2 and a non-client N; route from C1 must
	// reach C2 and N; route from N must reach clients only via RR.
	b := newBuilder()
	b.device("RR", "alpha", 65001, "1.0.0.1")
	b.device("C1", "alpha", 65001, "1.0.0.2")
	b.device("C2", "alpha", 65001, "1.0.0.3")
	b.device("N", "alpha", 65001, "1.0.0.4")
	b.link("RR", "C1", 10)
	b.link("RR", "C2", 10)
	b.link("RR", "N", 10)
	b.ibgp("RR", "C1")
	b.ibgp("RR", "C2")
	b.ibgp("RR", "N")
	for _, nb := range b.net.Devices["RR"].Neighbors {
		if nb.Addr == b.net.Devices["C1"].Loopback || nb.Addr == b.net.Devices["C2"].Loopback {
			nb.RRClient = true
		}
	}
	b.net.Devices["C1"].Interfaces["ext"] = &config.Interface{Name: "ext", Addr: netip.MustParsePrefix("203.0.113.2/24")}
	nextHopSelfAll(b, "C1")

	p := netip.MustParsePrefix("10.1.0.0/16")
	res := b.run([]netmodel.Route{inputRoute("C1", "10.1.0.0/16", 65100)}, Options{})
	for _, dev := range []string{"RR", "C2", "N"} {
		if best := res.RIB(dev, netmodel.DefaultVRF).Best(p); len(best) != 1 {
			t.Errorf("%s best = %v, want route reflected", dev, best)
		}
	}

	// Now inject at N (non-client): RR reflects to clients.
	b2 := newBuilder()
	b2.device("RR", "alpha", 65001, "1.0.0.1")
	b2.device("C1", "alpha", 65001, "1.0.0.2")
	b2.device("N", "alpha", 65001, "1.0.0.4")
	b2.link("RR", "C1", 10)
	b2.link("RR", "N", 10)
	b2.ibgp("RR", "C1")
	b2.ibgp("RR", "N")
	for _, nb := range b2.net.Devices["RR"].Neighbors {
		if nb.Addr == b2.net.Devices["C1"].Loopback {
			nb.RRClient = true
		}
	}
	b2.net.Devices["N"].Interfaces["ext"] = &config.Interface{Name: "ext", Addr: netip.MustParsePrefix("203.0.113.2/24")}
	nextHopSelfAll(b2, "N")
	res2 := b2.run([]netmodel.Route{inputRoute("N", "10.1.0.0/16", 65100)}, Options{})
	if best := res2.RIB("C1", netmodel.DefaultVRF).Best(p); len(best) != 1 {
		t.Errorf("C1 best = %v, want reflected from non-client", best)
	}
}

func TestNoReflectionWithoutRR(t *testing.T) {
	// Without RR config, iBGP-learned routes are not re-advertised to iBGP.
	b := newBuilder()
	b.device("X", "alpha", 65001, "1.0.0.1")
	b.device("Y", "alpha", 65001, "1.0.0.2")
	b.device("Z", "alpha", 65001, "1.0.0.3")
	b.link("X", "Y", 10)
	b.link("Y", "Z", 10)
	b.ibgp("X", "Y")
	b.ibgp("Y", "Z") // chain, no X-Z session, Y not an RR
	b.net.Devices["X"].Interfaces["ext"] = &config.Interface{Name: "ext", Addr: netip.MustParsePrefix("203.0.113.2/24")}
	nextHopSelfAll(b, "X")

	p := netip.MustParsePrefix("10.2.0.0/16")
	res := b.run([]netmodel.Route{inputRoute("X", "10.2.0.0/16", 65100)}, Options{})
	if best := res.RIB("Y", netmodel.DefaultVRF).Best(p); len(best) != 1 {
		t.Fatalf("Y best = %v", best)
	}
	if best := res.RIB("Z", netmodel.DefaultVRF).Best(p); len(best) != 0 {
		t.Errorf("Z must not learn iBGP route through non-RR Y, got %v", best)
	}
}

func TestECMPMultipath(t *testing.T) {
	// D learns the same prefix from two eBGP peers with equal attributes.
	b := newBuilder()
	b.device("D", "alpha", 65001, "1.0.0.1")
	b.device("P1", "alpha", 65002, "1.0.0.2")
	b.device("P2", "alpha", 65002, "1.0.0.3")
	b.link("D", "P1", 10)
	b.link("D", "P2", 10)
	b.ebgp("D", "P1")
	b.ebgp("D", "P2")
	for _, e := range []string{"P1", "P2"} {
		b.net.Devices[e].Interfaces["ext"] = &config.Interface{Name: "ext", Addr: netip.MustParsePrefix("203.0.113.2/24")}
	}
	p := netip.MustParsePrefix("10.3.0.0/16")
	res := b.run([]netmodel.Route{
		inputRoute("P1", "10.3.0.0/16", 65100),
		inputRoute("P2", "10.3.0.0/16", 65100),
	}, Options{})
	best := res.RIB("D", netmodel.DefaultVRF).Best(p)
	if len(best) != 2 {
		t.Fatalf("D best = %v, want 2 ECMP routes", best)
	}

	// With MaxPaths 1, only one best.
	b.net.Devices["D"].MaxPaths = 1
	res = b.run([]netmodel.Route{
		inputRoute("P1", "10.3.0.0/16", 65100),
		inputRoute("P2", "10.3.0.0/16", 65100),
	}, Options{})
	if best := res.RIB("D", netmodel.DefaultVRF).Best(p); len(best) != 1 {
		t.Errorf("MaxPaths=1: best = %v", best)
	}
}

func TestBestPathLocalPrefBeatsShorterPath(t *testing.T) {
	b := newBuilder()
	b.device("D", "alpha", 65001, "1.0.0.1")
	b.device("P1", "alpha", 65002, "1.0.0.2")
	b.device("P2", "alpha", 65003, "1.0.0.3")
	b.link("D", "P1", 10)
	b.link("D", "P2", 10)
	b.ebgp("D", "P1")
	b.ebgp("D", "P2")
	for _, e := range []string{"P1", "P2"} {
		b.net.Devices[e].Interfaces["ext"] = &config.Interface{Name: "ext", Addr: netip.MustParsePrefix("203.0.113.2/24")}
	}
	// Import policy on D for P2 session sets localpref 200.
	d := b.net.Devices["D"]
	d.RouteMaps["LP200"] = mustRouteMap(t, `route-map LP200 permit 10
 set local-preference 200
`)
	l := b.net.Topo.FindLink("D", "P2")
	p2Addr := l.AAddr
	if b.net.Topo.AddrOwner(p2Addr) != "P2" {
		p2Addr = l.BAddr
	}
	for _, nb := range d.Neighbors {
		if nb.Addr == p2Addr {
			nb.ImportPolicy = "LP200"
		}
	}
	p := netip.MustParsePrefix("10.4.0.0/16")
	res := b.run([]netmodel.Route{
		inputRoute("P1", "10.4.0.0/16", 65100),        // short path via P1
		inputRoute("P2", "10.4.0.0/16", 65100, 65101), // longer path via P2
	}, Options{})
	best := res.RIB("D", netmodel.DefaultVRF).Best(p)
	if len(best) != 1 {
		t.Fatalf("best = %v", best)
	}
	if best[0].Peer != "P2" || best[0].LocalPref != 200 {
		t.Errorf("localpref must beat AS-path length: %v", best[0])
	}
}

func mustRouteMap(t *testing.T, text string) *policyRouteMap {
	t.Helper()
	d, err := config.ParseAlpha("tmp", text)
	if err != nil {
		t.Fatal(err)
	}
	for _, rm := range d.RouteMaps {
		return rm
	}
	t.Fatal("no route map parsed")
	return nil
}

func TestMissingPolicyVSBOnEBGP(t *testing.T) {
	// Beta drops eBGP updates when the neighbor has no import policy.
	b := newBuilder()
	b.device("D", "beta", 65001, "1.0.0.1")
	b.device("P", "alpha", 65002, "1.0.0.2")
	b.link("D", "P", 10)
	b.ebgp("D", "P")
	b.net.Devices["P"].Interfaces["ext"] = &config.Interface{Name: "ext", Addr: netip.MustParsePrefix("203.0.113.2/24")}
	p := netip.MustParsePrefix("10.5.0.0/16")
	res := b.run([]netmodel.Route{inputRoute("P", "10.5.0.0/16", 65100)}, Options{})
	if best := res.RIB("D", netmodel.DefaultVRF).Best(p); len(best) != 0 {
		t.Errorf("beta without policy must reject eBGP update, got %v", best)
	}
	// Alpha accepts in the same situation.
	b.net.Devices["D"].Vendor = "alpha"
	res = b.run([]netmodel.Route{inputRoute("P", "10.5.0.0/16", 65100)}, Options{})
	if best := res.RIB("D", netmodel.DefaultVRF).Best(p); len(best) != 1 {
		t.Errorf("alpha without policy must accept eBGP update, got %v", best)
	}
}

func TestUndefinedPolicyVSB(t *testing.T) {
	b := newBuilder()
	b.device("D", "alpha", 65001, "1.0.0.1")
	b.device("P", "alpha", 65002, "1.0.0.2")
	b.link("D", "P", 10)
	b.ebgp("D", "P")
	b.net.Devices["P"].Interfaces["ext"] = &config.Interface{Name: "ext", Addr: netip.MustParsePrefix("203.0.113.2/24")}
	for _, nb := range b.net.Devices["D"].Neighbors {
		nb.ImportPolicy = "TYPO_NAME" // referenced but never defined
	}
	p := netip.MustParsePrefix("10.6.0.0/16")
	res := b.run([]netmodel.Route{inputRoute("P", "10.6.0.0/16", 65100)}, Options{})
	if best := res.RIB("D", netmodel.DefaultVRF).Best(p); len(best) != 1 {
		t.Errorf("alpha accepts on undefined policy, got %v", best)
	}
	b.net.Devices["D"].Vendor = "beta"
	res = b.run([]netmodel.Route{inputRoute("P", "10.6.0.0/16", 65100)}, Options{})
	if best := res.RIB("D", netmodel.DefaultVRF).Best(p); len(best) != 0 {
		t.Errorf("beta rejects on undefined policy, got %v", best)
	}
}

func TestSRTunnelIGPCostVSB(t *testing.T) {
	// Figure 9: A has two iBGP routes for f's prefix, via B (IGP cost 10)
	// and via C (IGP cost 10). Equal costs -> ECMP. But when the route via C
	// has a higher IGP cost, only B is used — unless an SR policy toward C
	// zeroes the cost on vendor alpha, restoring C as best.
	build := func(vendorA string, srToC bool, costC uint32) *Result {
		b := newBuilder()
		b.device("A", vendorA, 65001, "1.0.0.1")
		b.device("B", "alpha", 65001, "1.0.0.2")
		b.device("C", "alpha", 65001, "1.0.0.3")
		b.link("A", "B", 10)
		b.link("A", "C", costC)
		b.ibgp("A", "B")
		b.ibgp("A", "C")
		for _, e := range []string{"B", "C"} {
			b.net.Devices[e].Interfaces["ext"] = &config.Interface{Name: "ext", Addr: netip.MustParsePrefix("203.0.113.2/24")}
		}
		// B and C both advertise the prefix with next-hop-self.
		for _, dev := range []string{"B", "C"} {
			for _, nb := range b.net.Devices[dev].Neighbors {
				nb.NextHopSelf = true
			}
		}
		if srToC {
			b.net.Devices["A"].SRPolicies = append(b.net.Devices["A"].SRPolicies,
				&config.SRPolicy{Name: "SR-C", Endpoint: b.net.Devices["C"].Loopback, Color: 100})
		}
		return b.run([]netmodel.Route{
			inputRoute("B", "10.7.0.0/16", 65100),
			inputRoute("C", "10.7.0.0/16", 65100),
		}, Options{})
	}
	p := netip.MustParsePrefix("10.7.0.0/16")

	// Higher IGP cost to C, no SR: only the B route is best.
	res := build("alpha", false, 30)
	best := res.RIB("A", netmodel.DefaultVRF).Best(p)
	if len(best) != 1 || best[0].Peer != "B" {
		t.Fatalf("no-SR best = %v, want only via B", best)
	}
	// SR policy toward C on alpha (cost-zeroing vendor): C wins (cost 0 < 10).
	res = build("alpha", true, 30)
	best = res.RIB("A", netmodel.DefaultVRF).Best(p)
	if len(best) != 1 || best[0].Peer != "C" || !best[0].ViaSR {
		t.Fatalf("alpha+SR best = %v, want via C through SR", best)
	}
	// Same config on beta (no cost zeroing): B still wins.
	res = build("beta", true, 30)
	best = res.RIB("A", netmodel.DefaultVRF).Best(p)
	if len(best) != 1 || best[0].Peer != "B" {
		t.Fatalf("beta+SR best = %v, want via B", best)
	}
}

func TestAggregation(t *testing.T) {
	b := lineTopo()
	b.net.Devices["E"].Interfaces["ext"] = &config.Interface{Name: "ext", Addr: netip.MustParsePrefix("203.0.113.2/24")}
	a := b.net.Devices["A"]
	a.Aggregates = append(a.Aggregates, config.Aggregate{
		VRF: netmodel.DefaultVRF, Prefix: netip.MustParsePrefix("10.0.0.0/8"), ASSet: true,
	})
	res := b.run([]netmodel.Route{
		inputRoute("E", "10.0.1.0/24", 65100),
		inputRoute("E", "10.0.2.0/24", 65200),
	}, Options{})
	agg := netip.MustParsePrefix("10.0.0.0/8")
	aBest := res.RIB("A", netmodel.DefaultVRF).Best(agg)
	if len(aBest) != 1 {
		t.Fatalf("aggregate not generated: %v", aBest)
	}
	// AS-set contains the contributors' ASNs.
	path := aBest[0].ASPath
	if len(path.Set) == 0 || !path.Contains(65100) || !path.Contains(65200) {
		t.Errorf("aggregate as-set = %v", path)
	}
	// The aggregate is advertised to B over iBGP.
	if best := res.RIB("B", netmodel.DefaultVRF).Best(agg); len(best) != 1 {
		t.Errorf("B aggregate = %v", best)
	}
	// Without contributors the aggregate is absent.
	res = b.run(nil, Options{})
	if best := res.RIB("A", netmodel.DefaultVRF).Best(agg); len(best) != 0 {
		t.Errorf("aggregate without contributors: %v", best)
	}
}

func TestAggregateCommonASPrefixVSB(t *testing.T) {
	mk := func(vendor string) netmodel.ASPath {
		b := lineTopo()
		b.net.Devices["E"].Interfaces["ext"] = &config.Interface{Name: "ext", Addr: netip.MustParsePrefix("203.0.113.2/24")}
		a := b.net.Devices["A"]
		a.Vendor = vendor
		permitAllImport(b, "A")
		a.Aggregates = append(a.Aggregates, config.Aggregate{
			VRF: netmodel.DefaultVRF, Prefix: netip.MustParsePrefix("10.0.0.0/8"),
		})
		res := b.run([]netmodel.Route{
			inputRoute("E", "10.0.1.0/24", 65100, 65500),
			inputRoute("E", "10.0.2.0/24", 65100, 65600),
		}, Options{})
		best := res.RIB("A", netmodel.DefaultVRF).Best(netip.MustParsePrefix("10.0.0.0/8"))
		if len(best) != 1 {
			t.Fatalf("%s aggregate missing", vendor)
		}
		return best[0].ASPath
	}
	// Contributor paths on A: "64999 65100 65500" and "64999 65100 65600";
	// common prefix "64999 65100".
	if got := mk("alpha").String(); got != "64999 65100" {
		t.Errorf("alpha aggregate path = %q, want common prefix", got)
	}
	if got := mk("beta").String(); got != "" {
		t.Errorf("beta aggregate path = %q, want empty", got)
	}
}

func TestSummaryOnlySuppression(t *testing.T) {
	b := lineTopo()
	b.net.Devices["E"].Interfaces["ext"] = &config.Interface{Name: "ext", Addr: netip.MustParsePrefix("203.0.113.2/24")}
	a := b.net.Devices["A"]
	a.Aggregates = append(a.Aggregates, config.Aggregate{
		VRF: netmodel.DefaultVRF, Prefix: netip.MustParsePrefix("10.0.0.0/8"), SummaryOnly: true,
	})
	res := b.run([]netmodel.Route{inputRoute("E", "10.0.1.0/24", 65100)}, Options{})
	spec := netip.MustParsePrefix("10.0.1.0/24")
	// A still has the specific...
	if best := res.RIB("A", netmodel.DefaultVRF).Best(spec); len(best) != 1 {
		t.Fatalf("A specific missing")
	}
	// ...but B only sees the aggregate.
	if best := res.RIB("B", netmodel.DefaultVRF).Best(spec); len(best) != 0 {
		t.Errorf("B specific should be suppressed, got %v", best)
	}
	if best := res.RIB("B", netmodel.DefaultVRF).Best(netip.MustParsePrefix("10.0.0.0/8")); len(best) != 1 {
		t.Errorf("B aggregate missing")
	}
}

func TestVRFLeaking(t *testing.T) {
	b := newBuilder()
	d := b.device("D", "alpha", 65001, "1.0.0.1")
	d.VRFs["v1"] = &config.VRF{Name: "v1", ExportRTs: []string{"65001:100"}}
	d.VRFs["v2"] = &config.VRF{Name: "v2", ImportRTs: []string{"65001:100"}}
	d.VRFs["v3"] = &config.VRF{Name: "v3", ImportRTs: []string{"65001:999"}}

	in := inputRoute("D", "10.8.0.0/16", 65100)
	in.VRF = "v1"
	in.NextHop = d.Loopback // resolves locally
	res := b.run([]netmodel.Route{in}, Options{})
	p := netip.MustParsePrefix("10.8.0.0/16")
	if best := res.RIB("D", "v1").Best(p); len(best) != 1 {
		t.Fatalf("v1 best = %v", best)
	}
	if best := res.RIB("D", "v2").Best(p); len(best) != 1 {
		t.Errorf("v2 must import via RT, got %v", best)
	}
	if best := res.RIB("D", "v3").Best(p); len(best) != 0 {
		t.Errorf("v3 must not import, got %v", best)
	}
}

func TestReLeakVSB(t *testing.T) {
	// v1 exports RT1; v2 imports RT1 and exports RT2; v3 imports RT2.
	// Whether the route reaches v3 depends on the re-leaking VSB.
	mk := func(vendor string) int {
		b := newBuilder()
		d := b.device("D", vendor, 65001, "1.0.0.1")
		d.VRFs["v1"] = &config.VRF{Name: "v1", ExportRTs: []string{"rt1"}}
		d.VRFs["v2"] = &config.VRF{Name: "v2", ImportRTs: []string{"rt1"}, ExportRTs: []string{"rt2"}}
		d.VRFs["v3"] = &config.VRF{Name: "v3", ImportRTs: []string{"rt2"}}
		in := inputRoute("D", "10.9.0.0/16", 65100)
		in.VRF = "v1"
		in.NextHop = d.Loopback
		res := b.run([]netmodel.Route{in}, Options{})
		return len(res.RIB("D", "v3").Best(netip.MustParsePrefix("10.9.0.0/16")))
	}
	if got := mk("beta"); got != 1 { // beta re-leaks
		t.Errorf("beta re-leak: got %d routes in v3", got)
	}
	if got := mk("alpha"); got != 0 { // alpha does not
		t.Errorf("alpha must not re-leak: got %d routes in v3", got)
	}
}

func TestIsolationVSB(t *testing.T) {
	mk := func(vendor string) (*Result, netip.Prefix) {
		b := lineTopo()
		b.net.Devices["E"].Interfaces["ext"] = &config.Interface{Name: "ext", Addr: netip.MustParsePrefix("203.0.113.2/24")}
		b.net.Devices["A"].Vendor = vendor
		b.net.Devices["A"].Isolated = true
		res := b.run([]netmodel.Route{inputRoute("E", "10.0.0.0/24", 65100)}, Options{})
		return res, netip.MustParsePrefix("10.0.0.0/24")
	}
	// Alpha isolates via policy: A keeps learning but stops advertising.
	res, p := mk("alpha")
	if best := res.RIB("A", netmodel.DefaultVRF).Best(p); len(best) != 1 {
		t.Errorf("policy-isolated A should still learn, got %v", best)
	}
	if best := res.RIB("B", netmodel.DefaultVRF).Best(p); len(best) != 0 {
		t.Errorf("policy-isolated A must not advertise to B, got %v", best)
	}
	// Beta isolates via configuration: sessions down, A learns nothing.
	res, p = mk("beta")
	if best := res.RIB("A", netmodel.DefaultVRF).Best(p); len(best) != 0 {
		t.Errorf("session-isolated A must learn nothing, got %v", best)
	}
}

func TestAddPath(t *testing.T) {
	// RR with add-paths advertises 2 paths to its client.
	b := newBuilder()
	b.device("RR", "alpha", 65001, "1.0.0.1")
	b.device("C", "alpha", 65001, "1.0.0.2")
	b.device("P1", "alpha", 65002, "1.0.0.3")
	b.device("P2", "alpha", 65003, "1.0.0.4")
	b.link("RR", "C", 10)
	b.link("RR", "P1", 10)
	b.link("RR", "P2", 10)
	b.ibgp("RR", "C")
	b.ebgp("RR", "P1")
	b.ebgp("RR", "P2")
	for _, nb := range b.net.Devices["RR"].Neighbors {
		if nb.Addr == b.net.Devices["C"].Loopback {
			nb.RRClient = true
			nb.AddPaths = 2
		}
	}
	for _, e := range []string{"P1", "P2"} {
		b.net.Devices[e].Interfaces["ext"] = &config.Interface{Name: "ext", Addr: netip.MustParsePrefix("203.0.113.2/24")}
	}
	p := netip.MustParsePrefix("10.10.0.0/16")
	// Different AS path lengths: not ECMP, but add-path still sends both.
	res := b.run([]netmodel.Route{
		inputRoute("P1", "10.10.0.0/16", 65100),
		inputRoute("P2", "10.10.0.0/16", 65100, 65101),
	}, Options{})
	rows := res.RIB("C", netmodel.DefaultVRF).Routes(p)
	if len(rows) != 2 {
		t.Fatalf("C should hold 2 add-path routes, got %v", rows)
	}
}

func TestConvergenceWithinPaperBound(t *testing.T) {
	b := lineTopo()
	b.net.Devices["E"].Interfaces["ext"] = &config.Interface{Name: "ext", Addr: netip.MustParsePrefix("203.0.113.2/24")}
	res := b.run([]netmodel.Route{inputRoute("E", "10.0.0.0/24", 65100)}, Options{})
	if !res.Converged || res.Rounds > 20 {
		t.Errorf("converged=%v rounds=%d; paper's WAN converges within 20", res.Converged, res.Rounds)
	}
}

func TestDeterminism(t *testing.T) {
	inputs := []netmodel.Route{
		inputRoute("E", "10.0.0.0/24", 65100),
		inputRoute("E", "10.0.1.0/24", 65100),
		inputRoute("E", "10.0.2.0/24", 65200),
	}
	mk := func() *netmodel.GlobalRIB {
		b := lineTopo()
		b.net.Devices["E"].Interfaces["ext"] = &config.Interface{Name: "ext", Addr: netip.MustParsePrefix("203.0.113.2/24")}
		return b.run(inputs, Options{}).GlobalRIB()
	}
	g1, g2 := mk(), mk()
	if !g1.Equal(g2) {
		t.Error("simulation is not deterministic")
	}
}

func TestVendorProfileDivergenceIsObservable(t *testing.T) {
	// The same network simulated under a mutated profile must differ — the
	// foundation of the accuracy-diagnosis campaign.
	b := lineTopo()
	b.net.Devices["E"].Interfaces["ext"] = &config.Interface{Name: "ext", Addr: netip.MustParsePrefix("203.0.113.2/24")}
	inputs := []netmodel.Route{inputRoute("E", "10.0.0.0/24", 65100)}
	igp := isis.Compute(b.net.Topo, isis.Options{})

	truth := Simulate(b.net, igp, inputs, Options{}).GlobalRIB()

	mutated := vsb.Defaults()
	mutated["alpha"] = vsb.MutDefaultPreference.Apply(mutated["alpha"])
	got := Simulate(b.net, igp, inputs, Options{Profiles: mutated}).GlobalRIB()
	if truth.Equal(got) {
		t.Error("preference mutation must be observable in the global RIB")
	}
}

// policyRouteMap aliases policy.RouteMap for test readability.
type policyRouteMap = policy.RouteMap

func TestSessionEstablishmentRules(t *testing.T) {
	// A session requires matching remote-as on both sides, a back-reference,
	// an up remote, and (for eBGP) a direct link.
	mk := func(mutate func(b *netBuilder)) *Result {
		b := newBuilder()
		b.device("D", "alpha", 65001, "1.0.0.1")
		b.device("P", "alpha", 65002, "1.0.0.2")
		b.link("D", "P", 10)
		b.ebgp("D", "P")
		b.net.Devices["P"].Interfaces["ext"] = &config.Interface{Name: "ext", Addr: netip.MustParsePrefix("203.0.113.2/24")}
		mutate(b)
		return b.run([]netmodel.Route{inputRoute("P", "10.5.0.0/16", 65100)}, Options{})
	}
	p := netip.MustParsePrefix("10.5.0.0/16")

	// Baseline: session up, route learned.
	res := mk(func(b *netBuilder) {})
	if len(res.RIB("D", netmodel.DefaultVRF).Best(p)) != 1 {
		t.Fatal("baseline session must establish")
	}
	// Wrong remote-as on D's side: session never establishes.
	res = mk(func(b *netBuilder) {
		b.net.Devices["D"].Neighbors[0].RemoteAS = 65099
	})
	if len(res.RIB("D", netmodel.DefaultVRF).Best(p)) != 0 {
		t.Error("remote-as mismatch must keep the session down")
	}
	// Remote does not configure us back.
	res = mk(func(b *netBuilder) {
		b.net.Devices["P"].Neighbors = nil
	})
	if len(res.RIB("D", netmodel.DefaultVRF).Best(p)) != 0 {
		t.Error("one-sided session must stay down")
	}
	// Remote down.
	res = mk(func(b *netBuilder) {
		b.net.Topo.SetNodeUp("P", false)
	})
	if len(res.RIB("D", netmodel.DefaultVRF).Best(p)) != 0 {
		t.Error("session to a down device must stay down")
	}
	// eBGP link down: no direct path.
	res = mk(func(b *netBuilder) {
		b.net.Topo.SetLinkUp(b.net.Topo.FindLink("D", "P").ID(), false)
	})
	if len(res.RIB("D", netmodel.DefaultVRF).Best(p)) != 0 {
		t.Error("eBGP without a direct up link must stay down")
	}
}

func TestIBGPSessionRequiresIGPReachability(t *testing.T) {
	// X and Z configure an iBGP session but are in separate IGP islands.
	b := newBuilder()
	b.device("X", "alpha", 65001, "1.0.0.1")
	b.device("Y", "alpha", 65001, "1.0.0.2")
	b.device("Z", "alpha", 65001, "1.0.0.3")
	b.link("X", "Y", 10) // Z is isolated
	b.ibgp("X", "Z")
	b.net.Devices["X"].Interfaces["ext"] = &config.Interface{Name: "ext", Addr: netip.MustParsePrefix("203.0.113.2/24")}
	res := b.run([]netmodel.Route{inputRoute("X", "10.6.0.0/16", 65100)}, Options{})
	if len(res.RIB("Z", netmodel.DefaultVRF).Best(netip.MustParsePrefix("10.6.0.0/16"))) != 0 {
		t.Error("iBGP over a partitioned IGP must stay down")
	}
}

func TestMEDTieBreak(t *testing.T) {
	// Same AS path length, same localpref; lower MED wins.
	b := newBuilder()
	b.device("D", "alpha", 65001, "1.0.0.1")
	b.device("P1", "alpha", 65002, "1.0.0.2")
	b.device("P2", "alpha", 65002, "1.0.0.3")
	b.link("D", "P1", 10)
	b.link("D", "P2", 10)
	b.ebgp("D", "P1")
	b.ebgp("D", "P2")
	for _, e := range []string{"P1", "P2"} {
		b.net.Devices[e].Interfaces["ext"] = &config.Interface{Name: "ext", Addr: netip.MustParsePrefix("203.0.113.2/24")}
	}
	r1 := inputRoute("P1", "10.8.0.0/16", 65100)
	r1.MED = 50
	r2 := inputRoute("P2", "10.8.0.0/16", 65100)
	r2.MED = 10
	res := b.run([]netmodel.Route{r1, r2}, Options{})
	best := res.RIB("D", netmodel.DefaultVRF).Best(netip.MustParsePrefix("10.8.0.0/16"))
	if len(best) != 1 || best[0].Peer != "P2" {
		t.Errorf("lower MED must win: %v", best)
	}
}

func TestStaticBeatsBGPOnPreference(t *testing.T) {
	b := lineTopo()
	b.net.Devices["E"].Interfaces["ext"] = &config.Interface{Name: "ext", Addr: netip.MustParsePrefix("203.0.113.2/24")}
	// A static route on A for the same prefix with admin preference 1
	// (lower than eBGP's default).
	a := b.net.Devices["A"]
	a.Statics = append(a.Statics, config.StaticRoute{
		VRF: netmodel.DefaultVRF, Prefix: netip.MustParsePrefix("10.0.0.0/24"),
		NextHop: a.Loopback, Preference: 1,
	})
	res := b.run([]netmodel.Route{inputRoute("E", "10.0.0.0/24", 65100)}, Options{})
	best := res.RIB("A", netmodel.DefaultVRF).Best(netip.MustParsePrefix("10.0.0.0/24"))
	if len(best) != 1 || best[0].Protocol != netmodel.ProtoStatic {
		t.Errorf("static (pref 1) must beat eBGP (pref 20): %v", best)
	}
}
