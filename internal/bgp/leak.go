package bgp

import (
	"net/netip"
	"slices"
	"strings"

	"hoyan/internal/config"
	"hoyan/internal/netmodel"
	"hoyan/internal/policy"
)

// GlobalRT is the pseudo route-target naming the global table: a VRF that
// imports GlobalRT receives global routes (global→VPNv4 leak), and a VRF
// that exports GlobalRT injects its routes into the global table.
const GlobalRT = "global"

// leak generates intra-device VRF-leaking messages after the best set of
// (table, prefix) changed. Leaked routes travel as messages from the
// pseudo-peer "leak:<source-vrf>" so the fixpoint naturally cascades, and so
// the re-leaking VSB can recognize already-leaked routes.
func (s *sim) leak(k tableKey, p netip.Prefix, best []cand) []msg {
	d := s.net.Devices[k.dev]
	if d == nil || len(d.VRFs) == 0 {
		return nil
	}
	prof := s.profileOf(k.dev)
	env := s.envOf(d)

	// Determine the export RT set of the source table.
	var exportRTs []string
	var exportPolicy string
	if k.vrf == netmodel.DefaultVRF {
		exportRTs = []string{GlobalRT}
	} else if v := d.VRFs[k.vrf]; v != nil {
		exportRTs = v.ExportRTs
		exportPolicy = v.ExportPolicy
	}
	if len(exportRTs) == 0 {
		return nil
	}

	var out []msg
	from := "leak:" + k.vrf

	targets := leakTargets(d, k.vrf, exportRTs)
	for _, target := range targets {
		var adv []netmodel.Route
		for _, c := range best {
			r := c.route
			if r.Protocol != netmodel.ProtoBGP && r.Protocol != netmodel.ProtoAggregate {
				continue // only BGP routes participate in VPNv4 leaking
			}
			// VSB: a route that itself arrived via a leak is only re-leaked
			// on vendors with the re-leaking behaviour.
			if strings.HasPrefix(r.Peer, "leak:") && !prof.ReLeakRoutes {
				continue
			}
			// Export policy of the source VRF. VSB: whether it also applies
			// to global routes leaked into VPNv4.
			polName := exportPolicy
			if k.vrf == netmodel.DefaultVRF {
				if tv := d.VRFs[target]; tv != nil && prof.VRFExportPolicyOnGlobalLeak {
					polName = tv.ExportPolicy
				} else {
					polName = ""
				}
			}
			if polName != "" {
				rm, ok := d.RouteMaps[polName]
				if !ok {
					if !prof.AcceptOnUndefinedPolicy {
						continue
					}
				} else {
					var disp policy.Disposition
					r, disp = env.Apply(rm, r, netip.Addr{}, d.ASN)
					if disp == policy.Reject {
						continue
					}
				}
			}
			r.RouteType = netmodel.RouteCandidate
			adv = append(adv, r)
		}
		out = append(out, msg{to: k.dev, vrf: target, from: from, prefix: p, routes: adv})
	}
	return out
}

// leakTargets returns the tables on the device importing any of the export
// RTs, excluding the source table itself, in deterministic order.
func leakTargets(d *config.Device, srcVRF string, exportRTs []string) []string {
	rtSet := make(map[string]bool, len(exportRTs))
	for _, rt := range exportRTs {
		rtSet[rt] = true
	}
	var out []string
	names := make([]string, 0, len(d.VRFs))
	for name := range d.VRFs {
		names = append(names, name)
	}
	slices.Sort(names)
	for _, name := range names {
		if name == srcVRF {
			continue
		}
		for _, rt := range d.VRFs[name].ImportRTs {
			if rtSet[rt] {
				out = append(out, name)
				break
			}
		}
	}
	// A VRF exporting the GlobalRT leaks into the global table.
	if srcVRF != netmodel.DefaultVRF && rtSet[GlobalRT] {
		out = append(out, netmodel.DefaultVRF)
	}
	return out
}
