// Package bgp simulates BGP route propagation over the parsed network model:
// the fixpoint message-passing algorithm of §3.1, with best-path selection,
// route reflection, add-path, aggregation, redistribution, VRF route
// leaking, and every vendor-specific behaviour of Table 5 that touches BGP.
package bgp

import (
	"net/netip"
	"slices"
	"strings"

	"hoyan/internal/config"
	"hoyan/internal/isis"
)

// session is one established BGP session as seen from the local side.
type session struct {
	local      string
	remote     string
	vrf        string
	ebgp       bool
	localAddr  netip.Addr // our address on the session (next hop for eBGP adverts)
	remoteAddr netip.Addr // configured neighbor address
	nb         *config.Neighbor
}

// buildSessions derives the set of up sessions from neighbor configuration,
// topology, and IGP reachability. A session is up when:
//   - the neighbor address belongs to a known, up device,
//   - both sides configure each other (address + matching AS numbers),
//   - eBGP endpoints share an up link; iBGP endpoints are IGP-reachable,
//   - neither side is isolated on a session-shutdown vendor.
func buildSessions(net *config.Network, igp *isis.Result, isoSessionDown func(dev string) bool) map[string][]*session {
	out := make(map[string][]*session)
	for _, name := range net.DeviceNames() {
		d := net.Devices[name]
		node := net.Topo.Node(name)
		if node == nil || !node.Up {
			continue
		}
		if d.Isolated && isoSessionDown(name) {
			continue
		}
		for _, nb := range d.Neighbors {
			remoteName := net.Topo.AddrOwner(nb.Addr)
			if remoteName == "" || remoteName == name {
				continue
			}
			rd := net.Devices[remoteName]
			rn := net.Topo.Node(remoteName)
			if rd == nil || rn == nil || !rn.Up {
				continue
			}
			if rd.Isolated && isoSessionDown(remoteName) {
				continue
			}
			if nb.RemoteAS != rd.ASN {
				continue // misconfigured remote-as: session never establishes
			}
			// The remote must configure us back on a matching session.
			back := remoteNeighborFor(net, rd, d)
			if back == nil || back.RemoteAS != d.ASN {
				continue
			}
			ebgp := d.ASN != rd.ASN
			if ebgp {
				if net.Topo.FindLink(name, remoteName) == nil {
					continue // eBGP requires a direct up link
				}
			} else if !igp.Reachable(name, remoteName) {
				continue // iBGP rides on the IGP
			}
			out[name] = append(out[name], &session{
				local:      name,
				remote:     remoteName,
				vrf:        nb.VRF,
				ebgp:       ebgp,
				localAddr:  localSessionAddr(net, d, rd, back),
				remoteAddr: nb.Addr,
				nb:         nb,
			})
		}
		slices.SortFunc(out[name], func(a, b *session) int {
			if a.remote != b.remote {
				return strings.Compare(a.remote, b.remote)
			}
			return strings.Compare(a.vrf, b.vrf)
		})
	}
	return out
}

// remoteNeighborFor finds, on remote device rd, the neighbor entry whose
// address belongs to local device d.
func remoteNeighborFor(net *config.Network, rd, d *config.Device) *config.Neighbor {
	for _, nb := range rd.Neighbors {
		if net.Topo.AddrOwner(nb.Addr) == d.Name {
			return nb
		}
	}
	return nil
}

// localSessionAddr is the address the remote uses to reach us: the remote's
// configured neighbor address pointing at d, i.e. our interface or loopback.
func localSessionAddr(net *config.Network, d, rd *config.Device, back *config.Neighbor) netip.Addr {
	if back != nil && back.Addr.IsValid() {
		return back.Addr
	}
	return d.Loopback
}
