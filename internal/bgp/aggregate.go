package bgp

import (
	"net/netip"
	"slices"

	"hoyan/internal/netmodel"
)

// updateAggregates re-evaluates every aggregate of the table that covers the
// just-decided prefix. When an aggregate activates, deactivates, or changes
// its AS path, the aggregate's own prefix is marked dirty by returning a
// synthetic self-message.
func (s *sim) updateAggregates(k tableKey, p netip.Prefix) []msg {
	d := s.net.Devices[k.dev]
	if d == nil || len(d.Aggregates) == 0 {
		return nil
	}
	s.own(k)
	var out []msg
	for _, a := range d.Aggregates {
		if a.VRF != k.vrf {
			continue
		}
		if a.Prefix == p || a.Prefix.Bits() >= p.Bits() || !a.Prefix.Contains(p.Addr()) {
			continue
		}
		changed := s.refreshAggregate(k, a)
		if changed {
			// Rerun the decision for the aggregate prefix via an internal
			// "message" carrying no routes: delivery just marks it dirty
			// (the local candidate set was already updated in place).
			out = append(out, msg{to: k.dev, vrf: k.vrf, from: "agg:refresh", prefix: a.Prefix})
			// Suppression state may have flipped: force re-advertisement of
			// every covered prefix (summary-only withdraws specifics).
			if a.SummaryOnly {
				if rib := s.ribs[k]; rib != nil {
					for _, cp := range rib.Prefixes() {
						if cp != a.Prefix && cp.Bits() > a.Prefix.Bits() && a.Prefix.Contains(cp.Addr()) {
							delete(s.lastAdv[k], cp)
							out = append(out, msg{to: k.dev, vrf: k.vrf, from: "agg:refresh", prefix: cp})
						}
					}
				}
			}
		}
	}
	return out
}

// refreshAggregate recomputes one aggregate's activation and contributor AS
// information. It reports whether the local candidate for the aggregate
// changed.
func (s *sim) refreshAggregate(k tableKey, a aggregateOf) bool {
	s.own(k)
	rib := s.ribs[k]
	contributors := s.contributors(rib, a.Prefix)
	active := len(contributors) > 0

	if s.aggOn[k] == nil {
		s.aggOn[k] = make(map[netip.Prefix]bool)
	}
	wasOn := s.aggOn[k][a.Prefix]

	d := s.net.Devices[k.dev]
	prof := s.profileOf(k.dev)
	m := s.localsOf(k)

	// Remove any existing aggregate candidate.
	var kept []cand
	var old *cand
	for _, c := range m[a.Prefix] {
		if c.route.Protocol == netmodel.ProtoAggregate {
			cc := c
			old = &cc
			continue
		}
		kept = append(kept, c)
	}

	if !active {
		s.aggOn[k][a.Prefix] = false
		if len(kept) == 0 {
			delete(m, a.Prefix)
		} else {
			m[a.Prefix] = kept
		}
		return wasOn || old != nil
	}

	// Build the aggregate's AS path from contributors.
	var asPath netmodel.ASPath
	if a.ASSet {
		set := map[netmodel.ASN]bool{}
		for _, r := range contributors {
			for _, asn := range r.ASPath.Seq {
				set[asn] = true
			}
			for _, asn := range r.ASPath.Set {
				set[asn] = true
			}
		}
		for asn := range set {
			asPath.Set = append(asPath.Set, asn)
		}
		slices.Sort(asPath.Set)
	} else if prof.AggregateKeepsCommonASPrefix {
		// VSB: without as-set, some vendors keep the contributors' common
		// leading AS sequence; others emit an empty path.
		asPath.Seq = commonASPrefix(contributors)
	}

	newCand := cand{local: true, route: netmodel.Route{
		Device: k.dev, VRF: k.vrf, Prefix: a.Prefix,
		Protocol: netmodel.ProtoAggregate, NextHop: d.Loopback,
		LocalPref: 100, Origin: netmodel.OriginIGP, ASPath: asPath,
		Source: k.dev, Peer: "aggregate",
	}}
	m[a.Prefix] = append(kept, newCand)
	s.aggOn[k][a.Prefix] = true
	if old == nil || !old.route.ASPath.Equal(asPath) {
		return true
	}
	return !wasOn
}

// aggregateOf aliases config.Aggregate to avoid the import in this file's
// signature churn.
type aggregateOf = struct {
	VRF         string
	Prefix      netip.Prefix
	ASSet       bool
	SummaryOnly bool
}

// contributors returns the best routes strictly more specific than the
// aggregate prefix.
func (s *sim) contributors(rib *netmodel.RIB, agg netip.Prefix) []netmodel.Route {
	if rib == nil {
		return nil
	}
	var out []netmodel.Route
	for _, p := range rib.Prefixes() {
		if p == agg || p.Bits() <= agg.Bits() || !agg.Contains(p.Addr()) {
			continue
		}
		for _, r := range rib.Best(p) {
			if r.Protocol != netmodel.ProtoAggregate {
				out = append(out, r)
			}
		}
	}
	return out
}

// commonASPrefix computes the longest common leading AS sequence of the
// contributors' paths.
func commonASPrefix(rs []netmodel.Route) []netmodel.ASN {
	if len(rs) == 0 {
		return nil
	}
	common := append([]netmodel.ASN(nil), rs[0].ASPath.Seq...)
	for _, r := range rs[1:] {
		seq := r.ASPath.Seq
		n := 0
		for n < len(common) && n < len(seq) && common[n] == seq[n] {
			n++
		}
		common = common[:n]
		if len(common) == 0 {
			break
		}
	}
	return common
}
