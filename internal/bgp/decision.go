package bgp

import (
	"net/netip"
	"sort"
	"strconv"

	"hoyan/internal/config"
	"hoyan/internal/netmodel"
	"hoyan/internal/policy"
)

// decideAndAdvertise reruns the decision process for every dirty
// (table, prefix), updates the RIBs, maintains aggregates and VRF leaks, and
// returns the advertisements for the next round.
func (s *sim) decideAndAdvertise(dirty map[tableKey]map[netip.Prefix]bool) []msg {
	var out []msg

	if s.dirtyDevs != nil {
		for k := range dirty {
			s.dirtyDevs[k.dev] = true
		}
	}

	// Deterministic iteration order.
	keys := make([]tableKey, 0, len(dirty))
	for k := range dirty {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].dev != keys[j].dev {
			return keys[i].dev < keys[j].dev
		}
		return keys[i].vrf < keys[j].vrf
	})

	for _, k := range keys {
		s.own(k)
		prefixes := make([]netip.Prefix, 0, len(dirty[k]))
		for p := range dirty[k] {
			prefixes = append(prefixes, p)
		}
		sort.Slice(prefixes, func(i, j int) bool {
			return netmodel.LastAddr(prefixes[i]).Compare(netmodel.LastAddr(prefixes[j])) < 0
		})
		for _, p := range prefixes {
			best, sorted := s.decide(k, p)
			sig := advSignature(sorted)
			if s.lastAdv[k] == nil {
				s.lastAdv[k] = make(map[netip.Prefix]string)
			}
			if s.lastAdv[k][p] == sig {
				continue // steady state for this prefix
			}
			s.lastAdv[k][p] = sig
			out = append(out, s.advertise(k, p, best, sorted)...)
			out = append(out, s.leak(k, p, best)...)
			out = append(out, s.updateAggregates(k, p)...)
		}
	}
	return out
}

// decide runs best-path selection for one (table, prefix) and installs the
// result into the RIB. It returns the best (possibly ECMP) candidates and
// the full resolved candidate list in preference order (for add-path).
func (s *sim) decide(k tableKey, p netip.Prefix) (best, sorted []cand) {
	var cands []cand
	for _, c := range s.locals[k][p] {
		cands = append(cands, c)
	}
	fromKeys := make([]string, 0)
	for from := range s.adjIn[k][p] {
		fromKeys = append(fromKeys, from)
	}
	sort.Strings(fromKeys)
	for _, from := range fromKeys {
		cands = append(cands, s.adjIn[k][p][from]...)
	}

	// Resolve next hops and compute IGP costs.
	resolved := cands[:0]
	var unresolved []cand
	for _, c := range cands {
		c = s.resolve(k.dev, c)
		if c.resolved {
			resolved = append(resolved, c)
		} else {
			unresolved = append(unresolved, c)
		}
	}
	cands = resolved

	d := s.net.Devices[k.dev]
	sort.SliceStable(cands, func(i, j int) bool { return s.better(cands[i], cands[j]) })

	// Mark best + ECMP. Non-BGP protocols win on Preference alone: the
	// comparator sorts by preference first, so the top candidate's protocol
	// group takes the table.
	rib := s.ribs[k]
	if rib == nil {
		rib = netmodel.NewRIB(k.dev, k.vrf)
		s.ribs[k] = rib
	}
	maxPaths := 1
	if d != nil && d.MaxPaths > 1 {
		maxPaths = d.MaxPaths
	}
	var rows []netmodel.Route
	for i := range cands {
		c := cands[i]
		r := c.route
		r.IGPCost = c.igpCost
		r.ViaSR = c.viaSR
		if i == 0 {
			r.RouteType = netmodel.RouteBest
			best = append(best, c)
		} else if len(best) < maxPaths && s.equalCost(cands[0], c) && distinctNextHop(best, c) {
			r.RouteType = netmodel.RouteBest
			best = append(best, c)
		} else {
			r.RouteType = netmodel.RouteCandidate
		}
		rows = append(rows, r)
	}
	// Unresolved candidates stay visible as candidates for diagnosis.
	for _, c := range unresolved {
		r := c.route
		r.RouteType = netmodel.RouteCandidate
		rows = append(rows, r)
	}
	rib.Replace(p, rows)
	return best, cands
}

// resolve fills in next-hop reachability, IGP cost, and SR tunnel state.
func (s *sim) resolve(dev string, c cand) cand {
	c.resolved = false
	r := c.route
	if c.local {
		// Locally originated candidates resolve trivially, except statics
		// whose next hop must be reachable.
		if r.Protocol == netmodel.ProtoStatic {
			if !s.nextHopUsable(dev, r.NextHop) {
				return c
			}
		}
		c.resolved, c.igpCost = true, 0
		return c
	}
	if !r.NextHop.IsValid() {
		return c
	}
	owner := s.net.Topo.AddrOwner(r.NextHop)
	if owner == dev {
		c.resolved, c.igpCost = true, 0
		return c
	}
	prof := s.profileOf(dev)
	if owner == "" {
		// Unknown owner: usable only when on a directly connected subnet
		// (e.g. an un-modelled external peer address).
		if s.onDirectSubnet(dev, r.NextHop) {
			c.resolved, c.igpCost = true, 0
		}
		return c
	}
	cost, ok := s.igp.Cost(dev, owner)
	if !ok {
		if l := s.net.Topo.FindLink(dev, owner); l != nil {
			cost, ok = l.DirCost(dev, s.opts.UseTEMetric), true
		}
	}
	if !ok {
		return c
	}
	// SR tunnel: if the device configures an SR policy whose endpoint is the
	// next hop (or the owner's loopback), traffic rides the tunnel. The VSB
	// decides whether the IGP cost is zeroed (Figure 9 root cause).
	if d := s.net.Devices[dev]; d != nil {
		for _, sp := range d.SRPolicies {
			epOwner := s.net.Topo.AddrOwner(sp.Endpoint)
			if sp.Endpoint == r.NextHop || (epOwner != "" && epOwner == owner) {
				c.viaSR = true
				break
			}
		}
	}
	if c.viaSR && prof.SRTunnelIGPCostZero {
		cost = 0
	}
	c.resolved, c.igpCost = true, cost
	return c
}

func (s *sim) onDirectSubnet(dev string, nh netip.Addr) bool {
	d := s.net.Devices[dev]
	if d == nil {
		return false
	}
	for _, i := range d.Interfaces {
		if i.Addr.IsValid() && i.Addr.Masked().Contains(nh) {
			return true
		}
	}
	for _, l := range s.net.Topo.LinksOf(dev) {
		if !l.Up {
			continue
		}
		if l.A == dev && l.ANet.IsValid() && l.ANet.Contains(nh) {
			return true
		}
		if l.B == dev && l.BNet.IsValid() && l.BNet.Contains(nh) {
			return true
		}
	}
	return false
}

func (s *sim) nextHopUsable(dev string, nh netip.Addr) bool {
	if !nh.IsValid() {
		return false
	}
	owner := s.net.Topo.AddrOwner(nh)
	if owner == dev {
		return true
	}
	if owner != "" {
		if s.igp.Reachable(dev, owner) || s.net.Topo.FindLink(dev, owner) != nil {
			return true
		}
		return false
	}
	return s.onDirectSubnet(dev, nh)
}

// better is the BGP decision comparator (true when a is preferred over b).
// Non-BGP protocols compete on administrative preference first.
func (s *sim) better(a, b cand) bool {
	ra, rb := a.route, b.route
	// Administrative preference (lower wins) separates protocols.
	if ra.Preference != rb.Preference {
		return ra.Preference < rb.Preference
	}
	if ra.Protocol != netmodel.ProtoBGP || rb.Protocol != netmodel.ProtoBGP {
		// Same preference, non-BGP: deterministic order.
		return netmodel.CompareRoutes(ra, rb) < 0
	}
	if ra.Weight != rb.Weight {
		return ra.Weight > rb.Weight
	}
	if ra.LocalPref != rb.LocalPref {
		return ra.LocalPref > rb.LocalPref
	}
	if la, lb := ra.ASPath.Len(), rb.ASPath.Len(); la != lb {
		return la < lb
	}
	if ra.Origin != rb.Origin {
		return ra.Origin < rb.Origin
	}
	if ra.MED != rb.MED {
		return ra.MED < rb.MED
	}
	if a.ebgp != b.ebgp {
		return a.ebgp
	}
	if a.igpCost != b.igpCost {
		return a.igpCost < b.igpCost
	}
	// Router-ID tiebreak: the advertising device's router ID, then
	// deterministic route order.
	ia, ib := s.peerRouterID(ra.Peer), s.peerRouterID(rb.Peer)
	if ia != ib {
		return ia.Less(ib)
	}
	return netmodel.CompareRoutes(ra, rb) < 0
}

// equalCost reports whether b ties with a through the IGP-cost step
// (multipath eligibility).
func (s *sim) equalCost(a, b cand) bool {
	ra, rb := a.route, b.route
	return ra.Preference == rb.Preference &&
		ra.Protocol == rb.Protocol &&
		ra.Weight == rb.Weight &&
		ra.LocalPref == rb.LocalPref &&
		ra.ASPath.Len() == rb.ASPath.Len() &&
		ra.Origin == rb.Origin &&
		ra.MED == rb.MED &&
		a.ebgp == b.ebgp &&
		a.igpCost == b.igpCost
}

func distinctNextHop(best []cand, c cand) bool {
	for _, b := range best {
		if b.route.NextHop == c.route.NextHop {
			return false
		}
	}
	return true
}

func (s *sim) peerRouterID(peer string) netip.Addr {
	if d := s.net.Devices[peer]; d != nil && d.RouterID.IsValid() {
		return d.RouterID
	}
	return netip.Addr{}
}

// advSignature fingerprints a best-route set so unchanged results are not
// re-advertised (this is what drives the fixpoint to termination). It must
// cover every field that influences what peers receive — warm restarts rely
// on a changed decision always producing a changed signature.
func advSignature(best []cand) string {
	if len(best) == 0 {
		return ""
	}
	// Hand-rolled formatting: this runs once per (table, prefix) decision and
	// dominates fixpoint bookkeeping cost under fmt.
	b := make([]byte, 0, 96*len(best))
	appendBool := func(v bool) {
		if v {
			b = append(b, 'T')
		} else {
			b = append(b, 'F')
		}
	}
	for _, c := range best {
		r := c.route
		b = r.Prefix.AppendTo(b)
		b = append(b, '|')
		if r.NextHop.IsValid() {
			b = r.NextHop.AppendTo(b)
		}
		b = append(b, '|')
		for _, cm := range r.Communities.All() {
			b = strconv.AppendUint(b, uint64(cm), 10)
			b = append(b, ',')
		}
		b = append(b, '|')
		b = strconv.AppendUint(b, uint64(r.LocalPref), 10)
		b = append(b, '|')
		b = strconv.AppendUint(b, uint64(r.MED), 10)
		b = append(b, '|')
		b = strconv.AppendUint(b, uint64(r.Weight), 10)
		b = append(b, '|')
		for _, a := range r.ASPath.Seq {
			b = strconv.AppendUint(b, uint64(a), 10)
			b = append(b, ',')
		}
		b = append(b, '/')
		for _, a := range r.ASPath.Set {
			b = strconv.AppendUint(b, uint64(a), 10)
			b = append(b, ',')
		}
		b = append(b, '|')
		b = strconv.AppendUint(b, uint64(r.Origin), 10)
		b = append(b, '|')
		appendBool(c.ebgp)
		b = append(b, '|')
		b = strconv.AppendUint(b, uint64(c.igpCost), 10)
		b = append(b, '|')
		b = strconv.AppendUint(b, uint64(r.Protocol), 10)
		b = append(b, '|')
		b = append(b, r.Source...)
		b = append(b, '|')
		appendBool(c.local)
		appendBool(c.direct32)
		b = append(b, ';')
	}
	return string(b)
}

// advertise builds the outgoing messages for one table/prefix after its best
// set changed. Sessions with add-path draw from the full sorted candidate
// list; plain sessions advertise only the best route.
func (s *sim) advertise(k tableKey, p netip.Prefix, best, sorted []cand) []msg {
	d := s.net.Devices[k.dev]
	if d == nil {
		return nil
	}
	prof := s.profileOf(k.dev)
	// VSB: policy-isolated devices keep learning but stop advertising.
	if d.Isolated && prof.IsolationViaPolicy {
		return nil
	}
	env := s.envOf(d)
	isRR := false
	for _, sess := range s.sessions[k.dev] {
		if sess.nb.RRClient {
			isRR = true
			break
		}
	}

	var out []msg
	for _, sess := range s.sessions[k.dev] {
		if sess.vrf != k.vrf {
			continue
		}
		pol, ok := s.exportPolicy(d, sess.nb, sess.remote, prof)
		if !ok {
			continue
		}
		limit := 1
		pool := best[:min(1, len(best))]
		if sess.nb.AddPaths > 1 {
			limit = sess.nb.AddPaths
			pool = sorted
		}
		var adv []netmodel.Route
		for _, c := range pool {
			if len(adv) >= limit {
				break
			}
			// Only BGP routes (including aggregates, which are originated
			// into BGP) are advertised; direct/static/IS-IS routes stay
			// local unless redistributed.
			if c.route.Protocol != netmodel.ProtoBGP && c.route.Protocol != netmodel.ProtoAggregate {
				continue
			}
			if !s.shouldPropagate(d, sess, c, isRR) {
				continue
			}
			r := c.route
			// Suppress more-specifics covered by a summary-only aggregate.
			if s.suppressedByAggregate(d, k.vrf, r.Prefix) {
				continue
			}
			// VSB: /32 direct host routes may not be advertised to peers.
			if c.direct32 && !prof.SendDirect32ToPeer {
				continue
			}
			if pol != nil {
				var disp policy.Disposition
				r, disp = env.Apply(pol, r, sess.remoteAddr, d.ASN)
				if disp == policy.Reject {
					continue
				}
			}
			if sess.ebgp {
				r.ASPath = r.ASPath.Prepend(d.ASN)
				r.NextHop = sess.localAddr
				r.LocalPref = 0 // not carried over eBGP
			} else if sess.nb.NextHopSelf && d.Loopback.IsValid() {
				r.NextHop = d.Loopback
			}
			r.Weight = 0
			r.Preference = 0
			r.IGPCost = 0
			r.ViaSR = false
			r.RouteType = netmodel.RouteCandidate
			adv = append(adv, r)
		}
		out = append(out, msg{
			to: sess.remote, vrf: sess.vrf, from: k.dev,
			prefix: p, routes: adv, ebgp: sess.ebgp, fromAddr: sess.localAddr,
		})
	}
	return out
}

// shouldPropagate implements BGP propagation rules including route
// reflection.
func (s *sim) shouldPropagate(d *config.Device, sess *session, c cand, isRR bool) bool {
	// Split horizon: never back to the device we learned it from.
	if c.route.Peer == sess.remote {
		return false
	}
	if sess.ebgp {
		return true
	}
	// To an iBGP peer:
	if c.local || c.ebgp {
		return true // locally originated or eBGP-learned: advertise
	}
	// iBGP-learned: only a route reflector forwards, per RR rules.
	if !isRR {
		return false
	}
	learnedFromClient := false
	for _, other := range s.sessions[sess.local] {
		if other.remote == c.route.Peer && other.nb.RRClient {
			learnedFromClient = true
			break
		}
	}
	if learnedFromClient {
		return true // reflect to all
	}
	return sess.nb.RRClient // from non-client: reflect only to clients
}

func (s *sim) suppressedByAggregate(d *config.Device, vrf string, p netip.Prefix) bool {
	for _, a := range d.Aggregates {
		if a.VRF == vrf && a.SummaryOnly && a.Prefix.Bits() < p.Bits() && a.Prefix.Contains(p.Addr()) {
			if s.aggOn[tableKey{d.Name, vrf}][a.Prefix] {
				return true
			}
		}
	}
	return false
}
