package bgp

import (
	"net/netip"
	"slices"

	"hoyan/internal/config"
	"hoyan/internal/netmodel"
	"hoyan/internal/policy"
)

// decideAndAdvertise reruns the decision process for every dirty
// (table, prefix), updates the RIBs, maintains aggregates and VRF leaks, and
// returns the advertisements for the next round.
//
// This is the indexed/allocation-lean loop: the dirty set arrives as the
// dense per-table bitset deliver maintained (dense.go), iteration order
// comes from precomputed rank arrays over interned IDs instead of sorting
// strings and prefixes every round, per-table configuration (device,
// profile, policy env, sessions with resolved export policies, leak
// targets, aggregates) is read from the cached tableInfo, and the
// advertisement signature is compared byte-wise against the stored string
// before anything is allocated. The message buffer and route arena are
// reused across rounds — a returned batch is fully consumed by deliver
// before the next call. The original implementation is
// legacyDecideAndAdvertise.
func (s *sim) decideAndAdvertise() []msg {
	if s.msgScratch == nil {
		// Presized once per sim: the first round's batch is the largest, and
		// growing there doubles through several copies of a large msg slice.
		s.msgScratch = make([]msg, 0, 1024)
	}
	if s.parWorkers > 1 {
		if out, ok := s.decideAndAdvertiseParallel(); ok {
			return out
		}
	}
	out := s.msgScratch[:0]
	sc := s.stripe(0)
	sc.advUsed = 0 // last round's messages were consumed; recycle the arena

	// Deterministic iteration order: tables in (device, vrf) lexical order
	// via the interned rank array, prefixes in LastAddr order via the
	// per-pid LastAddr cache (ties broken by prefix length then address,
	// making the order total — the legacy sort leaves LastAddr ties in map
	// order, which the fixpoint result does not depend on).
	trank := s.tableRank()
	tids := s.dirtyTids
	slices.SortFunc(tids, func(a, b int32) int { return int(trank[a]) - int(trank[b]) })

	for ti64, tid := range tids {
		if ti64&63 == 63 && s.ctxDone() {
			break
		}
		ti := s.tinfo[tid]
		k := ti.k
		if s.dirtyDevs != nil {
			s.dirtyDevs[k.dev] = true
		}
		s.own(k)
		pids := s.dirtyPids[tid]
		slices.SortFunc(pids, func(a, b int32) int {
			if c := s.lastAddrs[a].Compare(s.lastAddrs[b]); c != 0 {
				return c
			}
			pa, pb := s.pfxs[a], s.pfxs[b]
			if ba, bb := pa.Bits(), pb.Bits(); ba != bb {
				return ba - bb
			}
			return pa.Addr().Compare(pb.Addr())
		})
		// Hoist the table's maps out of the prefix loop: one tableKey hash
		// each instead of one per decision. own() ran above, so none of these
		// are replaced for the rest of the round.
		// Size hint: default-VRF tables converge to roughly every prefix
		// the run has seen; non-default VRFs carry only their leaked/local
		// slice, where a full-size presize wastes more than it saves.
		hint := 0
		if k.vrf == netmodel.DefaultVRF {
			hint = len(s.pfxs)
		}
		la := s.lastAdv[k]
		if la == nil {
			la = make(map[netip.Prefix]string, hint)
			s.lastAdv[k] = la
		}
		lk := s.locals[k]
		ai := s.adjIn[k]
		rib := s.ribs[k]
		if rib == nil {
			rib = netmodel.NewRIBSized(k.dev, k.vrf, hint)
			s.ribs[k] = rib
		}
		for _, pid := range pids {
			p := s.pfxs[pid]
			best, sorted, rows := s.decide(sc, ti, lk, ai, p)
			rib.ReplaceOwned(p, rows)
			sig := appendAdvSignature(sc.sigScratch[:0], sorted)
			sc.sigScratch = sig
			if la[p] == string(sig) { // alloc-free comparison
				continue // steady state for this prefix
			}
			la[p] = string(sig)
			out = s.advertiseInto(sc, out, ti, p, pid, best, sorted)
			out = s.leakInto(sc, out, ti, p, pid, best)
			out = s.updateAggregatesInto(out, ti, tid, p)
		}
		// Clear this table's dirty marks for the next round.
		mark := s.dirtyMark[tid]
		for _, pid := range pids {
			mark[pid] = false
		}
		s.dirtyPids[tid] = pids[:0]
	}
	s.dirtyTids = tids[:0]
	s.msgScratch = out
	return out
}

// decide runs best-path selection for one (table, prefix). It returns the
// best (possibly ECMP) candidates, the full resolved candidate list in
// preference order (for add-path), and the finished RIB rows; best and
// sorted point into sc's scratch buffers that the next decide call
// overwrites, while rows are carved from sc's grow-only row arena and belong
// to the caller (the RIB adopts them via ReplaceOwned — the sequential loop
// installs immediately, the striped loop at merge time).
func (s *sim) decide(sc *stripeCtx, ti *tableInfo, lk map[netip.Prefix][]cand, ai map[netip.Prefix]map[string][]cand, p netip.Prefix) (best, sorted []cand, rows []netmodel.Route) {
	cands := sc.candScratch[:0]
	cands = append(cands, lk[p]...)
	byFrom := ai[p]
	froms := sc.fromScratch[:0]
	for from := range byFrom {
		froms = append(froms, from)
	}
	slices.Sort(froms)
	sc.fromScratch = froms
	for _, from := range froms {
		cands = append(cands, byFrom[from]...)
	}

	// Resolve next hops and compute IGP costs, mutating the scratch copies in
	// place (a cand embeds a full Route, so by-value resolve cost three big
	// copies per candidate). The stable compaction keeps the resolved
	// candidates in arrival order, matching the legacy partition.
	unresolved := sc.unresScratch[:0]
	w := 0
	for i := range cands {
		s.resolve(ti, &cands[i])
		if cands[i].resolved {
			if w != i {
				cands[w] = cands[i]
			}
			w++
		} else {
			unresolved = append(unresolved, cands[i])
		}
	}
	cands = cands[:w]
	sc.unresScratch = unresolved
	sc.candScratch = cands[:0]

	// Sort an index permutation instead of the candidates themselves: the
	// comparator then shuffles int32s rather than copying a ~200-byte struct
	// pair per comparison. A stable sort of indices initialized in slice order
	// is equivalent to a stable sort of the elements.
	ord := sc.ordScratch[:0]
	for i := range cands {
		ord = append(ord, int32(i))
	}
	if len(cands) > 1 {
		slices.SortStableFunc(ord, func(x, y int32) int { return s.cmpCand(&cands[x], &cands[y]) })
	}
	sc.ordScratch = ord
	identity := true
	for i, ix := range ord {
		if ix != int32(i) {
			identity = false
			break
		}
	}
	if identity {
		// Arrival order was already preference order (the common steady
		// state): skip materializing the permutation.
		sorted = cands
	} else {
		sorted = sc.sortScratch[:0]
		for _, ix := range ord {
			sorted = append(sorted, cands[ix])
		}
		sc.sortScratch = sorted
	}

	// Mark best + ECMP. Non-BGP protocols win on Preference alone: the
	// comparator sorts by preference first, so the top candidate's protocol
	// group takes the table.
	maxPaths := ti.maxPaths
	best = sc.bestScratch[:0]
	// Exact-size carve from the grow-only row arena; the RIB adopts it in
	// place of Replace's copy (ReplaceOwned).
	if n := len(sorted) + len(unresolved); n > 0 {
		rows = sc.takeRows(n)
	}
	for i := range sorted {
		c := &sorted[i]
		r := c.route
		r.IGPCost = c.igpCost
		r.ViaSR = c.viaSR
		if i == 0 {
			r.RouteType = netmodel.RouteBest
			best = append(best, *c)
		} else if len(best) < maxPaths && s.equalCostPtr(&sorted[0], c) && distinctNextHopPtr(best, c) {
			r.RouteType = netmodel.RouteBest
			best = append(best, *c)
		} else {
			r.RouteType = netmodel.RouteCandidate
		}
		rows = append(rows, r)
	}
	sc.bestScratch = best
	// Unresolved candidates stay visible as candidates for diagnosis.
	for i := range unresolved {
		r := unresolved[i].route
		r.RouteType = netmodel.RouteCandidate
		rows = append(rows, r)
	}
	return best, sorted, rows
}

// resolve fills in next-hop reachability, IGP cost, and SR tunnel state.
// The table's dense device ID (cached in ti) feeds the flat-array IGP cost
// lookup and the address-ownership table; string lookups remain only for the
// fallback when the IGP result was not computed against this topology index.
// The original implementation is legacyResolve.
func (s *sim) resolve(ti *tableInfo, c *cand) {
	dev, devID := ti.k.dev, ti.devID
	c.resolved = false
	nh := c.route.NextHop
	if c.local {
		// Locally originated candidates resolve trivially, except statics
		// whose next hop must be reachable.
		if c.route.Protocol == netmodel.ProtoStatic {
			if !s.nextHopUsable(dev, nh) {
				return
			}
		}
		c.resolved, c.igpCost = true, 0
		return
	}
	if !nh.IsValid() {
		return
	}
	ownerID := s.topoIdx.AddrOwnerID(nh)
	if ownerID == netmodel.NoDev {
		// Unknown owner: usable only when on a directly connected subnet
		// (e.g. an un-modelled external peer address).
		if s.onDirectSubnet(dev, nh) {
			c.resolved, c.igpCost = true, 0
		}
		return
	}
	if ownerID == devID {
		c.resolved, c.igpCost = true, 0
		return
	}
	var cost uint32
	var ok bool
	if s.igpIdxOK && devID != netmodel.NoDev {
		cost, ok = s.igp.CostID(devID, ownerID)
	} else {
		cost, ok = s.igp.Cost(dev, s.topoIdx.DevName(ownerID))
	}
	if !ok {
		if l := s.net.Topo.FindLink(dev, s.topoIdx.DevName(ownerID)); l != nil {
			cost, ok = l.DirCost(dev, s.opts.UseTEMetric), true
		}
	}
	if !ok {
		return
	}
	// SR tunnel: if the device configures an SR policy whose endpoint is the
	// next hop (or the owner's loopback), traffic rides the tunnel. The VSB
	// decides whether the IGP cost is zeroed (Figure 9 root cause).
	if d := ti.dev; d != nil {
		for _, sp := range d.SRPolicies {
			epOwner := s.topoIdx.AddrOwnerID(sp.Endpoint)
			if sp.Endpoint == nh || (epOwner != netmodel.NoDev && epOwner == ownerID) {
				c.viaSR = true
				break
			}
		}
	}
	if c.viaSR && ti.prof.SRTunnelIGPCostZero {
		cost = 0
	}
	c.resolved, c.igpCost = true, cost
}

func (s *sim) onDirectSubnet(dev string, nh netip.Addr) bool {
	d := s.net.Devices[dev]
	if d == nil {
		return false
	}
	for _, i := range d.Interfaces {
		if i.Addr.IsValid() && i.Addr.Masked().Contains(nh) {
			return true
		}
	}
	for _, l := range s.net.Topo.LinksOf(dev) {
		if !l.Up {
			continue
		}
		if l.A == dev && l.ANet.IsValid() && l.ANet.Contains(nh) {
			return true
		}
		if l.B == dev && l.BNet.IsValid() && l.BNet.Contains(nh) {
			return true
		}
	}
	return false
}

func (s *sim) nextHopUsable(dev string, nh netip.Addr) bool {
	if !nh.IsValid() {
		return false
	}
	owner := s.net.Topo.AddrOwner(nh)
	if owner == dev {
		return true
	}
	if owner != "" {
		if s.igp.Reachable(dev, owner) || s.net.Topo.FindLink(dev, owner) != nil {
			return true
		}
		return false
	}
	return s.onDirectSubnet(dev, nh)
}

// better is the BGP decision comparator (true when a is preferred over b).
// Non-BGP protocols compete on administrative preference first.
func (s *sim) better(a, b cand) bool {
	ra, rb := a.route, b.route
	// Administrative preference (lower wins) separates protocols.
	if ra.Preference != rb.Preference {
		return ra.Preference < rb.Preference
	}
	if ra.Protocol != netmodel.ProtoBGP || rb.Protocol != netmodel.ProtoBGP {
		// Same preference, non-BGP: deterministic order.
		return netmodel.CompareRoutes(ra, rb) < 0
	}
	if ra.Weight != rb.Weight {
		return ra.Weight > rb.Weight
	}
	if ra.LocalPref != rb.LocalPref {
		return ra.LocalPref > rb.LocalPref
	}
	if la, lb := ra.ASPath.Len(), rb.ASPath.Len(); la != lb {
		return la < lb
	}
	if ra.Origin != rb.Origin {
		return ra.Origin < rb.Origin
	}
	if ra.MED != rb.MED {
		return ra.MED < rb.MED
	}
	if a.ebgp != b.ebgp {
		return a.ebgp
	}
	if a.igpCost != b.igpCost {
		return a.igpCost < b.igpCost
	}
	// Router-ID tiebreak: the advertising device's router ID, then
	// deterministic route order.
	ia, ib := s.peerRouterID(ra.Peer), s.peerRouterID(rb.Peer)
	if ia != ib {
		return ia.Less(ib)
	}
	return netmodel.CompareRoutes(ra, rb) < 0
}

// equalCost reports whether b ties with a through the IGP-cost step
// (multipath eligibility).
func (s *sim) equalCost(a, b cand) bool {
	ra, rb := a.route, b.route
	return ra.Preference == rb.Preference &&
		ra.Protocol == rb.Protocol &&
		ra.Weight == rb.Weight &&
		ra.LocalPref == rb.LocalPref &&
		ra.ASPath.Len() == rb.ASPath.Len() &&
		ra.Origin == rb.Origin &&
		ra.MED == rb.MED &&
		a.ebgp == b.ebgp &&
		a.igpCost == b.igpCost
}

// equalCostPtr is the copy-free form of equalCost used by the indexed
// decision loop (a cand embeds a full Route, so the by-value form copies two
// large structs per ECMP check).
func (s *sim) equalCostPtr(a, b *cand) bool {
	ra, rb := &a.route, &b.route
	return ra.Preference == rb.Preference &&
		ra.Protocol == rb.Protocol &&
		ra.Weight == rb.Weight &&
		ra.LocalPref == rb.LocalPref &&
		ra.ASPath.Len() == rb.ASPath.Len() &&
		ra.Origin == rb.Origin &&
		ra.MED == rb.MED &&
		a.ebgp == b.ebgp &&
		a.igpCost == b.igpCost
}

func distinctNextHop(best []cand, c cand) bool {
	for _, b := range best {
		if b.route.NextHop == c.route.NextHop {
			return false
		}
	}
	return true
}

// distinctNextHopPtr is the copy-free form of distinctNextHop.
func distinctNextHopPtr(best []cand, c *cand) bool {
	for i := range best {
		if best[i].route.NextHop == c.route.NextHop {
			return false
		}
	}
	return true
}

func (s *sim) peerRouterID(peer string) netip.Addr {
	if d := s.net.Devices[peer]; d != nil && d.RouterID.IsValid() {
		return d.RouterID
	}
	return netip.Addr{}
}

// advSignature fingerprints a best-route set so unchanged results are not
// re-advertised (this is what drives the fixpoint to termination). It must
// cover every field that influences what peers receive — warm restarts rely
// on a changed decision always producing a changed signature.
func advSignature(best []cand) string {
	return string(appendAdvSignature(nil, best))
}

// appendAdvSignature is the append-flavoured form of advSignature: it writes
// the fingerprint into dst (byte-identical to the string advSignature
// returns) so the optimized decision loop can reuse one buffer across
// prefixes and only allocate when the signature actually changed.
func appendAdvSignature(dst []byte, best []cand) []byte {
	if len(best) == 0 {
		return dst
	}
	// Binary encoding with fixed-width integers and length-prefixed variable
	// fields: only injectivity matters (a changed decision must always produce
	// a changed signature, and an unchanged one never may), not readability,
	// and decimal formatting dominated fixpoint bookkeeping cost. This runs
	// once per (table, prefix) decision.
	b := dst
	if cap(b)-len(b) < 96*len(best) {
		grown := make([]byte, len(b), len(b)+96*len(best))
		copy(grown, b)
		b = grown
	}
	appendU32 := func(v uint32) {
		b = append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	appendAddr := func(a netip.Addr) {
		// As16 maps v4 into the v4-in-v6 space; the Is4 flag keeps the two
		// forms distinct so the encoding stays injective.
		flags := byte(0)
		if a.IsValid() {
			flags |= 1
		}
		if a.Is4() {
			flags |= 2
		}
		b = append(b, flags)
		a16 := a.As16()
		b = append(b, a16[:]...)
	}
	appendBool := func(v bool) {
		if v {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
	}
	for ci := range best {
		c := &best[ci]
		r := &c.route
		appendAddr(r.Prefix.Addr())
		b = append(b, byte(r.Prefix.Bits()))
		appendAddr(r.NextHop)
		comms := r.Communities.All()
		appendU32(uint32(len(comms)))
		for _, cm := range comms {
			appendU32(uint32(cm))
		}
		appendU32(r.LocalPref)
		appendU32(r.MED)
		appendU32(r.Weight)
		appendU32(uint32(len(r.ASPath.Seq)))
		for _, a := range r.ASPath.Seq {
			appendU32(uint32(a))
		}
		appendU32(uint32(len(r.ASPath.Set)))
		for _, a := range r.ASPath.Set {
			appendU32(uint32(a))
		}
		b = append(b, byte(r.Origin))
		appendBool(c.ebgp)
		appendU32(c.igpCost)
		b = append(b, byte(r.Protocol))
		appendU32(uint32(len(r.Source)))
		b = append(b, r.Source...)
		appendBool(c.local)
		appendBool(c.direct32)
	}
	return b
}

// advertiseInto builds the outgoing messages for one table/prefix after its
// best set changed, appending them to out. Sessions with add-path draw from
// the full sorted candidate list; plain sessions advertise only the best
// route. The table's sessions (pre-filtered to its VRF, with export policies
// resolved once per run) come from the cached tableInfo; per-session
// advertisement slices are carved from sc's per-round route arena, and a
// withdrawal (empty adv) allocates nothing. The original is legacyAdvertise.
func (s *sim) advertiseInto(sc *stripeCtx, out []msg, ti *tableInfo, p netip.Prefix, pid int32, best, sorted []cand) []msg {
	d := ti.dev
	// VSB: policy-isolated devices keep learning but stop advertising.
	if d == nil || !ti.advertise {
		return out
	}
	prof := ti.prof
	hasAggs := len(ti.aggs) > 0

	for i := range ti.sessions {
		si := &ti.sessions[i]
		if !si.ok {
			continue
		}
		sess, pol := si.sess, si.pol
		if si.toTID1 == 0 {
			si.toTID1 = s.tidOf(tableKey{sess.remote, sess.vrf}) + 1
		}
		limit := 1
		pool := best[:min(1, len(best))]
		if sess.nb.AddPaths > 1 {
			limit = sess.nb.AddPaths
			pool = sorted
		}
		var adv []netmodel.Route
		for ci := range pool {
			c := &pool[ci]
			if len(adv) >= limit {
				break
			}
			// Only BGP routes (including aggregates, which are originated
			// into BGP) are advertised; direct/static/IS-IS routes stay
			// local unless redistributed.
			if c.route.Protocol != netmodel.ProtoBGP && c.route.Protocol != netmodel.ProtoAggregate {
				continue
			}
			if !s.shouldPropagatePtr(d, sess, c, ti.isRR) {
				continue
			}
			r := c.route
			// Suppress more-specifics covered by a summary-only aggregate
			// (only tables that configure aggregates can suppress).
			if hasAggs && s.suppressedByAggregate(d, ti.k.vrf, r.Prefix) {
				continue
			}
			// VSB: /32 direct host routes may not be advertised to peers.
			if c.direct32 && !prof.SendDirect32ToPeer {
				continue
			}
			if pol != nil {
				var disp policy.Disposition
				r, disp = ti.env.Apply(pol, r, sess.remoteAddr, d.ASN)
				if disp == policy.Reject {
					continue
				}
			}
			if sess.ebgp {
				r.ASPath = r.ASPath.Prepend(d.ASN)
				r.NextHop = sess.localAddr
				r.LocalPref = 0 // not carried over eBGP
			} else if sess.nb.NextHopSelf && d.Loopback.IsValid() {
				r.NextHop = d.Loopback
			}
			r.Weight = 0
			r.Preference = 0
			r.IGPCost = 0
			r.ViaSR = false
			r.RouteType = netmodel.RouteCandidate
			if adv == nil {
				adv = sc.takeAdv(min(limit, len(pool)))
			}
			adv = append(adv, r)
		}
		// Sealed runs capture seam-crossing advertisements into the boundary
		// contract instead of delivering them: the receiver lives in another
		// shard and replays them from its own inbound contract. Striped
		// workers defer the capture — sealOut is shared — and the merge pass
		// applies it; the adv slice stays valid until the stripe's arena is
		// recycled next round, after the merge.
		if seal := s.opts.Seal; seal != nil && !seal.Inside[sess.remote] {
			if sc.deferCaps {
				sc.caps = append(sc.caps, capRec{from: ti.k.dev, sess: sess, p: p, adv: adv})
			} else {
				s.captureBoundary(ti.k.dev, sess, p, adv)
			}
			continue
		}
		out = append(out, msg{
			to: sess.remote, vrf: sess.vrf, from: ti.k.dev,
			prefix: p, routes: adv, ebgp: sess.ebgp, fromAddr: sess.localAddr,
			tid1: si.toTID1, pid1: pid + 1,
		})
	}
	return out
}

// cmpCand is the three-way form of better, used by the optimized decision
// sort (slices.SortStableFunc). It is written out independently rather than
// derived from better so a divergence between the two shows up as a
// legacy-vs-indexed mismatch in the equivalence suite.
func (s *sim) cmpCand(a, b *cand) int {
	ra, rb := &a.route, &b.route
	if ra.Preference != rb.Preference {
		if ra.Preference < rb.Preference {
			return -1
		}
		return 1
	}
	if ra.Protocol != netmodel.ProtoBGP || rb.Protocol != netmodel.ProtoBGP {
		return netmodel.CompareRoutes(*ra, *rb)
	}
	if ra.Weight != rb.Weight {
		if ra.Weight > rb.Weight {
			return -1
		}
		return 1
	}
	if ra.LocalPref != rb.LocalPref {
		if ra.LocalPref > rb.LocalPref {
			return -1
		}
		return 1
	}
	if la, lb := ra.ASPath.Len(), rb.ASPath.Len(); la != lb {
		if la < lb {
			return -1
		}
		return 1
	}
	if ra.Origin != rb.Origin {
		if ra.Origin < rb.Origin {
			return -1
		}
		return 1
	}
	if ra.MED != rb.MED {
		if ra.MED < rb.MED {
			return -1
		}
		return 1
	}
	if a.ebgp != b.ebgp {
		if a.ebgp {
			return -1
		}
		return 1
	}
	if a.igpCost != b.igpCost {
		if a.igpCost < b.igpCost {
			return -1
		}
		return 1
	}
	ia, ib := s.peerRouterID(ra.Peer), s.peerRouterID(rb.Peer)
	if ia != ib {
		if ia.Less(ib) {
			return -1
		}
		return 1
	}
	return netmodel.CompareRoutes(*ra, *rb)
}

// shouldPropagate implements BGP propagation rules including route
// reflection.
func (s *sim) shouldPropagate(d *config.Device, sess *session, c cand, isRR bool) bool {
	// Split horizon: never back to the device we learned it from.
	if c.route.Peer == sess.remote {
		return false
	}
	if sess.ebgp {
		return true
	}
	// To an iBGP peer:
	if c.local || c.ebgp {
		return true // locally originated or eBGP-learned: advertise
	}
	// iBGP-learned: only a route reflector forwards, per RR rules.
	if !isRR {
		return false
	}
	learnedFromClient := false
	for _, other := range s.sessions[sess.local] {
		if other.remote == c.route.Peer && other.nb.RRClient {
			learnedFromClient = true
			break
		}
	}
	if learnedFromClient {
		return true // reflect to all
	}
	return sess.nb.RRClient // from non-client: reflect only to clients
}

// shouldPropagatePtr is the copy-free form of shouldPropagate used by the
// indexed advertisement loop.
func (s *sim) shouldPropagatePtr(d *config.Device, sess *session, c *cand, isRR bool) bool {
	if c.route.Peer == sess.remote {
		return false
	}
	if sess.ebgp {
		return true
	}
	if c.local || c.ebgp {
		return true
	}
	if !isRR {
		return false
	}
	learnedFromClient := false
	for _, other := range s.sessions[sess.local] {
		if other.remote == c.route.Peer && other.nb.RRClient {
			learnedFromClient = true
			break
		}
	}
	if learnedFromClient {
		return true
	}
	return sess.nb.RRClient
}

func (s *sim) suppressedByAggregate(d *config.Device, vrf string, p netip.Prefix) bool {
	for _, a := range d.Aggregates {
		if a.VRF == vrf && a.SummaryOnly && a.Prefix.Bits() < p.Bits() && a.Prefix.Contains(p.Addr()) {
			if s.aggOn[tableKey{d.Name, vrf}][a.Prefix] {
				return true
			}
		}
	}
	return false
}
