package bgp

import (
	"context"
	"net/netip"
	"slices"
	"strings"

	"hoyan/internal/config"
	"hoyan/internal/isis"
	"hoyan/internal/netmodel"
	"hoyan/internal/par"
	"hoyan/internal/policy"
	"hoyan/internal/vsb"
)

// Options configures a simulation run.
type Options struct {
	// Profiles supplies the vendor-specific behaviours per vendor. Defaults
	// to vsb.Defaults(). The accuracy-diagnosis framework passes mutated
	// profiles here to model a flawed Hoyan implementation.
	Profiles vsb.Profiles

	// MaxRounds bounds the fixpoint iteration (the production WAN converges
	// within 20 rounds; §3.1).
	MaxRounds int

	// FlawedASPathRegex injects the §5.3 AS-path regex implementation bug.
	FlawedASPathRegex bool

	// UseTEMetric is recorded for provenance; the IGP result passed to
	// Simulate must already reflect it.
	UseTEMetric bool

	// Legacy selects the original string-keyed fixpoint (legacy.go) instead
	// of the indexed, allocation-lean one. The two produce identical results;
	// the legacy path is the reference for speedup measurement and
	// equivalence tests. Captured States carry it into warm restarts.
	Legacy bool

	// Seal, when non-nil, runs the fixpoint boundary-sealed inside one shard
	// (see Seal). Forces the indexed path; unsupported by SimulateWithState.
	Seal *Seal

	// Parallelism fans the indexed fixpoint out over prefix-range stripes
	// (parallel.go), following the engine-wide par convention: 0 means
	// runtime.GOMAXPROCS(0) workers, 1 runs the sequential reference path,
	// n > 1 uses n workers. Results are byte-identical at every setting —
	// stripes merge in deterministic prefix order — so the knob trades only
	// wall-clock for cores. The legacy path ignores it. Captured States carry
	// it into warm restarts (ResimulateCtx can override per fork).
	Parallelism int

	// Ctx, when non-nil, is polled between fixpoint rounds and periodically
	// inside the decision loop; once it is done the simulation bails out
	// early and the (incomplete) result must be discarded by the caller.
	// Captured States never retain it.
	Ctx context.Context
}

func (o Options) withDefaults() Options {
	if o.Profiles == nil {
		o.Profiles = vsb.Defaults()
	}
	if o.MaxRounds == 0 {
		o.MaxRounds = 64
	}
	return o
}

// Result is the outcome of a BGP simulation: the RIBs of every (device, vrf)
// table, plus convergence metadata.
type Result struct {
	ribs      map[tableKey]*netmodel.RIB
	Rounds    int
	Converged bool
	// Messages counts total route advertisements processed (workload metric).
	Messages int
	// BoundaryOut is the canonicalized outbound boundary contract of a
	// sealed run (nil without Options.Seal): every advertisement the shard's
	// converged state sends across its seams.
	BoundaryOut []netmodel.BoundaryAdv
	// Par reports how much of the run executed on the striped parallel path
	// (all zero for sequential and legacy runs).
	Par ParStats
}

// ParStats counts the striped-fixpoint work of one run: rounds that actually
// fanned out, total stripes executed, and the dirty-pair balance across them
// (MaxStripePairs/SumStripePairs expose worst-stripe skew; a perfectly
// balanced round has Max ≈ Sum/Stripes).
type ParStats struct {
	ParallelRounds int
	Stripes        int
	MaxStripePairs int
	SumStripePairs int
}

// add accumulates one parallel round's stripe accounting.
func (p *ParStats) add(stripePairs []int) {
	p.ParallelRounds++
	p.Stripes += len(stripePairs)
	for _, n := range stripePairs {
		p.SumStripePairs += n
		if n > p.MaxStripePairs {
			p.MaxStripePairs = n
		}
	}
}

type tableKey struct {
	dev string
	vrf string
}

// RIB returns the routing table of (device, vrf), or an empty RIB.
func (r *Result) RIB(device, vrf string) *netmodel.RIB {
	if t, ok := r.ribs[tableKey{device, vrf}]; ok {
		return t
	}
	return netmodel.NewRIB(device, vrf)
}

// Tables returns all (device, vrf) pairs with a non-empty RIB, sorted.
func (r *Result) Tables() []struct{ Device, VRF string } {
	keys := make([]tableKey, 0, len(r.ribs))
	for k := range r.ribs {
		keys = append(keys, k)
	}
	slices.SortFunc(keys, func(a, b tableKey) int {
		if a.dev != b.dev {
			return strings.Compare(a.dev, b.dev)
		}
		return strings.Compare(a.vrf, b.vrf)
	})
	out := make([]struct{ Device, VRF string }, len(keys))
	for i, k := range keys {
		out[i] = struct{ Device, VRF string }{k.dev, k.vrf}
	}
	return out
}

// SetRIB installs a table, replacing any existing one. The incremental
// engine uses it to share unchanged, already-expanded tables with the base
// result instead of re-expanding them per fork.
func (r *Result) SetRIB(device, vrf string, t *netmodel.RIB) {
	r.ribs[tableKey{device, vrf}] = t
}

// GlobalRIB flattens every table into the paper's global RIB abstraction.
func (r *Result) GlobalRIB() *netmodel.GlobalRIB {
	var rows []netmodel.Route
	for _, t := range r.ribs {
		rows = append(rows, t.All()...)
	}
	return netmodel.NewGlobalRIB(rows)
}

// cand is one candidate route in a device table's adj-RIB-in.
type cand struct {
	route    netmodel.Route // Device/VRF = local table; Peer = source
	ebgp     bool           // learned over eBGP (or injected input)
	local    bool           // locally originated (network/redistribute/aggregate/static)
	direct32 bool           // /32 host route from direct redistribution
	igpCost  uint32         // filled during decision
	viaSR    bool
	resolved bool
}

// msg is one advertisement (or withdrawal, when routes is empty) delivered
// to a device table.
type msg struct {
	to       string
	vrf      string
	from     string // sending device, or "leak:<vrf>" for intra-device leaks
	prefix   netip.Prefix
	routes   []netmodel.Route
	ebgp     bool
	fromAddr netip.Addr

	// tid1/pid1 are the interned destination-table and prefix IDs plus one
	// (zero = unknown, resolved by deliver); the indexed path fills them at
	// the advertisement site so delivery needs no map hashing. The legacy
	// path leaves them zero and never reads them.
	tid1 int32
	pid1 int32
}

type sim struct {
	net  *config.Network
	igp  *isis.Result
	opts Options

	sessions map[string][]*session
	// sessionsTo indexes sessions by (local, vrf) for advertisement.
	adjIn  map[tableKey]map[netip.Prefix]map[string][]cand
	locals map[tableKey]map[netip.Prefix][]cand
	ribs   map[tableKey]*netmodel.RIB

	// lastAdv is the signature of the last advertisement per (table, prefix),
	// used to suppress redundant re-advertisements and reach the fixpoint.
	lastAdv map[tableKey]map[netip.Prefix]string

	// aggOn tracks whether each aggregate is currently active.
	aggOn map[tableKey]map[netip.Prefix]bool

	// dirtyDevs, when non-nil, accumulates every device whose table was ever
	// re-decided (warm restarts use it to bound traffic re-simulation).
	dirtyDevs map[string]bool

	// shared, when non-nil, marks tables whose inner maps are still shared
	// with a captured State (see Resimulate); sim.own privatizes a table
	// before its first write.
	shared map[tableKey]bool

	messages int

	// topoIdx is the dense-ID topology index backing the optimized decision
	// path (nil under Options.Legacy); igpIdxOK records whether the IGP
	// result was computed against this same index, enabling flat-array cost
	// lookups in resolve.
	topoIdx  *netmodel.TopoIndex
	igpIdxOK bool

	// msgScratch is the round-global message buffer reused across rounds; a
	// returned batch is fully drained by deliver before the next
	// decideAndAdvertise call refills it.
	msgScratch []msg

	// stripes holds the per-worker scratch contexts (decision scratch,
	// advertisement/candidate/row arenas, stripe-local outputs). The
	// sequential path runs entirely on stripe 0; the parallel path hands
	// stripe i to worker i so workers never share mutable scratch. Grown
	// lazily by stripe().
	stripes []*stripeCtx

	// parWorkers caches par.Workers(opts.Parallelism) for the indexed path
	// (1 disables the striped path entirely).
	parWorkers int

	// deliverScratch holds the per-message acceptance results of one parallel
	// delivery batch, reused across rounds.
	deliverScratch [][]cand

	// par accumulates the striped-path accounting reported on Result.
	par ParStats

	// Dense table/prefix interning for the indexed fixpoint (dense.go): every
	// (device, vrf) table and every prefix the run touches gets a small
	// integer ID; per-table configuration derivations are cached in tinfo;
	// the round-local dirty set is a per-table bitset over prefix IDs. All of
	// this is sim-local — captured States never see it.
	tids      map[tableKey]int32
	tinfo     []*tableInfo
	tidRank   []int32 // lexical (dev, vrf) rank per tid; rebuilt on growth
	pids      map[netip.Prefix]int32
	pfxs      []netip.Prefix
	lastAddrs []netip.Addr // LastAddr per pid, for dirty-prefix ordering
	dirtyMark [][]bool
	dirtyPids [][]int32
	dirtyTids []int32

	// sealOut collects the latest seam advertisement per boundary key in a
	// sealed run (nil without Options.Seal).
	sealOut map[boundaryKey]netmodel.BoundaryAdv
}

// Simulate runs the BGP fixpoint over the network with the given IGP result
// and input routes, returning per-table RIBs.
func Simulate(net *config.Network, igp *isis.Result, inputs []netmodel.Route, opts Options) *Result {
	if opts.Seal != nil {
		// Sealed runs exist only on the indexed path.
		opts.Legacy = false
	}
	s := newSim(net, igp, opts)
	s.originateLocals(inputs)
	if s.opts.Legacy {
		return s.run(s.allDirty())
	}
	if s.opts.Seal != nil {
		s.seedBoundary()
	}
	// Indexed path: seed the dense dirty set straight from the originated
	// state instead of materializing the nested legacy dirty maps.
	for k, m := range s.locals {
		tid := s.tidOf(k)
		for p := range m {
			s.markDirty(tid, s.pidOf(p))
		}
	}
	for k, m := range s.adjIn {
		tid := s.tidOf(k)
		for p := range m {
			s.markDirty(tid, s.pidOf(p))
		}
	}
	return s.runDense()
}

// newSim builds an empty simulation with its session graph.
func newSim(net *config.Network, igp *isis.Result, opts Options) *sim {
	s := &sim{
		net:     net,
		igp:     igp,
		opts:    opts.withDefaults(),
		adjIn:   make(map[tableKey]map[netip.Prefix]map[string][]cand),
		locals:  make(map[tableKey]map[netip.Prefix][]cand),
		ribs:    make(map[tableKey]*netmodel.RIB),
		lastAdv: make(map[tableKey]map[netip.Prefix]string),
		aggOn:   make(map[tableKey]map[netip.Prefix]bool),
	}
	s.sessions = buildSessions(net, igp, func(dev string) bool {
		return !s.profileOf(dev).IsolationViaPolicy
	})
	if !s.opts.Legacy {
		s.topoIdx = net.Topo.Index()
		s.igpIdxOK = igp != nil && igp.EdgeIndex() == s.topoIdx
		s.parWorkers = par.Workers(s.opts.Parallelism)
	}
	if s.opts.Seal != nil {
		s.sealOut = make(map[boundaryKey]netmodel.BoundaryAdv)
	}
	return s
}

// ctxDone reports whether the caller's context (if any) has been cancelled;
// the fixpoint loops poll it between rounds and the decision loop polls it
// periodically so deadline-exceeded queries stop burning CPU promptly.
func (s *sim) ctxDone() bool {
	return s.opts.Ctx != nil && s.opts.Ctx.Err() != nil
}

// allDirty marks every table/prefix with candidates dirty (cold start).
func (s *sim) allDirty() map[tableKey]map[netip.Prefix]bool {
	dirty := make(map[tableKey]map[netip.Prefix]bool)
	mark := func(k tableKey, p netip.Prefix) {
		if dirty[k] == nil {
			dirty[k] = make(map[netip.Prefix]bool)
		}
		dirty[k][p] = true
	}
	for k, m := range s.locals {
		for p := range m {
			mark(k, p)
		}
	}
	for k, m := range s.adjIn {
		for p := range m {
			mark(k, p)
		}
	}
	return dirty
}

// run iterates the fixpoint from an initial dirty set until convergence or
// MaxRounds.
func (s *sim) run(dirty map[tableKey]map[netip.Prefix]bool) *Result {
	if s.opts.Legacy {
		rounds := 0
		converged := false
		pending := s.legacyDecideAndAdvertise(dirty)
		for rounds = 0; rounds < s.opts.MaxRounds; rounds++ {
			if len(pending) == 0 {
				converged = true
				break
			}
			if s.ctxDone() {
				break
			}
			dirty = s.legacyDeliver(pending)
			pending = s.legacyDecideAndAdvertise(dirty)
		}
		return &Result{ribs: s.ribs, Rounds: rounds, Converged: converged, Messages: s.messages}
	}
	// Indexed path: convert the seed dirty set into the dense representation
	// once; rounds then track dirtiness with interned IDs only.
	for k, ps := range dirty {
		tid := s.tidOf(k)
		for p := range ps {
			s.markDirty(tid, s.pidOf(p))
		}
	}
	return s.runDense()
}

// runDense iterates the indexed fixpoint from the already-seeded dense dirty
// set until convergence or MaxRounds.
func (s *sim) runDense() *Result {
	rounds := 0
	converged := false
	pending := s.decideAndAdvertise()
	for rounds = 0; rounds < s.opts.MaxRounds; rounds++ {
		if len(pending) == 0 {
			converged = true
			break
		}
		if s.ctxDone() {
			break
		}
		s.deliver(pending)
		pending = s.decideAndAdvertise()
	}
	res := &Result{ribs: s.ribs, Rounds: rounds, Converged: converged, Messages: s.messages, Par: s.par}
	if s.opts.Seal != nil {
		res.BoundaryOut = s.boundaryOut()
	}
	return res
}

func (s *sim) profileOf(dev string) vsb.Profile {
	d := s.net.Devices[dev]
	if d == nil {
		return s.opts.Profiles.For("")
	}
	return s.opts.Profiles.For(d.Vendor)
}

func (s *sim) envOf(d *config.Device) policy.Env {
	return d.PolicyEnv(policy.Env{
		Profile:           s.profileOf(d.Name),
		FlawedASPathRegex: s.opts.FlawedASPathRegex,
	})
}

func (s *sim) localsOf(k tableKey) map[netip.Prefix][]cand {
	s.own(k)
	m, ok := s.locals[k]
	if !ok {
		m = make(map[netip.Prefix][]cand)
		s.locals[k] = m
	}
	return m
}

// originateLocals seeds the simulation: input routes, network statements,
// static/direct/IS-IS redistribution, per Table 5 VSBs.
func (s *sim) originateLocals(inputs []netmodel.Route) {
	// Input routes: pre-built by the input-route building service; they are
	// installed at their injection device as externally-learned candidates.
	for _, r := range inputs {
		d := s.net.Devices[r.Device]
		if d == nil {
			continue
		}
		if node := s.net.Topo.Node(r.Device); node == nil || !node.Up {
			continue
		}
		if s.opts.Seal != nil && !s.opts.Seal.Inside[r.Device] {
			continue
		}
		vrf := r.VRF
		if vrf == "" {
			vrf = netmodel.DefaultVRF
		}
		k := tableKey{r.Device, vrf}
		r.VRF = vrf
		if r.Source == "" {
			r.Source = r.Device
		}
		r.Peer = "input"
		if r.Protocol != netmodel.ProtoBGP {
			r.Protocol = netmodel.ProtoBGP
		}
		if r.Preference == 0 {
			r.Preference = s.profileOf(r.Device).EBGPPreference
		}
		m := s.localsOf(k)
		m[r.Prefix] = append(m[r.Prefix], cand{route: r, ebgp: true})
	}

	for _, name := range s.net.DeviceNames() {
		d := s.net.Devices[name]
		if node := s.net.Topo.Node(name); node == nil || !node.Up {
			continue
		}
		if s.opts.Seal != nil && !s.opts.Seal.Inside[name] {
			continue
		}
		prof := s.profileOf(name)
		k := tableKey{name, netmodel.DefaultVRF}
		m := s.localsOf(k)

		// network statements originate local prefixes.
		for _, p := range d.Networks {
			r := netmodel.Route{
				Device: name, VRF: netmodel.DefaultVRF, Prefix: p,
				Protocol: netmodel.ProtoBGP, NextHop: d.Loopback,
				LocalPref: 100, Origin: netmodel.OriginIGP,
				Source: name, Peer: "network",
			}
			m[p] = append(m[p], cand{route: r, local: true})
		}

		// Redistribution.
		for _, rd := range d.Redistributes {
			for _, c := range s.redistributed(d, rd, prof) {
				m[c.route.Prefix] = append(m[c.route.Prefix], c)
			}
		}

		// Static routes live in their VRF's table even without
		// redistribution (they affect forwarding); modelled as RIB locals
		// with their own protocol so BGP does not advertise them unless
		// redistributed.
		for _, st := range d.Statics {
			vrf := st.VRF
			if vrf == "" {
				vrf = netmodel.DefaultVRF
			}
			sk := tableKey{name, vrf}
			r := netmodel.Route{
				Device: name, VRF: vrf, Prefix: st.Prefix,
				Protocol: netmodel.ProtoStatic, NextHop: st.NextHop,
				Preference: st.Preference, Source: name, Peer: "static",
			}
			sm := s.localsOf(sk)
			sm[r.Prefix] = append(sm[r.Prefix], cand{route: r, local: true})
		}

		// Direct (connected) routes.
		for _, c := range s.directRoutes(d, prof, false) {
			m[c.route.Prefix] = append(m[c.route.Prefix], c)
		}
	}
}

// redistributed computes the BGP candidates produced by one redistribution
// statement.
func (s *sim) redistributed(d *config.Device, rd config.Redistribution, prof vsb.Profile) []cand {
	var srcRoutes []cand
	switch rd.From {
	case netmodel.ProtoStatic:
		for _, st := range d.Statics {
			if st.VRF != "" && st.VRF != netmodel.DefaultVRF {
				continue
			}
			srcRoutes = append(srcRoutes, cand{route: netmodel.Route{
				Device: d.Name, VRF: netmodel.DefaultVRF, Prefix: st.Prefix,
				Protocol: netmodel.ProtoStatic, NextHop: st.NextHop,
			}})
		}
	case netmodel.ProtoDirect:
		srcRoutes = s.directRoutes(d, prof, true)
	case netmodel.ProtoISIS:
		for _, r := range s.igp.Routes(s.net.Topo, d.Name) {
			srcRoutes = append(srcRoutes, cand{route: r})
		}
	}
	env := s.envOf(d)
	var out []cand
	for _, c := range srcRoutes {
		r := c.route
		r.Protocol = netmodel.ProtoBGP
		r.LocalPref = 100
		r.Origin = netmodel.OriginIncomplete
		// VSB: default weight on redistribution.
		r.Weight = prof.RedistributionWeight
		r.Source = d.Name
		r.Peer = "redistribute:" + rd.From.String()
		if rd.Policy != "" {
			rm, ok := d.RouteMaps[rd.Policy]
			if !ok {
				if !prof.AcceptOnUndefinedPolicy {
					continue
				}
			} else {
				var disp policy.Disposition
				r, disp = env.Apply(rm, r, netip.Addr{}, d.ASN)
				if disp == policy.Reject {
					continue
				}
			}
		}
		out = append(out, cand{route: r, local: true, direct32: c.direct32})
	}
	return out
}

// directRoutes returns the connected routes of a device: the interface
// subnets plus, per the Table 5 VSB, the extra /32 host route produced by a
// non-/32 direct connection.
func (s *sim) directRoutes(d *config.Device, prof vsb.Profile, forRedist bool) []cand {
	var out []cand
	names := make([]string, 0, len(d.Interfaces))
	for n := range d.Interfaces {
		names = append(names, n)
	}
	slices.Sort(names)
	for _, n := range names {
		i := d.Interfaces[n]
		if !i.Addr.IsValid() {
			continue
		}
		subnet := i.Addr.Masked()
		out = append(out, cand{local: true, route: netmodel.Route{
			Device: d.Name, VRF: netmodel.DefaultVRF, Prefix: subnet,
			Protocol: netmodel.ProtoDirect, NextHop: i.Addr.Addr(),
			Source: d.Name, Peer: "direct",
		}})
		// VSB: a non-/32 direct route also produces a /32 host route;
		// whether it can be redistributed is vendor-specific.
		if i.Addr.Bits() < i.Addr.Addr().BitLen() {
			if !forRedist || prof.RedistributeDirect32 {
				host, err := i.Addr.Addr().Prefix(i.Addr.Addr().BitLen())
				if err == nil {
					out = append(out, cand{local: true, direct32: true, route: netmodel.Route{
						Device: d.Name, VRF: netmodel.DefaultVRF, Prefix: host,
						Protocol: netmodel.ProtoDirect, NextHop: i.Addr.Addr(),
						Source: d.Name, Peer: "direct",
					}})
				}
			}
		}
	}
	if d.Loopback.IsValid() {
		if lo, err := d.Loopback.Prefix(d.Loopback.BitLen()); err == nil {
			out = append(out, cand{local: true, route: netmodel.Route{
				Device: d.Name, VRF: netmodel.DefaultVRF, Prefix: lo,
				Protocol: netmodel.ProtoDirect, NextHop: d.Loopback,
				Source: d.Name, Peer: "direct",
			}})
		}
	}
	return out
}

// deliver processes a batch of messages: ingress policy, loop prevention,
// adj-RIB-in update. Large batches fan the per-message compute (policy,
// AS-loop check, candidate construction) out over the stripe workers
// (parallel.go); small batches, sequential runs, and batches carrying
// unresolved table IDs (boundary seeding) take the sequential path.
func (s *sim) deliver(msgs []msg) {
	if s.parWorkers > 1 && len(msgs) >= 2*minMsgsPerDeliverChunk {
		if s.deliverParallel(msgs) {
			return
		}
	}
	s.deliverSeq(msgs)
}

// deliverSeq is the sequential delivery loop. Allocation-lean variant: the
// accepted slice is sized exactly once per message, withdrawals allocate
// nothing (not even the inner adj-RIB-in map the legacy path creates
// eagerly), the per-device profile/env/session lookups come from the
// interned tableInfo, and the import policy is resolved once per message
// instead of once per route. The original is legacyDeliver.
func (s *sim) deliverSeq(msgs []msg) {
	sc := s.stripe(0)
	for i := range msgs {
		m := &msgs[i]
		s.messages++
		tid := m.tid1 - 1
		if tid < 0 {
			tid = s.tidOf(tableKey{m.to, m.vrf})
		}
		ti := s.tinfo[tid]
		if ti.dev == nil {
			continue
		}
		s.commitDelivery(sc, m, tid, ti, s.acceptedFor(sc, m, ti))
	}
}

// acceptedFor computes the candidate set one message installs into its
// table's adj-RIB-in cell: import policy, AS-loop prevention, session-type
// defaults. It reads only pre-round state (the message, the interned
// tableInfo, the session graph, configuration) and writes only into sc's
// candidate arena, so the parallel delivery path runs it concurrently across
// messages before the sequential commit.
func (s *sim) acceptedFor(sc *stripeCtx, m *msg, ti *tableInfo) []cand {
	if len(m.routes) == 0 {
		return nil
	}
	d, prof := ti.dev, ti.prof
	// The import policy depends only on the session, not the route.
	var pol *policy.RouteMap
	ok := true
	if !strings.HasPrefix(m.from, "leak:") {
		nb := s.neighborConfigFor(d, m.from, m.vrf)
		pol, ok = s.importPolicy(d, nb, m.from, prof, m.ebgp)
	}
	if !ok {
		return nil
	}
	accepted := sc.takeCands(len(m.routes))
	for _, r := range m.routes {
		r.Device, r.VRF = m.to, m.vrf
		r.Peer = m.from
		// eBGP AS-loop prevention.
		if m.ebgp && r.ASPath.Contains(d.ASN) {
			continue
		}
		// Session-type defaults, applied before the import policy
		// so the policy can override them.
		if m.ebgp {
			r.LocalPref = 100
			r.Preference = prof.EBGPPreference
		} else if r.Preference == 0 {
			r.Preference = prof.IBGPPreference
		}
		r.Weight = 0
		r.IGPCost = 0
		r.RouteType = netmodel.RouteCandidate

		if pol != nil {
			var disp policy.Disposition
			r, disp = ti.env.Apply(pol, r, m.fromAddr, d.ASN)
			if disp == policy.Reject {
				continue
			}
		}
		accepted = append(accepted, cand{route: r, ebgp: m.ebgp})
	}
	return accepted
}

// commitDelivery installs one message's precomputed acceptance result into
// the adj-RIB-in and marks the (table, prefix) dirty when the cell changed.
// Always sequential (it writes shared maps); sc, when non-nil, receives
// unused candidate-arena tails back — the parallel path passes nil because
// the accepted slice came from another stripe's arena.
func (s *sim) commitDelivery(sc *stripeCtx, m *msg, tid int32, ti *tableInfo, accepted []cand) {
	k := ti.k
	s.own(k)
	ai := s.adjIn[k]
	// A message that does not change the adj-RIB-in cell leaves the
	// decision inputs untouched: re-deciding would reproduce the same
	// rows and signature, so the (table, prefix) is not marked dirty.
	// The one exception is the synthetic "agg:refresh" signal, whose
	// whole purpose is to force a re-decision after the local candidate
	// set was mutated in place.
	changed := m.from == "agg:refresh"
	if len(accepted) == 0 {
		if sc != nil && cap(accepted) > 0 {
			sc.giveBackCands(cap(accepted))
		}
		// Withdrawal: only touch maps that already exist.
		if byFrom := ai[m.prefix]; byFrom != nil {
			if _, had := byFrom[m.from]; had {
				delete(byFrom, m.from)
				changed = true
			}
		}
	} else {
		if ai == nil {
			hint := 0
			if k.vrf == netmodel.DefaultVRF {
				hint = len(s.pfxs)
			}
			ai = make(map[netip.Prefix]map[string][]cand, hint)
			s.adjIn[k] = ai
		}
		byFrom := ai[m.prefix]
		if byFrom == nil {
			byFrom = make(map[string][]cand, 1)
			ai[m.prefix] = byFrom
		}
		if old, had := byFrom[m.from]; !had || !candsSame(old, accepted) {
			byFrom[m.from] = accepted
			changed = true
		} else if sc != nil {
			sc.giveBackCands(cap(accepted))
		}
	}
	if changed {
		pid := m.pid1 - 1
		if pid < 0 {
			pid = s.pidOf(m.prefix)
		}
		s.markDirty(tid, pid)
	}
}

// candsSame reports whether two adj-RIB-in cells hold identical candidates.
// Deliver-installed cands carry only the route and the ebgp flag (resolution
// state is filled on scratch copies during decide), so those two fields are
// the entire comparison.
func candsSame(a, b []cand) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].ebgp != b[i].ebgp || !a[i].route.Identical(b[i].route) {
			return false
		}
	}
	return true
}

// neighborConfigFor finds the local neighbor configuration matching an
// incoming message's sender.
func (s *sim) neighborConfigFor(d *config.Device, from, vrf string) *config.Neighbor {
	for _, sess := range s.sessions[d.Name] {
		if sess.remote == from && sess.vrf == vrf {
			return sess.nb
		}
	}
	return nil
}

// importPolicy resolves the import policy for a session under the missing-
// and undefined-policy VSBs. pol == nil with ok == true means "accept
// unfiltered".
func (s *sim) importPolicy(d *config.Device, nb *config.Neighbor, remote string, prof vsb.Profile, ebgp bool) (*policy.RouteMap, bool) {
	name := ""
	if nb != nil {
		name = nb.ImportPolicy
		if name == "" && nb.VRF != netmodel.DefaultVRF && prof.SubViewInheritsOptions {
			// VSB: sub-view (VRF address family) sessions inherit the global
			// session's policy bindings on inheriting vendors.
			if g := s.globalSessionNeighbor(d.Name, remote); g != nil {
				name = g.ImportPolicy
			}
		}
	}
	if name == "" {
		// VSB: missing policy. iBGP updates are always accepted.
		if ebgp && !prof.AcceptOnMissingPolicy {
			return nil, false
		}
		return nil, true
	}
	rm, ok := d.RouteMaps[name]
	if !ok {
		// VSB: undefined policy.
		return nil, prof.AcceptOnUndefinedPolicy
	}
	return rm, true
}

// globalSessionNeighbor finds the default-VRF session from dev to the same
// remote device, for the sub-view inheritance VSB.
func (s *sim) globalSessionNeighbor(dev, remote string) *config.Neighbor {
	for _, sess := range s.sessions[dev] {
		if sess.remote == remote && sess.vrf == netmodel.DefaultVRF {
			return sess.nb
		}
	}
	return nil
}

// exportPolicy mirrors importPolicy for the egress direction; a missing
// export policy always advertises.
func (s *sim) exportPolicy(d *config.Device, nb *config.Neighbor, remote string, prof vsb.Profile) (*policy.RouteMap, bool) {
	name := ""
	if nb != nil {
		name = nb.ExportPolicy
		if name == "" && nb.VRF != netmodel.DefaultVRF && prof.SubViewInheritsOptions {
			if g := s.globalSessionNeighbor(d.Name, remote); g != nil {
				name = g.ExportPolicy
			}
		}
	}
	if name == "" {
		return nil, true
	}
	rm, ok := d.RouteMaps[name]
	if !ok {
		return nil, prof.AcceptOnUndefinedPolicy
	}
	return rm, true
}
