package bgp

import (
	"net/netip"
	"sort"
	"strings"

	"hoyan/internal/netmodel"
	"hoyan/internal/policy"
)

// This file preserves the original string-keyed fixpoint verbatim. It is the
// reference implementation behind Options.Legacy: the speedup guard
// (TestCoreSpeedup) measures the indexed engine against it on the same host,
// and the equivalence suite asserts both produce identical results. Keep it
// in sync with nothing — it intentionally does not pick up optimizations.

// legacyDecideAndAdvertise is the original decision-batch loop.
func (s *sim) legacyDecideAndAdvertise(dirty map[tableKey]map[netip.Prefix]bool) []msg {
	var out []msg

	if s.dirtyDevs != nil {
		for k := range dirty {
			s.dirtyDevs[k.dev] = true
		}
	}

	// Deterministic iteration order.
	keys := make([]tableKey, 0, len(dirty))
	for k := range dirty {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].dev != keys[j].dev {
			return keys[i].dev < keys[j].dev
		}
		return keys[i].vrf < keys[j].vrf
	})

	for _, k := range keys {
		s.own(k)
		prefixes := make([]netip.Prefix, 0, len(dirty[k]))
		for p := range dirty[k] {
			prefixes = append(prefixes, p)
		}
		sort.Slice(prefixes, func(i, j int) bool {
			return netmodel.LastAddr(prefixes[i]).Compare(netmodel.LastAddr(prefixes[j])) < 0
		})
		for _, p := range prefixes {
			best, sorted := s.legacyDecide(k, p)
			sig := advSignature(sorted)
			if s.lastAdv[k] == nil {
				s.lastAdv[k] = make(map[netip.Prefix]string)
			}
			if s.lastAdv[k][p] == sig {
				continue // steady state for this prefix
			}
			s.lastAdv[k][p] = sig
			out = append(out, s.legacyAdvertise(k, p, best, sorted)...)
			out = append(out, s.leak(k, p, best)...)
			out = append(out, s.updateAggregates(k, p)...)
		}
	}
	return out
}

// legacyDecide is the original per-prefix decision process.
func (s *sim) legacyDecide(k tableKey, p netip.Prefix) (best, sorted []cand) {
	var cands []cand
	for _, c := range s.locals[k][p] {
		cands = append(cands, c)
	}
	fromKeys := make([]string, 0)
	for from := range s.adjIn[k][p] {
		fromKeys = append(fromKeys, from)
	}
	sort.Strings(fromKeys)
	for _, from := range fromKeys {
		cands = append(cands, s.adjIn[k][p][from]...)
	}

	// Resolve next hops and compute IGP costs.
	resolved := cands[:0]
	var unresolved []cand
	for _, c := range cands {
		c = s.legacyResolve(k.dev, c)
		if c.resolved {
			resolved = append(resolved, c)
		} else {
			unresolved = append(unresolved, c)
		}
	}
	cands = resolved

	d := s.net.Devices[k.dev]
	sort.SliceStable(cands, func(i, j int) bool { return s.better(cands[i], cands[j]) })

	// Mark best + ECMP. Non-BGP protocols win on Preference alone: the
	// comparator sorts by preference first, so the top candidate's protocol
	// group takes the table.
	rib := s.ribs[k]
	if rib == nil {
		rib = netmodel.NewRIB(k.dev, k.vrf)
		s.ribs[k] = rib
	}
	maxPaths := 1
	if d != nil && d.MaxPaths > 1 {
		maxPaths = d.MaxPaths
	}
	var rows []netmodel.Route
	for i := range cands {
		c := cands[i]
		r := c.route
		r.IGPCost = c.igpCost
		r.ViaSR = c.viaSR
		if i == 0 {
			r.RouteType = netmodel.RouteBest
			best = append(best, c)
		} else if len(best) < maxPaths && s.equalCost(cands[0], c) && distinctNextHop(best, c) {
			r.RouteType = netmodel.RouteBest
			best = append(best, c)
		} else {
			r.RouteType = netmodel.RouteCandidate
		}
		rows = append(rows, r)
	}
	// Unresolved candidates stay visible as candidates for diagnosis.
	for _, c := range unresolved {
		r := c.route
		r.RouteType = netmodel.RouteCandidate
		rows = append(rows, r)
	}
	rib.Replace(p, rows)
	return best, cands
}

// legacyResolve is the original next-hop resolution.
func (s *sim) legacyResolve(dev string, c cand) cand {
	c.resolved = false
	r := c.route
	if c.local {
		// Locally originated candidates resolve trivially, except statics
		// whose next hop must be reachable.
		if r.Protocol == netmodel.ProtoStatic {
			if !s.nextHopUsable(dev, r.NextHop) {
				return c
			}
		}
		c.resolved, c.igpCost = true, 0
		return c
	}
	if !r.NextHop.IsValid() {
		return c
	}
	owner := s.net.Topo.AddrOwner(r.NextHop)
	if owner == dev {
		c.resolved, c.igpCost = true, 0
		return c
	}
	prof := s.profileOf(dev)
	if owner == "" {
		// Unknown owner: usable only when on a directly connected subnet
		// (e.g. an un-modelled external peer address).
		if s.onDirectSubnet(dev, r.NextHop) {
			c.resolved, c.igpCost = true, 0
		}
		return c
	}
	cost, ok := s.igp.Cost(dev, owner)
	if !ok {
		if l := s.net.Topo.FindLink(dev, owner); l != nil {
			cost, ok = l.DirCost(dev, s.opts.UseTEMetric), true
		}
	}
	if !ok {
		return c
	}
	// SR tunnel: if the device configures an SR policy whose endpoint is the
	// next hop (or the owner's loopback), traffic rides the tunnel. The VSB
	// decides whether the IGP cost is zeroed (Figure 9 root cause).
	if d := s.net.Devices[dev]; d != nil {
		for _, sp := range d.SRPolicies {
			epOwner := s.net.Topo.AddrOwner(sp.Endpoint)
			if sp.Endpoint == r.NextHop || (epOwner != "" && epOwner == owner) {
				c.viaSR = true
				break
			}
		}
	}
	if c.viaSR && prof.SRTunnelIGPCostZero {
		cost = 0
	}
	c.resolved, c.igpCost = true, cost
	return c
}

// legacyDeliver is the original message-delivery loop.
func (s *sim) legacyDeliver(msgs []msg) map[tableKey]map[netip.Prefix]bool {
	dirty := make(map[tableKey]map[netip.Prefix]bool)
	for _, m := range msgs {
		s.messages++
		d := s.net.Devices[m.to]
		if d == nil {
			continue
		}
		k := tableKey{m.to, m.vrf}
		prof := s.profileOf(m.to)
		env := s.envOf(d)

		var accepted []cand
		for _, r := range m.routes {
			r.Device, r.VRF = m.to, m.vrf
			r.Peer = m.from
			// eBGP AS-loop prevention.
			if m.ebgp && r.ASPath.Contains(d.ASN) {
				continue
			}
			// Session-type defaults, applied before the import policy so the
			// policy can override them.
			if m.ebgp {
				r.LocalPref = 100
				r.Preference = prof.EBGPPreference
			} else if r.Preference == 0 {
				r.Preference = prof.IBGPPreference
			}
			r.Weight = 0
			r.IGPCost = 0
			r.RouteType = netmodel.RouteCandidate

			if !strings.HasPrefix(m.from, "leak:") {
				nb := s.neighborConfigFor(d, m.from, m.vrf)
				pol, ok := s.importPolicy(d, nb, m.from, prof, m.ebgp)
				if !ok {
					continue // rejected by a VSB on missing/undefined policy
				}
				if pol != nil {
					var disp policy.Disposition
					r, disp = env.Apply(pol, r, m.fromAddr, d.ASN)
					if disp == policy.Reject {
						continue
					}
				}
			}
			accepted = append(accepted, cand{route: r, ebgp: m.ebgp})
		}

		s.own(k)
		if s.adjIn[k] == nil {
			s.adjIn[k] = make(map[netip.Prefix]map[string][]cand)
		}
		if s.adjIn[k][m.prefix] == nil {
			s.adjIn[k][m.prefix] = make(map[string][]cand)
		}
		if len(accepted) == 0 {
			delete(s.adjIn[k][m.prefix], m.from)
		} else {
			s.adjIn[k][m.prefix][m.from] = accepted
		}
		if dirty[k] == nil {
			dirty[k] = make(map[netip.Prefix]bool)
		}
		dirty[k][m.prefix] = true
	}
	return dirty
}

// legacyAdvertise is the original advertisement builder.
func (s *sim) legacyAdvertise(k tableKey, p netip.Prefix, best, sorted []cand) []msg {
	d := s.net.Devices[k.dev]
	if d == nil {
		return nil
	}
	prof := s.profileOf(k.dev)
	// VSB: policy-isolated devices keep learning but stop advertising.
	if d.Isolated && prof.IsolationViaPolicy {
		return nil
	}
	env := s.envOf(d)
	isRR := false
	for _, sess := range s.sessions[k.dev] {
		if sess.nb.RRClient {
			isRR = true
			break
		}
	}

	var out []msg
	for _, sess := range s.sessions[k.dev] {
		if sess.vrf != k.vrf {
			continue
		}
		pol, ok := s.exportPolicy(d, sess.nb, sess.remote, prof)
		if !ok {
			continue
		}
		limit := 1
		pool := best[:min(1, len(best))]
		if sess.nb.AddPaths > 1 {
			limit = sess.nb.AddPaths
			pool = sorted
		}
		var adv []netmodel.Route
		for _, c := range pool {
			if len(adv) >= limit {
				break
			}
			// Only BGP routes (including aggregates, which are originated
			// into BGP) are advertised; direct/static/IS-IS routes stay
			// local unless redistributed.
			if c.route.Protocol != netmodel.ProtoBGP && c.route.Protocol != netmodel.ProtoAggregate {
				continue
			}
			if !s.shouldPropagate(d, sess, c, isRR) {
				continue
			}
			r := c.route
			// Suppress more-specifics covered by a summary-only aggregate.
			if s.suppressedByAggregate(d, k.vrf, r.Prefix) {
				continue
			}
			// VSB: /32 direct host routes may not be advertised to peers.
			if c.direct32 && !prof.SendDirect32ToPeer {
				continue
			}
			if pol != nil {
				var disp policy.Disposition
				r, disp = env.Apply(pol, r, sess.remoteAddr, d.ASN)
				if disp == policy.Reject {
					continue
				}
			}
			if sess.ebgp {
				r.ASPath = r.ASPath.Prepend(d.ASN)
				r.NextHop = sess.localAddr
				r.LocalPref = 0 // not carried over eBGP
			} else if sess.nb.NextHopSelf && d.Loopback.IsValid() {
				r.NextHop = d.Loopback
			}
			r.Weight = 0
			r.Preference = 0
			r.IGPCost = 0
			r.ViaSR = false
			r.RouteType = netmodel.RouteCandidate
			adv = append(adv, r)
		}
		out = append(out, msg{
			to: sess.remote, vrf: sess.vrf, from: k.dev,
			prefix: p, routes: adv, ebgp: sess.ebgp, fromAddr: sess.localAddr,
		})
	}
	return out
}
