package bgp

import (
	"net/netip"
	"slices"

	"hoyan/internal/netmodel"
	"hoyan/internal/par"
)

// This file holds the striped parallel fixpoint. Each round, the dense dirty
// (table, prefix) set is partitioned into contiguous prefix-ID-range stripes
// in the exact order the sequential loop would visit them, the stripes run
// concurrently on the par pool with fully private scratch (stripeCtx), and a
// sequential merge applies RIB installs, lastAdv updates, and the outgoing
// message batch in stripe order — so every observable outcome of a round
// (RIB rows, advertisement order, suppression signatures, next-round dirty
// cascades, boundary contracts) is byte-identical to the sequential engine.
//
// Why the per-pair work is independent: a decision for (table, prefix) reads
// the table's locals and adj-RIB-in for that prefix only — both written
// exclusively by the previous round's deliver — plus immutable per-run state
// (configuration, topology index, IGP costs, session graph, interned
// tableInfo). Its writes (one RIB row set, one lastAdv entry, appended
// messages) touch only its own pair, and the parallel path defers them to
// the merge. The one in-round coupling is aggregation: refreshAggregate
// mutates the table's local candidates in place and summary-only aggregates
// delete lastAdv entries of *other prefixes of the same table* mid-round, so
// a table that configures aggregates forms a dependency group — it is never
// split and runs as one atomic unit inside a single stripe with full
// sequential semantics (immediate installs, in-place mutations).
//
// The sequential pre-pass performs every write to shared structures the
// round would otherwise do lazily — table/prefix interning (session target
// tables, leak targets, aggregate prefixes and covered RIB prefixes),
// outer-map entries (lastAdv, ribs, locals/aggOn for aggregate tables),
// copy-on-write privatization (sim.own), dirty-device marking — so the
// parallel phase performs zero writes to anything shared. Interning extra
// IDs the sequential path would have interned later (or not at all) is
// result-neutral: iteration order derives from the lexical rank and
// last-address sorts, never from raw ID assignment order.

// minPairsPerStripe bounds fan-out for tiny rounds: a stripe below this many
// dirty pairs costs more in coordination than it saves.
const minPairsPerStripe = 4

// minMsgsPerDeliverChunk is the analogous floor for parallel delivery.
const minMsgsPerDeliverChunk = 8

// stripeCtx is the scratch world of one fixpoint worker: the decision
// scratch buffers, the advertisement/candidate/row arenas, and the stripe's
// deferred outputs. The sequential path runs on stripe 0; parallel stripes
// never share one.
type stripeCtx struct {
	// Decision scratch reused across decide calls. Each is fully consumed
	// before its next reuse: decide's outputs feed advertise within the same
	// prefix iteration.
	candScratch  []cand
	unresScratch []cand
	bestScratch  []cand
	sortScratch  []cand
	ordScratch   []int32
	fromScratch  []string
	sigScratch   []byte

	// advArena backs msg route slices for one round (see takeAdv).
	advArena []netmodel.Route
	advUsed  int

	// candArena backs the adj-RIB-in candidate slices deliver installs
	// (see takeCands; grow-only, never reset).
	candArena []cand
	candUsed  int

	// rowsArena likewise backs the RIB row slices decide carves
	// (see takeRows; grow-only, never reset).
	rowsArena []netmodel.Route
	rowsUsed  int

	// Stripe-local outputs of one parallel round, applied by the merge pass.
	out  []msg
	recs []stripeRec
	caps []capRec

	// deferCaps redirects boundary captures into caps while a stripe runs
	// (sealOut is shared across stripes).
	deferCaps bool
}

// stripeRec is one deferred (table, prefix) outcome: the rows to install,
// the new advertisement signature when it changed, and the span of stripe
// messages the pair produced. Aggregate-table units apply their state
// in-stripe and record only their message span.
type stripeRec struct {
	tid, pid         int32
	msgStart, msgEnd int32
	changed          bool
	agg              bool
	sig              string
	rows             []netmodel.Route
}

// capRec is one deferred boundary capture of a sealed striped round.
type capRec struct {
	from string
	sess *session
	p    netip.Prefix
	adv  []netmodel.Route
}

// stripeUnit is a contiguous run of one table's sorted dirty prefixes
// assigned to a stripe. agg marks an aggregation dependency group (the whole
// table, atomic).
type stripeUnit struct {
	tid  int32
	pids []int32
	agg  bool
}

// stripe returns worker i's scratch context, growing the pool on demand.
func (s *sim) stripe(i int) *stripeCtx {
	for len(s.stripes) <= i {
		s.stripes = append(s.stripes, &stripeCtx{})
	}
	return s.stripes[i]
}

// decideAndAdvertiseParallel runs one fixpoint round striped across the par
// pool. It reports ok=false — without having changed any round outcome —
// when the round is too small to be worth fanning out, leaving the caller to
// run the sequential loop. (The pre-pass may already have run by the time a
// single-stripe collapse is detected; all of its effects are writes the
// sequential round performs or tolerates identically.)
func (s *sim) decideAndAdvertiseParallel() ([]msg, bool) {
	total := 0
	for _, tid := range s.dirtyTids {
		total += len(s.dirtyPids[tid])
	}
	nstripes := s.parWorkers
	if lim := total / minPairsPerStripe; nstripes > lim {
		nstripes = lim
	}
	if nstripes < 2 {
		return nil, false
	}

	// ---- sequential pre-pass: every shared-structure write of the round ----
	for _, tid := range s.dirtyTids {
		ti := s.tinfo[tid]
		k := ti.k
		if s.dirtyDevs != nil {
			s.dirtyDevs[k.dev] = true
		}
		s.own(k)
		hint := 0
		if k.vrf == netmodel.DefaultVRF {
			hint = len(s.pfxs)
		}
		if s.lastAdv[k] == nil {
			s.lastAdv[k] = make(map[netip.Prefix]string, hint)
		}
		rib := s.ribs[k]
		if rib == nil {
			rib = netmodel.NewRIBSized(k.dev, k.vrf, hint)
			s.ribs[k] = rib
		}
		// Resolve the lazily-interned advertisement and leak targets now so
		// the stripes never write the intern tables.
		if ti.dev != nil && ti.advertise {
			for i := range ti.sessions {
				si := &ti.sessions[i]
				if si.ok && si.toTID1 == 0 {
					si.toTID1 = s.tidOf(tableKey{si.sess.remote, si.sess.vrf}) + 1
				}
			}
		}
		if len(ti.leakTargets) > 0 {
			if ti.leakTIDs == nil {
				ti.leakTIDs = make([]int32, len(ti.leakTargets))
			}
			for idx, target := range ti.leakTargets {
				if ti.leakTIDs[idx] == 0 {
					ti.leakTIDs[idx] = s.tidOf(tableKey{k.dev, target}) + 1
				}
			}
		}
		if len(ti.aggs) > 0 {
			// Aggregate units run with full sequential semantics in-stripe:
			// pre-create the outer-map entries they write through (locals,
			// aggOn) and intern every prefix updateAggregatesInto can touch —
			// the aggregate prefixes themselves plus all current RIB prefixes
			// (a warm-restart RIB can hold prefixes this sim never interned).
			s.localsOf(k)
			if s.aggOn[k] == nil {
				s.aggOn[k] = make(map[netip.Prefix]bool)
			}
			for _, a := range ti.aggs {
				s.pidOf(a.Prefix)
			}
			for _, cp := range rib.Prefixes() {
				s.pidOf(cp)
			}
		}
		// Sort this table's dirty prefixes exactly like the sequential loop.
		pids := s.dirtyPids[tid]
		slices.SortFunc(pids, func(a, b int32) int {
			if c := s.lastAddrs[a].Compare(s.lastAddrs[b]); c != 0 {
				return c
			}
			pa, pb := s.pfxs[a], s.pfxs[b]
			if ba, bb := pa.Bits(), pb.Bits(); ba != bb {
				return ba - bb
			}
			return pa.Addr().Compare(pb.Addr())
		})
	}

	// Table order after the pre-pass (interning may have added tables, which
	// rebuilds the rank array; ranks still sort dirty tables lexically).
	trank := s.tableRank()
	tids := s.dirtyTids
	slices.SortFunc(tids, func(a, b int32) int { return int(trank[a]) - int(trank[b]) })

	// ---- striping: contiguous balanced partition of the visit order ----
	target := (total + nstripes - 1) / nstripes
	var stripes [][]stripeUnit
	var cur []stripeUnit
	curLoad := 0
	var pairs []int
	flush := func() {
		if len(cur) > 0 {
			stripes = append(stripes, cur)
			pairs = append(pairs, curLoad)
			cur, curLoad = nil, 0
		}
	}
	for _, tid := range tids {
		ti := s.tinfo[tid]
		pids := s.dirtyPids[tid]
		if len(pids) == 0 {
			continue
		}
		if len(ti.aggs) > 0 {
			// Aggregation dependency group: never split the table.
			if curLoad > 0 && curLoad+len(pids) > target {
				flush()
			}
			cur = append(cur, stripeUnit{tid: tid, pids: pids, agg: true})
			curLoad += len(pids)
			if curLoad >= target {
				flush()
			}
			continue
		}
		for off := 0; off < len(pids); {
			take := len(pids) - off
			if room := target - curLoad; take > room {
				take = room
			}
			cur = append(cur, stripeUnit{tid: tid, pids: pids[off : off+take]})
			curLoad += take
			off += take
			if curLoad >= target {
				flush()
			}
		}
	}
	flush()
	if len(stripes) < 2 {
		// Everything collapsed into one stripe (e.g. one big aggregation
		// group): no parallelism to gain.
		return nil, false
	}

	// ---- parallel phase: stripes run with private scratch ----
	for i := range stripes {
		s.stripe(i) // pre-grow: ForEach workers must not race the append
	}
	par.ForEach(s.opts.Parallelism, len(stripes), func(i int) {
		s.runStripe(s.stripes[i], stripes[i])
	})

	// ---- sequential merge in stripe (= sequential visit) order ----
	out := s.msgScratch[:0]
	for i := range stripes {
		sc := s.stripes[i]
		for ri := range sc.recs {
			rec := &sc.recs[ri]
			if rec.agg {
				out = append(out, sc.out[rec.msgStart:rec.msgEnd]...)
				continue
			}
			k := s.tinfo[rec.tid].k
			p := s.pfxs[rec.pid]
			s.ribs[k].ReplaceOwned(p, rec.rows)
			if rec.changed {
				s.lastAdv[k][p] = rec.sig
				out = append(out, sc.out[rec.msgStart:rec.msgEnd]...)
			}
			rec.rows = nil // the RIB owns them now
		}
		for ci := range sc.caps {
			c := &sc.caps[ci]
			s.captureBoundary(c.from, c.sess, c.p, c.adv)
			c.adv, c.sess = nil, nil
		}
	}

	// Clear the round's dirty marks, exactly as the sequential loop does.
	for _, tid := range tids {
		mark := s.dirtyMark[tid]
		for _, pid := range s.dirtyPids[tid] {
			mark[pid] = false
		}
		s.dirtyPids[tid] = s.dirtyPids[tid][:0]
	}
	s.dirtyTids = tids[:0]
	s.par.add(pairs)
	s.msgScratch = out
	return out, true
}

// runStripe executes one stripe's units. Non-aggregate pairs defer their RIB
// install, lastAdv write, and messages into stripe records; aggregate-table
// units run the full sequential per-table loop against their (stripe-
// exclusive) table state and defer only their messages.
func (s *sim) runStripe(sc *stripeCtx, units []stripeUnit) {
	sc.out = sc.out[:0]
	sc.recs = sc.recs[:0]
	sc.caps = sc.caps[:0]
	sc.advUsed = 0 // last round's messages were consumed; recycle the arena
	sc.deferCaps = true
	defer func() { sc.deferCaps = false }()
	for _, u := range units {
		if s.ctxDone() {
			return // caller discards the result per the Options.Ctx contract
		}
		ti := s.tinfo[u.tid]
		k := ti.k
		la := s.lastAdv[k]
		lk := s.locals[k]
		ai := s.adjIn[k]
		if u.agg {
			s.runAggUnit(sc, ti, u, la, lk, ai)
			continue
		}
		for _, pid := range u.pids {
			p := s.pfxs[pid]
			best, sorted, rows := s.decide(sc, ti, lk, ai, p)
			sig := appendAdvSignature(sc.sigScratch[:0], sorted)
			sc.sigScratch = sig
			rec := stripeRec{tid: u.tid, pid: pid, rows: rows}
			if la[p] != string(sig) { // alloc-free comparison
				rec.changed = true
				rec.sig = string(sig)
				m0 := int32(len(sc.out))
				sc.out = s.advertiseInto(sc, sc.out, ti, p, pid, best, sorted)
				sc.out = s.leakInto(sc, sc.out, ti, p, pid, best)
				rec.msgStart, rec.msgEnd = m0, int32(len(sc.out))
			}
			sc.recs = append(sc.recs, rec)
		}
	}
}

// runAggUnit is the sequential per-table loop for one aggregation dependency
// group: installs, lastAdv writes, and in-place aggregate refreshes happen
// immediately (the table belongs to this stripe alone), messages and
// boundary captures are still deferred.
func (s *sim) runAggUnit(sc *stripeCtx, ti *tableInfo, u stripeUnit, la map[netip.Prefix]string, lk map[netip.Prefix][]cand, ai map[netip.Prefix]map[string][]cand) {
	k := ti.k
	rib := s.ribs[k]
	m0 := int32(len(sc.out))
	for _, pid := range u.pids {
		p := s.pfxs[pid]
		best, sorted, rows := s.decide(sc, ti, lk, ai, p)
		rib.ReplaceOwned(p, rows)
		sig := appendAdvSignature(sc.sigScratch[:0], sorted)
		sc.sigScratch = sig
		if la[p] == string(sig) { // alloc-free comparison
			continue // steady state for this prefix
		}
		la[p] = string(sig)
		sc.out = s.advertiseInto(sc, sc.out, ti, p, pid, best, sorted)
		sc.out = s.leakInto(sc, sc.out, ti, p, pid, best)
		sc.out = s.updateAggregatesInto(sc.out, ti, u.tid, p)
	}
	sc.recs = append(sc.recs, stripeRec{tid: u.tid, agg: true, msgStart: m0, msgEnd: int32(len(sc.out))})
}

// deliverParallel fans the per-message compute of one delivery batch (import
// policy, AS-loop check, candidate construction — the bulk of delivery cost)
// out over contiguous chunks, then commits the results sequentially in
// message order so adj-RIB-in updates and dirty marking are byte-identical
// to sequential delivery. Safe because an adj-RIB-in cell (table, prefix,
// sender) is written by at most one message per round: the compute phase's
// reads of pre-round state equal what the sequential interleaving would
// read. Reports false — leaving the batch untouched — when the batch carries
// unresolved table IDs (boundary seeding) or is too small to chunk.
func (s *sim) deliverParallel(msgs []msg) bool {
	for i := range msgs {
		if msgs[i].tid1 == 0 {
			return false
		}
	}
	nchunks := s.parWorkers
	if lim := len(msgs) / minMsgsPerDeliverChunk; nchunks > lim {
		nchunks = lim
	}
	if nchunks < 2 {
		return false
	}
	if cap(s.deliverScratch) < len(msgs) {
		s.deliverScratch = make([][]cand, len(msgs))
	}
	res := s.deliverScratch[:len(msgs)]
	chunk := (len(msgs) + nchunks - 1) / nchunks
	for i := 0; i < nchunks; i++ {
		s.stripe(i) // pre-grow before the fan-out
	}
	par.ForEach(s.opts.Parallelism, nchunks, func(ci int) {
		sc := s.stripes[ci]
		lo := ci * chunk
		hi := lo + chunk
		if hi > len(msgs) {
			hi = len(msgs)
		}
		for i := lo; i < hi; i++ {
			m := &msgs[i]
			ti := s.tinfo[m.tid1-1]
			if ti.dev == nil {
				res[i] = nil
				continue
			}
			res[i] = s.acceptedFor(sc, m, ti)
		}
	})
	for i := range msgs {
		m := &msgs[i]
		s.messages++
		tid := m.tid1 - 1
		ti := s.tinfo[tid]
		if ti.dev == nil {
			continue
		}
		// nil stripe: the accepted slice lives in another stripe's arena, so
		// there is no tail to give back.
		s.commitDelivery(nil, m, tid, ti, res[i])
		res[i] = nil // drop the reference; adjIn owns installed slices
	}
	return true
}
