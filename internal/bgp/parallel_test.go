package bgp

import (
	"fmt"
	"math/rand"
	"net/netip"
	"sync"
	"testing"

	"hoyan/internal/config"
	"hoyan/internal/gen"
	"hoyan/internal/isis"
	"hoyan/internal/netmodel"
)

// parallelFixture builds a network exercising every in-round dependency the
// striping rule must respect — two aggregates on one table (one summary-only,
// which suppresses other prefixes of that table), VRF leaking, route
// reflection — plus enough distinct prefixes that rounds actually split into
// several stripes.
func parallelFixture() (*netBuilder, []netmodel.Route) {
	b := newBuilder()
	b.device("E", "alpha", 64999, "1.0.0.1")
	b.device("A", "alpha", 65001, "1.0.0.2")
	b.device("RR", "alpha", 65001, "1.0.0.3")
	b.device("C1", "alpha", 65001, "1.0.0.4")
	b.device("C2", "alpha", 65001, "1.0.0.5")
	b.link("E", "A", 10)
	b.link("A", "RR", 10)
	b.link("RR", "C1", 10)
	b.link("RR", "C2", 10)
	b.ebgp("E", "A")
	b.ibgp("A", "RR")
	b.ibgp("RR", "C1")
	b.ibgp("RR", "C2")
	for _, nb := range b.net.Devices["RR"].Neighbors {
		if nb.Addr == b.net.Devices["C1"].Loopback || nb.Addr == b.net.Devices["C2"].Loopback {
			nb.RRClient = true
		}
	}
	b.net.Devices["E"].Interfaces["ext"] = &config.Interface{Name: "ext", Addr: netip.MustParsePrefix("203.0.113.2/24")}
	nextHopSelfAll(b, "A")

	a := b.net.Devices["A"]
	a.Aggregates = append(a.Aggregates,
		config.Aggregate{VRF: netmodel.DefaultVRF, Prefix: netip.MustParsePrefix("10.0.0.0/8"), ASSet: true},
		config.Aggregate{VRF: netmodel.DefaultVRF, Prefix: netip.MustParsePrefix("10.64.0.0/10"), SummaryOnly: true},
	)

	c1 := b.net.Devices["C1"]
	c1.VRFs["v1"] = &config.VRF{Name: "v1", ExportRTs: []string{"rt1"}}
	c1.VRFs["v2"] = &config.VRF{Name: "v2", ImportRTs: []string{"rt1"}}

	var inputs []netmodel.Route
	for i := 0; i < 12; i++ {
		inputs = append(inputs, inputRoute("E", fmt.Sprintf("10.0.%d.0/24", i), 65100, netmodel.ASN(65200+i)))
	}
	for i := 0; i < 12; i++ {
		inputs = append(inputs, inputRoute("E", fmt.Sprintf("10.64.%d.0/24", i), 65100))
	}
	for i := 0; i < 12; i++ {
		inputs = append(inputs, inputRoute("E", fmt.Sprintf("172.20.%d.0/24", i), 65300))
	}
	for i := 0; i < 4; i++ {
		in := inputRoute("C1", fmt.Sprintf("192.168.%d.0/24", i), 65400)
		in.VRF = "v1"
		in.NextHop = c1.Loopback
		inputs = append(inputs, in)
	}
	return b, inputs
}

// TestParallelFixpointEquivalence pins the tentpole invariant on the
// dependency-rich fixture: the striped fixpoint is byte-identical to the
// sequential indexed path and the legacy reference at every parallelism, with
// the same round and message counts, and parallelism >= 2 actually stripes.
func TestParallelFixpointEquivalence(t *testing.T) {
	b, inputs := parallelFixture()
	igp := isis.Compute(b.net.Topo, isis.Options{})

	seq := Simulate(b.net, igp, inputs, Options{Parallelism: 1})
	if !seq.Converged {
		t.Fatalf("fixture did not converge in %d rounds", seq.Rounds)
	}
	if seq.Par.ParallelRounds != 0 {
		t.Errorf("sequential run reported %d parallel rounds", seq.Par.ParallelRounds)
	}
	seqRIB := seq.GlobalRIB()

	leg := Simulate(b.net, igp, inputs, Options{Legacy: true})
	if !seqRIB.Equal(leg.GlobalRIB()) {
		t.Fatal("sequential indexed RIB differs from legacy reference")
	}

	for _, p := range []int{2, 8} {
		res := Simulate(b.net, igp, inputs, Options{Parallelism: p})
		if res.Rounds != seq.Rounds || res.Messages != seq.Messages {
			t.Errorf("parallelism %d: rounds/messages %d/%d, want %d/%d",
				p, res.Rounds, res.Messages, seq.Rounds, seq.Messages)
		}
		if !res.GlobalRIB().Equal(seqRIB) {
			t.Errorf("parallelism %d: RIB differs from sequential", p)
		}
		if res.Par.ParallelRounds == 0 {
			t.Errorf("parallelism %d: no round striped; fixture too small to exercise the parallel path", p)
		}
		if res.Par.MaxStripePairs > res.Par.SumStripePairs {
			t.Errorf("parallelism %d: inconsistent stripe stats %+v", p, res.Par)
		}
	}
}

// TestParallelFixpointEquivalenceWAN re-checks byte-identity at gen.WAN(1)
// scale, including the Parallelism 0 (= GOMAXPROCS) convention.
func TestParallelFixpointEquivalenceWAN(t *testing.T) {
	out := gen.Generate(gen.WAN(1))
	igp := isis.Compute(out.Net.Topo, isis.Options{})

	seq := Simulate(out.Net, igp, out.Inputs, Options{Parallelism: 1})
	seqRIB := seq.GlobalRIB()
	leg := Simulate(out.Net, igp, out.Inputs, Options{Legacy: true})
	if !seqRIB.Equal(leg.GlobalRIB()) {
		t.Fatal("sequential indexed RIB differs from legacy reference")
	}

	for _, p := range []int{0, 2, 8} {
		res := Simulate(out.Net, igp, out.Inputs, Options{Parallelism: p})
		if res.Rounds != seq.Rounds || res.Messages != seq.Messages {
			t.Errorf("parallelism %d: rounds/messages %d/%d, want %d/%d",
				p, res.Rounds, res.Messages, seq.Rounds, seq.Messages)
		}
		if !res.GlobalRIB().Equal(seqRIB) {
			t.Errorf("parallelism %d: RIB differs from sequential", p)
		}
		if p >= 2 && res.Par.ParallelRounds == 0 {
			t.Errorf("parallelism %d: no round striped on the WAN fixture", p)
		}
	}
}

// TestParallelSealedEquivalence covers the sealed (sharded) fixpoint: seam
// captures are deferred per stripe and merged in stripe order, so the
// boundary contract and inside RIBs must match the sequential sealed run.
func TestParallelSealedEquivalence(t *testing.T) {
	b, inputs := parallelFixture()
	igp := isis.Compute(b.net.Topo, isis.Options{})
	inside := map[string]bool{"E": true, "A": true}
	run := func(p int) *Result {
		return Simulate(b.net, igp, inputs, Options{
			Parallelism: p,
			Seal:        &Seal{Inside: inside},
		})
	}
	seq := run(1)
	for _, p := range []int{2, 8} {
		res := run(p)
		if !netmodel.BoundarySetsEqual(seq.BoundaryOut, res.BoundaryOut) {
			t.Errorf("parallelism %d: sealed boundary contract differs", p)
		}
		if !res.GlobalRIB().Equal(seq.GlobalRIB()) {
			t.Errorf("parallelism %d: sealed RIB differs", p)
		}
	}
}

// allDistChanged marks every device's distance to every destination as
// changed — a deliberately conservative warm-restart delta that is always
// correct, so the test isolates the striped fixpoint rather than delta
// computation.
func allDistChanged(net *config.Network) map[string]map[string]bool {
	names := net.Topo.NodeNames()
	out := make(map[string]map[string]bool, len(names))
	for _, d := range names {
		m := make(map[string]bool, len(names))
		for _, o := range names {
			m[o] = true
		}
		out[d] = m
	}
	return out
}

// TestParallelResimulateEquivalence pins the warm-restart path: a captured
// state re-simulated at any parallelism (including ResimulateCtx's per-fork
// override) matches a from-scratch sequential run of the changed scenario.
func TestParallelResimulateEquivalence(t *testing.T) {
	b, inputs := parallelFixture()
	igp := isis.Compute(b.net.Topo, isis.Options{})

	// Input delta: drop some routes, add a fresh one.
	inputs2 := append([]netmodel.Route(nil), inputs[:len(inputs)-6]...)
	inputs2 = append(inputs2, inputRoute("E", "10.0.200.0/24", 65100, 65999))
	refInputs := Simulate(b.net, igp, inputs2, Options{Parallelism: 1}).GlobalRIB()

	// Topology delta: RR-C1 link down (kills the iBGP session to C1).
	net2 := b.net.Clone()
	link := net2.Topo.FindLink("RR", "C1")
	if !net2.Topo.SetLinkUp(link.ID(), false) {
		t.Fatal("link RR-C1 not found")
	}
	igp2 := isis.Compute(net2.Topo, isis.Options{})
	delta := Delta{
		ChangedLinks: []netmodel.LinkID{link.ID()},
		DistChanged:  allDistChanged(net2),
	}
	refTopo := Simulate(net2, igp2, inputs, Options{Parallelism: 1}).GlobalRIB()

	for _, p := range []int{1, 2, 8} {
		_, st := SimulateWithState(b.net, igp, inputs, Options{Parallelism: p})

		res, _ := st.Resimulate(b.net, igp, inputs2, Delta{})
		if !res.GlobalRIB().Equal(refInputs) {
			t.Errorf("parallelism %d: warm input-delta RIB differs from scratch", p)
		}

		res2, _ := st.Resimulate(net2, igp2, inputs, delta)
		if !res2.GlobalRIB().Equal(refTopo) {
			t.Errorf("parallelism %d: warm topology-delta RIB differs from scratch", p)
		}
	}

	// Per-restart override: a state captured sequential, restarted striped.
	_, st := SimulateWithState(b.net, igp, inputs, Options{Parallelism: 1})
	res, _ := st.ResimulateCtx(nil, net2, igp2, inputs, delta, 8)
	if !res.GlobalRIB().Equal(refTopo) {
		t.Error("ResimulateCtx parallelism override differs from scratch")
	}
}

// TestParallelSimulateRace exercises the striped fixpoint under the race
// detector: several goroutines simulate the same shared network (lazy
// topology indexes, interner, policy caches) with Parallelism 8 each, and
// every result must still match the sequential reference.
func TestParallelSimulateRace(t *testing.T) {
	b, inputs := parallelFixture()
	igp := isis.Compute(b.net.Topo, isis.Options{})
	ref := Simulate(b.net, igp, inputs, Options{Parallelism: 1}).GlobalRIB()

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				res := Simulate(b.net, igp, inputs, Options{Parallelism: 8})
				if !res.GlobalRIB().Equal(ref) {
					t.Error("concurrent striped run differs from sequential")
				}
			}
		}()
	}
	wg.Wait()
}

// FuzzParallelFixpointEquivalence drives randomized scenarios — seeded input
// subsets and link failures — through parallelism 1, 2, and 8 plus the legacy
// reference, asserting byte-identical global RIBs throughout.
func FuzzParallelFixpointEquivalence(f *testing.F) {
	f.Add(int64(1), uint8(0))
	f.Add(int64(2), uint8(1))
	f.Add(int64(3), uint8(2))
	f.Add(int64(4), uint8(5))
	f.Fuzz(func(t *testing.T, seed int64, downs uint8) {
		rng := rand.New(rand.NewSource(seed))
		b, inputs := parallelFixture()
		keep := inputs[:0:0]
		for _, r := range inputs {
			if rng.Intn(4) > 0 {
				keep = append(keep, r)
			}
		}
		links := b.net.Topo.Links()
		for i := 0; i < int(downs)%3; i++ {
			b.net.Topo.SetLinkUp(links[rng.Intn(len(links))].ID(), false)
		}
		igp := isis.Compute(b.net.Topo, isis.Options{})

		ref := Simulate(b.net, igp, keep, Options{Parallelism: 1}).GlobalRIB()
		leg := Simulate(b.net, igp, keep, Options{Legacy: true}).GlobalRIB()
		if !ref.Equal(leg) {
			t.Fatal("sequential indexed RIB differs from legacy reference")
		}
		for _, p := range []int{2, 8} {
			got := Simulate(b.net, igp, keep, Options{Parallelism: p}).GlobalRIB()
			if !got.Equal(ref) {
				t.Fatalf("parallelism %d: RIB differs from sequential (seed %d, downs %d)", p, seed, downs)
			}
		}
	})
}
