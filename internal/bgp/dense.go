package bgp

import (
	"net/netip"
	"slices"
	"strings"

	"hoyan/internal/config"
	"hoyan/internal/netmodel"
	"hoyan/internal/policy"
	"hoyan/internal/vsb"
)

// This file holds the dense-ID bookkeeping behind the indexed fixpoint:
// tables and prefixes are interned into small integers the first time the
// simulation touches them, and everything the decision loop derives purely
// from configuration — device pointer, vendor profile, policy environment,
// session list with resolved export policies, leak targets, aggregates — is
// computed once per table and cached in a tableInfo instead of being looked
// up per message or per prefix. The round-local dirty set is a bitset over
// (table ID, prefix ID) rather than nested maps, so a fixpoint round
// allocates nothing for bookkeeping.
//
// None of this touches the warm-restart State: adjIn/locals/ribs/lastAdv/
// aggOn keep their map shapes (incr.go shares those with captured States via
// copy-on-write), and the dense tables are rebuilt per sim.

// sessInfo is one session of a table's VRF with its export policy resolved
// up front (exportPolicy is deterministic per run).
type sessInfo struct {
	sess *session
	pol  *policy.RouteMap
	ok   bool
	// toTID1 is the interned ID (plus one; 0 = not yet resolved) of the
	// remote table this session advertises into. Resolved lazily on first
	// advertisement — newTableInfo must not intern other tables, since the
	// intern of the table being built is still in progress.
	toTID1 int32
}

// tableInfo caches everything about a (device, vrf) table that is static for
// the lifetime of one sim.
type tableInfo struct {
	k        tableKey
	dev      *config.Device // nil when the device is unknown
	devID    netmodel.DevID
	prof     vsb.Profile
	env      policy.Env
	maxPaths int

	// Advertisement caches.
	advertise bool // false for policy-isolated devices (VSB)
	isRR      bool
	sessions  []sessInfo // sessions in this table's VRF only

	// VRF-leak caches (leakTargets empty when the table never leaks).
	leakTargets []string
	leakTIDs    []int32 // interned target-table IDs plus one (lazy, like toTID1)
	leakFrom    string
	leakPolicy  string // export policy of the source VRF ("" for global)

	// Aggregates configured in this table's VRF.
	aggs []aggregateOf
}

// tidOf interns a table key, building its tableInfo on first sight.
func (s *sim) tidOf(k tableKey) int32 {
	if id, ok := s.tids[k]; ok {
		return id
	}
	if s.tids == nil {
		s.tids = make(map[tableKey]int32)
	}
	id := int32(len(s.tinfo))
	s.tids[k] = id
	s.tinfo = append(s.tinfo, s.newTableInfo(k))
	s.dirtyMark = append(s.dirtyMark, nil)
	s.dirtyPids = append(s.dirtyPids, nil)
	return id
}

// pidOf interns a prefix.
func (s *sim) pidOf(p netip.Prefix) int32 {
	if id, ok := s.pids[p]; ok {
		return id
	}
	if s.pids == nil {
		s.pids = make(map[netip.Prefix]int32)
	}
	id := int32(len(s.pfxs))
	s.pids[p] = id
	s.pfxs = append(s.pfxs, p)
	s.lastAddrs = append(s.lastAddrs, netmodel.LastAddr(p))
	return id
}

func (s *sim) newTableInfo(k tableKey) *tableInfo {
	ti := &tableInfo{k: k, devID: netmodel.NoDev, maxPaths: 1}
	d := s.net.Devices[k.dev]
	ti.dev = d
	if d == nil {
		return ti
	}
	if s.topoIdx != nil {
		ti.devID, _ = s.topoIdx.DevID(k.dev)
	}
	ti.prof = s.profileOf(k.dev)
	ti.env = s.envOf(d)
	if d.MaxPaths > 1 {
		ti.maxPaths = d.MaxPaths
	}
	sessions := s.sessions[k.dev]
	for _, sess := range sessions {
		if sess.nb.RRClient {
			ti.isRR = true
			break
		}
	}
	ti.advertise = !(d.Isolated && ti.prof.IsolationViaPolicy)
	for _, sess := range sessions {
		if sess.vrf != k.vrf {
			continue
		}
		pol, ok := s.exportPolicy(d, sess.nb, sess.remote, ti.prof)
		ti.sessions = append(ti.sessions, sessInfo{sess: sess, pol: pol, ok: ok})
	}
	// Leak header, mirroring leak(): export RT set and targets of the source
	// table are pure configuration.
	if len(d.VRFs) > 0 {
		var exportRTs []string
		if k.vrf == netmodel.DefaultVRF {
			exportRTs = []string{GlobalRT}
		} else if v := d.VRFs[k.vrf]; v != nil {
			exportRTs = v.ExportRTs
			ti.leakPolicy = v.ExportPolicy
		}
		if len(exportRTs) > 0 {
			ti.leakTargets = leakTargets(d, k.vrf, exportRTs)
			ti.leakFrom = "leak:" + k.vrf
		}
	}
	for _, a := range d.Aggregates {
		if a.VRF == k.vrf {
			ti.aggs = append(ti.aggs, a)
		}
	}
	return ti
}

// markDirty records (table, prefix) as needing a decision next round.
func (s *sim) markDirty(tid, pid int32) {
	mark := s.dirtyMark[tid]
	if int(pid) >= len(mark) {
		grown := make([]bool, len(s.pfxs))
		copy(grown, mark)
		mark = grown
		s.dirtyMark[tid] = mark
	}
	if mark[pid] {
		return
	}
	mark[pid] = true
	if len(s.dirtyPids[tid]) == 0 {
		s.dirtyTids = append(s.dirtyTids, tid)
	}
	s.dirtyPids[tid] = append(s.dirtyPids[tid], pid)
}

// tableRank returns rank[tid] = position of the table in (device, vrf)
// lexical order, matching the legacy loop's sort. Rebuilt only when a new
// table was interned since the last call.
func (s *sim) tableRank() []int32 {
	if len(s.tidRank) == len(s.tinfo) {
		return s.tidRank
	}
	order := make([]int32, len(s.tinfo))
	for i := range order {
		order[i] = int32(i)
	}
	slices.SortFunc(order, func(a, b int32) int {
		ka, kb := s.tinfo[a].k, s.tinfo[b].k
		if ka.dev != kb.dev {
			return strings.Compare(ka.dev, kb.dev)
		}
		return strings.Compare(ka.vrf, kb.vrf)
	})
	rank := make([]int32, len(order))
	for i, id := range order {
		rank[id] = int32(i)
	}
	s.tidRank = rank
	return rank
}

// takeRows carves an exact-capacity row slice for one decision out of the
// stripe's grow-only row arena. Rows are adopted by the RIB (ReplaceOwned),
// so like the candidate arena this one is never reset — it only amortizes
// allocation count.
func (sc *stripeCtx) takeRows(n int) []netmodel.Route {
	const chunk = 1024
	if n > chunk/4 {
		return make([]netmodel.Route, 0, n)
	}
	if sc.rowsUsed+n > len(sc.rowsArena) {
		sc.rowsArena = make([]netmodel.Route, chunk)
		sc.rowsUsed = 0
	}
	out := sc.rowsArena[sc.rowsUsed : sc.rowsUsed : sc.rowsUsed+n]
	sc.rowsUsed += n
	return out
}

// takeAdv carves a zero-length, capacity-n route slice out of the stripe's
// per-round advertisement arena. Messages built in one round are fully
// consumed by deliver before the next decideAndAdvertise call resets the
// arena, so the backing array is reused round over round instead of being
// reallocated per session.
func (sc *stripeCtx) takeAdv(n int) []netmodel.Route {
	if sc.advUsed+n > len(sc.advArena) {
		size := 2 * (sc.advUsed + n)
		if size < 256 {
			size = 256
		}
		// The old block stays referenced by this round's earlier messages and
		// is collected once they are delivered.
		sc.advArena = make([]netmodel.Route, size)
		sc.advUsed = 0
	}
	out := sc.advArena[sc.advUsed : sc.advUsed : sc.advUsed+n]
	sc.advUsed += n
	return out
}

// takeCands carves a zero-length, capacity-n candidate slice out of the
// stripe's grow-only arena backing adj-RIB-in entries. Unlike the
// advertisement arena, this one is never reset: installed slices stay live
// in adjIn (and in captured States), so the arena exists purely to turn
// thousands of small per-message allocations into a few chunk allocations.
func (sc *stripeCtx) takeCands(n int) []cand {
	const chunk = 1024
	if n > chunk/4 {
		return make([]cand, 0, n)
	}
	if sc.candUsed+n > len(sc.candArena) {
		sc.candArena = make([]cand, chunk)
		sc.candUsed = 0
	}
	out := sc.candArena[sc.candUsed : sc.candUsed : sc.candUsed+n]
	sc.candUsed += n
	return out
}

// giveBackCands returns the tail of the most recent takeCands carve when the
// caller ended up installing nothing (all routes rejected).
func (sc *stripeCtx) giveBackCands(n int) {
	if n <= chunkGiveBackMax && sc.candUsed >= n {
		sc.candUsed -= n
	}
}

// chunkGiveBackMax mirrors the direct-allocation threshold in takeCands:
// larger carves were not taken from the arena, so there is nothing to return.
const chunkGiveBackMax = 1024 / 4

// leakInto is leak() on the cached tableInfo: the export RT set, targets and
// source policy name were resolved at intern time, and advertisement slices
// come from sc's arena. pid is p's interned ID, stamped on the outgoing
// messages so delivery skips the prefix hash.
func (s *sim) leakInto(sc *stripeCtx, out []msg, ti *tableInfo, p netip.Prefix, pid int32, best []cand) []msg {
	if len(ti.leakTargets) == 0 {
		return out
	}
	if ti.leakTIDs == nil {
		ti.leakTIDs = make([]int32, len(ti.leakTargets))
	}
	d, prof, env := ti.dev, ti.prof, ti.env
	for idx, target := range ti.leakTargets {
		if ti.leakTIDs[idx] == 0 {
			ti.leakTIDs[idx] = s.tidOf(tableKey{ti.k.dev, target}) + 1
		}
		var adv []netmodel.Route
		for _, c := range best {
			r := c.route
			if r.Protocol != netmodel.ProtoBGP && r.Protocol != netmodel.ProtoAggregate {
				continue // only BGP routes participate in VPNv4 leaking
			}
			// VSB: a route that itself arrived via a leak is only re-leaked
			// on vendors with the re-leaking behaviour.
			if strings.HasPrefix(r.Peer, "leak:") && !prof.ReLeakRoutes {
				continue
			}
			// Export policy of the source VRF. VSB: whether it also applies
			// to global routes leaked into VPNv4.
			polName := ti.leakPolicy
			if ti.k.vrf == netmodel.DefaultVRF {
				if tv := d.VRFs[target]; tv != nil && prof.VRFExportPolicyOnGlobalLeak {
					polName = tv.ExportPolicy
				} else {
					polName = ""
				}
			}
			if polName != "" {
				rm, ok := d.RouteMaps[polName]
				if !ok {
					if !prof.AcceptOnUndefinedPolicy {
						continue
					}
				} else {
					var disp policy.Disposition
					r, disp = env.Apply(rm, r, netip.Addr{}, d.ASN)
					if disp == policy.Reject {
						continue
					}
				}
			}
			r.RouteType = netmodel.RouteCandidate
			if adv == nil {
				adv = sc.takeAdv(len(best))
			}
			adv = append(adv, r)
		}
		out = append(out, msg{
			to: ti.k.dev, vrf: target, from: ti.leakFrom, prefix: p, routes: adv,
			tid1: ti.leakTIDs[idx], pid1: pid + 1,
		})
	}
	return out
}

// updateAggregatesInto is updateAggregates() on the cached tableInfo (the
// VRF's aggregates were filtered at intern time). tid is ti's own ID — the
// synthetic refresh messages target the same table.
func (s *sim) updateAggregatesInto(out []msg, ti *tableInfo, tid int32, p netip.Prefix) []msg {
	if len(ti.aggs) == 0 {
		return out
	}
	k := ti.k
	s.own(k)
	for _, a := range ti.aggs {
		if a.Prefix == p || a.Prefix.Bits() >= p.Bits() || !a.Prefix.Contains(p.Addr()) {
			continue
		}
		changed := s.refreshAggregate(k, a)
		if changed {
			// Rerun the decision for the aggregate prefix via an internal
			// "message" carrying no routes: delivery just marks it dirty
			// (the local candidate set was already updated in place).
			out = append(out, msg{
				to: k.dev, vrf: k.vrf, from: "agg:refresh", prefix: a.Prefix,
				tid1: tid + 1, pid1: s.pidOf(a.Prefix) + 1,
			})
			// Suppression state may have flipped: force re-advertisement of
			// every covered prefix (summary-only withdraws specifics).
			if a.SummaryOnly {
				if rib := s.ribs[k]; rib != nil {
					for _, cp := range rib.Prefixes() {
						if cp != a.Prefix && cp.Bits() > a.Prefix.Bits() && a.Prefix.Contains(cp.Addr()) {
							delete(s.lastAdv[k], cp)
							out = append(out, msg{
								to: k.dev, vrf: k.vrf, from: "agg:refresh", prefix: cp,
								tid1: tid + 1, pid1: s.pidOf(cp) + 1,
							})
						}
					}
				}
			}
		}
	}
	return out
}
