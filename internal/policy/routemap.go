package policy

import (
	"net/netip"

	"hoyan/internal/netmodel"
	"hoyan/internal/vsb"
	"slices"
)

// Action is the disposition of a route-map node.
type Action uint8

// Node actions. ActionUnset triggers the no-explicit-permit/deny VSB.
const (
	ActionUnset Action = iota
	ActionPermit
	ActionDeny
)

// MatchKind selects what a match clause inspects.
type MatchKind uint8

// Match kinds.
const (
	MatchPrefixList MatchKind = iota
	MatchCommunityList
	MatchASPathList
	MatchPeerAddr // matches the advertising peer address (for per-peer nodes)
	MatchProtocol // matches the source protocol (for redistribution policy)
)

// Match is one match clause of a route-map node. All clauses of a node must
// match for the node to apply.
type Match struct {
	Kind     MatchKind
	ListName string            // for the three list kinds
	Addr     netip.Addr        // for MatchPeerAddr
	Protocol netmodel.Protocol // for MatchProtocol
}

// SetKind selects what a set clause modifies.
type SetKind uint8

// Set kinds.
const (
	SetLocalPref SetKind = iota
	SetMED
	SetWeight
	SetPreference
	SetCommunity    // replace the whole community set
	AddCommunity    // additive
	DeleteCommunity // remove one community
	SetNextHop
	PrependASPath // prepend ASN n times
	ReplaceASPath // overwrite the AS path (triggers the own-ASN VSB)
)

// Set is one set clause of a route-map node.
type Set struct {
	Kind        SetKind
	Value       uint32                // numeric sets and prepend count
	Communities netmodel.CommunitySet // for SetCommunity
	Community   netmodel.Community    // for Add/DeleteCommunity
	NextHop     netip.Addr
	ASN         netmodel.ASN    // for PrependASPath
	ASPath      netmodel.ASPath // for ReplaceASPath
}

// Node is one numbered entry of a route map.
type Node struct {
	Seq     int
	Action  Action
	Matches []Match
	Sets    []Set
}

// RouteMap is a named ordered policy. Nodes are evaluated in Seq order; the
// first node whose matches all succeed decides the route's fate.
type RouteMap struct {
	Name  string
	Nodes []*Node
}

// SortNodes orders the nodes by sequence number (parsers may insert nodes
// out of order; change plans may delete/insert nodes).
func (rm *RouteMap) SortNodes() {
	slices.SortFunc(rm.Nodes, func(a, b *Node) int { return a.Seq - b.Seq })
}

// Node returns the node with the given sequence number, or nil.
func (rm *RouteMap) Node(seq int) *Node {
	for _, n := range rm.Nodes {
		if n.Seq == seq {
			return n
		}
	}
	return nil
}

// DeleteNode removes the node with the given sequence number; it reports
// whether a node was removed.
func (rm *RouteMap) DeleteNode(seq int) bool {
	for i, n := range rm.Nodes {
		if n.Seq == seq {
			rm.Nodes = append(rm.Nodes[:i], rm.Nodes[i+1:]...)
			return true
		}
	}
	return false
}

// Clone returns a deep copy of the route map.
func (rm *RouteMap) Clone() *RouteMap {
	out := &RouteMap{Name: rm.Name}
	for _, n := range rm.Nodes {
		cp := &Node{Seq: n.Seq, Action: n.Action}
		cp.Matches = append([]Match(nil), n.Matches...)
		cp.Sets = append([]Set(nil), n.Sets...)
		out.Nodes = append(out.Nodes, cp)
	}
	return out
}

// Env carries the filter definitions and vendor semantics a route map is
// evaluated under.
type Env struct {
	Profile        vsb.Profile
	PrefixLists    map[string]*PrefixList
	CommunityLists map[string]*CommunityList
	ASPathLists    map[string]*ASPathList

	// FlawedASPathRegex injects the §5.3 implementation bug into AS-path
	// matching (accuracy-campaign fault injection).
	FlawedASPathRegex bool
}

// Disposition is the outcome of applying a policy to a route.
type Disposition uint8

// Dispositions.
const (
	Accept Disposition = iota
	Reject
)

func (d Disposition) String() string {
	if d == Accept {
		return "accept"
	}
	return "reject"
}

// matches reports whether the route satisfies one match clause. Undefined
// filters are resolved per the UndefinedFilterMatchesAll VSB.
func (e Env) matches(m Match, r netmodel.Route, peer netip.Addr) bool {
	switch m.Kind {
	case MatchPrefixList:
		l, ok := e.PrefixLists[m.ListName]
		if !ok {
			return e.Profile.UndefinedFilterMatchesAll
		}
		return l.Match(r.Prefix, e.Profile)
	case MatchCommunityList:
		l, ok := e.CommunityLists[m.ListName]
		if !ok {
			return e.Profile.UndefinedFilterMatchesAll
		}
		return l.Match(r.Communities)
	case MatchASPathList:
		l, ok := e.ASPathLists[m.ListName]
		if !ok {
			return e.Profile.UndefinedFilterMatchesAll
		}
		return l.Match(r.ASPath.String(), e.FlawedASPathRegex)
	case MatchPeerAddr:
		return m.Addr == peer
	case MatchProtocol:
		return m.Protocol == r.Protocol
	}
	return false
}

// apply executes the node's set clauses on a copy of the route. ownASN is
// the evaluating device's ASN, needed for the AS-path overwrite VSB.
func (e Env) apply(n *Node, r netmodel.Route, ownASN netmodel.ASN) netmodel.Route {
	for _, s := range n.Sets {
		switch s.Kind {
		case SetLocalPref:
			r.LocalPref = s.Value
		case SetMED:
			r.MED = s.Value
		case SetWeight:
			r.Weight = s.Value
		case SetPreference:
			r.Preference = s.Value
		case SetCommunity:
			r.Communities = s.Communities
		case AddCommunity:
			r.Communities = r.Communities.Add(s.Community)
		case DeleteCommunity:
			r.Communities = r.Communities.Remove(s.Community)
		case SetNextHop:
			r.NextHop = s.NextHop
		case PrependASPath:
			for i := uint32(0); i < s.Value; i++ {
				r.ASPath = r.ASPath.Prepend(s.ASN)
			}
		case ReplaceASPath:
			r.ASPath = netmodel.ASPath{
				Seq: append([]netmodel.ASN(nil), s.ASPath.Seq...),
				Set: append([]netmodel.ASN(nil), s.ASPath.Set...),
			}
			// VSB: some vendors re-add the device's own ASN after a policy
			// overwrites the AS path.
			if e.Profile.AddOwnASNAfterPolicyOverwrite && ownASN != 0 {
				r.ASPath = r.ASPath.Prepend(ownASN)
			}
		}
	}
	return r
}

// Apply evaluates the route map on route r advertised by peer, under env's
// vendor semantics. It returns the (possibly rewritten) route and the
// disposition.
//
// Nodes are walked in sequence order; the first fully-matching node applies
// its sets and its action decides. VSBs involved:
//   - a matching node without an explicit action: PermitOnNoAction;
//   - no node matches: AcceptOnNoMatch (the "default route policy").
func (e Env) Apply(rm *RouteMap, r netmodel.Route, peer netip.Addr, ownASN netmodel.ASN) (netmodel.Route, Disposition) {
	for _, n := range rm.Nodes {
		all := true
		for _, m := range n.Matches {
			if !e.matches(m, r, peer) {
				all = false
				break
			}
		}
		if !all {
			continue
		}
		switch n.Action {
		case ActionPermit:
			return e.apply(n, r, ownASN), Accept
		case ActionDeny:
			return r, Reject
		default: // ActionUnset: VSB decides
			if e.Profile.PermitOnNoAction {
				return e.apply(n, r, ownASN), Accept
			}
			return r, Reject
		}
	}
	if e.Profile.AcceptOnNoMatch {
		return r, Accept
	}
	return r, Reject
}
