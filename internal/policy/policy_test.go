package policy

import (
	"net/netip"
	"testing"

	"hoyan/internal/netmodel"
	"hoyan/internal/vsb"
)

func pfx(s string) netip.Prefix { return netip.MustParsePrefix(s) }
func addr(s string) netip.Addr  { return netip.MustParseAddr(s) }

func TestPrefixEntryMatches(t *testing.T) {
	tests := []struct {
		entry PrefixEntry
		p     string
		want  bool
	}{
		// Exact match only.
		{PrefixEntry{Prefix: pfx("10.0.0.0/24")}, "10.0.0.0/24", true},
		{PrefixEntry{Prefix: pfx("10.0.0.0/24")}, "10.0.0.0/25", false},
		{PrefixEntry{Prefix: pfx("10.0.0.0/24")}, "10.0.1.0/24", false},
		// le extends to more specific.
		{PrefixEntry{Prefix: pfx("10.0.0.0/24"), Le: 32}, "10.0.0.8/32", true},
		{PrefixEntry{Prefix: pfx("10.0.0.0/24"), Le: 28}, "10.0.0.0/30", false},
		// ge sets the floor; hi defaults to address length.
		{PrefixEntry{Prefix: pfx("10.0.0.0/8"), Ge: 24}, "10.1.2.0/24", true},
		{PrefixEntry{Prefix: pfx("10.0.0.0/8"), Ge: 24}, "10.1.0.0/16", false},
		{PrefixEntry{Prefix: pfx("10.0.0.0/8"), Ge: 24}, "10.1.2.3/32", true},
		// ge+le window.
		{PrefixEntry{Prefix: pfx("10.0.0.0/8"), Ge: 16, Le: 24}, "10.1.2.0/24", true},
		{PrefixEntry{Prefix: pfx("10.0.0.0/8"), Ge: 16, Le: 24}, "10.1.2.0/25", false},
		// Family mismatch never matches at the entry level.
		{PrefixEntry{Prefix: pfx("10.0.0.0/8"), Le: 128}, "2001:db8::/64", false},
	}
	for _, tt := range tests {
		if got := tt.entry.Matches(pfx(tt.p)); got != tt.want {
			t.Errorf("entry %+v match %s = %v, want %v", tt.entry, tt.p, got, tt.want)
		}
	}
}

func TestPrefixListFirstMatchWins(t *testing.T) {
	l := &PrefixList{Name: "PL", Family: FamilyIPv4, Entries: []PrefixEntry{
		{Permit: false, Prefix: pfx("10.0.1.0/24")},
		{Permit: true, Prefix: pfx("10.0.0.0/16"), Le: 32},
	}}
	prof := vsb.Alpha()
	if l.Match(pfx("10.0.1.0/24"), prof) {
		t.Error("deny entry should win")
	}
	if !l.Match(pfx("10.0.2.0/24"), prof) {
		t.Error("permit entry should match")
	}
	if l.Match(pfx("192.168.0.0/24"), prof) {
		t.Error("implicit deny for no match")
	}
}

func TestPrefixListIPv6VSB(t *testing.T) {
	// Figure 10(b): IPv4 "ip-prefix" list applied to IPv6 routes.
	l := &PrefixList{Name: "PL", Family: FamilyIPv4, Entries: []PrefixEntry{
		{Permit: true, Prefix: pfx("10.0.0.0/8"), Le: 32},
	}}
	v6 := pfx("2001:db8::/48")
	permissive := vsb.Alpha() // IPPrefixFilterPermitsIPv6 = true
	strict := vsb.Beta()
	if !l.Match(v6, permissive) {
		t.Error("permissive vendor must permit all IPv6 prefixes through an IPv4 list")
	}
	if l.Match(v6, strict) {
		t.Error("strict vendor must not match IPv6 against an IPv4 list")
	}
	// A proper IPv6 list is unaffected by the VSB.
	l6 := &PrefixList{Name: "PL6", Family: FamilyIPv6, Entries: []PrefixEntry{
		{Permit: true, Prefix: pfx("2001:db8::/32"), Le: 128},
	}}
	if !l6.Match(v6, strict) {
		t.Error("IPv6 list should match IPv6 prefix")
	}
}

func TestCommunityList(t *testing.T) {
	l := &CommunityList{Name: "CL", Entries: []CommunityEntry{
		{Permit: false, Community: netmodel.MustCommunity("666:0")},
		{Permit: true, Community: netmodel.MustCommunity("100:1")},
	}}
	if !l.Match(netmodel.NewCommunitySet(netmodel.MustCommunity("100:1"), netmodel.MustCommunity("7:7"))) {
		t.Error("want permit for 100:1")
	}
	if l.Match(netmodel.NewCommunitySet(netmodel.MustCommunity("666:0"), netmodel.MustCommunity("100:1"))) {
		t.Error("deny entry is first; want deny")
	}
	if l.Match(netmodel.NewCommunitySet(netmodel.MustCommunity("9:9"))) {
		t.Error("implicit deny")
	}
}

func TestASPathList(t *testing.T) {
	l := &ASPathList{Name: "AP", Entries: []ASPathEntry{
		{Permit: true, Regex: `(^|.* )123( .*|$)`},
	}}
	if !l.Match("65001 123 65002", false) {
		t.Error("want match for AS 123 in path")
	}
	if l.Match("65001 1234 65002", false) {
		t.Error("1234 must not match 123 with correct regex")
	}
	// The flawed implementation (substring of literal chars) wrongly matches.
	if !l.Match("65001 1234 65002", true) {
		t.Error("flawed matcher should produce the paper's false positive")
	}
}

func TestACL(t *testing.T) {
	a := &ACL{Name: "A1", Entries: []ACLEntry{
		{Permit: false, Dst: pfx("10.0.0.0/24"), Proto: netmodel.ProtoTCP, DstPortLo: 80, DstPortHi: 80},
		{Permit: true},
	}}
	blocked := netmodel.Flow{Src: addr("1.1.1.1"), Dst: addr("10.0.0.5"), Proto: netmodel.ProtoTCP, DstPort: 80}
	if a.Permits(blocked) {
		t.Error("should block TCP/80 to 10.0.0.0/24")
	}
	okFlow := blocked
	okFlow.DstPort = 443
	if !a.Permits(okFlow) {
		t.Error("should permit other ports")
	}
	udp := blocked
	udp.Proto = netmodel.ProtoUDP
	if !a.Permits(udp) {
		t.Error("should permit UDP")
	}
	empty := &ACL{Name: "E"}
	if empty.Permits(okFlow) {
		t.Error("empty ACL has implicit deny")
	}
}

func testEnv(prof vsb.Profile) Env {
	return Env{
		Profile: prof,
		PrefixLists: map[string]*PrefixList{
			"PL10": {Name: "PL10", Family: FamilyIPv4, Entries: []PrefixEntry{
				{Permit: true, Prefix: pfx("10.0.0.0/24")},
			}},
		},
		CommunityLists: map[string]*CommunityList{
			"CL1": {Name: "CL1", Entries: []CommunityEntry{
				{Permit: true, Community: netmodel.MustCommunity("100:1")},
			}},
		},
		ASPathLists: map[string]*ASPathList{},
	}
}

func testRoute() netmodel.Route {
	return netmodel.Route{
		Device: "A", VRF: netmodel.DefaultVRF,
		Prefix:      pfx("10.0.0.0/24"),
		Protocol:    netmodel.ProtoBGP,
		NextHop:     addr("2.0.0.1"),
		Communities: netmodel.NewCommunitySet(netmodel.MustCommunity("100:1")),
		LocalPref:   100,
		ASPath:      netmodel.ASPath{Seq: []netmodel.ASN{65002}},
	}
}

func TestRouteMapFirstMatchAppliesSets(t *testing.T) {
	rm := &RouteMap{Name: "RM", Nodes: []*Node{
		{Seq: 10, Action: ActionPermit,
			Matches: []Match{{Kind: MatchPrefixList, ListName: "PL10"}},
			Sets: []Set{
				{Kind: SetLocalPref, Value: 300},
				{Kind: AddCommunity, Community: netmodel.MustCommunity("200:2")},
			}},
		{Seq: 20, Action: ActionDeny},
	}}
	env := testEnv(vsb.Alpha())
	out, disp := env.Apply(rm, testRoute(), addr("9.9.9.9"), 65001)
	if disp != Accept {
		t.Fatalf("disp = %v", disp)
	}
	if out.LocalPref != 300 {
		t.Errorf("LocalPref = %d", out.LocalPref)
	}
	if !out.Communities.Contains(netmodel.MustCommunity("200:2")) {
		t.Error("additive community missing")
	}
	if !out.Communities.Contains(netmodel.MustCommunity("100:1")) {
		t.Error("additive set must keep existing communities")
	}

	// A route not matching node 10 falls to node 20 (deny).
	other := testRoute()
	other.Prefix = pfx("99.0.0.0/24")
	_, disp = env.Apply(rm, other, addr("9.9.9.9"), 65001)
	if disp != Reject {
		t.Errorf("non-matching route should hit deny node, got %v", disp)
	}
}

func TestRouteMapNodeOrdering(t *testing.T) {
	// Paper Figure 10(a): node 10 denies everything, node 20 permits the
	// target prefix. Deleting node 10 lets the route through.
	env := testEnv(vsb.Beta())
	rm := &RouteMap{Name: "IN", Nodes: []*Node{
		{Seq: 10, Action: ActionDeny},
		{Seq: 20, Action: ActionPermit, Matches: []Match{{Kind: MatchPrefixList, ListName: "PL10"}}},
	}}
	r := testRoute()
	if _, disp := env.Apply(rm, r, addr("9.9.9.9"), 0); disp != Reject {
		t.Fatal("node 10 should deny all")
	}
	if !rm.DeleteNode(10) {
		t.Fatal("DeleteNode")
	}
	if _, disp := env.Apply(rm, r, addr("9.9.9.9"), 0); disp != Accept {
		t.Fatal("after deleting node 10, node 20 should permit")
	}
}

func TestRouteMapNoMatchVSB(t *testing.T) {
	rm := &RouteMap{Name: "RM", Nodes: []*Node{
		{Seq: 10, Action: ActionPermit, Matches: []Match{{Kind: MatchPrefixList, ListName: "PL10"}}},
	}}
	r := testRoute()
	r.Prefix = pfx("99.0.0.0/24")
	envA := testEnv(vsb.Alpha()) // AcceptOnNoMatch = false
	if _, disp := envA.Apply(rm, r, addr("9.9.9.9"), 0); disp != Reject {
		t.Error("alpha rejects on no match")
	}
	envB := testEnv(vsb.Beta()) // AcceptOnNoMatch = true
	if _, disp := envB.Apply(rm, r, addr("9.9.9.9"), 0); disp != Accept {
		t.Error("beta accepts on no match")
	}
}

func TestRouteMapNoActionVSB(t *testing.T) {
	rm := &RouteMap{Name: "RM", Nodes: []*Node{
		{Seq: 10, Action: ActionUnset, Sets: []Set{{Kind: SetLocalPref, Value: 500}}},
	}}
	envA := testEnv(vsb.Alpha()) // PermitOnNoAction = true
	out, disp := envA.Apply(rm, testRoute(), addr("9.9.9.9"), 0)
	if disp != Accept || out.LocalPref != 500 {
		t.Errorf("alpha: %v lp=%d", disp, out.LocalPref)
	}
	envB := testEnv(vsb.Beta())
	if _, disp := envB.Apply(rm, testRoute(), addr("9.9.9.9"), 0); disp != Reject {
		t.Error("beta rejects on unset action")
	}
}

func TestRouteMapUndefinedFilterVSB(t *testing.T) {
	rm := &RouteMap{Name: "RM", Nodes: []*Node{
		{Seq: 10, Action: ActionPermit, Matches: []Match{{Kind: MatchPrefixList, ListName: "NOSUCH"}},
			Sets: []Set{{Kind: SetLocalPref, Value: 900}}},
	}}
	envA := testEnv(vsb.Alpha()) // UndefinedFilterMatchesAll = true
	out, disp := envA.Apply(rm, testRoute(), addr("9.9.9.9"), 0)
	if disp != Accept || out.LocalPref != 900 {
		t.Error("alpha treats undefined filter as match-all")
	}
	envB := testEnv(vsb.Beta()) // ...MatchesAll = false, AcceptOnNoMatch = true
	out, disp = envB.Apply(rm, testRoute(), addr("9.9.9.9"), 0)
	if disp != Accept || out.LocalPref != 100 {
		t.Errorf("beta: node must not match, default policy accepts unmodified; lp=%d disp=%v", out.LocalPref, disp)
	}
}

func TestReplaceASPathOwnASNVSB(t *testing.T) {
	rm := &RouteMap{Name: "RM", Nodes: []*Node{
		{Seq: 10, Action: ActionPermit, Sets: []Set{
			{Kind: ReplaceASPath, ASPath: netmodel.ASPath{Seq: []netmodel.ASN{7}}},
		}},
	}}
	envA := testEnv(vsb.Alpha()) // AddOwnASNAfterPolicyOverwrite = true
	out, _ := envA.Apply(rm, testRoute(), addr("9.9.9.9"), 65001)
	if got := out.ASPath.String(); got != "65001 7" {
		t.Errorf("alpha overwrite = %q, want own ASN prepended", got)
	}
	envB := testEnv(vsb.Beta())
	out, _ = envB.Apply(rm, testRoute(), addr("9.9.9.9"), 65001)
	if got := out.ASPath.String(); got != "7" {
		t.Errorf("beta overwrite = %q", got)
	}
}

func TestMatchPeerAndProtocol(t *testing.T) {
	rm := &RouteMap{Name: "RM", Nodes: []*Node{
		{Seq: 10, Action: ActionDeny, Matches: []Match{{Kind: MatchPeerAddr, Addr: addr("5.5.5.5")}}},
		{Seq: 20, Action: ActionPermit, Matches: []Match{{Kind: MatchProtocol, Protocol: netmodel.ProtoStatic}}},
	}}
	env := testEnv(vsb.Alpha())
	env.Profile.AcceptOnNoMatch = false

	if _, disp := env.Apply(rm, testRoute(), addr("5.5.5.5"), 0); disp != Reject {
		t.Error("peer match should deny")
	}
	st := testRoute()
	st.Protocol = netmodel.ProtoStatic
	if _, disp := env.Apply(rm, st, addr("1.2.3.4"), 0); disp != Accept {
		t.Error("protocol match should permit")
	}
	if _, disp := env.Apply(rm, testRoute(), addr("1.2.3.4"), 0); disp != Reject {
		t.Error("no match should reject")
	}
}

func TestRouteMapSetsEveryKind(t *testing.T) {
	rm := &RouteMap{Name: "RM", Nodes: []*Node{{Seq: 1, Action: ActionPermit, Sets: []Set{
		{Kind: SetMED, Value: 42},
		{Kind: SetWeight, Value: 7},
		{Kind: SetPreference, Value: 90},
		{Kind: SetCommunity, Communities: netmodel.NewCommunitySet(netmodel.MustCommunity("300:3"))},
		{Kind: DeleteCommunity, Community: netmodel.MustCommunity("300:3")},
		{Kind: AddCommunity, Community: netmodel.MustCommunity("400:4")},
		{Kind: SetNextHop, NextHop: addr("8.8.8.8")},
		{Kind: PrependASPath, ASN: 65001, Value: 2},
	}}}}
	env := testEnv(vsb.Alpha())
	out, disp := env.Apply(rm, testRoute(), addr("9.9.9.9"), 65001)
	if disp != Accept {
		t.Fatal(disp)
	}
	if out.MED != 42 || out.Weight != 7 || out.Preference != 90 {
		t.Errorf("numeric sets: %+v", out)
	}
	if out.Communities.String() != "400:4" {
		t.Errorf("communities = %s", out.Communities)
	}
	if out.NextHop != addr("8.8.8.8") {
		t.Errorf("nexthop = %s", out.NextHop)
	}
	if got := out.ASPath.String(); got != "65001 65001 65002" {
		t.Errorf("aspath = %q", got)
	}
}

func TestRouteMapCloneIsDeep(t *testing.T) {
	rm := &RouteMap{Name: "RM", Nodes: []*Node{
		{Seq: 10, Action: ActionPermit, Sets: []Set{{Kind: SetLocalPref, Value: 1}}},
	}}
	cl := rm.Clone()
	cl.Nodes[0].Sets[0].Value = 2
	cl.Nodes[0].Seq = 99
	if rm.Nodes[0].Sets[0].Value != 1 || rm.Nodes[0].Seq != 10 {
		t.Error("Clone shares state with original")
	}
}

func TestSortNodes(t *testing.T) {
	rm := &RouteMap{Name: "RM", Nodes: []*Node{{Seq: 30}, {Seq: 10}, {Seq: 20}}}
	rm.SortNodes()
	if rm.Nodes[0].Seq != 10 || rm.Nodes[2].Seq != 30 {
		t.Errorf("SortNodes: %v", []int{rm.Nodes[0].Seq, rm.Nodes[1].Seq, rm.Nodes[2].Seq})
	}
	if rm.Node(20) == nil || rm.Node(99) != nil {
		t.Error("Node lookup")
	}
}
