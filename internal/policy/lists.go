// Package policy implements Hoyan's route-policy engine: prefix lists,
// community lists, AS-path lists, route maps (ordered permit/deny nodes with
// match and set clauses), and packet ACLs.
//
// Evaluation is parameterized by a vsb.Profile so the same policy text can be
// interpreted under different vendors' semantics — the mechanism behind the
// paper's accuracy-diagnosis campaign (§5) and the Figure 10(b) case study.
package policy

import (
	"fmt"
	"net/netip"
	"regexp"
	"strings"
	"sync"

	"hoyan/internal/netmodel"
	"hoyan/internal/vsb"
)

// Family is the address family a filter was declared for.
type Family uint8

// Address families.
const (
	FamilyIPv4 Family = iota
	FamilyIPv6
)

func (f Family) String() string {
	if f == FamilyIPv6 {
		return "ipv6"
	}
	return "ipv4"
}

// FamilyOf returns the family of a prefix.
func FamilyOf(p netip.Prefix) Family {
	if p.Addr().Is6() && !p.Addr().Is4In6() {
		return FamilyIPv6
	}
	return FamilyIPv4
}

// PrefixEntry is one line of a prefix list. Ge/Le extend the match to more
// specific prefix lengths; zero means "exact length only".
type PrefixEntry struct {
	Permit bool
	Prefix netip.Prefix
	Ge     int // minimum prefix length; 0 = exact
	Le     int // maximum prefix length; 0 = exact unless Ge is set
}

// Matches reports whether p matches the entry's prefix+length constraints.
func (e PrefixEntry) Matches(p netip.Prefix) bool {
	if FamilyOf(e.Prefix) != FamilyOf(p) {
		return false
	}
	if p.Bits() < e.Prefix.Bits() || !e.Prefix.Contains(p.Addr()) {
		return false
	}
	lo, hi := e.Prefix.Bits(), e.Prefix.Bits()
	if e.Ge > 0 {
		lo = e.Ge
		hi = p.Addr().BitLen()
	}
	if e.Le > 0 {
		hi = e.Le
	}
	return p.Bits() >= lo && p.Bits() <= hi
}

// PrefixList is a named, ordered list of prefix entries. Family records the
// command used to declare it ("ip-prefix" vs "ipv6-prefix"), which matters
// for the Figure 10(b) VSB.
type PrefixList struct {
	Name    string
	Family  Family
	Entries []PrefixEntry
}

// Match evaluates the list against prefix p under the given vendor profile.
// The first matching entry decides permit/deny; no match denies.
//
// VSB (Figure 10b): when an IPv4 list is applied to an IPv6 prefix and the
// profile has IPPrefixFilterPermitsIPv6, every IPv6 prefix is permitted.
func (l *PrefixList) Match(p netip.Prefix, prof vsb.Profile) bool {
	if l.Family == FamilyIPv4 && FamilyOf(p) == FamilyIPv6 {
		return prof.IPPrefixFilterPermitsIPv6
	}
	for _, e := range l.Entries {
		if e.Matches(p) {
			return e.Permit
		}
	}
	return false
}

// CommunityEntry is one line of a community list.
type CommunityEntry struct {
	Permit    bool
	Community netmodel.Community
}

// CommunityList is a named list of community entries. A route matches an
// entry when its community set contains the entry's community.
type CommunityList struct {
	Name    string
	Entries []CommunityEntry
}

// Match evaluates the list against a route's community set.
func (l *CommunityList) Match(cs netmodel.CommunitySet) bool {
	for _, e := range l.Entries {
		if cs.Contains(e.Community) {
			return e.Permit
		}
	}
	return false
}

// ASPathEntry is one line of an AS-path list: a regular expression over the
// textual AS path.
type ASPathEntry struct {
	Permit bool
	Regex  string
}

// Compile prepares (and caches) the entry's regular expression, reporting
// whether it is valid. Matching compiles on demand, so calling Compile is
// optional — a warm-up/validation hook for parsers.
func (e *ASPathEntry) Compile() error {
	_, err := compiledASPathRegex(e.Regex)
	return err
}

// regexCache memoizes compiled AS-path regexes process-wide. The same small
// set of patterns recurs across thousands of devices and every parallel
// worker, so caching here both removes recompilation from the hot path and
// keeps concurrent Match calls free of per-entry lazy-init races.
var regexCache sync.Map // regex string -> regexCacheEntry

type regexCacheEntry struct {
	re  *regexp.Regexp // nil when the pattern does not compile
	err error
}

func compiledASPathRegex(pattern string) (*regexp.Regexp, error) {
	if v, ok := regexCache.Load(pattern); ok {
		e := v.(regexCacheEntry)
		return e.re, e.err
	}
	re, err := regexp.Compile(pattern)
	if err != nil {
		re = nil
	}
	v, _ := regexCache.LoadOrStore(pattern, regexCacheEntry{re: re, err: err})
	e := v.(regexCacheEntry)
	return e.re, e.err
}

// ASPathList is a named list of AS-path regex entries.
type ASPathList struct {
	Name    string
	Entries []ASPathEntry
}

// Match evaluates the list against the textual AS path. flawedRegex
// reproduces the implementation bug the paper reports (§5.3 "Hoyan's early
// implementation of regular expression matching for AS path was flawed"):
// when set, matching degrades to substring search of the literal parts.
// Entries with invalid regexes never match (as before).
func (l *ASPathList) Match(aspath string, flawedRegex bool) bool {
	for i := range l.Entries {
		e := &l.Entries[i]
		var matched bool
		if flawedRegex {
			matched = strings.Contains(aspath, stripRegexMeta(e.Regex))
		} else if re, _ := compiledASPathRegex(e.Regex); re != nil {
			matched = re.MatchString(aspath)
		}
		if matched {
			return e.Permit
		}
	}
	return false
}

func stripRegexMeta(s string) string {
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '.', '*', '^', '$', '[', ']', '(', ')', '+', '?', '\\', '|', '{', '}':
		default:
			b.WriteRune(r)
		}
	}
	return strings.TrimSpace(b.String())
}

// ACLEntry is one line of a packet ACL. Zero-valued prefixes match any
// address; zero port bounds match any port; Proto 0 matches any protocol.
type ACLEntry struct {
	Permit    bool
	Src, Dst  netip.Prefix
	Proto     netmodel.IPProto
	SrcPortLo uint16
	SrcPortHi uint16
	DstPortLo uint16
	DstPortHi uint16
}

// Matches reports whether the flow matches this entry.
func (e ACLEntry) Matches(f netmodel.Flow) bool {
	if e.Src.IsValid() && !e.Src.Contains(f.Src) {
		return false
	}
	if e.Dst.IsValid() && !e.Dst.Contains(f.Dst) {
		return false
	}
	if e.Proto != 0 && e.Proto != f.Proto {
		return false
	}
	if e.SrcPortHi != 0 && (f.SrcPort < e.SrcPortLo || f.SrcPort > e.SrcPortHi) {
		return false
	}
	if e.DstPortHi != 0 && (f.DstPort < e.DstPortLo || f.DstPort > e.DstPortHi) {
		return false
	}
	return true
}

// ACL is a named packet filter with an implicit trailing deny.
type ACL struct {
	Name    string
	Entries []ACLEntry
}

// Permits reports whether the ACL permits the flow (implicit deny).
func (a *ACL) Permits(f netmodel.Flow) bool {
	for _, e := range a.Entries {
		if e.Matches(f) {
			return e.Permit
		}
	}
	return false
}

func (f Family) GoString() string { return fmt.Sprintf("policy.Family(%d)", uint8(f)) }
