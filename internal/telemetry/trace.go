package telemetry

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"slices"
	"sync"
	"sync/atomic"
	"time"
)

// SpanContext is the wire-portable identity of a span: it rides inside
// subtask messages so one simulation run yields a single end-to-end trace
// across the master and every worker that touched it.
type SpanContext struct {
	TraceID string `json:"trace_id,omitempty"`
	SpanID  string `json:"span_id,omitempty"`
}

// Valid reports whether the context identifies a live trace.
func (sc SpanContext) Valid() bool { return sc.TraceID != "" && sc.SpanID != "" }

// SpanRecord is one finished span as collected by a Tracer.
type SpanRecord struct {
	Name     string        `json:"name"`
	TraceID  string        `json:"trace_id"`
	SpanID   string        `json:"span_id"`
	ParentID string        `json:"parent_id,omitempty"`
	Actor    string        `json:"actor,omitempty"` // process/role that emitted it
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"duration"`
	Tags     []Label       `json:"tags,omitempty"`
}

// Tracer collects finished spans for one actor (the master, one worker). It
// is safe for concurrent use. A nil *Tracer is valid everywhere and records
// nothing.
type Tracer struct {
	actor string

	mu    sync.Mutex
	spans []SpanRecord
}

// ID generation: a process-unique base mixed with a sequence number through
// splitmix64. IDs only need uniqueness, not secrecy; they never influence
// simulation results.
var (
	idBase = uint64(time.Now().UnixNano())
	idSeq  atomic.Uint64
)

func newID() string {
	x := idBase + idSeq.Add(1)*0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return fmt.Sprintf("%016x", x)
}

// NewTracer creates a tracer whose spans carry the given actor name.
func NewTracer(actor string) *Tracer { return &Tracer{actor: actor} }

// Actor returns the tracer's actor name ("" for nil).
func (t *Tracer) Actor() string {
	if t == nil {
		return ""
	}
	return t.actor
}

// Spans returns a copy of the collected spans.
func (t *Tracer) Spans() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]SpanRecord(nil), t.spans...)
}

// Reset discards the collected spans (between runs sharing one tracer).
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.spans = nil
	t.mu.Unlock()
}

// Record appends an externally assembled span (used for synthetic spans with
// explicit timestamps, e.g. the time a message sat in the MQ).
func (t *Tracer) Record(rec SpanRecord) {
	if t == nil {
		return
	}
	if rec.Actor == "" {
		rec.Actor = t.actor
	}
	t.mu.Lock()
	t.spans = append(t.spans, rec)
	t.mu.Unlock()
}

// Span is one in-flight operation. A nil *Span is valid everywhere and does
// nothing, so instrumented code never branches on "tracing enabled".
type Span struct {
	t     *Tracer
	name  string
	sc    SpanContext
	par   string
	start time.Time

	mu    sync.Mutex
	tags  []Label
	ended bool
}

// Context returns the span's wire identity (zero for nil spans).
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return s.sc
}

// SetTag attaches a key/value annotation.
func (s *Span) SetTag(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.tags = append(s.tags, Label{Key: key, Value: value})
	s.mu.Unlock()
}

// End finishes the span and hands it to the tracer. Ending twice records
// once.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	tags := s.tags
	s.mu.Unlock()
	s.t.Record(SpanRecord{
		Name: s.name, TraceID: s.sc.TraceID, SpanID: s.sc.SpanID, ParentID: s.par,
		Actor: s.t.Actor(), Start: s.start, Duration: time.Since(s.start), Tags: tags,
	})
}

type ctxKey int

const (
	tracerKey ctxKey = iota
	spanCtxKey
)

// WithTracer returns a context carrying the tracer; StartSpan below finds it
// there.
func WithTracer(ctx context.Context, t *Tracer) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, tracerKey, t)
}

// TracerFrom extracts the context's tracer (nil if absent).
func TracerFrom(ctx context.Context) *Tracer {
	t, _ := ctx.Value(tracerKey).(*Tracer)
	return t
}

// WithRemoteParent sets the current span context without starting a local
// span: the next StartSpan parents to a span that lives in another process
// (the master's enqueue span, carried by the subtask message).
func WithRemoteParent(ctx context.Context, sc SpanContext) context.Context {
	if !sc.Valid() {
		return ctx
	}
	return context.WithValue(ctx, spanCtxKey, sc)
}

// SpanContextFrom returns the context's current span identity (zero if none).
func SpanContextFrom(ctx context.Context) SpanContext {
	sc, _ := ctx.Value(spanCtxKey).(SpanContext)
	return sc
}

// StartSpan opens a span named name under the context's current span (a new
// root if there is none), using the context's tracer. It returns a derived
// context carrying the new span as current. Without a tracer it returns the
// context unchanged and a nil (no-op) span.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	t := TracerFrom(ctx)
	if t == nil {
		return ctx, nil
	}
	parent := SpanContextFrom(ctx)
	sp := &Span{
		t: t, name: name, start: time.Now(),
		sc:  SpanContext{TraceID: parent.TraceID, SpanID: newID()},
		par: parent.SpanID,
	}
	if sp.sc.TraceID == "" {
		sp.sc.TraceID = newID()
	}
	return context.WithValue(ctx, spanCtxKey, sp.sc), sp
}

// StartRoot opens a root span (fresh trace ID) directly on the tracer.
func (t *Tracer) StartRoot(name string) *Span {
	if t == nil {
		return nil
	}
	return &Span{
		t: t, name: name, start: time.Now(),
		sc: SpanContext{TraceID: newID(), SpanID: newID()},
	}
}

// RecordSpan records an already-finished span with explicit timing under
// parent, allocating its ID — for synthetic spans whose duration was observed
// after the fact, like the time a message sat in the MQ. It returns the new
// span's context (zero for nil tracers).
func (t *Tracer) RecordSpan(parent SpanContext, name string, start time.Time, d time.Duration, tags ...Label) SpanContext {
	if t == nil {
		return SpanContext{}
	}
	sc := SpanContext{TraceID: parent.TraceID, SpanID: newID()}
	if sc.TraceID == "" {
		sc.TraceID = newID()
	}
	t.Record(SpanRecord{
		Name: name, TraceID: sc.TraceID, SpanID: sc.SpanID, ParentID: parent.SpanID,
		Start: start, Duration: d, Tags: tags,
	})
	return sc
}

// StartChild opens a span under an explicit parent context (used where a
// context.Context is not threaded, e.g. the master's per-subtask enqueue
// spans under the run root).
func (t *Tracer) StartChild(parent SpanContext, name string) *Span {
	if t == nil {
		return nil
	}
	sp := &Span{
		t: t, name: name, start: time.Now(),
		sc:  SpanContext{TraceID: parent.TraceID, SpanID: newID()},
		par: parent.SpanID,
	}
	if sp.sc.TraceID == "" {
		sp.sc.TraceID = newID()
	}
	return sp
}

// chromeEvent is one entry of the Chrome trace_event format (ph "X" =
// complete event, "M" = metadata), viewable in chrome://tracing and Perfetto.
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat,omitempty"`
	Ph   string            `json:"ph"`
	TS   float64           `json:"ts"` // microseconds
	Dur  float64           `json:"dur,omitempty"`
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// WriteChromeTrace renders spans as a Chrome trace_event JSON document. Each
// actor gets its own named thread row, so the master's enqueue spans and
// every worker's execution spans line up on one timeline.
func WriteChromeTrace(w io.Writer, spans []SpanRecord) error {
	actors := map[string]int{}
	var order []string
	for _, s := range spans {
		if _, ok := actors[s.Actor]; !ok {
			actors[s.Actor] = len(actors) + 1
			order = append(order, s.Actor)
		}
	}
	slices.Sort(order)
	for i, a := range order {
		actors[a] = i + 1
	}

	var events []chromeEvent
	for _, a := range order {
		name := a
		if name == "" {
			name = "(unknown)"
		}
		events = append(events, chromeEvent{
			Name: "thread_name", Ph: "M", PID: 1, TID: actors[a],
			Args: map[string]string{"name": name},
		})
	}
	for _, s := range spans {
		args := map[string]string{
			"trace_id": s.TraceID,
			"span_id":  s.SpanID,
		}
		if s.ParentID != "" {
			args["parent_id"] = s.ParentID
		}
		for _, tag := range s.Tags {
			args[tag.Key] = tag.Value
		}
		events = append(events, chromeEvent{
			Name: s.Name, Cat: "hoyan", Ph: "X",
			TS:  float64(s.Start.UnixNano()) / 1e3,
			Dur: float64(s.Duration.Nanoseconds()) / 1e3,
			PID: 1, TID: actors[s.Actor], Args: args,
		})
	}

	doc := struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}{TraceEvents: events}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(doc)
}
