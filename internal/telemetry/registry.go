// Package telemetry is the dependency-free observability layer of the
// distributed simulation fleet: an atomic metrics registry (counters, gauges,
// fixed-bucket histograms, Prometheus text exposition), a lightweight tracing
// API whose span contexts propagate across the wire inside subtask messages,
// a structured JSON event logger, and the /metrics + /healthz + /debug/pprof
// ops endpoints the fleet binaries serve.
//
// Design constraints, in order: zero allocation on the hot path (metrics are
// pre-registered once, updates are single atomic ops), zero external
// dependencies (stdlib only), and zero effect on simulation output —
// instrumentation observes, it never participates.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"slices"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one metric dimension, fixed at registration time. Hot-path updates
// never format or look up labels: a (name, labels) pair is resolved to a
// child metric exactly once, when it is registered.
type Label struct {
	Key   string
	Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing metric. The zero value is usable (a
// detached counter not attached to any registry).
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative deltas are ignored: counters only go up).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric that can go up and down, stored as a float64.
// The zero value is usable.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds d to the gauge.
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket histogram. Buckets are cumulative upper bounds
// (Prometheus "le" semantics); a +Inf bucket is implicit. The zero value is
// NOT usable — bounds must be set — so histograms are always built through a
// Registry or NewHistogram.
type Histogram struct {
	bounds  []float64
	counts  []atomic.Int64 // len(bounds)+1; last is the +Inf bucket
	count   atomic.Int64
	sumBits atomic.Uint64
}

// NewHistogram creates a detached histogram with the given upper bounds
// (sorted ascending; an empty slice leaves only the +Inf bucket).
func NewHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	slices.Sort(b)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	// Buckets are few (≤ ~16): linear scan beats binary search in practice
	// and stays allocation-free.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// DurationBuckets are the default seconds-scale bounds for latency
// histograms: 100µs up to ~100s.
var DurationBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 100,
}

// Kind discriminates metric families.
type Kind string

// Metric family kinds (Prometheus TYPE names).
const (
	KindCounter   Kind = "counter"
	KindGauge     Kind = "gauge"
	KindHistogram Kind = "histogram"
)

// family is one named metric with its registered children (one per label
// set).
type family struct {
	name     string
	help     string
	kind     Kind
	bounds   []float64
	children map[string]*child
}

type child struct {
	labels []Label
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// Registry holds a process's (or role's) metric families. All methods are
// safe for concurrent use; registration takes a lock, metric updates do not.
// A nil *Registry is valid everywhere and hands out detached metrics, so
// instrumented code never has to branch on "telemetry enabled".
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry { return &Registry{fams: make(map[string]*family)} }

// Counter registers (or fetches) the counter name with the given label set.
// Re-registering the same (name, labels) returns the same counter, so
// restarts of a component keep accumulating into one series.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return &Counter{}
	}
	ch := r.child(name, help, KindCounter, nil, labels)
	return ch.c
}

// Gauge registers (or fetches) the gauge name with the given label set.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return &Gauge{}
	}
	ch := r.child(name, help, KindGauge, nil, labels)
	return ch.g
}

// Histogram registers (or fetches) the histogram name with the given bucket
// upper bounds and label set. All children of one family share the first
// registration's bounds.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if r == nil {
		return NewHistogram(bounds)
	}
	ch := r.child(name, help, KindHistogram, bounds, labels)
	return ch.h
}

func labelSig(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	for _, l := range labels {
		b.WriteString(l.Key)
		b.WriteByte('\x00')
		b.WriteString(l.Value)
		b.WriteByte('\x00')
	}
	return b.String()
}

func (r *Registry) child(name, help string, kind Kind, bounds []float64, labels []Label) *child {
	ls := append([]Label(nil), labels...)
	slices.SortFunc(ls, func(a, b Label) int { return strings.Compare(a.Key, b.Key) })
	sig := labelSig(ls)

	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.fams[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, children: make(map[string]*child)}
		if kind == KindHistogram {
			b := append([]float64(nil), bounds...)
			slices.Sort(b)
			f.bounds = b
		}
		r.fams[name] = f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("telemetry: metric %q re-registered as %s (was %s)", name, kind, f.kind))
	}
	ch, ok := f.children[sig]
	if !ok {
		ch = &child{labels: ls}
		switch kind {
		case KindCounter:
			ch.c = &Counter{}
		case KindGauge:
			ch.g = &Gauge{}
		case KindHistogram:
			ch.h = &Histogram{bounds: f.bounds, counts: make([]atomic.Int64, len(f.bounds)+1)}
		}
		f.children[sig] = ch
	}
	return ch
}

// Bucket is one histogram bucket in a snapshot: the count of samples ≤
// UpperBound (non-cumulative per bucket; rendering accumulates).
type Bucket struct {
	UpperBound float64 `json:"le"`
	Count      int64   `json:"count"`
}

// Series is one metric series (family + label set) frozen at Gather time.
type Series struct {
	Name   string  `json:"name"`
	Help   string  `json:"help,omitempty"`
	Kind   Kind    `json:"kind"`
	Labels []Label `json:"labels,omitempty"`

	// Counter/gauge value.
	Value float64 `json:"value,omitempty"`

	// Histogram fields.
	Count   int64    `json:"count,omitempty"`
	Sum     float64  `json:"sum,omitempty"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// key identifies a series for merging.
func (s Series) key() string { return s.Name + "\x00" + labelSig(s.Labels) }

// Snapshot is a point-in-time copy of a registry's series, sorted by name
// then label signature. Snapshots from several registries (one per worker)
// merge into a fleet-wide view with Merge.
type Snapshot []Series

// Gather freezes every series in the registry. A nil registry gathers
// nothing.
func (r *Registry) Gather() Snapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var out Snapshot
	for _, f := range r.fams {
		for _, ch := range f.children {
			s := Series{Name: f.name, Help: f.help, Kind: f.kind, Labels: ch.labels}
			switch f.kind {
			case KindCounter:
				s.Value = float64(ch.c.Value())
			case KindGauge:
				s.Value = ch.g.Value()
			case KindHistogram:
				s.Count = ch.h.Count()
				s.Sum = ch.h.Sum()
				for i := range ch.h.counts {
					ub := math.Inf(1)
					if i < len(f.bounds) {
						ub = f.bounds[i]
					}
					s.Buckets = append(s.Buckets, Bucket{UpperBound: ub, Count: ch.h.counts[i].Load()})
				}
			}
			out = append(out, s)
		}
	}
	slices.SortFunc(out, func(a, b Series) int { return strings.Compare(a.key(), b.key()) })
	return out
}

// Merge sums o into a copy of s: series with the same name and labels are
// added together (counters, histograms) or summed (gauges — fleet gauges are
// additive, e.g. queue depth per process); series unique to either side are
// kept. The result is sorted like Gather output.
func (s Snapshot) Merge(o Snapshot) Snapshot {
	byKey := make(map[string]int, len(s))
	var out Snapshot
	for _, ser := range s {
		ser.Buckets = append([]Bucket(nil), ser.Buckets...)
		out = append(out, ser)
		byKey[ser.key()] = len(out) - 1
	}
	for _, ser := range o {
		if i, ok := byKey[ser.key()]; ok && out[i].Kind == ser.Kind {
			dst := &out[i]
			dst.Value += ser.Value
			dst.Count += ser.Count
			dst.Sum += ser.Sum
			if len(dst.Buckets) == len(ser.Buckets) {
				for b := range dst.Buckets {
					dst.Buckets[b].Count += ser.Buckets[b].Count
				}
			}
			continue
		}
		ser.Buckets = append([]Bucket(nil), ser.Buckets...)
		out = append(out, ser)
		byKey[ser.key()] = len(out) - 1
	}
	slices.SortFunc(out, func(a, b Series) int { return strings.Compare(a.key(), b.key()) })
	return out
}

// Find returns the first series with the given name and labels (order
// insensitive), or a zero Series and false.
func (s Snapshot) Find(name string, labels ...Label) (Series, bool) {
	ls := append([]Label(nil), labels...)
	slices.SortFunc(ls, func(a, b Label) int { return strings.Compare(a.Key, b.Key) })
	key := name + "\x00" + labelSig(ls)
	for _, ser := range s {
		if ser.key() == key {
			return ser, true
		}
	}
	return Series{}, false
}

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format (version 0.0.4).
func (s Snapshot) WritePrometheus(w io.Writer) error {
	lastName := ""
	for _, ser := range s {
		if ser.Name != lastName {
			if ser.Help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", ser.Name, ser.Help); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", ser.Name, ser.Kind); err != nil {
				return err
			}
			lastName = ser.Name
		}
		switch ser.Kind {
		case KindHistogram:
			cum := int64(0)
			for _, b := range ser.Buckets {
				cum += b.Count
				le := "+Inf"
				if !math.IsInf(b.UpperBound, 1) {
					le = formatFloat(b.UpperBound)
				}
				if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", ser.Name, renderLabels(ser.Labels, Label{"le", le}), cum); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", ser.Name, renderLabels(ser.Labels), formatFloat(ser.Sum)); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_count%s %d\n", ser.Name, renderLabels(ser.Labels), ser.Count); err != nil {
				return err
			}
		default:
			if _, err := fmt.Fprintf(w, "%s%s %s\n", ser.Name, renderLabels(ser.Labels), formatFloat(ser.Value)); err != nil {
				return err
			}
		}
	}
	return nil
}

// WritePrometheus renders the registry's current state.
func (r *Registry) WritePrometheus(w io.Writer) error { return r.Gather().WritePrometheus(w) }

func renderLabels(labels []Label, extra ...Label) string {
	all := append(append([]Label(nil), labels...), extra...)
	if len(all) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range all {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabelValue(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}
