package telemetry

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestRegistryConcurrent hammers one registry from many goroutines — parallel
// increments, observes, re-registrations, and snapshot reads — and checks the
// final counts. Run under -race, this is the registry's thread-safety proof.
func TestRegistryConcurrent(t *testing.T) {
	reg := NewRegistry()
	const goroutines = 16
	const perG = 1000

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Re-registration must return the same child every time.
			c := reg.Counter("test_ops_total", "ops", L("kind", "route"))
			ga := reg.Gauge("test_depth", "depth")
			h := reg.Histogram("test_latency_seconds", "latency", []float64{0.1, 1})
			for i := 0; i < perG; i++ {
				c.Inc()
				ga.Add(1)
				h.Observe(0.05)
				if i%100 == 0 {
					_ = reg.Gather() // concurrent snapshot reads
				}
			}
		}()
	}
	wg.Wait()

	snap := reg.Gather()
	if s, ok := snap.Find("test_ops_total", L("kind", "route")); !ok || s.Value != goroutines*perG {
		t.Fatalf("counter = %v, want %d", s.Value, goroutines*perG)
	}
	if s, ok := snap.Find("test_depth"); !ok || s.Value != goroutines*perG {
		t.Fatalf("gauge = %v, want %d", s.Value, goroutines*perG)
	}
	if s, ok := snap.Find("test_latency_seconds"); !ok || s.Count != goroutines*perG {
		t.Fatalf("histogram count = %v, want %d", s.Count, goroutines*perG)
	}
}

// TestHistogramBucketBoundaries pins the "le" semantics: a sample equal to an
// upper bound lands in that bucket (inclusive), just above it in the next,
// and anything beyond the last bound in +Inf.
func TestHistogramBucketBoundaries(t *testing.T) {
	h := NewHistogram([]float64{1, 5, 10})
	for _, v := range []float64{0, 1, 1.0001, 5, 5.5, 10, 11, 1e9} {
		h.Observe(v)
	}
	want := []int64{2, 2, 2, 2} // (-inf,1], (1,5], (5,10], (10,+inf)
	for i, w := range want {
		if got := h.counts[i].Load(); got != w {
			t.Errorf("bucket %d = %d, want %d", i, got, w)
		}
	}
	if h.Count() != 8 {
		t.Errorf("count = %d, want 8", h.Count())
	}
	if math.Abs(h.Sum()-(0+1+1.0001+5+5.5+10+11+1e9)) > 1e-6 {
		t.Errorf("sum = %v", h.Sum())
	}

	// Unsorted registration bounds are sorted.
	h2 := NewHistogram([]float64{10, 1, 5})
	h2.Observe(2)
	if h2.counts[0].Load() != 0 || h2.counts[1].Load() != 1 {
		t.Error("bounds not sorted at construction")
	}

	// No explicit bounds: everything lands in +Inf.
	h3 := NewHistogram(nil)
	h3.Observe(42)
	if h3.counts[0].Load() != 1 || h3.Count() != 1 {
		t.Error("bound-less histogram broken")
	}
}

func TestNilRegistryAndSpansAreSafe(t *testing.T) {
	var reg *Registry
	reg.Counter("x", "").Inc()
	reg.Gauge("y", "").Set(3)
	reg.Histogram("z", "", DurationBuckets).Observe(1)
	if snap := reg.Gather(); snap != nil {
		t.Errorf("nil registry gathered %v", snap)
	}

	var tr *Tracer
	sp := tr.StartRoot("noop")
	sp.SetTag("k", "v")
	sp.End()
	ctx, sp2 := StartSpan(context.Background(), "noop2")
	sp2.End()
	if sp2 != nil || TracerFrom(ctx) != nil {
		t.Error("span without tracer must be nil")
	}

	var ev *EventLogger
	ev.Log("nothing", F("a", 1))
	ev.With(F("b", 2)).Log("still nothing")
}

func TestSnapshotMergeAndPrometheus(t *testing.T) {
	r1, r2 := NewRegistry(), NewRegistry()
	r1.Counter("hoyan_subtasks_total", "subtasks", L("kind", "route")).Add(3)
	r2.Counter("hoyan_subtasks_total", "subtasks", L("kind", "route")).Add(4)
	r2.Counter("hoyan_subtasks_total", "subtasks", L("kind", "traffic")).Add(5)
	r1.Histogram("hoyan_stage_seconds", "stages", []float64{1}, L("stage", "engine")).Observe(0.5)
	r2.Histogram("hoyan_stage_seconds", "stages", []float64{1}, L("stage", "engine")).Observe(2)

	merged := r1.Gather().Merge(r2.Gather())
	if s, ok := merged.Find("hoyan_subtasks_total", L("kind", "route")); !ok || s.Value != 7 {
		t.Fatalf("merged route counter = %v, want 7", s.Value)
	}
	if s, ok := merged.Find("hoyan_subtasks_total", L("kind", "traffic")); !ok || s.Value != 5 {
		t.Fatalf("merged traffic counter = %v, want 5", s.Value)
	}
	h, ok := merged.Find("hoyan_stage_seconds", L("stage", "engine"))
	if !ok || h.Count != 2 || math.Abs(h.Sum-2.5) > 1e-9 {
		t.Fatalf("merged histogram = %+v", h)
	}

	var buf bytes.Buffer
	if err := merged.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`# TYPE hoyan_subtasks_total counter`,
		`hoyan_subtasks_total{kind="route"} 7`,
		`hoyan_stage_seconds_bucket{stage="engine",le="1"} 1`,
		`hoyan_stage_seconds_bucket{stage="engine",le="+Inf"} 2`,
		`hoyan_stage_seconds_count{stage="engine"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestSpanHierarchyAndChromeExport(t *testing.T) {
	tr := NewTracer("master")
	root := tr.StartRoot("run")
	ctx := WithTracer(context.Background(), tr)
	ctx = WithRemoteParent(ctx, root.Context())
	ctx, child := StartSpan(ctx, "enqueue")
	_, grand := StartSpan(ctx, "push")
	grand.SetTag("sub", "0")
	grand.End()
	child.End()
	root.End()

	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	byName := map[string]SpanRecord{}
	for _, s := range spans {
		byName[s.Name] = s
	}
	tid := byName["run"].TraceID
	for _, s := range spans {
		if s.TraceID != tid {
			t.Errorf("span %s trace %s != root trace %s", s.Name, s.TraceID, tid)
		}
	}
	if byName["enqueue"].ParentID != byName["run"].SpanID {
		t.Error("enqueue not parented to run")
	}
	if byName["push"].ParentID != byName["enqueue"].SpanID {
		t.Error("push not parented to enqueue")
	}

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, spans); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	// 3 complete events + 1 thread_name metadata event.
	if len(doc.TraceEvents) != 4 {
		t.Fatalf("got %d trace events, want 4", len(doc.TraceEvents))
	}
}

func TestEventLoggerJSONLines(t *testing.T) {
	var buf bytes.Buffer
	log := NewEventLogger(&buf, F("worker", "w1"))
	log.now = func() time.Time { return time.Unix(1700000000, 0).UTC() }
	log.Log("subtask.failed", F("task", "t/route/3"), F("attempt", 2), F("error", io.ErrUnexpectedEOF.Error()))
	log.With(F("kind", "traffic")).Log("cache.evict", F("key", "k1"))

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2: %q", len(lines), buf.String())
	}
	var first map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatalf("line 1 not JSON: %v", err)
	}
	if first["event"] != "subtask.failed" || first["worker"] != "w1" || first["attempt"] != float64(2) {
		t.Errorf("line 1 fields wrong: %v", first)
	}
	var second map[string]any
	if err := json.Unmarshal([]byte(lines[1]), &second); err != nil {
		t.Fatalf("line 2 not JSON: %v", err)
	}
	if second["kind"] != "traffic" || second["worker"] != "w1" {
		t.Errorf("line 2 fields wrong: %v", second)
	}
}

func TestOpsHandler(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("hoyan_up", "up").Inc()
	healthy := true
	h := NewOpsHandler(reg, func() error {
		if !healthy {
			return io.ErrClosedPipe
		}
		return nil
	}, nil)

	get := func(path string) (int, string) {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		return rec.Code, rec.Body.String()
	}

	if code, body := get("/metrics"); code != http.StatusOK || !strings.Contains(body, "hoyan_up 1") {
		t.Errorf("/metrics = %d %q", code, body)
	}
	if code, body := get("/healthz"); code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Errorf("/healthz = %d %q", code, body)
	}
	healthy = false
	if code, _ := get("/healthz"); code != http.StatusServiceUnavailable {
		t.Errorf("/healthz unhealthy = %d, want 503", code)
	}
	if code, body := get("/debug/pprof/cmdline"); code != http.StatusOK || body == "" {
		t.Errorf("/debug/pprof/cmdline = %d", code)
	}
}

// BenchmarkCounterInc pins the hot-path cost of an enabled counter (one
// atomic add; the <5%-overhead acceptance budget rides on this).
func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().Counter("bench_total", "")
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("bench_seconds", "", DurationBuckets)
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			h.Observe(0.003)
		}
	})
}
