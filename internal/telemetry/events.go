package telemetry

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Field is one structured key/value of an event.
type Field struct {
	Key   string
	Value any
}

// F is shorthand for constructing a Field.
func F(key string, value any) Field { return Field{Key: key, Value: value} }

// EventLogger writes structured events as JSON lines: one object per event
// with "ts" and "event" keys plus the logger's base fields and the event's
// own. It replaces ad-hoc log.Printf in the fleet binaries so chaos runs are
// machine-greppable (by subtask, attempt, worker). A nil *EventLogger is
// valid everywhere and discards events.
type EventLogger struct {
	mu   *sync.Mutex
	w    io.Writer
	base []Field
	// now is stubbed in tests; production uses time.Now.
	now func() time.Time
}

// NewEventLogger creates a logger writing to w with the given base fields
// attached to every event.
func NewEventLogger(w io.Writer, base ...Field) *EventLogger {
	return &EventLogger{mu: &sync.Mutex{}, w: w, base: base, now: time.Now}
}

// With returns a child logger with extra base fields; it shares the parent's
// writer and lock, so parent and child lines never interleave.
func (l *EventLogger) With(fields ...Field) *EventLogger {
	if l == nil {
		return nil
	}
	child := *l
	child.base = append(append([]Field(nil), l.base...), fields...)
	return &child
}

// Log emits one event line. Marshal failures degrade the field to its
// fmt-rendered string rather than dropping the event.
func (l *EventLogger) Log(event string, fields ...Field) {
	if l == nil || l.w == nil {
		return
	}
	buf := make([]byte, 0, 256)
	buf = append(buf, `{"ts":`...)
	ts, _ := json.Marshal(l.now().Format(time.RFC3339Nano))
	buf = append(buf, ts...)
	buf = append(buf, `,"event":`...)
	ev, _ := json.Marshal(event)
	buf = append(buf, ev...)
	for _, f := range append(l.base, fields...) {
		key, err := json.Marshal(f.Key)
		if err != nil {
			continue
		}
		val, err := json.Marshal(f.Value)
		if err != nil {
			val, _ = json.Marshal(asString(f.Value))
		}
		buf = append(buf, ',')
		buf = append(buf, key...)
		buf = append(buf, ':')
		buf = append(buf, val...)
	}
	buf = append(buf, '}', '\n')
	l.mu.Lock()
	l.w.Write(buf)
	l.mu.Unlock()
}

func asString(v any) string {
	type stringer interface{ String() string }
	switch x := v.(type) {
	case error:
		return x.Error()
	case stringer:
		return x.String()
	default:
		return "?"
	}
}
