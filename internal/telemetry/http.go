package telemetry

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Health reports a component's liveness: nil means healthy, an error carries
// the reason (rendered into the 503 body). The fleet binaries wire lease /
// heartbeat freshness checks here.
type Health func() error

// NewOpsHandler builds the fleet's standard ops mux:
//
//	/metrics       Prometheus text exposition of reg
//	/healthz       200 "ok" or 503 with the health error
//	/debug/pprof/  the stdlib profiling endpoints
//
// gather, when non-nil, overrides the registry as the metrics source (used
// where /metrics must merge several registries).
func NewOpsHandler(reg *Registry, health Health, gather func() Snapshot) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		snap := reg.Gather()
		if gather != nil {
			snap = gather()
		}
		snap.WritePrometheus(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if health != nil {
			if err := health(); err != nil {
				http.Error(w, fmt.Sprintf("unhealthy: %v", err), http.StatusServiceUnavailable)
				return
			}
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// ServeOps listens on addr and serves the ops mux in a background goroutine.
// It returns the server (for Shutdown/Close) and the bound address (useful
// with ":0"). An empty addr is a no-op returning nils.
func ServeOps(addr string, reg *Registry, health Health, gather func() Snapshot) (*http.Server, net.Addr, error) {
	if addr == "" {
		return nil, nil, nil
	}
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, fmt.Errorf("telemetry: ops listen %s: %w", addr, err)
	}
	srv := &http.Server{
		Handler:           NewOpsHandler(reg, health, gather),
		ReadHeaderTimeout: 5 * time.Second,
	}
	go srv.Serve(l)
	return srv, l.Addr(), nil
}
