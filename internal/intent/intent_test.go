package intent

import (
	"net/netip"
	"strings"
	"testing"

	"hoyan/internal/netmodel"
	"hoyan/internal/traffic"
)

func snapRoutes(rows ...netmodel.Route) Snapshot {
	return Snapshot{RIB: netmodel.NewGlobalRIB(rows), Bandwidth: map[netmodel.LinkID]float64{}}
}

func route(dev, prefix, nh string, best bool) netmodel.Route {
	rt := netmodel.RouteCandidate
	if best {
		rt = netmodel.RouteBest
	}
	return netmodel.Route{
		Device: dev, VRF: netmodel.DefaultVRF,
		Prefix:   netip.MustParsePrefix(prefix),
		NextHop:  netip.MustParseAddr(nh),
		Protocol: netmodel.ProtoBGP, RouteType: rt,
	}
}

func TestRouteIntent(t *testing.T) {
	ctx := &Context{
		Base:    snapRoutes(route("A", "10.0.0.0/24", "1.1.1.1", true)),
		Updated: snapRoutes(route("A", "10.0.0.0/24", "2.2.2.2", true)),
	}
	rep := RouteIntent{Spec: "PRE != POST"}.Check(ctx)
	if !rep.Satisfied {
		t.Errorf("%v", rep.Violations)
	}
	rep = RouteIntent{Spec: "PRE = POST"}.Check(ctx)
	if rep.Satisfied || len(rep.Violations) == 0 {
		t.Error("violation with counterexamples expected")
	}
	// Spec errors surface as violations, not panics.
	rep = RouteIntent{Spec: "this is not rcl"}.Check(ctx)
	if rep.Satisfied || !strings.Contains(rep.Violations[0], "specification error") {
		t.Errorf("%v", rep.Violations)
	}
}

func TestReachIntent(t *testing.T) {
	ctx := &Context{Updated: snapRoutes(
		route("A", "10.0.0.0/24", "1.1.1.1", true),
		route("B", "10.0.0.0/24", "1.1.1.1", false), // candidate only
	)}
	p := netip.MustParsePrefix("10.0.0.0/24")
	if rep := (ReachIntent{Prefix: p, Devices: []string{"A"}, Want: true}).Check(ctx); !rep.Satisfied {
		t.Errorf("A has it: %v", rep.Violations)
	}
	if rep := (ReachIntent{Prefix: p, Devices: []string{"B"}, Want: true}).Check(ctx); rep.Satisfied {
		t.Error("candidate-only must not satisfy a best-route reach intent")
	}
	if rep := (ReachIntent{Prefix: p, Devices: []string{"B"}, Want: false}).Check(ctx); !rep.Satisfied {
		t.Error("absence on B holds")
	}
	// Empty device list = all devices in the RIB.
	if rep := (ReachIntent{Prefix: p, Want: true}).Check(ctx); rep.Satisfied {
		t.Error("B lacks a best route, so 'all routers' fails")
	}
}

func flowPath(ing string, dst string, exit netmodel.ExitReason, devs ...string) traffic.FlowPath {
	hops := make([]netmodel.Hop, len(devs))
	for i, d := range devs {
		hops[i] = netmodel.Hop{Device: d}
	}
	return traffic.FlowPath{
		Flow: netmodel.Flow{Ingress: ing, Dst: netip.MustParseAddr(dst), Src: netip.MustParseAddr("192.0.2.1")},
		Path: netmodel.Path{Hops: hops, Exit: exit},
	}
}

func TestPathIntent(t *testing.T) {
	ctx := &Context{Updated: Snapshot{Paths: []traffic.FlowPath{
		flowPath("A", "10.0.0.5", netmodel.ExitDelivered, "A", "B", "C"),
	}}}
	sel := FlowSelector{Ingress: "A", DstWithin: netip.MustParsePrefix("10.0.0.0/24")}
	if rep := (PathIntent{Select: sel, Traverse: []string{"A", "C"}, Delivered: true}).Check(ctx); !rep.Satisfied {
		t.Errorf("subsequence should match: %v", rep.Violations)
	}
	if rep := (PathIntent{Select: sel, Traverse: []string{"C", "A"}}).Check(ctx); rep.Satisfied {
		t.Error("order matters")
	}
	if rep := (PathIntent{Select: sel, Avoid: []string{"B"}}).Check(ctx); rep.Satisfied {
		t.Error("B is on the path")
	}
	if rep := (PathIntent{Select: sel, Blocked: true}).Check(ctx); rep.Satisfied {
		t.Error("delivered flow is not blocked")
	}
	// No matching flow is itself a violation (vacuous truth is dangerous in
	// change verification).
	none := FlowSelector{Ingress: "Z"}
	if rep := (PathIntent{Select: none, Delivered: true}).Check(ctx); rep.Satisfied {
		t.Error("empty selection must not verify")
	}
}

func TestLoadIntent(t *testing.T) {
	id := netmodel.LinkID{A: "A", B: "B", AIface: "x", BIface: "y"}
	ctx := &Context{Updated: Snapshot{
		Load:      netmodel.LinkLoad{id: 95e6},
		Bandwidth: map[netmodel.LinkID]float64{id: 100e6},
	}}
	if rep := (LoadIntent{MaxUtilization: 0.96}).Check(ctx); !rep.Satisfied {
		t.Errorf("under threshold: %v", rep.Violations)
	}
	rep := LoadIntent{MaxUtilization: 0.9}.Check(ctx)
	if rep.Satisfied {
		t.Error("95% > 90% must violate")
	}
	if !strings.Contains(rep.Violations[0], "overloaded") {
		t.Errorf("violation text: %v", rep.Violations)
	}
	// Restricting to other links passes.
	other := netmodel.LinkID{A: "C", B: "D"}
	if rep := (LoadIntent{MaxUtilization: 0.9, Links: []netmodel.LinkID{other}}).Check(ctx); !rep.Satisfied {
		t.Error("restricted link set should pass")
	}
}

func TestVerifyAggregates(t *testing.T) {
	ctx := &Context{
		Base:    snapRoutes(route("A", "10.0.0.0/24", "1.1.1.1", true)),
		Updated: snapRoutes(route("A", "10.0.0.0/24", "1.1.1.1", true)),
	}
	reports, ok := Verify(ctx, []Intent{
		RouteIntent{Spec: "PRE = POST"},
		RouteIntent{Spec: "PRE != POST"},
	})
	if ok {
		t.Error("one intent fails, so ok must be false")
	}
	if len(reports) != 2 || !reports[0].Satisfied || reports[1].Satisfied {
		t.Errorf("reports: %+v", reports)
	}
}

func TestDescribeStrings(t *testing.T) {
	descs := []string{
		RouteIntent{Spec: "PRE = POST"}.Describe(),
		ReachIntent{Prefix: netip.MustParsePrefix("10.0.0.0/24"), Want: true}.Describe(),
		ReachIntent{Prefix: netip.MustParsePrefix("10.0.0.0/24"), Devices: []string{"A"}, Want: false}.Describe(),
		PathIntent{Select: FlowSelector{Ingress: "A"}, Traverse: []string{"A", "B"}, Delivered: true}.Describe(),
		LoadIntent{MaxUtilization: 0.8}.Describe(),
	}
	for _, d := range descs {
		if d == "" {
			t.Error("empty description")
		}
	}
	if !strings.Contains(descs[3], "via A-B") {
		t.Errorf("path describe: %q", descs[3])
	}
}
