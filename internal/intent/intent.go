// Package intent implements Hoyan's change-intent verification: given the
// simulated base and updated network states, it checks the operator's
// formally specified intents and produces counterexamples for violations
// (§2.2). The paper identifies three intent families with different
// abstractions:
//
//   - route change intents, written in RCL (§4);
//   - flow path change intents (a Rela-like path constraint language);
//   - traffic load intents (utilization thresholds).
//
// Reachability intents — the original Hoyan's bread and butter — are kept as
// a fourth, simpler family.
package intent

import (
	"fmt"
	"net/netip"
	"strings"

	"hoyan/internal/netmodel"
	"hoyan/internal/rcl"
	"hoyan/internal/traffic"
)

// Snapshot is one simulated network state an intent is checked against.
type Snapshot struct {
	RIB *netmodel.GlobalRIB
	// RIBFn lazily builds the global RIB when RIB is nil. Callers that check
	// only path and load intents then never pay for the flattened table.
	RIBFn func() *netmodel.GlobalRIB
	Paths []traffic.FlowPath
	Load  netmodel.LinkLoad
	// Bandwidth maps links to capacity (bits/second) for load intents.
	Bandwidth map[netmodel.LinkID]float64
}

// GlobalRIB returns the snapshot's global RIB, materializing it on first use
// when the snapshot was built lazily.
func (s *Snapshot) GlobalRIB() *netmodel.GlobalRIB {
	if s.RIB == nil && s.RIBFn != nil {
		s.RIB = s.RIBFn()
	}
	return s.RIB
}

// Context carries the base (pre-change) and updated (post-change) states.
type Context struct {
	Base    Snapshot
	Updated Snapshot
}

// Intent is one formally specified change intent.
type Intent interface {
	// Describe returns a one-line human-readable summary.
	Describe() string
	// Check evaluates the intent and returns its report.
	Check(ctx *Context) Report
}

// Report is the outcome of checking one intent.
type Report struct {
	Intent    string
	Satisfied bool
	// Violations are human-readable counterexamples (routes, flows, links).
	Violations []string
}

// Verify checks every intent and returns the reports; ok is true when all
// intents are satisfied.
func Verify(ctx *Context, intents []Intent) (reports []Report, ok bool) {
	ok = true
	for _, it := range intents {
		rep := it.Check(ctx)
		if !rep.Satisfied {
			ok = false
		}
		reports = append(reports, rep)
	}
	return reports, ok
}

// ---- route change intents (RCL) ----

// RouteIntent wraps an RCL specification.
type RouteIntent struct {
	Spec string
}

// Describe implements Intent.
func (i RouteIntent) Describe() string { return "rcl: " + i.Spec }

// Check implements Intent.
func (i RouteIntent) Check(ctx *Context) Report {
	rep := Report{Intent: i.Describe()}
	g, err := rcl.Parse(i.Spec)
	if err != nil {
		rep.Violations = []string{"specification error: " + err.Error()}
		return rep
	}
	res, err := rcl.Check(g, ctx.Base.GlobalRIB(), ctx.Updated.GlobalRIB())
	if err != nil {
		rep.Violations = []string{"evaluation error: " + err.Error()}
		return rep
	}
	rep.Satisfied = res.Holds
	for _, v := range res.Violations {
		rep.Violations = append(rep.Violations, v.String())
		for _, r := range v.Routes {
			rep.Violations = append(rep.Violations, "  route: "+r.String())
		}
	}
	return rep
}

// ---- reachability intents ----

// ReachIntent asserts the presence (or absence) of a prefix's best route on
// a set of devices in the updated state.
type ReachIntent struct {
	Prefix  netip.Prefix
	Devices []string // empty: every device appearing in the updated RIB
	Want    bool     // true: must be present; false: must be absent
}

// Describe implements Intent.
func (i ReachIntent) Describe() string {
	verb := "reaches"
	if !i.Want {
		verb = "is absent from"
	}
	where := "all routers"
	if len(i.Devices) > 0 {
		where = strings.Join(i.Devices, ",")
	}
	return fmt.Sprintf("reach: %s %s %s", i.Prefix, verb, where)
}

// Check implements Intent.
func (i ReachIntent) Check(ctx *Context) Report {
	rep := Report{Intent: i.Describe(), Satisfied: true}
	devices := i.Devices
	if len(devices) == 0 {
		seen := map[string]bool{}
		for _, r := range ctx.Updated.GlobalRIB().Rows() {
			if !seen[r.Device] {
				seen[r.Device] = true
				devices = append(devices, r.Device)
			}
		}
	}
	has := map[string]bool{}
	for _, r := range ctx.Updated.GlobalRIB().Rows() {
		if r.Prefix == i.Prefix && r.RouteType == netmodel.RouteBest {
			has[r.Device] = true
		}
	}
	for _, d := range devices {
		if has[d] != i.Want {
			rep.Satisfied = false
			if i.Want {
				rep.Violations = append(rep.Violations, fmt.Sprintf("%s has no best route for %s", d, i.Prefix))
			} else {
				rep.Violations = append(rep.Violations, fmt.Sprintf("%s still has a route for %s", d, i.Prefix))
			}
		}
	}
	return rep
}

// ---- flow path change intents ----

// FlowSelector picks the flows an intent talks about.
type FlowSelector struct {
	Ingress   string       // "" = any
	DstWithin netip.Prefix // zero = any
}

// Matches reports whether the selector picks the flow.
func (s FlowSelector) Matches(f netmodel.Flow) bool {
	if s.Ingress != "" && f.Ingress != s.Ingress {
		return false
	}
	if s.DstWithin.IsValid() && !s.DstWithin.Contains(f.Dst) {
		return false
	}
	return true
}

func (s FlowSelector) String() string {
	parts := []string{}
	if s.Ingress != "" {
		parts = append(parts, "ingress="+s.Ingress)
	}
	if s.DstWithin.IsValid() {
		parts = append(parts, "dst in "+s.DstWithin.String())
	}
	if len(parts) == 0 {
		return "all flows"
	}
	return strings.Join(parts, " ")
}

// PathIntent constrains the updated forwarding paths of the selected flows
// (the Rela-style flow path change intents of Table 2).
type PathIntent struct {
	Select FlowSelector
	// Traverse requires every selected flow's path to visit these devices
	// in order (as a subsequence).
	Traverse []string
	// Avoid forbids these devices on any selected flow's path.
	Avoid []string
	// AvoidLinks forbids these links.
	AvoidLinks []netmodel.LinkID
	// Delivered requires the flows to exit normally (delivered or to-peer).
	Delivered bool
	// Blocked requires the flows to be dropped by an ACL ("all matching
	// flows should be blocked", Table 2's ACL modification intent).
	Blocked bool
}

// Describe implements Intent.
func (i PathIntent) Describe() string {
	var parts []string
	if len(i.Traverse) > 0 {
		parts = append(parts, "via "+strings.Join(i.Traverse, "-"))
	}
	if len(i.Avoid) > 0 {
		parts = append(parts, "avoiding "+strings.Join(i.Avoid, ","))
	}
	if len(i.AvoidLinks) > 0 {
		parts = append(parts, fmt.Sprintf("avoiding %d links", len(i.AvoidLinks)))
	}
	if i.Delivered {
		parts = append(parts, "delivered")
	}
	if i.Blocked {
		parts = append(parts, "blocked")
	}
	return fmt.Sprintf("path: %s %s", i.Select, strings.Join(parts, ", "))
}

// Check implements Intent.
func (i PathIntent) Check(ctx *Context) Report {
	rep := Report{Intent: i.Describe(), Satisfied: true}
	matched := 0
	for _, fp := range ctx.Updated.Paths {
		if !i.Select.Matches(fp.Flow) {
			continue
		}
		matched++
		devs := fp.Path.Devices()
		if i.Delivered && fp.Path.Exit != netmodel.ExitDelivered && fp.Path.Exit != netmodel.ExitToPeer {
			rep.Satisfied = false
			rep.Violations = append(rep.Violations,
				fmt.Sprintf("flow %s: %s (%s)", fp.Flow, strings.Join(devs, "-"), fp.Path.Exit))
			continue
		}
		if i.Blocked && fp.Path.Exit != netmodel.ExitACLDenied {
			rep.Satisfied = false
			rep.Violations = append(rep.Violations,
				fmt.Sprintf("flow %s not blocked: %s (%s)", fp.Flow, strings.Join(devs, "-"), fp.Path.Exit))
			continue
		}
		if len(i.Traverse) > 0 && !isSubsequence(i.Traverse, devs) {
			rep.Satisfied = false
			rep.Violations = append(rep.Violations,
				fmt.Sprintf("flow %s takes %s, not via %s", fp.Flow, strings.Join(devs, "-"), strings.Join(i.Traverse, "-")))
		}
		for _, avoid := range i.Avoid {
			for _, d := range devs {
				if d == avoid {
					rep.Satisfied = false
					rep.Violations = append(rep.Violations,
						fmt.Sprintf("flow %s traverses forbidden device %s", fp.Flow, avoid))
				}
			}
		}
		for _, id := range i.AvoidLinks {
			if fp.Path.Traverses(id) {
				rep.Satisfied = false
				rep.Violations = append(rep.Violations,
					fmt.Sprintf("flow %s traverses forbidden link %s", fp.Flow, id))
			}
		}
	}
	if matched == 0 {
		rep.Satisfied = false
		rep.Violations = append(rep.Violations, "no simulated flow matches the selector")
	}
	return rep
}

func isSubsequence(want, seq []string) bool {
	i := 0
	for _, d := range seq {
		if i < len(want) && d == want[i] {
			i++
		}
	}
	return i == len(want)
}

// ---- traffic load intents ----

// LoadIntent asserts no link exceeds the utilization threshold in the
// updated state ("no overloaded links", Table 2).
type LoadIntent struct {
	// MaxUtilization is the permitted load/bandwidth fraction (e.g. 0.8).
	MaxUtilization float64
	// Links restricts the check; empty means every link with known
	// bandwidth.
	Links []netmodel.LinkID
}

// Describe implements Intent.
func (i LoadIntent) Describe() string {
	return fmt.Sprintf("load: utilization <= %.0f%%", i.MaxUtilization*100)
}

// Check implements Intent.
func (i LoadIntent) Check(ctx *Context) Report {
	rep := Report{Intent: i.Describe(), Satisfied: true}
	check := func(id netmodel.LinkID) {
		bw := ctx.Updated.Bandwidth[id]
		if bw <= 0 {
			return
		}
		if load := ctx.Updated.Load[id]; load > bw*i.MaxUtilization {
			rep.Satisfied = false
			rep.Violations = append(rep.Violations,
				fmt.Sprintf("link %s overloaded: %.0f of %.0f bps (%.0f%%)", id, load, bw, 100*load/bw))
		}
	}
	if len(i.Links) > 0 {
		for _, id := range i.Links {
			check(id)
		}
		return rep
	}
	ids := make([]netmodel.LinkID, 0, len(ctx.Updated.Bandwidth))
	for id := range ctx.Updated.Bandwidth {
		ids = append(ids, id)
	}
	sortLinkIDs(ids)
	for _, id := range ids {
		check(id)
	}
	return rep
}

func sortLinkIDs(ids []netmodel.LinkID) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j].String() < ids[j-1].String(); j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}
