// Package vsb models vendor-specific behaviours (VSBs): the semantic
// differences between router vendors that the paper's accuracy-diagnosis
// framework uncovered (Table 5). Every VSB is a field of Profile; the
// simulator consults the profile of a device's vendor at each affected code
// path.
//
// Two synthetic vendors, alpha and beta, instantiate divergent profiles.
// Differential testing between them (and between a faithful and a flawed
// profile of the same vendor) reproduces the paper's accuracy campaign.
package vsb

import "fmt"

// Profile captures one vendor's interpretation of the ambiguous behaviours
// in Table 5 of the paper. Field comments quote the table's description.
type Profile struct {
	// Vendor is the profile's vendor name.
	Vendor string

	// AcceptOnMissingPolicy: whether route updates are accepted when no
	// policy is defined on the neighbor. Consulted for eBGP sessions only;
	// every vendor accepts policy-less iBGP updates.
	AcceptOnMissingPolicy bool

	// AcceptOnUndefinedPolicy: whether route updates are accepted when an
	// undefined (referenced but never declared) policy is applied.
	AcceptOnUndefinedPolicy bool

	// AcceptOnNoMatch: whether route updates are accepted when they match no
	// explicit policy node (the "default route policy").
	AcceptOnNoMatch bool

	// UndefinedFilterMatchesAll: whether an undefined filter (prefix list,
	// community list, AS-path list) referenced from a policy is treated as
	// always matching.
	UndefinedFilterMatchesAll bool

	// PermitOnNoAction: whether a route update is accepted when a matching
	// policy node has no explicit permit or deny action.
	PermitOnNoAction bool

	// EBGPPreference / IBGPPreference: the default route preference
	// (administrative distance) attribute for eBGP and iBGP routes.
	EBGPPreference uint32
	IBGPPreference uint32

	// RedistributionWeight: the default weight set when routes are
	// redistributed into BGP (0 when no default weight is set).
	RedistributionWeight uint32

	// AddOwnASNAfterPolicyOverwrite: whether a device's own ASN is added
	// after a policy overwrites the AS path.
	AddOwnASNAfterPolicyOverwrite bool

	// AggregateKeepsCommonASPrefix: when aggregating routes without AS-set,
	// whether the common prefix of the contributors' AS paths is added to
	// the aggregate's AS path.
	AggregateKeepsCommonASPrefix bool

	// VRFExportPolicyOnGlobalLeak: whether a VRF's export policy is applied
	// to global iBGP routes that are leaked into VPNv4.
	VRFExportPolicyOnGlobalLeak bool

	// ReLeakRoutes: whether routes leaked into global VPNv4 from a VRF are
	// re-leaked into another VRF based on route targets.
	ReLeakRoutes bool

	// RedistributeDirect32: whether /32 routes produced by direct
	// connections can be redistributed.
	RedistributeDirect32 bool

	// SendDirect32ToPeer: whether /32 routes produced by direct connections
	// can be sent to peers if redistribution is permitted.
	SendDirect32ToPeer bool

	// SRTunnelIGPCostZero: whether a route's IGP cost is treated as 0 when
	// its destination is reached via an SR tunnel (the Figure 9 root cause).
	SRTunnelIGPCostZero bool

	// SubViewInheritsOptions: which configuration options are inherited in
	// sub-views; modelled as all-or-nothing inheritance of address-family
	// sub-view policy bindings.
	SubViewInheritsOptions bool

	// IsolationViaPolicy: whether devices are isolated through policies
	// (true) or through specific isolation configuration (false).
	IsolationViaPolicy bool

	// IPPrefixFilterPermitsIPv6: the Figure 10(b) behaviour — an "ip-prefix"
	// (IPv4) filter applied to IPv6 routes checks only IPv4 prefixes and
	// permits all IPv6 prefixes by default.
	IPPrefixFilterPermitsIPv6 bool
}

// Vendor names used throughout the repository.
const (
	VendorAlpha = "alpha"
	VendorBeta  = "beta"
)

// Alpha returns the profile of the synthetic vendor alpha (IOS-flavoured
// semantics: permissive defaults, weight in use, SR changes IGP cost — alpha
// is "vendor A" in the Figure 9 case study).
func Alpha() Profile {
	return Profile{
		Vendor:                        VendorAlpha,
		AcceptOnMissingPolicy:         true,
		AcceptOnUndefinedPolicy:       true,
		AcceptOnNoMatch:               false,
		UndefinedFilterMatchesAll:     true,
		PermitOnNoAction:              true,
		EBGPPreference:                20,
		IBGPPreference:                200,
		RedistributionWeight:          32768,
		AddOwnASNAfterPolicyOverwrite: true,
		AggregateKeepsCommonASPrefix:  true,
		VRFExportPolicyOnGlobalLeak:   false,
		ReLeakRoutes:                  false,
		RedistributeDirect32:          true,
		SendDirect32ToPeer:            true,
		SRTunnelIGPCostZero:           true,
		SubViewInheritsOptions:        true,
		IsolationViaPolicy:            true,
		IPPrefixFilterPermitsIPv6:     true,
	}
}

// Beta returns the profile of the synthetic vendor beta (VRP-flavoured
// semantics: restrictive defaults, no weight, SR does not change IGP cost).
func Beta() Profile {
	return Profile{
		Vendor:                        VendorBeta,
		AcceptOnMissingPolicy:         false,
		AcceptOnUndefinedPolicy:       false,
		AcceptOnNoMatch:               true,
		UndefinedFilterMatchesAll:     false,
		PermitOnNoAction:              false,
		EBGPPreference:                255,
		IBGPPreference:                255,
		RedistributionWeight:          0,
		AddOwnASNAfterPolicyOverwrite: false,
		AggregateKeepsCommonASPrefix:  false,
		VRFExportPolicyOnGlobalLeak:   true,
		ReLeakRoutes:                  true,
		RedistributeDirect32:          false,
		SendDirect32ToPeer:            false,
		SRTunnelIGPCostZero:           false,
		SubViewInheritsOptions:        false,
		IsolationViaPolicy:            false,
		IPPrefixFilterPermitsIPv6:     false,
	}
}

// ByVendor returns the faithful profile for a vendor name.
func ByVendor(vendor string) (Profile, error) {
	switch vendor {
	case VendorAlpha:
		return Alpha(), nil
	case VendorBeta:
		return Beta(), nil
	}
	return Profile{}, fmt.Errorf("vsb: unknown vendor %q", vendor)
}

// Profiles maps vendor names to faithful profiles; the form the simulator
// consumes.
type Profiles map[string]Profile

// Defaults returns faithful profiles for all known vendors.
func Defaults() Profiles {
	return Profiles{VendorAlpha: Alpha(), VendorBeta: Beta()}
}

// For returns the profile for vendor, falling back to Alpha's semantics for
// unknown vendors (mirroring Hoyan's "model new vendors like the closest
// known one until diagnosed" practice).
func (ps Profiles) For(vendor string) Profile {
	if p, ok := ps[vendor]; ok {
		return p
	}
	p := Alpha()
	p.Vendor = vendor
	return p
}

// Mutation identifies one VSB field for fault injection: the accuracy
// campaign flips single fields of the "model under test" profile and checks
// the diagnosis framework localizes the divergence.
type Mutation string

// All mutations, one per Table 5 row (plus the Figure 10(b) filter VSB).
const (
	MutMissingPolicy      Mutation = "missing-route-policy"
	MutUndefinedPolicy    Mutation = "undefined-route-policy"
	MutDefaultPolicy      Mutation = "default-route-policy"
	MutUndefinedFilter    Mutation = "undefined-policy-filter"
	MutNoExplicitAction   Mutation = "no-explicit-permit-deny"
	MutDefaultPreference  Mutation = "default-bgp-preference"
	MutRedistWeight       Mutation = "weight-after-redistribution"
	MutAddOwnASN          Mutation = "adding-own-asn"
	MutCommonASPrefix     Mutation = "common-as-path-prefix"
	MutVRFExportPolicy    Mutation = "vrf-export-policy"
	MutReLeak             Mutation = "re-leaking-routes"
	MutRedistDirect32     Mutation = "redistributing-32-route"
	MutSend32ToPeer       Mutation = "sending-32-route-to-peer"
	MutSRIGPCost          Mutation = "igp-cost-for-sr"
	MutInheritViews       Mutation = "inheriting-views"
	MutDeviceIsolation    Mutation = "device-isolation"
	MutIPPrefixIPv6Filter Mutation = "ip-prefix-ipv6-filter"
)

// AllMutations lists every VSB mutation in Table 5 order.
var AllMutations = []Mutation{
	MutMissingPolicy, MutUndefinedPolicy, MutDefaultPolicy, MutUndefinedFilter,
	MutNoExplicitAction, MutDefaultPreference, MutRedistWeight, MutAddOwnASN,
	MutCommonASPrefix, MutVRFExportPolicy, MutReLeak, MutRedistDirect32,
	MutSend32ToPeer, MutSRIGPCost, MutInheritViews, MutDeviceIsolation,
	MutIPPrefixIPv6Filter,
}

// Apply flips the VSB named by m on a copy of p, returning the mutated
// profile. Boolean fields are inverted; numeric fields are set to the other
// vendor's convention.
func (m Mutation) Apply(p Profile) Profile {
	switch m {
	case MutMissingPolicy:
		p.AcceptOnMissingPolicy = !p.AcceptOnMissingPolicy
	case MutUndefinedPolicy:
		p.AcceptOnUndefinedPolicy = !p.AcceptOnUndefinedPolicy
	case MutDefaultPolicy:
		p.AcceptOnNoMatch = !p.AcceptOnNoMatch
	case MutUndefinedFilter:
		p.UndefinedFilterMatchesAll = !p.UndefinedFilterMatchesAll
	case MutNoExplicitAction:
		p.PermitOnNoAction = !p.PermitOnNoAction
	case MutDefaultPreference:
		if p.EBGPPreference == 20 {
			p.EBGPPreference, p.IBGPPreference = 255, 255
		} else {
			p.EBGPPreference, p.IBGPPreference = 20, 200
		}
	case MutRedistWeight:
		if p.RedistributionWeight == 0 {
			p.RedistributionWeight = 32768
		} else {
			p.RedistributionWeight = 0
		}
	case MutAddOwnASN:
		p.AddOwnASNAfterPolicyOverwrite = !p.AddOwnASNAfterPolicyOverwrite
	case MutCommonASPrefix:
		p.AggregateKeepsCommonASPrefix = !p.AggregateKeepsCommonASPrefix
	case MutVRFExportPolicy:
		p.VRFExportPolicyOnGlobalLeak = !p.VRFExportPolicyOnGlobalLeak
	case MutReLeak:
		p.ReLeakRoutes = !p.ReLeakRoutes
	case MutRedistDirect32:
		p.RedistributeDirect32 = !p.RedistributeDirect32
	case MutSend32ToPeer:
		p.SendDirect32ToPeer = !p.SendDirect32ToPeer
	case MutSRIGPCost:
		p.SRTunnelIGPCostZero = !p.SRTunnelIGPCostZero
	case MutInheritViews:
		p.SubViewInheritsOptions = !p.SubViewInheritsOptions
	case MutDeviceIsolation:
		p.IsolationViaPolicy = !p.IsolationViaPolicy
	case MutIPPrefixIPv6Filter:
		p.IPPrefixFilterPermitsIPv6 = !p.IPPrefixFilterPermitsIPv6
	}
	return p
}

// Description returns the Table 5 description for the mutation.
func (m Mutation) Description() string {
	switch m {
	case MutMissingPolicy:
		return "Whether route updates are accepted when no policy is defined."
	case MutUndefinedPolicy:
		return "Whether route updates are accepted when an undefined policy is applied."
	case MutDefaultPolicy:
		return "Whether route updates are accepted when they match no explicit policy."
	case MutUndefinedFilter:
		return "Whether an undefined filter is treated as always matching or not."
	case MutNoExplicitAction:
		return "Whether a route update is accepted when a matching policy has no explicit permit or deny action."
	case MutDefaultPreference:
		return "The default route preference attribute for iBGP and eBGP."
	case MutRedistWeight:
		return "Whether a default weight is set when routes are redistributed into BGP."
	case MutAddOwnASN:
		return "Whether a device's own ASN is added after a policy overwrites the AS path."
	case MutCommonASPrefix:
		return "When aggregating routes without using AS-set, whether the common prefix is added to the AS path."
	case MutVRFExportPolicy:
		return "Whether a VRF's export policy is applied to global iBGP routes that are leaked into VPNv4."
	case MutReLeak:
		return "Whether routes leaked into global VPNv4 from VRF should be re-leaked into another VRF based on RT."
	case MutRedistDirect32:
		return "Whether /32 routes produced by direct connections can be redistributed."
	case MutSend32ToPeer:
		return "Whether /32 routes produced by direct connections can be sent to peers if redistribution is permitted."
	case MutSRIGPCost:
		return "Whether a route's IGP cost is treated as 0 when its destination is reached via SR tunnel."
	case MutInheritViews:
		return "Which configuration options are inherited in sub-views."
	case MutDeviceIsolation:
		return "Whether devices are isolated through policies or specific configurations."
	case MutIPPrefixIPv6Filter:
		return "Whether an IPv4 prefix filter applied to IPv6 routes permits all IPv6 prefixes by default."
	}
	return string(m)
}
