package vsb

import (
	"reflect"
	"testing"
)

func TestByVendor(t *testing.T) {
	a, err := ByVendor(VendorAlpha)
	if err != nil || a.Vendor != VendorAlpha {
		t.Fatalf("alpha: %v %v", a, err)
	}
	b, err := ByVendor(VendorBeta)
	if err != nil || b.Vendor != VendorBeta {
		t.Fatalf("beta: %v %v", b, err)
	}
	if _, err := ByVendor("gamma"); err == nil {
		t.Error("unknown vendor must error")
	}
}

func TestAlphaBetaDivergeOnEveryVSB(t *testing.T) {
	// The whole point of having two vendors is that every Table 5 row has
	// observable divergence; verify field-by-field (excluding Vendor).
	a, b := Alpha(), Beta()
	va, vb := reflect.ValueOf(a), reflect.ValueOf(b)
	typ := va.Type()
	for i := 0; i < typ.NumField(); i++ {
		if typ.Field(i).Name == "Vendor" {
			continue
		}
		if reflect.DeepEqual(va.Field(i).Interface(), vb.Field(i).Interface()) {
			t.Errorf("field %s identical between alpha and beta", typ.Field(i).Name)
		}
	}
}

func TestMutationsChangeExactlyOneBehaviour(t *testing.T) {
	base := Alpha()
	for _, m := range AllMutations {
		mut := m.Apply(base)
		if reflect.DeepEqual(base, mut) {
			t.Errorf("mutation %s is a no-op on alpha", m)
		}
		// Applying twice returns to the original (all mutations are toggles).
		back := m.Apply(mut)
		if !reflect.DeepEqual(base, back) {
			t.Errorf("mutation %s is not an involution", m)
		}
		// Count changed fields: exactly 1, except default-preference which
		// flips both eBGP and iBGP preference together.
		vb, vm := reflect.ValueOf(base), reflect.ValueOf(mut)
		changed := 0
		for i := 0; i < vb.NumField(); i++ {
			if !reflect.DeepEqual(vb.Field(i).Interface(), vm.Field(i).Interface()) {
				changed++
			}
		}
		want := 1
		if m == MutDefaultPreference {
			want = 2
		}
		if changed != want {
			t.Errorf("mutation %s changed %d fields, want %d", m, changed, want)
		}
	}
}

func TestAllMutationsCoverTable5(t *testing.T) {
	if len(AllMutations) != 17 { // 16 Table 5 rows + Figure 10(b) filter VSB
		t.Errorf("len(AllMutations) = %d, want 17", len(AllMutations))
	}
	seen := map[Mutation]bool{}
	for _, m := range AllMutations {
		if seen[m] {
			t.Errorf("duplicate mutation %s", m)
		}
		seen[m] = true
		if m.Description() == string(m) {
			t.Errorf("mutation %s has no description", m)
		}
	}
}

func TestProfilesFor(t *testing.T) {
	ps := Defaults()
	if ps.For(VendorBeta).Vendor != VendorBeta {
		t.Error("For(beta)")
	}
	unknown := ps.For("newvendor")
	if unknown.Vendor != "newvendor" {
		t.Error("unknown vendor should keep its name")
	}
	if unknown.EBGPPreference != Alpha().EBGPPreference {
		t.Error("unknown vendor should fall back to alpha semantics")
	}
}
