package core

import (
	"bytes"
	"net/netip"
	"testing"

	"hoyan/internal/gen"
	"hoyan/internal/netmodel"
	"hoyan/internal/vsb"
)

func TestEndToEndRouteSimulation(t *testing.T) {
	out := gen.Generate(gen.WAN(1))
	e := NewEngine(out.Net, Options{})
	res := e.RouteSimulation(out.Inputs)
	if !res.BGP.Converged {
		t.Fatalf("did not converge (rounds=%d)", res.BGP.Rounds)
	}
	if res.BGP.Rounds > 20 {
		t.Errorf("rounds = %d; paper's WAN converges within 20", res.BGP.Rounds)
	}

	// A DC prefix from region 0 must be present on routers of other regions.
	dcPrefix := netip.MustParsePrefix("10.0.0.0/24")
	found := 0
	for _, tab := range res.BGP.Tables() {
		if len(res.BGP.RIB(tab.Device, tab.VRF).Best(dcPrefix)) > 0 {
			found++
		}
	}
	if found < len(out.Net.Devices)/2 {
		t.Errorf("dc prefix visible on %d tables only (devices=%d)", found, len(out.Net.Devices))
	}

	// The route-EC technique must be active and reduce inputs.
	if res.ECStats == nil || res.ECStats.Reduction() <= 1.0 {
		t.Errorf("route EC reduction = %+v", res.ECStats)
	}
}

func TestECOnOffEquivalence(t *testing.T) {
	// The EC optimization must not change the simulated global RIB.
	out := gen.Generate(gen.WAN(1))
	with := NewEngine(out.Net, Options{}).RouteSimulation(out.Inputs)
	without := NewEngine(out.Net, Options{DisableRouteECs: true}).RouteSimulation(out.Inputs)
	gw, gwo := with.GlobalRIB(), without.GlobalRIB()
	if !gw.Equal(gwo) {
		onlyA, onlyB := gw.Diff(gwo)
		max := 5
		for i, r := range onlyA {
			if i >= max {
				break
			}
			t.Logf("only with ECs: %v", r)
		}
		for i, r := range onlyB {
			if i >= max {
				break
			}
			t.Logf("only without ECs: %v", r)
		}
		t.Fatalf("EC on/off differ: %d vs %d rows (diff %d/%d)", gw.Len(), gwo.Len(), len(onlyA), len(onlyB))
	}
}

func TestEndToEndTrafficSimulation(t *testing.T) {
	out := gen.Generate(gen.WAN(1))
	e := NewEngine(out.Net, Options{})
	res := e.Run(out.Inputs, out.Flows)
	if res.Traffic == nil {
		t.Fatal("no traffic result")
	}
	if res.Traffic.ECStats == nil || res.Traffic.ECStats.Reduction() < 1.0 {
		t.Errorf("flow EC stats: %+v", res.Traffic.ECStats)
	}
	// Some volume must land on some link.
	var total float64
	for _, v := range res.Traffic.Traffic.Load {
		total += v
	}
	if total <= 0 {
		t.Error("no load simulated")
	}
	// Flow-EC on/off must agree on link loads (within float tolerance).
	woEng := NewEngine(out.Net, Options{DisableFlowECs: true})
	wo := woEng.TrafficSimulation(res.Routes, res.Routes.GlobalRIB().Rows(), out.Flows)
	for id, v := range wo.Traffic.Load {
		got := res.Traffic.Traffic.Load[id]
		if diff := got - v; diff > 1e-6 || diff < -1e-6 {
			t.Errorf("load[%s] EC=%v noEC=%v", id, got, v)
		}
	}
}

func TestVSBMutationChangesGlobalRIB(t *testing.T) {
	// At least the core routing VSBs must be observable on the generated
	// WAN — that observability is what Table 5's campaign relies on.
	out := gen.Generate(gen.WAN(1))
	truth := NewEngine(out.Net, Options{}).RouteSimulation(out.Inputs).GlobalRIB()
	observable := 0
	tested := []vsb.Mutation{
		vsb.MutDefaultPreference, vsb.MutMissingPolicy, vsb.MutDefaultPolicy,
	}
	for _, m := range tested {
		profs := vsb.Defaults()
		profs["alpha"] = m.Apply(profs["alpha"])
		profs["beta"] = m.Apply(profs["beta"])
		got := NewEngine(out.Net, Options{Profiles: profs}).RouteSimulation(out.Inputs).GlobalRIB()
		if !truth.Equal(got) {
			observable++
		}
	}
	if observable == 0 {
		t.Error("no tested VSB mutation was observable")
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	out := gen.Generate(gen.WAN(1))
	snap := TakeSnapshot(out.Net)
	var buf bytes.Buffer
	if err := snap.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	snap2, err := DecodeSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	net2, err := snap2.Restore()
	if err != nil {
		t.Fatal(err)
	}
	// The restored model must simulate identically.
	g1 := NewEngine(out.Net, Options{}).RouteSimulation(out.Inputs).GlobalRIB()
	g2 := NewEngine(net2, Options{}).RouteSimulation(out.Inputs).GlobalRIB()
	if !g1.Equal(g2) {
		a, b := g1.Diff(g2)
		for i := 0; i < len(a) && i < 5; i++ {
			t.Logf("orig: %v", a[i])
		}
		for i := 0; i < len(b) && i < 5; i++ {
			t.Logf("restored: %v", b[i])
		}
		t.Fatalf("restored snapshot simulates differently: %d vs %d rows", g1.Len(), g2.Len())
	}
}

func TestRouteAndFlowWireFormats(t *testing.T) {
	out := gen.Generate(gen.WAN(1))
	var buf bytes.Buffer
	if err := EncodeRoutes(&buf, out.Inputs); err != nil {
		t.Fatal(err)
	}
	rs, err := DecodeRoutes(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != len(out.Inputs) {
		t.Fatalf("routes: %d != %d", len(rs), len(out.Inputs))
	}
	for i := range rs {
		if !rs[i].AttrsEqual(out.Inputs[i]) {
			t.Fatalf("route %d changed: %v vs %v", i, rs[i], out.Inputs[i])
		}
	}
	buf.Reset()
	if err := EncodeFlows(&buf, out.Flows); err != nil {
		t.Fatal(err)
	}
	fs, err := DecodeFlows(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != len(out.Flows) || fs[0] != out.Flows[0] {
		t.Fatal("flows changed in transit")
	}
}

func TestSimulationDeterminismAtScale(t *testing.T) {
	out := gen.Generate(gen.WAN(2))
	g1 := NewEngine(out.Net, Options{}).RouteSimulation(out.Inputs).GlobalRIB()
	g2 := NewEngine(out.Net, Options{}).RouteSimulation(out.Inputs).GlobalRIB()
	if !g1.Equal(g2) {
		t.Error("route simulation nondeterministic")
	}
}

var _ = netmodel.DefaultVRF
